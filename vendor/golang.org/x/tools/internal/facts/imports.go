// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package facts

import (
	"go/types"

	"golang.org/x/tools/internal/aliases"
	"golang.org/x/tools/internal/typesinternal"
)

// importMap computes the import map for a package by traversing the
// entire exported API each of its imports.
//
// This is a workaround for the fact that we cannot access the map used
// internally by the types.Importer returned by go/importer. The entries
// in this map are the packages and objects that may be relevant to the
// current analysis unit.
//
// Packages in the map that are only indirectly imported may be
// incomplete (!pkg.Complete()).
//
// This function scales very poorly with packages' transitive object
// references, which can be more than a million for each package near
// the top of a large project. (This was a significant contributor to
// #60621.)
// TODO(adonovan): opt: compute this information more efficiently
// by obtaining it from the internals of the gcexportdata decoder.
func importMap(imports []*types.Package) map[string]*types.Package {
	objects := make(map[types.Object]bool)
	typs := make(map[types.Type]bool) // Named and TypeParam
	packages := make(map[string]*types.Package)

	var addObj func(obj types.Object)
	var addType func(T types.Type)

	addObj = func(obj types.Object) {
		if !objects[obj] {
			objects[obj] = true
			addType(obj.Type())
			if pkg := obj.Pkg(); pkg != nil {
				packages[pkg.Path()] = pkg
			}
		}
	}

	addType = func(T types.Type) {
		switch T := T.(type) {
		case *types.Basic:
			// nop
		case typesinternal.NamedOrAlias: // *types.{Named,Alias}
			// Add the type arguments if this is an instance.
			if targs := typesinternal.TypeArgs(T); targs.Len() > 0 {
				for i := 0; i < targs.Len(); i++ {
					addType(targs.At(i))
				}
			}

			// Remove infinite expansions of *types.Named by always looking at the origin.
			// Some named types with type parameters [that will not type check] have
			// infinite expansions:
			//     type N[T any] struct { F *N[N[T]] }
			// importMap() is called on such types when Analyzer.RunDespiteErrors is true.
			T = typesinternal.Origin(T)
			if !typs[T] {
				typs[T] = true

				// common aspects
				addObj(T.Obj())
				if tparams := typesinternal.TypeParams(T); tparams.Len() > 0 {
					for i := 0; i < tparams.Len(); i++ {
						addType(tparams.At(i))
					}
				}

				// variant aspects
				switch T := T.(type) {
				case *types.Alias:
					addType(aliases.Rhs(T))
				case *types.Named:
					addType(T.Underlying())
					for i := 0; i < T.NumMethods(); i++ {
						addObj(T.Method(i))
					}
				}
			}
		case *types.Pointer:
			addType(T.Elem())
		case *types.Slice:
			addType(T.Elem())
		case *types.Array:
			addType(T.Elem())
		case *types.Chan:
			addType(T.Elem())
		case *types.Map:
			addType(T.Key())
			addType(T.Elem())
		case *types.Signature:
			addType(T.Params())
			addType(T.Results())
			if tparams := T.TypeParams(); tparams != nil {
				for i := 0; i < tparams.Len(); i++ {
					addType(tparams.At(i))
				}
			}
		case *types.Struct:
			for i := 0; i < T.NumFields(); i++ {
				addObj(T.Field(i))
			}
		case *types.Tuple:
			for i := 0; i < T.Len(); i++ {
				addObj(T.At(i))
			}
		case *types.Interface:
			for i := 0; i < T.NumMethods(); i++ {
				addObj(T.Method(i))
			}
			for i := 0; i < T.NumEmbeddeds(); i++ {
				addType(T.EmbeddedType(i)) // walk Embedded for implicits
			}
		case *types.Union:
			for i := 0; i < T.Len(); i++ {
				addType(T.Term(i).Type())
			}
		case *types.TypeParam:
			if !typs[T] {
				typs[T] = true
				addObj(T.Obj())
				addType(T.Constraint())
			}
		}
	}

	for _, imp := range imports {
		packages[imp.Path()] = imp

		scope := imp.Scope()
		for _, name := range scope.Names() {
			addObj(scope.Lookup(name))
		}
	}

	return packages
}
