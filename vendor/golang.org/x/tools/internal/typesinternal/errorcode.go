// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typesinternal

//go:generate stringer -type=ErrorCode

type ErrorCode int

// This file defines the error codes that can be produced during type-checking.
// Collectively, these codes provide an identifier that may be used to
// implement special handling for certain types of errors.
//
// Error codes should be fine-grained enough that the exact nature of the error
// can be easily determined, but coarse enough that they are not an
// implementation detail of the type checking algorithm. As a rule-of-thumb,
// errors should be considered equivalent if there is a theoretical refactoring
// of the type checker in which they are emitted in exactly one place. For
// example, the type checker emits different error messages for "too many
// arguments" and "too few arguments", but one can imagine an alternative type
// checker where this check instead just emits a single "wrong number of
// arguments", so these errors should have the same code.
//
// Error code names should be as brief as possible while retaining accuracy and
// distinctiveness. In most cases names should start with an adjective
// describing the nature of the error (e.g. "invalid", "unused", "misplaced"),
// and end with a noun identifying the relevant language object. For example,
// "DuplicateDecl" or "InvalidSliceExpr". For brevity, naming follows the
// convention that "bad" implies a problem with syntax, and "invalid" implies a
// problem with types.

const (
	// InvalidSyntaxTree occurs if an invalid syntax tree is provided
	// to the type checker. It should never happen.
	InvalidSyntaxTree ErrorCode = -1
)

const (
	_ ErrorCode = iota

	// Test is reserved for errors that only apply while in self-test mode.
	Test

	/* package names */

	// BlankPkgName occurs when a package name is the blank identifier "_".
	//
	// Per the spec:
	//  "The PackageName must not be the blank identifier."
	BlankPkgName

	// MismatchedPkgName occurs when a file's package name doesn't match the
	// package name already established by other files.
	MismatchedPkgName

	// InvalidPkgUse occurs when a package identifier is used outside of a
	// selector expression.
	//
	// Example:
	//  import "fmt"
	//
	//  var _ = fmt
	InvalidPkgUse

	/* imports */

	// BadImportPath occurs when an import path is not valid.
	BadImportPath

	// BrokenImport occurs when importing a package fails.
	//
	// Example:
	//  import "amissingpackage"
	BrokenImport

	// ImportCRenamed occurs when the special import "C" is renamed. "C" is a
	// pseudo-package, and must not be renamed.
	//
	// Example:
	//  import _ "C"
	ImportCRenamed

	// UnusedImport occurs when an import is unused.
	//
	// Example:
	//  import "fmt"
	//
	//  func main() {}
	UnusedImport

	/* initialization */

	// InvalidInitCycle occurs when an invalid cycle is detected within the
	// initialization graph.
	//
	// Example:
	//  var x int = f()
	//
	//  func f() int { return x }
	InvalidInitCycle

	/* decls */

	// DuplicateDecl occurs when an identifier is declared multiple times.
	//
	// Example:
	//  var x = 1
	//  var x = 2
	DuplicateDecl

	// InvalidDeclCycle occurs when a declaration cycle is not valid.
	//
	// Example:
	//  import "unsafe"
	//
	//  type T struct {
	//  	a [n]int
	//  }
	//
	//  var n = unsafe.Sizeof(T{})
	InvalidDeclCycle

	// InvalidTypeCycle occurs when a cycle in type definitions results in a
	// type that is not well-defined.
	//
	// Example:
	//  import "unsafe"
	//
	//  type T [unsafe.Sizeof(T{})]int
	InvalidTypeCycle

	/* decls > const */

	// InvalidConstInit occurs when a const declaration has a non-constant
	// initializer.
	//
	// Example:
	//  var x int
	//  const _ = x
	InvalidConstInit

	// InvalidConstVal occurs when a const value cannot be converted to its
	// target type.
	//
	// TODO(findleyr): this error code and example are not very clear. Consider
	// removing it.
	//
	// Example:
	//  const _ = 1 << "hello"
	InvalidConstVal

	// InvalidConstType occurs when the underlying type in a const declaration
	// is not a valid constant type.
	//
	// Example:
	//  const c *int = 4
	InvalidConstType

	/* decls > var (+ other variable assignment codes) */

	// UntypedNilUse occurs when the predeclared (untyped) value nil is used to
	// initialize a variable declared without an explicit type.
	//
	// Example:
	//  var x = nil
	UntypedNilUse

	// WrongAssignCount occurs when the number of values on the right-hand side
	// of an assignment or initialization expression does not match the number
	// of variables on the left-hand side.
	//
	// Example:
	//  var x = 1, 2
	WrongAssignCount

	// UnassignableOperand occurs when the left-hand side of an assignment is
	// not assignable.
	//
	// Example:
	//  func f() {
	//  	const c = 1
	//  	c = 2
	//  }
	UnassignableOperand

	// NoNewVar occurs when a short variable declaration (':=') does not declare
	// new variables.
	//
	// Example:
	//  func f() {
	//  	x := 1
	//  	x := 2
	//  }
	NoNewVar

	// MultiValAssignOp occurs when an assignment operation (+=, *=, etc) does
	// not have single-valued left-hand or right-hand side.
	//
	// Per the spec:
	//  "In assignment operations, both the left- and right-hand expression lists
	//  must contain exactly one single-valued expression"
	//
	// Example:
	//  func f() int {
	//  	x, y := 1, 2
	//  	x, y += 1
	//  	return x + y
	//  }
	MultiValAssignOp

	// InvalidIfaceAssign occurs when a value of type T is used as an
	// interface, but T does not implement a method of the expected interface.
	//
	// Example:
	//  type I interface {
	//  	f()
	//  }
	//
	//  type T int
	//
	//  var x I = T(1)
	InvalidIfaceAssign

	// InvalidChanAssign occurs when a chan assignment is invalid.
	//
	// Per the spec, a value x is assignable to a channel type T if:
	//  "x is a bidirectional channel value, T is a channel type, x's type V and
	//  T have identical element types, and at least one of V or T is not a
	//  defined type."
	//
	// Example:
	//  type T1 chan int
	//  type T2 chan int
	//
	//  var x T1
	//  // Invalid assignment because both types are named
	//  var _ T2 = x
	InvalidChanAssign

	// IncompatibleAssign occurs when the type of the right-hand side expression
	// in an assignment cannot be assigned to the type of the variable being
	// assigned.
	//
	// Example:
	//  var x []int
	//  var _ int = x
	IncompatibleAssign

	// UnaddressableFieldAssign occurs when trying to assign to a struct field
	// in a map value.
	//
	// Example:
	//  func f() {
	//  	m := make(map[string]struct{i int})
	//  	m["foo"].i = 42
	//  }
	UnaddressableFieldAssign

	/* decls > type (+ other type expression codes) */

	// NotAType occurs when the identifier used as the underlying type in a type
	// declaration or the right-hand side of a type alias does not denote a type.
	//
	// Example:
	//  var S = 2
	//
	//  type T S
	NotAType

	// InvalidArrayLen occurs when an array length is not a constant value.
	//
	// Example:
	//  var n = 3
	//  var _ = [n]int{}
	InvalidArrayLen

	// BlankIfaceMethod occurs when a method name is '_'.
	//
	// Per the spec:
	//  "The name of each explicitly specified method must be unique and not
	//  blank."
	//
	// Example:
	//  type T interface {
	//  	_(int)
	//  }
	BlankIfaceMethod

	// IncomparableMapKey occurs when a map key type does not support the == and
	// != operators.
	//
	// Per the spec:
	//  "The comparison operators == and != must be fully defined for operands of
	//  the key type; thus the key type must not be a function, map, or slice."
	//
	// Example:
	//  var x map[T]int
	//
	//  type T []int
	IncomparableMapKey

	// InvalidIfaceEmbed occurs when a non-interface type is embedded in an
	// interface.
	//
	// Example:
	//  type T struct {}
	//
	//  func (T) m()
	//
	//  type I interface {
	//  	T
	//  }
	InvalidIfaceEmbed

	// InvalidPtrEmbed occurs when an embedded field is of the pointer form *T,
	// and T itself is itself a pointer, an unsafe.Pointer, or an interface.
	//
	// Per the spec:
	//  "An embedded field must be specified as a type name T or as a pointer to
	//  a non-interface type name *T, and T itself may not be a pointer type."
	//
	// Example:
	//  type T *int
	//
	//  type S struct {
	//  	*T
	//  }
	InvalidPtrEmbed

	/* decls > func and method */

	// BadRecv occurs when a method declaration does not have exactly one
	// receiver parameter.
	//
	// Example:
	//  func () _() {}
	BadRecv

	// InvalidRecv occurs when a receiver type expression is not of the form T
	// or *T, or T is a pointer type.
	//
	// Example:
	//  type T struct {}
	//
	//  func (**T) m() {}
	InvalidRecv

	// DuplicateFieldAndMethod occurs when an identifier appears as both a field
	// and method name.
	//
	// Example:
	//  type T struct {
	//  	m int
	//  }
	//
	//  func (T) m() {}
	DuplicateFieldAndMethod

	// DuplicateMethod occurs when two methods on the same receiver type have
	// the same name.
	//
	// Example:
	//  type T struct {}
	//  func (T) m() {}
	//  func (T) m(i int) int { return i }
	DuplicateMethod

	/* decls > special */

	// InvalidBlank occurs when a blank identifier is used as a value or type.
	//
	// Per the spec:
	//  "The blank identifier may appear as an operand only on the left-hand side
	//  of an assignment."
	//
	// Example:
	//  var x = _
	InvalidBlank

	// InvalidIota occurs when the predeclared identifier iota is used outside
	// of a constant declaration.
	//
	// Example:
	//  var x = iota
	InvalidIota

	// MissingInitBody occurs when an init function is missing its body.
	//
	// Example:
	//  func init()
	MissingInitBody

	// InvalidInitSig occurs when an init function declares parameters or
	// results.
	//
	// Example:
	//  func init() int { return 1 }
	InvalidInitSig

	// InvalidInitDecl occurs when init is declared as anything other than a
	// function.
	//
	// Example:
	//  var init = 1
	InvalidInitDecl

	// InvalidMainDecl occurs when main is declared as anything other than a
	// function, in a main package.
	InvalidMainDecl

	/* exprs */

	// TooManyValues occurs when a function returns too many values for the
	// expression context in which it is used.
	//
	// Example:
	//  func ReturnTwo() (int, int) {
	//  	return 1, 2
	//  }
	//
	//  var x = ReturnTwo()
	TooManyValues

	// NotAnExpr occurs when a type expression is used where a value expression
	// is expected.
	//
	// Example:
	//  type T struct {}
	//
	//  func f() {
	//  	T
	//  }
	NotAnExpr

	/* exprs > const */

	// TruncatedFloat occurs when a float constant is truncated to an integer
	// value.
	//
	// Example:
	//  var _ int = 98.6
	TruncatedFloat

	// NumericOverflow occurs when a numeric constant overflows its target type.
	//
	// Example:
	//  var x int8 = 1000
	NumericOverflow

	/* exprs > operation */

	// UndefinedOp occurs when an operator is not defined for the type(s) used
	// in an operation.
	//
	// Example:
	//  var c = "a" - "b"
	UndefinedOp

	// MismatchedTypes occurs when operand types are incompatible in a binary
	// operation.
	//
	// Example:
	//  var a = "hello"
	//  var b = 1
	//  var c = a - b
	MismatchedTypes

	// DivByZero occurs when a division operation is provable at compile
	// time to be a division by zero.
	//
	// Example:
	//  const divisor = 0
	//  var x int = 1/divisor
	DivByZero

	// NonNumericIncDec occurs when an increment or decrement operator is
	// applied to a non-numeric value.
	//
	// Example:
	//  func f() {
	//  	var c = "c"
	//  	c++
	//  }
	NonNumericIncDec

	/* exprs > ptr */

	// UnaddressableOperand occurs when the & operator is applied to an
	// unaddressable expression.
	//
	// Example:
	//  var x = &1
	UnaddressableOperand

	// InvalidIndirection occurs when a non-pointer value is indirected via the
	// '*' operator.
	//
	// Example:
	//  var x int
	//  var y = *x
	InvalidIndirection

	/* exprs > [] */

	// NonIndexableOperand occurs when an index operation is applied to a value
	// that cannot be indexed.
	//
	// Example:
	//  var x = 1
	//  var y = x[1]
	NonIndexableOperand

	// InvalidIndex occurs when an index argument is not of integer type,
	// negative, or out-of-bounds.
	//
	// Example:
	//  var s = [...]int{1,2,3}
	//  var x = s[5]
	//
	// Example:
	//  var s = []int{1,2,3}
	//  var _ = s[-1]
	//
	// Example:
	//  var s = []int{1,2,3}
	//  var i string
	//  var _ = s[i]
	InvalidIndex

	// SwappedSliceIndices occurs when constant indices in a slice expression
	// are decreasing in value.
	//
	// Example:
	//  var _ = []int{1,2,3}[2:1]
	SwappedSliceIndices

	/* operators > slice */

	// NonSliceableOperand occurs when a slice operation is applied to a value
	// whose type is not sliceable, or is unaddressable.
	//
	// Example:
	//  var x = [...]int{1, 2, 3}[:1]
	//
	// Example:
	//  var x = 1
	//  var y = 1[:1]
	NonSliceableOperand

	// InvalidSliceExpr occurs when a three-index slice expression (a[x:y:z]) is
	// applied to a string.
	//
	// Example:
	//  var s = "hello"
	//  var x = s[1:2:3]
	InvalidSliceExpr

	/* exprs > shift */

	// InvalidShiftCount occurs when the right-hand side of a shift operation is
	// either non-integer, negative, or too large.
	//
	// Example:
	//  var (
	//  	x string
	//  	y int = 1 << x
	//  )
	InvalidShiftCount

	// InvalidShiftOperand occurs when the shifted operand is not an integer.
	//
	// Example:
	//  var s = "hello"
	//  var x = s << 2
	InvalidShiftOperand

	/* exprs > chan */

	// InvalidReceive occurs when there is a channel receive from a value that
	// is either not a channel, or is a send-only channel.
	//
	// Example:
	//  func f() {
	//  	var x = 1
	//  	<-x
	//  }
	InvalidReceive

	// InvalidSend occurs when there is a channel send to a value that is not a
	// channel, or is a receive-only channel.
	//
	// Example:
	//  func f() {
	//  	var x = 1
	//  	x <- "hello!"
	//  }
	InvalidSend

	/* exprs > literal */

	// DuplicateLitKey occurs when an index is duplicated in a slice, array, or
	// map literal.
	//
	// Example:
	//  var _ = []int{0:1, 0:2}
	//
	// Example:
	//  var _ = map[string]int{"a": 1, "a": 2}
	DuplicateLitKey

	// MissingLitKey occurs when a map literal is missing a key expression.
	//
	// Example:
	//  var _ = map[string]int{1}
	MissingLitKey

	// InvalidLitIndex occurs when the key in a key-value element of a slice or
	// array literal is not an integer constant.
	//
	// Example:
	//  var i = 0
	//  var x = []string{i: "world"}
	InvalidLitIndex

	// OversizeArrayLit occurs when an array literal exceeds its length.
	//
	// Example:
	//  var _ = [2]int{1,2,3}
	OversizeArrayLit

	// MixedStructLit occurs when a struct literal contains a mix of positional
	// and named elements.
	//
	// Example:
	//  var _ = struct{i, j int}{i: 1, 2}
	MixedStructLit

	// InvalidStructLit occurs when a positional struct literal has an incorrect
	// number of values.
	//
	// Example:
	//  var _ = struct{i, j int}{1,2,3}
	InvalidStructLit

	// MissingLitField occurs when a struct literal refers to a field that does
	// not exist on the struct type.
	//
	// Example:
	//  var _ = struct{i int}{j: 2}
	MissingLitField

	// DuplicateLitField occurs when a struct literal contains duplicated
	// fields.
	//
	// Example:
	//  var _ = struct{i int}{i: 1, i: 2}
	DuplicateLitField

	// UnexportedLitField occurs when a positional struct literal implicitly
	// assigns an unexported field of an imported type.
	UnexportedLitField

	// InvalidLitField occurs when a field name is not a valid identifier.
	//
	// Example:
	//  var _ = struct{i int}{1: 1}
	InvalidLitField

	// UntypedLit occurs when a composite literal omits a required type
	// identifier.
	//
	// Example:
	//  type outer struct{
	//  	inner struct { i int }
	//  }
	//
	//  var _ = outer{inner: {1}}
	UntypedLit

	// InvalidLit occurs when a composite literal expression does not match its
	// type.
	//
	// Example:
	//  type P *struct{
	//  	x int
	//  }
	//  var _ = P {}
	InvalidLit

	/* exprs > selector */

	// AmbiguousSelector occurs when a selector is ambiguous.
	//
	// Example:
	//  type E1 struct { i int }
	//  type E2 struct { i int }
	//  type T struct { E1; E2 }
	//
	//  var x T
	//  var _ = x.i
	AmbiguousSelector

	// UndeclaredImportedName occurs when a package-qualified identifier is
	// undeclared by the imported package.
	//
	// Example:
	//  import "go/types"
	//
	//  var _ = types.NotAnActualIdentifier
	UndeclaredImportedName

	// UnexportedName occurs when a selector refers to an unexported identifier
	// of an imported package.
	//
	// Example:
	//  import "reflect"
	//
	//  type _ reflect.flag
	UnexportedName

	// UndeclaredName occurs when an identifier is not declared in the current
	// scope.
	//
	// Example:
	//  var x T
	UndeclaredName

	// MissingFieldOrMethod occurs when a selector references a field or method
	// that does not exist.
	//
	// Example:
	//  type T struct {}
	//
	//  var x = T{}.f
	MissingFieldOrMethod

	/* exprs > ... */

	// BadDotDotDotSyntax occurs when a "..." occurs in a context where it is
	// not valid.
	//
	// Example:
	//  var _ = map[int][...]int{0: {}}
	BadDotDotDotSyntax

	// NonVariadicDotDotDot occurs when a "..." is used on the final argument to
	// a non-variadic function.
	//
	// Example:
	//  func printArgs(s []string) {
	//  	for _, a := range s {
	//  		println(a)
	//  	}
	//  }
	//
	//  func f() {
	//  	s := []string{"a", "b", "c"}
	//  	printArgs(s...)
	//  }
	NonVariadicDotDotDot

	// MisplacedDotDotDot occurs when a "..." is used somewhere other than the
	// final argument to a function call.
	//
	// Example:
	//  func printArgs(args ...int) {
	//  	for _, a := range args {
	//  		println(a)
	//  	}
	//  }
	//
	//  func f() {
	//  	a := []int{1,2,3}
	//  	printArgs(0, a...)
	//  }
	MisplacedDotDotDot

	// InvalidDotDotDotOperand occurs when a "..." operator is applied to a
	// single-valued operand.
	//
	// Example:
	//  func printArgs(args ...int) {
	//  	for _, a := range args {
	//  		println(a)
	//  	}
	//  }
	//
	//  func f() {
	//  	a := 1
	//  	printArgs(a...)
	//  }
	//
	// Example:
	//  func args() (int, int) {
	//  	return 1, 2
	//  }
	//
	//  func printArgs(args ...int) {
	//  	for _, a := range args {
	//  		println(a)
	//  	}
	//  }
	//
	//  func g() {
	//  	printArgs(args()...)
	//  }
	InvalidDotDotDotOperand

	// InvalidDotDotDot occurs when a "..." is used in a non-variadic built-in
	// function.
	//
	// Example:
	//  var s = []int{1, 2, 3}
	//  var l = len(s...)
	InvalidDotDotDot

	/* exprs > built-in */

	// UncalledBuiltin occurs when a built-in function is used as a
	// function-valued expression, instead of being called.
	//
	// Per the spec:
	//  "The built-in functions do not have standard Go types, so they can only
	//  appear in call expressions; they cannot be used as function values."
	//
	// Example:
	//  var _ = copy
	UncalledBuiltin

	// InvalidAppend occurs when append is called with a first argument that is
	// not a slice.
	//
	// Example:
	//  var _ = append(1, 2)
	InvalidAppend

	// InvalidCap occurs when an argument to the cap built-in function is not of
	// supported type.
	//
	// See https://golang.org/ref/spec#Length_and_capacity for information on
	// which underlying types are supported as arguments to cap and len.
	//
	// Example:
	//  var s = 2
	//  var x = cap(s)
	InvalidCap

	// InvalidClose occurs when close(...) is called with an argument that is
	// not of channel type, or that is a receive-only channel.
	//
	// Example:
	//  func f() {
	//  	var x int
	//  	close(x)
	//  }
	InvalidClose

	// InvalidCopy occurs when the arguments are not of slice type or do not
	// have compatible type.
	//
	// See https://golang.org/ref/spec#Appending_and_copying_slices for more
	// information on the type requirements for the copy built-in.
	//
	// Example:
	//  func f() {
	//  	var x []int
	//  	y := []int64{1,2,3}
	//  	copy(x, y)
	//  }
	InvalidCopy

	// InvalidComplex occurs when the complex built-in function is called with
	// arguments with incompatible types.
	//
	// Example:
	//  var _ = complex(float32(1), float64(2))
	InvalidComplex

	// InvalidDelete occurs when the delete built-in function is called with a
	// first argument that is not a map.
	//
	// Example:
	//  func f() {
	//  	m := "hello"
	//  	delete(m, "e")
	//  }
	InvalidDelete

	// InvalidImag occurs when the imag built-in function is called with an
	// argument that does not have complex type.
	//
	// Example:
	//  var _ = imag(int(1))
	InvalidImag

	// InvalidLen occurs when an argument to the len built-in function is not of
	// supported type.
	//
	// See https://golang.org/ref/spec#Length_and_capacity for information on
	// which underlying types are supported as arguments to cap and len.
	//
	// Example:
	//  var s = 2
	//  var x = len(s)
	InvalidLen

	// SwappedMakeArgs occurs when make is called with three arguments, and its
	// length argument is larger than its capacity argument.
	//
	// Example:
	//  var x = make([]int, 3, 2)
	SwappedMakeArgs

	// InvalidMake occurs when make is called with an unsupported type argument.
	//
	// See https://golang.org/ref/spec#Making_slices_maps_and_channels for
	// information on the types that may be created using make.
	//
	// Example:
	//  var x = make(int)
	InvalidMake

	// InvalidReal occurs when the real built-in function is called with an
	// argument that does not have complex type.
	//
	// Example:
	//  var _ = real(int(1))
	InvalidReal

	/* exprs > assertion */

	// InvalidAssert occurs when a type assertion is applied to a
	// value that is not of interface type.
	//
	// Example:
	//  var x = 1
	//  var _ = x.(float64)
	InvalidAssert

	// ImpossibleAssert occurs for a type assertion x.(T) when the value x of
	// interface cannot have dynamic type T, due to a missing or mismatching
	// method on T.
	//
	// Example:
	//  type T int
	//
	//  func (t *T) m() int { return int(*t) }
	//
	//  type I interface { m() int }
	//
	//  var x I
	//  var _ = x.(T)
	ImpossibleAssert

	/* exprs > conversion */

	// InvalidConversion occurs when the argument type cannot be converted to the
	// target.
	//
	// See https://golang.org/ref/spec#Conversions for the rules of
	// convertibility.
	//
	// Example:
	//  var x float64
	//  var _ = string(x)
	InvalidConversion

	// InvalidUntypedConversion occurs when an there is no valid implicit
	// conversion from an untyped value satisfying the type constraints of the
	// context in which it is used.
	//
	// Example:
	//  var _ = 1 + ""
	InvalidUntypedConversion

	/* offsetof */

	// BadOffsetofSyntax occurs when unsafe.Offsetof is called with an argument
	// that is not a selector expression.
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.Offsetof(x)
	BadOffsetofSyntax

	// InvalidOffsetof occurs when unsafe.Offsetof is called with a method
	// selector, rather than a field selector, or when the field is embedded via
	// a pointer.
	//
	// Per the spec:
	//
	//  "If f is an embedded field, it must be reachable without pointer
	//  indirections through fields of the struct. "
	//
	// Example:
	//  import "unsafe"
	//
	//  type T struct { f int }
	//  type S struct { *T }
	//  var s S
	//  var _ = unsafe.Offsetof(s.f)
	//
	// Example:
	//  import "unsafe"
	//
	//  type S struct{}
	//
	//  func (S) m() {}
	//
	//  var s S
	//  var _ = unsafe.Offsetof(s.m)
	InvalidOffsetof

	/* control flow > scope */

	// UnusedExpr occurs when a side-effect free expression is used as a
	// statement. Such a statement has no effect.
	//
	// Example:
	//  func f(i int) {
	//  	i*i
	//  }
	UnusedExpr

	// UnusedVar occurs when a variable is declared but unused.
	//
	// Example:
	//  func f() {
	//  	x := 1
	//  }
	UnusedVar

	// MissingReturn occurs when a function with results is missing a return
	// statement.
	//
	// Example:
	//  func f() int {}
	MissingReturn

	// WrongResultCount occurs when a return statement returns an incorrect
	// number of values.
	//
	// Example:
	//  func ReturnOne() int {
	//  	return 1, 2
	//  }
	WrongResultCount

	// OutOfScopeResult occurs when the name of a value implicitly returned by
	// an empty return statement is shadowed in a nested scope.
	//
	// Example:
	//  func factor(n int) (i int) {
	//  	for i := 2; i < n; i++ {
	//  		if n%i == 0 {
	//  			return
	//  		}
	//  	}
	//  	return 0
	//  }
	OutOfScopeResult

	/* control flow > if */

	// InvalidCond occurs when an if condition is not a boolean expression.
	//
	// Example:
	//  func checkReturn(i int) {
	//  	if i {
	//  		panic("non-zero return")
	//  	}
	//  }
	InvalidCond

	/* control flow > for */

	// InvalidPostDecl occurs when there is a declaration in a for-loop post
	// statement.
	//
	// Example:
	//  func f() {
	//  	for i := 0; i < 10; j := 0 {}
	//  }
	InvalidPostDecl

	// InvalidChanRange occurs when a send-only channel used in a range
	// expression.
	//
	// Example:
	//  func sum(c chan<- int) {
	//  	s := 0
	//  	for i := range c {
	//  		s += i
	//  	}
	//  }
	InvalidChanRange

	// InvalidIterVar occurs when two iteration variables are used while ranging
	// over a channel.
	//
	// Example:
	//  func f(c chan int) {
	//  	for k, v := range c {
	//  		println(k, v)
	//  	}
	//  }
	InvalidIterVar

	// InvalidRangeExpr occurs when the type of a range expression is not array,
	// slice, string, map, or channel.
	//
	// Example:
	//  func f(i int) {
	//  	for j := range i {
	//  		println(j)
	//  	}
	//  }
	InvalidRangeExpr

	/* control flow > switch */

	// MisplacedBreak occurs when a break statement is not within a for, switch,
	// or select statement of the innermost function definition.
	//
	// Example:
	//  func f() {
	//  	break
	//  }
	MisplacedBreak

	// MisplacedContinue occurs when a continue statement is not within a for
	// loop of the innermost function definition.
	//
	// Example:
	//  func sumeven(n int) int {
	//  	proceed := func() {
	//  		continue
	//  	}
	//  	sum := 0
	//  	for i := 1; i <= n; i++ {
	//  		if i % 2 != 0 {
	//  			proceed()
	//  		}
	//  		sum += i
	//  	}
	//  	return sum
	//  }
	MisplacedContinue

	// MisplacedFallthrough occurs when a fallthrough statement is not within an
	// expression switch.
	//
	// Example:
	//  func typename(i interface{}) string {
	//  	switch i.(type) {
	//  	case int64:
	//  		fallthrough
	//  	case int:
	//  		return "int"
	//  	}
	//  	return "unsupported"
	//  }
	MisplacedFallthrough

	// DuplicateCase occurs when a type or expression switch has duplicate
	// cases.
	//
	// Example:
	//  func printInt(i int) {
	//  	switch i {
	//  	case 1:
	//  		println("one")
	//  	case 1:
	//  		println("One")
	//  	}
	//  }
	DuplicateCase

	// DuplicateDefault occurs when a type or expression switch has multiple
	// default clauses.
	//
	// Example:
	//  func printInt(i int) {
	//  	switch i {
	//  	case 1:
	//  		println("one")
	//  	default:
	//  		println("One")
	//  	default:
	//  		println("1")
	//  	}
	//  }
	DuplicateDefault

	// BadTypeKeyword occurs when a .(type) expression is used anywhere other
	// than a type switch.
	//
	// Example:
	//  type I interface {
	//  	m()
	//  }
	//  var t I
	//  var _ = t.(type)
	BadTypeKeyword

	// InvalidTypeSwitch occurs when .(type) is used on an expression that is
	// not of interface type.
	//
	// Example:
	//  func f(i int) {
	//  	switch x := i.(type) {}
	//  }
	InvalidTypeSwitch

	// InvalidExprSwitch occurs when a switch expression is not comparable.
	//
	// Example:
	//  func _() {
	//  	var a struct{ _ func() }
	//  	switch a /* ERROR cannot switch on a */ {
	//  	}
	//  }
	InvalidExprSwitch

	/* control flow > select */

	// InvalidSelectCase occurs when a select case is not a channel send or
	// receive.
	//
	// Example:
	//  func checkChan(c <-chan int) bool {
	//  	select {
	//  	case c:
	//  		return true
	//  	default:
	//  		return false
	//  	}
	//  }
	InvalidSelectCase

	/* control flow > labels and jumps */

	// UndeclaredLabel occurs when an undeclared label is jumped to.
	//
	// Example:
	//  func f() {
	//  	goto L
	//  }
	UndeclaredLabel

	// DuplicateLabel occurs when a label is declared more than once.
	//
	// Example:
	//  func f() int {
	//  L:
	//  L:
	//  	return 1
	//  }
	DuplicateLabel

	// MisplacedLabel occurs when a break or continue label is not on a for,
	// switch, or select statement.
	//
	// Example:
	//  func f() {
	//  L:
	//  	a := []int{1,2,3}
	//  	for _, e := range a {
	//  		if e > 10 {
	//  			break L
	//  		}
	//  		println(a)
	//  	}
	//  }
	MisplacedLabel

	// UnusedLabel occurs when a label is declared but not used.
	//
	// Example:
	//  func f() {
	//  L:
	//  }
	UnusedLabel

	// JumpOverDecl occurs when a label jumps over a variable declaration.
	//
	// Example:
	//  func f() int {
	//  	goto L
	//  	x := 2
	//  L:
	//  	x++
	//  	return x
	//  }
	JumpOverDecl

	// JumpIntoBlock occurs when a forward jump goes to a label inside a nested
	// block.
	//
	// Example:
	//  func f(x int) {
	//  	goto L
	//  	if x > 0 {
	//  	L:
	//  		print("inside block")
	//  	}
	// }
	JumpIntoBlock

	/* control flow > calls */

	// InvalidMethodExpr occurs when a pointer method is called but the argument
	// is not addressable.
	//
	// Example:
	//  type T struct {}
	//
	//  func (*T) m() int { return 1 }
	//
	//  var _ = T.m(T{})
	InvalidMethodExpr

	// WrongArgCount occurs when too few or too many arguments are passed by a
	// function call.
	//
	// Example:
	//  func f(i int) {}
	//  var x = f()
	WrongArgCount

	// InvalidCall occurs when an expression is called that is not of function
	// type.
	//
	// Example:
	//  var x = "x"
	//  var y = x()
	InvalidCall

	/* control flow > suspended */

	// UnusedResults occurs when a restricted expression-only built-in function
	// is suspended via go or defer. Such a suspension discards the results of
	// these side-effect free built-in functions, and therefore is ineffectual.
	//
	// Example:
	//  func f(a []int) int {
	//  	defer len(a)
	//  	return i
	//  }
	UnusedResults

	// InvalidDefer occurs when a deferred expression is not a function call,
	// for example if the expression is a type conversion.
	//
	// Example:
	//  func f(i int) int {
	//  	defer int32(i)
	//  	return i
	//  }
	InvalidDefer

	// InvalidGo occurs when a go expression is not a function call, for example
	// if the expression is a type conversion.
	//
	// Example:
	//  func f(i int) int {
	//  	go int32(i)
	//  	return i
	//  }
	InvalidGo

	// All codes below were added in Go 1.17.

	/* decl */

	// BadDecl occurs when a declaration has invalid syntax.
	BadDecl

	// RepeatedDecl occurs when an identifier occurs more than once on the left
	// hand side of a short variable declaration.
	//
	// Example:
	//  func _() {
	//  	x, y, y := 1, 2, 3
	//  }
	RepeatedDecl

	/* unsafe */

	// InvalidUnsafeAdd occurs when unsafe.Add is called with a
	// length argument that is not of integer type.
	//
	// Example:
	//  import "unsafe"
	//
	//  var p unsafe.Pointer
	//  var _ = unsafe.Add(p, float64(1))
	InvalidUnsafeAdd

	// InvalidUnsafeSlice occurs when unsafe.Slice is called with a
	// pointer argument that is not of pointer type or a length argument
	// that is not of integer type, negative, or out of bounds.
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.Slice(x, 1)
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.Slice(&x, float64(1))
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.Slice(&x, -1)
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.Slice(&x, uint64(1) << 63)
	InvalidUnsafeSlice

	// All codes below were added in Go 1.18.

	/* features */

	// UnsupportedFeature occurs when a language feature is used that is not
	// supported at this Go version.
	UnsupportedFeature

	/* type params */

	// NotAGenericType occurs when a non-generic type is used where a generic
	// type is expected: in type or function instantiation.
	//
	// Example:
	//  type T int
	//
	//  var _ T[int]
	NotAGenericType

	// WrongTypeArgCount occurs when a type or function is instantiated with an
	// incorrect number of type arguments, including when a generic type or
	// function is used without instantiation.
	//
	// Errors involving failed type inference are assigned other error codes.
	//
	// Example:
	//  type T[p any] int
	//
	//  var _ T[int, string]
	//
	// Example:
	//  func f[T any]() {}
	//
	//  var x = f
	WrongTypeArgCount

	// CannotInferTypeArgs occurs when type or function type argument inference
	// fails to infer all type arguments.
	//
	// Example:
	//  func f[T any]() {}
	//
	//  func _() {
	//  	f()
	//  }
	//
	// Example:
	//   type N[P, Q any] struct{}
	//
	//   var _ N[int]
	CannotInferTypeArgs

	// InvalidTypeArg occurs when a type argument does not satisfy its
	// corresponding type parameter constraints.
	//
	// Example:
	//  type T[P ~int] struct{}
	//
	//  var _ T[string]
	InvalidTypeArg // arguments? InferenceFailed

	// InvalidInstanceCycle occurs when an invalid cycle is detected
	// within the instantiation graph.
	//
	// Example:
	//  func f[T any]() { f[*T]() }
	InvalidInstanceCycle

	// InvalidUnion occurs when an embedded union or approximation element is
	// not valid.
	//
	// Example:
	//  type _ interface {
	//   	~int | interface{ m() }
	//  }
	InvalidUnion

	// MisplacedConstraintIface occurs when a constraint-type interface is used
	// outside of constraint position.
	//
	// Example:
	//   type I interface { ~int }
	//
	//   var _ I
	MisplacedConstraintIface

	// InvalidMethodTypeParams occurs when methods have type parameters.
	//
	// It cannot be encountered with an AST parsed using go/parser.
	InvalidMethodTypeParams

	// MisplacedTypeParam occurs when a type parameter is used in a place where
	// it is not permitted.
	//
	// Example:
	//  type T[P any] P
	//
	// Example:
	//  type T[P any] struct{ *P }
	MisplacedTypeParam

	// InvalidUnsafeSliceData occurs when unsafe.SliceData is called with
	// an argument that is not of slice type. It also occurs if it is used
	// in a package compiled for a language version before go1.20.
	//
	// Example:
	//  import "unsafe"
	//
	//  var x int
	//  var _ = unsafe.SliceData(x)
	InvalidUnsafeSliceData

	// InvalidUnsafeString occurs when unsafe.String is called with
	// a length argument that is not of integer type, negative, or
	// out of bounds. It also occurs if it is used in a package
	// compiled for a language version before go1.20.
	//
	// Example:
	//  import "unsafe"
	//
	//  var b [10]byte
	//  var _ = unsafe.String(&b[0], -1)
	InvalidUnsafeString

	// InvalidUnsafeStringData occurs if it is used in a package
	// compiled for a language version before go1.20.
	_ // not used anymore

)
