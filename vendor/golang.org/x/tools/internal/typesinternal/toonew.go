// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typesinternal

import (
	"go/types"

	"golang.org/x/tools/internal/stdlib"
	"golang.org/x/tools/internal/versions"
)

// TooNewStdSymbols computes the set of package-level symbols
// exported by pkg that are not available at the specified version.
// The result maps each symbol to its minimum version.
//
// The pkg is allowed to contain type errors.
func TooNewStdSymbols(pkg *types.Package, version string) map[types.Object]string {
	disallowed := make(map[types.Object]string)

	// Pass 1: package-level symbols.
	symbols := stdlib.PackageSymbols[pkg.Path()]
	for _, sym := range symbols {
		symver := sym.Version.String()
		if versions.Before(version, symver) {
			switch sym.Kind {
			case stdlib.Func, stdlib.Var, stdlib.Const, stdlib.Type:
				disallowed[pkg.Scope().Lookup(sym.Name)] = symver
			}
		}
	}

	// Pass 2: fields and methods.
	//
	// We allow fields and methods if their associated type is
	// disallowed, as otherwise we would report false positives
	// for compatibility shims. Consider:
	//
	//   //go:build go1.22
	//   type T struct { F std.Real } // correct new API
	//
	//   //go:build !go1.22
	//   type T struct { F fake } // shim
	//   type fake struct { ... }
	//   func (fake) M () {}
	//
	// These alternative declarations of T use either the std.Real
	// type, introduced in go1.22, or a fake type, for the field
	// F. (The fakery could be arbitrarily deep, involving more
	// nested fields and methods than are shown here.) Clients
	// that use the compatibility shim T will compile with any
	// version of go, whether older or newer than go1.22, but only
	// the newer version will use the std.Real implementation.
	//
	// Now consider a reference to method M in new(T).F.M() in a
	// module that requires a minimum of go1.21. The analysis may
	// occur using a version of Go higher than 1.21, selecting the
	// first version of T, so the method M is Real.M. This would
	// spuriously cause the analyzer to report a reference to a
	// too-new symbol even though this expression compiles just
	// fine (with the fake implementation) using go1.21.
	for _, sym := range symbols {
		symVersion := sym.Version.String()
		if !versions.Before(version, symVersion) {
			continue // allowed
		}

		var obj types.Object
		switch sym.Kind {
		case stdlib.Field:
			typename, name := sym.SplitField()
			if t := pkg.Scope().Lookup(typename); t != nil && disallowed[t] == "" {
				obj, _, _ = types.LookupFieldOrMethod(t.Type(), false, pkg, name)
			}

		case stdlib.Method:
			ptr, recvname, name := sym.SplitMethod()
			if t := pkg.Scope().Lookup(recvname); t != nil && disallowed[t] == "" {
				obj, _, _ = types.LookupFieldOrMethod(t.Type(), ptr, pkg, name)
			}
		}
		if obj != nil {
			disallowed[obj] = symVersion
		}
	}

	return disallowed
}
