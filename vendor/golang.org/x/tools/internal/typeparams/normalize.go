// Copyright 2021 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typeparams

import (
	"errors"
	"fmt"
	"go/types"
	"os"
	"strings"
)

//go:generate go run copytermlist.go

const debug = false

var ErrEmptyTypeSet = errors.New("empty type set")

// StructuralTerms returns a slice of terms representing the normalized
// structural type restrictions of a type parameter, if any.
//
// Structural type restrictions of a type parameter are created via
// non-interface types embedded in its constraint interface (directly, or via a
// chain of interface embeddings). For example, in the declaration
//
//	type T[P interface{~int; m()}] int
//
// the structural restriction of the type parameter P is ~int.
//
// With interface embedding and unions, the specification of structural type
// restrictions may be arbitrarily complex. For example, consider the
// following:
//
//	type A interface{ ~string|~[]byte }
//
//	type B interface{ int|string }
//
//	type C interface { ~string|~int }
//
//	type T[P interface{ A|B; C }] int
//
// In this example, the structural type restriction of P is ~string|int: A|B
// expands to ~string|~[]byte|int|string, which reduces to ~string|~[]byte|int,
// which when intersected with C (~string|~int) yields ~string|int.
//
// StructuralTerms computes these expansions and reductions, producing a
// "normalized" form of the embeddings. A structural restriction is normalized
// if it is a single union containing no interface terms, and is minimal in the
// sense that removing any term changes the set of types satisfying the
// constraint. It is left as a proof for the reader that, modulo sorting, there
// is exactly one such normalized form.
//
// Because the minimal representation always takes this form, StructuralTerms
// returns a slice of tilde terms corresponding to the terms of the union in
// the normalized structural restriction. An error is returned if the
// constraint interface is invalid, exceeds complexity bounds, or has an empty
// type set. In the latter case, StructuralTerms returns ErrEmptyTypeSet.
//
// StructuralTerms makes no guarantees about the order of terms, except that it
// is deterministic.
func StructuralTerms(tparam *types.TypeParam) ([]*types.Term, error) {
	constraint := tparam.Constraint()
	if constraint == nil {
		return nil, fmt.Errorf("%s has nil constraint", tparam)
	}
	iface, _ := constraint.Underlying().(*types.Interface)
	if iface == nil {
		return nil, fmt.Errorf("constraint is %T, not *types.Interface", constraint.Underlying())
	}
	return InterfaceTermSet(iface)
}

// InterfaceTermSet computes the normalized terms for a constraint interface,
// returning an error if the term set cannot be computed or is empty. In the
// latter case, the error will be ErrEmptyTypeSet.
//
// See the documentation of StructuralTerms for more information on
// normalization.
func InterfaceTermSet(iface *types.Interface) ([]*types.Term, error) {
	return computeTermSet(iface)
}

// UnionTermSet computes the normalized terms for a union, returning an error
// if the term set cannot be computed or is empty. In the latter case, the
// error will be ErrEmptyTypeSet.
//
// See the documentation of StructuralTerms for more information on
// normalization.
func UnionTermSet(union *types.Union) ([]*types.Term, error) {
	return computeTermSet(union)
}

func computeTermSet(typ types.Type) ([]*types.Term, error) {
	tset, err := computeTermSetInternal(typ, make(map[types.Type]*termSet), 0)
	if err != nil {
		return nil, err
	}
	if tset.terms.isEmpty() {
		return nil, ErrEmptyTypeSet
	}
	if tset.terms.isAll() {
		return nil, nil
	}
	var terms []*types.Term
	for _, term := range tset.terms {
		terms = append(terms, types.NewTerm(term.tilde, term.typ))
	}
	return terms, nil
}

// A termSet holds the normalized set of terms for a given type.
//
// The name termSet is intentionally distinct from 'type set': a type set is
// all types that implement a type (and includes method restrictions), whereas
// a term set just represents the structural restrictions on a type.
type termSet struct {
	complete bool
	terms    termlist
}

func indentf(depth int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, strings.Repeat(".", depth)+format+"\n", args...)
}

func computeTermSetInternal(t types.Type, seen map[types.Type]*termSet, depth int) (res *termSet, err error) {
	if t == nil {
		panic("nil type")
	}

	if debug {
		indentf(depth, "%s", t.String())
		defer func() {
			if err != nil {
				indentf(depth, "=> %s", err)
			} else {
				indentf(depth, "=> %s", res.terms.String())
			}
		}()
	}

	const maxTermCount = 100
	if tset, ok := seen[t]; ok {
		if !tset.complete {
			return nil, fmt.Errorf("cycle detected in the declaration of %s", t)
		}
		return tset, nil
	}

	// Mark the current type as seen to avoid infinite recursion.
	tset := new(termSet)
	defer func() {
		tset.complete = true
	}()
	seen[t] = tset

	switch u := t.Underlying().(type) {
	case *types.Interface:
		// The term set of an interface is the intersection of the term sets of its
		// embedded types.
		tset.terms = allTermlist
		for i := 0; i < u.NumEmbeddeds(); i++ {
			embedded := u.EmbeddedType(i)
			if _, ok := embedded.Underlying().(*types.TypeParam); ok {
				return nil, fmt.Errorf("invalid embedded type %T", embedded)
			}
			tset2, err := computeTermSetInternal(embedded, seen, depth+1)
			if err != nil {
				return nil, err
			}
			tset.terms = tset.terms.intersect(tset2.terms)
		}
	case *types.Union:
		// The term set of a union is the union of term sets of its terms.
		tset.terms = nil
		for i := 0; i < u.Len(); i++ {
			t := u.Term(i)
			var terms termlist
			switch t.Type().Underlying().(type) {
			case *types.Interface:
				tset2, err := computeTermSetInternal(t.Type(), seen, depth+1)
				if err != nil {
					return nil, err
				}
				terms = tset2.terms
			case *types.TypeParam, *types.Union:
				// A stand-alone type parameter or union is not permitted as union
				// term.
				return nil, fmt.Errorf("invalid union term %T", t)
			default:
				if t.Type() == types.Typ[types.Invalid] {
					continue
				}
				terms = termlist{{t.Tilde(), t.Type()}}
			}
			tset.terms = tset.terms.union(terms)
			if len(tset.terms) > maxTermCount {
				return nil, fmt.Errorf("exceeded max term count %d", maxTermCount)
			}
		}
	case *types.TypeParam:
		panic("unreachable")
	default:
		// For all other types, the term set is just a single non-tilde term
		// holding the type itself.
		if u != types.Typ[types.Invalid] {
			tset.terms = termlist{{false, t}}
		}
	}
	return tset, nil
}

// under is a facade for the go/types internal function of the same name. It is
// used by typeterm.go.
func under(t types.Type) types.Type {
	return t.Underlying()
}
