// Copyright 2021 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package typeparams contains common utilities for writing tools that
// interact with generic Go code, as introduced with Go 1.18. It
// supplements the standard library APIs. Notably, the StructuralTerms
// API computes a minimal representation of the structural
// restrictions on a type parameter.
//
// An external version of these APIs is available in the
// golang.org/x/exp/typeparams module.
package typeparams

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnpackIndexExpr extracts data from AST nodes that represent index
// expressions.
//
// For an ast.IndexExpr, the resulting indices slice will contain exactly one
// index expression. For an ast.IndexListExpr (go1.18+), it may have a variable
// number of index expressions.
//
// For nodes that don't represent index expressions, the first return value of
// UnpackIndexExpr will be nil.
func UnpackIndexExpr(n ast.Node) (x ast.Expr, lbrack token.Pos, indices []ast.Expr, rbrack token.Pos) {
	switch e := n.(type) {
	case *ast.IndexExpr:
		return e.X, e.Lbrack, []ast.Expr{e.Index}, e.Rbrack
	case *ast.IndexListExpr:
		return e.X, e.Lbrack, e.Indices, e.Rbrack
	}
	return nil, token.NoPos, nil, token.NoPos
}

// PackIndexExpr returns an *ast.IndexExpr or *ast.IndexListExpr, depending on
// the cardinality of indices. Calling PackIndexExpr with len(indices) == 0
// will panic.
func PackIndexExpr(x ast.Expr, lbrack token.Pos, indices []ast.Expr, rbrack token.Pos) ast.Expr {
	switch len(indices) {
	case 0:
		panic("empty indices")
	case 1:
		return &ast.IndexExpr{
			X:      x,
			Lbrack: lbrack,
			Index:  indices[0],
			Rbrack: rbrack,
		}
	default:
		return &ast.IndexListExpr{
			X:       x,
			Lbrack:  lbrack,
			Indices: indices,
			Rbrack:  rbrack,
		}
	}
}

// IsTypeParam reports whether t is a type parameter (or an alias of one).
func IsTypeParam(t types.Type) bool {
	_, ok := types.Unalias(t).(*types.TypeParam)
	return ok
}

// GenericAssignableTo is a generalization of types.AssignableTo that
// implements the following rule for uninstantiated generic types:
//
// If V and T are generic named types, then V is considered assignable to T if,
// for every possible instantiation of V[A_1, ..., A_N], the instantiation
// T[A_1, ..., A_N] is valid and V[A_1, ..., A_N] implements T[A_1, ..., A_N].
//
// If T has structural constraints, they must be satisfied by V.
//
// For example, consider the following type declarations:
//
//	type Interface[T any] interface {
//		Accept(T)
//	}
//
//	type Container[T any] struct {
//		Element T
//	}
//
//	func (c Container[T]) Accept(t T) { c.Element = t }
//
// In this case, GenericAssignableTo reports that instantiations of Container
// are assignable to the corresponding instantiation of Interface.
func GenericAssignableTo(ctxt *types.Context, V, T types.Type) bool {
	V = types.Unalias(V)
	T = types.Unalias(T)

	// If V and T are not both named, or do not have matching non-empty type
	// parameter lists, fall back on types.AssignableTo.

	VN, Vnamed := V.(*types.Named)
	TN, Tnamed := T.(*types.Named)
	if !Vnamed || !Tnamed {
		return types.AssignableTo(V, T)
	}

	vtparams := VN.TypeParams()
	ttparams := TN.TypeParams()
	if vtparams.Len() == 0 || vtparams.Len() != ttparams.Len() || VN.TypeArgs().Len() != 0 || TN.TypeArgs().Len() != 0 {
		return types.AssignableTo(V, T)
	}

	// V and T have the same (non-zero) number of type params. Instantiate both
	// with the type parameters of V. This must always succeed for V, and will
	// succeed for T if and only if the type set of each type parameter of V is a
	// subset of the type set of the corresponding type parameter of T, meaning
	// that every instantiation of V corresponds to a valid instantiation of T.

	// Minor optimization: ensure we share a context across the two
	// instantiations below.
	if ctxt == nil {
		ctxt = types.NewContext()
	}

	var targs []types.Type
	for i := 0; i < vtparams.Len(); i++ {
		targs = append(targs, vtparams.At(i))
	}

	vinst, err := types.Instantiate(ctxt, V, targs, true)
	if err != nil {
		panic("type parameters should satisfy their own constraints")
	}

	tinst, err := types.Instantiate(ctxt, T, targs, true)
	if err != nil {
		return false
	}

	return types.AssignableTo(vinst, tinst)
}
