// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// This is a fork of internal/gover for use by x/tools until
// go1.21 and earlier are no longer supported by x/tools.

package versions

import "strings"

// A gover is a parsed Go gover: major[.Minor[.Patch]][kind[pre]]
// The numbers are the original decimal strings to avoid integer overflows
// and since there is very little actual math. (Probably overflow doesn't matter in practice,
// but at the time this code was written, there was an existing test that used
// go1.99999999999, which does not fit in an int on 32-bit platforms.
// The "big decimal" representation avoids the problem entirely.)
type gover struct {
	major string // decimal
	minor string // decimal or ""
	patch string // decimal or ""
	kind  string // "", "alpha", "beta", "rc"
	pre   string // decimal or ""
}

// compare returns -1, 0, or +1 depending on whether
// x < y, x == y, or x > y, interpreted as toolchain versions.
// The versions x and y must not begin with a "go" prefix: just "1.21" not "go1.21".
// Malformed versions compare less than well-formed versions and equal to each other.
// The language version "1.21" compares less than the release candidate and eventual releases "1.21rc1" and "1.21.0".
func compare(x, y string) int {
	vx := parse(x)
	vy := parse(y)

	if c := cmpInt(vx.major, vy.major); c != 0 {
		return c
	}
	if c := cmpInt(vx.minor, vy.minor); c != 0 {
		return c
	}
	if c := cmpInt(vx.patch, vy.patch); c != 0 {
		return c
	}
	if c := strings.Compare(vx.kind, vy.kind); c != 0 { // "" < alpha < beta < rc
		return c
	}
	if c := cmpInt(vx.pre, vy.pre); c != 0 {
		return c
	}
	return 0
}

// lang returns the Go language version. For example, lang("1.2.3") == "1.2".
func lang(x string) string {
	v := parse(x)
	if v.minor == "" || v.major == "1" && v.minor == "0" {
		return v.major
	}
	return v.major + "." + v.minor
}

// isValid reports whether the version x is valid.
func isValid(x string) bool {
	return parse(x) != gover{}
}

// parse parses the Go version string x into a version.
// It returns the zero version if x is malformed.
func parse(x string) gover {
	var v gover

	// Parse major version.
	var ok bool
	v.major, x, ok = cutInt(x)
	if !ok {
		return gover{}
	}
	if x == "" {
		// Interpret "1" as "1.0.0".
		v.minor = "0"
		v.patch = "0"
		return v
	}

	// Parse . before minor version.
	if x[0] != '.' {
		return gover{}
	}

	// Parse minor version.
	v.minor, x, ok = cutInt(x[1:])
	if !ok {
		return gover{}
	}
	if x == "" {
		// Patch missing is same as "0" for older versions.
		// Starting in Go 1.21, patch missing is different from explicit .0.
		if cmpInt(v.minor, "21") < 0 {
			v.patch = "0"
		}
		return v
	}

	// Parse patch if present.
	if x[0] == '.' {
		v.patch, x, ok = cutInt(x[1:])
		if !ok || x != "" {
			// Note that we are disallowing prereleases (alpha, beta, rc) for patch releases here (x != "").
			// Allowing them would be a bit confusing because we already have:
			//	1.21 < 1.21rc1
			// But a prerelease of a patch would have the opposite effect:
			//	1.21.3rc1 < 1.21.3
			// We've never needed them before, so let's not start now.
			return gover{}
		}
		return v
	}

	// Parse prerelease.
	i := 0
	for i < len(x) && (x[i] < '0' || '9' < x[i]) {
		if x[i] < 'a' || 'z' < x[i] {
			return gover{}
		}
		i++
	}
	if i == 0 {
		return gover{}
	}
	v.kind, x = x[:i], x[i:]
	if x == "" {
		return v
	}
	v.pre, x, ok = cutInt(x)
	if !ok || x != "" {
		return gover{}
	}

	return v
}

// cutInt scans the leading decimal number at the start of x to an integer
// and returns that value and the rest of the string.
func cutInt(x string) (n, rest string, ok bool) {
	i := 0
	for i < len(x) && '0' <= x[i] && x[i] <= '9' {
		i++
	}
	if i == 0 || x[0] == '0' && i != 1 { // no digits or unnecessary leading zero
		return "", "", false
	}
	return x[:i], x[i:], true
}

// cmpInt returns cmp.Compare(x, y) interpreting x and y as decimal numbers.
// (Copied from golang.org/x/mod/semver's compareInt.)
func cmpInt(x, y string) int {
	if x == y {
		return 0
	}
	if len(x) < len(y) {
		return -1
	}
	if len(x) > len(y) {
		return +1
	}
	if x < y {
		return -1
	} else {
		return +1
	}
}
