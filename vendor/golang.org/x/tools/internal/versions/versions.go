// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package versions

import (
	"strings"
)

// Note: If we use build tags to use go/versions when go >=1.22,
// we run into go.dev/issue/53737. Under some operations users would see an
// import of "go/versions" even if they would not compile the file.
// For example, during `go get -u ./...` (go.dev/issue/64490) we do not try to include
// For this reason, this library just a clone of go/versions for the moment.

// Lang returns the Go language version for version x.
// If x is not a valid version, Lang returns the empty string.
// For example:
//
//	Lang("go1.21rc2") = "go1.21"
//	Lang("go1.21.2") = "go1.21"
//	Lang("go1.21") = "go1.21"
//	Lang("go1") = "go1"
//	Lang("bad") = ""
//	Lang("1.21") = ""
func Lang(x string) string {
	v := lang(stripGo(x))
	if v == "" {
		return ""
	}
	return x[:2+len(v)] // "go"+v without allocation
}

// Compare returns -1, 0, or +1 depending on whether
// x < y, x == y, or x > y, interpreted as Go versions.
// The versions x and y must begin with a "go" prefix: "go1.21" not "1.21".
// Invalid versions, including the empty string, compare less than
// valid versions and equal to each other.
// The language version "go1.21" compares less than the
// release candidate and eventual releases "go1.21rc1" and "go1.21.0".
// Custom toolchain suffixes are ignored during comparison:
// "go1.21.0" and "go1.21.0-bigcorp" are equal.
func Compare(x, y string) int { return compare(stripGo(x), stripGo(y)) }

// IsValid reports whether the version x is valid.
func IsValid(x string) bool { return isValid(stripGo(x)) }

// stripGo converts from a "go1.21" version to a "1.21" version.
// If v does not start with "go", stripGo returns the empty string (a known invalid version).
func stripGo(v string) string {
	v, _, _ = strings.Cut(v, "-") // strip -bigcorp suffix.
	if len(v) < 2 || v[:2] != "go" {
		return ""
	}
	return v[2:]
}
