// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package analysisinternal provides gopls' internal analyses with a
// number of helper functions that operate on typed syntax trees.
package analysisinternal

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	pathpkg "path"

	"golang.org/x/tools/go/analysis"
)

func TypeErrorEndPos(fset *token.FileSet, src []byte, start token.Pos) token.Pos {
	// Get the end position for the type error.
	file := fset.File(start)
	if file == nil {
		return start
	}
	if offset := file.PositionFor(start, false).Offset; offset > len(src) {
		return start
	} else {
		src = src[offset:]
	}

	// Attempt to find a reasonable end position for the type error.
	//
	// TODO(rfindley): the heuristic implemented here is unclear. It looks like
	// it seeks the end of the primary operand starting at start, but that is not
	// quite implemented (for example, given a func literal this heuristic will
	// return the range of the func keyword).
	//
	// We should formalize this heuristic, or deprecate it by finally proposing
	// to add end position to all type checker errors.
	//
	// Nevertheless, ensure that the end position at least spans the current
	// token at the cursor (this was golang/go#69505).
	end := start
	{
		var s scanner.Scanner
		fset := token.NewFileSet()
		f := fset.AddFile("", fset.Base(), len(src))
		s.Init(f, src, nil /* no error handler */, scanner.ScanComments)
		pos, tok, lit := s.Scan()
		if tok != token.SEMICOLON && token.Pos(f.Base()) <= pos && pos <= token.Pos(f.Base()+f.Size()) {
			off := file.Offset(pos) + len(lit)
			src = src[off:]
			end += token.Pos(off)
		}
	}

	// Look for bytes that might terminate the current operand. See note above:
	// this is imprecise.
	if width := bytes.IndexAny(src, " \n,():;[]+-*/"); width > 0 {
		end += token.Pos(width)
	}
	return end
}

// StmtToInsertVarBefore returns the ast.Stmt before which we can
// safely insert a new var declaration, or nil if the path denotes a
// node outside any statement.
//
// Basic Example:
//
//	z := 1
//	y := z + x
//
// If x is undeclared, then this function would return `y := z + x`, so that we
// can insert `x := ` on the line before `y := z + x`.
//
// If stmt example:
//
//	if z == 1 {
//	} else if z == y {}
//
// If y is undeclared, then this function would return `if z == 1 {`, because we cannot
// insert a statement between an if and an else if statement. As a result, we need to find
// the top of the if chain to insert `y := ` before.
func StmtToInsertVarBefore(path []ast.Node) ast.Stmt {
	enclosingIndex := -1
	for i, p := range path {
		if _, ok := p.(ast.Stmt); ok {
			enclosingIndex = i
			break
		}
	}
	if enclosingIndex == -1 {
		return nil // no enclosing statement: outside function
	}
	enclosingStmt := path[enclosingIndex]
	switch enclosingStmt.(type) {
	case *ast.IfStmt:
		// The enclosingStmt is inside of the if declaration,
		// We need to check if we are in an else-if stmt and
		// get the base if statement.
		// TODO(adonovan): for non-constants, it may be preferable
		// to add the decl as the Init field of the innermost
		// enclosing ast.IfStmt.
		return baseIfStmt(path, enclosingIndex)
	case *ast.CaseClause:
		// Get the enclosing switch stmt if the enclosingStmt is
		// inside of the case statement.
		for i := enclosingIndex + 1; i < len(path); i++ {
			if node, ok := path[i].(*ast.SwitchStmt); ok {
				return node
			} else if node, ok := path[i].(*ast.TypeSwitchStmt); ok {
				return node
			}
		}
	}
	if len(path) <= enclosingIndex+1 {
		return enclosingStmt.(ast.Stmt)
	}
	// Check if the enclosing statement is inside another node.
	switch expr := path[enclosingIndex+1].(type) {
	case *ast.IfStmt:
		// Get the base if statement.
		return baseIfStmt(path, enclosingIndex+1)
	case *ast.ForStmt:
		if expr.Init == enclosingStmt || expr.Post == enclosingStmt {
			return expr
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return expr.(ast.Stmt)
	}
	return enclosingStmt.(ast.Stmt)
}

// baseIfStmt walks up the if/else-if chain until we get to
// the top of the current if chain.
func baseIfStmt(path []ast.Node, index int) ast.Stmt {
	stmt := path[index]
	for i := index + 1; i < len(path); i++ {
		if node, ok := path[i].(*ast.IfStmt); ok && node.Else == stmt {
			stmt = node
			continue
		}
		break
	}
	return stmt.(ast.Stmt)
}

// WalkASTWithParent walks the AST rooted at n. The semantics are
// similar to ast.Inspect except it does not call f(nil).
func WalkASTWithParent(n ast.Node, f func(n ast.Node, parent ast.Node) bool) {
	var ancestors []ast.Node
	ast.Inspect(n, func(n ast.Node) (recurse bool) {
		if n == nil {
			ancestors = ancestors[:len(ancestors)-1]
			return false
		}

		var parent ast.Node
		if len(ancestors) > 0 {
			parent = ancestors[len(ancestors)-1]
		}
		ancestors = append(ancestors, n)
		return f(n, parent)
	})
}

// MatchingIdents finds the names of all identifiers in 'node' that match any of the given types.
// 'pos' represents the position at which the identifiers may be inserted. 'pos' must be within
// the scope of each of identifier we select. Otherwise, we will insert a variable at 'pos' that
// is unrecognized.
func MatchingIdents(typs []types.Type, node ast.Node, pos token.Pos, info *types.Info, pkg *types.Package) map[types.Type][]string {

	// Initialize matches to contain the variable types we are searching for.
	matches := make(map[types.Type][]string)
	for _, typ := range typs {
		if typ == nil {
			continue // TODO(adonovan): is this reachable?
		}
		matches[typ] = nil // create entry
	}

	seen := map[types.Object]struct{}{}
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		// Prevent circular definitions. If 'pos' is within an assignment statement, do not
		// allow any identifiers in that assignment statement to be selected. Otherwise,
		// we could do the following, where 'x' satisfies the type of 'f0':
		//
		// x := fakeStruct{f0: x}
		//
		if assign, ok := n.(*ast.AssignStmt); ok && pos > assign.Pos() && pos <= assign.End() {
			return false
		}
		if n.End() > pos {
			return n.Pos() <= pos
		}
		ident, ok := n.(*ast.Ident)
		if !ok || ident.Name == "_" {
			return true
		}
		obj := info.Defs[ident]
		if obj == nil || obj.Type() == nil {
			return true
		}
		if _, ok := obj.(*types.TypeName); ok {
			return true
		}
		// Prevent duplicates in matches' values.
		if _, ok = seen[obj]; ok {
			return true
		}
		seen[obj] = struct{}{}
		// Find the scope for the given position. Then, check whether the object
		// exists within the scope.
		innerScope := pkg.Scope().Innermost(pos)
		if innerScope == nil {
			return true
		}
		_, foundObj := innerScope.LookupParent(ident.Name, pos)
		if foundObj != obj {
			return true
		}
		// The object must match one of the types that we are searching for.
		// TODO(adonovan): opt: use typeutil.Map?
		if names, ok := matches[obj.Type()]; ok {
			matches[obj.Type()] = append(names, ident.Name)
		} else {
			// If the object type does not exactly match
			// any of the target types, greedily find the first
			// target type that the object type can satisfy.
			for typ := range matches {
				if equivalentTypes(obj.Type(), typ) {
					matches[typ] = append(matches[typ], ident.Name)
				}
			}
		}
		return true
	})
	return matches
}

func equivalentTypes(want, got types.Type) bool {
	if types.Identical(want, got) {
		return true
	}
	// Code segment to help check for untyped equality from (golang/go#32146).
	if rhs, ok := want.(*types.Basic); ok && rhs.Info()&types.IsUntyped > 0 {
		if lhs, ok := got.Underlying().(*types.Basic); ok {
			return rhs.Info()&types.IsConstType == lhs.Info()&types.IsConstType
		}
	}
	return types.AssignableTo(want, got)
}

// MakeReadFile returns a simple implementation of the Pass.ReadFile function.
func MakeReadFile(pass *analysis.Pass) func(filename string) ([]byte, error) {
	return func(filename string) ([]byte, error) {
		if err := CheckReadable(pass, filename); err != nil {
			return nil, err
		}
		return os.ReadFile(filename)
	}
}

// CheckReadable enforces the access policy defined by the ReadFile field of [analysis.Pass].
func CheckReadable(pass *analysis.Pass, filename string) error {
	if slicesContains(pass.OtherFiles, filename) ||
		slicesContains(pass.IgnoredFiles, filename) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.Fset.File(f.FileStart).Name() == filename {
			return nil
		}
	}
	return fmt.Errorf("Pass.ReadFile: %s is not among OtherFiles, IgnoredFiles, or names of Files", filename)
}

// TODO(adonovan): use go1.21 slices.Contains.
func slicesContains[S ~[]E, E comparable](slice S, x E) bool {
	for _, elem := range slice {
		if elem == x {
			return true
		}
	}
	return false
}

// AddImport checks whether this file already imports pkgpath and
// that import is in scope at pos. If so, it returns the name under
// which it was imported and a zero edit. Otherwise, it adds a new
// import of pkgpath, using a name derived from the preferred name,
// and returns the chosen name along with the edit for the new import.
//
// It does not mutate its arguments.
func AddImport(info *types.Info, file *ast.File, pos token.Pos, pkgpath, preferredName string) (name string, newImport []analysis.TextEdit) {
	// Find innermost enclosing lexical block.
	scope := info.Scopes[file].Innermost(pos)
	if scope == nil {
		panic("no enclosing lexical block")
	}

	// Is there an existing import of this package?
	// If so, are we in its scope? (not shadowed)
	for _, spec := range file.Imports {
		pkgname, ok := importedPkgName(info, spec)
		if ok && pkgname.Imported().Path() == pkgpath {
			if _, obj := scope.LookupParent(pkgname.Name(), pos); obj == pkgname {
				return pkgname.Name(), nil
			}
		}
	}

	// We must add a new import.
	// Ensure we have a fresh name.
	newName := preferredName
	for i := 0; ; i++ {
		if _, obj := scope.LookupParent(newName, pos); obj == nil {
			break // fresh
		}
		newName = fmt.Sprintf("%s%d", preferredName, i)
	}

	// For now, keep it real simple: create a new import
	// declaration before the first existing declaration (which
	// must exist), including its comments, and let goimports tidy it up.
	//
	// Use a renaming import whenever the preferred name is not
	// available, or the chosen name does not match the last
	// segment of its path.
	newText := fmt.Sprintf("import %q\n\n", pkgpath)
	if newName != preferredName || newName != pathpkg.Base(pkgpath) {
		newText = fmt.Sprintf("import %s %q\n\n", newName, pkgpath)
	}
	decl0 := file.Decls[0]
	var before ast.Node = decl0
	switch decl0 := decl0.(type) {
	case *ast.GenDecl:
		if decl0.Doc != nil {
			before = decl0.Doc
		}
	case *ast.FuncDecl:
		if decl0.Doc != nil {
			before = decl0.Doc
		}
	}
	return newName, []analysis.TextEdit{{
		Pos:     before.Pos(),
		End:     before.Pos(),
		NewText: []byte(newText),
	}}
}

// importedPkgName returns the PkgName object declared by an ImportSpec.
// TODO(adonovan): use go1.22's Info.PkgNameOf.
func importedPkgName(info *types.Info, imp *ast.ImportSpec) (*types.PkgName, bool) {
	var obj types.Object
	if imp.Name != nil {
		obj = info.Defs[imp.Name]
	} else {
		obj = info.Implicits[imp]
	}
	pkgname, ok := obj.(*types.PkgName)
	return pkgname, ok
}
