// Copyright 2016 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package cfg constructs a simple control-flow graph (CFG) of the
// statements and expressions within a single function.
//
// Use cfg.New to construct the CFG for a function body.
//
// The blocks of the CFG contain all the function's non-control
// statements.  The CFG does not contain control statements such as If,
// Switch, Select, and Branch, but does contain their subexpressions;
// also, each block records the control statement (Block.Stmt) that
// gave rise to it and its relationship (Block.Kind) to that statement.
//
// For example, this source code:
//
//	if x := f(); x != nil {
//		T()
//	} else {
//		F()
//	}
//
// produces this CFG:
//
//	1:  x := f()		Body
//	    x != nil
//	    succs: 2, 3
//	2:  T()			IfThen
//	    succs: 4
//	3:  F()			IfElse
//	    succs: 4
//	4:			IfDone
//
// The CFG does contain Return statements; even implicit returns are
// materialized (at the position of the function's closing brace).
//
// The CFG does not record conditions associated with conditional branch
// edges, nor the short-circuit semantics of the && and || operators,
// nor abnormal control flow caused by panic.  If you need this
// information, use golang.org/x/tools/go/ssa instead.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
)

// A CFG represents the control-flow graph of a single function.
//
// The entry point is Blocks[0]; there may be multiple return blocks.
type CFG struct {
	fset   *token.FileSet
	Blocks []*Block // block[0] is entry; order otherwise undefined
}

// A Block represents a basic block: a list of statements and
// expressions that are always evaluated sequentially.
//
// A block may have 0-2 successors: zero for a return block or a block
// that calls a function such as panic that never returns; one for a
// normal (jump) block; and two for a conditional (if) block.
type Block struct {
	Nodes []ast.Node // statements, expressions, and ValueSpecs
	Succs []*Block   // successor nodes in the graph
	Index int32      // index within CFG.Blocks
	Live  bool       // block is reachable from entry
	Kind  BlockKind  // block kind
	Stmt  ast.Stmt   // statement that gave rise to this block (see BlockKind for details)

	succs2 [2]*Block // underlying array for Succs
}

// A BlockKind identifies the purpose of a block.
// It also determines the possible types of its Stmt field.
type BlockKind uint8

const (
	KindInvalid BlockKind = iota // Stmt=nil

	KindUnreachable     // unreachable block after {Branch,Return}Stmt / no-return call ExprStmt
	KindBody            // function body BlockStmt
	KindForBody         // body of ForStmt
	KindForDone         // block after ForStmt
	KindForLoop         // head of ForStmt
	KindForPost         // post condition of ForStmt
	KindIfDone          // block after IfStmt
	KindIfElse          // else block of IfStmt
	KindIfThen          // then block of IfStmt
	KindLabel           // labeled block of BranchStmt (Stmt may be nil for dangling label)
	KindRangeBody       // body of RangeStmt
	KindRangeDone       // block after RangeStmt
	KindRangeLoop       // head of RangeStmt
	KindSelectCaseBody  // body of SelectStmt
	KindSelectDone      // block after SelectStmt
	KindSelectAfterCase // block after a CommClause
	KindSwitchCaseBody  // body of CaseClause
	KindSwitchDone      // block after {Type.}SwitchStmt
	KindSwitchNextCase  // secondary expression of a multi-expression CaseClause
)

func (kind BlockKind) String() string {
	return [...]string{
		KindInvalid:         "Invalid",
		KindUnreachable:     "Unreachable",
		KindBody:            "Body",
		KindForBody:         "ForBody",
		KindForDone:         "ForDone",
		KindForLoop:         "ForLoop",
		KindForPost:         "ForPost",
		KindIfDone:          "IfDone",
		KindIfElse:          "IfElse",
		KindIfThen:          "IfThen",
		KindLabel:           "Label",
		KindRangeBody:       "RangeBody",
		KindRangeDone:       "RangeDone",
		KindRangeLoop:       "RangeLoop",
		KindSelectCaseBody:  "SelectCaseBody",
		KindSelectDone:      "SelectDone",
		KindSelectAfterCase: "SelectAfterCase",
		KindSwitchCaseBody:  "SwitchCaseBody",
		KindSwitchDone:      "SwitchDone",
		KindSwitchNextCase:  "SwitchNextCase",
	}[kind]
}

// New returns a new control-flow graph for the specified function body,
// which must be non-nil.
//
// The CFG builder calls mayReturn to determine whether a given function
// call may return.  For example, calls to panic, os.Exit, and log.Fatal
// do not return, so the builder can remove infeasible graph edges
// following such calls.  The builder calls mayReturn only for a
// CallExpr beneath an ExprStmt.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	b := builder{
		mayReturn: mayReturn,
		cfg:       new(CFG),
	}
	b.current = b.newBlock(KindBody, body)
	b.stmt(body)

	// Compute liveness (reachability from entry point), breadth-first.
	q := make([]*Block, 0, len(b.cfg.Blocks))
	q = append(q, b.cfg.Blocks[0]) // entry point
	for len(q) > 0 {
		b := q[len(q)-1]
		q = q[:len(q)-1]

		if !b.Live {
			b.Live = true
			q = append(q, b.Succs...)
		}
	}

	// Does control fall off the end of the function's body?
	// Make implicit return explicit.
	if b.current != nil && b.current.Live {
		b.add(&ast.ReturnStmt{
			Return: body.End() - 1,
		})
	}

	return b.cfg
}

func (b *Block) String() string {
	return fmt.Sprintf("block %d (%s)", b.Index, b.comment(nil))
}

func (b *Block) comment(fset *token.FileSet) string {
	s := b.Kind.String()
	if fset != nil && b.Stmt != nil {
		s = fmt.Sprintf("%s@L%d", s, fset.Position(b.Stmt.Pos()).Line)
	}
	return s
}

// Return returns the return statement at the end of this block if present, nil
// otherwise.
//
// When control falls off the end of the function, the ReturnStmt is synthetic
// and its [ast.Node.End] position may be beyond the end of the file.
func (b *Block) Return() (ret *ast.ReturnStmt) {
	if len(b.Nodes) > 0 {
		ret, _ = b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	}
	return
}

// Format formats the control-flow graph for ease of debugging.
func (g *CFG) Format(fset *token.FileSet) string {
	var buf bytes.Buffer
	for _, b := range g.Blocks {
		fmt.Fprintf(&buf, ".%d: # %s\n", b.Index, b.comment(fset))
		for _, n := range b.Nodes {
			fmt.Fprintf(&buf, "\t%s\n", formatNode(fset, n))
		}
		if len(b.Succs) > 0 {
			fmt.Fprintf(&buf, "\tsuccs:")
			for _, succ := range b.Succs {
				fmt.Fprintf(&buf, " %d", succ.Index)
			}
			buf.WriteByte('\n')
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

// Dot returns the control-flow graph in the [Dot graph description language].
// Use a command such as 'dot -Tsvg' to render it in a form viewable in a browser.
// This method is provided as a debugging aid; the details of the
// output are unspecified and may change.
//
// [Dot graph description language]: ​​https://en.wikipedia.org/wiki/DOT_(graph_description_language)
func (g *CFG) Dot(fset *token.FileSet) string {
	var buf bytes.Buffer
	buf.WriteString("digraph CFG {\n")
	buf.WriteString("  node [shape=box];\n")
	for _, b := range g.Blocks {
		// node label
		var text bytes.Buffer
		text.WriteString(b.comment(fset))
		for _, n := range b.Nodes {
			fmt.Fprintf(&text, "\n%s", formatNode(fset, n))
		}

		// node and edges
		fmt.Fprintf(&buf, "  n%d [label=%q];\n", b.Index, &text)
		for _, succ := range b.Succs {
			fmt.Fprintf(&buf, "  n%d -> n%d;\n", b.Index, succ.Index)
		}
	}
	buf.WriteString("}\n")
	return buf.String()
}

func formatNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	format.Node(&buf, fset, n)
	// Indent secondary lines by a tab.
	return string(bytes.Replace(buf.Bytes(), []byte("\n"), []byte("\n\t"), -1))
}
