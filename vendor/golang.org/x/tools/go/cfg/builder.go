// Copyright 2016 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package cfg

// This file implements the CFG construction pass.

import (
	"fmt"
	"go/ast"
	"go/token"
)

type builder struct {
	cfg       *CFG
	mayReturn func(*ast.CallExpr) bool
	current   *Block
	lblocks   map[string]*lblock // labeled blocks
	targets   *targets           // linked stack of branch targets
}

func (b *builder) stmt(_s ast.Stmt) {
	// The label of the current statement.  If non-nil, its _goto
	// target is always set; its _break and _continue are set only
	// within the body of switch/typeswitch/select/for/range.
	// It is effectively an additional default-nil parameter of stmt().
	var label *lblock
start:
	switch s := _s.(type) {
	case *ast.BadStmt,
		*ast.SendStmt,
		*ast.IncDecStmt,
		*ast.GoStmt,
		*ast.DeferStmt,
		*ast.EmptyStmt,
		*ast.AssignStmt:
		// No effect on control flow.
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && !b.mayReturn(call) {
			// Calls to panic, os.Exit, etc, never return.
			b.current = b.newBlock(KindUnreachable, s)
		}

	case *ast.DeclStmt:
		// Treat each var ValueSpec as a separate statement.
		d := s.Decl.(*ast.GenDecl)
		if d.Tok == token.VAR {
			for _, spec := range d.Specs {
				if spec, ok := spec.(*ast.ValueSpec); ok {
					b.add(spec)
				}
			}
		}

	case *ast.LabeledStmt:
		label = b.labeledBlock(s.Label, s)
		b.jump(label._goto)
		b.current = label._goto
		_s = s.Stmt
		goto start // effectively: tailcall stmt(g, s.Stmt, label)

	case *ast.ReturnStmt:
		b.add(s)
		b.current = b.newBlock(KindUnreachable, s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock(KindIfThen, s)
		done := b.newBlock(KindIfDone, s)
		_else := done
		if s.Else != nil {
			_else = b.newBlock(KindIfElse, s)
		}
		b.add(s.Cond)
		b.ifelse(then, _else)
		b.current = then
		b.stmt(s.Body)
		b.jump(done)

		if s.Else != nil {
			b.current = _else
			b.stmt(s.Else)
			b.jump(done)
		}

		b.current = done

	case *ast.SwitchStmt:
		b.switchStmt(s, label)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	default:
		panic(fmt.Sprintf("unexpected statement kind: %T", s))
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var block *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lb := b.labeledBlock(s.Label, nil); lb != nil {
				block = lb._break
			}
		} else {
			for t := b.targets; t != nil && block == nil; t = t.tail {
				block = t._break
			}
		}

	case token.CONTINUE:
		if s.Label != nil {
			if lb := b.labeledBlock(s.Label, nil); lb != nil {
				block = lb._continue
			}
		} else {
			for t := b.targets; t != nil && block == nil; t = t.tail {
				block = t._continue
			}
		}

	case token.FALLTHROUGH:
		for t := b.targets; t != nil && block == nil; t = t.tail {
			block = t._fallthrough
		}

	case token.GOTO:
		if s.Label != nil {
			block = b.labeledBlock(s.Label, nil)._goto
		}
	}
	if block == nil { // ill-typed (e.g. undefined label)
		block = b.newBlock(KindUnreachable, s)
	}
	b.jump(block)
	b.current = b.newBlock(KindUnreachable, s)
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label *lblock) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	done := b.newBlock(KindSwitchDone, s)
	if label != nil {
		label._break = done
	}
	// We pull the default case (if present) down to the end.
	// But each fallthrough label must point to the next
	// body block in source order, so we preallocate a
	// body block (fallthru) for the next case.
	// Unfortunately this makes for a confusing block order.
	var defaultBody *[]ast.Stmt
	var defaultFallthrough *Block
	var fallthru, defaultBlock *Block
	ncases := len(s.Body.List)
	for i, clause := range s.Body.List {
		body := fallthru
		if body == nil {
			body = b.newBlock(KindSwitchCaseBody, clause) // first case only
		}

		// Preallocate body block for the next case.
		fallthru = done
		if i+1 < ncases {
			fallthru = b.newBlock(KindSwitchCaseBody, s.Body.List[i+1])
		}

		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			// Default case.
			defaultBody = &cc.Body
			defaultFallthrough = fallthru
			defaultBlock = body
			continue
		}

		var nextCond *Block
		for _, cond := range cc.List {
			nextCond = b.newBlock(KindSwitchNextCase, cc)
			b.add(cond) // one half of the tag==cond condition
			b.ifelse(body, nextCond)
			b.current = nextCond
		}
		b.current = body
		b.targets = &targets{
			tail:         b.targets,
			_break:       done,
			_fallthrough: fallthru,
		}
		b.stmtList(cc.Body)
		b.targets = b.targets.tail
		b.jump(done)
		b.current = nextCond
	}
	if defaultBlock != nil {
		b.jump(defaultBlock)
		b.current = defaultBlock
		b.targets = &targets{
			tail:         b.targets,
			_break:       done,
			_fallthrough: defaultFallthrough,
		}
		b.stmtList(*defaultBody)
		b.targets = b.targets.tail
	}
	b.jump(done)
	b.current = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label *lblock) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Assign != nil {
		b.add(s.Assign)
	}

	done := b.newBlock(KindSwitchDone, s)
	if label != nil {
		label._break = done
	}
	var default_ *ast.CaseClause
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			default_ = cc
			continue
		}
		body := b.newBlock(KindSwitchCaseBody, cc)
		var next *Block
		for _, casetype := range cc.List {
			next = b.newBlock(KindSwitchNextCase, cc)
			// casetype is a type, so don't call b.add(casetype).
			// This block logically contains a type assertion,
			// x.(casetype), but it's unclear how to represent x.
			_ = casetype
			b.ifelse(body, next)
			b.current = next
		}
		b.current = body
		b.typeCaseBody(cc, done)
		b.current = next
	}
	if default_ != nil {
		b.typeCaseBody(default_, done)
	} else {
		b.jump(done)
	}
	b.current = done
}

func (b *builder) typeCaseBody(cc *ast.CaseClause, done *Block) {
	b.targets = &targets{
		tail:   b.targets,
		_break: done,
	}
	b.stmtList(cc.Body)
	b.targets = b.targets.tail
	b.jump(done)
}

func (b *builder) selectStmt(s *ast.SelectStmt, label *lblock) {
	// First evaluate channel expressions.
	// TODO(adonovan): fix: evaluate only channel exprs here.
	for _, clause := range s.Body.List {
		if comm := clause.(*ast.CommClause).Comm; comm != nil {
			b.stmt(comm)
		}
	}

	done := b.newBlock(KindSelectDone, s)
	if label != nil {
		label._break = done
	}

	var defaultBody *[]ast.Stmt
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CommClause)
		if clause.Comm == nil {
			defaultBody = &clause.Body
			continue
		}
		body := b.newBlock(KindSelectCaseBody, clause)
		next := b.newBlock(KindSelectAfterCase, clause)
		b.ifelse(body, next)
		b.current = body
		b.targets = &targets{
			tail:   b.targets,
			_break: done,
		}
		switch comm := clause.Comm.(type) {
		case *ast.ExprStmt: // <-ch
			// nop
		case *ast.AssignStmt: // x := <-states[state].Chan
			b.add(comm.Lhs[0])
		}
		b.stmtList(clause.Body)
		b.targets = b.targets.tail
		b.jump(done)
		b.current = next
	}
	if defaultBody != nil {
		b.targets = &targets{
			tail:   b.targets,
			_break: done,
		}
		b.stmtList(*defaultBody)
		b.targets = b.targets.tail
		b.jump(done)
	}
	b.current = done
}

func (b *builder) forStmt(s *ast.ForStmt, label *lblock) {
	//	...init...
	//      jump loop
	// loop:
	//      if cond goto body else done
	// body:
	//      ...body...
	//      jump post
	// post:				 (target of continue)
	//      ...post...
	//      jump loop
	// done:                                 (target of break)
	if s.Init != nil {
		b.stmt(s.Init)
	}
	body := b.newBlock(KindForBody, s)
	done := b.newBlock(KindForDone, s) // target of 'break'
	loop := body                       // target of back-edge
	if s.Cond != nil {
		loop = b.newBlock(KindForLoop, s)
	}
	cont := loop // target of 'continue'
	if s.Post != nil {
		cont = b.newBlock(KindForPost, s)
	}
	if label != nil {
		label._break = done
		label._continue = cont
	}
	b.jump(loop)
	b.current = loop
	if loop != body {
		b.add(s.Cond)
		b.ifelse(body, done)
		b.current = body
	}
	b.targets = &targets{
		tail:      b.targets,
		_break:    done,
		_continue: cont,
	}
	b.stmt(s.Body)
	b.targets = b.targets.tail
	b.jump(cont)

	if s.Post != nil {
		b.current = cont
		b.stmt(s.Post)
		b.jump(loop) // back-edge
	}
	b.current = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label *lblock) {
	b.add(s.X)

	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}

	//      ...
	// loop:                                   (target of continue)
	// 	if ... goto body else done
	// body:
	//      ...
	// 	jump loop
	// done:                                   (target of break)

	loop := b.newBlock(KindRangeLoop, s)
	b.jump(loop)
	b.current = loop

	body := b.newBlock(KindRangeBody, s)
	done := b.newBlock(KindRangeDone, s)
	b.ifelse(body, done)
	b.current = body

	if label != nil {
		label._break = done
		label._continue = loop
	}
	b.targets = &targets{
		tail:      b.targets,
		_break:    done,
		_continue: loop,
	}
	b.stmt(s.Body)
	b.targets = b.targets.tail
	b.jump(loop) // back-edge
	b.current = done
}

// -------- helpers --------

// Destinations associated with unlabeled for/switch/select stmts.
// We push/pop one of these as we enter/leave each construct and for
// each BranchStmt we scan for the innermost target of the right type.
type targets struct {
	tail         *targets // rest of stack
	_break       *Block
	_continue    *Block
	_fallthrough *Block
}

// Destinations associated with a labeled block.
// We populate these as labels are encountered in forward gotos or
// labeled statements.
type lblock struct {
	_goto     *Block
	_break    *Block
	_continue *Block
}

// labeledBlock returns the branch target associated with the
// specified label, creating it if needed.
func (b *builder) labeledBlock(label *ast.Ident, stmt *ast.LabeledStmt) *lblock {
	lb := b.lblocks[label.Name]
	if lb == nil {
		lb = &lblock{_goto: b.newBlock(KindLabel, nil)}
		if b.lblocks == nil {
			b.lblocks = make(map[string]*lblock)
		}
		b.lblocks[label.Name] = lb
	}
	// Fill in the label later (in case of forward goto).
	// Stmt may be set already if labels are duplicated (ill-typed).
	if stmt != nil && lb._goto.Stmt == nil {
		lb._goto.Stmt = stmt
	}
	return lb
}

// newBlock appends a new unconnected basic block to b.cfg's block
// slice and returns it.
// It does not automatically become the current block.
// comment is an optional string for more readable debugging output.
func (b *builder) newBlock(kind BlockKind, stmt ast.Stmt) *Block {
	g := b.cfg
	block := &Block{
		Index: int32(len(g.Blocks)),
		Kind:  kind,
		Stmt:  stmt,
	}
	block.Succs = block.succs2[:0]
	g.Blocks = append(g.Blocks, block)
	return block
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// jump adds an edge from the current block to the target block,
// and sets b.current to nil.
func (b *builder) jump(target *Block) {
	b.current.Succs = append(b.current.Succs, target)
	b.current = nil
}

// ifelse emits edges from the current block to the t and f blocks,
// and sets b.current to nil.
func (b *builder) ifelse(t, f *Block) {
	b.current.Succs = append(b.current.Succs, t, f)
	b.current = nil
}
