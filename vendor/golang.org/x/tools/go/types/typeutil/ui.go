// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package typeutil

// This file defines utilities for user interfaces that display types.

import (
	"go/types"
)

// IntuitiveMethodSet returns the intuitive method set of a type T,
// which is the set of methods you can call on an addressable value of
// that type.
//
// The result always contains MethodSet(T), and is exactly MethodSet(T)
// for interface types and for pointer-to-concrete types.
// For all other concrete types T, the result additionally
// contains each method belonging to *T if there is no identically
// named method on T itself.
//
// This corresponds to user intuition about method sets;
// this function is intended only for user interfaces.
//
// The order of the result is as for types.MethodSet(T).
func IntuitiveMethodSet(T types.Type, msets *MethodSetCache) []*types.Selection {
	isPointerToConcrete := func(T types.Type) bool {
		ptr, ok := types.Unalias(T).(*types.Pointer)
		return ok && !types.IsInterface(ptr.Elem())
	}

	var result []*types.Selection
	mset := msets.MethodSet(T)
	if types.IsInterface(T) || isPointerToConcrete(T) {
		for i, n := 0, mset.Len(); i < n; i++ {
			result = append(result, mset.At(i))
		}
	} else {
		// T is some other concrete type.
		// Report methods of T and *T, preferring those of T.
		pmset := msets.MethodSet(types.NewPointer(T))
		for i, n := 0, pmset.Len(); i < n; i++ {
			meth := pmset.At(i)
			if m := mset.Lookup(meth.Obj().Pkg(), meth.Obj().Name()); m != nil {
				meth = m
			}
			result = append(result, meth)
		}

	}
	return result
}
