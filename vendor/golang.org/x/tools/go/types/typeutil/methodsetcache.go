// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// This file implements a cache of method sets.

package typeutil

import (
	"go/types"
	"sync"
)

// A MethodSetCache records the method set of each type T for which
// MethodSet(T) is called so that repeat queries are fast.
// The zero value is a ready-to-use cache instance.
type MethodSetCache struct {
	mu     sync.Mutex
	named  map[*types.Named]struct{ value, pointer *types.MethodSet } // method sets for named N and *N
	others map[types.Type]*types.MethodSet                            // all other types
}

// MethodSet returns the method set of type T.  It is thread-safe.
//
// If cache is nil, this function is equivalent to types.NewMethodSet(T).
// Utility functions can thus expose an optional *MethodSetCache
// parameter to clients that care about performance.
func (cache *MethodSetCache) MethodSet(T types.Type) *types.MethodSet {
	if cache == nil {
		return types.NewMethodSet(T)
	}
	cache.mu.Lock()
	defer cache.mu.Unlock()

	switch T := types.Unalias(T).(type) {
	case *types.Named:
		return cache.lookupNamed(T).value

	case *types.Pointer:
		if N, ok := types.Unalias(T.Elem()).(*types.Named); ok {
			return cache.lookupNamed(N).pointer
		}
	}

	// all other types
	// (The map uses pointer equivalence, not type identity.)
	mset := cache.others[T]
	if mset == nil {
		mset = types.NewMethodSet(T)
		if cache.others == nil {
			cache.others = make(map[types.Type]*types.MethodSet)
		}
		cache.others[T] = mset
	}
	return mset
}

func (cache *MethodSetCache) lookupNamed(named *types.Named) struct{ value, pointer *types.MethodSet } {
	if cache.named == nil {
		cache.named = make(map[*types.Named]struct{ value, pointer *types.MethodSet })
	}
	// Avoid recomputing mset(*T) for each distinct Pointer
	// instance whose underlying type is a named type.
	msets, ok := cache.named[named]
	if !ok {
		msets.value = types.NewMethodSet(named)
		msets.pointer = types.NewMethodSet(types.NewPointer(named))
		cache.named[named] = msets
	}
	return msets
}
