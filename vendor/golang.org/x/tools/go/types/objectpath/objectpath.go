// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package objectpath defines a naming scheme for types.Objects
// (that is, named entities in Go programs) relative to their enclosing
// package.
//
// Type-checker objects are canonical, so they are usually identified by
// their address in memory (a pointer), but a pointer has meaning only
// within one address space. By contrast, objectpath names allow the
// identity of an object to be sent from one program to another,
// establishing a correspondence between types.Object variables that are
// distinct but logically equivalent.
//
// A single object may have multiple paths. In this example,
//
//	type A struct{ X int }
//	type B A
//
// the field X has two paths due to its membership of both A and B.
// The For(obj) function always returns one of these paths, arbitrarily
// but consistently.
package objectpath

import (
	"fmt"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/internal/aliases"
	"golang.org/x/tools/internal/typesinternal"
)

// TODO(adonovan): think about generic aliases.

// A Path is an opaque name that identifies a types.Object
// relative to its package. Conceptually, the name consists of a
// sequence of destructuring operations applied to the package scope
// to obtain the original object.
// The name does not include the package itself.
type Path string

// Encoding
//
// An object path is a textual and (with training) human-readable encoding
// of a sequence of destructuring operators, starting from a types.Package.
// The sequences represent a path through the package/object/type graph.
// We classify these operators by their type:
//
//	PO package->object	Package.Scope.Lookup
//	OT  object->type 	Object.Type
//	TT    type->type 	Type.{Elem,Key,{,{,Recv}Type}Params,Results,Underlying,Rhs} [EKPRUTrCa]
//	TO   type->object	Type.{At,Field,Method,Obj} [AFMO]
//
// All valid paths start with a package and end at an object
// and thus may be defined by the regular language:
//
//	objectpath = PO (OT TT* TO)*
//
// The concrete encoding follows directly:
//   - The only PO operator is Package.Scope.Lookup, which requires an identifier.
//   - The only OT operator is Object.Type,
//     which we encode as '.' because dot cannot appear in an identifier.
//   - The TT operators are encoded as [EKPRUTrCa];
//     two of these ({,Recv}TypeParams) require an integer operand,
//     which is encoded as a string of decimal digits.
//   - The TO operators are encoded as [AFMO];
//     three of these (At,Field,Method) require an integer operand,
//     which is encoded as a string of decimal digits.
//     These indices are stable across different representations
//     of the same package, even source and export data.
//     The indices used are implementation specific and may not correspond to
//     the argument to the go/types function.
//
// In the example below,
//
//	package p
//
//	type T interface {
//		f() (a string, b struct{ X int })
//	}
//
// field X has the path "T.UM0.RA1.F0",
// representing the following sequence of operations:
//
//	p.Lookup("T")					T
//	.Type().Underlying().Method(0).			f
//	.Type().Results().At(1)				b
//	.Type().Field(0)					X
//
// The encoding is not maximally compact---every R or P is
// followed by an A, for example---but this simplifies the
// encoder and decoder.
const (
	// object->type operators
	opType = '.' // .Type()		  (Object)

	// type->type operators
	opElem          = 'E' // .Elem()		(Pointer, Slice, Array, Chan, Map)
	opKey           = 'K' // .Key()			(Map)
	opParams        = 'P' // .Params()		(Signature)
	opResults       = 'R' // .Results()		(Signature)
	opUnderlying    = 'U' // .Underlying()		(Named)
	opTypeParam     = 'T' // .TypeParams.At(i)	(Named, Signature)
	opRecvTypeParam = 'r' // .RecvTypeParams.At(i)	(Signature)
	opConstraint    = 'C' // .Constraint()		(TypeParam)
	opRhs           = 'a' // .Rhs()			(Alias)

	// type->object operators
	opAt     = 'A' // .At(i)	(Tuple)
	opField  = 'F' // .Field(i)	(Struct)
	opMethod = 'M' // .Method(i)	(Named or Interface; not Struct: "promoted" names are ignored)
	opObj    = 'O' // .Obj()	(Named, TypeParam)
)

// For is equivalent to new(Encoder).For(obj).
//
// It may be more efficient to reuse a single Encoder across several calls.
func For(obj types.Object) (Path, error) {
	return new(Encoder).For(obj)
}

// An Encoder amortizes the cost of encoding the paths of multiple objects.
// The zero value of an Encoder is ready to use.
type Encoder struct {
	scopeMemo map[*types.Scope][]types.Object // memoization of scopeObjects
}

// For returns the path to an object relative to its package,
// or an error if the object is not accessible from the package's Scope.
//
// The For function guarantees to return a path only for the following objects:
// - package-level types
// - exported package-level non-types
// - methods
// - parameter and result variables
// - struct fields
// These objects are sufficient to define the API of their package.
// The objects described by a package's export data are drawn from this set.
//
// The set of objects accessible from a package's Scope depends on
// whether the package was produced by type-checking syntax, or
// reading export data; the latter may have a smaller Scope since
// export data trims objects that are not reachable from an exported
// declaration. For example, the For function will return a path for
// an exported method of an unexported type that is not reachable
// from any public declaration; this path will cause the Object
// function to fail if called on a package loaded from export data.
// TODO(adonovan): is this a bug or feature? Should this package
// compute accessibility in the same way?
//
// For does not return a path for predeclared names, imported package
// names, local names, and unexported package-level names (except
// types).
//
// Example: given this definition,
//
//	package p
//
//	type T interface {
//		f() (a string, b struct{ X int })
//	}
//
// For(X) would return a path that denotes the following sequence of operations:
//
//	p.Scope().Lookup("T")				(TypeName T)
//	.Type().Underlying().Method(0).			(method Func f)
//	.Type().Results().At(1)				(field Var b)
//	.Type().Field(0)					(field Var X)
//
// where p is the package (*types.Package) to which X belongs.
func (enc *Encoder) For(obj types.Object) (Path, error) {
	pkg := obj.Pkg()

	// This table lists the cases of interest.
	//
	// Object				Action
	// ------                               ------
	// nil					reject
	// builtin				reject
	// pkgname				reject
	// label				reject
	// var
	//    package-level			accept
	//    func param/result			accept
	//    local				reject
	//    struct field			accept
	// const
	//    package-level			accept
	//    local				reject
	// func
	//    package-level			accept
	//    init functions			reject
	//    concrete method			accept
	//    interface method			accept
	// type
	//    package-level			accept
	//    local				reject
	//
	// The only accessible package-level objects are members of pkg itself.
	//
	// The cases are handled in four steps:
	//
	// 1. reject nil and builtin
	// 2. accept package-level objects
	// 3. reject obviously invalid objects
	// 4. search the API for the path to the param/result/field/method.

	// 1. reference to nil or builtin?
	if pkg == nil {
		return "", fmt.Errorf("predeclared %s has no path", obj)
	}
	scope := pkg.Scope()

	// 2. package-level object?
	if scope.Lookup(obj.Name()) == obj {
		// Only exported objects (and non-exported types) have a path.
		// Non-exported types may be referenced by other objects.
		if _, ok := obj.(*types.TypeName); !ok && !obj.Exported() {
			return "", fmt.Errorf("no path for non-exported %v", obj)
		}
		return Path(obj.Name()), nil
	}

	// 3. Not a package-level object.
	//    Reject obviously non-viable cases.
	switch obj := obj.(type) {
	case *types.TypeName:
		if _, ok := types.Unalias(obj.Type()).(*types.TypeParam); !ok {
			// With the exception of type parameters, only package-level type names
			// have a path.
			return "", fmt.Errorf("no path for %v", obj)
		}
	case *types.Const, // Only package-level constants have a path.
		*types.Label,   // Labels are function-local.
		*types.PkgName: // PkgNames are file-local.
		return "", fmt.Errorf("no path for %v", obj)

	case *types.Var:
		// Could be:
		// - a field (obj.IsField())
		// - a func parameter or result
		// - a local var.
		// Sadly there is no way to distinguish
		// a param/result from a local
		// so we must proceed to the find.

	case *types.Func:
		// A func, if not package-level, must be a method.
		if recv := obj.Type().(*types.Signature).Recv(); recv == nil {
			return "", fmt.Errorf("func is not a method: %v", obj)
		}

		if path, ok := enc.concreteMethod(obj); ok {
			// Fast path for concrete methods that avoids looping over scope.
			return path, nil
		}

	default:
		panic(obj)
	}

	// 4. Search the API for the path to the var (field/param/result) or method.

	// First inspect package-level named types.
	// In the presence of path aliases, these give
	// the best paths because non-types may
	// refer to types, but not the reverse.
	empty := make([]byte, 0, 48) // initial space
	objs := enc.scopeObjects(scope)
	for _, o := range objs {
		tname, ok := o.(*types.TypeName)
		if !ok {
			continue // handle non-types in second pass
		}

		path := append(empty, o.Name()...)
		path = append(path, opType)

		T := o.Type()
		if alias, ok := T.(*types.Alias); ok {
			if r := findTypeParam(obj, aliases.TypeParams(alias), path, opTypeParam); r != nil {
				return Path(r), nil
			}
			if r := find(obj, aliases.Rhs(alias), append(path, opRhs)); r != nil {
				return Path(r), nil
			}

		} else if tname.IsAlias() {
			// legacy alias
			if r := find(obj, T, path); r != nil {
				return Path(r), nil
			}

		} else if named, ok := T.(*types.Named); ok {
			// defined (named) type
			if r := findTypeParam(obj, named.TypeParams(), path, opTypeParam); r != nil {
				return Path(r), nil
			}
			if r := find(obj, named.Underlying(), append(path, opUnderlying)); r != nil {
				return Path(r), nil
			}
		}
	}

	// Then inspect everything else:
	// non-types, and declared methods of defined types.
	for _, o := range objs {
		path := append(empty, o.Name()...)
		if _, ok := o.(*types.TypeName); !ok {
			if o.Exported() {
				// exported non-type (const, var, func)
				if r := find(obj, o.Type(), append(path, opType)); r != nil {
					return Path(r), nil
				}
			}
			continue
		}

		// Inspect declared methods of defined types.
		if T, ok := types.Unalias(o.Type()).(*types.Named); ok {
			path = append(path, opType)
			// The method index here is always with respect
			// to the underlying go/types data structures,
			// which ultimately derives from source order
			// and must be preserved by export data.
			for i := 0; i < T.NumMethods(); i++ {
				m := T.Method(i)
				path2 := appendOpArg(path, opMethod, i)
				if m == obj {
					return Path(path2), nil // found declared method
				}
				if r := find(obj, m.Type(), append(path2, opType)); r != nil {
					return Path(r), nil
				}
			}
		}
	}

	return "", fmt.Errorf("can't find path for %v in %s", obj, pkg.Path())
}

func appendOpArg(path []byte, op byte, arg int) []byte {
	path = append(path, op)
	path = strconv.AppendInt(path, int64(arg), 10)
	return path
}

// concreteMethod returns the path for meth, which must have a non-nil receiver.
// The second return value indicates success and may be false if the method is
// an interface method or if it is an instantiated method.
//
// This function is just an optimization that avoids the general scope walking
// approach. You are expected to fall back to the general approach if this
// function fails.
func (enc *Encoder) concreteMethod(meth *types.Func) (Path, bool) {
	// Concrete methods can only be declared on package-scoped named types. For
	// that reason we can skip the expensive walk over the package scope: the
	// path will always be package -> named type -> method. We can trivially get
	// the type name from the receiver, and only have to look over the type's
	// methods to find the method index.
	//
	// Methods on generic types require special consideration, however. Consider
	// the following package:
	//
	// 	L1: type S[T any] struct{}
	// 	L2: func (recv S[A]) Foo() { recv.Bar() }
	// 	L3: func (recv S[B]) Bar() { }
	// 	L4: type Alias = S[int]
	// 	L5: func _[T any]() { var s S[int]; s.Foo() }
	//
	// The receivers of methods on generic types are instantiations. L2 and L3
	// instantiate S with the type-parameters A and B, which are scoped to the
	// respective methods. L4 and L5 each instantiate S with int. Each of these
	// instantiations has its own method set, full of methods (and thus objects)
	// with receivers whose types are the respective instantiations. In other
	// words, we have
	//
	// S[A].Foo, S[A].Bar
	// S[B].Foo, S[B].Bar
	// S[int].Foo, S[int].Bar
	//
	// We may thus be trying to produce object paths for any of these objects.
	//
	// S[A].Foo and S[B].Bar are the origin methods, and their paths are S.Foo
	// and S.Bar, which are the paths that this function naturally produces.
	//
	// S[A].Bar, S[B].Foo, and both methods on S[int] are instantiations that
	// don't correspond to the origin methods. For S[int], this is significant.
	// The most precise object path for S[int].Foo, for example, is Alias.Foo,
	// not S.Foo. Our function, however, would produce S.Foo, which would
	// resolve to a different object.
	//
	// For S[A].Bar and S[B].Foo it could be argued that S.Bar and S.Foo are
	// still the correct paths, since only the origin methods have meaningful
	// paths. But this is likely only true for trivial cases and has edge cases.
	// Since this function is only an optimization, we err on the side of giving
	// up, deferring to the slower but definitely correct algorithm. Most users
	// of objectpath will only be giving us origin methods, anyway, as referring
	// to instantiated methods is usually not useful.

	if meth.Origin() != meth {
		return "", false
	}

	_, named := typesinternal.ReceiverNamed(meth.Type().(*types.Signature).Recv())
	if named == nil {
		return "", false
	}

	if types.IsInterface(named) {
		// Named interfaces don't have to be package-scoped
		//
		// TODO(dominikh): opt: if scope.Lookup(name) == named, then we can apply this optimization to interface
		// methods, too, I think.
		return "", false
	}

	// Preallocate space for the name, opType, opMethod, and some digits.
	name := named.Obj().Name()
	path := make([]byte, 0, len(name)+8)
	path = append(path, name...)
	path = append(path, opType)

	// Method indices are w.r.t. the go/types data structures,
	// ultimately deriving from source order,
	// which is preserved by export data.
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i) == meth {
			path = appendOpArg(path, opMethod, i)
			return Path(path), true
		}
	}

	// Due to golang/go#59944, go/types fails to associate the receiver with
	// certain methods on cgo types.
	//
	// TODO(rfindley): replace this panic once golang/go#59944 is fixed in all Go
	// versions gopls supports.
	return "", false
	// panic(fmt.Sprintf("couldn't find method %s on type %s; methods: %#v", meth, named, enc.namedMethods(named)))
}

// find finds obj within type T, returning the path to it, or nil if not found.
//
// The seen map is used to short circuit cycles through type parameters. If
// nil, it will be allocated as necessary.
//
// The seenMethods map is used internally to short circuit cycles through
// interface methods, such as occur in the following example:
//
//	type I interface { f() interface{I} }
//
// See golang/go#68046 for details.
func find(obj types.Object, T types.Type, path []byte) []byte {
	return (&finder{obj: obj}).find(T, path)
}

// finder closes over search state for a call to find.
type finder struct {
	obj             types.Object             // the sought object
	seenTParamNames map[*types.TypeName]bool // for cycle breaking through type parameters
	seenMethods     map[*types.Func]bool     // for cycle breaking through recursive interfaces
}

func (f *finder) find(T types.Type, path []byte) []byte {
	switch T := T.(type) {
	case *types.Alias:
		return f.find(types.Unalias(T), path)
	case *types.Basic, *types.Named:
		// Named types belonging to pkg were handled already,
		// so T must belong to another package. No path.
		return nil
	case *types.Pointer:
		return f.find(T.Elem(), append(path, opElem))
	case *types.Slice:
		return f.find(T.Elem(), append(path, opElem))
	case *types.Array:
		return f.find(T.Elem(), append(path, opElem))
	case *types.Chan:
		return f.find(T.Elem(), append(path, opElem))
	case *types.Map:
		if r := f.find(T.Key(), append(path, opKey)); r != nil {
			return r
		}
		return f.find(T.Elem(), append(path, opElem))
	case *types.Signature:
		if r := f.findTypeParam(T.RecvTypeParams(), path, opRecvTypeParam); r != nil {
			return r
		}
		if r := f.findTypeParam(T.TypeParams(), path, opTypeParam); r != nil {
			return r
		}
		if r := f.find(T.Params(), append(path, opParams)); r != nil {
			return r
		}
		return f.find(T.Results(), append(path, opResults))
	case *types.Struct:
		for i := 0; i < T.NumFields(); i++ {
			fld := T.Field(i)
			path2 := appendOpArg(path, opField, i)
			if fld == f.obj {
				return path2 // found field var
			}
			if r := f.find(fld.Type(), append(path2, opType)); r != nil {
				return r
			}
		}
		return nil
	case *types.Tuple:
		for i := 0; i < T.Len(); i++ {
			v := T.At(i)
			path2 := appendOpArg(path, opAt, i)
			if v == f.obj {
				return path2 // found param/result var
			}
			if r := f.find(v.Type(), append(path2, opType)); r != nil {
				return r
			}
		}
		return nil
	case *types.Interface:
		for i := 0; i < T.NumMethods(); i++ {
			m := T.Method(i)
			if f.seenMethods[m] {
				return nil
			}
			path2 := appendOpArg(path, opMethod, i)
			if m == f.obj {
				return path2 // found interface method
			}
			if f.seenMethods == nil {
				f.seenMethods = make(map[*types.Func]bool)
			}
			f.seenMethods[m] = true
			if r := f.find(m.Type(), append(path2, opType)); r != nil {
				return r
			}
		}
		return nil
	case *types.TypeParam:
		name := T.Obj()
		if f.seenTParamNames[name] {
			return nil
		}
		if name == f.obj {
			return append(path, opObj)
		}
		if f.seenTParamNames == nil {
			f.seenTParamNames = make(map[*types.TypeName]bool)
		}
		f.seenTParamNames[name] = true
		if r := f.find(T.Constraint(), append(path, opConstraint)); r != nil {
			return r
		}
		return nil
	}
	panic(T)
}

func findTypeParam(obj types.Object, list *types.TypeParamList, path []byte, op byte) []byte {
	return (&finder{obj: obj}).findTypeParam(list, path, op)
}

func (f *finder) findTypeParam(list *types.TypeParamList, path []byte, op byte) []byte {
	for i := 0; i < list.Len(); i++ {
		tparam := list.At(i)
		path2 := appendOpArg(path, op, i)
		if r := f.find(tparam, path2); r != nil {
			return r
		}
	}
	return nil
}

// Object returns the object denoted by path p within the package pkg.
func Object(pkg *types.Package, p Path) (types.Object, error) {
	pathstr := string(p)
	if pathstr == "" {
		return nil, fmt.Errorf("empty path")
	}

	var pkgobj, suffix string
	if dot := strings.IndexByte(pathstr, opType); dot < 0 {
		pkgobj = pathstr
	} else {
		pkgobj = pathstr[:dot]
		suffix = pathstr[dot:] // suffix starts with "."
	}

	obj := pkg.Scope().Lookup(pkgobj)
	if obj == nil {
		return nil, fmt.Errorf("package %s does not contain %q", pkg.Path(), pkgobj)
	}

	// abstraction of *types.{Pointer,Slice,Array,Chan,Map}
	type hasElem interface {
		Elem() types.Type
	}
	// abstraction of *types.{Named,Signature}
	type hasTypeParams interface {
		TypeParams() *types.TypeParamList
	}
	// abstraction of *types.{Named,TypeParam}
	type hasObj interface {
		Obj() *types.TypeName
	}

	// The loop state is the pair (t, obj),
	// exactly one of which is non-nil, initially obj.
	// All suffixes start with '.' (the only object->type operation),
	// followed by optional type->type operations,
	// then a type->object operation.
	// The cycle then repeats.
	var t types.Type
	for suffix != "" {
		code := suffix[0]
		suffix = suffix[1:]

		// Codes [AFMTr] have an integer operand.
		var index int
		switch code {
		case opAt, opField, opMethod, opTypeParam, opRecvTypeParam:
			rest := strings.TrimLeft(suffix, "0123456789")
			numerals := suffix[:len(suffix)-len(rest)]
			suffix = rest
			i, err := strconv.Atoi(numerals)
			if err != nil {
				return nil, fmt.Errorf("invalid path: bad numeric operand %q for code %q", numerals, code)
			}
			index = int(i)
		case opObj:
			// no operand
		default:
			// The suffix must end with a type->object operation.
			if suffix == "" {
				return nil, fmt.Errorf("invalid path: ends with %q, want [AFMO]", code)
			}
		}

		if code == opType {
			if t != nil {
				return nil, fmt.Errorf("invalid path: unexpected %q in type context", opType)
			}
			t = obj.Type()
			obj = nil
			continue
		}

		if t == nil {
			return nil, fmt.Errorf("invalid path: code %q in object context", code)
		}

		// Inv: t != nil, obj == nil

		t = types.Unalias(t)
		switch code {
		case opElem:
			hasElem, ok := t.(hasElem) // Pointer, Slice, Array, Chan, Map
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want pointer, slice, array, chan or map)", code, t, t)
			}
			t = hasElem.Elem()

		case opKey:
			mapType, ok := t.(*types.Map)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want map)", code, t, t)
			}
			t = mapType.Key()

		case opParams:
			sig, ok := t.(*types.Signature)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want signature)", code, t, t)
			}
			t = sig.Params()

		case opResults:
			sig, ok := t.(*types.Signature)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want signature)", code, t, t)
			}
			t = sig.Results()

		case opUnderlying:
			named, ok := t.(*types.Named)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want named)", code, t, t)
			}
			t = named.Underlying()

		case opRhs:
			if alias, ok := t.(*types.Alias); ok {
				t = aliases.Rhs(alias)
			} else if false && aliases.Enabled() {
				// The Enabled check is too expensive, so for now we
				// simply assume that aliases are not enabled.
				// TODO(adonovan): replace with "if true {" when go1.24 is assured.
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want alias)", code, t, t)
			}

		case opTypeParam:
			hasTypeParams, ok := t.(hasTypeParams) // Named, Signature
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want named or signature)", code, t, t)
			}
			tparams := hasTypeParams.TypeParams()
			if n := tparams.Len(); index >= n {
				return nil, fmt.Errorf("tuple index %d out of range [0-%d)", index, n)
			}
			t = tparams.At(index)

		case opRecvTypeParam:
			sig, ok := t.(*types.Signature) // Signature
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want signature)", code, t, t)
			}
			rtparams := sig.RecvTypeParams()
			if n := rtparams.Len(); index >= n {
				return nil, fmt.Errorf("tuple index %d out of range [0-%d)", index, n)
			}
			t = rtparams.At(index)

		case opConstraint:
			tparam, ok := t.(*types.TypeParam)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want type parameter)", code, t, t)
			}
			t = tparam.Constraint()

		case opAt:
			tuple, ok := t.(*types.Tuple)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want tuple)", code, t, t)
			}
			if n := tuple.Len(); index >= n {
				return nil, fmt.Errorf("tuple index %d out of range [0-%d)", index, n)
			}
			obj = tuple.At(index)
			t = nil

		case opField:
			structType, ok := t.(*types.Struct)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want struct)", code, t, t)
			}
			if n := structType.NumFields(); index >= n {
				return nil, fmt.Errorf("field index %d out of range [0-%d)", index, n)
			}
			obj = structType.Field(index)
			t = nil

		case opMethod:
			switch t := t.(type) {
			case *types.Interface:
				if index >= t.NumMethods() {
					return nil, fmt.Errorf("method index %d out of range [0-%d)", index, t.NumMethods())
				}
				obj = t.Method(index) // Id-ordered

			case *types.Named:
				if index >= t.NumMethods() {
					return nil, fmt.Errorf("method index %d out of range [0-%d)", index, t.NumMethods())
				}
				obj = t.Method(index)

			default:
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want interface or named)", code, t, t)
			}
			t = nil

		case opObj:
			hasObj, ok := t.(hasObj)
			if !ok {
				return nil, fmt.Errorf("cannot apply %q to %s (got %T, want named or type param)", code, t, t)
			}
			obj = hasObj.Obj()
			t = nil

		default:
			return nil, fmt.Errorf("invalid path: unknown code %q", code)
		}
	}

	if obj == nil {
		panic(p) // path does not end in an object-valued operator
	}

	if obj.Pkg() != pkg {
		return nil, fmt.Errorf("path denotes %s, which belongs to a different package", obj)
	}

	return obj, nil // success
}

// scopeObjects is a memoization of scope objects.
// Callers must not modify the result.
func (enc *Encoder) scopeObjects(scope *types.Scope) []types.Object {
	m := enc.scopeMemo
	if m == nil {
		m = make(map[*types.Scope][]types.Object)
		enc.scopeMemo = m
	}
	objs, ok := m[scope]
	if !ok {
		names := scope.Names() // allocates and sorts
		objs = make([]types.Object, len(names))
		for i, name := range names {
			objs[i] = scope.Lookup(name)
		}
		m[scope] = objs
	}
	return objs
}
