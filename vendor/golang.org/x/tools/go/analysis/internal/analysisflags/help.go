// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package analysisflags

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const help = `PROGNAME is a tool for static analysis of Go programs.

PROGNAME examines Go source code and reports suspicious constructs,
such as Printf calls whose arguments do not align with the format
string. It uses heuristics that do not guarantee all reports are
genuine problems, but it can find errors not caught by the compilers.
`

// Help implements the help subcommand for a multichecker or unitchecker
// style command. The optional args specify the analyzers to describe.
// Help calls log.Fatal if no such analyzer exists.
func Help(progname string, analyzers []*analysis.Analyzer, args []string) {
	// No args: show summary of all analyzers.
	if len(args) == 0 {
		fmt.Println(strings.Replace(help, "PROGNAME", progname, -1))
		fmt.Println("Registered analyzers:")
		fmt.Println()
		sort.Slice(analyzers, func(i, j int) bool {
			return analyzers[i].Name < analyzers[j].Name
		})
		for _, a := range analyzers {
			title := strings.Split(a.Doc, "\n\n")[0]
			fmt.Printf("    %-12s %s\n", a.Name, title)
		}
		fmt.Println("\nBy default all analyzers are run.")
		fmt.Println("To select specific analyzers, use the -NAME flag for each one,")
		fmt.Println(" or -NAME=false to run all analyzers not explicitly disabled.")

		// Show only the core command-line flags.
		fmt.Println("\nCore flags:")
		fmt.Println()
		fs := flag.NewFlagSet("", flag.ExitOnError)
		flag.VisitAll(func(f *flag.Flag) {
			if !strings.Contains(f.Name, ".") {
				fs.Var(f.Value, f.Name, f.Usage)
			}
		})
		fs.SetOutput(os.Stdout)
		fs.PrintDefaults()

		fmt.Printf("\nTo see details and flags of a specific analyzer, run '%s help name'.\n", progname)

		return
	}

	// Show help on specific analyzer(s).
outer:
	for _, arg := range args {
		for _, a := range analyzers {
			if a.Name == arg {
				paras := strings.Split(a.Doc, "\n\n")
				title := paras[0]
				fmt.Printf("%s: %s\n", a.Name, title)

				// Show only the flags relating to this analysis,
				// properly prefixed.
				first := true
				fs := flag.NewFlagSet(a.Name, flag.ExitOnError)
				a.Flags.VisitAll(func(f *flag.Flag) {
					if first {
						first = false
						fmt.Println("\nAnalyzer flags:")
						fmt.Println()
					}
					fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
				})
				fs.SetOutput(os.Stdout)
				fs.PrintDefaults()

				if len(paras) > 1 {
					fmt.Printf("\n%s\n", strings.Join(paras[1:], "\n\n"))
				}

				continue outer
			}
		}
		log.Fatalf("Analyzer %q not registered", arg)
	}
}
