// Package pangolin is a fault-tolerant persistent memory programming
// library: a Go reproduction of "Pangolin: A Fault-Tolerant Persistent
// Memory Programming Library" (Zhang & Swanson, USENIX ATC 2019).
//
// Pangolin lets applications build complex, crash-consistent, pointer-based
// data structures in (simulated) non-volatile main memory, protected
// against both media errors and software "scribbles" by a combination of
// per-object checksums, RAID-style zone parity (~1% space overhead),
// metadata/log replication, and DRAM micro-buffering with canary words.
// Corruption is detected and repaired online, without taking the object
// store offline.
//
// # Quick start
//
//	pool, _ := pangolin.Create(pangolin.Config{})          // full protection
//	root, _ := pangolin.Root[MyRoot](pool, 1)
//	_ = pool.Run(func(tx *pangolin.Tx) error {
//	    node, _ := pangolin.Open[MyRoot](tx, root)          // micro-buffer
//	    node.Value = 42                                     // mutate the shadow
//	    return nil                                          // commit updates NVMM + checksum + parity
//	})
//
// The single-object style of the paper's Listing 2 is also available:
//
//	obj, _ := pangolin.OpenSingle[MyRoot](pool, root)       // pgl_open
//	obj.Value().Count++
//	_ = obj.Commit()                                        // pgl_commit
//
// NVMM is simulated (see internal/nvm): pools live on a byte-addressable
// device with an explicit flush/fence persistence model, 4 KB media-error
// poisoning, and crash simulation. SaveSnapshot/LoadSnapshot persist pools
// across process runs.
package pangolin

import (
	"fmt"
	"io"
	"sync"

	"github.com/pangolin-go/pangolin/internal/core"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// OID is a persistent object identifier (the PMEMoid analog): pool UUID
// plus object offset. OIDs stay valid across pool reopens.
type OID = layout.OID

// NilOID is the null persistent pointer.
var NilOID = layout.NilOID

// Geometry fixes a pool's shape; see DefaultGeometry and PaperGeometry.
type Geometry = layout.Geometry

// DefaultGeometry returns the test-scale pool shape (1 MB zones, 16 chunk
// rows).
func DefaultGeometry() Geometry { return layout.Default() }

// PaperGeometry returns a pool shape with the paper's proportions: 100
// chunk rows per zone, so parity costs ~1% (§3.1).
func PaperGeometry(zones uint64) Geometry { return layout.Paper(zones) }

// Mode selects the operation mode (paper Table 2).
type Mode = core.Mode

// Operation modes (Table 2), plus the §3.5 extension mode.
const (
	ModePmemobj      = core.Pmemobj      // libpmemobj baseline: undo log, no protection
	ModePangolin     = core.Pangolin     // micro-buffering + redo only
	ModePangolinML   = core.PangolinML   // + metadata/log replication
	ModePangolinMLP  = core.PangolinMLP  // + zone parity
	ModePangolinMLPC = core.PangolinMLPC // + object checksums (full system)
	ModePmemobjR     = core.PmemobjR     // libpmemobj + full replica pool
	// ModePmemobjP is the extension §3.5 sketches for other transaction
	// systems: undo logging with commit-time parity patches computed
	// from snapshot⊕current. Offline repair at ~1% space; no checksums,
	// no online recovery.
	ModePmemobjP = core.PmemobjP
)

// VerifyPolicy selects checksum verification timing (§3.3).
type VerifyPolicy = core.VerifyPolicy

// Verification policies.
const (
	VerifyDefault      = core.VerifyDefault      // verify at micro-buffer creation
	VerifyConservative = core.VerifyConservative // verify every access incl. Get
)

// Stats exposes engine counters.
type Stats = core.Stats

// ScrubReport summarizes scrubbing work: a full pass, one incremental
// step, or any merged set of either (see ScrubReport.Add).
type ScrubReport = core.ScrubReport

// ScrubberConfig bounds the work (and freeze window) of one incremental
// scrub step.
type ScrubberConfig = core.ScrubberConfig

// Scrubber is a resumable incremental scrub cursor over one pool; see
// Pool.NewScrubber.
type Scrubber = core.Scrubber

// Device is the simulated NVMM module backing a pool.
type Device = nvm.Device

// CrashMode selects how a simulated power failure treats unpersisted
// cache lines; see Device.CrashCopy.
type CrashMode = nvm.CrashMode

// Crash modes.
const (
	CrashStrict      = nvm.CrashStrict      // revert every non-persistent line
	CrashEvictRandom = nvm.CrashEvictRandom // random cache-eviction outcomes
)

// ErrNeedReopen reports a fault that online recovery cannot handle; close
// and reopen the pool to recover.
var ErrNeedReopen = core.ErrNeedReopen

// Config configures pool creation and opening.
type Config struct {
	// Mode is the operation mode; the zero value is ModePangolinMLPC,
	// the fully protected system.
	Mode Mode
	// Policy selects checksum verification timing.
	Policy VerifyPolicy
	// ScrubEvery, when nonzero, runs a scrubbing pass after every N
	// committed transactions ("Scrub" mode).
	ScrubEvery uint64
	// Geometry fixes the pool shape; zero value selects
	// DefaultGeometry.
	Geometry Geometry
	// ParityThreshold overrides the hybrid parity crossover in bytes
	// (default 8 KB, §3.5).
	ParityThreshold int
	// TrackPersistence enables crash simulation on the new device
	// (default on; disable only for pure throughput benchmarking).
	DisableTracking bool
	// Zero forces zeroing the device at create time: required for
	// devices with prior contents, and the one-time pool-init cost the
	// paper measures in §4.2 (fresh devices are already zero).
	Zero bool
	// ReadVerifyLimit bounds per-read checksum verification on the
	// concurrent read path (ReadView): objects larger than this many
	// bytes keep header sanity + poison checks and rely on scrubbing
	// instead of being checksummed on every read. 0 selects the 16 KB
	// default (covers every per-key node of the six paper structures);
	// negative verifies regardless of size.
	ReadVerifyLimit int
	// Scrub bounds the work of one incremental scrub step for the pool's
	// built-in scrubber (Pool.ScrubStep) and any maintenance scheduler
	// driving it. Zero values select the defaults.
	Scrub ScrubberConfig
}

func (c *Config) geometry() Geometry {
	if c.Geometry == (Geometry{}) {
		return DefaultGeometry()
	}
	return c.Geometry
}

// Pool is an open Pangolin object pool. A Pool handle returned by
// ReadView shares the engine but serves Get through the concurrent
// verified-read path; see ReadView for the contract.
type Pool struct {
	e  *core.Engine
	rv *readViewState // non-nil only on ReadView handles

	// Built-in incremental scrubber (ScrubStep), created lazily with the
	// Config.Scrub bounds. Guarded by scrubMu: steps are serialized, per
	// the Scrubber contract.
	scrubCfg ScrubberConfig
	scrubMu  sync.Mutex
	scrub    *Scrubber
}

// Create builds a new pool on a fresh simulated NVMM device.
//
// Note the zero Config selects ModePmemobj numerically; use
// DefaultConfig() or set Mode explicitly for the protected modes.
func Create(cfg Config) (*Pool, error) {
	geo := cfg.geometry()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: !cfg.DisableTracking})
	return CreateOnDevice(dev, cfg)
}

// DefaultConfig returns the fully protected configuration
// (ModePangolinMLPC, default verification).
func DefaultConfig() Config { return Config{Mode: ModePangolinMLPC} }

// CreateOnDevice formats a pool on an existing device (which must be
// zeroed — fresh devices are).
func CreateOnDevice(dev *Device, cfg Config) (*Pool, error) {
	e, err := core.Create(dev, cfg.geometry(), core.Options{
		Mode:            cfg.Mode,
		Policy:          cfg.Policy,
		ScrubEvery:      cfg.ScrubEvery,
		ParityThreshold: cfg.ParityThreshold,
		ReadVerifyLimit: cfg.ReadVerifyLimit,
		Zero:            cfg.Zero,
	})
	if err != nil {
		return nil, err
	}
	return &Pool{e: e, scrubCfg: cfg.Scrub}, nil
}

// OpenDevice opens an existing pool on dev, running crash recovery.
// replica must be the pool's replica device for ModePmemobjR and nil
// otherwise.
func OpenDevice(dev *Device, cfg Config, replica *Device) (*Pool, error) {
	e, err := core.Open(dev, core.Options{
		Mode:            cfg.Mode,
		Policy:          cfg.Policy,
		ScrubEvery:      cfg.ScrubEvery,
		ParityThreshold: cfg.ParityThreshold,
		ReadVerifyLimit: cfg.ReadVerifyLimit,
	}, replica)
	if err != nil {
		return nil, err
	}
	return &Pool{e: e, scrubCfg: cfg.Scrub}, nil
}

// Close shuts the pool down. In-flight transactions must be finished.
func (p *Pool) Close() { p.e.Close() }

// Mode returns the pool's operation mode.
func (p *Pool) Mode() Mode { return p.e.Mode() }

// UUID returns the pool UUID embedded in every OID.
func (p *Pool) UUID() uint64 { return p.e.UUID() }

// Stats returns the pool's activity counters.
func (p *Pool) Stats() *Stats { return p.e.Stats() }

// Device returns the underlying simulated NVMM device (snapshots, fault
// injection, persistence statistics).
func (p *Pool) Device() *Device { return p.e.Device() }

// ReplicaDevice returns the ModePmemobjR replica device, or nil.
func (p *Pool) ReplicaDevice() *Device { return p.e.ReplicaDevice() }

// RootOID returns the pool's root object, allocating size bytes with the
// given type id on first use. All application data must be reachable from
// the root (§2.3).
func (p *Pool) RootOID(size uint64, typ uint32) (OID, error) {
	return p.e.Root(size, typ)
}

// Begin starts a transaction. Each goroutine uses its own transaction;
// two concurrent transactions must not modify the same object (§3.4).
func (p *Pool) Begin() (*Tx, error) {
	t, err := p.e.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{t: t, pool: p}, nil
}

// Run executes fn in a transaction, committing on nil and aborting (and
// returning the error) otherwise.
func (p *Pool) Run(fn func(*Tx) error) error {
	tx, err := p.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Get returns read-only access to an object's user data without
// micro-buffering (pgl_get). See VerifyPolicy for the checking rules.
// On a ReadView handle, Get instead runs the concurrent verified-read
// path: checksum verification cached per commit epoch, no online
// recovery, ErrReadBusy during freeze windows.
func (p *Pool) Get(oid OID) ([]byte, error) {
	if p.rv != nil {
		return p.rv.getRO(p.e, oid)
	}
	return p.e.Get(oid)
}

// ObjectSize returns an object's user-data size.
func (p *Pool) ObjectSize(oid OID) (uint64, error) { return p.e.ObjectSize(oid) }

// ObjectType returns an object's type id.
func (p *Pool) ObjectType(oid OID) (uint32, error) { return p.e.ObjectType(oid) }

// CheckObject verifies an object's checksum on demand, repairing from
// parity on mismatch.
func (p *Pool) CheckObject(oid OID) error { return p.e.CheckObject(oid) }

// Scrub verifies and restores the whole pool's integrity (§3.3) as one
// full pass of incremental steps: the pool is frozen per bounded step,
// never for the whole pass, so transactions and reads interleave.
func (p *Pool) Scrub() (ScrubReport, error) { return p.e.Scrub() }

// NewScrubber returns a resumable incremental scrubber over the pool.
// Steps must be serialized by the caller (the pool's owner goroutine is
// the canonical driver); everything else interleaves between steps.
func (p *Pool) NewScrubber(cfg ScrubberConfig) *Scrubber { return p.e.NewScrubber(cfg) }

// ScrubStep advances the pool's built-in incremental scrubber by one
// bounded step (configured by Config.Scrub) and returns that step's
// report. done reports that the step completed a full pass — every
// known-bad page, live object, and parity zone covered since the cursor
// last reset — after which the cursor starts over. Steps are serialized
// internally; a maintenance scheduler calls this between transactions to
// make full-pool integrity the fixpoint of many cheap steps.
func (p *Pool) ScrubStep() (rep ScrubReport, done bool, err error) {
	p.scrubMu.Lock()
	defer p.scrubMu.Unlock()
	if p.scrub == nil {
		p.scrub = p.e.NewScrubber(p.scrubCfg)
	}
	return p.scrub.Step()
}

// InjectRandomFault corrupts a pseudo-randomly chosen live object (§4.6
// fault injection): even seeds scribble the object's checksummed bytes,
// odd seeds poison its page. It reports false when the pool holds no
// live objects. Call with no transactions in flight.
func (p *Pool) InjectRandomFault(seed int64) bool { return p.e.InjectRandomFault(seed) }

// LiveStats summarizes heap occupancy.
type LiveStats struct {
	Objects int    // committed live objects
	Bytes   uint64 // reserved bytes (slots and extents)
}

// LiveObjects counts committed live objects and their reserved bytes.
// Call with no transactions in flight.
func (p *Pool) LiveObjects() LiveStats {
	return LiveStats{
		Objects: p.e.Allocator().CountLive(),
		Bytes:   p.e.Allocator().LiveBytes(),
	}
}

// InjectMediaError poisons the page containing off, destroying its
// contents (§4.6 fault injection).
func (p *Pool) InjectMediaError(off uint64) { p.e.InjectMediaError(off) }

// InjectScribble overwrites [off, off+n) with random bytes, bypassing the
// library (§4.6 fault injection).
func (p *Pool) InjectScribble(off, n uint64, seed int64) { p.e.InjectScribble(off, n, seed) }

// SaveSnapshot persists the pool's durable state to w (the stand-in for a
// real NVMM-backed file across process runs). Call with no transactions
// in flight.
func (p *Pool) SaveSnapshot(w io.Writer) error { return p.e.Device().WriteSnapshot(w) }

// SaveFile persists the pool's durable state to a file.
func (p *Pool) SaveFile(path string) error { return p.e.Device().SaveFile(path) }

// LoadFile opens a pool previously saved with SaveFile.
func LoadFile(path string, cfg Config) (*Pool, error) {
	dev, err := nvm.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if cfg.Mode == ModePmemobjR {
		return nil, fmt.Errorf("pangolin: snapshot files do not carry replica pools; reconstruct with OpenDevice")
	}
	return OpenDevice(dev, cfg, nil)
}
