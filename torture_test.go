package pangolin_test

import (
	"math/rand"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/btree"
	"github.com/pangolin-go/pangolin/structures/ctree"
	"github.com/pangolin-go/pangolin/structures/hashmap"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/rbtree"
	"github.com/pangolin-go/pangolin/structures/skiplist"
)

// TestSystemTorture is the whole-system gauntlet: several data structures
// share one fully protected pool while the test interleaves mutations,
// media errors, scribbles, scrub passes, and crash/reopen cycles, checking
// every structure against a volatile model throughout. This is the
// "downstream user's worst week" test.
func TestSystemTorture(t *testing.T) {
	geo := pangolin.DefaultGeometry()
	geo.NumZones = 12
	cfg := pangolin.Config{Mode: pangolin.ModePangolinMLPC, Geometry: geo}
	pool, err := pangolin.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type tracked struct {
		name   string
		m      kv.Map
		attach func(*pangolin.Pool, pangolin.OID) (kv.Map, error)
		model  map[uint64]uint64
	}
	mk := func(name string, m kv.Map, err error,
		attach func(*pangolin.Pool, pangolin.OID) (kv.Map, error)) *tracked {
		if err != nil {
			t.Fatal(err)
		}
		return &tracked{name: name, m: m, attach: attach, model: map[uint64]uint64{}}
	}
	ct, err1 := ctree.New(pool)
	rb, err2 := rbtree.New(pool)
	bt, err3 := btree.New(pool)
	sl, err4 := skiplist.New(pool)
	hm, err5 := hashmap.New(pool)
	structs := []*tracked{
		mk("ctree", ct, err1, func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return ctree.Attach(p, a) }),
		mk("rbtree", rb, err2, func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return rbtree.Attach(p, a) }),
		mk("btree", bt, err3, func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return btree.Attach(p, a) }),
		mk("skiplist", sl, err4, func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return skiplist.Attach(p, a) }),
		mk("hashmap", hm, err5, func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return hashmap.Attach(p, a) }),
	}

	rng := rand.New(rand.NewSource(2019)) // the paper's year
	// PR CI (-short) runs a trimmed gauntlet; the nightly workflow runs
	// the full six rounds.
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	const opsPerRound = 250
	for round := 0; round < rounds; round++ {
		for i := 0; i < opsPerRound; i++ {
			s := structs[rng.Intn(len(structs))]
			k := uint64(rng.Intn(200))
			if rng.Intn(4) == 0 {
				ok, err := s.m.Remove(k)
				if err != nil {
					t.Fatalf("round %d: %s remove %d: %v", round, s.name, k, err)
				}
				if _, want := s.model[k]; ok != want {
					t.Fatalf("round %d: %s remove %d = %v want %v", round, s.name, k, ok, want)
				}
				delete(s.model, k)
			} else {
				v := rng.Uint64()
				if err := s.m.Insert(k, v); err != nil {
					t.Fatalf("round %d: %s insert %d: %v", round, s.name, k, err)
				}
				s.model[k] = v
			}
		}

		// Inject trouble into a random live structure's neighbourhood.
		victim := structs[rng.Intn(len(structs))]
		switch round % 3 {
		case 0:
			pool.InjectMediaError(victim.m.Anchor().Off)
		case 1:
			pool.InjectScribble(victim.m.Anchor().Off, 8, int64(round))
			if _, err := pool.Scrub(); err != nil {
				t.Fatalf("round %d: scrub: %v", round, err)
			}
		case 2:
			// Crash and recover.
			img := pool.Device().CrashCopy(pangolin.CrashEvictRandom, int64(round))
			pool.Close()
			pool, err = pangolin.OpenDevice(img, cfg, nil)
			if err != nil {
				t.Fatalf("round %d: reopen: %v", round, err)
			}
			for _, s := range structs {
				s.m, err = s.attach(pool, s.m.Anchor())
				if err != nil {
					t.Fatalf("round %d: %s attach: %v", round, s.name, err)
				}
			}
		}

		// Full audit of every structure against its model.
		for _, s := range structs {
			for k := uint64(0); k < 200; k++ {
				v, ok, err := s.m.Lookup(k)
				if err != nil {
					t.Fatalf("round %d: %s lookup %d: %v", round, s.name, k, err)
				}
				wantV, want := s.model[k]
				if ok != want || (ok && v != wantV) {
					t.Fatalf("round %d: %s key %d = (%d,%v), model (%d,%v)",
						round, s.name, k, v, ok, wantV, want)
				}
			}
		}
	}
	// Final integrity pass: nothing unrecovered, parity and checksums
	// clean.
	rep, err := pool.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("torture left %d unrecoverable objects: %+v", rep.Unrecovered, rep)
	}
	pool.Close()
}
