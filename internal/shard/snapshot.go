package shard

import (
	"fmt"
	"sync/atomic"

	"github.com/pangolin-go/pangolin/internal/store"
)

// SetSnapshot is a pinned-generation read handle over the whole set:
// one pin per shard, taken together, forming the set-level snapshot
// vector. Every SetSnapshot read — a paginated Scan, a backup stream —
// resolves at exactly the pinned generations, so the caller sees one
// committed state of the set no matter how many group commits land
// while it pages.
//
// The pins cost memory on the write path (each shard's version buffer
// preserves the pre-image of every object overwritten after the pin),
// so snapshots are bounded: per shard at most store.DefaultMaxPins
// generations and store.DefaultMaxVersions preserved versions. A
// snapshot evicted by those caps — or explicitly Released — answers
// every later read with store.ErrSnapshotTooOld (errors.Is), never
// with silently-live data.
//
// Release drops every shard pin; it is idempotent and safe from any
// goroutine, so connection-teardown paths call it directly.
type SetSnapshot struct {
	set      *Set
	snaps    []*store.Snapshot
	released atomic.Bool
}

// OpenSnapshot pins every shard's current committed generation and
// returns the coordinated snapshot. Each pin is serialized onto its
// shard's worker goroutine — a pin lands between group commits, never
// inside one — and the shards pin in parallel, so the snapshot vector
// is acquired in one queue round-trip per shard, not a set-wide freeze.
//
// The set snapshot is all-or-nothing: if any shard's backend lacks the
// store.SnapshotViewer capability the open fails with a typed
// store.ErrSnapshotUnsupported naming that shard and backend, and every
// pin already taken is released. A set mixing snapshot-capable and
// incapable backends therefore cannot serve snapshots at all — the
// alternative, a "snapshot" that pins some shards and reads the others
// live, is exactly the silent downgrade this API exists to forbid.
func (s *Set) OpenSnapshot() (*SetSnapshot, error) {
	results := make([]chan response, len(s.workers))
	for i, w := range s.workers {
		results[i] = w.send(request{op: opSnapOpen})
	}
	snaps := make([]*store.Snapshot, len(s.workers))
	var first error
	for i, ch := range results {
		r := <-ch
		if r.err != nil {
			if first == nil {
				first = r.err
			}
			continue
		}
		snaps[i] = r.snap
	}
	if first != nil {
		for _, sn := range snaps {
			if sn != nil {
				sn.Release()
			}
		}
		return nil, first
	}
	return &SetSnapshot{set: s, snaps: snaps}, nil
}

// Release drops every shard pin. Idempotent; safe from any goroutine.
func (sn *SetSnapshot) Release() {
	if !sn.released.CompareAndSwap(false, true) {
		return
	}
	for _, s := range sn.snaps {
		s.Release()
	}
}

// Gens returns the snapshot vector: shard i's pinned generation (its
// committed-batch count at pin time). Diagnostics and tests; the vector
// is fixed at open.
func (sn *SetSnapshot) Gens() []uint64 {
	out := make([]uint64, len(sn.snaps))
	for i, s := range sn.snaps {
		out[i] = s.Gen()
	}
	return out
}

// Scan returns up to limit pairs with keys in [lo, hi] in ascending key
// order as of the snapshot's pinned generations, with the same
// pagination contract as Set.Scan (next/more to continue). Unlike
// Set.Scan, every page of a paginated snapshot scan observes the same
// committed state: group commits proceeding between pages change
// nothing the scan reports.
//
// Chunks follow the live scan's two-population split — the fast path
// resolves against the shard's ReadView under the reader gate on this
// goroutine, fallback chunks resolve against the owner store on the
// worker — with the pinned-generation version overlay applied to
// either source. A pin evicted mid-scan (caps, Release, an engine
// invalidation) surfaces as store.ErrSnapshotTooOld rather than a page
// of mixed-generation data.
func (sn *SetSnapshot) Scan(lo, hi uint64, limit int) (pairs []Pair, next uint64, more bool, err error) {
	if sn.released.Load() {
		return nil, 0, false, fmt.Errorf("shard: released snapshot: %w", store.ErrSnapshotTooOld)
	}
	if limit <= 0 || lo > hi {
		return nil, 0, false, nil
	}
	streams := make([]*shardStream, len(sn.set.workers))
	for i, w := range sn.set.workers {
		w, shardSnap := w, sn.snaps[i]
		streams[i] = &shardStream{
			idx: i,
			fetch: func(lo, hi uint64, max int) ([]Pair, error) {
				return w.snapScanChunk(shardSnap, lo, hi, max)
			},
			next: lo,
			hi:   hi,
		}
	}
	return mergeStreams(streams, limit)
}
