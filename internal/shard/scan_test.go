package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the cross-shard ordered scan: global ordering and
// completeness of the k-way merge, cursor pagination, fast-path
// engagement and fallback, the typed shutdown error, the mode-selection
// bugfix, and the -race scan-vs-commit torture.

// fillSet populates n random keys and returns the model.
func fillSet(t *testing.T, s *Set, n int, seed int64) map[uint64]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]uint64, n)
	for len(model) < n {
		k := rng.Uint64() % (1 << 20)
		v := rng.Uint64()
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	return model
}

// checkScanAgainstModel paginates Scan over [lo, hi] with the given page
// limit and asserts global ascending order, no duplicates, bounds, and
// exact agreement with the model's in-range contents.
func checkScanAgainstModel(t *testing.T, s *Set, model map[uint64]uint64, lo, hi uint64, limit int) {
	t.Helper()
	got := map[uint64]uint64{}
	last, first := uint64(0), true
	cursor := lo
	for {
		pairs, next, more, err := s.Scan(cursor, hi, limit)
		if err != nil {
			t.Fatalf("scan [%d,%d] from %d: %v", lo, hi, cursor, err)
		}
		if len(pairs) > limit {
			t.Fatalf("scan returned %d pairs, limit %d", len(pairs), limit)
		}
		for _, pr := range pairs {
			if pr.K < cursor || pr.K > hi {
				t.Fatalf("scan [%d,%d] from %d yielded out-of-bounds key %d", lo, hi, cursor, pr.K)
			}
			if !first && pr.K <= last {
				t.Fatalf("scan order regressed: %d after %d", pr.K, last)
			}
			if _, dup := got[pr.K]; dup {
				t.Fatalf("scan yielded key %d twice", pr.K)
			}
			got[pr.K] = pr.V
			last, first = pr.K, false
		}
		if !more {
			break
		}
		if next <= cursor && !first {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		cursor = next
	}
	want := 0
	for k, v := range model {
		if k >= lo && k <= hi {
			want++
			if gv, ok := got[k]; !ok || gv != v {
				t.Fatalf("key %d = (%d,%v), model %d", k, gv, ok, v)
			}
		}
	}
	if len(got) != want {
		t.Fatalf("scan [%d,%d] returned %d pairs, model has %d in range", lo, hi, len(got), want)
	}
}

// TestScanOrderedAcrossShards: the k-way merge yields globally ordered,
// duplicate-free, complete, bound-respecting output over ≥4 shards, for
// an ordered structure and for the unordered hashmap (whose chunks are
// k-smallest selections, so the merged output is ordered all the same).
func TestScanOrderedAcrossShards(t *testing.T) {
	for _, structure := range []string{"btree", "hashmap"} {
		t.Run(structure, func(t *testing.T) {
			s := newSet(t, t.TempDir(), 4, Options{Structure: structure})
			defer s.Abandon()
			model := fillSet(t, s, 500, 11)
			checkScanAgainstModel(t, s, model, 0, ^uint64(0), 1<<20)
			checkScanAgainstModel(t, s, model, 1<<18, 1<<19, 64)
			// Page size smaller than a chunk, and much smaller than the
			// result: pagination must still be exact.
			checkScanAgainstModel(t, s, model, 0, ^uint64(0), 7)
		})
	}
}

// TestScanLimitAndCursor: limit truncates exactly, the cursor resumes
// without gaps or repeats, and an exhausted scan reports more=false.
func TestScanLimitAndCursor(t *testing.T) {
	s := newSet(t, t.TempDir(), 4, Options{Structure: "skiplist"})
	defer s.Abandon()
	for k := uint64(0); k < 100; k++ {
		if err := s.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	pairs, next, more, err := s.Scan(0, ^uint64(0), 30)
	if err != nil || len(pairs) != 30 || !more {
		t.Fatalf("first page = %d pairs, more=%v, err=%v", len(pairs), more, err)
	}
	if pairs[29].K != 29 || next != 30 {
		t.Fatalf("first page ends at %d, next=%d", pairs[29].K, next)
	}
	pairs, _, more, err = s.Scan(next, ^uint64(0), 100)
	if err != nil || len(pairs) != 70 || more {
		t.Fatalf("second page = %d pairs, more=%v, err=%v", len(pairs), more, err)
	}
	// Empty range and zero limit.
	if pairs, _, more, err := s.Scan(200, 300, 10); err != nil || len(pairs) != 0 || more {
		t.Fatalf("empty range = (%d pairs, %v, %v)", len(pairs), more, err)
	}
	if pairs, _, more, err := s.Scan(0, ^uint64(0), 0); err != nil || len(pairs) != 0 || more {
		t.Fatalf("zero limit = (%d pairs, %v, %v)", len(pairs), more, err)
	}
}

// TestScanFastPathEngages: with no writer running every chunk must be
// served on the fast path, and SerialReads must force every chunk to the
// worker instead.
func TestScanFastPathEngages(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{Structure: "btree"})
	defer s.Abandon()
	for k := uint64(0); k < 64; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := s.Scan(0, ^uint64(0), 1000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FastScans == 0 || st.Scans != 0 {
		t.Fatalf("idle scan not fast: fast=%d worker=%d (fallbacks=%d faults=%d)",
			st.FastScans, st.Scans, st.ScanFallbacks, st.ScanFaults)
	}
	if st.FastScanPairs != 64 {
		t.Fatalf("fast scan pairs = %d, want 64", st.FastScanPairs)
	}

	ser := newSet(t, t.TempDir(), 2, Options{Structure: "btree", SerialReads: true})
	defer ser.Abandon()
	for k := uint64(0); k < 64; k++ {
		if err := ser.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	pairs, _, _, err := ser.Scan(0, ^uint64(0), 1000)
	if err != nil || len(pairs) != 64 {
		t.Fatalf("serial scan = %d pairs, err=%v", len(pairs), err)
	}
	st = ser.Stats()
	if st.FastScans != 0 || st.Scans == 0 {
		t.Fatalf("serial-reads scan used the fast path: fast=%d worker=%d", st.FastScans, st.Scans)
	}
}

// TestScanFallsBackWhenGateHeld: a scan issued while the worker holds
// the reader gate must be served via the worker queue, not fail.
func TestScanFallsBackWhenGateHeld(t *testing.T) {
	s := newSet(t, t.TempDir(), 1, Options{Structure: "btree"})
	defer s.Abandon()
	for k := uint64(0); k < 32; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	w := s.workers[0]
	w.gate.Lock()
	done := make(chan error, 1)
	go func() {
		pairs, _, _, err := s.Scan(0, ^uint64(0), 100)
		if err == nil && len(pairs) != 32 {
			err = errors.New("short scan under contention")
		}
		done <- err
	}()
	// Give the scan time to bounce off the held gate and queue behind the
	// worker, then release.
	time.Sleep(10 * time.Millisecond)
	w.gate.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ScanFallbacks == 0 || st.Scans == 0 {
		t.Fatalf("contended scan did not fall back: fallbacks=%d worker=%d", st.ScanFallbacks, st.Scans)
	}
}

// TestScanShuttingDownTyped: after Abandon, Scan reports the typed
// ErrShuttingDown — the same contract Get has — distinguishable from a
// real scan error.
func TestScanShuttingDownTyped(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{Structure: "btree"})
	if err := s.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	s.Abandon()
	if _, _, _, err := s.Scan(0, ^uint64(0), 10); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Scan after Abandon = %v, want ErrShuttingDown", err)
	}
	// The serial path (no ReadView instance) must report the same typed
	// error through the worker queue.
	ser := newSet(t, t.TempDir(), 2, Options{Structure: "btree", SerialReads: true})
	ser.Abandon()
	if _, _, _, err := ser.Scan(0, ^uint64(0), 10); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("serial Scan after Abandon = %v, want ErrShuttingDown", err)
	}
}

// TestModePmemobjRejectedExplicitly: the named mode channel rejects the
// unprotected baseline with the typed error instead of silently serving
// full protection, while the zero-value default still selects MLPC and
// the other names select what they say.
func TestModePmemobjRejectedExplicitly(t *testing.T) {
	if _, err := Create(t.TempDir(), 1, Options{Mode: "pmemobj"}); !errors.Is(err, ErrUnprotectedMode) {
		t.Fatalf("Create(Mode=pmemobj) = %v, want ErrUnprotectedMode", err)
	}
	if _, err := Open(t.TempDir(), Options{Mode: "pmemobj"}); !errors.Is(err, ErrUnprotectedMode) {
		t.Fatalf("Open(Mode=pmemobj) = %v, want ErrUnprotectedMode", err)
	}
	if _, err := Create(t.TempDir(), 1, Options{Mode: "protect-me-not"}); err == nil || errors.Is(err, ErrUnprotectedMode) {
		t.Fatalf("Create(unknown mode) = %v, want a distinct naming error", err)
	}
	// Zero-value default: full protection.
	opts := Options{}
	cfg, err := opts.config()
	if err != nil || cfg.Mode != 4 { // ModePangolinMLPC
		t.Fatalf("zero-value config = (%v mode %d), want MLPC", err, cfg.Mode)
	}
	// Named weaker-but-protected modes resolve to themselves.
	opts = Options{Mode: "pangolin-ml"}
	if cfg, err := opts.config(); err != nil || cfg.Mode != 2 {
		t.Fatalf("pangolin-ml config = (%v mode %d)", err, cfg.Mode)
	}
	// The named channel and a working set: create/open round-trips.
	dir := t.TempDir()
	s, err := Create(dir, 2, Options{Mode: "pangolin-mlp", Structure: "ctree"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Mode: "pangolin-mlp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	if v, ok, err := s2.Get(1); err != nil || !ok || v != 2 {
		t.Fatalf("get after reopen = (%d,%v,%v)", v, ok, err)
	}
}

// TestScanStormVsCommits is the scan analog of the read torture: scans
// paginate while writers commit, Sync and Scrub run, and every page must
// stay ordered, in-bounds, duplicate-free, and made of committed values
// (value == key*2+1 at any generation, or the prefill key*2).
func TestScanStormVsCommits(t *testing.T) {
	s := newSet(t, t.TempDir(), 4, Options{Structure: "rbtree", QueueLen: 16})
	defer s.Abandon()
	const keys = 256
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	scanErrs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				lo := rng.Uint64() % keys
				cursor, last, first := lo, uint64(0), true
				for {
					pairs, next, more, err := s.Scan(cursor, keys-1, 17)
					if err != nil {
						scanErrs <- err
						return
					}
					for _, pr := range pairs {
						if pr.K < cursor || pr.K > keys-1 {
							scanErrs <- errorsNewf("out-of-bounds key %d in [%d,%d]", pr.K, cursor, keys-1)
							return
						}
						if !first && pr.K <= last {
							scanErrs <- errorsNewf("order regressed: %d after %d", pr.K, last)
							return
						}
						if pr.V != pr.K*2 && pr.V != pr.K*2+1 {
							scanErrs <- errorsNewf("torn value %d for key %d", pr.V, pr.K)
							return
						}
						last, first = pr.K, false
					}
					if !more {
						break
					}
					cursor = next
				}
			}
		}(r)
	}
	// Writers rewrite values while saves and scrubs churn the gate.
	for i := 0; i < 40; i++ {
		for k := uint64(0); k < keys; k += 8 {
			if err := s.Put(k, k*2+1); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Scrub(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(scanErrs)
	for err := range scanErrs {
		t.Error(err)
	}
	st := s.Stats()
	if st.FastScans == 0 {
		t.Error("scan storm never engaged the fast path")
	}
	t.Logf("scan chunks: fast=%d worker=%d fallbacks=%d faults=%d pairs=%d/%d",
		st.FastScans, st.Scans, st.ScanFallbacks, st.ScanFaults, st.FastScanPairs, st.ScanPairs)
}

func errorsNewf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// Edge: limit hits exactly the number of remaining pairs — more must be
// false, not a dangling cursor pointing at an empty tail.
func TestScanExactLimitBoundary(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{Structure: "rbtree"})
	defer s.Abandon()
	for k := uint64(0); k < 50; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	pairs, _, more, err := s.Scan(0, 49, 50)
	if err != nil || len(pairs) != 50 {
		t.Fatalf("exact scan = %d pairs, err=%v", len(pairs), err)
	}
	if more {
		// A dangling more=true is tolerable only if the follow-up page is
		// empty and terminal; assert the strong property instead.
		t.Fatalf("more=true after consuming the whole range")
	}
	// Limit one less: cursor must resume onto exactly the last pair.
	pairs, next, more, err := s.Scan(0, 49, 49)
	if err != nil || len(pairs) != 49 || !more {
		t.Fatalf("49-scan = %d pairs, more=%v, err=%v", len(pairs), more, err)
	}
	pairs, _, more, err = s.Scan(next, 49, 49)
	if err != nil || len(pairs) != 1 || pairs[0].K != 49 || more {
		t.Fatalf("tail scan = %+v, more=%v, err=%v", pairs, more, err)
	}
}
