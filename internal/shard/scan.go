package shard

import (
	"container/heap"
	"fmt"
	"sync"
)

// Pair is one key/value pair in a scan result.
type Pair struct {
	K uint64 `json:"k"`
	V uint64 `json:"v"`
}

// ScanChunkPairs is how many pairs a shard-level scan pulls per reader-
// gate hold. Chunking is what keeps long scans off the single-writer
// commit path: the gate is released and re-acquired every chunk, so a
// scan over millions of keys never excludes the worker's group commits
// for longer than one chunk's traversal.
const ScanChunkPairs = 256

// shardStream pulls one shard's in-range pairs in ascending chunks and
// feeds them to the merge. fetch abstracts the chunk source: a live
// Set.Scan binds the worker's scanChunk, a SetSnapshot.Scan binds
// snapScanChunk with that shard's pinned snapshot — the merge is
// identical either way.
type shardStream struct {
	idx   int // shard index, for error attribution
	fetch func(lo, hi uint64, max int) ([]Pair, error)
	buf   []Pair
	pos   int
	next  uint64 // next key to fetch from
	hi    uint64
	done  bool // no further pairs in [next, hi] on this shard
}

// fill pulls the next chunk. A chunk shorter than requested means the
// shard is exhausted in the range, as is a chunk ending at the top of
// the key space.
func (st *shardStream) fill(chunk int) error {
	pairs, err := st.fetch(st.next, st.hi, chunk)
	if err != nil {
		return err
	}
	st.buf, st.pos = pairs, 0
	if len(pairs) < chunk {
		st.done = true
	} else if last := pairs[len(pairs)-1].K; last >= st.hi || last == ^uint64(0) {
		st.done = true
	} else {
		st.next = last + 1
	}
	return nil
}

func (st *shardStream) head() Pair { return st.buf[st.pos] }

// scanHeap is a min-heap of non-empty shard streams keyed by head key.
type scanHeap []*shardStream

func (h scanHeap) Len() int           { return len(h) }
func (h scanHeap) Less(i, j int) bool { return h[i].head().K < h[j].head().K }
func (h scanHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x any)        { *h = append(*h, x.(*shardStream)) }
func (h *scanHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Scan returns up to limit pairs with keys in [lo, hi] in ascending key
// order, merged across every shard (keys are hash-partitioned, so each
// shard contributes an arbitrary but disjoint subset; a k-way heap merge
// of the per-shard ascending streams yields globally ordered,
// duplicate-free output). next is the key to pass as lo to continue a
// paginated scan, meaningful only when more is true.
//
// Each shard is consumed in ScanChunkPairs-sized chunks: the concurrent
// fast path scans the shard's ReadView on this goroutine under the
// shard's reader gate, releasing it between chunks, and a gate-busy or
// faulting chunk falls back to that shard's worker queue. Consistency is
// therefore per chunk — every chunk observes a single committed image of
// its shard (commits are excluded while it runs), but a scan spanning
// several chunks or shards is not one committed image of the set: pairs
// committed behind the cursor are missed, pairs ahead of it appear.
// Every returned pair was committed at the moment its chunk read it.
// When the whole scan (or a backup) must observe exactly one state while
// writes proceed, open a pinned-generation snapshot first and page
// through SetSnapshot.Scan instead.
//
// A shutdown surfaces as ErrShuttingDown (errors.Is), matching Get.
func (s *Set) Scan(lo, hi uint64, limit int) (pairs []Pair, next uint64, more bool, err error) {
	if limit <= 0 || lo > hi {
		return nil, 0, false, nil
	}
	streams := make([]*shardStream, len(s.workers))
	for i, w := range s.workers {
		w := w
		streams[i] = &shardStream{idx: i, fetch: w.scanChunk, next: lo, hi: hi}
	}
	return mergeStreams(streams, limit)
}

// mergeStreams runs the k-way heap merge over per-shard ascending
// streams: the page assembly shared by live scans and snapshot scans.
// Initial fills run in parallel across shards; refills happen inline as
// the merge drains a stream.
func mergeStreams(streams []*shardStream, limit int) (pairs []Pair, next uint64, more bool, err error) {
	chunk := min(ScanChunkPairs, limit)
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) { // initial fills run in parallel across shards
			defer wg.Done()
			errs[i] = streams[i].fill(chunk)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, 0, false, fmt.Errorf("shard %d: %w", i, e)
		}
	}
	h := make(scanHeap, 0, len(streams))
	for _, st := range streams {
		if len(st.buf) > 0 {
			h = append(h, st)
		}
	}
	heap.Init(&h)
	pairs = make([]Pair, 0, min(limit, 1024))
	pending := false // a stream drained unexhausted after the page filled
	for len(h) > 0 && len(pairs) < limit {
		st := h[0]
		pairs = append(pairs, st.head())
		st.pos++
		if st.pos == len(st.buf) && !st.done {
			if len(pairs) == limit {
				// The page is complete: prefetching another chunk just to
				// decide `more` would spend a gate hold — and, were it to
				// fail, discard the finished page. Report more
				// conservatively instead; if the shard's range happened to
				// end exactly at the chunk boundary, the follow-up call
				// returns an empty terminal page.
				pending = true
			} else if err := st.fill(chunk); err != nil {
				// Mid-page the error is authoritative: the page is
				// genuinely incomplete, so surface it rather than hand
				// back a truncated range that looks done.
				return nil, 0, false, fmt.Errorf("shard %d: %w", st.idx, err)
			}
		}
		if st.pos < len(st.buf) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	if len(h) == 0 && !pending {
		return pairs, 0, false, nil
	}
	last := pairs[len(pairs)-1].K
	if last == ^uint64(0) {
		return pairs, 0, false, nil
	}
	return pairs, last + 1, true, nil
}
