package shard

import (
	"time"
)

// The maintenance scheduler drives the shards' incremental scrubbers:
// every tick it offers ONE bounded scrub step to the next shard in
// round-robin order, through the shard's worker queue, so steps
// interleave between group commits under the existing reader/writer
// gate. Backpressure is absolute — a step is skipped (and counted as a
// scrub_backoff) whenever the worker has queued requests or the enqueue
// would block, so a busy worker always wins over the scrubber and the
// scheduler degrades to scrubbing only the idle moments. Full-pool
// integrity is then the fixpoint the steps converge to: every shard's
// last_full_pass_unix advances as its cursor wraps, and bg_repairs
// counts the corruption the steps healed before any client read could
// meet it.
type maintenance struct {
	interval time.Duration
	stopc    chan struct{}
	done     chan struct{}
}

// startMaint launches the scheduler when opts enable it (ScrubInterval
// > 0). One goroutine serves the whole set: intervals are per step, not
// per shard, so the scrub load on the process is bounded regardless of
// the shard count.
func (s *Set) startMaint(interval time.Duration) {
	if interval <= 0 {
		return
	}
	m := &maintenance{
		interval: interval,
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.maint = m
	go s.maintLoop(m)
}

// stopMaint stops the scheduler and waits for it; safe to call twice.
func (s *Set) stopMaint() {
	if s.maint == nil {
		return
	}
	close(s.maint.stopc)
	<-s.maint.done
	s.maint = nil
}

func (s *Set) maintLoop(m *maintenance) {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	next := 0
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
		}
		w := s.workers[next%len(s.workers)]
		next++
		// Backpressure: any queued client work means the worker is busy;
		// skip this shard's step rather than adding to its backlog.
		if len(w.reqs) > 0 {
			w.scrubBackoffs.Add(1)
			continue
		}
		reply, ok := w.trySend(request{op: opScrubStep})
		if !ok {
			w.scrubBackoffs.Add(1)
			continue
		}
		// Wait for the step before scheduling the next one: the
		// scheduler never has more than one step outstanding, so it can
		// never queue scrub work faster than the workers retire it.
		select {
		case <-reply:
			putReply(reply)
		case <-m.stopc:
			// Shutdown while a step is in flight: the worker still
			// drains it (stop() waits for the queue), we just stop
			// waiting.
			return
		}
	}
}
