// Package shard hash-partitions a uint64 key space across N independent
// per-shard stores so that mutations on different shards commit in
// parallel. Every store backend (internal/store) shares the paper's
// ownership discipline — pangolin transactions are per-goroutine and two
// concurrent transactions must not modify the same object (§3.4) — so
// the package gives each shard exactly one owner goroutine (a worker)
// that performs every mutating store access — batches, snapshot saves,
// scrubs — and routes requests to workers over channels. Write
// concurrency scales with the shard count while each store keeps the
// single-writer discipline.
//
// Reads do not funnel through the workers when the backend offers a
// read view (store.ReadViewer): Pangolin's design point is that readers
// verify per-object checksums straight from NVMM and run concurrently
// with each other (§3.3), so Get executes a verified read on the
// caller's goroutine against the store's view, gated by a per-shard
// reader/writer gate. Readers share the gate; the worker takes its
// write side around every store access, so a group commit (the
// linearization point for the shard) excludes readers only for the
// commit itself. Readers never block on the gate: if it is unavailable
// — commit, save, crash-image, scrub, or recovery in progress — or a
// read hits a fault that needs online repair, the read falls back to
// the worker queue, whose repairing path serializes with everything
// else.
//
// Backends are selected per shard (Options.Backend): the pangolin
// backend persists as one snapshot file per shard (shard-%04d.pgl, via
// pangolin.PoolSet) and the log backend as one segment directory per
// shard (shard-%04d.log), side by side in the set directory — Open
// rediscovers each shard's backend from which form is present. Each
// shard records its structure, index, and set size (the pangolin root /
// the log manifest) so Open can reattach and can reject a directory
// whose shards disagree (e.g. a file restored from the wrong set).
package shard

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
	"github.com/pangolin-go/pangolin/internal/store/logstore"
	"github.com/pangolin-go/pangolin/internal/store/pangolinstore"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
)

// ErrShuttingDown reports an operation rejected because the set (or its
// shard) is shutting down. It is distinguishable with errors.Is from a
// real lookup or transaction error, so callers can treat it as a
// lifecycle event rather than data-path corruption.
var ErrShuttingDown = errors.New("shard set shutting down")

// ErrUnprotectedMode reports an explicit request for the unprotected
// pmemobj baseline through a service set. The baseline is numerically
// the zero Mode, so the numeric Config field cannot distinguish "asked
// for pmemobj" from "left at the default"; Options.Mode can, and an
// explicit "pmemobj" is rejected with this error instead of being
// silently upgraded to full protection (the pre-fix behavior, which
// served a different mode than the operator asked for).
var ErrUnprotectedMode = errors.New("shard: the unprotected pmemobj mode is not servable (a serving layer that silently dropped every protection would be a footgun)")

// Options configures a shard set.
type Options struct {
	// Structure selects the kv structure by registry name; default
	// "hashmap".
	Structure string
	// Backend selects each shard's storage backend: "pangolin" (the
	// paper's engine; default), "logstore" (the append-only log
	// baseline), or a comma list cycled across the shards ("pangolin,
	// logstore" alternates) so one set can mix backends for A/B runs.
	// Open ignores it — each shard's backend is rediscovered from its
	// on-disk form.
	Backend string
	// Mode selects each shard pool's operation mode BY NAME ("pangolin",
	// "pangolin-ml", "pangolin-mlp", "pangolin-mlpc"), overriding
	// Pangolin.Mode. Empty defers to Pangolin.Mode. This is the explicit
	// channel: requesting "pmemobj" fails with ErrUnprotectedMode, and an
	// unknown name is an error, where the numeric field below cannot tell
	// an explicit pmemobj request from the zero-value default. Pangolin
	// shards only; the log backend has no modes.
	Mode string
	// Pangolin configures each pangolin shard pool. A zero (pmemobj)
	// Mode always selects ModePangolinMLPC, the fully protected system:
	// the unprotected baseline is numerically zero, so this field cannot
	// carry an explicit pmemobj request — use Mode, which rejects it
	// with a typed error instead of silently upgrading. Pangolin.Scrub
	// also bounds every backend's maintenance steps.
	Pangolin pangolin.Config
	// LogSegmentBytes is the log backend's segment rotation threshold;
	// 0 selects the logstore default. Small values force rotation and
	// compaction traffic (tests, the loadtest's backend phase).
	LogSegmentBytes int64
	// QueueLen is the per-shard request queue depth; default 128.
	QueueLen int
	// MaxBatch caps how many operations a shard worker folds into one
	// group-committed store batch; default 64. A worker only waits to
	// fill a group within the bounded adaptive window below, so this
	// bounds batch size, not latency.
	MaxBatch int
	// CommitWait caps the adaptive group-commit window: when a shard's
	// queue has been running deep (recent group depth EWMA ≥ 2), the
	// worker may wait up to this long — scaled down by how shallow the
	// recent groups actually were — for more ops before committing, so
	// per-commit transaction costs amortize over deeper batches exactly
	// when traffic can fill them. Idle or lockstep load never waits: the
	// EWMA sits at 1 and the window is zero. 0 selects the default
	// (100µs); negative disables the wait entirely (the pre-adaptive
	// drain-only behavior).
	CommitWait time.Duration
	// SerialReads disables the concurrent verified-read fast path and
	// routes every Get through the shard's worker goroutine (the
	// pre-fast-path behavior). Mainly for A/B measurement (pglserve
	// -serial-reads) and tests; leave false in production.
	SerialReads bool
	// ScrubInterval enables the background maintenance scheduler: every
	// interval one shard (round-robin) is offered one bounded scrub
	// step, skipped with a backoff whenever that shard's worker is busy.
	// 0 disables the scheduler; scrubbing then happens only on demand
	// (Scrub / the server's SCRUB op). Step bounds come from
	// Pangolin.Scrub. On log shards the step doubles as the compaction
	// driver: merges run through the same tick.
	ScrubInterval time.Duration
}

func (o *Options) structure() string {
	if o.Structure == "" {
		return "hashmap"
	}
	return o.Structure
}

// modeNames maps the servable mode names. "pmemobj" is deliberately
// absent: an explicit request for it is rejected, not coerced.
var modeNames = map[string]pangolin.Mode{
	"pangolin":      pangolin.ModePangolin,
	"pangolin-ml":   pangolin.ModePangolinML,
	"pangolin-mlp":  pangolin.ModePangolinMLP,
	"pangolin-mlpc": pangolin.ModePangolinMLPC,
}

// ModeNames returns the servable mode names in protection order.
func ModeNames() []string {
	return []string{"pangolin", "pangolin-ml", "pangolin-mlp", "pangolin-mlpc"}
}

func (o *Options) config() (pangolin.Config, error) {
	cfg := o.Pangolin
	switch o.Mode {
	case "":
		// Numeric path: zero (== ModePmemobj) is indistinguishable from
		// "unset" and means the fully protected default.
		if cfg.Mode == pangolin.ModePmemobj {
			cfg.Mode = pangolin.ModePangolinMLPC
		}
	case "pmemobj":
		return cfg, ErrUnprotectedMode
	default:
		m, ok := modeNames[o.Mode]
		if !ok {
			return cfg, fmt.Errorf("shard: unknown mode %q (have %v)", o.Mode, ModeNames())
		}
		cfg.Mode = m
	}
	return cfg, nil
}

func (o *Options) queueLen() int {
	if o.QueueLen <= 0 {
		return 128
	}
	return o.QueueLen
}

func (o *Options) maxBatch() int {
	if o.MaxBatch <= 0 {
		return 64
	}
	return o.MaxBatch
}

// defaultCommitWait is the adaptive group-commit window cap when
// Options.CommitWait is zero: a few store round trips' worth of grace,
// far below any client-visible latency budget.
const defaultCommitWait = 100 * time.Microsecond

func (o *Options) commitWait() time.Duration {
	switch {
	case o.CommitWait == 0:
		return defaultCommitWait
	case o.CommitWait < 0:
		return 0
	default:
		return o.CommitWait
	}
}

// logOptions builds the log backend's per-shard options.
func (o *Options) logOptions(structure string, i, n int) logstore.Options {
	return logstore.Options{
		Structure:    structure,
		Index:        i,
		Count:        n,
		SegmentBytes: o.LogSegmentBytes,
		Scrub:        o.Pangolin.Scrub,
	}
}

// Set is a sharded, concurrently usable key-value store over per-shard
// store.Store backends. All methods are safe for concurrent use; each
// operation is serialized onto its shard's worker goroutine.
type Set struct {
	dir       string
	workers   []*worker
	stores    []store.Store
	structure registry.Structure
	maint     *maintenance // background scrub scheduler; nil when disabled
}

// Create builds a new n-shard set in dir and starts its workers. The
// per-shard backends come from opts.Backend; pangolin shards of the set
// share one pangolin.PoolSet (sparse when backends are mixed).
func Create(dir string, n int, opts Options) (*Set, error) {
	structure, err := registry.ByName(opts.structure())
	if err != nil {
		return nil, err
	}
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	backends, err := store.ParseBackendSpec(opts.Backend, n)
	if err != nil {
		return nil, err
	}
	var pgIdx []int
	for i, b := range backends {
		if b == store.BackendPangolin {
			pgIdx = append(pgIdx, i)
		}
	}
	// NewPoolSetShards defers the snapshot writes: the Sync below
	// persists the pools once, with their roots already initialized.
	var pools *pangolin.PoolSet
	if len(pgIdx) > 0 {
		pools, err = pangolin.NewPoolSetShards(dir, n, pgIdx, cfg)
		if err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	stores := make([]store.Store, n)
	fail := func(upto int, err error) (*Set, error) {
		for k := 0; k < upto; k++ {
			stores[k].Close()
		}
		if pools != nil {
			// Pangolin pools not yet wrapped in a store still need closing.
			for _, pi := range pgIdx {
				if pi >= upto {
					pools.Pool(pi).Close()
				}
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		var st store.Store
		switch backends[i] {
		case store.BackendPangolin:
			st, err = pangolinstore.Create(pools, i, structure, cfg.Scrub)
		case store.BackendLog:
			st, err = logstore.Create(logstore.ShardDir(dir, i), opts.logOptions(structure.Name, i, n))
		}
		if err != nil {
			return fail(i, fmt.Errorf("shard %d (%s): %w", i, backends[i], err))
		}
		stores[i] = st
	}
	s := &Set{dir: dir, stores: stores, structure: structure}
	for i, st := range stores {
		view, err := readView(st, opts)
		if err != nil {
			s.Abandon()
			return nil, fmt.Errorf("shard %d: attach read view: %w", i, err)
		}
		s.workers = append(s.workers, newWorker(i, st, view, opts.queueLen(), opts.maxBatch(), opts.commitWait()))
	}
	// Persist the freshly initialized shards (pangolin roots and
	// anchors; log manifests and empty tails).
	if err := s.Sync(); err != nil {
		s.Abandon()
		return nil, err
	}
	s.startMaint(opts.ScrubInterval)
	return s, nil
}

// Open reopens the set in dir — rediscovering each shard's backend from
// its on-disk form, running crash recovery on every shard — reattaches
// each shard's structure, and starts the workers. opts.Structure and
// opts.Backend are ignored; both are read from the shards themselves.
func Open(dir string, opts Options) (*Set, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	backends, err := DiscoverBackends(dir)
	if err != nil {
		return nil, err
	}
	n := len(backends)
	var pgIdx []int
	for i, b := range backends {
		if b == store.BackendPangolin {
			pgIdx = append(pgIdx, i)
		}
	}
	var pools *pangolin.PoolSet
	if len(pgIdx) > 0 {
		pools, err = pangolin.OpenPoolSetShards(dir, n, pgIdx, cfg)
		if err != nil {
			return nil, err
		}
	}
	stores := make([]store.Store, n)
	fail := func(upto int, err error) (*Set, error) {
		for k := 0; k < upto; k++ {
			stores[k].Close()
		}
		if pools != nil {
			for _, pi := range pgIdx {
				if pi >= upto {
					pools.Pool(pi).Close()
				}
			}
		}
		return nil, err
	}
	var structure registry.Structure
	for i := 0; i < n; i++ {
		var name string
		switch backends[i] {
		case store.BackendPangolin:
			st, err := pangolinstore.Open(pools, i, cfg.Scrub)
			if err != nil {
				return fail(i, fmt.Errorf("shard %d: %w", i, err))
			}
			stores[i] = st
			name = st.Structure().Name
		case store.BackendLog:
			st, err := logstore.Open(logstore.ShardDir(dir, i), opts.logOptions("", i, n))
			if err != nil {
				return fail(i, fmt.Errorf("shard %d: %w", i, err))
			}
			stores[i] = st
			name = st.Structure()
		}
		if i == 0 {
			if structure, err = registry.ByName(name); err != nil {
				return fail(i+1, fmt.Errorf("shard %d: %w", i, err))
			}
		} else if name != structure.Name {
			return fail(i+1, fmt.Errorf("shard %d holds %s but shard 0 holds %s", i, name, structure.Name))
		}
	}
	s := &Set{dir: dir, stores: stores, structure: structure}
	for i, st := range stores {
		view, err := readView(st, opts)
		if err != nil {
			s.Abandon()
			return nil, fmt.Errorf("shard %d: attach read view: %w", i, err)
		}
		s.workers = append(s.workers, newWorker(i, st, view, opts.queueLen(), opts.maxBatch(), opts.commitWait()))
	}
	s.startMaint(opts.ScrubInterval)
	return s, nil
}

// DiscoverBackends reads a set directory's per-shard backend layout:
// shard i is pangolin when shard-%04d.pgl (a file) is present and
// logstore when shard-%04d.log (a directory) is. Every index in
// [0, max] must appear in exactly one form.
func DiscoverBackends(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	backendAt := make(map[int]string)
	max := -1
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "shard-") || len(name) < len("shard-")+4 {
			continue
		}
		var backend string
		switch {
		case strings.HasSuffix(name, ".pgl") && !e.IsDir():
			backend = store.BackendPangolin
		case strings.HasSuffix(name, ".log") && e.IsDir():
			backend = store.BackendLog
		default:
			continue
		}
		i, err := strconv.Atoi(name[len("shard-") : len(name)-len(".pgl")])
		if err != nil {
			continue
		}
		if prev, dup := backendAt[i]; dup {
			return nil, fmt.Errorf("shard: %s holds both %s and %s files for shard %d", dir, prev, backend, i)
		}
		backendAt[i] = backend
		if i > max {
			max = i
		}
	}
	if max < 0 {
		return nil, fmt.Errorf("shard: no shard files in %s", dir)
	}
	out := make([]string, max+1)
	for i := range out {
		b, ok := backendAt[i]
		if !ok {
			return nil, fmt.Errorf("shard: shard files not contiguous: %s has no shard %d", dir, i)
		}
		out[i] = b
	}
	return out, nil
}

// readView attaches the concurrent-read handle the fast path runs its
// verified reads against. Returns nil — fast path off — under
// SerialReads or when the backend lacks the capability.
func readView(st store.Store, opts Options) (store.View, error) {
	if opts.SerialReads {
		return nil, nil
	}
	rv, ok := st.(store.ReadViewer)
	if !ok {
		return nil, nil
	}
	return rv.ReadView()
}

// mix is the splitmix64 finalizer: it decorrelates shard choice from key
// patterns, so sequential keys still spread uniformly.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// ShardOf returns the shard index owning key k.
func (s *Set) ShardOf(k uint64) int { return int(mix(k) % uint64(len(s.workers))) }

// Len returns the shard count.
func (s *Set) Len() int { return len(s.workers) }

// Structure returns the name of the kv structure the shards hold.
func (s *Set) Structure() string { return s.structure.Name }

// Dir returns the set's storage directory.
func (s *Set) Dir() string { return s.dir }

// Put inserts or updates k on its shard.
func (s *Set) Put(k, v uint64) error {
	r := s.workers[s.ShardOf(k)].do(request{op: opPut, k: k, v: v})
	return r.err
}

// Get returns the value for k. Reads are served on the concurrent fast
// path when possible: a checksum-verified read runs directly against
// the shard store from the caller's goroutine, in parallel with other
// readers, gated by the shard's reader/writer gate. When the worker owns
// the gate (a group commit, save, crash image, scrub, or recovery window
// is in progress) or the read hits a fault that needs repair, the read
// falls back to the worker queue; Stats reports both populations
// (fast_gets vs gets, plus fast_fallbacks/fast_faults).
func (s *Set) Get(k uint64) (uint64, bool, error) {
	w := s.workers[s.ShardOf(k)]
	if v, ok, err, served := w.fastGet(k); served {
		return v, ok, err
	}
	r := w.do(request{op: opGet, k: k})
	return r.v, r.ok, r.err
}

// Del removes k, reporting whether it was present.
func (s *Set) Del(k uint64) (bool, error) {
	r := s.workers[s.ShardOf(k)].do(request{op: opDel, k: k})
	return r.ok, r.err
}

// Submit queues one operation for asynchronous completion: done is
// invoked exactly once with the result, from the shard worker goroutine
// when the op executes (or synchronously, when it can be served or
// rejected without the worker). done must not block: it runs inside the
// shard's commit loop, so a blocking callback would stall every other
// op on the shard. This is the path the server's pipelined connections
// feed — submitted writes flow straight into the shard worker queue,
// where the group-commit drain folds every queued op into one
// store batch, so deeper pipelines directly produce bigger groups.
//
// A BatchGet first tries the concurrent verified-read fast path on the
// caller's goroutine (same rules as Get) and completes inline when it
// is served; only fallback reads take the queue. If the submitting
// shard is shutting down, done receives a typed ErrShuttingDown result
// — an in-flight op never disappears silently.
func (s *Set) Submit(op BatchOp, done func(BatchResult)) {
	switch op.Kind {
	case BatchGet:
		s.SubmitGet(op.K, done)
	case BatchPut:
		s.SubmitPut(op.K, op.V, done)
	case BatchDel:
		s.SubmitDel(op.K, done)
	default:
		done(BatchResult{Err: fmt.Errorf("shard: unknown batch kind %d", op.Kind)})
	}
}

// SubmitGet is Submit for a read: the verified-read fast path runs
// inline on the caller's goroutine when it can (completing done before
// SubmitGet returns), and gate-busy or faulting reads fall back to the
// worker queue's repairing path.
func (s *Set) SubmitGet(k uint64, done func(BatchResult)) {
	w := s.workers[s.ShardOf(k)]
	if v, ok, err, served := w.fastGet(k); served {
		done(BatchResult{V: v, OK: ok, Err: err})
		return
	}
	w.submit(request{op: opGet, k: k, done: func(r response) {
		done(BatchResult{V: r.v, OK: r.ok, Err: r.err})
	}})
}

// SubmitPut is Submit for an insert/update.
func (s *Set) SubmitPut(k, v uint64, done func(BatchResult)) {
	s.workers[s.ShardOf(k)].submit(request{op: opPut, k: k, v: v, done: func(r response) {
		done(BatchResult{OK: r.err == nil, Err: r.err})
	}})
}

// SubmitDel is Submit for a delete; the result's OK reports presence.
func (s *Set) SubmitDel(k uint64, done func(BatchResult)) {
	s.workers[s.ShardOf(k)].submit(request{op: opDel, k: k, done: func(r response) {
		done(BatchResult{OK: r.ok, Err: r.err})
	}})
}

// Batch executes ops and returns their results in matching order. The
// ops are partitioned by shard; each shard executes its slice inside one
// group-committed store batch (its commit is the linearization point
// for the slice), and the shards run concurrently. There is no
// cross-shard atomicity. If a shard's batch fails, that shard's ops are
// retried individually, each with its own verdict in BatchResult.Err.
func (s *Set) Batch(ops []BatchOp) []BatchResult {
	out := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return out
	}
	perShard := make([][]BatchOp, len(s.workers))
	perIdx := make([][]int, len(s.workers))
	for i, op := range ops {
		sh := s.ShardOf(op.K)
		perShard[sh] = append(perShard[sh], op)
		perIdx[sh] = append(perIdx[sh], i)
	}
	results := make([]chan response, len(s.workers))
	for sh, sub := range perShard {
		if len(sub) == 0 {
			continue
		}
		// All-GET slices take the read fast path: one reader-gate hold
		// per shard slice, no worker hop. Read-only batches have no
		// transaction even on the worker path (runGroup executes them
		// per-op), so the semantics are identical; mixed or mutating
		// slices go to the worker as before.
		if allGets(sub) {
			if res, ok := s.workers[sh].fastGetBatch(sub); ok {
				for j, i := range perIdx[sh] {
					out[i] = res[j]
				}
				putBatchResults(res)
				continue
			}
		}
		results[sh] = s.workers[sh].send(request{op: opBatch, ops: sub})
	}
	for sh, ch := range results {
		if ch == nil {
			continue
		}
		r := <-ch
		putReply(ch)
		if r.err != nil {
			// The worker rejected the request outright (closed shard):
			// every op in the slice gets the same verdict.
			for _, i := range perIdx[sh] {
				out[i] = BatchResult{Err: r.err}
			}
			continue
		}
		for j, i := range perIdx[sh] {
			out[i] = r.batch[j]
		}
		putBatchResults(r.batch)
	}
	return out
}

// allGets reports whether every op in the slice is a read.
func allGets(ops []BatchOp) bool {
	for _, op := range ops {
		if op.Kind != BatchGet {
			return false
		}
	}
	return true
}

// fanOut runs op on every worker concurrently and returns the first error.
func (s *Set) fanOut(op uint8, seed int64) error {
	results := make([]chan response, len(s.workers))
	for i, w := range s.workers {
		results[i] = w.send(request{op: op, seed: seed + int64(i)})
	}
	var first error
	for i, ch := range results {
		r := <-ch
		putReply(ch)
		if r.err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, r.err)
		}
	}
	return first
}

// Sync saves every shard durably. Each save runs on the shard's worker
// goroutine, so it never races a batch; shards save in parallel.
func (s *Set) Sync() error { return s.fanOut(opSync, 0) }

// CrashSave simulates a whole-machine power failure: every shard
// records a crash image of its state (unpersisted writes randomly
// evicted, reverted, or cut, per backend). The live set keeps running;
// reopening the directory recovers the crash state.
func (s *Set) CrashSave(seed int64) error { return s.fanOut(opCrash, seed) }

// Scrub runs a full scrubbing pass on every shard and returns the
// merged report. Each shard's pass executes as bounded incremental
// steps interleaved with its queued client requests, never as a
// stop-the-world sweep; concurrent passes on one shard coalesce.
func (s *Set) Scrub() (pangolin.ScrubReport, error) {
	results := make([]chan response, len(s.workers))
	for i, w := range s.workers {
		results[i] = w.send(request{op: opScrub})
	}
	// Merge with ScrubReport.Add — a field-by-field merge here silently
	// dropped new report fields once already.
	total := pangolin.ScrubReport{ChecksumsVerified: true}
	merged := false
	var first error
	for i, ch := range results {
		r := <-ch
		putReply(ch)
		if r.err != nil {
			if first == nil {
				first = fmt.Errorf("shard %d: %w", i, r.err)
			}
			continue
		}
		total.Add(r.scrub)
		merged = true
	}
	if !merged {
		total.ChecksumsVerified = false
	}
	return total, first
}

// InjectFaults corrupts count pseudo-randomly chosen live objects,
// spread round-robin across the shards starting at a seed-chosen shard
// — so repeated count=1 calls with advancing seeds (how pglload drives
// it) still exercise every shard, not just shard 0 (§4.6 fault
// injection; the server's INJECT op). It returns how many objects were
// actually corrupted, plus how many of the set's shards carry the
// injection hook at all (store.FaultInjector) — the capability count
// that lets an operator tell "nothing live to corrupt yet" (capable >
// 0, injected 0: retry) from "these backends cannot inject" (capable
// 0: a retry loop would spin forever). Shards without the hook inject
// nothing, explicitly. Each injection runs on its shard's worker
// goroutine, serialized with batches like every other store access.
func (s *Set) InjectFaults(seed int64, count int) (injected, capable int, err error) {
	for _, w := range s.workers {
		if w.injector != nil {
			capable++
		}
	}
	start := int(mix(uint64(seed)) % uint64(len(s.workers)))
	for i := 0; i < count; i++ {
		w := s.workers[(start+i)%len(s.workers)]
		r := w.do(request{op: opInject, seed: seed + int64(i)})
		if r.err != nil {
			if err == nil {
				err = r.err
			}
			continue
		}
		if r.ok {
			injected++
		}
	}
	return injected, capable, err
}

// ScrubHealth summarizes the maintenance subsystem's state across the
// set: how many bounded steps have run, how much corruption they
// repaired, how often backpressure skipped a step, how many steps or
// passes failed (a growing value with a stuck LastFullPass means the
// cursor cannot advance), and the oldest shard's last completed full
// pass (the set-wide "verified clean as of" bound — 0 while any shard
// has yet to finish a pass). Quarantined counts log segments parked by
// a corrupt-record merge abort: their data stays readable but is held
// back from compaction until an operator intervenes, so a nonzero
// value is a health signal, not a curiosity.
type ScrubHealth struct {
	ScrubSteps    uint64 `json:"scrub_steps"`
	BgRepairs     uint64 `json:"bg_repairs"`
	ScrubBackoffs uint64 `json:"scrub_backoffs"`
	ScrubErrors   uint64 `json:"scrub_errors"`
	LastFullPass  int64  `json:"last_full_pass_unix"`
	Quarantined   int    `json:"quarantined_segments"`
}

// ScrubHealth snapshots the set's maintenance counters.
func (s *Set) ScrubHealth() ScrubHealth {
	st := s.Stats()
	return ScrubHealth{
		ScrubSteps:    st.ScrubSteps,
		BgRepairs:     st.BgRepairs,
		ScrubBackoffs: st.ScrubBackoffs,
		ScrubErrors:   st.ScrubErrors,
		LastFullPass:  st.LastFullPass,
		Quarantined:   st.Quarantined,
	}
}

// Stats snapshots per-shard and aggregate counters.
func (s *Set) Stats() Stats {
	st := Stats{
		Structure: s.structure.Name,
		NumShards: len(s.workers),
		Shards:    make([]ShardStats, len(s.workers)),
	}
	results := make([]chan response, len(s.workers))
	for i, w := range s.workers {
		results[i] = w.send(request{op: opStats})
	}
	var backends []string
	for i, ch := range results {
		r := <-ch
		putReply(ch)
		st.Shards[i] = r.stats
		seen := false
		for _, b := range backends {
			if b == r.stats.Backend {
				seen = true
				break
			}
		}
		if !seen {
			backends = append(backends, r.stats.Backend)
		}
		st.ScrubSteps += r.stats.ScrubSteps
		st.BgRepairs += r.stats.BgRepairs
		st.ScrubBackoffs += r.stats.ScrubBackoffs
		st.ScrubErrors += r.stats.ScrubErrors
		// The aggregate last-full-pass is the OLDEST shard's: the whole
		// set is only as freshly verified as its most stale shard, and 0
		// (never) while any shard has yet to complete a pass.
		if i == 0 || r.stats.LastFullPass < st.LastFullPass {
			st.LastFullPass = r.stats.LastFullPass
		}
		st.Gets += r.stats.Gets
		st.Puts += r.stats.Puts
		st.Dels += r.stats.Dels
		st.Hits += r.stats.Hits
		st.FastGets += r.stats.FastGets
		st.FastHits += r.stats.FastHits
		st.FastFallbacks += r.stats.FastFallbacks
		st.FastFaults += r.stats.FastFaults
		st.Errors += r.stats.Errors
		st.Batches += r.stats.Batches
		st.BatchedOps += r.stats.BatchedOps
		st.GroupFallbacks += r.stats.GroupFallbacks
		st.CommitWaits += r.stats.CommitWaits
		st.Scans += r.stats.Scans
		st.ScanPairs += r.stats.ScanPairs
		st.FastScans += r.stats.FastScans
		st.FastScanPairs += r.stats.FastScanPairs
		st.ScanFallbacks += r.stats.ScanFallbacks
		st.ScanFaults += r.stats.ScanFaults
		st.SnapScans += r.stats.SnapScans
		st.SnapScanPairs += r.stats.SnapScanPairs
		st.SnapshotPins += r.stats.SnapshotPins
		st.VersionsHeld += r.stats.VersionsHeld
		st.Objects += r.stats.Objects
		st.Bytes += r.stats.Bytes
		st.Segments += r.stats.Segments
		st.Compactions += r.stats.Compactions
		st.MergedRecords += r.stats.MergedRecords
		st.DeadRecords += r.stats.DeadRecords
		st.Quarantined += r.stats.Quarantined
	}
	st.Backends = strings.Join(backends, ",")
	return st
}

// Close saves every shard and shuts the set down.
func (s *Set) Close() error {
	err := s.Sync()
	s.Abandon()
	return err
}

// Abandon shuts the set down without saving, leaving the shard files as
// they are — after CrashSave this completes the simulated machine death.
func (s *Set) Abandon() {
	s.stopMaint()
	for _, w := range s.workers {
		w.stop()
	}
	for _, st := range s.stores {
		if st != nil {
			st.Close()
		}
	}
	s.stores = nil
}

// ShardStats carries one shard's counters.
type ShardStats struct {
	Index int `json:"index"`
	// Backend names this shard's storage backend ("pangolin" or
	// "logstore").
	Backend string `json:"backend"`
	// Gets counts reads served by the worker goroutine; FastGets counts
	// reads served on the concurrent fast path (callers' goroutines,
	// checksum-verified, no worker hop). Total reads = Gets + FastGets.
	Gets uint64 `json:"gets"`
	Puts uint64 `json:"puts"`
	Dels uint64 `json:"dels"`
	Hits uint64 `json:"hits"`
	// Fast-path accounting. FastFallbacks counts reads bounced to the
	// worker because the reader gate was unavailable (a group commit,
	// save, crash image, scrub, or recovery window); FastFaults counts
	// reads bounced because they hit a fault — poison or checksum
	// mismatch — that only the worker's repairing read path may fix.
	// Tests assert FastGets > 0 to prove the fast path engaged.
	FastGets      uint64 `json:"fast_gets"`
	FastHits      uint64 `json:"fast_hits"`
	FastFallbacks uint64 `json:"fast_fallbacks"`
	FastFaults    uint64 `json:"fast_faults"`
	// Errors counts failed data operations.
	Errors uint64 `json:"errors"`
	// Batches counts group commits: store batches that carried more than
	// one operation. BatchedOps is the operations they carried, so
	// BatchedOps/Batches is the shard's achieved group size.
	Batches    uint64 `json:"batches"`
	BatchedOps uint64 `json:"batched_ops"`
	// GroupFallbacks counts groups whose batch failed and whose ops were
	// retried individually.
	GroupFallbacks uint64 `json:"group_fallbacks"`
	// CommitWaits counts group commits that held the adaptive commit
	// window open (Options.CommitWait) to gather a deeper batch.
	CommitWaits uint64 `json:"commit_waits"`
	// Scan chunk accounting, mirroring the Get split: FastScans counts
	// chunks served on the concurrent fast path (view scans under the
	// reader gate, no worker hop) and Scans counts chunks served by the
	// worker's repairing path; ScanFallbacks/ScanFaults count chunks
	// bounced to the worker by cause (gate busy/freeze vs a fault
	// needing repair). Pairs are the key/value pairs the chunks
	// returned. Tests assert FastScans > 0 to prove fast-path scans
	// engage.
	Scans         uint64 `json:"scans"`
	ScanPairs     uint64 `json:"scan_pairs"`
	FastScans     uint64 `json:"fast_scans"`
	FastScanPairs uint64 `json:"fast_scan_pairs"`
	ScanFallbacks uint64 `json:"scan_fallbacks"`
	ScanFaults    uint64 `json:"scan_faults"`
	// Maintenance health. ScrubSteps counts bounded scrub steps executed
	// on this shard (scheduler ticks, full passes, and heal-retry
	// passes); BgRepairs counts the objects/pages/parity columns the
	// scheduler's steps repaired; ScrubBackoffs counts steps skipped
	// because the worker was busy (traffic wins); ScrubErrors counts
	// steps and passes that FAILED — a growing value with a stuck
	// LastFullPass is the signal that the cursor cannot advance;
	// LastFullPass is the unix time the shard last completed a full
	// pass (0 = never).
	ScrubSteps    uint64 `json:"scrub_steps"`
	BgRepairs     uint64 `json:"bg_repairs"`
	ScrubBackoffs uint64 `json:"scrub_backoffs"`
	ScrubErrors   uint64 `json:"scrub_errors"`
	LastFullPass  int64  `json:"last_full_pass_unix"`
	// Snapshot accounting. SnapScans counts pinned-generation scan chunks
	// served on either path (fast readers and the worker fallback);
	// SnapshotPins is the shard's currently pinned distinct generations
	// and VersionsHeld the superseded versions its version buffer retains
	// for them — both fall back to zero when the last snapshot releases.
	SnapScans     uint64 `json:"snap_scans"`
	SnapScanPairs uint64 `json:"snap_scan_pairs"`
	SnapshotPins  int    `json:"snapshot_pins,omitempty"`
	VersionsHeld  int    `json:"versions_retained,omitempty"`
	Objects       int    `json:"objects"`
	Bytes         uint64 `json:"bytes"`
	// Log-backend counters, zero on pangolin shards: Segments is the
	// shard's current segment file count; Compactions counts merged
	// (deleted) segments; MergedRecords counts live records compaction
	// copied forward; DeadRecords is the currently reclaimable record
	// count (overwritten or deleted entries still occupying log space);
	// Quarantined counts segments parked by a corrupt-record merge abort —
	// still scanned on recovery, never compacted, invisible to no one:
	// a nonzero value is the operator's signal that detected corruption
	// is pinned in place (detect-only backend, nothing to rebuild from).
	Segments      int    `json:"segments,omitempty"`
	Compactions   uint64 `json:"compactions,omitempty"`
	MergedRecords uint64 `json:"merged_records,omitempty"`
	DeadRecords   uint64 `json:"dead_records,omitempty"`
	Quarantined   int    `json:"quarantined_segments,omitempty"`
}

// Stats aggregates the set's counters.
type Stats struct {
	Structure string `json:"structure"`
	// Backends lists the distinct shard backends in shard order
	// ("pangolin", "logstore", or "pangolin,logstore" for a mixed set).
	Backends       string       `json:"backends"`
	NumShards      int          `json:"num_shards"`
	Gets           uint64       `json:"gets"`
	Puts           uint64       `json:"puts"`
	Dels           uint64       `json:"dels"`
	Hits           uint64       `json:"hits"`
	FastGets       uint64       `json:"fast_gets"`
	FastHits       uint64       `json:"fast_hits"`
	FastFallbacks  uint64       `json:"fast_fallbacks"`
	FastFaults     uint64       `json:"fast_faults"`
	Errors         uint64       `json:"errors"`
	Batches        uint64       `json:"batches"`
	BatchedOps     uint64       `json:"batched_ops"`
	GroupFallbacks uint64       `json:"group_fallbacks"`
	CommitWaits    uint64       `json:"commit_waits"`
	Scans          uint64       `json:"scans"`
	ScanPairs      uint64       `json:"scan_pairs"`
	FastScans      uint64       `json:"fast_scans"`
	FastScanPairs  uint64       `json:"fast_scan_pairs"`
	ScanFallbacks  uint64       `json:"scan_fallbacks"`
	ScanFaults     uint64       `json:"scan_faults"`
	ScrubSteps     uint64       `json:"scrub_steps"`
	BgRepairs      uint64       `json:"bg_repairs"`
	ScrubBackoffs  uint64       `json:"scrub_backoffs"`
	ScrubErrors    uint64       `json:"scrub_errors"`
	LastFullPass   int64        `json:"last_full_pass_unix"` // oldest shard's; 0 while any shard has no pass
	SnapScans      uint64       `json:"snap_scans"`
	SnapScanPairs  uint64       `json:"snap_scan_pairs"`
	SnapshotPins   int          `json:"snapshot_pins"`
	VersionsHeld   int          `json:"versions_retained"`
	Objects        int          `json:"objects"`
	Bytes          uint64       `json:"bytes"`
	Segments       int          `json:"segments"`
	Compactions    uint64       `json:"compactions"`
	MergedRecords  uint64       `json:"merged_records"`
	DeadRecords    uint64       `json:"dead_records"`
	Quarantined    int          `json:"quarantined_segments"`
	Shards         []ShardStats `json:"shards"`
}
