package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLogstoreSetRoundTrip runs the full data path (put/get/del/batch/
// scan/sync/reopen) on a set whose every shard uses the log backend.
// Open takes Options{} on purpose: the backend must be rediscovered
// from the on-disk shard-NNNN.log directories, not re-specified.
func TestLogstoreSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 3, Options{Backend: "logstore"})
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k, v := uint64(rng.Intn(300)), rng.Uint64()
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	for k := range model {
		if k%3 == 0 {
			ok, err := s.Del(k)
			if err != nil || !ok {
				t.Fatalf("del %d: %v %v", k, ok, err)
			}
			delete(model, k)
		}
	}
	ops := []BatchOp{
		{Kind: BatchPut, K: 1000, V: 42},
		{Kind: BatchGet, K: 1000},
		{Kind: BatchDel, K: 1000},
		{Kind: BatchGet, K: 1000},
	}
	res := s.Batch(ops)
	if res[1].Err != nil || !res[1].OK || res[1].V != 42 {
		t.Fatalf("batch read-your-write = %+v", res[1])
	}
	if res[3].Err != nil || res[3].OK {
		t.Fatalf("batch get-after-del = %+v", res[3])
	}
	st := s.Stats()
	if st.Backends != "logstore" {
		t.Fatalf("Backends = %q, want logstore", st.Backends)
	}
	for i, sh := range st.Shards {
		if sh.Backend != "logstore" {
			t.Fatalf("shard %d backend %q", i, sh.Backend)
		}
		if sh.Segments == 0 {
			t.Fatalf("shard %d reports zero segments", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	if got := s2.Stats().Backends; got != "logstore" {
		t.Fatalf("reopened Backends = %q, want logstore", got)
	}
	for k := uint64(0); k < 300; k++ {
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("key %d = (%d,%v), want (%d,%v)", k, v, ok, wantV, want)
		}
	}
	// Scan the whole space and compare against the model (hashmap-named
	// structure on the log backend is unordered; Scan still must be
	// complete and duplicate-free).
	got := map[uint64]uint64{}
	lo := uint64(0)
	for {
		pairs, next, more, err := s2.Scan(lo, 301, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if _, dup := got[p.K]; dup {
				t.Fatalf("scan duplicated key %d", p.K)
			}
			got[p.K] = p.V
		}
		if !more {
			break
		}
		lo = next
	}
	if len(got) != len(model) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("scan key %d = %d, want %d", k, got[k], v)
		}
	}
}

// TestMixedBackendSet alternates pangolin and logstore shards in one
// set: both kinds must serve the same data path, stats must name both
// backends in shard order, and reopen must rediscover the layout.
func TestMixedBackendSet(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 4, Options{Backend: "pangolin,logstore"})
	for k := uint64(0); k < 400; k++ {
		if err := s.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Backends lists the distinct backends serving (shard order of first
	// appearance); per-shard assignment is in Shards[].Backend.
	if st.Backends != "pangolin,logstore" {
		t.Fatalf("Backends = %q", st.Backends)
	}
	for i, sh := range st.Shards {
		want := "pangolin"
		if i%2 == 1 {
			want = "logstore"
		}
		if sh.Backend != want {
			t.Fatalf("shard %d backend %q, want %q", i, sh.Backend, want)
		}
	}
	if st.Segments == 0 {
		t.Fatal("mixed set reports zero log segments")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	if got := s2.Stats().Backends; got != "pangolin,logstore" {
		t.Fatalf("reopened Backends = %q", got)
	}
	for k := uint64(0); k < 400; k++ {
		v, ok, err := s2.Get(k)
		if err != nil || !ok || v != k*3 {
			t.Fatalf("key %d = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// TestLogstoreCrashReopen crashes a log-backed set mid-load: everything
// synced must survive, the unsynced tail must recover to a prefix-
// consistent state per shard, and the recovered set must accept writes.
func TestLogstoreCrashReopen(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dir := t.TempDir()
		s := newSet(t, dir, 2, Options{Backend: "logstore"})
		for k := uint64(0); k < 200; k++ {
			if err := s.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(200); k < 260; k++ {
			if err := s.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.CrashSave(seed); err != nil {
			t.Fatal(err)
		}
		s.Abandon()

		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d: open after crash: %v", seed, err)
		}
		for k := uint64(0); k < 200; k++ {
			v, ok, err := s2.Get(k)
			if err != nil || !ok || v != k+1 {
				t.Fatalf("seed %d: synced key %d = (%d,%v,%v)", seed, k, v, ok, err)
			}
		}
		// Unsynced keys may or may not have survived the cut, but any
		// that did must carry the value that was written.
		for k := uint64(200); k < 260; k++ {
			v, ok, err := s2.Get(k)
			if err != nil {
				t.Fatalf("seed %d: tail key %d: %v", seed, k, err)
			}
			if ok && v != k+1 {
				t.Fatalf("seed %d: tail key %d = %d, want %d", seed, k, v, k+1)
			}
		}
		if err := s2.Put(999, 999); err != nil {
			t.Fatalf("seed %d: post-recovery write: %v", seed, err)
		}
		if v, ok, _ := s2.Get(999); !ok || v != 999 {
			t.Fatalf("seed %d: post-recovery read = (%d,%v)", seed, v, ok)
		}
		s2.Abandon()
	}
}

// TestLogstoreMaintCompacts drives the background maintenance scheduler
// against an overwrite-heavy log shard with a tiny segment threshold:
// the same tick that scrubs pangolin shards must run the log backend's
// merge, so dead records get compacted away while data stays intact.
func TestLogstoreMaintCompacts(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 1, Options{
		Backend:         "logstore",
		LogSegmentBytes: 4 << 10,
		ScrubInterval:   time.Millisecond,
	})
	defer s.Abandon()
	// Keys 0..31 are written once and stay live forever; keys 32..63 are
	// overwritten every round. The oldest segment therefore carries a mix
	// of live and dead records, so compaction must COPY the live half
	// forward (merged_records), not just drop all-dead segments.
	for k := uint64(0); k < 32; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		for k := uint64(32); k < 64; k++ {
			if err := s.Put(k, uint64(round)<<16|k); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Compactions > 0 && st.MergedRecords > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintenance never compacted with copy-forward: %+v", st.Shards[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	for k := uint64(0); k < 64; k++ {
		want := k
		if k >= 32 {
			want = uint64(39)<<16 | k
		}
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("post-compaction key %d = (%#x,%v,%v), want %#x", k, v, ok, err, want)
		}
	}
}

// TestDiscoverBackendsRejectsGaps pins the layout validation: a missing
// middle shard (or a shard present in both forms) must fail Open with a
// message naming the problem instead of silently renumbering.
func TestDiscoverBackendsRejectsGaps(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 3, Options{Backend: "pangolin,logstore,pangolin"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	backends, err := DiscoverBackends(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"pangolin", "logstore", "pangolin"}; len(backends) != 3 ||
		backends[0] != want[0] || backends[1] != want[1] || backends[2] != want[2] {
		t.Fatalf("DiscoverBackends = %v, want %v", backends, want)
	}
	// Knock out the middle shard's on-disk form: discovery must fail.
	if err := os.RemoveAll(filepath.Join(dir, "shard-0001.log")); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverBackends(dir); err == nil ||
		!strings.Contains(err.Error(), "1") {
		t.Fatalf("gap not detected: %v", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a set with a missing shard")
	}
}
