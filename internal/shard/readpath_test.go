package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin/internal/store/pangolinstore"
)

// Tests for the concurrent verified-read fast path: engagement (reads
// actually bypass the worker), fallback (gate contention, faults,
// shutdown), and the -race reader/writer torture that hammers Get storms
// against group commits, saves, scrubs, and crash images.

// encode packs a per-key sequence number and the key into one value so
// a torn read is detectable from a single Get.
func encode(seq, k uint64) uint64 { return seq<<32 | (k & 0xFFFFFFFF) }

// TestFastPathEngagesWhenIdle: with no writer running, every read must
// be served on the fast path — zero worker round-trips.
func TestFastPathEngagesWhenIdle(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{})
	for k := uint64(0); k < 64; k++ {
		if err := s.Put(k, encode(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 64; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != encode(0, k) {
			t.Fatalf("get %d = (%#x,%v,%v)", k, v, ok, err)
		}
	}
	st := s.Stats()
	if st.FastGets != 64 || st.Gets != 0 {
		t.Fatalf("idle reads not all fast: fast=%d worker=%d (fallbacks=%d faults=%d)",
			st.FastGets, st.Gets, st.FastFallbacks, st.FastFaults)
	}
	if st.FastHits != 64 {
		t.Fatalf("fast hits = %d, want 64", st.FastHits)
	}
}

// TestFastPathMGetBatch: an all-GET batch takes the fast path (one gate
// hold for the slice), a mixed batch does not.
func TestFastPathMGetBatch(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{})
	for k := uint64(0); k < 32; k++ {
		if err := s.Put(k, encode(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	ops := make([]BatchOp, 32)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchGet, K: uint64(i)}
	}
	res := s.Batch(ops)
	for i, r := range res {
		if r.Err != nil || !r.OK || r.V != encode(0, uint64(i)) {
			t.Fatalf("batch get %d = %+v", i, r)
		}
	}
	st := s.Stats()
	if st.FastGets != 32 {
		t.Fatalf("all-GET batch bypassed the fast path: %+v", st)
	}
	// Mixed slices go to the worker.
	mixed := []BatchOp{{Kind: BatchGet, K: 1}, {Kind: BatchPut, K: 1, V: 7}}
	for _, r := range s.Batch(mixed) {
		if r.Err != nil {
			t.Fatalf("mixed batch: %v", r.Err)
		}
	}
	st2 := s.Stats()
	if st2.FastGets != st.FastGets {
		t.Fatalf("mixed batch took the read fast path: %+v", st2)
	}
}

// TestFastPathFallsBackWhenGateHeld: while the worker side of the gate
// is held (as during a commit, save, scrub, or crash window), fastGet
// must decline — counting a fallback — rather than block or race.
func TestFastPathFallsBackWhenGateHeld(t *testing.T) {
	s := newSet(t, t.TempDir(), 1, Options{})
	if err := s.Put(1, encode(0, 1)); err != nil {
		t.Fatal(err)
	}
	w := s.workers[0]
	w.gate.Lock()
	if _, _, _, served := w.fastGet(1); served {
		w.gate.Unlock()
		t.Fatal("fastGet served a read while the writer gate was held")
	}
	if _, ok := w.fastGetBatch([]BatchOp{{Kind: BatchGet, K: 1}}); ok {
		w.gate.Unlock()
		t.Fatal("fastGetBatch served a slice while the writer gate was held")
	}
	w.gate.Unlock()
	if n := w.fastFallbacks.Load(); n != 2 {
		t.Fatalf("fallbacks = %d, want 2", n)
	}
	// After release the fast path resumes.
	if v, ok, err := s.Get(1); err != nil || !ok || v != encode(0, 1) {
		t.Fatalf("get after gate release = (%#x,%v,%v)", v, ok, err)
	}
	if w.fastGets.Load() == 0 {
		t.Fatal("fast path did not resume after gate release")
	}
}

// TestFastPathFaultFallsBackToRepair: a poisoned page under the
// structure must bounce the read to the worker — whose repairing path
// fixes it online — and be counted as a fast fault; the caller still
// gets the right answer with no error.
func TestFastPathFaultFallsBackToRepair(t *testing.T) {
	s := newSet(t, t.TempDir(), 1, Options{})
	for k := uint64(0); k < 8; k++ {
		if err := s.Put(k, encode(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	w := s.workers[0]
	ps := w.st.(*pangolinstore.Store)
	ps.Pool().InjectMediaError(ps.Map().Anchor().Off)
	if v, ok, err := s.Get(3); err != nil || !ok || v != encode(0, 3) {
		t.Fatalf("get across media error = (%#x,%v,%v)", v, ok, err)
	}
	if w.fastFaults.Load() == 0 {
		t.Fatal("fault was not observed by the fast path")
	}
	// Repaired: subsequent reads are fast again.
	before := w.fastGets.Load()
	if v, ok, err := s.Get(3); err != nil || !ok || v != encode(0, 3) {
		t.Fatalf("get after repair = (%#x,%v,%v)", v, ok, err)
	}
	if w.fastGets.Load() != before+1 {
		t.Fatal("fast path did not resume after online repair")
	}
}

// TestGetShuttingDownTyped: after Abandon, Get (and Batch) report the
// typed ErrShuttingDown — distinguishable from a real lookup error.
func TestGetShuttingDownTyped(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{})
	if err := s.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	s.Abandon()
	if _, _, err := s.Get(1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Get after Abandon = %v, want ErrShuttingDown", err)
	}
	if err := s.Put(1, 3); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Put after Abandon = %v, want ErrShuttingDown", err)
	}
	for _, r := range s.Batch([]BatchOp{{Kind: BatchGet, K: 1}}) {
		if !errors.Is(r.Err, ErrShuttingDown) {
			t.Fatalf("Batch after Abandon = %v, want ErrShuttingDown", r.Err)
		}
	}
}

// TestSerialReadsOption: with SerialReads every read goes through the
// worker; the fast-path counters stay zero.
func TestSerialReadsOption(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{SerialReads: true})
	for k := uint64(0); k < 32; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := s.Get(k); err != nil || !ok || v != k {
			t.Fatalf("serial get %d = (%d,%v,%v)", k, v, ok, err)
		}
	}
	st := s.Stats()
	if st.FastGets != 0 || st.FastFallbacks != 0 {
		t.Fatalf("serial mode used the fast path: %+v", st)
	}
	if st.Gets != 32 {
		t.Fatalf("serial gets = %d, want 32", st.Gets)
	}
}

// TestReadWriteTorture is the -race reader/writer torture: concurrent
// Get storms (single and MGET-shaped) run against group-committing
// writers, delete churn, and a chaos goroutine cycling Sync, Scrub, and
// CrashSave on the live set. Readers assert values are never torn
// (low bits echo the key) and never regress per key; afterwards the
// snapshot directory must reopen clean. Short mode shrinks the clock;
// the nightly workflow runs the full version.
func TestReadWriteTorture(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 3, Options{QueueLen: 32})

	const keySpace = 512 // writers: [0,256), delete churn: [256,512)
	for k := uint64(0); k < keySpace; k++ {
		if err := s.Put(k, encode(0, k)); err != nil {
			t.Fatal(err)
		}
	}

	duration := 2 * time.Second
	if testing.Short() {
		duration = 400 * time.Millisecond
	}
	deadline := time.After(duration)
	stop := make(chan struct{})
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	var wg sync.WaitGroup
	// Writers: disjoint key ranges, monotonically increasing sequence.
	const writers = 3
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			lo, hi := uint64(wr)*80, uint64(wr)*80+80
			for seq := uint64(1); ; seq++ {
				for k := lo; k < hi; k++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Put(k, encode(seq, k)); err != nil {
						fail("writer %d put %d: %v", wr, k, err)
						return
					}
				}
			}
		}(wr)
	}
	// Delete churn on its own range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); ; seq++ {
			for k := uint64(256); k < 320; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Del(k); err != nil {
					fail("del %d: %v", k, err)
					return
				}
				if err := s.Put(k, encode(seq, k)); err != nil {
					fail("reinsert %d: %v", k, err)
					return
				}
			}
		}
	}()
	// Readers: Get storms with per-key monotonicity checks.
	const readers = 6
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastSeq := make(map[uint64]uint64, keySpace)
			k := uint64(r * 37)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*2654435761 + 1) % keySpace
				v, ok, err := s.Get(k)
				if err != nil {
					fail("reader %d get %d: %v", r, k, err)
					return
				}
				if !ok {
					continue // delete-churn range
				}
				if v&0xFFFFFFFF != k {
					fail("reader %d: key %d torn value %#x", r, k, v)
					return
				}
				if seq := v >> 32; seq < lastSeq[k] {
					fail("reader %d: key %d regressed seq %d after %d", r, k, seq, lastSeq[k])
					return
				} else {
					lastSeq[k] = seq
				}
			}
		}(r)
	}
	// MGET-shaped reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ops := make([]BatchOp, 16)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range ops {
				ops[j] = BatchOp{Kind: BatchGet, K: uint64((i*16 + j) % keySpace)}
			}
			for j, r := range s.Batch(ops) {
				if r.Err != nil {
					fail("mget: %v", r.Err)
					return
				}
				if r.OK && r.V&0xFFFFFFFF != ops[j].K {
					fail("mget: key %d torn value %#x", ops[j].K, r.V)
					return
				}
			}
		}
	}()
	// Chaos: saves, scrubs, crash images against the live set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(1)
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if err := s.Sync(); err != nil {
				fail("sync under load: %v", err)
				return
			}
			if rep, err := s.Scrub(); err != nil || rep.Unrecovered != 0 {
				fail("scrub under load: %+v %v", rep, err)
				return
			}
			if err := s.CrashSave(seed); err != nil {
				fail("crash save under load: %v", err)
				return
			}
			seed++
		}
	}()

	<-deadline
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}

	st := s.Stats()
	if st.FastGets == 0 {
		t.Fatalf("torture never used the fast path: %+v", st)
	}
	t.Logf("torture: fast=%d worker=%d fallbacks=%d faults=%d puts=%d batches=%d",
		st.FastGets, st.Gets, st.FastFallbacks, st.FastFaults, st.Puts, st.Batches)

	// The last CrashSave images (or the Sync) must reopen cleanly.
	s.Abandon()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torture: %v", err)
	}
	defer s2.Abandon()
	if rep, err := s2.Scrub(); err != nil || rep.Unrecovered != 0 {
		t.Fatalf("scrub after reopen: %+v %v", rep, err)
	}
	for k := uint64(0); k < keySpace; k++ {
		if v, ok, err := s2.Get(k); err != nil {
			t.Fatalf("get %d after reopen: %v", k, err)
		} else if ok && v&0xFFFFFFFF != k {
			t.Fatalf("key %d torn after recovery: %#x", k, v)
		}
	}
}
