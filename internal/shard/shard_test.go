package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin"
)

// TestKeyDistributionUniform checks that shard choice stays near-uniform
// even for the adversarial sequential key pattern, across several shard
// counts.
func TestKeyDistributionUniform(t *testing.T) {
	const keys = 1 << 17
	for _, n := range []int{2, 4, 7, 8, 16} {
		s := &Set{workers: make([]*worker, n)}
		counts := make([]int, n)
		for k := uint64(0); k < keys; k++ {
			counts[s.ShardOf(k)]++
		}
		mean := float64(keys) / float64(n)
		for i, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < -0.05 || dev > 0.05 {
				t.Errorf("n=%d shard %d got %d keys, %.1f%% off the mean %f",
					n, i, c, dev*100, mean)
			}
		}
	}
}

// TestShardOfStable pins the key→shard mapping: it is persisted implicitly
// in which pool holds which key, so changing mix() would orphan data in
// existing sets.
func TestShardOfStable(t *testing.T) {
	s := &Set{workers: make([]*worker, 4)}
	want := map[uint64]int{0: 0, 1: 1, 2: 2, 1 << 40: 0, ^uint64(0): 3}
	for k, shard := range want {
		if got := s.ShardOf(k); got != shard {
			t.Errorf("ShardOf(%d) = %d, want %d (mix() changed? that breaks existing sets)",
				k, got, shard)
		}
	}
}

func newSet(t *testing.T, dir string, n int, opts Options) *Set {
	t.Helper()
	s, err := Create(dir, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCreateOpenRoundTrip covers the clean path: create, populate, close,
// reopen, verify data and root metadata.
func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 3, Options{Structure: "btree"})
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k, v := uint64(rng.Intn(300)), rng.Uint64()
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	for k := range model {
		if k%3 == 0 {
			ok, err := s.Del(k)
			if err != nil || !ok {
				t.Fatalf("del %d: %v %v", k, ok, err)
			}
			delete(model, k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	if s2.Structure() != "btree" {
		t.Fatalf("reopened structure %q, want btree", s2.Structure())
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened %d shards, want 3", s2.Len())
	}
	for k := uint64(0); k < 300; k++ {
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("key %d = (%d,%v), want (%d,%v)", k, v, ok, wantV, want)
		}
	}
	st := s2.Stats()
	if st.NumShards != 3 || len(st.Shards) != 3 {
		t.Fatalf("stats shards = %d/%d, want 3", st.NumShards, len(st.Shards))
	}
	if st.Gets+st.FastGets != 300 {
		t.Fatalf("stats gets = %d worker + %d fast, want 300 total", st.Gets, st.FastGets)
	}
	// With no writer running, an idle set must serve reads on the fast
	// path; only fault/freeze windows may bounce reads to the worker.
	if st.FastGets == 0 {
		t.Fatal("fast path never engaged on an idle set")
	}
	if st.Objects == 0 {
		t.Fatal("stats report zero live objects after inserts")
	}
}

// TestShardLocalRecovery simulates a machine crash: committed data must
// survive each shard's crash image, recovery must reattach every shard,
// and a scrub must find nothing unrecoverable.
func TestShardLocalRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 4, Options{})
	model := map[uint64]uint64{}
	for k := uint64(0); k < 400; k++ {
		v := k * 2718281828459045
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	// Power fails on the whole machine; the process dies without a sync.
	if err := s.CrashSave(42); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	for k, want := range model {
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatalf("key %d after recovery: %v", k, err)
		}
		if !ok || v != want {
			t.Fatalf("key %d after recovery = (%d,%v), want (%d,true): committed data lost", k, v, ok, want)
		}
	}
	rep, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub after recovery: %d unrecoverable objects (%+v)", rep.Unrecovered, rep)
	}
	if rep.Objects == 0 {
		t.Fatal("scrub after recovery examined zero objects")
	}
}

// TestCrashDuringLoadRecovers crashes while writers are mid-flight: every
// shard must reopen and pass scrub, and every key the test observed as
// committed before the crash snapshot must be present.
func TestCrashDuringLoadRecovers(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 2, Options{})
	var committed sync.Map
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(g) << 32; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(k, k^0xDEAD); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				committed.Store(k, k^0xDEAD)
			}
		}(g)
	}
	// Let some writes land, then snapshot a crash image while writers run.
	for {
		st := s.Stats()
		if st.Puts >= 200 {
			break
		}
	}
	// Freeze the committed set BEFORE crashing: everything committed by
	// now is durable, so it must appear in every shard's later crash
	// image. (Keys committed during/after CrashSave may or may not make
	// their shard's snapshot, so they are not checked.)
	frozen := map[uint64]uint64{}
	committed.Range(func(k, v any) bool {
		frozen[k.(uint64)] = v.(uint64)
		return true
	})
	if err := s.CrashSave(7); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	s.Abandon()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	rep, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub after mid-load crash: %d unrecoverable (%+v)", rep.Unrecovered, rep)
	}
	for k, want := range frozen {
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok || v != want {
			t.Fatalf("pre-crash key %d = (%d,%v), want (%d,true): committed data lost", k, v, ok, want)
		}
	}
}

// TestConcurrentPutGetAcrossShards hammers one set from many goroutines
// with disjoint key ranges; run under -race this checks the worker
// channel discipline.
func TestConcurrentPutGetAcrossShards(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 4, Options{Structure: "skiplist"})
	defer s.Abandon()
	const goroutines = 8
	ops := 300
	if testing.Short() {
		ops = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 1_000_000
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < ops; i++ {
				k := base + uint64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					if err := s.Put(k, v); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					model[k] = v
				case 1:
					ok, err := s.Del(k)
					if err != nil {
						t.Errorf("del: %v", err)
						return
					}
					if _, want := model[k]; ok != want {
						t.Errorf("del %d = %v, want %v", k, ok, want)
						return
					}
					delete(model, k)
				case 2:
					v, ok, err := s.Get(k)
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					wantV, want := model[k]
					if ok != want || (ok && v != wantV) {
						t.Errorf("get %d = (%d,%v), want (%d,%v)", k, v, ok, wantV, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Errors != 0 {
		t.Fatalf("stats report %d errors", st.Errors)
	}
}

// TestOpenRejectsShuffledFiles swaps two shard files; the roots record
// each shard's index, so Open must refuse the directory.
func TestOpenRejectsShuffledFiles(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 2, Options{})
	if err := s.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	a, b := pangolin.ShardFile(dir, 0), pangolin.ShardFile(dir, 1)
	tmp := filepath.Join(dir, "tmp")
	for _, mv := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a directory with shuffled shard files")
	}
}

// TestUseAfterClose: operations on a closed set fail cleanly instead of
// hanging or panicking.
func TestUseAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 2, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, 1); err == nil {
		t.Fatal("Put on closed set succeeded")
	}
	if _, _, err := s.Get(1); err == nil {
		t.Fatal("Get on closed set succeeded")
	}
}
