package shard

import (
	"testing"
)

// Benchmarks comparing the concurrent verified-read fast path against
// the worker-serialized read path, with and without a write mix. Run
// with -cpu 1,4,8 to see the scaling axis: serial reads pay a channel
// round-trip per Get regardless of cores, fast reads run on the
// callers' goroutines.

func benchSet(b *testing.B, serial bool) *Set {
	b.Helper()
	s, err := Create(b.TempDir(), 2, Options{SerialReads: serial})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Abandon)
	for k := uint64(0); k < 4096; k++ {
		if err := s.Put(k, k^0xBEEF); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func benchGets(b *testing.B, s *Set, writeEvery int) {
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		i := 0
		for pb.Next() {
			k = (k*2654435761 + 1) % 4096
			i++
			if writeEvery > 0 && i%writeEvery == 0 {
				if err := s.Put(k, k); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, ok, err := s.Get(k); err != nil || !ok {
				b.Fatalf("get %d = (%v,%v)", k, ok, err)
			}
		}
	})
}

func BenchmarkReadFastPure(b *testing.B)   { benchGets(b, benchSet(b, false), 0) }
func BenchmarkReadSerialPure(b *testing.B) { benchGets(b, benchSet(b, true), 0) }
func BenchmarkReadFastMixed(b *testing.B)  { benchGets(b, benchSet(b, false), 10) }
func BenchmarkReadSerialMixed(b *testing.B) {
	benchGets(b, benchSet(b, true), 10)
}
