package shard

import (
	"sync"
	"testing"
)

// Allocation-budget benchmarks for the shard layer's hot paths,
// gated by make bench-alloc against bench/alloc_budgets.txt (see the
// server package's alloc benchmarks for the end-to-end numbers).

// BenchmarkAllocGroupCommit drives one shard's worker through the
// asynchronous Submit path with a deep backlog, so the loop's
// opportunistic drain folds the queue into group commits — the same
// shape the pipelined server produces. allocs/op covers the request's
// whole shard-layer life: submit, drain scratch, flatten, store
// Apply, per-op result delivery.
func BenchmarkAllocGroupCommit(b *testing.B) {
	s, err := Create(b.TempDir(), 1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Abandon)
	var wg sync.WaitGroup
	done := func(BatchResult) { wg.Done() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		s.SubmitPut(uint64(i)%4096, uint64(i), done)
	}
	wg.Wait()
}

// BenchmarkAllocSnapshotScan pages a pinned-generation scan over a
// preloaded set; one iteration is one 256-pair page. The scan path's
// chunk merging and version-overlay resolution should not allocate
// beyond the returned pairs.
func BenchmarkAllocSnapshotScan(b *testing.B) {
	s, err := Create(b.TempDir(), 2, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Abandon)
	for k := uint64(0); k < 4096; k++ {
		if err := s.Put(k, k*3); err != nil {
			b.Fatal(err)
		}
	}
	sn, err := s.OpenSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	defer sn.Release()
	b.ReportAllocs()
	b.ResetTimer()
	cursor := uint64(0)
	for i := 0; i < b.N; i++ {
		pairs, next, more, err := sn.Scan(cursor, ^uint64(0), 256)
		if err != nil {
			b.Fatal(err)
		}
		if len(pairs) == 0 && !more {
			cursor = 0
			continue
		}
		cursor = next
		if !more {
			cursor = 0
		}
	}
}
