package shard

import (
	"fmt"
	"sync"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// Worker operations.
const (
	opPut uint8 = iota + 1
	opGet
	opDel
	opStats
	opSync  // save this shard's snapshot file
	opCrash // write a crash image over this shard's snapshot file
	opScrub
)

type request struct {
	op    uint8
	k, v  uint64
	seed  int64
	reply chan response
}

type response struct {
	v     uint64
	ok    bool
	err   error
	stats ShardStats
	scrub pangolin.ScrubReport
}

// worker owns one shard: its pool, its kv structure, and the only
// goroutine that ever touches them (§3.4 single-writer discipline). It
// also owns the shard's snapshot file via the PoolSet, so saves and data
// transactions cannot interleave.
type worker struct {
	idx   int
	pools *pangolin.PoolSet
	pool  *pangolin.Pool
	m     kv.Map

	mu     sync.RWMutex // guards closed; held (shared) across enqueues
	closed bool
	reqs   chan request
	exited chan struct{}

	// Counters, touched only by the worker goroutine.
	gets, puts, dels, hits, errs uint64
}

func newWorker(idx int, pools *pangolin.PoolSet, pool *pangolin.Pool, m kv.Map, queueLen int) *worker {
	w := &worker{
		idx:    idx,
		pools:  pools,
		pool:   pool,
		m:      m,
		reqs:   make(chan request, queueLen),
		exited: make(chan struct{}),
	}
	go w.loop()
	return w
}

// send enqueues req and returns its reply channel. The read lock spans the
// channel send so stop() cannot close reqs between the closed check and
// the enqueue.
func (w *worker) send(req request) chan response {
	req.reply = make(chan response, 1)
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		req.reply <- response{err: fmt.Errorf("shard %d: closed", w.idx)}
		return req.reply
	}
	w.reqs <- req
	w.mu.RUnlock()
	return req.reply
}

// do enqueues req and waits for the response.
func (w *worker) do(req request) response { return <-w.send(req) }

// stop shuts the worker down after every enqueued request has been
// answered; the pool is safe to close once stop returns.
func (w *worker) stop() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.reqs)
	<-w.exited
}

func (w *worker) loop() {
	defer close(w.exited)
	for req := range w.reqs {
		req.reply <- w.handle(req)
	}
}

func (w *worker) handle(req request) response {
	switch req.op {
	case opPut:
		w.puts++
		err := w.m.Insert(req.k, req.v)
		if err != nil {
			w.errs++
		}
		return response{err: err}
	case opGet:
		w.gets++
		v, ok, err := w.m.Lookup(req.k)
		if err != nil {
			w.errs++
		}
		if ok {
			w.hits++
		}
		return response{v: v, ok: ok, err: err}
	case opDel:
		w.dels++
		ok, err := w.m.Remove(req.k)
		if err != nil {
			w.errs++
		}
		return response{ok: ok, err: err}
	case opStats:
		live := w.pool.LiveObjects()
		return response{stats: ShardStats{
			Index:   w.idx,
			Gets:    w.gets,
			Puts:    w.puts,
			Dels:    w.dels,
			Hits:    w.hits,
			Errors:  w.errs,
			Objects: live.Objects,
			Bytes:   live.Bytes,
		}}
	case opSync:
		return response{err: w.pools.SaveShard(w.idx)}
	case opCrash:
		return response{err: w.pools.CrashSaveShard(w.idx, pangolin.CrashEvictRandom, req.seed)}
	case opScrub:
		rep, err := w.pool.Scrub()
		return response{scrub: rep, err: err}
	default:
		return response{err: fmt.Errorf("shard %d: unknown op %d", w.idx, req.op)}
	}
}
