package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

// Worker operations.
const (
	opPut uint8 = iota + 1
	opGet
	opDel
	opBatch // a client-supplied group of Get/Put/Del for this shard
	opScan  // one scan chunk on the owner (repairing) read path
	opStats
	opSync      // save this shard durably
	opCrash     // persist a crash image of this shard
	opScrub     // a full pass: bounded steps interleaved with requests
	opScrubStep // one bounded step of the shard's background maintenance
	opInject    // corrupt a random live object (fault-injection hook)
	opSnapOpen  // pin the shard's current generation (store.SnapshotViewer)
	opSnapScan  // one snapshot scan chunk on the owner (repairing) read path
)

// Batch op kinds (BatchOp.Kind).
const (
	BatchGet uint8 = 1
	BatchPut uint8 = 2
	BatchDel uint8 = 3
)

// BatchOp is one operation inside a batch.
type BatchOp struct {
	Kind uint8
	K, V uint64
}

// BatchResult is one operation's outcome inside a batch: V/OK as for the
// single-op API, Err set only when the op itself failed (after the batch
// fell back to per-op transactions — a batch that commits as a group has
// no per-op errors).
type BatchResult struct {
	V   uint64
	OK  bool
	Err error
}

type request struct {
	op    uint8
	k, v  uint64 // key/value; for opScan, the lo/hi bounds
	max   int    // opScan: chunk pair cap
	seed  int64
	ops   []BatchOp       // opBatch
	snap  *store.Snapshot // opSnapScan: the pinned snapshot to resolve reads at
	reply chan response
	// done is the asynchronous completion path: when set (Submit), the
	// worker invokes it exactly once with the response instead of
	// sending on reply. It runs on the worker goroutine (or the
	// submitter's, when the shard is already closed), so it must be
	// non-blocking — the server's pipelined connections reserve
	// completion-buffer capacity for every in-flight op to guarantee
	// that.
	done func(response)
}

// deliver answers req exactly once, through whichever completion path it
// carries.
func (req *request) deliver(r response) {
	if req.done != nil {
		req.done(r)
		return
	}
	req.reply <- r
}

type response struct {
	v     uint64
	ok    bool
	err   error
	batch []BatchResult   // opBatch
	pairs []Pair          // opScan / opSnapScan
	snap  *store.Snapshot // opSnapOpen
	stats ShardStats
	scrub pangolin.ScrubReport
}

// replyPool recycles the one-shot response channels send and trySend
// hand out: each carries exactly one response, so the channel is empty
// and reusable the moment its receiver has read it. Recycling is the
// receiver's job, after that single receive; a channel whose receiver
// walks away (the maintenance scheduler's shutdown path) is simply
// dropped to the GC — never recycled with a response still buffered.
var replyPool = sync.Pool{
	New: func() any { return make(chan response, 1) },
}

func getReply() chan response   { return replyPool.Get().(chan response) }
func putReply(ch chan response) { replyPool.Put(ch) }

// batchResPool recycles []BatchResult backing arrays. Producers (the
// worker's group commit and batch paths) assign every element, so a
// recycled slice needs no clearing; consumers copy what they keep and
// recycle after the copy — BatchResult values delivered to callers are
// always copies, never views into pooled memory.
var batchResPool = sync.Pool{
	New: func() any { return (*[]BatchResult)(nil) },
}

// maxPooledBatchResults caps what recycles, matching the protocol's
// MaxBatchOps so one oversized slice cannot pin memory in the pool.
const maxPooledBatchResults = 4096

func getBatchResults(n int) []BatchResult {
	if p, _ := batchResPool.Get().(*[]BatchResult); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]BatchResult, n)
}

func putBatchResults(s []BatchResult) {
	if cap(s) == 0 || cap(s) > maxPooledBatchResults {
		return
	}
	s = s[:0]
	batchResPool.Put(&s)
}

// worker owns one shard: its store.Store and the only goroutine that
// ever mutates it (§3.4 single-writer discipline, generalized — every
// backend's Store belongs to one owner goroutine). It also owns the
// shard's durable files via the store's Save/CrashSave, so saves and
// data batches cannot interleave.
//
// The worker group-commits: after taking a request it opportunistically
// drains whatever else is queued and executes every pending PUT/DEL/GET
// for the shard as one atomic store.Apply batch — one pool transaction
// for the pangolin backend, one committed log append for the log
// backend — then answers each waiter individually. The applied batch is
// the linearization point for everything in the group. If the batch
// fails, every request is retried on its own, so one poisoned op cannot
// take its batchmates down.
type worker struct {
	idx      int
	st       store.Store
	maxBatch int
	ordered  bool // the store's Scan yields ascending keys

	// Optional backend capabilities, type-asserted once at construction;
	// nil when the backend does not provide them. scrubber serves full
	// SCRUB passes and the repair-retry heal path; injector serves
	// INJECT (nil reports "nothing injected"); snapper serves pinned-
	// generation snapshots (nil answers opSnapOpen with the typed
	// store.ErrSnapshotUnsupported — never a silently weaker scan).
	scrubber store.ScrubRunner
	injector store.FaultInjector
	snapper  store.SnapshotViewer

	// Concurrent verified-read fast path. view is the store's ReadView
	// capability handle; callers' goroutines run verified reads on it
	// directly, holding gate's read side. The worker takes the write
	// side around every store access (batches, saves, crash images,
	// scrubs), so readers run in parallel with each other and never
	// overlap a mutation. Readers only ever TryRLock: if the worker
	// holds or wants the gate — a group commit, a save, a scrub or
	// recovery window — the read falls back to the worker queue instead
	// of blocking, which is also what keeps the fast path deadlock-free.
	// view is nil when Options.SerialReads disabled the fast path or the
	// backend lacks store.ReadViewer.
	gate sync.RWMutex
	view store.View

	// Fast-path counters, touched from many reader goroutines.
	fastGets      atomic.Uint64 // reads served on the fast path
	fastHits      atomic.Uint64 // of those, key present
	fastFallbacks atomic.Uint64 // reads bounced to the worker: gate busy / freeze
	fastFaults    atomic.Uint64 // reads bounced to the worker: fault needing repair

	// Scan chunk counters, touched from many reader goroutines (fast)
	// and the worker (serial; scans/scanPairs below).
	fastScans     atomic.Uint64 // scan chunks served on the fast path
	fastScanPairs atomic.Uint64 // pairs those chunks carried
	scanFallbacks atomic.Uint64 // chunks bounced to the worker: gate busy / freeze
	scanFaults    atomic.Uint64 // chunks bounced to the worker: fault needing repair

	// Snapshot scan chunk counters: chunks resolved at a pinned
	// generation, on either path (fast readers and worker fallback).
	snapScans     atomic.Uint64
	snapScanPairs atomic.Uint64

	// scrubBackoffs counts maintenance steps the scheduler skipped
	// because this worker was busy (queued requests, or the enqueue
	// would have blocked) — the backpressure signal that traffic always
	// wins over the scrubber. Touched from the scheduler goroutine.
	scrubBackoffs atomic.Uint64

	// Shutdown protocol: the lock covers only the closed flag and
	// sender registration — never a channel send — so stop() cannot
	// wedge behind a full queue, and senders cannot wedge behind a
	// stop() that is waiting for the queue to drain.
	mu      sync.RWMutex
	closed  bool
	senders sync.WaitGroup
	reqs    chan request
	exited  chan struct{}

	// Counters, touched only by the worker goroutine.
	gets, puts, dels, hits, errs        uint64
	batches, batchedOps, groupFallbacks uint64
	commitWaits                         uint64     // adaptive-commit windows taken
	scans, scanPairs                    uint64     // worker-path scan chunks
	scratch                             []request  // loop-local drain buffer
	opsBuf                              []store.Op // flattenGroup scratch, reused per group
	oneReq                              [1]request // single-request flatten scratch
	oneOp                               [1]store.Op

	// Adaptive group commit (see the loop): commitWait caps the bounded
	// micro-window the drain may wait for more ops when the queue has
	// been running deep; ewma tracks recent group depth and tunes the
	// window — near 1 under lockstep load, so an idle or
	// latency-sensitive connection never waits at all.
	commitWait time.Duration
	ewma       float64
	waitTimer  *time.Timer

	// Maintenance state, touched only by the worker goroutine.
	scrubSteps       uint64 // scrub steps executed (scheduler + full passes)
	bgRepairs        uint64 // repairs made by scheduler-driven steps
	scrubErrs        uint64 // scrub steps/passes that failed
	lastFullPassUnix int64  // wall time the last full pass completed; 0 = never
	fullScrub        *fullScrubJob

	// withHeal futility throttle: when a heal pass fixes nothing, the
	// corruption at that locus is beyond the backend's redundancy and
	// re-running a pass per failing op would stall the shard; heals for
	// the same locus are suppressed for a cooldown. Keyed per failing
	// object/page (so unrelated, recoverable corruption elsewhere still
	// heals immediately), with a bounded map — at the cap, the throttle
	// degrades to shard-global so a storm of distinct unhealable loci
	// cannot turn every op into a full pass either.
	futileHeals   map[uint64]time.Time
	healsThrottle time.Time // shard-global fallback once futileHeals is full
}

// fullScrubJob is an in-progress SCRUB pass: a fresh scrub pass stepped
// to completion by the worker loop, with queued client requests served
// between steps — the full pass is a fixpoint of bounded steps, never a
// stop-the-world sweep. Requests that arrive while a pass is running
// join as waiters and share its report.
type fullScrubJob struct {
	sc      store.ScrubPass
	total   pangolin.ScrubReport
	waiters []chan response
}

func newWorker(idx int, st store.Store, view store.View, queueLen, maxBatch int, commitWait time.Duration) *worker {
	w := &worker{
		idx:        idx,
		st:         st,
		view:       view,
		ordered:    st.Ordered(),
		maxBatch:   maxBatch,
		commitWait: commitWait,
		ewma:       1,
		reqs:       make(chan request, queueLen),
		exited:     make(chan struct{}),
	}
	w.scrubber, _ = st.(store.ScrubRunner)
	w.injector, _ = st.(store.FaultInjector)
	w.snapper, _ = st.(store.SnapshotViewer)
	go w.loop()
	return w
}

// isClosed reports whether stop() has begun.
func (w *worker) isClosed() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.closed
}

// fastGet attempts to serve a Get on the concurrent fast path: a
// verified read against the store's view from the caller's goroutine,
// under the reader gate. served=false means the caller must route the
// request through the worker (gate contended, freeze window, or a fault
// that needs the worker's repairing read path).
func (w *worker) fastGet(k uint64) (v uint64, ok bool, err error, served bool) {
	if w.view == nil {
		return 0, false, nil, false
	}
	if w.isClosed() {
		return 0, false, fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown), true
	}
	if !w.gate.TryRLock() {
		w.fastFallbacks.Add(1)
		return 0, false, nil, false
	}
	v, ok, err = w.view.Get(k)
	w.gate.RUnlock()
	if err != nil {
		if pangolin.ReadBusy(err) {
			w.fastFallbacks.Add(1)
		} else {
			w.fastFaults.Add(1)
		}
		return 0, false, nil, false
	}
	w.fastGets.Add(1)
	if ok {
		w.fastHits.Add(1)
	}
	return v, ok, nil, true
}

// fastGetBatch serves an all-GET batch slice on the fast path, taking
// the reader gate once for the whole slice. Like the worker's own
// handling of read-only groups, the lookups are per-op (a read-only
// batch has no transaction and no group atomicity to preserve). Any
// error bounces the entire slice to the worker.
func (w *worker) fastGetBatch(ops []BatchOp) ([]BatchResult, bool) {
	if w.view == nil || w.isClosed() {
		return nil, false
	}
	if !w.gate.TryRLock() {
		w.fastFallbacks.Add(1)
		return nil, false
	}
	res := getBatchResults(len(ops))
	hits := uint64(0)
	for i, op := range ops {
		v, ok, err := w.view.Get(op.K)
		if err != nil {
			w.gate.RUnlock()
			putBatchResults(res)
			if pangolin.ReadBusy(err) {
				w.fastFallbacks.Add(1)
			} else {
				w.fastFaults.Add(1)
			}
			return nil, false
		}
		res[i] = BatchResult{V: v, OK: ok}
		if ok {
			hits++
		}
	}
	w.gate.RUnlock()
	w.fastGets.Add(uint64(len(ops)))
	w.fastHits.Add(hits)
	return res, true
}

// scanChunk returns the up-to-max smallest pairs with keys in [lo, hi],
// ascending. It first attempts the concurrent fast path (a view scan
// under the reader gate on the caller's goroutine); a gate-busy, freeze,
// or fault chunk falls back to the worker queue, whose repairing read
// path serializes with everything else. len(result) < max means the
// shard holds no further pairs in the range.
func (w *worker) scanChunk(lo, hi uint64, max int) ([]Pair, error) {
	if pairs, err, served := w.fastScanChunk(lo, hi, max); served {
		return pairs, err
	}
	r := w.do(request{op: opScan, k: lo, v: hi, max: max})
	return r.pairs, r.err
}

// fastScanChunk attempts one scan chunk on the concurrent fast path,
// holding the reader gate's read side for the duration of the chunk —
// and only the chunk, so a long Set.Scan releases and re-acquires the
// gate every chunk and never starves the worker's group commits.
// served=false means the caller must route the chunk through the worker.
func (w *worker) fastScanChunk(lo, hi uint64, max int) (pairs []Pair, err error, served bool) {
	if w.view == nil {
		return nil, nil, false
	}
	if w.isClosed() {
		return nil, fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown), true
	}
	if !w.gate.TryRLock() {
		w.scanFallbacks.Add(1)
		return nil, nil, false
	}
	pairs, err = scanCollect(w.view, w.ordered, lo, hi, max)
	w.gate.RUnlock()
	if err != nil {
		if pangolin.ReadBusy(err) {
			w.scanFallbacks.Add(1)
		} else {
			w.scanFaults.Add(1)
		}
		return nil, nil, false
	}
	w.fastScans.Add(1)
	w.fastScanPairs.Add(uint64(len(pairs)))
	return pairs, nil, true
}

// snapScanChunk returns one chunk of a pinned-generation scan — the
// same two-population split as scanChunk: the fast path resolves the
// chunk against the shard's ReadView under the reader gate on the
// caller's goroutine, and a gate-busy, freeze, or fault chunk falls
// back to the worker queue, where the snapshot resolves against the
// owner store's repairing reads.
func (w *worker) snapScanChunk(sn *store.Snapshot, lo, hi uint64, max int) ([]Pair, error) {
	if pairs, err, served := w.fastSnapScanChunk(sn, lo, hi, max); served {
		return pairs, err
	}
	r := w.do(request{op: opSnapScan, snap: sn, k: lo, v: hi, max: max})
	return r.pairs, r.err
}

// fastSnapScanChunk attempts one snapshot chunk on the concurrent fast
// path. A typed snapshot verdict (ErrSnapshotTooOld) is served
// directly — the worker cannot improve on it — while read faults
// bounce to the worker's repairing path as usual.
func (w *worker) fastSnapScanChunk(sn *store.Snapshot, lo, hi uint64, max int) (pairs []Pair, err error, served bool) {
	if w.view == nil {
		return nil, nil, false
	}
	if w.isClosed() {
		return nil, fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown), true
	}
	if !w.gate.TryRLock() {
		w.scanFallbacks.Add(1)
		return nil, nil, false
	}
	pairs, err = scanCollect(snapScanner{sn: sn, live: w.view}, sn.Ordered(), lo, hi, max)
	w.gate.RUnlock()
	if err != nil {
		if errors.Is(err, store.ErrSnapshotTooOld) {
			return nil, err, true
		}
		if pangolin.ReadBusy(err) {
			w.scanFallbacks.Add(1)
		} else {
			w.scanFaults.Add(1)
		}
		return nil, nil, false
	}
	w.snapScans.Add(1)
	w.snapScanPairs.Add(uint64(len(pairs)))
	return pairs, nil, true
}

// scanner is the ranged-iteration surface scanCollect consumes; both
// store.Store and store.View provide it.
type scanner interface {
	Scan(lo, hi uint64, fn func(k, v uint64) bool) error
}

// snapScanner binds a pinned snapshot to a live read source, giving
// scanCollect the plain ranged-iteration surface it expects while every
// pair resolves at the pinned generation.
type snapScanner struct {
	sn   *store.Snapshot
	live store.View
}

func (s snapScanner) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	return s.sn.Scan(s.live, lo, hi, fn)
}

// scanCollect gathers the up-to-max smallest in-range pairs from one
// scan source, ascending. Ordered sources stream ascending already, so
// the scan early-stops at max pairs; unordered sources (hashmap, the
// log backend's index) must visit the whole range, so the collector
// keeps a sorted bound of the max smallest seen (bounded memory, one
// full pass per chunk).
func scanCollect(m scanner, ordered bool, lo, hi uint64, max int) ([]Pair, error) {
	if max <= 0 || lo > hi {
		return nil, nil
	}
	if ordered {
		out := make([]Pair, 0, min(max, 64))
		err := m.Scan(lo, hi, func(k, v uint64) bool {
			out = append(out, Pair{K: k, V: v})
			return len(out) < max
		})
		return out, err
	}
	out := make([]Pair, 0, min(max, 64))
	err := m.Scan(lo, hi, func(k, v uint64) bool {
		i := sort.Search(len(out), func(i int) bool { return out[i].K >= k })
		if len(out) == max {
			if i == max {
				return true // larger than every kept pair
			}
			out = out[:max-1] // drop the current largest
		}
		out = append(out, Pair{})
		copy(out[i+1:], out[i:])
		out[i] = Pair{K: k, V: v}
		return true
	})
	return out, err
}

// send enqueues req and returns its reply channel. The closed check and
// the enqueue are decoupled: the read lock registers this sender while
// the worker is still open, then is released before the (possibly
// blocking) channel send. stop() waits for registered senders after
// flagging closed, so the channel is never closed under a send.
func (w *worker) send(req request) chan response {
	req.reply = getReply()
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		req.reply <- response{err: fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown)}
		return req.reply
	}
	w.senders.Add(1)
	w.mu.RUnlock()
	w.reqs <- req // may block on a full queue; the loop keeps draining
	w.senders.Done()
	return req.reply
}

// do enqueues req and waits for the response, recycling the reply
// channel after its single receive.
func (w *worker) do(req request) response {
	ch := w.send(req)
	r := <-ch
	putReply(ch)
	return r
}

// submit enqueues req for asynchronous completion: req.done is invoked
// exactly once with the result — on the worker goroutine when the
// request executes, or synchronously here when the shard is already
// shutting down (typed ErrShuttingDown, never a silent drop). Like
// send, the enqueue may block on a full queue; that is the backpressure
// signal the server's pipelined reader relies on.
func (w *worker) submit(req request) {
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		req.done(response{err: fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown)})
		return
	}
	w.senders.Add(1)
	w.mu.RUnlock()
	w.reqs <- req // may block on a full queue; the loop keeps draining
	w.senders.Done()
}

// trySend is send without ever blocking: it fails instead of waiting
// when the worker is shutting down or the queue is full. The maintenance
// scheduler uses it so a scrub step can never back-pressure client
// traffic — the reverse is the rule.
func (w *worker) trySend(req request) (chan response, bool) {
	req.reply = getReply()
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		putReply(req.reply)
		return nil, false
	}
	w.senders.Add(1)
	w.mu.RUnlock()
	defer w.senders.Done()
	select {
	case w.reqs <- req:
		return req.reply, true
	default:
		putReply(req.reply)
		return nil, false
	}
}

// stop shuts the worker down after every enqueued request has been
// answered; the store is safe to close once stop returns.
func (w *worker) stop() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.exited
		return
	}
	w.closed = true
	w.mu.Unlock()
	// In-flight senders finish their enqueues (the loop is still
	// draining, so none of them blocks forever), then the channel close
	// lets the loop answer the tail and exit.
	w.senders.Wait()
	close(w.reqs)
	<-w.exited
}

// groupable reports whether op joins a group commit; the rest (stats,
// save, crash, scrub) are barriers that flush the group first.
func groupable(op uint8) bool {
	return op == opPut || op == opGet || op == opDel || op == opBatch
}

// opCount is the number of data operations req contributes to a group.
func opCount(req request) int {
	if req.op == opBatch {
		return len(req.ops)
	}
	return 1
}

func (w *worker) loop() {
	defer close(w.exited)
	defer w.failScrubWaiters()
	var carry *request // drained request that would overfill its group
	for {
		var req request
		switch {
		case carry != nil:
			req, carry = *carry, nil
		case w.fullScrub != nil:
			// A full scrub pass is in progress: queued client requests
			// always run first (traffic wins), and only an idle moment
			// advances the pass by one bounded step.
			select {
			case r, ok := <-w.reqs:
				if !ok {
					return
				}
				req = r
			default:
				w.stepFullScrub()
				continue
			}
		default:
			var ok bool
			req, ok = <-w.reqs
			if !ok {
				return
			}
		}
		if !groupable(req.op) {
			if req.op == opScrub {
				w.startFullScrub(req.reply)
				continue
			}
			req.deliver(w.handleLocked(req))
			continue
		}
		// Opportunistic group: drain whatever is already queued, up to
		// maxBatch ops, stopping at a barrier op. A request that would
		// push the group past the window is carried into the next round
		// instead, so no transaction ever exceeds maxBatch operations.
		group := append(w.scratch[:0], req)
		var barrier request
		hasBarrier := false
		n := opCount(req)
	drain:
		for n < w.maxBatch {
			select {
			case r2, ok := <-w.reqs:
				if !ok {
					break drain
				}
				if !groupable(r2.op) {
					barrier, hasBarrier = r2, true
					break drain
				}
				if n+opCount(r2) > w.maxBatch {
					r2 := r2
					carry = &r2
					break drain
				}
				group = append(group, r2)
				n += opCount(r2)
			default:
				break drain
			}
		}
		// Adaptive group commit: when recent groups have been running
		// deep (the queue is hot), the instantaneous drain above often
		// catches requests mid-flight between the submitter and the
		// queue. Waiting a bounded micro-window — scaled by the depth
		// EWMA, capped by commitWait — lets those land and deepens the
		// batch exactly when it pays: the per-commit transaction cost
		// amortizes over more ops. Lockstep load keeps the EWMA near 1,
		// so an idle connection's op commits with zero added latency.
		if carry == nil && !hasBarrier && n < w.maxBatch && w.fullScrub == nil {
			if win := w.commitWindow(); win > 0 {
				w.commitWaits++
				if w.waitTimer == nil {
					w.waitTimer = time.NewTimer(win)
				} else {
					w.waitTimer.Reset(win)
				}
				fired := false
			await:
				for n < w.maxBatch {
					select {
					case r2, ok := <-w.reqs:
						if !ok {
							break await
						}
						if !groupable(r2.op) {
							barrier, hasBarrier = r2, true
							break await
						}
						if n+opCount(r2) > w.maxBatch {
							r2 := r2
							carry = &r2
							break await
						}
						group = append(group, r2)
						n += opCount(r2)
					case <-w.waitTimer.C:
						fired = true
						break await
					}
				}
				if !fired && !w.waitTimer.Stop() {
					<-w.waitTimer.C
				}
			}
		}
		w.gate.Lock()
		w.runGroup(group)
		w.gate.Unlock()
		w.ewma = 0.75*w.ewma + 0.25*float64(n)
		w.scratch = group[:0]
		if hasBarrier {
			if barrier.op == opScrub {
				w.startFullScrub(barrier.reply)
			} else {
				barrier.deliver(w.handleLocked(barrier))
			}
		}
	}
}

// startFullScrub begins (or joins) a full scrub pass for the waiter. The
// loop steps the pass whenever the queue is idle; every waiter gets the
// completed pass's merged report. A backend without the ScrubRunner
// capability answers immediately with an empty report whose
// ChecksumsVerified is false — "nothing was verified", not an error.
func (w *worker) startFullScrub(reply chan response) {
	if w.scrubber == nil {
		reply <- response{scrub: pangolin.ScrubReport{}}
		return
	}
	if w.fullScrub == nil {
		w.fullScrub = &fullScrubJob{
			sc:    w.scrubber.NewScrubPass(),
			total: pangolin.ScrubReport{ChecksumsVerified: w.scrubber.ChecksumsVerified()},
		}
	}
	w.fullScrub.waiters = append(w.fullScrub.waiters, reply)
}

// stepFullScrub advances the in-progress pass one bounded step under the
// reader gate's write side, answering the waiters when the pass
// completes (or fails).
func (w *worker) stepFullScrub() {
	job := w.fullScrub
	w.gate.Lock()
	rep, done, err := job.sc.Step()
	w.gate.Unlock()
	job.total.Add(rep)
	if err == nil {
		w.scrubSteps++
		if !done {
			return
		}
		w.lastFullPassUnix = time.Now().Unix()
	} else {
		w.scrubErrs++
	}
	w.fullScrub = nil
	for _, reply := range job.waiters {
		reply <- response{scrub: job.total, err: err}
	}
}

// failScrubWaiters answers any pass still in progress at shutdown.
func (w *worker) failScrubWaiters() {
	if w.fullScrub == nil {
		return
	}
	for _, reply := range w.fullScrub.waiters {
		reply <- response{err: fmt.Errorf("shard %d: %w", w.idx, ErrShuttingDown)}
	}
	w.fullScrub = nil
}

// handleLocked runs one request with the reader gate's write side held,
// excluding fast-path readers for the duration of the store access. The
// gate is taken here — around execution only, never around the queue
// receive — so readers get the gate back between every request.
func (w *worker) handleLocked(req request) response {
	w.gate.Lock()
	defer w.gate.Unlock()
	return w.handle(req)
}

// storeKind maps a BatchOp kind to its store.Op kind.
func storeKind(kind uint8) (uint8, error) {
	switch kind {
	case BatchGet:
		return store.OpGet, nil
	case BatchPut:
		return store.OpPut, nil
	case BatchDel:
		return store.OpDel, nil
	default:
		return 0, fmt.Errorf("unknown batch kind %d", kind)
	}
}

// commitWindow sizes the adaptive wait for the current group, from the
// recent-depth EWMA: zero (no wait) until batches have actually been
// forming (EWMA ≥ 2), then a window that grows with the typical depth,
// capped at commitWait.
func (w *worker) commitWindow() time.Duration {
	if w.commitWait <= 0 || w.ewma < 2 {
		return 0
	}
	win := time.Duration(float64(w.commitWait) * w.ewma / float64(w.maxBatch))
	if win > w.commitWait {
		win = w.commitWait
	}
	return win
}

// flattenGroup lowers a group of requests into one store.Apply batch,
// appending to ops (the worker's reusable scratch).
func flattenGroup(ops []store.Op, group []request) ([]store.Op, error) {
	for _, r := range group {
		switch r.op {
		case opPut:
			ops = append(ops, store.Op{Kind: store.OpPut, K: r.k, V: r.v})
		case opGet:
			ops = append(ops, store.Op{Kind: store.OpGet, K: r.k})
		case opDel:
			ops = append(ops, store.Op{Kind: store.OpDel, K: r.k})
		case opBatch:
			for _, op := range r.ops {
				kind, err := storeKind(op.Kind)
				if err != nil {
					return nil, err
				}
				ops = append(ops, store.Op{Kind: kind, K: op.K, V: op.V})
			}
		default:
			return nil, fmt.Errorf("op %d inside a group", r.op)
		}
	}
	return ops, nil
}

// runGroup executes a group of data requests. Groups with at least one
// mutation and more than one op run as a single atomic store.Apply
// batch; read-only or single-op groups take the plain per-op path (GETs
// need no transaction at all).
func (w *worker) runGroup(group []request) {
	// A batch request larger than the group window arrives alone in its
	// group (opCount(req) ≥ maxBatch keeps the drain from adding to it):
	// execute it in window-sized batch chunks and merge the per-op
	// results, so the documented MaxBatch bound holds for client batches
	// too. Atomicity is then per chunk, which is what doc.go promises
	// for batches beyond the window.
	if len(group) == 1 && group[0].op == opBatch && len(group[0].ops) > w.maxBatch {
		req := group[0]
		out := make([]BatchResult, 0, len(req.ops))
		for start := 0; start < len(req.ops); start += w.maxBatch {
			end := min(start+w.maxBatch, len(req.ops))
			br := w.execBatchChunk(req.ops[start:end])
			out = append(out, br...)
			putBatchResults(br) // copied above; the chunk slice is free
		}
		req.deliver(response{batch: out})
		return
	}
	muts, total := 0, 0
	for _, r := range group {
		total += opCount(r)
		switch r.op {
		case opPut, opDel:
			muts++
		case opBatch:
			for _, op := range r.ops {
				if op.Kind != BatchGet {
					muts++
				}
			}
		}
	}
	if muts == 0 || total <= 1 {
		for _, r := range group {
			r.deliver(w.handle(r))
		}
		return
	}
	ops, err := flattenGroup(w.opsBuf[:0], group)
	var results []store.Result
	if err == nil {
		results, err = w.st.Apply(ops)
	}
	// Apply consumes ops synchronously (the store contract), so the
	// flatten scratch is free for the next group the moment it returns;
	// results likewise stay valid only until the next Apply, which is
	// fine — they are copied into responses below, before this worker
	// touches the store again.
	w.opsBuf = ops[:0]
	if err == nil {
		w.batches++
		w.batchedOps += uint64(total)
		ri := 0
		for _, r := range group {
			var resp response
			switch r.op {
			case opPut:
				ri++
			case opGet:
				resp = response{v: results[ri].V, ok: results[ri].OK}
				ri++
			case opDel:
				resp = response{ok: results[ri].OK}
				ri++
			case opBatch:
				br := getBatchResults(len(r.ops))
				for j := range r.ops {
					br[j] = BatchResult{V: results[ri].V, OK: results[ri].OK}
					ri++
				}
				resp = response{batch: br}
			}
			w.countGroup(r, resp)
			r.deliver(resp)
		}
		return
	}
	// The group's batch aborted (nothing was applied). Retry each
	// request on its own so one bad op can't poison its batchmates; each
	// waiter gets its op's own verdict.
	w.groupFallbacks++
	for _, r := range group {
		r.deliver(w.handle(r))
	}
}

// execBatchChunk runs one window-sized slice of an oversized batch as a
// single atomic store batch, with the same per-op fallback as a group.
func (w *worker) execBatchChunk(ops []BatchOp) []BatchResult {
	sub := request{op: opBatch, ops: ops}
	muts := 0
	for _, op := range ops {
		if op.Kind != BatchGet {
			muts++
		}
	}
	if muts == 0 || len(ops) == 1 {
		return w.handle(sub).batch
	}
	w.oneReq[0] = sub
	sops, err := flattenGroup(w.opsBuf[:0], w.oneReq[:])
	var results []store.Result
	if err == nil {
		results, err = w.st.Apply(sops)
	}
	w.opsBuf = sops[:0]
	if err == nil {
		w.batches++
		w.batchedOps += uint64(len(ops))
		br := getBatchResults(len(ops))
		for i := range ops {
			br[i] = BatchResult{V: results[i].V, OK: results[i].OK}
		}
		resp := response{batch: br}
		w.countGroup(sub, resp)
		return br
	}
	w.groupFallbacks++
	return w.handle(sub).batch
}

// countGroup applies the op counters for one group-committed request.
func (w *worker) countGroup(req request, resp response) {
	switch req.op {
	case opPut:
		w.puts++
	case opGet:
		w.gets++
		if resp.ok {
			w.hits++
		}
	case opDel:
		w.dels++
	case opBatch:
		for i, op := range req.ops {
			switch op.Kind {
			case BatchPut:
				w.puts++
			case BatchGet:
				w.gets++
				if resp.batch[i].OK {
					w.hits++
				}
			case BatchDel:
				w.dels++
			}
		}
	}
}

// healCooldown suppresses repeat heal passes after a futile one: truly
// unrecoverable corruption on a hot key must not turn every op into a
// full-pool pass.
const healCooldown = time.Second

// maxFutileLoci bounds the futility map; past it the throttle turns
// shard-global for a cooldown.
const maxFutileLoci = 64

// withHeal runs one data operation with a single repair-retry: if the
// op fails on CORRUPTION — a checksum mismatch, a poison hit, or the
// typed invalid-OID failure a scribbled pointer produces when a
// traversal follows it before any verification could flag its object
// (the Table 4 vulnerability window) — one full scrub pass runs and the
// op retries. On a backend with redundancy (pangolin) the pass restores
// the scribbled object from parity, so the retry serves repaired data
// and the client never sees the corruption; on a detect-only backend
// the pass fixes nothing and the futility cooldown turns the damage
// into a cheap typed error instead of a per-op full pass.
// Non-corruption failures (out of space, shutdown) return as-is: a pass
// can't help them and must not become their per-op tax.
//
// The caller holds the reader gate's write side (every handle() path
// does); the heal releases it between steps so fast-path readers keep
// their bounded gate windows even while a pass runs.
func (w *worker) withHeal(fn func() error) error {
	err := fn()
	if err == nil || (!pangolin.IsCorruption(err) && !pangolin.IsPoison(err)) {
		return err
	}
	if w.scrubber == nil {
		return err // no pass to heal with
	}
	key := faultKey(err)
	if time.Since(w.healsThrottle) < healCooldown {
		return err
	}
	if t, ok := w.futileHeals[key]; ok && time.Since(t) < healCooldown {
		return err
	}
	rep, herr := w.healPass()
	if herr != nil || rep.Fixed() == 0 {
		w.noteFutileHeal(key)
	} else {
		delete(w.futileHeals, key)
	}
	if herr != nil {
		w.scrubErrs++
		return err
	}
	return fn()
}

// noteFutileHeal records a heal pass that fixed nothing for this locus,
// pruning expired entries and degrading to a shard-global throttle when
// too many distinct loci are futile at once.
func (w *worker) noteFutileHeal(key uint64) {
	if w.futileHeals == nil {
		w.futileHeals = make(map[uint64]time.Time)
	}
	if len(w.futileHeals) >= maxFutileLoci {
		for k, t := range w.futileHeals {
			if time.Since(t) >= healCooldown {
				delete(w.futileHeals, k)
			}
		}
		if len(w.futileHeals) >= maxFutileLoci {
			w.healsThrottle = time.Now()
			return
		}
	}
	w.futileHeals[key] = time.Now()
}

// faultKey extracts the failing locus from a corruption/poison error:
// the corrupt object's offset or the poisoned page. It keys the
// futility cooldown so one unhealable locus doesn't suppress heals for
// the rest of the shard.
func faultKey(err error) uint64 {
	var ce *pangolin.CorruptionError
	if errors.As(err, &ce) {
		return ce.OID.Off
	}
	var pe *pangolin.PoisonError
	if errors.As(err, &pe) {
		return pe.Off
	}
	return 0
}

// healPass steps one full scrub pass with the reader gate's write side
// released between steps (the caller holds it on entry; it is held
// again on return) — the shard never reverts to a stop-the-world pass,
// even on the repair path.
func (w *worker) healPass() (pangolin.ScrubReport, error) {
	sc := w.scrubber.NewScrubPass()
	total := pangolin.ScrubReport{ChecksumsVerified: w.scrubber.ChecksumsVerified()}
	for {
		rep, done, err := sc.Step()
		total.Add(rep)
		w.scrubSteps++
		if err != nil || done {
			return total, err
		}
		w.gate.Unlock()
		//pgllint:ignore gatepair caller holds the gate on entry and return; the loop cycles it between scrub steps
		w.gate.Lock()
	}
}

// applyOne runs a single mutation as its own one-op store batch,
// staged in the worker's inline scratch (the worker goroutine runs one
// Apply at a time, so the array cannot be in use twice).
func (w *worker) applyOne(op store.Op) (store.Result, error) {
	w.oneOp[0] = op
	results, err := w.st.Apply(w.oneOp[:])
	if err != nil {
		return store.Result{}, err
	}
	return results[0], nil
}

func (w *worker) handle(req request) response {
	switch req.op {
	case opPut:
		w.puts++
		err := w.withHeal(func() error {
			_, e := w.applyOne(store.Op{Kind: store.OpPut, K: req.k, V: req.v})
			return e
		})
		if err != nil {
			w.errs++
		}
		return response{err: err}
	case opGet:
		w.gets++
		var v uint64
		var ok bool
		err := w.withHeal(func() (e error) {
			v, ok, e = w.st.Get(req.k)
			return e
		})
		if err != nil {
			w.errs++
		}
		if ok {
			w.hits++
		}
		return response{v: v, ok: ok, err: err}
	case opDel:
		w.dels++
		var ok bool
		err := w.withHeal(func() (e error) {
			res, e := w.applyOne(store.Op{Kind: store.OpDel, K: req.k})
			ok = res.OK
			return e
		})
		if err != nil {
			w.errs++
		}
		return response{ok: ok, err: err}
	case opBatch:
		// Per-op execution of a batch request: each op on its own with
		// its own verdict.
		res := getBatchResults(len(req.ops))
		for i, op := range req.ops {
			switch op.Kind {
			case BatchPut:
				w.puts++
				err := w.withHeal(func() error {
					_, e := w.applyOne(store.Op{Kind: store.OpPut, K: op.K, V: op.V})
					return e
				})
				if err != nil {
					w.errs++
				}
				res[i] = BatchResult{OK: err == nil, Err: err}
			case BatchGet:
				w.gets++
				var v uint64
				var ok bool
				err := w.withHeal(func() (e error) {
					v, ok, e = w.st.Get(op.K)
					return e
				})
				if err != nil {
					w.errs++
				}
				if ok {
					w.hits++
				}
				res[i] = BatchResult{V: v, OK: ok, Err: err}
			case BatchDel:
				w.dels++
				var ok bool
				err := w.withHeal(func() (e error) {
					r, e := w.applyOne(store.Op{Kind: store.OpDel, K: op.K})
					ok = r.OK
					return e
				})
				if err != nil {
					w.errs++
				}
				res[i] = BatchResult{OK: ok, Err: err}
			default:
				w.errs++
				res[i] = BatchResult{Err: fmt.Errorf("shard %d: unknown batch kind %d", w.idx, op.Kind)}
			}
		}
		return response{batch: res}
	case opScan:
		// The worker-path scan chunk: the owner store's repairing reads,
		// serialized with batches like every worker op.
		w.scans++
		var pairs []Pair
		err := w.withHeal(func() (e error) {
			pairs, e = scanCollect(w.st, w.ordered, req.k, req.v, req.max)
			return e
		})
		if err != nil {
			w.errs++
		}
		w.scanPairs += uint64(len(pairs))
		return response{pairs: pairs, err: err}
	case opSnapOpen:
		// Pin the shard's current committed generation. Routed through the
		// worker so the pin lands between group commits, never mid-batch —
		// the version buffer's staging decision is then stable for every
		// whole batch after the pin.
		if w.snapper == nil {
			return response{err: fmt.Errorf("shard %d (%s): %w", w.idx, w.st.Backend(), store.ErrSnapshotUnsupported)}
		}
		sn, err := w.snapper.OpenSnapshot()
		if err != nil {
			w.errs++
			return response{err: fmt.Errorf("shard %d: %w", w.idx, err)}
		}
		return response{snap: sn}
	case opSnapScan:
		// The worker-path snapshot chunk: pinned-generation resolution over
		// the owner store's repairing reads. A typed snapshot verdict is
		// final; read faults get the usual one-heal retry.
		var pairs []Pair
		err := w.withHeal(func() (e error) {
			pairs, e = scanCollect(snapScanner{sn: req.snap, live: w.st}, req.snap.Ordered(), req.k, req.v, req.max)
			return e
		})
		if err != nil {
			if !errors.Is(err, store.ErrSnapshotTooOld) {
				w.errs++
			}
			return response{err: err}
		}
		w.snapScans.Add(1)
		w.snapScanPairs.Add(uint64(len(pairs)))
		return response{pairs: pairs}
	case opStats:
		sst := w.st.Stats()
		return response{stats: ShardStats{
			Index:          w.idx,
			Backend:        sst.Backend,
			Gets:           w.gets,
			Puts:           w.puts,
			Dels:           w.dels,
			Hits:           w.hits,
			FastGets:       w.fastGets.Load(),
			FastHits:       w.fastHits.Load(),
			FastFallbacks:  w.fastFallbacks.Load(),
			FastFaults:     w.fastFaults.Load(),
			Errors:         w.errs,
			Batches:        w.batches,
			BatchedOps:     w.batchedOps,
			GroupFallbacks: w.groupFallbacks,
			CommitWaits:    w.commitWaits,
			Scans:          w.scans,
			ScanPairs:      w.scanPairs,
			FastScans:      w.fastScans.Load(),
			FastScanPairs:  w.fastScanPairs.Load(),
			ScanFallbacks:  w.scanFallbacks.Load(),
			ScanFaults:     w.scanFaults.Load(),
			ScrubSteps:     w.scrubSteps,
			BgRepairs:      w.bgRepairs,
			ScrubBackoffs:  w.scrubBackoffs.Load(),
			ScrubErrors:    w.scrubErrs,
			LastFullPass:   w.lastFullPassUnix,
			SnapScans:      w.snapScans.Load(),
			SnapScanPairs:  w.snapScanPairs.Load(),
			Objects:        sst.Objects,
			Bytes:          sst.Bytes,
			Segments:       sst.Segments,
			Compactions:    sst.Compactions,
			MergedRecords:  sst.MergedRecords,
			DeadRecords:    sst.DeadRecords,
			Quarantined:    sst.QuarantinedSegments,
			SnapshotPins:   sst.SnapshotPins,
			VersionsHeld:   sst.VersionsRetained,
		}}
	case opSync:
		return response{err: w.st.Save()}
	case opCrash:
		return response{err: w.st.CrashSave(req.seed)}
	case opScrubStep:
		// One bounded step of the shard's background maintenance — the
		// maintenance scheduler's unit of work. Repairs it makes count
		// as background repairs; a completed pass stamps the shard's
		// scrub health.
		rep, done, err := w.st.ScrubStep()
		if err != nil {
			// The scheduler fires and forgets; the error must not vanish
			// with the reply — scrub_errors is the operator's signal that
			// steps are failing (and the cursor is stuck).
			w.scrubErrs++
			return response{scrub: rep, err: err}
		}
		w.scrubSteps++
		w.bgRepairs += uint64(rep.Fixed())
		if done {
			w.lastFullPassUnix = time.Now().Unix()
		}
		return response{scrub: rep, ok: done}
	case opInject:
		// Fault-injection hook (§4.6): corrupt one random live object so
		// tests and the loadtest corruption phase can prove the
		// maintenance subsystem heals a live shard. Backends without the
		// capability (nothing to heal with) inject nothing.
		ok := false
		if w.injector != nil {
			ok = w.injector.InjectFault(req.seed)
		}
		return response{ok: ok}
	default:
		return response{err: fmt.Errorf("shard %d: unknown op %d", w.idx, req.op)}
	}
}
