package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin"
)

// Tests for the background maintenance subsystem: the scheduler's
// idle-driven scrub steps, healing of injected corruption under live
// traffic with zero client-visible errors, backpressure accounting, and
// the -race torture that runs the scheduler against commits, saves,
// scans, crash images, and full-pass SCRUBs.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMaintStepsWhenIdle: with the scheduler on and no traffic, scrub
// steps accrue and every shard completes a full pass — the idle-driven
// half of the interval-and-idle contract.
func TestMaintStepsWhenIdle(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{ScrubInterval: time.Millisecond})
	defer s.Abandon()
	for k := uint64(0); k < 128; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "a full pass on every shard", func() bool {
		return s.Stats().LastFullPass > 0 // aggregate = oldest shard's
	})
	st := s.Stats()
	if st.ScrubSteps == 0 {
		t.Fatalf("full pass without steps: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.LastFullPass == 0 {
			t.Fatalf("shard %d never completed a pass: %+v", sh.Index, sh)
		}
	}
}

// TestMaintHealsInjectedFaults is the headline acceptance test:
// bit-flips injected between group commits are healed by the background
// scrubber while concurrent GET/PUT traffic observes ZERO errors — the
// reads that race the corruption either see verified-clean data or fall
// back to the worker's repairing path, never an error — and with the
// traffic stopped, freshly injected faults are healed by the scheduler
// alone (bg_repairs > 0), proving the subsystem works without a read
// ever touching the corruption.
func TestMaintHealsInjectedFaults(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{ScrubInterval: time.Millisecond})
	defer s.Abandon()
	const keySpace = 1 << 10
	for k := uint64(0); k < keySpace; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var clientErrs atomic.Uint64
	// Traffic: readers and a writer racing the injections and the
	// scrubber. Any error a client op observes fails the test.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := uint64(g) * 17
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*2654435761 + 1) % keySpace
				if g == 0 && i%8 == 0 {
					if err := s.Put(k, k^uint64(i)); err != nil {
						clientErrs.Add(1)
						t.Errorf("put %d: %v", k, err)
						return
					}
					continue
				}
				if _, _, err := s.Get(k); err != nil {
					clientErrs.Add(1)
					t.Errorf("get %d: %v", k, err)
					return
				}
			}
		}(g)
	}
	// Injector: corrupt live objects between group commits.
	injected := 0
	deadline := time.Now().Add(duration)
	seed := int64(0)
	for time.Now().Before(deadline) {
		n, _, err := s.InjectFaults(seed, 2)
		if err != nil {
			t.Fatalf("inject: %v", err)
		}
		injected += n
		seed += 2
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if clientErrs.Load() != 0 {
		t.Fatalf("%d client ops observed errors", clientErrs.Load())
	}
	if injected == 0 {
		t.Fatal("no faults injected")
	}

	// Traffic stopped: now only the scheduler can heal. Inject fresh
	// faults and require bg_repairs to INCREASE — repairs made during
	// the load cannot mask a scheduler that wedged since.
	base := s.Stats().BgRepairs
	if _, _, err := s.InjectFaults(seed, 4); err != nil {
		t.Fatalf("post-traffic inject: %v", err)
	}
	waitFor(t, 10*time.Second, "bg_repairs to increase", func() bool {
		return s.Stats().BgRepairs > base
	})

	// The fixpoint: a full on-demand pass finds the pool clean.
	waitFor(t, 10*time.Second, "pool to scrub clean", func() bool {
		rep, err := s.Scrub()
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		return rep.Unrecovered == 0 && rep.BadObjects == 0
	})
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ChecksumsVerified {
		t.Fatalf("MLPC scrub must verify checksums: %+v", rep)
	}
	// And the data is intact.
	for k := uint64(0); k < keySpace; k += 7 {
		if _, ok, err := s.Get(k); err != nil || !ok {
			t.Fatalf("get %d after healing = (%v, %v)", k, ok, err)
		}
	}
}

// TestMaintSchedulerAliveUnderLoad: under sustained write pressure the
// scheduler keeps running — every tick either lands a step or counts a
// backoff; it never silently wedges — and traffic always wins (client
// ops never error or block on scrub work).
func TestMaintSchedulerAliveUnderLoad(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{ScrubInterval: time.Millisecond, QueueLen: 16})
	defer s.Abandon()
	for k := uint64(0); k < 256; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	duration := 800 * time.Millisecond
	if testing.Short() {
		duration = 200 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = k*2654435761 + 1
				if err := s.Put(k%256, k); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.ScrubSteps == 0 && st.ScrubBackoffs == 0 {
		t.Fatalf("scheduler made no attempts under load: %+v", st)
	}
}

// TestSetScrubMergedReport: the set-wide Scrub merges per-shard reports
// via ScrubReport.Add — repairs from any shard survive the merge, and
// the checksum claim is mode-honest.
func TestSetScrubMergedReport(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{})
	defer s.Abandon()
	for k := uint64(0); k < 512; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.InjectFaults(2, 6); err != nil { // even+odd seeds: scribbles and poison
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed() == 0 {
		t.Fatalf("merged report lost the repairs: %+v", rep)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("injected faults unrecoverable: %+v", rep)
	}
	if !rep.ChecksumsVerified || rep.Objects == 0 {
		t.Fatalf("MLPC set scrub must verify checksums over objects: %+v", rep)
	}

	// A checksum-less mode says so in the merged report.
	s2 := newSet(t, t.TempDir(), 2, Options{Mode: "pangolin-mlp"})
	defer s2.Abandon()
	if err := s2.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ChecksumsVerified {
		t.Fatalf("pangolin-mlp scrub claimed checksum coverage: %+v", rep2)
	}
}

// TestMaintTorture is the -race gauntlet: the maintenance scheduler
// racing group commits, reads, scans, saves, crash images, fault
// injections, and concurrent full-pass SCRUBs. Nothing may error, no
// read may observe a torn or stale value, and the set must still scrub
// clean at the end.
func TestMaintTorture(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{ScrubInterval: time.Millisecond, QueueLen: 32})
	defer s.Abandon()
	const keySpace = 512
	for k := uint64(0); k < keySpace; k++ {
		if err := s.Put(k, encode(0, k)); err != nil {
			t.Fatal(err)
		}
	}
	duration := 2 * time.Second
	if testing.Short() {
		duration = 400 * time.Millisecond
	}
	stop := make(chan struct{})
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	var wg sync.WaitGroup
	// Writers on disjoint ranges with monotone sequences.
	for wr := 0; wr < 2; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			lo, hi := uint64(wr)*128, uint64(wr)*128+128
			for seq := uint64(1); ; seq++ {
				for k := lo; k < hi; k++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Put(k, encode(seq, k)); err != nil {
						fail("writer put %d: %v", k, err)
						return
					}
				}
			}
		}(wr)
	}
	// Readers with monotonicity checks.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := make(map[uint64]uint64)
			k := uint64(r) * 31
			for {
				select {
				case <-stop:
					return
				default:
				}
				k = (k*2654435761 + 1) % keySpace
				v, ok, err := s.Get(k)
				if err != nil {
					fail("get %d: %v", k, err)
					return
				}
				if ok {
					if v&0xFFFFFFFF != k&0xFFFFFFFF {
						fail("torn value for %d: %#x", k, v)
						return
					}
					if seq := v >> 32; seq < last[k] {
						fail("key %d regressed %d -> %d", k, last[k], seq)
						return
					} else {
						last[k] = seq
					}
				}
			}
		}(r)
	}
	// Scanner.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pairs, _, _, err := s.Scan(0, keySpace, 64)
			if err != nil {
				fail("scan: %v", err)
				return
			}
			for i := 1; i < len(pairs); i++ {
				if pairs[i].K <= pairs[i-1].K {
					fail("scan order violation at %d", i)
					return
				}
			}
		}
	}()
	// Maintenance antagonists: injections, saves, crash images, and
	// concurrent full passes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(100)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				if _, _, err := s.InjectFaults(seed, 1); err != nil {
					fail("inject: %v", err)
					return
				}
				seed++
			case 1:
				if err := s.Sync(); err != nil {
					fail("sync: %v", err)
					return
				}
			case 2:
				if err := s.CrashSave(seed); err != nil {
					fail("crash save: %v", err)
					return
				}
			case 3:
				if _, err := s.Scrub(); err != nil {
					fail("scrub: %v", err)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if failed.Load() {
		return
	}
	// Fixpoint check: the pool scrubs clean once the dust settles.
	waitFor(t, 10*time.Second, "clean scrub after torture", func() bool {
		rep, err := s.Scrub()
		if err != nil {
			t.Fatalf("final scrub: %v", err)
		}
		return rep.Unrecovered == 0 && rep.BadObjects == 0
	})
}

// TestScrubCoalesces: concurrent full-pass requests against the set
// complete (per-shard they share a pass) and both get a usable report.
func TestScrubCoalesces(t *testing.T) {
	s := newSet(t, t.TempDir(), 2, Options{})
	defer s.Abandon()
	for k := uint64(0); k < 256; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	reports := make([]pangolin.ScrubReport, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Scrub()
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("scrub %d: %v", i, errs[i])
		}
		if !reports[i].ChecksumsVerified {
			t.Fatalf("scrub %d report unverified: %+v", i, reports[i])
		}
	}
}

// TestMaintStopsCleanly: Abandon with the scheduler mid-step neither
// deadlocks nor leaks; double-stop is safe via Close after Abandon
// paths in callers.
func TestMaintStopsCleanly(t *testing.T) {
	for i := 0; i < 10; i++ {
		s := newSet(t, t.TempDir(), 2, Options{ScrubInterval: 100 * time.Microsecond})
		for k := uint64(0); k < 64; k++ {
			if err := s.Put(k, k); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Duration(i) * time.Millisecond)
		s.Abandon()
	}
}
