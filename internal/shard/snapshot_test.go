package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin/internal/store"
)

// collectSnap pages a SetSnapshot.Scan to completion, verifying the
// pagination contract as it goes: ascending keys across page boundaries,
// no duplicates, limit respected.
func collectSnap(t *testing.T, sn *SetSnapshot, limit int) []Pair {
	t.Helper()
	var out []Pair
	lo := uint64(0)
	for {
		pairs, next, more, err := sn.Scan(lo, ^uint64(0), limit)
		if err != nil {
			t.Fatalf("snapshot scan page at lo=%d: %v", lo, err)
		}
		if len(pairs) > limit {
			t.Fatalf("snapshot page of %d pairs exceeds limit %d", len(pairs), limit)
		}
		for i, p := range pairs {
			if i > 0 && p.K <= pairs[i-1].K {
				t.Fatalf("snapshot page out of order at %d: %d after %d", i, p.K, pairs[i-1].K)
			}
			if len(out) > 0 && i == 0 && p.K < lo {
				t.Fatalf("snapshot page regressed below its lo bound: %d < %d", p.K, lo)
			}
		}
		out = append(out, pairs...)
		if !more {
			return out
		}
		lo = next
	}
}

// TestSetSnapshotPinnedImage: a paginated snapshot scan reports exactly
// the set's committed state at open — overwrites, deletes, and inserts
// landing after the pin change nothing it yields — while the live scan
// serves the new state; Release is idempotent and fails later pages with
// the typed staleness error.
func TestSetSnapshotPinnedImage(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{Structure: "btree", Backend: "pangolin,logstore"})
	defer s.Close()
	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := s.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := s.OpenSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sn.Gens()); got != s.Len() {
		t.Fatalf("snapshot vector has %d generations for %d shards", got, s.Len())
	}
	// Mutate every way a key can change after the pin.
	for k := uint64(0); k < n; k += 4 {
		if err := s.Put(k, 1_000_000+k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k < n; k += 4 {
		if _, err := s.Del(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(n); k < n+50; k++ {
		if err := s.Put(k, 7); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot still pages the pinned image.
	got := collectSnap(t, sn, 16)
	if len(got) != n {
		t.Fatalf("snapshot scan yielded %d pairs, want %d", len(got), n)
	}
	for i, p := range got {
		if p.K != uint64(i) || p.V != p.K*10 {
			t.Fatalf("snapshot pair %d = (%d,%d), want (%d,%d)", i, p.K, p.V, i, uint64(i)*10)
		}
	}
	// The aggregate gauges account for the open pins and the preserved
	// versions, and a snapshot scan bumped the per-shard counters.
	st := s.Stats()
	if st.SnapshotPins != s.Len() {
		t.Fatalf("Stats.SnapshotPins = %d, want %d", st.SnapshotPins, s.Len())
	}
	if st.VersionsHeld == 0 {
		t.Fatal("Stats.VersionsHeld = 0 with superseded versions pinned")
	}
	if st.SnapScans == 0 || st.SnapScanPairs == 0 {
		t.Fatalf("snapshot scan counters stayed zero: %+v", st)
	}
	// The live scan serves the new state (spot check: a deleted key is
	// gone, an inserted key is there).
	pairs, _, _, err := s.Scan(1, 1, 1)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("live scan resurrected deleted key 1: %v %v", pairs, err)
	}
	pairs, _, _, err = s.Scan(n, n, 1)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("live scan missed post-pin insert: %v %v", pairs, err)
	}
	// Release: idempotent, typed failure afterwards, gauges drop.
	sn.Release()
	sn.Release()
	if _, _, _, err := sn.Scan(0, ^uint64(0), 10); !errors.Is(err, store.ErrSnapshotTooOld) {
		t.Fatalf("scan after Release = %v, want ErrSnapshotTooOld", err)
	}
	if st := s.Stats(); st.SnapshotPins != 0 || st.VersionsHeld != 0 {
		t.Fatalf("gauges after Release = %d pins / %d versions, want 0 / 0", st.SnapshotPins, st.VersionsHeld)
	}
}

// TestSetSnapshotStableUnderWrites: two full paginated scans of the same
// snapshot, taken while writers keep committing, must be identical —
// the set-level proof that the snapshot vector pins one committed state
// across shards for its whole lifetime. Run with -race.
func TestSetSnapshotStableUnderWrites(t *testing.T) {
	s := newSet(t, t.TempDir(), 4, Options{Structure: "btree", Backend: "pangolin,logstore"})
	defer s.Close()
	const keys = 512
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % keys
				switch i % 3 {
				case 0, 1:
					if err := s.Put(k, rng.Uint64()); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Del(k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	sn, err := s.OpenSnapshot()
	if err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	first := collectSnap(t, sn, 13)
	second := collectSnap(t, sn, 37)
	sn.Release()
	close(stop)
	wg.Wait()
	if len(first) != len(second) {
		t.Fatalf("repeated snapshot scans diverged: %d vs %d pairs", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("repeated snapshot scans diverged at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestSetSnapshotUnsupportedShard: a set containing one shard whose
// backend lacks the snapshot capability refuses to open a snapshot at
// all — typed error, no shard left pinned — rather than pinning some
// shards and silently reading the rest live.
func TestSetSnapshotUnsupportedShard(t *testing.T) {
	s := newSet(t, t.TempDir(), 3, Options{Structure: "btree"})
	defer s.Close()
	for k := uint64(0); k < 50; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Strip one shard's capability; the worker then answers opSnapOpen
	// with the typed refusal, exactly as for a backend that never
	// type-asserted to store.SnapshotViewer.
	s.workers[1].snapper = nil
	_, err := s.OpenSnapshot()
	if !errors.Is(err, store.ErrSnapshotUnsupported) {
		t.Fatalf("OpenSnapshot over a capability-stripped shard = %v, want ErrSnapshotUnsupported", err)
	}
	// All-or-nothing: the capable shards' pins were released on failure.
	if st := s.Stats(); st.SnapshotPins != 0 {
		t.Fatalf("failed open left %d pins held", st.SnapshotPins)
	}
}
