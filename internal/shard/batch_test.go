package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestBatchMatchesModel drives Batch with mixed GET/PUT/DEL slices and
// checks results and final contents against a volatile model.
func TestBatchMatchesModel(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 3, Options{})
	defer s.Abandon()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(24)
		ops := make([]BatchOp, n)
		for i := range ops {
			ops[i] = BatchOp{
				Kind: uint8(1 + rng.Intn(3)),
				K:    uint64(rng.Intn(200)),
				V:    rng.Uint64(),
			}
		}
		res := s.Batch(ops)
		if len(res) != n {
			t.Fatalf("round %d: %d results for %d ops", round, len(res), n)
		}
		// A batch observes its own earlier ops in order (each shard's
		// slice is one transaction; ops of one key always land on one
		// shard, so per-key ordering holds).
		for i, op := range ops {
			if res[i].Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, res[i].Err)
			}
			switch op.Kind {
			case BatchPut:
				model[op.K] = op.V
			case BatchDel:
				if _, want := model[op.K]; res[i].OK != want {
					t.Fatalf("round %d DEL %d = %v, want %v", round, op.K, res[i].OK, want)
				}
				delete(model, op.K)
			case BatchGet:
				wantV, want := model[op.K]
				if res[i].OK != want || (want && res[i].V != wantV) {
					t.Fatalf("round %d GET %d = (%d,%v), want (%d,%v)",
						round, op.K, res[i].V, res[i].OK, wantV, want)
				}
			}
		}
	}
	for k, want := range model {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != want {
			t.Fatalf("final get %d = (%d,%v,%v), want (%d,true)", k, v, ok, err, want)
		}
	}
	st := s.Stats()
	if st.Batches == 0 || st.BatchedOps == 0 {
		t.Fatalf("no group commits recorded: %+v", st)
	}
	if st.GroupFallbacks != 0 {
		t.Fatalf("unexpected group fallbacks: %+v", st)
	}
}

// TestBatchBadOpDoesNotPoisonBatchmates sends a batch whose middle op has
// an invalid kind. The group transaction aborts and falls back to per-op
// execution: the bad op reports its error, the others succeed.
func TestBatchBadOpDoesNotPoisonBatchmates(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 1, Options{})
	defer s.Abandon()
	ops := []BatchOp{
		{Kind: BatchPut, K: 1, V: 10},
		{Kind: BatchPut, K: 2, V: 20},
		{Kind: 99, K: 3},
		{Kind: BatchPut, K: 4, V: 40},
		{Kind: BatchGet, K: 1},
	}
	res := s.Batch(ops)
	if res[2].Err == nil {
		t.Fatal("invalid op reported no error")
	}
	for _, i := range []int{0, 1, 3} {
		if res[i].Err != nil {
			t.Fatalf("op %d poisoned by its batchmate: %v", i, res[i].Err)
		}
	}
	if res[4].Err != nil || !res[4].OK || res[4].V != 10 {
		t.Fatalf("GET in fallback batch = %+v", res[4])
	}
	for _, k := range []uint64{1, 2, 4} {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != k*10 {
			t.Fatalf("key %d after fallback = (%d,%v,%v)", k, v, ok, err)
		}
	}
	if st := s.Stats(); st.GroupFallbacks == 0 {
		t.Fatalf("fallback not recorded: %+v", st)
	}
}

// TestOversizedBatchSplitsIntoWindows sends one shard a batch far larger
// than its group-commit window: it must execute in MaxBatch-sized
// transactions (never one giant transaction), produce per-op results for
// everything, and account each chunk as a group commit.
func TestOversizedBatchSplitsIntoWindows(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 1, Options{MaxBatch: 8})
	defer s.Abandon()
	const n = 100
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchPut, K: uint64(i), V: uint64(i) * 3}
	}
	res := s.Batch(ops)
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("op %d = %+v", i, r)
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := s.Get(i)
		if err != nil || !ok || v != i*3 {
			t.Fatalf("key %d = (%d,%v,%v)", i, v, ok, err)
		}
	}
	st := s.Stats()
	// 100 puts in windows of 8: 12 full chunks + one of 4, each one
	// transaction.
	if st.Batches != 13 || st.BatchedOps != n {
		t.Fatalf("oversized batch accounting: batches=%d batched_ops=%d, want 13/%d",
			st.Batches, st.BatchedOps, n)
	}
	if st.GroupFallbacks != 0 {
		t.Fatalf("unexpected fallbacks: %+v", st)
	}
}

// TestGroupCommitUnderConcurrency hammers a small set from many
// goroutines mixing single ops and batches on disjoint key ranges, so
// queues actually fill and workers drain groups; everything must agree
// with the per-goroutine model and group commits must happen.
func TestGroupCommitUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 2, Options{QueueLen: 256})
	defer s.Abandon()
	const goroutines = 8
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 1_000_000
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for r := 0; r < rounds; r++ {
				if rng.Intn(2) == 0 {
					n := 1 + rng.Intn(16)
					ops := make([]BatchOp, n)
					for i := range ops {
						ops[i] = BatchOp{
							Kind: uint8(1 + rng.Intn(3)),
							K:    base + uint64(rng.Intn(48)),
							V:    rng.Uint64(),
						}
					}
					res := s.Batch(ops)
					for i, op := range ops {
						if res[i].Err != nil {
							t.Errorf("g%d batch op: %v", g, res[i].Err)
							return
						}
						switch op.Kind {
						case BatchPut:
							model[op.K] = op.V
						case BatchDel:
							delete(model, op.K)
						case BatchGet:
							wantV, want := model[op.K]
							if res[i].OK != want || (want && res[i].V != wantV) {
								t.Errorf("g%d GET %d = (%d,%v), want (%d,%v)",
									g, op.K, res[i].V, res[i].OK, wantV, want)
								return
							}
						}
					}
				} else {
					k := base + uint64(rng.Intn(48))
					v := rng.Uint64()
					if err := s.Put(k, v); err != nil {
						t.Errorf("g%d put: %v", g, err)
						return
					}
					model[k] = v
				}
			}
			for k, want := range model {
				v, ok, err := s.Get(k)
				if err != nil || !ok || v != want {
					t.Errorf("g%d final get %d = (%d,%v,%v)", g, k, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Errors != 0 {
		t.Fatalf("stats report %d errors", st.Errors)
	}
}

// TestCrashDuringBatchLoadRecovers crashes the set while batch writers
// are mid-flight; every shard must recover, scrub clean, and hold every
// batch the test observed as committed before the crash.
func TestCrashDuringBatchLoadRecovers(t *testing.T) {
	dir := t.TempDir()
	s := newSet(t, dir, 2, Options{})
	var committed sync.Map
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(g) << 32; ; k += 8 {
				select {
				case <-stop:
					return
				default:
				}
				ops := make([]BatchOp, 8)
				for i := range ops {
					ops[i] = BatchOp{Kind: BatchPut, K: k + uint64(i), V: (k + uint64(i)) ^ 0xBEEF}
				}
				res := s.Batch(ops)
				for i, r := range res {
					if r.Err != nil {
						t.Errorf("batch put: %v", r.Err)
						return
					}
					committed.Store(ops[i].K, ops[i].V)
				}
			}
		}(g)
	}
	for {
		st := s.Stats()
		if st.Puts >= 400 {
			break
		}
	}
	// Everything committed by now is durable and must survive the crash
	// images; in-flight batches may or may not make it — but never
	// partially per shard.
	frozen := map[uint64]uint64{}
	committed.Range(func(k, v any) bool {
		frozen[k.(uint64)] = v.(uint64)
		return true
	})
	if err := s.CrashSave(13); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	s.Abandon()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abandon()
	rep, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub after mid-batch-load crash: %d unrecoverable (%+v)", rep.Unrecovered, rep)
	}
	for k, want := range frozen {
		v, ok, err := s2.Get(k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok || v != want {
			t.Fatalf("pre-crash key %d = (%d,%v), want (%d,true): committed batch lost", k, v, ok, want)
		}
	}
}

// TestStopUnderLoadTinyQueue is the shutdown race regression test: with a
// length-1 queue, senders routinely block on a full channel while stop()
// runs. The old code held the read lock across the blocking send, so
// stop's write lock could deadlock the set. Run under -race this also
// checks the close/send discipline. Every in-flight op must get an
// answer: success or a clean "closed" error — never a hang or panic.
func TestStopUnderLoadTinyQueue(t *testing.T) {
	for round := 0; round < 10; round++ {
		dir := t.TempDir()
		s := newSet(t, dir, 1, Options{QueueLen: 1})
		const senders = 16
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < senders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					k := uint64(g)<<16 | uint64(i)
					if err := s.Put(k, k); err != nil {
						// Only the typed shutdown error is acceptable.
						if !errors.Is(err, ErrShuttingDown) {
							t.Errorf("put after stop: %v", err)
						}
						return
					}
				}
			}(g)
		}
		close(start)
		// Stop while senders are mid-flight; Abandon must return.
		s.Abandon()
		wg.Wait()
		// A second stop is a no-op, not a hang.
		s.Abandon()
	}
}
