package core

import (
	"fmt"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/mbuf"
)

// OpenSingle creates a standalone micro-buffer for an object outside any
// transaction — the paper's pgl_open (§3.2, Listing 2). The object's
// integrity is verified (and restored if needed) exactly as at
// transactional open. The buffer is later committed atomically with
// CommitSingle or simply dropped.
func (e *Engine) OpenSingle(oid layout.OID) (*mbuf.Buf, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if !e.mode.MicroBuffered() {
		return nil, fmt.Errorf("core: OpenSingle requires a micro-buffered mode, not %v", e.mode)
	}
	img, hdr, err := e.readImage(oid, e.mode.Checksums())
	if err != nil {
		return nil, err
	}
	b := mbuf.New(oid, hdr.Size, e.canary)
	copy(b.Image(), img)
	b.OrigCsum = hdr.Csum
	e.stats.mbufAdd(int64(b.Footprint()))
	return b, nil
}

// CommitSingle atomically commits a buffer from OpenSingle — the paper's
// pgl_commit: it starts a transaction, determines the modified ranges by
// diffing the buffer against NVMM (the single-object API has no
// AddRange), and runs the normal commit protocol. This keeps the simple
// atomic-style programming model while supporting updates beyond 8 bytes
// (§3.2).
func (e *Engine) CommitSingle(b *mbuf.Buf) error {
	defer e.stats.mbufAdd(-int64(b.Footprint()))
	if err := b.CheckCanaries(); err != nil {
		return err
	}
	old := make([]byte, b.Size())
	if err := e.dev.ReadAt(old, b.OID.HeaderOff()); err != nil {
		if rerr := e.faultRepair(b.OID.HeaderOff(), b.Size(), err); rerr != nil {
			return rerr
		}
		if err := e.dev.ReadAt(old, b.OID.HeaderOff()); err != nil {
			return err
		}
	}
	img := b.Image()
	// Diff at 8-byte granularity, skipping the header (the commit path
	// owns the checksum field).
	const gran = 8
	size := b.Size()
	i := uint64(layout.ObjHeaderSize)
	for i < size {
		end := min(i+gran, size)
		if bytesEqual(old[i:end], img[i:end]) {
			i = end
			continue
		}
		// Extend the modified run until granules match again.
		j := end
		for j < size {
			je := min(j+gran, size)
			if bytesEqual(old[j:je], img[j:je]) {
				break
			}
			j = je
		}
		b.MarkModified(i, j-i)
		i = j
	}
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	tx.bufs.Insert(b)
	e.stats.mbufAdd(int64(b.Footprint())) // table ownership (released at commit)
	tx.statModBytes = sumRanges(b)
	tx.statObjs[b.OID.Off] = true
	return tx.Commit()
}

func sumRanges(b *mbuf.Buf) uint64 {
	var n uint64
	for _, r := range b.Ranges() {
		n += r.Len
	}
	return n
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
