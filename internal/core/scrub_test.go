package core

import (
	"reflect"
	"testing"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
)

// allocN allocates n 128-byte objects with recognizable contents.
func allocN(t *testing.T, e *Engine, n int) []layout.OID {
	t.Helper()
	oids := make([]layout.OID, 0, n)
	for i := 0; i < n; i++ {
		if err := e.Run(func(tx *Tx) error {
			oid, data, err := tx.Alloc(128, 1)
			if err != nil {
				return err
			}
			copy(data, "scrub target")
			oids = append(oids, oid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return oids
}

func checkRestored(t *testing.T, e *Engine, oids []layout.OID) {
	t.Helper()
	for _, oid := range oids {
		got, err := e.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:12]) != "scrub target" {
			t.Fatalf("object %#x not restored: %q", oid.Off, got[:12])
		}
	}
}

// TestScrubberStepBounds: every step examines at most the configured
// object cap (the freeze-window bound), the pass covers every live
// object exactly once, and the pass completes as a finite sequence of
// steps.
func TestScrubberStepBounds(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	const n, cap_ = 300, 32
	allocN(t, e, n)
	sc := e.NewScrubber(ScrubberConfig{MaxObjectsPerStep: cap_})
	totalObjs, steps := 0, 0
	for {
		rep, done, err := sc.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Objects > cap_ {
			t.Fatalf("step examined %d objects, cap %d", rep.Objects, cap_)
		}
		totalObjs += rep.Objects
		steps++
		if steps > 10*n {
			t.Fatal("pass never completed")
		}
		if done {
			break
		}
	}
	// The pass covers every live object (plus the two roots the engine
	// itself may hold) exactly once.
	if totalObjs < n || totalObjs > n+4 {
		t.Fatalf("pass examined %d objects, want ~%d", totalObjs, n)
	}
	if sc.Passes() != 1 {
		t.Fatalf("passes = %d, want 1", sc.Passes())
	}
	if e.stats.ScrubSteps.Load() != uint64(steps) {
		t.Fatalf("stats.ScrubSteps = %d, want %d", e.stats.ScrubSteps.Load(), steps)
	}
}

// TestScrubberHealsAcrossSteps: corruption is repaired by the fixpoint
// of bounded steps, with transactions committing between steps — the
// online property the old stop-the-world pass could not offer.
func TestScrubberHealsAcrossSteps(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	oids := allocN(t, e, 64)
	e.InjectScribble(oids[5].Off, 10, 5)
	e.InjectScribble(oids[40].Off+30, 20, 6)
	e.InjectMediaError(oids[20].Off)
	sc := e.NewScrubber(ScrubberConfig{MaxObjectsPerStep: 8})
	total := ScrubReport{ChecksumsVerified: true}
	for i := 0; ; i++ {
		rep, done, err := sc.Step()
		if err != nil {
			t.Fatal(err)
		}
		total.Add(rep)
		if done {
			break
		}
		// The pool is live between steps: commit a fresh transaction.
		if err := e.Run(func(tx *Tx) error {
			_, _, err := tx.Alloc(64, 2)
			return err
		}); err != nil {
			t.Fatalf("commit between steps %d: %v", i, err)
		}
		if i > 10000 {
			t.Fatal("pass never completed")
		}
	}
	if total.PagesHealed < 1 {
		t.Fatalf("poisoned page not healed: %+v", total)
	}
	if total.BadObjects < 1 || total.Repaired != total.BadObjects || total.Unrecovered != 0 {
		t.Fatalf("scrub totals %+v", total)
	}
	if !total.ChecksumsVerified {
		t.Fatalf("MLPC pass must report checksums verified: %+v", total)
	}
	checkRestored(t, e, oids)
	verifyParity(t, e)
}

// TestScrubberPoisonDrainedEveryStep: a page poisoned mid-pass is
// repaired by the very next step, regardless of where the cursor is —
// known-bad pages never wait for the pass to come around.
func TestScrubberPoisonDrainedEveryStep(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	oids := allocN(t, e, 100)
	sc := e.NewScrubber(ScrubberConfig{MaxObjectsPerStep: 16})
	if _, _, err := sc.Step(); err != nil { // cursor is now mid-objects
		t.Fatal(err)
	}
	e.InjectMediaError(oids[2].Off) // behind the cursor
	rep, _, err := sc.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesHealed < 1 {
		t.Fatalf("next step did not heal the poisoned page: %+v", rep)
	}
	if len(e.dev.PoisonedPages()) != 0 {
		t.Fatal("poisoned page survived the step")
	}
}

// TestScrubberUnrepairablePageDoesNotWedge: a poisoned page that cannot
// be repaired (here: a mode with no parity) is quarantined and reported
// as pages_unrecovered — passes keep completing instead of every
// subsequent step erroring out on the same dead page.
func TestScrubberUnrepairablePageDoesNotWedge(t *testing.T) {
	e := mkEngine(t, PangolinML) // replicated metadata, no parity: data pages unrepairable
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(128, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.InjectMediaError(oid.Off)
	sc := e.NewScrubber(ScrubberConfig{})
	for i := 0; i < 3; i++ {
		rep, done, err := sc.Step()
		if err != nil {
			t.Fatalf("step %d errored on an unrepairable page: %v", i, err)
		}
		if !done {
			continue
		}
		if rep.PagesUnrecovered == 0 && i == 0 {
			t.Fatalf("first pass did not report the unrepairable page: %+v", rep)
		}
	}
	if sc.Passes() == 0 {
		t.Fatal("no pass completed with a dead page present")
	}
}

// TestScrubberNoPaveOver: data scribbled BEHIND the object cursor is
// met first by the parity phase. Recomputing parity there would pave
// over the only redundancy that can restore the data; the scrubber must
// instead detect the dirty objects on the mismatching column and repair
// them from parity.
func TestScrubberNoPaveOver(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	oids := allocN(t, e, 40)
	sc := e.NewScrubber(ScrubberConfig{MaxObjectsPerStep: 1 << 20})
	// One step covers the whole object phase; the cursor now points at
	// the parity phase.
	if _, _, err := sc.Step(); err != nil {
		t.Fatal(err)
	}
	if sc.phase != scrubParity {
		t.Fatalf("phase = %d, want parity", sc.phase)
	}
	// Corrupt data the object phase has already passed.
	e.InjectScribble(oids[3].Off, 16, 9)
	total := ScrubReport{ChecksumsVerified: true}
	for {
		rep, done, err := sc.Step()
		if err != nil {
			t.Fatal(err)
		}
		total.Add(rep)
		if done {
			break
		}
	}
	if total.Repaired < 1 || total.Unrecovered != 0 {
		t.Fatalf("parity phase did not repair the scribbled object: %+v", total)
	}
	checkRestored(t, e, oids)
	verifyParity(t, e)
	// A second full pass must find nothing wrong (the corruption was
	// repaired, not paved into parity).
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadObjects != 0 || rep.Unrecovered != 0 {
		t.Fatalf("second pass still sees corruption: %+v", rep)
	}
}

// TestObjectsFromMatchesFilter: the scrub cursor's resumable iterator
// (address-arithmetic skipping) visits exactly the objects a full
// iteration filtered by Base > after would, for cursors landing before,
// inside, between, and after the live objects — including a multi-chunk
// extent allocation.
func TestObjectsFromMatchesFilter(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	allocN(t, e, 60)
	// A large extent object (spans whole chunks) and odd sizes.
	for _, size := range []uint64{40 << 10, 700, 8 << 10} {
		if err := e.Run(func(tx *Tx) error {
			_, _, err := tx.Alloc(size, 3)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	var all []alloc.ObjectInfo
	e.heap.Objects(func(o alloc.ObjectInfo) bool { all = append(all, o); return true })
	if len(all) < 60 {
		t.Fatalf("only %d objects", len(all))
	}
	cursors := []uint64{0, all[0].Base, all[0].Base - 1, all[10].Base,
		all[len(all)/2].Base + 1, all[len(all)-1].Base, all[len(all)-1].Base + 1, ^uint64(0) >> 1}
	for _, after := range cursors {
		var want []uint64
		for _, o := range all {
			if o.Base > after {
				want = append(want, o.Base)
			}
		}
		var got []uint64
		e.heap.ObjectsFrom(after, func(o alloc.ObjectInfo) bool {
			got = append(got, o.Base)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("after %#x: got %d objects, want %d", after, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("after %#x: object %d = %#x, want %#x", after, i, got[i], want[i])
			}
		}
	}
}

// TestScrubReportAdd: the merge covers every field — a new counter
// added to ScrubReport cannot be silently dropped by Add.
func TestScrubReportAdd(t *testing.T) {
	mk := func() ScrubReport {
		var r ScrubReport
		v := reflect.ValueOf(&r).Elem()
		for i := 0; i < v.NumField(); i++ {
			switch f := v.Field(i); f.Kind() {
			case reflect.Int:
				f.SetInt(1)
			case reflect.Bool:
				f.SetBool(true)
			default:
				t.Fatalf("ScrubReport field %s has kind %v: teach Add and this test about it",
					v.Type().Field(i).Name, f.Kind())
			}
		}
		return r
	}
	sum := mk()
	sum.Add(mk())
	v := reflect.ValueOf(sum)
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int:
			if f.Int() != 2 {
				t.Fatalf("Add dropped field %s (= %d, want 2)", v.Type().Field(i).Name, f.Int())
			}
		case reflect.Bool:
			if !f.Bool() {
				t.Fatalf("Add cleared field %s", v.Type().Field(i).Name)
			}
		}
	}
	// ChecksumsVerified ANDs: one unverified constituent taints the merge.
	a := ScrubReport{ChecksumsVerified: true}
	a.Add(ScrubReport{ChecksumsVerified: false})
	if a.ChecksumsVerified {
		t.Fatal("merging an unverified report must clear ChecksumsVerified")
	}
}

// TestScrubChecksumsVerifiedFlag: a checksum-less mode's report says so
// explicitly instead of letting "0 bad objects" read as verified clean.
func TestScrubChecksumsVerifiedFlag(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		want bool
	}{{PangolinMLPC, true}, {PangolinMLP, false}, {PangolinML, false}} {
		e := mkEngine(t, tc.mode)
		allocN(t, e, 3)
		rep, err := e.Scrub()
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if rep.ChecksumsVerified != tc.want {
			t.Fatalf("%v: ChecksumsVerified = %v, want %v", tc.mode, rep.ChecksumsVerified, tc.want)
		}
		if !tc.want && rep.Objects != 0 {
			t.Fatalf("%v: examined %d objects without checksums", tc.mode, rep.Objects)
		}
	}
}

// TestInjectRandomFault: the fault-injection hook corrupts live objects
// in both flavors, and a scrub pass heals whatever it injected.
func TestInjectRandomFault(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	oids := allocN(t, e, 50)
	for seed := int64(0); seed < 8; seed++ { // even = scribble, odd = poison
		if !e.InjectRandomFault(seed) {
			t.Fatalf("seed %d: no live object found", seed)
		}
	}
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fixed() == 0 {
		t.Fatalf("nothing repaired after 8 injections: %+v", rep)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("injections unrecoverable: %+v", rep)
	}
	checkRestored(t, e, oids)
	verifyParity(t, e)

	// An empty pool reports false instead of corrupting metadata.
	e2 := mkEngine(t, PangolinMLPC)
	if e2.InjectRandomFault(1) {
		t.Fatal("InjectRandomFault on an empty pool claimed success")
	}
}
