package core

import (
	"math/rand"
	"testing"
)

// modelIntervals converts a covered-byte set into its maximal sorted
// disjoint runs — the brute-force reference for the interval list.
func modelIntervals(covered []bool) []span {
	var out []span
	for i := 0; i < len(covered); {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < len(covered) && covered[j] {
			j++
		}
		out = append(out, span{off: uint64(i), n: uint64(j - i)})
		i = j
	}
	return out
}

func spansEqual(a, b []span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInsertSpanMatchesIntervalModel drives insertSpan with random spans
// and checks the list against a brute-force byte-set model after every
// insert: sorted, disjoint, adjacent runs merged.
func TestInsertSpanMatchesIntervalModel(t *testing.T) {
	const space = 512
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var got []span
		model := make([]bool, space)
		for i := 0; i < 400; i++ {
			s := span{
				off: uint64(rng.Intn(space - 40)),
				n:   uint64(1 + rng.Intn(40)),
			}
			got = insertSpan(got, s)
			for b := s.off; b < s.off+s.n; b++ {
				model[b] = true
			}
			if want := modelIntervals(model); !spansEqual(got, want) {
				t.Fatalf("seed %d insert %d (%+v): list %+v, model %+v",
					seed, i, s, got, want)
			}
		}
	}
}

// TestInsertSpanSubtractCoveredAgree checks the pair of interval
// operations the snapshot path uses together: the segments subtractCovered
// returns must exactly tile the uncovered bytes of the query.
func TestInsertSpanSubtractCoveredAgree(t *testing.T) {
	const space = 512
	rng := rand.New(rand.NewSource(42))
	var covered []span
	model := make([]bool, space)
	for i := 0; i < 300; i++ {
		q := span{
			off: uint64(rng.Intn(space - 40)),
			n:   uint64(1 + rng.Intn(40)),
		}
		segs := subtractCovered(covered, q)
		seen := make([]bool, space)
		for _, seg := range segs {
			for b := seg.off; b < seg.off+seg.n; b++ {
				if b < q.off || b >= q.off+q.n {
					t.Fatalf("insert %d: segment %+v outside query %+v", i, seg, q)
				}
				if model[b] {
					t.Fatalf("insert %d: segment %+v covers already-covered byte %d", i, seg, b)
				}
				seen[b] = true
			}
			covered = insertSpan(covered, seg)
		}
		for b := q.off; b < q.off+q.n; b++ {
			if !model[b] && !seen[b] {
				t.Fatalf("insert %d: uncovered byte %d of query %+v missed", i, b, q)
			}
			model[b] = true
		}
		if want := modelIntervals(model); !spansEqual(covered, want) {
			t.Fatalf("insert %d: list %+v, model %+v", i, covered, want)
		}
	}
}
