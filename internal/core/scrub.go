package core

import (
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// ScrubReport summarizes scrubbing work (§3.3 "Scrub" mode): one full
// pass, one incremental step, or any merged set of either.
type ScrubReport struct {
	Objects     int `json:"objects"`      // live objects examined
	BadObjects  int `json:"bad_objects"`  // checksum mismatches found
	Repaired    int `json:"repaired"`     // objects restored from parity
	Unrecovered int `json:"unrecovered"`  // objects that stayed corrupt
	ParityFixes int `json:"parity_fixes"` // parity columns recomputed
	PagesHealed int `json:"pages_healed"` // poisoned pages repaired
	// PagesUnrecovered counts poisoned pages whose repair FAILED (a
	// double fault, or a mode without the needed redundancy). The
	// scrubber quarantines them for the rest of the pass instead of
	// wedging on them — they are retried once per pass — so the rest of
	// the pool keeps getting verified; reopen-time recovery is the
	// escape hatch for the page itself.
	PagesUnrecovered int `json:"pages_unrecovered"`
	// ChecksumsVerified reports whether object checksums were actually
	// verified: false in checksum-less modes (pmemobj, pmemobj-p, and the
	// non-C Pangolin modes), where scrubbing covers pages and parity only
	// and "0 bad objects" must not be mistaken for "verified clean".
	ChecksumsVerified bool `json:"checksums_verified"`
}

// Add merges other into r field by field, so call sites that combine
// reports (per-shard merges, per-step accumulation) cannot silently drop
// a newly added field. Counters sum; ChecksumsVerified ANDs — a merged
// report only claims checksum coverage when every constituent verified
// (start an accumulator with ChecksumsVerified: true before merging).
func (r *ScrubReport) Add(other ScrubReport) {
	r.Objects += other.Objects
	r.BadObjects += other.BadObjects
	r.Repaired += other.Repaired
	r.Unrecovered += other.Unrecovered
	r.ParityFixes += other.ParityFixes
	r.PagesHealed += other.PagesHealed
	r.PagesUnrecovered += other.PagesUnrecovered
	r.ChecksumsVerified = r.ChecksumsVerified && other.ChecksumsVerified
}

// Fixed returns the repairs the report carries: the scrub-health number
// maintenance schedulers expose as bg_repairs.
func (r ScrubReport) Fixed() int { return r.Repaired + r.ParityFixes + r.PagesHealed }

// ScrubberConfig bounds the work one Scrubber.Step performs — and with
// it the step's freeze window, the only time a step excludes
// transactions. Zero values select the defaults.
type ScrubberConfig struct {
	// MaxObjectsPerStep caps the live objects verified per step
	// (default 64).
	MaxObjectsPerStep int
	// MaxPagesPerStep caps the poisoned pages repaired per step
	// (default 8).
	MaxPagesPerStep int
	// MaxParityBytesPerStep caps the parity bytes verified per step
	// (default 256 KB).
	MaxParityBytesPerStep uint64
}

func (c ScrubberConfig) objectsPerStep() int {
	if c.MaxObjectsPerStep <= 0 {
		return 64
	}
	return c.MaxObjectsPerStep
}

func (c ScrubberConfig) pagesPerStep() int {
	if c.MaxPagesPerStep <= 0 {
		return 8
	}
	return c.MaxPagesPerStep
}

func (c ScrubberConfig) parityBytesPerStep() uint64 {
	if c.MaxParityBytesPerStep == 0 {
		return 256 << 10
	}
	// Whole pages: parity repair is page-column granular.
	n := c.MaxParityBytesPerStep &^ uint64(layout.PageSize-1)
	if n == 0 {
		n = layout.PageSize
	}
	return n
}

// Scrubber phases. Poisoned pages are not a phase: every step drains the
// known-bad page list first (bounded), so a media error never waits a
// whole pass for repair.
const (
	scrubObjects uint8 = iota // verify live-object checksums
	scrubParity               // verify the zone parity invariant
)

// Scrubber is a resumable cursor over a pool's integrity state: the
// known-bad page list, the live objects, and the zone parity invariant.
// Each Step verifies and repairs one bounded chunk under a short freeze
// window, so full-pool integrity is the fixpoint of many cheap steps
// instead of one long stop-the-world pass. A Scrubber belongs to the
// pool's owner goroutine (or any external serialization): Steps must not
// run concurrently with each other, but transactions, reads, and online
// recovery may freely interleave between Steps.
type Scrubber struct {
	e   *Engine
	cfg ScrubberConfig

	phase     uint8
	objCursor uint64 // resume object iteration after this base offset
	zone      uint64 // parity cursor
	col       uint64
	passes    uint64
	// badPages quarantines poisoned pages whose repair failed, so one
	// dead page cannot wedge every subsequent step (and with it all
	// background verification for the pool). Cleared when a pass
	// completes: each pass retries the quarantine once.
	badPages map[uint64]bool
}

// NewScrubber returns a scrubber positioned at the start of a pass.
func (e *Engine) NewScrubber(cfg ScrubberConfig) *Scrubber {
	return &Scrubber{e: e, cfg: cfg, badPages: make(map[uint64]bool)}
}

// Passes returns how many full passes this scrubber has completed.
func (s *Scrubber) Passes() uint64 { return s.passes }

// Step verifies and repairs one bounded chunk of the pool: first up to
// MaxPagesPerStep known-poisoned pages, then — if the page list is
// drained — either up to MaxObjectsPerStep live-object checksums or up
// to MaxParityBytesPerStep of the parity invariant, whichever the cursor
// points at. The pool is frozen only for the duration of the step (the
// §3.6 freeze protocol), so the freeze window is bounded by the
// per-step caps. done reports that this step completed a full pass: all
// known-bad pages, every live object, and every parity zone have been
// covered since the cursor last reset.
func (s *Scrubber) Step() (rep ScrubReport, done bool, err error) {
	e := s.e
	if e.closed.Load() {
		return ScrubReport{}, false, ErrClosed
	}
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	e.freeze()
	defer e.unfreeze()
	rep.ChecksumsVerified = e.mode.Checksums()

	defer func() {
		if err == nil {
			e.stats.ScrubSteps.Add(1)
			e.stats.ScrubFixed.Add(uint64(rep.Fixed()))
			if done {
				s.passes++
				e.stats.ScrubRuns.Add(1)
			}
		}
	}()

	// Known-bad pages first, every step: a fresh media error is repaired
	// within one step of being seen instead of waiting for the cursor to
	// come around. The phase work below still runs — page drain and
	// phase budget are independent bounds, and a step must ALWAYS
	// advance the cursor, or sustained poison arrival could starve pass
	// completion (and every SCRUB waiter) forever.
	s.stepPages(&rep)

	switch s.phase {
	case scrubObjects:
		if err := s.stepObjects(&rep); err != nil {
			return rep, false, err
		}
	case scrubParity:
		if err := s.stepParity(&rep); err != nil {
			return rep, false, err
		}
	}
	// A pass completes when the parity cursor wraps (or, without parity,
	// when the object cursor wraps; without either the pass is just the
	// page drain).
	if s.phase == scrubObjects && s.objCursor == 0 {
		// Object phase finished this step; move on to parity.
		s.phase = scrubParity
		s.zone, s.col = 0, 0
		if !e.mode.Parity() {
			s.phase = scrubObjects
			done = true
		}
	} else if s.phase == scrubParity && s.zone == 0 && s.col == 0 {
		s.phase = scrubObjects
		done = true
	}
	if done {
		// Retry quarantined pages once per pass: transient causes (a
		// mode switch, repaired parity) get another chance, permanent
		// ones keep showing up as pages_unrecovered each pass.
		clear(s.badPages)
	}
	return rep, done, nil
}

// stepPages repairs up to the per-step cap of known-poisoned pages. A
// page whose repair fails is counted unrecovered and quarantined for
// the rest of the pass — never an error: one dead page (double fault,
// or a mode without redundancy) must not wedge the scrubber and stop
// background verification for the whole pool.
func (s *Scrubber) stepPages(rep *ScrubReport) {
	e := s.e
	budget := s.cfg.pagesPerStep()
	for _, p := range e.dev.PoisonedPages() {
		if budget == 0 {
			break
		}
		if s.badPages[p] {
			continue
		}
		if err := e.repairPage(p); err != nil {
			s.badPages[p] = true
			rep.PagesUnrecovered++
			continue
		}
		rep.PagesHealed++
		budget--
	}
}

// stepObjects verifies up to the per-step cap of live-object checksums,
// resuming after objCursor in address order. When the heap is exhausted
// the cursor resets to zero, signalling the end of the object phase. In
// checksum-less modes the phase is a no-op (the report's
// ChecksumsVerified field says so explicitly).
func (s *Scrubber) stepObjects(rep *ScrubReport) error {
	e := s.e
	if !e.mode.Checksums() {
		s.objCursor = 0
		return nil
	}
	capN := s.cfg.objectsPerStep()
	// Collect one extra object so "exactly cap remained" still ends the
	// phase on this step rather than burning an empty step next time.
	// ObjectsFrom resumes by address arithmetic, so a step deep into a
	// large heap does not rescan the objects behind the cursor.
	objs := make([]alloc.ObjectInfo, 0, capN+1)
	e.heap.ObjectsFrom(s.objCursor, func(o alloc.ObjectInfo) bool {
		objs = append(objs, o)
		return len(objs) < capN+1
	})
	more := len(objs) > capN
	if more {
		objs = objs[:capN]
	}
	for _, o := range objs {
		rep.Objects++
		if err := s.scrubOneObject(o, rep); err != nil {
			return err
		}
	}
	if more {
		s.objCursor = objs[len(objs)-1].Base
	} else {
		s.objCursor = 0
	}
	return nil
}

// scrubOneObject verifies one object and, on mismatch, rebuilds every
// page it spans from parity and re-verifies.
func (s *Scrubber) scrubOneObject(o alloc.ObjectInfo, rep *ScrubReport) error {
	e := s.e
	ok, err := e.scrubObject(o)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	rep.BadObjects++
	first := o.Base &^ uint64(layout.PageSize-1)
	last := (o.Base + o.Capacity - 1) &^ uint64(layout.PageSize-1)
	repairFailed := false
	for p := first; p <= last; p += layout.PageSize {
		if err := e.repairPage(p); err != nil {
			repairFailed = true
			break
		}
	}
	if !repairFailed {
		if ok, err := e.scrubObject(o); err == nil && ok {
			rep.Repaired++
			return nil
		}
	}
	rep.Unrecovered++
	return nil
}

// stepParity verifies one bounded column range of the current zone's
// parity invariant, repairing as it goes, then advances the cursor;
// after the last zone the cursor wraps to (0, 0), signalling the end of
// the parity phase (and the pass).
//
// Repair order matters for incremental scrubbing: a verify mismatch can
// mean scribbled parity (recompute it from data) or scribbled DATA that
// the object phase of this pass has already moved past — recomputing
// parity over scribbled data would pave over the only redundancy that
// can restore it. So before recomputing, the overlapping live objects
// are checksum-verified and repaired; only a mismatch that survives
// clean objects is treated as stale parity.
func (s *Scrubber) stepParity(rep *ScrubReport) error {
	e := s.e
	if !e.mode.Parity() {
		s.zone, s.col = 0, 0
		return nil
	}
	span := s.cfg.parityBytesPerStep()
	start := s.col
	end := min(start+span, e.geo.RowSize())
	// Bounded convergence: one fix per page column in the range, plus
	// slack for the data-vs-parity disambiguation retries.
	guard := int((end-start)/layout.PageSize) + 16
	// Verification resumes at the last repaired column, never back at
	// the range start: columns below it are already verified and a
	// repair cannot invalidate them, so a range full of stale columns
	// costs one linear sweep, not O(columns²) re-reads under freeze.
	from := start
	for {
		bad, err := e.par.VerifyRange(s.zone, from, end-from)
		if err != nil {
			// A data row turned poisoned between steps (injection races
			// the cursor): repair the page and re-verify rather than
			// failing the step. If the page is beyond repair, quarantine
			// it and skip the rest of the range — it is unverifiable
			// without the page, and wedging the cursor here would stop
			// background verification for the whole pool.
			var pe *nvm.PoisonError
			if errors.As(err, &pe) && guard > 0 {
				guard--
				if rerr := e.repairPage(pe.Off); rerr != nil {
					if !s.badPages[pe.Off] {
						s.badPages[pe.Off] = true
						rep.PagesUnrecovered++
					}
					break
				}
				rep.PagesHealed++
				continue
			}
			return fmt.Errorf("core: scrub parity verify zone %d: %w", s.zone, err)
		}
		if bad < 0 {
			break
		}
		if guard == 0 {
			return fmt.Errorf("core: scrub parity repair not converging in zone %d", s.zone)
		}
		guard--
		col := uint64(bad) &^ uint64(layout.PageSize-1)
		// Scribbled data vs scribbled parity: verify (and repair from
		// parity) the live objects overlapping this column's data pages
		// first. If that repaired anything, re-verify before touching
		// parity. A triage error aborts the step — recomputing parity
		// from data we could not verify would pave over the only
		// redundancy that can restore it.
		if e.mode.Checksums() {
			repaired, err := s.repairObjectsOnColumn(col, rep)
			if err != nil {
				return fmt.Errorf("core: scrub parity triage zone %d col %#x: %w", s.zone, col, err)
			}
			if repaired {
				from = col
				continue
			}
		}
		n := min(uint64(layout.PageSize), e.geo.RowSize()-col)
		if err := e.par.RecomputeColumn(s.zone, col, n); err != nil {
			return err
		}
		rep.ParityFixes++
		from = col
	}
	s.col = end
	if s.col >= e.geo.RowSize() {
		s.col = 0
		s.zone++
		if s.zone >= e.geo.NumZones {
			s.zone = 0
		}
	}
	return nil
}

// repairObjectsOnColumn checksum-verifies every live object overlapping
// the data pages of the given column in the scrubber's current zone,
// repairing mismatches from parity. It reports whether any object was
// repaired (the caller then re-verifies the column before concluding the
// parity itself is stale) and propagates triage errors — the caller
// must NOT recompute parity over data this function failed to verify.
func (s *Scrubber) repairObjectsOnColumn(col uint64, rep *ScrubReport) (bool, error) {
	e := s.e
	// The column's data pages, one per data row.
	lo := make([]uint64, 0, e.geo.DataRows())
	hi := make([]uint64, 0, e.geo.DataRows())
	for r := uint64(0); r < e.geo.DataRows(); r++ {
		base := e.geo.RowByteOff(s.zone, r, col)
		lo = append(lo, base)
		hi = append(hi, base+layout.PageSize)
	}
	overlaps := func(o alloc.ObjectInfo) bool {
		for i := range lo {
			if o.Base < hi[i] && o.Base+o.Capacity > lo[i] {
				return true
			}
		}
		return false
	}
	repairedBefore := rep.Repaired
	// Only this zone's objects can overlap its rows; start the cursor
	// just below the zone's first chunk and stop at the first object of
	// a later zone (address order), so the triage walk is zone-local
	// and stays inside the step's freeze-window budget.
	var objs []alloc.ObjectInfo
	zoneStart := e.geo.ChunkBase(s.zone, 0)
	e.heap.ObjectsFrom(zoneStart-1, func(o alloc.ObjectInfo) bool {
		if o.Zone != s.zone {
			return false
		}
		if overlaps(o) {
			objs = append(objs, o)
		}
		return true
	})
	for _, o := range objs {
		// Not counted in rep.Objects: these verifications are repair
		// triage, not pass coverage (the object cursor still owns that).
		if err := s.scrubOneObject(o, rep); err != nil {
			return rep.Repaired > repairedBefore, err
		}
	}
	return rep.Repaired > repairedBefore, nil
}

// Scrub verifies and restores the whole pool's integrity: every known-bad
// page, every live object's checksum, and every zone's parity invariant.
// It is the compatibility fixpoint loop over Scrubber.Step — the pool is
// no longer frozen for the whole pass, only for each bounded step, so
// transactions and reads interleave between steps (§3.3 "online
// scrubbing"). The report is the merged report of one full pass.
func (e *Engine) Scrub() (ScrubReport, error) {
	sc := e.NewScrubber(ScrubberConfig{})
	total := ScrubReport{ChecksumsVerified: e.mode.Checksums()}
	for {
		rep, done, err := sc.Step()
		total.Add(rep)
		if err != nil {
			return total, err
		}
		if done {
			return total, nil
		}
	}
}

// scrubObject verifies one object's checksum against its header, reading
// raw (the pool is frozen; no recursive recovery).
func (e *Engine) scrubObject(o alloc.ObjectInfo) (bool, error) {
	var hb [layout.ObjHeaderSize]byte
	if err := e.dev.ReadAt(hb[:], o.Base); err != nil {
		return false, nil // poisoned mid-scrub: treat as corrupt
	}
	hdr := layout.DecodeObjHeader(hb[:])
	if hdr.Size < layout.ObjHeaderSize || hdr.Size > o.Capacity {
		return false, nil // implausible header is corruption
	}
	img := make([]byte, hdr.Size)
	if err := e.dev.ReadAt(img, o.Base); err != nil {
		return false, nil
	}
	return layout.ObjChecksum(img) == hdr.Csum, nil
}

// InjectRandomFault corrupts a pseudo-randomly chosen live object — the
// §4.6 fault-injection hook behind the server's INJECT op, for proving
// the maintenance subsystem heals live pools. Even seeds scribble the
// first bytes of the object's checksummed image (software corruption);
// odd seeds poison the page holding it (media error). Both bypass all
// library bookkeeping. It reports false when the pool has no live
// objects. The caller must exclude concurrent transactions (the shard
// worker runs it under its gate).
func (e *Engine) InjectRandomFault(seed int64) bool {
	n := e.heap.CountLive()
	if n == 0 {
		return false
	}
	idx := int(mix64(uint64(seed)) % uint64(n))
	var target alloc.ObjectInfo
	found := false
	i := 0
	e.heap.Objects(func(o alloc.ObjectInfo) bool {
		if i == idx {
			target, found = o, true
			return false
		}
		i++
		return true
	})
	if !found {
		return false
	}
	if seed%2 == 0 {
		// Scribble inside the checksummed image (header + user data) so
		// the object phase detects it; InjectScribble routes through the
		// engine's deterministic scribbler.
		off := target.Base + layout.ObjHeaderSize
		if off+8 > target.Base+target.Capacity {
			off = target.Base
		}
		e.InjectScribble(off, 8, seed)
	} else {
		e.InjectMediaError(target.Base)
	}
	return true
}

// mix64 is the splitmix64 finalizer (decorrelates sequential seeds).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// startScrubber launches the background scrubbing goroutine when the
// engine runs with a scrub interval (§3.3 "Scrub" mode). Each triggered
// pass runs as a sequence of bounded steps, so even the engine-level
// scrubber no longer freezes the pool for a whole pass.
func (e *Engine) startScrubber() {
	if e.opts.ScrubEvery == 0 {
		return
	}
	e.scrubReq = make(chan struct{}, 1)
	e.scrubDone = make(chan struct{})
	go func() {
		defer close(e.scrubDone)
		for range e.scrubReq {
			if e.closed.Load() {
				return
			}
			_, _ = e.Scrub()
		}
	}()
}

func (e *Engine) stopScrubber() {
	if e.scrubReq != nil {
		close(e.scrubReq)
		<-e.scrubDone
	}
}

// maybeScrub triggers the scrubbing thread every ScrubEvery committed
// transactions.
func (e *Engine) maybeScrub() {
	if e.opts.ScrubEvery == 0 {
		return
	}
	if n := e.txCounter.Add(1); n%e.opts.ScrubEvery == 0 {
		select {
		case e.scrubReq <- struct{}{}:
		default: // a pass is already queued
		}
	}
}
