package core

import (
	"fmt"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
)

// ScrubReport summarizes one scrubbing pass (§3.3 "Scrub" mode).
type ScrubReport struct {
	Objects     int // live objects examined
	BadObjects  int // checksum mismatches found
	Repaired    int // objects restored from parity
	Unrecovered int // objects that stayed corrupt
	ParityFixes int // parity columns recomputed
	PagesHealed int // poisoned pages repaired
}

// Scrub verifies and restores the whole pool's integrity: every live
// object's checksum, every zone's parity invariant, and any known-bad
// pages. It freezes the pool for the duration, like online recovery.
func (e *Engine) Scrub() (ScrubReport, error) {
	if e.closed.Load() {
		return ScrubReport{}, ErrClosed
	}
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	e.freeze()
	defer e.unfreeze()
	var rep ScrubReport

	// Known-bad pages first (the kernel's bad-page list, §3.3).
	for _, p := range e.dev.PoisonedPages() {
		if err := e.repairPage(p); err != nil {
			return rep, fmt.Errorf("core: scrub page repair %#x: %w", p, err)
		}
		rep.PagesHealed++
	}

	// Object checksums.
	if e.mode.Checksums() {
		var objs []alloc.ObjectInfo
		e.heap.Objects(func(o alloc.ObjectInfo) bool { objs = append(objs, o); return true })
		for _, o := range objs {
			rep.Objects++
			ok, err := e.scrubObject(o)
			if err != nil {
				return rep, err
			}
			if ok {
				continue
			}
			rep.BadObjects++
			// Rebuild every page the object spans from parity, then
			// re-verify.
			first := o.Base &^ uint64(layout.PageSize-1)
			last := (o.Base + o.Capacity - 1) &^ uint64(layout.PageSize-1)
			repairFailed := false
			for p := first; p <= last; p += layout.PageSize {
				if err := e.repairPage(p); err != nil {
					repairFailed = true
					break
				}
			}
			if !repairFailed {
				if ok, err := e.scrubObject(o); err == nil && ok {
					rep.Repaired++
					continue
				}
			}
			rep.Unrecovered++
		}
	}

	// Parity invariant: a stale column (scribbled parity) is recomputed
	// from the data rows.
	if e.mode.Parity() {
		for z := uint64(0); z < e.geo.NumZones; z++ {
			for {
				bad, err := e.par.VerifyZone(z)
				if err != nil {
					return rep, fmt.Errorf("core: scrub parity verify zone %d: %w", z, err)
				}
				if bad < 0 {
					break
				}
				col := uint64(bad) &^ uint64(layout.PageSize-1)
				n := min(uint64(layout.PageSize), e.geo.RowSize()-col)
				if err := e.par.RecomputeColumn(z, col, n); err != nil {
					return rep, err
				}
				rep.ParityFixes++
				if rep.ParityFixes > int(e.geo.RowSize()/layout.PageSize)*int(e.geo.NumZones)+16 {
					return rep, fmt.Errorf("core: scrub parity repair not converging in zone %d", z)
				}
			}
		}
	}
	e.stats.ScrubRuns.Add(1)
	e.stats.ScrubFixed.Add(uint64(rep.Repaired + rep.ParityFixes + rep.PagesHealed))
	return rep, nil
}

// scrubObject verifies one object's checksum against its header, reading
// raw (the pool is frozen; no recursive recovery).
func (e *Engine) scrubObject(o alloc.ObjectInfo) (bool, error) {
	var hb [layout.ObjHeaderSize]byte
	if err := e.dev.ReadAt(hb[:], o.Base); err != nil {
		return false, nil // poisoned mid-scrub: treat as corrupt
	}
	hdr := layout.DecodeObjHeader(hb[:])
	if hdr.Size < layout.ObjHeaderSize || hdr.Size > o.Capacity {
		return false, nil // implausible header is corruption
	}
	img := make([]byte, hdr.Size)
	if err := e.dev.ReadAt(img, o.Base); err != nil {
		return false, nil
	}
	return layout.ObjChecksum(img) == hdr.Csum, nil
}

// startScrubber launches the background scrubbing goroutine when the
// engine runs with a scrub interval (§3.3 "Scrub" mode).
func (e *Engine) startScrubber() {
	if e.opts.ScrubEvery == 0 {
		return
	}
	e.scrubReq = make(chan struct{}, 1)
	e.scrubDone = make(chan struct{})
	go func() {
		defer close(e.scrubDone)
		for range e.scrubReq {
			if e.closed.Load() {
				return
			}
			_, _ = e.Scrub()
		}
	}()
}

func (e *Engine) stopScrubber() {
	if e.scrubReq != nil {
		close(e.scrubReq)
		<-e.scrubDone
	}
}

// maybeScrub triggers the scrubbing thread every ScrubEvery committed
// transactions.
func (e *Engine) maybeScrub() {
	if e.opts.ScrubEvery == 0 {
		return
	}
	if n := e.txCounter.Add(1); n%e.opts.ScrubEvery == 0 {
		select {
		case e.scrubReq <- struct{}{}:
		default: // a pass is already queued
		}
	}
}
