package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/logrec"
	"github.com/pangolin-go/pangolin/internal/mbuf"
)

// Log record kinds shared by both engine families.
const (
	recData     uint16 = 1 // redo: absolute offset + new bytes
	recAllocOp  uint16 = 2 // redo: allocator op (idempotent)
	recSnapshot uint16 = 3 // undo: absolute offset + old bytes
	recRoot     uint16 = 4 // redo: root OID + size
)

// Tx is a transaction. A Tx belongs to one goroutine; concurrent
// transactions each use their own Tx (the paper's one-transaction-per-
// thread rule, §3.4). Two concurrent transactions must not modify the same
// object — the same restriction libpmemobj documents.
type Tx struct {
	e *Engine
	w *logrec.Writer

	bufs *mbuf.Table // pangolin modes

	allocs      []alloc.Reservation
	allocOffs   map[uint64]alloc.Reservation // user-off → reservation (this tx)
	allocSizes  map[uint64]uint64            // user-off → requested user size
	lateRelease []alloc.Reservation          // cancelled allocs, freed at tx end
	frees       []alloc.Op
	freed       map[uint64]bool

	root       *rootRec
	undoSpan   []span    // pmemobj: in-place ranges to persist at commit
	undoRecs   []undoRec // pmemobj: in-memory rollback copies (abort path)
	covered    []span    // pmemobj: snapshotted intervals (dedup, sorted)
	directOpen map[uint64]bool

	// Table 3 accounting.
	statAllocBytes uint64
	statModBytes   uint64
	statFreeBytes  uint64
	statObjs       map[uint64]bool

	done bool
}

type rootRec struct {
	oid  layout.OID
	size uint64
}

type span struct{ off, n uint64 }

type undoRec struct {
	off uint64
	old []byte
}

// markedBytes sums a buffer's declared modified ranges.
func markedBytes(b *mbuf.Buf) uint64 {
	var n uint64
	for _, r := range b.Ranges() {
		n += r.Len
	}
	return n
}

// Begin starts a transaction. It blocks while the pool is frozen for
// recovery (§3.6) and fails once the engine is closed.
func (e *Engine) Begin() (*Tx, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.waitUnfrozen()
	w, err := e.lm.Begin()
	if err != nil {
		return nil, err
	}
	tx := &Tx{
		e:          e,
		w:          w,
		allocOffs:  make(map[uint64]alloc.Reservation),
		allocSizes: make(map[uint64]uint64),
		freed:      make(map[uint64]bool),
		statObjs:   make(map[uint64]bool),
		directOpen: make(map[uint64]bool),
	}
	if e.mode.MicroBuffered() {
		tx.bufs = mbuf.NewTable()
	}
	return tx, nil
}

// Run executes fn inside a transaction, committing on nil return and
// aborting (and returning fn's error) otherwise.
func (e *Engine) Run(fn func(*Tx) error) error {
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (tx *Tx) checkActive() error {
	if tx.done {
		return fmt.Errorf("core: transaction already finished")
	}
	return nil
}

func (tx *Tx) checkOID(oid layout.OID) error {
	if oid.IsNil() {
		return fmt.Errorf("core: nil OID")
	}
	if oid.Pool != tx.e.uuid {
		return fmt.Errorf("core: OID from pool %#x used in pool %#x", oid.Pool, tx.e.uuid)
	}
	if tx.freed[oid.Off] {
		return fmt.Errorf("core: object %#x freed by this transaction", oid.Off)
	}
	return nil
}

// Alloc allocates a persistent object with size bytes of user data and the
// given type, returning its OID and (in Pangolin modes) a micro-buffer
// image to initialize; in pmemobj modes the returned slice is the direct
// NVMM user data. The allocation becomes durable only at Commit.
func (tx *Tx) Alloc(size uint64, typ uint32) (layout.OID, []byte, error) {
	if err := tx.checkActive(); err != nil {
		return layout.NilOID, nil, err
	}
	if size == 0 {
		return layout.NilOID, nil, fmt.Errorf("core: zero-size allocation")
	}
	res, err := tx.e.heap.Reserve(size)
	if err != nil {
		return layout.NilOID, nil, err
	}
	oid := layout.OID{Pool: tx.e.uuid, Off: res.UserOff}
	hdr := layout.ObjHeader{Size: size + layout.ObjHeaderSize, Type: typ}
	tx.allocs = append(tx.allocs, res)
	tx.allocOffs[oid.Off] = res
	tx.allocSizes[oid.Off] = size
	tx.statAllocBytes += size
	tx.statObjs[oid.Off] = true

	if tx.e.mode.MicroBuffered() {
		b := mbuf.New(oid, hdr.Size, tx.e.canary)
		b.Flags |= mbuf.FlagAllocated
		b.SetHeader(hdr)
		b.MarkAllModified()
		tx.bufs.Insert(b)
		tx.e.stats.mbufAdd(int64(b.Footprint()))
		return oid, b.UserData(), nil
	}
	// pmemobj: initialize the object in place (it is unreachable until
	// the allocator op commits, so no undo is needed for fresh space —
	// except under Pmemobj-P, whose commit-time parity patches need the
	// pre-init bytes, and whose rollback must restore them to keep
	// parity consistent).
	d := tx.e.dev
	if tx.e.mode.Parity() {
		if err := tx.snapshot(res.Base, hdr.Size); err != nil {
			tx.e.heap.Release(res)
			return layout.NilOID, nil, err
		}
	}
	d.MarkDirty(res.Base, hdr.Size)
	img := d.Slice(res.Base, hdr.Size)
	for i := range img {
		img[i] = 0
	}
	layout.EncodeObjHeader(img, hdr)
	tx.undoSpan = append(tx.undoSpan, span{off: res.Base, n: hdr.Size})
	return oid, img[layout.ObjHeaderSize:], nil
}

// Free deallocates the object at commit. Freeing an object allocated in
// the same transaction cancels the allocation. Objects opened in this
// transaction are dropped from its write set.
func (tx *Tx) Free(oid layout.OID) error {
	if err := tx.checkActive(); err != nil {
		return err
	}
	if err := tx.checkOID(oid); err != nil {
		return err
	}
	if res, ok := tx.allocOffs[oid.Off]; ok {
		// Allocated here: cancel the allocation. The reservation is
		// released only when the transaction ends, so no concurrent
		// transaction can write the slot while this one still holds
		// snapshots or parity state referring to its bytes.
		delete(tx.allocOffs, oid.Off)
		for i := range tx.allocs {
			if tx.allocs[i].UserOff == oid.Off {
				tx.allocs = append(tx.allocs[:i], tx.allocs[i+1:]...)
				break
			}
		}
		tx.lateRelease = append(tx.lateRelease, res)
		if tx.bufs != nil {
			if b, ok := tx.bufs.Lookup(oid); ok {
				tx.e.stats.mbufAdd(-int64(b.Footprint()))
				tx.bufs.Remove(oid)
			}
		}
		tx.statAllocBytes -= tx.allocSizes[oid.Off]
		delete(tx.allocSizes, oid.Off)
		return nil
	}
	hdr, err := tx.e.readHeaderChecked(oid, true)
	if err != nil {
		return err
	}
	op, err := tx.e.heap.StageFree(oid.HeaderOff())
	if err != nil {
		return err
	}
	tx.frees = append(tx.frees, op)
	tx.freed[oid.Off] = true
	tx.statFreeBytes += hdr.UserSize()
	tx.statObjs[oid.Off] = true
	if tx.bufs != nil {
		if b, ok := tx.bufs.Lookup(oid); ok {
			b.Flags |= mbuf.FlagFreed
			tx.e.stats.mbufAdd(-int64(b.Footprint()))
			tx.bufs.Remove(oid)
		}
	}
	return nil
}

// Open gives write access to an object: in Pangolin modes it creates (or
// returns) the transaction's micro-buffer, verifying the object checksum
// on first open (VerifyDefault); in pmemobj modes it snapshots the whole
// object to the undo log and returns the direct NVMM bytes. The returned
// slice is the user data.
//
// Pangolin callers that modify the buffer must declare the modified ranges
// with AddRange (pgl_tx_add_range); whole-object modification can be
// declared with AddRange(oid, 0, len).
func (tx *Tx) Open(oid layout.OID) ([]byte, error) {
	if err := tx.checkActive(); err != nil {
		return nil, err
	}
	if err := tx.checkOID(oid); err != nil {
		return nil, err
	}
	if tx.bufs != nil {
		b, err := tx.openBuf(oid)
		if err != nil {
			return nil, err
		}
		return b.UserData(), nil
	}
	return tx.openDirect(oid)
}

// openBuf creates or fetches the micro-buffer for oid (§3.2).
func (tx *Tx) openBuf(oid layout.OID) (*mbuf.Buf, error) {
	if b, ok := tx.bufs.Lookup(oid); ok {
		return b, nil
	}
	verify := tx.e.mode.Checksums() // both Default and Conservative verify at open
	img, hdr, err := tx.e.readImage(oid, verify)
	if err != nil {
		return nil, err
	}
	b := mbuf.New(oid, hdr.Size, tx.e.canary)
	copy(b.Image(), img)
	b.OrigCsum = hdr.Csum
	tx.bufs.Insert(b)
	tx.e.stats.mbufAdd(int64(b.Footprint()))
	tx.statObjs[oid.Off] = true
	return b, nil
}

// openDirect is the pmemobj path: undo-snapshot the object, return its
// in-place bytes.
func (tx *Tx) openDirect(oid layout.OID) ([]byte, error) {
	hdr, err := tx.e.readHeaderChecked(oid, true)
	if err != nil {
		return nil, err
	}
	d := tx.e.dev
	if tx.directOpen[oid.Off] {
		// Already snapshotted by this transaction.
		return d.Slice(oid.Off, hdr.UserSize()), nil
	}
	if err := tx.snapshot(oid.HeaderOff(), hdr.Size); err != nil {
		return nil, err
	}
	tx.directOpen[oid.Off] = true
	tx.statModBytes += hdr.UserSize()
	tx.statObjs[oid.Off] = true
	// No checksum machinery exists in pmemobj modes: every access is
	// unverified (Table 4 accounting).
	tx.e.stats.UnverifiedBytes.Add(hdr.UserSize())
	d.MarkDirty(oid.HeaderOff(), hdr.Size)
	img := d.Slice(oid.HeaderOff(), hdr.Size)
	tx.undoSpan = append(tx.undoSpan, span{off: oid.HeaderOff(), n: hdr.Size})
	return img[layout.ObjHeaderSize:], nil
}

// AddRange declares that user-data bytes [off, off+n) of the object will
// be modified (pgl_tx_add_range / pmemobj_tx_add_range). In Pangolin
// modes this bounds logging, checksum refresh, and parity updates to the
// declared ranges; in pmemobj modes it snapshots just that range.
func (tx *Tx) AddRange(oid layout.OID, off, n uint64) ([]byte, error) {
	if err := tx.checkActive(); err != nil {
		return nil, err
	}
	if err := tx.checkOID(oid); err != nil {
		return nil, err
	}
	if tx.bufs != nil {
		b, err := tx.openBuf(oid)
		if err != nil {
			return nil, err
		}
		if off+n > b.Header().UserSize() {
			return nil, fmt.Errorf("core: range [%d,%d) exceeds object size %d", off, off+n, b.Header().UserSize())
		}
		before := markedBytes(b)
		b.MarkModified(layout.ObjHeaderSize+off, n)
		if b.Flags&mbuf.FlagAllocated == 0 {
			// Count only newly declared bytes (re-adding a range is
			// free, like pmemobj_tx_add_range on a snapshotted range).
			tx.statModBytes += markedBytes(b) - before
		}
		return b.UserData(), nil
	}
	hdr, err := tx.e.readHeaderChecked(oid, true)
	if err != nil {
		return nil, err
	}
	if off+n > hdr.UserSize() {
		return nil, fmt.Errorf("core: range [%d,%d) exceeds object size %d", off, off+n, hdr.UserSize())
	}
	abs := oid.Off + off
	if err := tx.snapshot(abs, n); err != nil {
		return nil, err
	}
	tx.statModBytes += n
	tx.statObjs[oid.Off] = true
	// pmemobj has no checksums: the range access is unverified
	// (Table 4 accounting).
	tx.e.stats.UnverifiedBytes.Add(n)
	d := tx.e.dev
	d.MarkDirty(abs, n)
	tx.undoSpan = append(tx.undoSpan, span{off: abs, n: n})
	// Return the whole user-data view (same shape as the Pangolin path);
	// only the declared range is snapshotted and persisted.
	return d.Slice(oid.Off, hdr.UserSize()), nil
}

// snapshot durably appends undo records for the not-yet-covered parts of
// [off, off+n) before the caller writes in place (§2.3), activating the
// lane on first use. Re-snapshotting a covered range is free, as with
// libpmemobj's range tree — and necessary for Pmemobj-P, whose parity
// patches pair each byte's first snapshot with its final contents.
func (tx *Tx) snapshot(off, n uint64) error {
	if tx.w == nil {
		return fmt.Errorf("core: transaction log unavailable")
	}
	if tx.undoSpan == nil {
		tx.w.Activate()
	}
	for _, seg := range subtractCovered(tx.covered, span{off: off, n: n}) {
		if err := tx.snapshotRaw(seg.off, seg.n); err != nil {
			return err
		}
		tx.covered = insertSpan(tx.covered, seg)
	}
	return nil
}

func (tx *Tx) snapshotRaw(off, n uint64) error {
	maxP := tx.e.lm.MaxPayload() - 8
	for n > 0 {
		chunk := min(n, maxP)
		payload := make([]byte, 8+chunk)
		binary.LittleEndian.PutUint64(payload, off)
		if err := tx.e.dev.ReadAt(payload[8:], off); err != nil {
			return err
		}
		if err := tx.w.AppendDurable(recSnapshot, payload); err != nil {
			return err
		}
		tx.undoRecs = append(tx.undoRecs, undoRec{off: off, old: payload[8:]})
		tx.e.stats.LoggedBytes.Add(uint64(len(payload)))
		off += chunk
		n -= chunk
	}
	return nil
}

// subtractCovered returns the parts of s not covered by the sorted,
// disjoint interval list.
func subtractCovered(covered []span, s span) []span {
	var out []span
	cur := s
	for _, c := range covered {
		if c.off+c.n <= cur.off {
			continue
		}
		if c.off >= cur.off+cur.n {
			break
		}
		if c.off > cur.off {
			out = append(out, span{off: cur.off, n: c.off - cur.off})
		}
		covEnd := c.off + c.n
		if covEnd >= cur.off+cur.n {
			return out
		}
		cur = span{off: covEnd, n: cur.off + cur.n - covEnd}
	}
	if cur.n > 0 {
		out = append(out, cur)
	}
	return out
}

// insertSpan adds s to a sorted disjoint interval list, merging
// neighbours. The insert is done in place: binary-search the merge
// window, coalesce every overlapping or adjacent span into s, and shift
// the tail once — no re-sort, so a transaction inserting n small ranges
// pays O(n log n) total instead of the O(n² log n) a per-insert sort
// costs.
func insertSpan(covered []span, s span) []span {
	start, end := s.off, s.off+s.n
	// lo: first span that could merge with s (its end reaches s.off —
	// adjacency merges too, hence >=).
	lo := sort.Search(len(covered), func(i int) bool {
		return covered[i].off+covered[i].n >= start
	})
	// hi: one past the last span that could merge (its start is within or
	// adjacent to s's end).
	hi := lo
	for hi < len(covered) && covered[hi].off <= end {
		start = min(start, covered[hi].off)
		end = max(end, covered[hi].off+covered[hi].n)
		hi++
	}
	merged := span{off: start, n: end - start}
	if hi == lo {
		// No overlap: open a slot at lo.
		covered = append(covered, span{})
		copy(covered[lo+1:], covered[lo:])
		covered[lo] = merged
		return covered
	}
	covered[lo] = merged
	return append(covered[:lo+1], covered[hi:]...)
}

// Get returns read-only access to an object's user data. Inside a
// transaction that has the object open, it returns the micro-buffer view
// (isolation, §3.4); otherwise it returns the NVMM bytes directly without
// copying. Under VerifyConservative the object checksum is verified on
// every Get; under VerifyDefault it is not, and the bytes count toward the
// vulnerability accounting of Table 4.
func (tx *Tx) Get(oid layout.OID) ([]byte, error) {
	if err := tx.checkActive(); err != nil {
		return nil, err
	}
	if err := tx.checkOID(oid); err != nil {
		return nil, err
	}
	if tx.bufs != nil {
		if b, ok := tx.bufs.Lookup(oid); ok {
			return b.UserData(), nil
		}
	}
	return tx.e.Get(oid)
}

// setRoot records a root-pointer update to commit with this transaction.
func (tx *Tx) setRoot(oid layout.OID, size uint64) {
	tx.root = &rootRec{oid: oid, size: size}
}

// Abort discards the transaction. Pangolin aborts never touch NVMM (the
// micro-buffers are simply dropped, §3.4); pmemobj aborts roll back via
// the undo log.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	e := tx.e
	if tx.bufs != nil {
		e.stats.mbufAdd(-int64(tx.bufs.Bytes()))
	}
	for _, res := range tx.allocs {
		if _, live := tx.allocOffs[res.UserOff]; live {
			e.heap.Release(res)
		}
	}
	if tx.undoSpan != nil {
		tx.rollbackDirect()
	}
	tx.releaseLate()
	tx.w.Clear()
	e.stats.Aborts.Add(1)
}

func (tx *Tx) releaseLate() {
	for _, res := range tx.lateRelease {
		tx.e.heap.Release(res)
	}
	tx.lateRelease = nil
}

// rollbackDirect restores pmemobj in-place writes from the snapshots taken
// during this transaction (abort path; the crash path replays the same
// records from media).
func (tx *Tx) rollbackDirect() {
	for i := len(tx.undoRecs) - 1; i >= 0; i-- {
		r := tx.undoRecs[i]
		tx.e.dev.WriteAt(r.off, r.old)
		tx.e.dev.Persist(r.off, uint64(len(r.old)))
	}
	if tx.e.replica != nil {
		// Resync the replica over the rolled-back ranges.
		for _, s := range tx.undoSpan {
			tx.e.replica.WriteAt(s.off, tx.e.dev.Slice(s.off, s.n))
			tx.e.replica.Persist(s.off, s.n)
		}
	}
}
