package core

import (
	"encoding/binary"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/mbuf"
	"github.com/pangolin-go/pangolin/internal/xor"
)

// applyRange is one committed byte-range update: new bytes from the
// micro-buffer and the matching old NVMM bytes (for parity deltas and
// incremental checksums).
type applyRange struct {
	off uint64
	new []byte
	old []byte
}

// Commit makes the transaction durable and applies it. For Pangolin modes
// this is the paper's protocol (§3.4): verify canaries, refresh checksums
// incrementally, persist + replicate the redo log, set the commit flag
// (durability point), write back objects with non-temporal stores, fold
// old⊕new deltas into zone parity, apply allocator metadata ops, then
// garbage-collect the log and micro-buffers. For pmemobj modes it
// persists the in-place writes, mirrors them to the replica (Pmemobj-R),
// flips the lane from undo to committed, and applies metadata ops.
func (tx *Tx) Commit() error {
	if err := tx.checkActive(); err != nil {
		return err
	}
	tx.done = true
	e := tx.e
	var err error
	if e.mode.MicroBuffered() {
		err = tx.commitPangolin()
	} else {
		err = tx.commitPmemobj()
	}
	if err == nil {
		e.stats.Commits.Add(1)
		e.stats.TxCount.Add(1)
		e.stats.TxAllocBytes.Add(tx.statAllocBytes)
		e.stats.TxModBytes.Add(tx.statModBytes)
		e.stats.TxFreeBytes.Add(tx.statFreeBytes)
		e.stats.TxAllocObjs.Add(uint64(len(tx.allocs)))
		e.stats.TxObjects.Add(uint64(len(tx.statObjs)))
		e.maybeScrub()
	}
	return err
}

func (tx *Tx) commitPangolin() error {
	e := tx.e
	defer func() {
		e.stats.mbufAdd(-int64(tx.bufs.Bytes()))
	}()

	// Canary check before anything can reach NVMM (§3.2). A clobbered
	// canary aborts the transaction rather than propagating corruption.
	for _, b := range tx.bufs.All() {
		if err := b.CheckCanaries(); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	work := tx.gatherWork()
	if len(work) == 0 && len(tx.allocs) == 0 && len(tx.frees) == 0 && tx.root == nil {
		tx.w.Clear()
		e.stats.EmptyTxs.Add(1)
		return nil
	}

	// Read the old NVMM bytes for every modified range: the inputs to
	// incremental checksums and parity deltas. This happens before the
	// commit point, so media faults here still recover online.
	ranges, err := tx.collectRanges(work)
	if err != nil {
		tx.abortReleasing()
		return err
	}
	if e.mode.Checksums() {
		if err := tx.refreshChecksums(work, &ranges); err != nil {
			tx.abortReleasing()
			return err
		}
	}

	// Enter the commit section: recovery freezes commits here.
	e.waitUnfrozen()
	e.commitGate.RLock()
	defer e.commitGate.RUnlock()

	// Log: data records, allocator ops, root update; then the commit
	// flag — the durability point.
	maxP := e.lm.MaxPayload() - 8
	for _, r := range ranges {
		off, data := r.off, r.new
		for len(data) > 0 {
			n := min(uint64(len(data)), maxP)
			payload := make([]byte, 8+n)
			binary.LittleEndian.PutUint64(payload, off)
			copy(payload[8:], data[:n])
			if err := tx.w.Append(recData, payload); err != nil {
				tx.abortReleasing()
				return err
			}
			e.stats.LoggedBytes.Add(8 + n)
			off += n
			data = data[n:]
		}
	}
	for _, res := range tx.allocs {
		if err := tx.w.Append(recAllocOp, alloc.EncodeOp(res.Op)); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	for _, op := range tx.frees {
		if err := tx.w.Append(recAllocOp, alloc.EncodeOp(op)); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	if tx.root != nil {
		var p [24]byte
		binary.LittleEndian.PutUint64(p[0:], tx.root.oid.Pool)
		binary.LittleEndian.PutUint64(p[8:], tx.root.oid.Off)
		binary.LittleEndian.PutUint64(p[16:], tx.root.size)
		if err := tx.w.Append(recRoot, p[:]); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	tx.w.Commit()

	// Apply: object write-back with NT stores, one fence, then parity.
	for _, r := range ranges {
		e.dev.WriteNT(r.off, r.new)
	}
	e.dev.Fence()
	if e.mode.Parity() {
		for _, r := range ranges {
			delta := make([]byte, len(r.new))
			xor.Delta(delta, r.old, r.new)
			e.updateParitySegments(r.off, delta)
		}
		e.dev.Fence()
	}
	// Allocator metadata (CM entries are parity-covered).
	for _, res := range tx.allocs {
		if err := e.applyAllocOp(res.Op); err != nil {
			return fmt.Errorf("core: applying alloc op: %w (%w)", err, ErrNeedReopen)
		}
	}
	for _, op := range tx.frees {
		if err := e.applyAllocOp(op); err != nil {
			return fmt.Errorf("core: applying free op: %w (%w)", err, ErrNeedReopen)
		}
	}
	if tx.root != nil {
		e.applyRoot(tx.root.oid, tx.root.size)
	}
	// Advance the per-object modification clock to the epoch this commit
	// establishes, invalidating exactly the verified-read cache entries
	// whose objects changed (freed slots count: their offsets may be
	// reused by a later allocation).
	epoch := e.stats.Commits.Load() + 1
	for _, b := range work {
		e.noteModified(b.OID.Off, epoch)
	}
	for _, res := range tx.allocs {
		e.noteModified(res.UserOff, epoch)
	}
	for off := range tx.freed {
		e.noteModified(off, epoch)
	}
	tx.releaseLate()
	tx.w.Clear()
	return nil
}

// gatherWork returns the micro-buffers with changes to persist.
func (tx *Tx) gatherWork() []*mbuf.Buf {
	var work []*mbuf.Buf
	for _, b := range tx.bufs.All() {
		if b.Flags&mbuf.FlagFreed != 0 {
			continue
		}
		if b.Modified() {
			work = append(work, b)
		}
	}
	return work
}

// collectRanges materializes every modified range with its old NVMM bytes.
func (tx *Tx) collectRanges(work []*mbuf.Buf) ([]applyRange, error) {
	e := tx.e
	var out []applyRange
	for _, b := range work {
		base := b.OID.HeaderOff()
		img := b.Image()
		fresh := b.Flags&mbuf.FlagAllocated != 0
		for _, r := range b.Ranges() {
			ar := applyRange{
				off: base + r.Off,
				new: img[r.Off : r.Off+r.Len],
				old: make([]byte, r.Len),
			}
			if fresh {
				// Newly allocated slots hold arbitrary prior bytes;
				// read them for the parity delta (no recovery needed:
				// freshly reserved space is not user data). A media
				// fault here is repaired like any other.
				if err := e.dev.ReadAt(ar.old, ar.off); err != nil {
					if rerr := e.faultRepair(ar.off, r.Len, err); rerr != nil {
						return nil, rerr
					}
					if err := e.dev.ReadAt(ar.old, ar.off); err != nil {
						return nil, err
					}
				}
			} else {
				if err := e.dev.ReadAt(ar.old, ar.off); err != nil {
					if rerr := e.faultRepair(ar.off, r.Len, err); rerr != nil {
						return nil, rerr
					}
					if err := e.dev.ReadAt(ar.old, ar.off); err != nil {
						return nil, err
					}
				}
			}
			out = append(out, ar)
		}
	}
	return out, nil
}

// refreshChecksums updates each modified buffer's stored checksum
// incrementally from its modified ranges (§3.5: cost proportional to the
// modified size, not the object size), then adds the checksum field itself
// as a modified range.
func (tx *Tx) refreshChecksums(work []*mbuf.Buf, ranges *[]applyRange) error {
	for _, b := range work {
		img := b.Image()
		var newSum uint32
		if b.Flags&mbuf.FlagAllocated != 0 {
			newSum = layout.ObjChecksum(img)
		} else {
			sum := b.OrigCsum
			base := b.OID.HeaderOff()
			for _, ar := range *ranges {
				if ar.off < base || ar.off >= base+b.Size() {
					continue
				}
				sum = csum.Update(sum, b.Size(), ar.off-base, ar.old, ar.new)
			}
			newSum = sum
		}
		hdr := b.Header()
		hdr.Csum = newSum
		b.SetHeader(hdr)
		if b.Flags&mbuf.FlagAllocated == 0 {
			// The checksum field (image bytes [12,16)) becomes part of
			// the write-back set. It is excluded from the checksum
			// domain, so no recursive refresh is needed. The old bytes
			// feed the parity delta, so a failed read must go through
			// online recovery like any other — substituting zeros would
			// fold a wrong delta into the zone's parity column.
			var old [4]byte
			off := b.OID.HeaderOff() + 12
			if err := tx.e.dev.ReadAt(old[:], off); err != nil {
				if rerr := tx.e.faultRepair(off, 4, err); rerr != nil {
					return rerr
				}
				if err := tx.e.dev.ReadAt(old[:], off); err != nil {
					return err
				}
			}
			*ranges = append(*ranges, applyRange{
				off: off,
				new: img[12:16],
				old: old[:],
			})
		}
	}
	return nil
}

// updateParitySegments folds a delta at absolute offset off into zone
// parity, splitting at row boundaries (objects may span rows).
func (e *Engine) updateParitySegments(off uint64, delta []byte) {
	for len(delta) > 0 {
		loc := e.geo.Locate(off)
		n := min(uint64(len(delta)), e.geo.RowSize()-loc.Col)
		e.par.Update(loc.Zone, loc.Col, delta[:n])
		off += n
		delta = delta[n:]
	}
}

// applyAllocOp applies an allocator op, folding the CM entry change into
// parity (and mirroring it to the replica pool when one exists).
func (e *Engine) applyAllocOp(op alloc.Op) error {
	return e.heap.Apply(op, func(off uint64, old, new_ []byte) {
		if e.mode.Parity() {
			delta := make([]byte, len(new_))
			xor.Delta(delta, old, new_)
			e.updateParitySegments(off, delta)
			e.dev.Fence()
		}
		if e.replica != nil {
			e.replica.WriteAt(off, new_)
			e.replica.Persist(off, uint64(len(new_)))
		}
	})
}

// abortReleasing is the internal abort used on commit failures after
// tx.done is set.
func (tx *Tx) abortReleasing() {
	e := tx.e
	for _, res := range tx.allocs {
		if _, live := tx.allocOffs[res.UserOff]; live {
			e.heap.Release(res)
		}
	}
	if tx.undoSpan != nil {
		tx.rollbackDirect()
	}
	tx.releaseLate()
	tx.w.Clear()
	e.stats.Aborts.Add(1)
}

func (tx *Tx) commitPmemobj() error {
	e := tx.e
	if len(tx.undoSpan) == 0 && len(tx.allocs) == 0 && len(tx.frees) == 0 && tx.root == nil {
		tx.w.Clear()
		e.stats.EmptyTxs.Add(1)
		return nil
	}
	e.waitUnfrozen()
	e.commitGate.RLock()
	defer e.commitGate.RUnlock()

	// Persist the in-place writes (undo protects them until the lane
	// clears).
	for _, s := range tx.undoSpan {
		e.dev.Flush(s.off, s.n)
	}
	e.dev.Fence()
	// Pmemobj-R: mirror the modified ranges into the replica pool.
	if e.replica != nil {
		for _, s := range tx.undoSpan {
			e.replica.WriteAt(s.off, e.dev.Slice(s.off, s.n))
			e.replica.Flush(s.off, s.n)
		}
		e.replica.Fence()
	}
	// Pmemobj-P (§3.5 extension): fold snapshot⊕current patches into
	// zone parity. Snapshots are deduplicated, so each byte pairs its
	// first logged image with its final contents exactly once. A crash
	// before the commit flag rolls the data back and recomputes parity
	// for these columns; after the flag both are already consistent.
	if e.mode.Parity() {
		for _, rec := range tx.undoRecs {
			if !e.geo.InZoneData(rec.off) {
				continue
			}
			delta := make([]byte, len(rec.old))
			xor.Delta(delta, rec.old, e.dev.Slice(rec.off, uint64(len(rec.old))))
			e.updateParitySegments(rec.off, delta)
		}
		e.dev.Fence()
	}
	// Metadata ops ride the same lane: appending them and flipping the
	// lane to redo-committed makes them atomic with the data commit.
	for _, res := range tx.allocs {
		if err := tx.w.Append(recAllocOp, alloc.EncodeOp(res.Op)); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	for _, op := range tx.frees {
		if err := tx.w.Append(recAllocOp, alloc.EncodeOp(op)); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	if tx.root != nil {
		var p [24]byte
		binary.LittleEndian.PutUint64(p[0:], tx.root.oid.Pool)
		binary.LittleEndian.PutUint64(p[8:], tx.root.oid.Off)
		binary.LittleEndian.PutUint64(p[16:], tx.root.size)
		if err := tx.w.Append(recRoot, p[:]); err != nil {
			tx.abortReleasing()
			return err
		}
	}
	tx.w.Commit() // durability point: undo discarded, metadata committed
	for _, res := range tx.allocs {
		if err := e.applyAllocOp(res.Op); err != nil {
			return fmt.Errorf("core: applying alloc op: %w (%w)", err, ErrNeedReopen)
		}
	}
	for _, op := range tx.frees {
		if err := e.applyAllocOp(op); err != nil {
			return fmt.Errorf("core: applying free op: %w (%w)", err, ErrNeedReopen)
		}
	}
	if tx.root != nil {
		e.applyRoot(tx.root.oid, tx.root.size)
	}
	tx.releaseLate()
	tx.w.Clear()
	return nil
}
