package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// crashSignal aborts execution at a chosen persistence point.
type crashSignal struct{}

// runUntilCrash executes fn, crashing (via the device persist hook) at the
// crashAt-th persistence operation. It reports whether the hook fired and
// whether fn completed.
func runUntilCrash(dev *nvm.Device, crashAt int, fn func()) (crashed, completed bool) {
	count := 0
	dev.SetPersistHook(func() {
		count++
		if count == crashAt {
			panic(crashSignal{})
		}
	})
	defer dev.SetPersistHook(nil)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		fn()
		completed = true
	}()
	return crashed, completed
}

// crashModes are the modes whose crash recovery we sweep. One
// representative per commit protocol family plus the fully protected mode
// and the §3.5 undo+parity extension.
var crashModes = []Mode{Pmemobj, PmemobjR, Pangolin, PangolinMLPC, PmemobjP}

// TestCommitCrashSweep is invariant P3: for every crash point in an
// overwrite transaction's commit and for multiple random cache-eviction
// outcomes, reopening the pool yields either the complete old or the
// complete new object contents — never a mix — with parity and checksums
// intact.
func TestCommitCrashSweep(t *testing.T) {
	for _, mode := range crashModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			oldData := bytes.Repeat([]byte{0xAA}, 300)
			newData := bytes.Repeat([]byte{0xBB}, 300)
			stride, seeds := 1, int64(4)
			if testing.Short() {
				// PR CI samples the sweep; the nightly workflow
				// visits every crash point with every seed.
				stride, seeds = 5, 2
			}
			for crashAt := 1; ; crashAt += stride {
				geo := layout.Default()
				dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
				e, err := Create(dev, geo, Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				var oid layout.OID
				if err := e.Run(func(tx *Tx) error {
					var err error
					var data []byte
					oid, data, err = tx.Alloc(300, 1)
					if err != nil {
						return err
					}
					copy(data, oldData)
					return nil
				}); err != nil {
					t.Fatal(err)
				}

				crashed, completed := runUntilCrash(dev, crashAt, func() {
					err := e.Run(func(tx *Tx) error {
						data, err := tx.AddRange(oid, 0, 300)
						if err != nil {
							return err
						}
						copy(data, newData)
						return nil
					})
					if err != nil {
						t.Errorf("crashAt=%d: commit error: %v", crashAt, err)
					}
				})
				if !crashed && !completed {
					t.Fatalf("crashAt=%d: neither crashed nor completed", crashAt)
				}
				for seed := int64(0); seed < seeds; seed++ {
					img := dev.CrashCopy(nvm.CrashEvictRandom, seed)
					e2, err := Open(img, Options{Mode: mode}, replicaFor(e, mode))
					if err != nil {
						t.Fatalf("crashAt=%d seed=%d: reopen: %v", crashAt, seed, err)
					}
					got, err := e2.Get(oid)
					if err != nil {
						t.Fatalf("crashAt=%d seed=%d: read: %v", crashAt, seed, err)
					}
					if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
						t.Fatalf("crashAt=%d seed=%d: torn object state: %x…", crashAt, seed, got[:8])
					}
					if completed && !bytes.Equal(got, newData) {
						t.Fatalf("crashAt=%d seed=%d: committed data lost", crashAt, seed)
					}
					assertPoolInvariants(t, e2)
					e2.Close()
				}
				e.Close()
				if !crashed {
					return // swept past the last persistence point
				}
				if crashAt > 3000 {
					t.Fatal("sweep did not terminate")
				}
			}
		})
	}
}

// replicaFor returns the replica device to pass to Open, if the mode needs
// one. The crash image shares the replica of the original engine: replica
// pools are separate media, unaffected by the primary's crash image (a
// conservative model — the replica's own unflushed lines are a separate
// concern exercised elsewhere).
func replicaFor(e *Engine, mode Mode) *nvm.Device {
	if !mode.ReplicaPool() {
		return nil
	}
	return e.ReplicaDevice().CrashCopy(nvm.CrashStrict, 0)
}

// assertPoolInvariants checks P1 and P2 on a freshly recovered engine.
func assertPoolInvariants(t *testing.T, e *Engine) {
	t.Helper()
	if e.mode.Parity() {
		for z := uint64(0); z < e.geo.NumZones; z++ {
			bad, err := e.par.VerifyZone(z)
			if err != nil {
				t.Fatalf("parity verify zone %d: %v", z, err)
			}
			if bad != -1 {
				t.Fatalf("parity broken at zone %d column %d after recovery", z, bad)
			}
		}
	}
	if e.mode.Checksums() {
		e.heap.Objects(func(o alloc.ObjectInfo) bool {
			ok, err := e.scrubObject(o)
			if err != nil || !ok {
				t.Fatalf("object at %#x fails checksum after recovery (%v)", o.Base, err)
			}
			return true
		})
	}
}

// TestAllocCrashSweep sweeps crash points across an allocating
// transaction: after recovery the object either exists completely (header,
// data, checksum, CM bit) or not at all.
func TestAllocCrashSweep(t *testing.T) {
	for _, mode := range []Mode{Pmemobj, PangolinMLPC} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			payload := bytes.Repeat([]byte{0x5A}, 200)
			stride := 1
			if testing.Short() {
				stride = 5 // nightly sweeps every crash point
			}
			for crashAt := 1; ; crashAt += stride {
				geo := layout.Default()
				dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
				e, err := Create(dev, geo, Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				baseline := e.heap.CountLive()
				crashed, completed := runUntilCrash(dev, crashAt, func() {
					_ = e.Run(func(tx *Tx) error {
						_, data, err := tx.Alloc(200, 9)
						if err != nil {
							return err
						}
						copy(data, payload)
						return nil
					})
				})
				img := dev.CrashCopy(nvm.CrashEvictRandom, int64(crashAt))
				e2, err := Open(img, Options{Mode: mode}, replicaFor(e, mode))
				if err != nil {
					t.Fatalf("crashAt=%d: reopen: %v", crashAt, err)
				}
				live := e2.heap.CountLive()
				switch {
				case completed && live != baseline+1:
					t.Fatalf("crashAt=%d: committed alloc lost (live %d)", crashAt, live)
				case live != baseline && live != baseline+1:
					t.Fatalf("crashAt=%d: allocator inconsistent (live %d)", crashAt, live)
				}
				if live == baseline+1 {
					// The object must be complete: find it and check.
					found := false
					e2.heap.Objects(func(o alloc.ObjectInfo) bool {
						hdrOff := o.Base
						var hb [layout.ObjHeaderSize]byte
						if err := e2.dev.ReadAt(hb[:], hdrOff); err != nil {
							t.Fatalf("crashAt=%d: header read: %v", crashAt, err)
						}
						hdr := layout.DecodeObjHeader(hb[:])
						if hdr.Type != 9 {
							return true
						}
						found = true
						img := make([]byte, hdr.Size)
						if err := e2.dev.ReadAt(img, hdrOff); err != nil {
							t.Fatalf("crashAt=%d: image read: %v", crashAt, err)
						}
						if !bytes.Equal(img[layout.ObjHeaderSize:], payload) {
							t.Fatalf("crashAt=%d: recovered object data wrong", crashAt)
						}
						if e2.mode.Checksums() && layout.ObjChecksum(img) != hdr.Csum {
							t.Fatalf("crashAt=%d: recovered object checksum stale", crashAt)
						}
						return false
					})
					if !found {
						t.Fatalf("crashAt=%d: live object of type 9 not found", crashAt)
					}
				}
				if e2.mode.Parity() {
					for z := uint64(0); z < e2.geo.NumZones; z++ {
						if bad, _ := e2.par.VerifyZone(z); bad != -1 {
							t.Fatalf("crashAt=%d: parity broken at col %d", crashAt, bad)
						}
					}
				}
				e2.Close()
				e.Close()
				if !crashed {
					return
				}
				if crashAt > 3000 {
					t.Fatal("sweep did not terminate")
				}
			}
		})
	}
}

// TestConcurrentCommitsKeepInvariants hammers the engine with concurrent
// transactions and verifies parity/checksum invariants afterwards.
func TestConcurrentCommitsKeepInvariants(t *testing.T) {
	for _, mode := range []Mode{PangolinMLPC, PmemobjR} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			const workers = 8
			const opsPerWorker = 40
			// Pre-allocate one object per worker (no shared-object
			// writes, per the concurrency contract).
			oids := make([]layout.OID, workers)
			for i := range oids {
				if err := e.Run(func(tx *Tx) error {
					var err error
					oids[i], _, err = tx.Alloc(512, uint32(i))
					return err
				}); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						err := e.Run(func(tx *Tx) error {
							off := uint64((w*37 + i*11) % 400)
							data, err := tx.AddRange(oids[w], off, 64)
							if err != nil {
								return err
							}
							for j := uint64(0); j < 64; j++ {
								data[off+j] = byte(w*opsPerWorker + i)
							}
							// Occasionally churn allocations too.
							if i%8 == 3 {
								o, _, err := tx.Alloc(64, 99)
								if err != nil {
									return err
								}
								return tx.Free(o)
							}
							return nil
						})
						if err != nil {
							errCh <- fmt.Errorf("worker %d op %d: %w", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			verifyParity(t, e)
			verifyChecksums(t, e)
			// Each worker's last write must be visible.
			for w := 0; w < workers; w++ {
				got, err := e.Get(oids[w])
				if err != nil {
					t.Fatal(err)
				}
				off := (w*37 + (opsPerWorker-1)*11) % 400
				want := byte(w*opsPerWorker + opsPerWorker - 1)
				if got[off] != want {
					t.Fatalf("worker %d: byte %d = %d, want %d", w, off, got[off], want)
				}
			}
		})
	}
}

// TestRecoveryDuringLoad injects a media error while concurrent
// transactions run; the faulting reader recovers online and the system
// keeps going.
func TestRecoveryDuringLoad(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var victim layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		victim, data, err = tx.Alloc(1024, 1)
		if err != nil {
			return err
		}
		copy(data, "victim object")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	others := make([]layout.OID, 4)
	for i := range others {
		if err := e.Run(func(tx *Tx) error {
			var err error
			others[i], _, err = tx.Alloc(512, 2)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := range others {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.Run(func(tx *Tx) error {
					data, err := tx.AddRange(others[i], 0, 32)
					if err != nil {
						return err
					}
					data[0] = byte(n)
					return nil
				}); err != nil {
					panic(err)
				}
				n++
			}
		}(i)
	}
	e.InjectMediaError(victim.Off)
	got, err := e.Get(victim)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("online recovery under load failed: %v", err)
	}
	if string(got[:13]) != "victim object" {
		t.Fatalf("recovered %q", got[:13])
	}
	verifyParity(t, e)
	verifyChecksums(t, e)
}

// TestReopenAfterManyTransactions exercises the full reopen path with a
// populated heap.
func TestReopenAfterManyTransactions(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			type obj struct {
				oid  layout.OID
				data []byte
			}
			var objs []obj
			for i := 0; i < 40; i++ {
				if err := e.Run(func(tx *Tx) error {
					size := uint64(50 + i*13)
					oid, data, err := tx.Alloc(size, uint32(i))
					if err != nil {
						return err
					}
					for j := range data {
						data[j] = byte(i + j)
					}
					objs = append(objs, obj{oid, append([]byte(nil), data...)})
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Free every third object.
			for i := 0; i < len(objs); i += 3 {
				if err := e.Run(func(tx *Tx) error { return tx.Free(objs[i].oid) }); err != nil {
					t.Fatal(err)
				}
			}
			e2 := reopenEngine(t, e, true, 42)
			for i, o := range objs {
				if i%3 == 0 {
					continue // freed
				}
				got, err := e2.Get(o.oid)
				if err != nil {
					t.Fatalf("%v: object %d: %v", mode, i, err)
				}
				if !bytes.Equal(got, o.data) {
					t.Fatalf("%v: object %d content changed across reopen", mode, i)
				}
			}
			verifyParity(t, e2)
			verifyChecksums(t, e2)
		})
	}
}
