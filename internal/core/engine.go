package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/logrec"
	"github.com/pangolin-go/pangolin/internal/nvm"
	"github.com/pangolin-go/pangolin/internal/parity"
)

// ErrNeedReopen reports a fault the engine cannot repair online (e.g. a
// media error encountered mid-commit, or concurrent double faults). The
// pool must be closed and reopened; open-time recovery will restore
// consistency. This mirrors the paper's rule that online recovery only
// runs for threads that have not started committing (§3.6).
var ErrNeedReopen = errors.New("core: unrecoverable online; reopen the pool to recover")

// ErrClosed reports use of a closed engine.
var ErrClosed = errors.New("core: pool is closed")

// Stats aggregates engine activity counters. All fields are atomics and
// safe to read concurrently.
type Stats struct {
	Commits    atomic.Uint64
	Aborts     atomic.Uint64
	EmptyTxs   atomic.Uint64
	Recovered  atomic.Uint64 // pages repaired online
	ScrubRuns  atomic.Uint64 // full scrub passes completed
	ScrubSteps atomic.Uint64 // incremental scrub steps executed
	ScrubFixed atomic.Uint64

	LoggedBytes atomic.Uint64

	// Checksum-verification accounting (Table 4): object bytes read with
	// and without verification.
	VerifiedBytes   atomic.Uint64
	UnverifiedBytes atomic.Uint64

	// Micro-buffer DRAM accounting (§4.2).
	MBufBytes     atomic.Int64
	MBufHighWater atomic.Int64

	// Transaction size accounting (Table 3).
	TxCount      atomic.Uint64
	TxAllocBytes atomic.Uint64
	TxModBytes   atomic.Uint64
	TxFreeBytes  atomic.Uint64
	TxAllocObjs  atomic.Uint64
	TxObjects    atomic.Uint64
}

// ResetAccounting zeroes the verification and transaction-size counters
// (benchmark phase boundaries).
func (s *Stats) ResetAccounting() {
	s.VerifiedBytes.Store(0)
	s.UnverifiedBytes.Store(0)
	s.TxCount.Store(0)
	s.TxAllocBytes.Store(0)
	s.TxModBytes.Store(0)
	s.TxFreeBytes.Store(0)
	s.TxAllocObjs.Store(0)
	s.TxObjects.Store(0)
}

func (s *Stats) mbufAdd(n int64) {
	cur := s.MBufBytes.Add(n)
	for {
		hw := s.MBufHighWater.Load()
		if cur <= hw || s.MBufHighWater.CompareAndSwap(hw, cur) {
			return
		}
	}
}

// Engine is an open Pangolin pool.
type Engine struct {
	dev     *nvm.Device
	replica *nvm.Device // Pmemobj-R replica pool; nil otherwise
	geo     layout.Geometry
	mode    Mode
	opts    Options
	uuid    uint64
	canary  uint64

	hdrMu sync.Mutex
	hdr   layout.PoolHeader

	lm   *logrec.Manager
	heap *alloc.Allocator
	par  *parity.Parity

	// Freeze protocol (§3.6): frozen blocks new transactions and new
	// commit applies; commitGate drains in-flight applies. recoverMu
	// makes online recovery single-flight.
	frozen     atomic.Bool
	frozenMu   sync.Mutex
	frozenCond *sync.Cond
	commitGate sync.RWMutex
	recoverMu  sync.Mutex

	txCounter atomic.Uint64
	scrubReq  chan struct{}
	scrubDone chan struct{}
	closed    atomic.Bool

	// modClock records, per object (hashed by offset into a fixed
	// table), the commit epoch that last modified it. The verified-read
	// cache (Pool.ReadView) consults it so a commit only invalidates
	// the objects it actually wrote, not every cached verification in
	// the pool. Collisions round up — they can only force a redundant
	// re-verification, never mask a modification. Maintained for
	// micro-buffered modes (the only ones with checksums to verify).
	modClock [modClockSlots]atomic.Uint64

	stats Stats
}

// modClockSlots sizes the modification clock (64 KB per pool).
const modClockSlots = 1 << 13

// modSlot hashes an object offset into the clock table (splitmix64
// finalizer: neighboring slots must not collide systematically).
func modSlot(off uint64) uint64 {
	return mix64(off) & (modClockSlots - 1)
}

// noteModified records that the object at off is modified by the commit
// bringing the commit count to epoch. Monotonic (concurrent commits on
// distinct objects may share a slot).
func (e *Engine) noteModified(off, epoch uint64) {
	s := &e.modClock[modSlot(off)]
	for {
		cur := s.Load()
		if cur >= epoch || s.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// ModEpoch returns the latest commit epoch that may have modified the
// object (conservative under hash collisions). A verification performed
// at CommitEpoch E is still current iff E >= ModEpoch(oid).
func (e *Engine) ModEpoch(oid layout.OID) uint64 {
	return e.modClock[modSlot(oid.Off)].Load()
}

// Create formats a pool on dev with the given geometry and opens it.
// dev must be zeroed unless opts.Zero is set (zone parity starts from the
// all-zero invariant; zeroing cost is the §4.2 one-time pool-init
// latency). For PmemobjR a replica device of equal size is created
// internally.
func Create(dev *nvm.Device, geo layout.Geometry, opts Options) (*Engine, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if dev.Size() < geo.PoolSize() {
		return nil, fmt.Errorf("core: device %d B smaller than pool %d B", dev.Size(), geo.PoolSize())
	}
	if opts.Zero {
		dev.ZeroAll()
	}
	var ub [8]byte
	if _, err := rand.Read(ub[:]); err != nil {
		return nil, fmt.Errorf("core: generating pool UUID: %w", err)
	}
	uuid := binary.LittleEndian.Uint64(ub[:])
	if uuid == 0 {
		uuid = 1
	}
	hdr := layout.PoolHeader{
		Magic:   layout.Magic,
		Version: layout.Version,
		Flags:   headerFlags(opts.Mode),
		UUID:    uuid,
		Seq:     1,
		Geo:     geo,
	}
	img := layout.EncodePoolHeader(hdr)
	dev.WriteAt(0, img)
	dev.WriteAt(layout.PageSize, img)
	dev.Persist(0, 2*layout.PageSize)
	// Empty (valid) bad-page records.
	rec, err := layout.EncodeBadPageRecord(layout.BadPageRecord{})
	if err != nil {
		return nil, err
	}
	dev.WriteAt(layout.BadPageRecOff(), rec)
	dev.WriteAt(layout.BadPageRecReplicaOff(), rec)
	dev.Persist(layout.BadPageRecOff(), 2*layout.PageSize)
	logrec.Format(dev, geo)
	if err := alloc.Format(dev, geo); err != nil {
		return nil, err
	}
	e, err := newEngine(dev, hdr, opts)
	if err != nil {
		return nil, err
	}
	if opts.Mode.Parity() {
		// Establish the parity invariant over the freshly written CM
		// arrays (everything else is zero).
		cmSpan := geo.CMChunks() * geo.ChunkSize
		for z := uint64(0); z < geo.NumZones; z++ {
			if err := e.par.RecomputeColumn(z, 0, cmSpan); err != nil {
				return nil, err
			}
		}
	}
	if opts.Mode.ReplicaPool() {
		e.replica = nvm.New(dev.Size(), nvm.Options{TrackPersistence: true})
		e.replica.WriteAt(0, dev.Slice(0, dev.Size()))
		e.replica.Persist(0, dev.Size())
		e.lm.SetMirror(e.replica) // whole-pool mirroring includes logs
	}
	e.startScrubber()
	return e, nil
}

// Open opens an existing pool on dev, running crash recovery: repairing
// recorded bad pages and known-poisoned pages, replaying committed redo
// logs, rolling back active undo logs, and restoring parity for every
// range the recovery touched. opts.Mode must match the mode the pool was
// created with. For PmemobjR, replica supplies the replica pool (pass the
// device returned by ReplicaDevice at create time); primary pages lost to
// media errors are restored from it offline, matching libpmemobj's
// offline-only repair.
func Open(dev *nvm.Device, opts Options, replica *nvm.Device) (*Engine, error) {
	hb, err := layout.ReadReplicated(dev, 0, layout.PageSize, layout.PageSize,
		func(b []byte) (uint64, error) {
			h, err := layout.DecodePoolHeader(b)
			if err != nil {
				return 0, err
			}
			return h.Seq, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: reading pool header: %w", err)
	}
	hdr, err := layout.DecodePoolHeader(hb)
	if err != nil {
		return nil, err
	}
	mode, err := modeFromFlags(hdr.Flags)
	if err != nil {
		return nil, err
	}
	if mode != opts.Mode {
		return nil, fmt.Errorf("core: pool was created in mode %v, opened as %v", mode, opts.Mode)
	}
	if mode.ReplicaPool() {
		if replica == nil {
			return nil, fmt.Errorf("core: mode %v requires the replica device", mode)
		}
	} else if replica != nil {
		return nil, fmt.Errorf("core: mode %v does not use a replica device", mode)
	}
	e, err := newEngineForRecovery(dev, hdr, opts, replica)
	if err != nil {
		return nil, err
	}
	if replica != nil {
		e.lm.SetMirror(replica)
	}
	if err := e.recoverAtOpen(); err != nil {
		return nil, err
	}
	if err := e.finishOpen(); err != nil {
		return nil, err
	}
	e.startScrubber()
	return e, nil
}

// newEngineForRecovery builds the engine pieces needed by open-time
// recovery (log manager, parity) but defers the allocator until the heap
// is consistent.
func newEngineForRecovery(dev *nvm.Device, hdr layout.PoolHeader, opts Options, replica *nvm.Device) (*Engine, error) {
	e := &Engine{
		dev:     dev,
		replica: replica,
		geo:     hdr.Geo,
		mode:    opts.Mode,
		opts:    opts,
		uuid:    hdr.UUID,
		hdr:     hdr,
	}
	e.frozenCond = sync.NewCond(&e.frozenMu)
	var cb [8]byte
	if _, err := rand.Read(cb[:]); err != nil {
		return nil, err
	}
	e.canary = binary.LittleEndian.Uint64(cb[:]) | 1
	e.par = parity.New(dev, hdr.Geo, opts.ParityThreshold)
	lm, err := logrec.NewManager(dev, hdr.Geo, opts.Mode.ReplicateMeta())
	if err != nil {
		return nil, err
	}
	e.lm = lm
	return e, nil
}

// finishOpen builds the allocator once recovery has the heap consistent,
// repairing corrupt CM entries from parity when possible.
func (e *Engine) finishOpen() error {
	for attempt := 0; attempt < 4; attempt++ {
		heap, err := alloc.Open(e.dev, e.geo)
		if err == nil {
			e.heap = heap
			return nil
		}
		var ce *alloc.CorruptError
		if !errors.As(err, &ce) || !e.mode.Parity() {
			return err
		}
		// Rebuild the page holding the corrupt entry from parity.
		if rerr := e.rebuildDataPage(ce.Off &^ uint64(layout.PageSize-1)); rerr != nil {
			return fmt.Errorf("core: repairing CM page: %w (original: %w)", rerr, err)
		}
		e.stats.Recovered.Add(1)
	}
	return fmt.Errorf("core: chunk metadata unrecoverable after repeated repair")
}

func newEngine(dev *nvm.Device, hdr layout.PoolHeader, opts Options) (*Engine, error) {
	e, err := newEngineForRecovery(dev, hdr, opts, nil)
	if err != nil {
		return nil, err
	}
	if logs := e.lm.Recover(); len(logs) != 0 {
		return nil, fmt.Errorf("core: fresh pool has %d pending logs", len(logs))
	}
	heap, err := alloc.Open(dev, hdr.Geo)
	if err != nil {
		return nil, err
	}
	e.heap = heap
	return e, nil
}

// Mode returns the engine's operation mode.
func (e *Engine) Mode() Mode { return e.mode }

// Geometry returns the pool geometry.
func (e *Engine) Geometry() layout.Geometry { return e.geo }

// UUID returns the pool UUID.
func (e *Engine) UUID() uint64 { return e.uuid }

// Device returns the pool's primary device (fault injection, snapshots).
func (e *Engine) Device() *nvm.Device { return e.dev }

// ReplicaDevice returns the PmemobjR replica device, or nil.
func (e *Engine) ReplicaDevice() *nvm.Device { return e.replica }

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Allocator exposes the heap for pool statistics and scrubbing tools.
func (e *Engine) Allocator() *alloc.Allocator { return e.heap }

// Close shuts the engine down. Outstanding transactions must be finished.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.stopScrubber()
}

// freeze blocks new transactions and waits for in-flight commit applies to
// drain. The caller must hold recoverMu and must call unfreeze.
func (e *Engine) freeze() {
	e.frozen.Store(true)
	e.commitGate.Lock()
}

func (e *Engine) unfreeze() {
	e.commitGate.Unlock()
	e.frozenMu.Lock()
	e.frozen.Store(false)
	e.frozenMu.Unlock()
	e.frozenCond.Broadcast()
}

// waitUnfrozen blocks while the pool freeze flag is set. Every transaction
// begin and commit checks it — the synchronization cost the paper measures
// on 64 B transactions (§4.4).
func (e *Engine) waitUnfrozen() {
	if !e.frozen.Load() {
		return
	}
	e.frozenMu.Lock()
	for e.frozen.Load() {
		e.frozenCond.Wait()
	}
	e.frozenMu.Unlock()
}

// Root returns the pool's root object, allocating it with the given size
// and type on first use (§2.3). The root is reachable from the pool header
// and is the anchor for all application data structures.
func (e *Engine) Root(size uint64, typ uint32) (layout.OID, error) {
	if e.closed.Load() {
		return layout.NilOID, ErrClosed
	}
	e.hdrMu.Lock()
	root := e.hdr.Root
	rootSz := e.hdr.RootSz
	e.hdrMu.Unlock()
	if !root.IsNil() {
		if rootSz != size {
			return layout.NilOID, fmt.Errorf("core: root exists with size %d, requested %d", rootSz, size)
		}
		return root, nil
	}
	tx, err := e.Begin()
	if err != nil {
		return layout.NilOID, err
	}
	oid, _, err := tx.Alloc(size, typ)
	if err != nil {
		tx.Abort()
		return layout.NilOID, err
	}
	tx.setRoot(oid, size)
	if err := tx.Commit(); err != nil {
		return layout.NilOID, err
	}
	e.hdrMu.Lock()
	root = e.hdr.Root
	e.hdrMu.Unlock()
	return root, nil
}

// applyRoot persists a root-pointer update into the pool header
// (replicated when the mode replicates metadata; mirrored to the replica
// pool for PmemobjR).
func (e *Engine) applyRoot(oid layout.OID, size uint64) {
	e.hdrMu.Lock()
	defer e.hdrMu.Unlock()
	e.hdr.Root = oid
	e.hdr.RootSz = size
	e.hdr.Seq++
	img := layout.EncodePoolHeader(e.hdr)
	e.dev.WriteAt(0, img)
	e.dev.Persist(0, uint64(len(img)))
	if e.mode.ReplicateMeta() {
		e.dev.WriteAt(layout.PageSize, img)
		e.dev.Persist(layout.PageSize, uint64(len(img)))
	}
	if e.replica != nil {
		e.replica.WriteAt(0, img)
		e.replica.WriteAt(layout.PageSize, img)
		e.replica.Persist(0, 2*layout.PageSize)
	}
}
