package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/mbuf"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

var allModes = []Mode{Pmemobj, Pangolin, PangolinML, PangolinMLP, PangolinMLPC, PmemobjR, PmemobjP}

func mkEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// reopenEngine closes e and reopens its device (optionally after a crash).
func reopenEngine(t *testing.T, e *Engine, crash bool, seed int64) *Engine {
	t.Helper()
	dev := e.Device()
	if crash {
		dev = dev.CrashCopy(nvm.CrashStrict, seed)
	}
	e.Close()
	ne, err := Open(dev, e.opts, e.ReplicaDevice())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ne.Close)
	return ne
}

// verifyParity checks invariant P1 for every zone (engine quiesced).
func verifyParity(t *testing.T, e *Engine) {
	t.Helper()
	if !e.mode.Parity() {
		return
	}
	for z := uint64(0); z < e.geo.NumZones; z++ {
		bad, err := e.par.VerifyZone(z)
		if err != nil {
			t.Fatalf("zone %d parity verify: %v", z, err)
		}
		if bad != -1 {
			t.Fatalf("zone %d parity broken at column %d", z, bad)
		}
	}
}

// verifyChecksums checks invariant P2 for every live object.
func verifyChecksums(t *testing.T, e *Engine) {
	t.Helper()
	if !e.mode.Checksums() {
		return
	}
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadObjects != 0 {
		t.Fatalf("scrub found %d corrupt objects: %+v", rep.BadObjects, rep)
	}
}

func TestAllocCommitReadAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			var oid layout.OID
			err := e.Run(func(tx *Tx) error {
				var data []byte
				var err error
				oid, data, err = tx.Alloc(100, 7)
				if err != nil {
					return err
				}
				copy(data, "persistent payload")
				if mode.MicroBuffered() {
					// Alloc marks everything modified already; an extra
					// AddRange must be harmless.
					if _, err := tx.AddRange(oid, 0, 18); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Get(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:18]) != "persistent payload" {
				t.Fatalf("read back %q", got[:18])
			}
			if typ, _ := e.ObjectType(oid); typ != 7 {
				t.Fatalf("type %d", typ)
			}
			if sz, _ := e.ObjectSize(oid); sz != 100 {
				t.Fatalf("size %d", sz)
			}
			verifyParity(t, e)
			verifyChecksums(t, e)
		})
	}
}

func TestOverwriteAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			var oid layout.OID
			if err := e.Run(func(tx *Tx) error {
				var err error
				oid, _, err = tx.Alloc(256, 1)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(func(tx *Tx) error {
				data, err := tx.AddRange(oid, 32, 16)
				if err != nil {
					return err
				}
				copy(data[32:48], "sixteen bytes ok")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			got, err := e.Get(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[32:48]) != "sixteen bytes ok" {
				t.Fatalf("read %q", got[32:48])
			}
			// Untouched bytes remain zero.
			for i := 0; i < 32; i++ {
				if got[i] != 0 {
					t.Fatalf("byte %d dirtied: %d", i, got[i])
				}
			}
			verifyParity(t, e)
			verifyChecksums(t, e)
		})
	}
}

func TestStoredChecksumMatchesFullRecompute(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(500, 2)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Several incremental updates; the stored checksum must always equal
	// a full recomputation (P2, exercising csum.Update composition).
	for i := 0; i < 5; i++ {
		if err := e.Run(func(tx *Tx) error {
			data, err := tx.AddRange(oid, uint64(i*90), 40)
			if err != nil {
				return err
			}
			for j := 0; j < 40; j++ {
				data[i*90+j] = byte(i*7 + j)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		img := make([]byte, 500+layout.ObjHeaderSize)
		if err := e.Device().ReadAt(img, oid.HeaderOff()); err != nil {
			t.Fatal(err)
		}
		hdr := layout.DecodeObjHeader(img)
		if got := layout.ObjChecksum(img); got != hdr.Csum {
			t.Fatalf("iteration %d: stored csum %#x != recomputed %#x", i, hdr.Csum, got)
		}
	}
}

func TestAbortLeavesNoTrace(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			var oid layout.OID
			if err := e.Run(func(tx *Tx) error {
				var err error
				oid, _, err = tx.Alloc(64, 1)
				if err != nil {
					return err
				}
				data, err := tx.AddRange(oid, 0, 8)
				if err != nil {
					return err
				}
				copy(data, "original")
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			live := e.heap.CountLive()

			// Abort an overwrite.
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			data, err := tx.AddRange(oid, 0, 8)
			if err != nil {
				t.Fatal(err)
			}
			copy(data, "scratch!")
			tx.Abort()
			got, err := e.Get(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got[:8]) != "original" {
				t.Fatalf("abort leaked writes: %q", got[:8])
			}

			// Abort an allocation.
			tx, err = e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := tx.Alloc(64, 2); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
			if e.heap.CountLive() != live {
				t.Fatalf("aborted alloc leaked: %d live, want %d", e.heap.CountLive(), live)
			}
			verifyParity(t, e)
			verifyChecksums(t, e)
		})
	}
}

func TestFreeAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			var oid layout.OID
			if err := e.Run(func(tx *Tx) error {
				var err error
				oid, _, err = tx.Alloc(100, 1)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(func(tx *Tx) error { return tx.Free(oid) }); err != nil {
				t.Fatal(err)
			}
			if e.heap.CountLive() != 0 {
				t.Fatalf("%d live after free", e.heap.CountLive())
			}
			// Alloc+free in one tx cancels.
			if err := e.Run(func(tx *Tx) error {
				o, _, err := tx.Alloc(64, 1)
				if err != nil {
					return err
				}
				return tx.Free(o)
			}); err != nil {
				t.Fatal(err)
			}
			if e.heap.CountLive() != 0 {
				t.Fatal("same-tx alloc+free leaked")
			}
			verifyParity(t, e)
		})
	}
}

func TestRootPersistsAcrossReopen(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			e := mkEngine(t, mode)
			root, err := e.Root(128, 42)
			if err != nil {
				t.Fatal(err)
			}
			if root.IsNil() {
				t.Fatal("nil root")
			}
			// Second call returns the same root.
			root2, err := e.Root(128, 42)
			if err != nil || root2 != root {
				t.Fatalf("root not stable: %+v vs %+v (%v)", root2, root, err)
			}
			if _, err := e.Root(999, 42); err == nil {
				t.Fatal("size mismatch accepted")
			}
			e2 := reopenEngine(t, e, false, 0)
			root3, err := e2.Root(128, 42)
			if err != nil || root3 != root {
				t.Fatalf("root lost across reopen: %+v vs %+v (%v)", root3, root, err)
			}
		})
	}
}

func TestIsolationBetweenTransactions(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(64, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx1.Abort()
	data, err := tx1.AddRange(oid, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "tx1 view")
	// Another transaction's Get must not see tx1's uncommitted bytes
	// (micro-buffers are private, §3.4).
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Abort()
	got, err := tx2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) == "tx1 view" {
		t.Fatal("uncommitted micro-buffer leaked across transactions")
	}
	// tx1's own Get returns its buffer (read-your-writes).
	own, err := tx1.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(own[:8]) != "tx1 view" {
		t.Fatal("transaction does not see its own writes")
	}
}

func TestCanaryAbortsCommit(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(40, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	before, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), before...)

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tx.AddRange(oid, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Overrun: write past the object's end, as a buffer-overflow bug
	// would. The micro-buffer's padded capacity makes this physically
	// possible; the tail canary takes the hit.
	over := data[:cap(data)]
	for i := len(data); i < len(over); i++ {
		over[i] = 0xEE
	}
	b, _ := tx.bufs.Lookup(oid)
	raw := b.Image()
	_ = raw
	// Clobber beyond the image through the backing array.
	full := data[:cap(data)]
	full[cap(data)-1] = 0xEE

	err = tx.Commit()
	var ce *mbuf.CanaryError
	if !errors.As(err, &ce) {
		t.Fatalf("overrun not caught by canary: %v", err)
	}
	// NVMM untouched.
	after, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, snapshot) {
		t.Fatal("corruption propagated to NVMM despite canary")
	}
	verifyParity(t, e)
}

func TestEmptyTransaction(t *testing.T) {
	for _, mode := range allModes {
		e := mkEngine(t, mode)
		if err := e.Run(func(tx *Tx) error { return nil }); err != nil {
			t.Fatalf("%v: empty tx: %v", mode, err)
		}
		if e.stats.EmptyTxs.Load() != 1 {
			t.Fatalf("%v: empty tx not counted", mode)
		}
	}
}

func TestOIDValidation(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if _, err := tx.Open(layout.NilOID); err == nil {
		t.Fatal("nil OID accepted")
	}
	if _, err := tx.Open(layout.OID{Pool: e.uuid + 1, Off: 4096}); err == nil {
		t.Fatal("foreign pool OID accepted")
	}
	if _, err := tx.Open(layout.OID{Pool: e.uuid, Off: 64}); err == nil {
		t.Fatal("OID outside zone data accepted")
	}
}

func TestMediaErrorOnlineRecovery(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(1000, 1)
		if err != nil {
			return err
		}
		for i := range data {
			data[i] = byte(i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Lose the page under the object.
	e.InjectMediaError(oid.Off)
	if !e.Device().IsPoisoned(oid.Off) {
		t.Fatal("injection failed")
	}
	// A read triggers SIGBUS-analog recovery and returns good data.
	got, err := e.Get(oid)
	if err != nil {
		t.Fatalf("online recovery failed: %v", err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d: got %d want %d", i, got[i], byte(i))
		}
	}
	if e.Device().IsPoisoned(oid.Off) {
		t.Fatal("page still poisoned after repair")
	}
	if e.stats.Recovered.Load() == 0 {
		t.Fatal("recovery not counted")
	}
	verifyParity(t, e)
	verifyChecksums(t, e)
}

func TestScribbleDetectedAndRepaired(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(200, 1)
		if err != nil {
			return err
		}
		copy(data, "precious data that must survive scribbles")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Software bug overwrites part of the object, bypassing the library.
	e.InjectScribble(oid.Off+5, 20, 99)
	// Opening the object verifies the checksum, detects the scribble, and
	// restores from parity (§3.3, §3.6).
	if err := e.Run(func(tx *Tx) error {
		data, err := tx.Open(oid)
		if err != nil {
			return err
		}
		if string(data[:13]) != "precious data" {
			t.Fatalf("restored data wrong: %q", data[:13])
		}
		return nil
	}); err != nil {
		t.Fatalf("scribble recovery failed: %v", err)
	}
	verifyParity(t, e)
	verifyChecksums(t, e)
}

func TestScribbleInvisibleWithoutChecksums(t *testing.T) {
	// MLP protects against media errors but not scribbles (the Pmemobj-R
	// comparison point): a scribble goes undetected at open.
	e := mkEngine(t, PangolinMLP)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(100, 1)
		if err != nil {
			return err
		}
		copy(data, "unprotected")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.InjectScribble(oid.Off, 5, 7)
	got, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:11]) == "unprotected" {
		t.Fatal("scribble rolled back without checksums? (injection failed)")
	}
}

func TestScrubRepairsScribbles(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oids []layout.OID
	for i := 0; i < 10; i++ {
		if err := e.Run(func(tx *Tx) error {
			oid, data, err := tx.Alloc(128, 1)
			if err != nil {
				return err
			}
			copy(data, "scrub target")
			oids = append(oids, oid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.InjectScribble(oids[3].Off, 10, 5)
	e.InjectScribble(oids[7].Off+50, 30, 6)
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadObjects < 1 || rep.Repaired != rep.BadObjects || rep.Unrecovered != 0 {
		t.Fatalf("scrub report %+v", rep)
	}
	for _, oid := range oids {
		got, err := e.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[:12]) != "scrub target" {
			t.Fatalf("object %#x not restored: %q", oid.Off, got[:12])
		}
	}
	verifyParity(t, e)
}

func TestPmemobjROfflineRepair(t *testing.T) {
	e := mkEngine(t, PmemobjR)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(100, 1)
		if err != nil {
			return err
		}
		copy(data, "mirrored")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.InjectMediaError(oid.Off)
	// Online access fails: Pmemobj-R repairs only offline (§2.3).
	if _, err := e.Get(oid); err == nil {
		t.Fatal("Pmemobj-R recovered online; should require reopen")
	}
	// Reopen repairs from the replica.
	e2 := reopenEngine(t, e, false, 0)
	got, err := e2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "mirrored" {
		t.Fatalf("replica repair wrong: %q", got[:8])
	}
}

func TestPmemobjRScribbleUndetected(t *testing.T) {
	// The paper's point: replication alone cannot detect scribbles — the
	// corruption simply persists (and would eventually propagate).
	e := mkEngine(t, PmemobjR)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(100, 1)
		if err != nil {
			return err
		}
		copy(data, "soon corrupt")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.InjectScribble(oid.Off, 4, 3)
	got, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:12]) == "soon corrupt" {
		t.Fatal("scribble had no effect")
	}
	e2 := reopenEngine(t, e, false, 0)
	got, err = e2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:12]) == "soon corrupt" {
		t.Fatal("reopen silently healed a scribble replication cannot see")
	}
}

func TestConservativeGetVerifies(t *testing.T) {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: PangolinMLPC, Policy: VerifyConservative})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(100, 1)
		if err != nil {
			return err
		}
		copy(data, "conservative")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.stats.ResetAccounting()
	if _, err := e.Get(oid); err != nil {
		t.Fatal(err)
	}
	if e.stats.VerifiedBytes.Load() == 0 {
		t.Fatal("conservative Get did not verify")
	}
	if e.stats.UnverifiedBytes.Load() != 0 {
		t.Fatal("conservative Get counted unverified bytes")
	}
	// A scribble is caught directly by Get.
	e.InjectScribble(oid.Off, 6, 11)
	got, err := e.Get(oid)
	if err != nil {
		t.Fatalf("conservative recovery failed: %v", err)
	}
	if string(got[:12]) != "conservative" {
		t.Fatalf("got %q", got[:12])
	}
}

func TestDefaultGetCountsUnverified(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(100, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.stats.ResetAccounting()
	if _, err := e.Get(oid); err != nil {
		t.Fatal(err)
	}
	if e.stats.UnverifiedBytes.Load() != 100 {
		t.Fatalf("unverified = %d, want 100", e.stats.UnverifiedBytes.Load())
	}
}
