package core

import (
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// CorruptionError reports object corruption the engine could not repair.
type CorruptionError struct {
	OID    layout.OID
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("core: object %#x corrupt: %s", e.OID.Off, e.Reason)
}

// readHeaderChecked reads and sanity-checks an object header, running
// online recovery on media faults or implausible contents when repair is
// set (and failing fast otherwise — the concurrent read path, which must
// never mutate the pool). The header is validated against the allocator's
// record of the slot so a corrupted size field cannot cause out-of-bounds
// reads.
//
// The pre-read OID sanity failures are typed *CorruptionError: a live
// pool never hands out such an OID, so reaching here with one means the
// caller followed a corrupted pointer (a scribbled structure node read
// without verification — the Table 4 window) — typing it lets owner
// paths distinguish "scrub and retry" from resource errors. They are
// returned directly, never routed into page repair: the garbage OID
// names no page worth rebuilding.
func (e *Engine) readHeaderChecked(oid layout.OID, repair bool) (layout.ObjHeader, error) {
	if oid.IsNil() || oid.Pool != e.uuid {
		return layout.ObjHeader{}, &CorruptionError{OID: oid, Reason: "invalid OID for this pool"}
	}
	hoff := oid.HeaderOff()
	if !e.geo.InZoneData(hoff) {
		return layout.ObjHeader{}, &CorruptionError{OID: oid, Reason: "OID outside zone data"}
	}
	cap_, err := e.heap.SlotSizeOf(hoff)
	if err != nil {
		return layout.ObjHeader{}, &CorruptionError{OID: oid, Reason: err.Error()}
	}
	var hb [layout.ObjHeaderSize]byte
	for attempt := 0; ; attempt++ {
		err := e.dev.ReadAt(hb[:], hoff)
		if err == nil {
			hdr := layout.DecodeObjHeader(hb[:])
			if hdr.Size >= layout.ObjHeaderSize && hdr.Size <= cap_ {
				return hdr, nil
			}
			// Implausible header: treat as corruption and rebuild the
			// header's page from parity.
			err = &CorruptionError{OID: oid, Reason: fmt.Sprintf("header size %d vs slot %d", hdr.Size, cap_)}
		}
		if !repair || attempt >= 2 {
			return layout.ObjHeader{}, err
		}
		if rerr := e.faultRepair(hoff, layout.ObjHeaderSize, err); rerr != nil {
			return layout.ObjHeader{}, rerr
		}
	}
}

// readImage reads an object's full image (header + data), optionally
// verifying the checksum, with online recovery on faults (§3.3, §3.6).
func (e *Engine) readImage(oid layout.OID, verify bool) ([]byte, layout.ObjHeader, error) {
	for attempt := 0; ; attempt++ {
		hdr, err := e.readHeaderChecked(oid, true)
		if err != nil {
			return nil, layout.ObjHeader{}, err
		}
		img := make([]byte, hdr.Size)
		if err := e.dev.ReadAt(img, oid.HeaderOff()); err != nil {
			if attempt >= 2 {
				return nil, layout.ObjHeader{}, err
			}
			if rerr := e.faultRepair(oid.HeaderOff(), hdr.Size, err); rerr != nil {
				return nil, layout.ObjHeader{}, rerr
			}
			continue
		}
		if verify {
			if got := layout.ObjChecksum(img); got != hdr.Csum {
				cerr := &CorruptionError{OID: oid,
					Reason: fmt.Sprintf("checksum %#x, stored %#x", got, hdr.Csum)}
				if attempt >= 2 {
					return nil, layout.ObjHeader{}, cerr
				}
				if rerr := e.faultRepair(oid.HeaderOff(), hdr.Size, cerr); rerr != nil {
					return nil, layout.ObjHeader{}, rerr
				}
				continue
			}
			e.stats.VerifiedBytes.Add(hdr.UserSize())
		} else {
			e.stats.UnverifiedBytes.Add(hdr.UserSize())
		}
		return img, hdr, nil
	}
}

// Get returns read-only direct access to an object's user data without
// micro-buffering (pgl_get, §3.4). Under VerifyConservative the checksum
// is verified first; otherwise the access is counted as unverified
// (Table 4) and relies on scrubbing for eventual detection.
func (e *Engine) Get(oid layout.OID) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	verify := e.opts.Policy == VerifyConservative && e.mode.Checksums()
	if verify {
		img, hdr, err := e.readImage(oid, true)
		if err != nil {
			return nil, err
		}
		_ = img // verification pass reads a copy; hand out the live bytes
		return e.dev.Slice(oid.Off, hdr.UserSize()), nil
	}
	hdr, err := e.readHeaderChecked(oid, true)
	if err != nil {
		return nil, err
	}
	if err := e.dev.CheckPoison(oid.HeaderOff(), hdr.Size); err != nil {
		if rerr := e.faultRepair(oid.HeaderOff(), hdr.Size, err); rerr != nil {
			return nil, rerr
		}
	}
	e.stats.UnverifiedBytes.Add(hdr.UserSize())
	return e.dev.Slice(oid.Off, hdr.UserSize()), nil
}

// ErrReadBusy reports that a concurrent read (GetRO) could not proceed
// because the pool is frozen — or a freeze is pending — for online
// recovery or scrubbing. The caller should route the read through the
// pool's owner goroutine, whose repairing read path will wait the freeze
// out.
var ErrReadBusy = errors.New("core: pool frozen or freezing; route the read through the owner path")

// CommitEpoch returns a counter that advances on every committed
// transaction. In micro-buffered modes NVMM object bytes change only
// inside commits, so two reads of an object at the same epoch (with no
// concurrent commit — the GetRO contract) observe identical bytes; the
// verified-read cache keys on it.
func (e *Engine) CommitEpoch() uint64 { return e.stats.Commits.Load() }

// GetRO is the concurrent verified-read fast path (§3.3: readers verify
// per-object checksums straight from NVMM and do not serialize against
// each other). It returns read-only direct access to an object's user
// data, verifying the object checksum first unless skipVerify is set
// (the caller has already verified this object and ModEpoch shows it
// unmodified since) or the object exceeds Options.ReadVerifyLimit
// (whole-object verification of large array objects would make reads
// cost O(object); they keep header + poison checks and rely on
// scrubbing, as under the default verify policy).
//
// Unlike Get it NEVER mutates the pool: media faults, checksum
// mismatches, and freeze windows fail fast — poison and corruption with
// their typed errors, freezes with ErrReadBusy — instead of triggering
// online recovery, so any number of GetRO calls may run concurrently
// with each other and with Scrub/online recovery. The caller must
// guarantee no transaction commits concurrently (internal/shard's reader
// gate provides that exclusion) and, on any error, retry through the
// owning goroutine's repairing path.
func (e *Engine) GetRO(oid layout.OID, skipVerify bool) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	// The commit gate's read side is shared with commit applies and
	// excluded by freeze (recovery, scrub). Holding it for the read means
	// a repair can never rewrite pages under us; TryRLock (rather than
	// RLock) keeps the fast path non-blocking — a pending freeze bounces
	// the read to the owner path instead of queueing readers behind it.
	if !e.commitGate.TryRLock() {
		return nil, ErrReadBusy
	}
	defer e.commitGate.RUnlock()
	if e.frozen.Load() {
		return nil, ErrReadBusy
	}
	hdr, err := e.readHeaderChecked(oid, false)
	if err != nil {
		return nil, err
	}
	if err := e.dev.CheckPoison(oid.HeaderOff(), hdr.Size); err != nil {
		return nil, err
	}
	if e.mode.Checksums() && !skipVerify && hdr.Size <= e.opts.roVerifyLimit() {
		// Checksum the live bytes in place: the caller excludes commits
		// and the commit gate excludes repairs, so the range is stable —
		// no image copy needed (the repairing readImage must copy
		// because it may retry; this path fails fast instead).
		if got := layout.ObjChecksum(e.dev.Slice(oid.HeaderOff(), hdr.Size)); got != hdr.Csum {
			return nil, &CorruptionError{OID: oid,
				Reason: fmt.Sprintf("checksum %#x, stored %#x", got, hdr.Csum)}
		}
		e.stats.VerifiedBytes.Add(hdr.UserSize())
		return e.dev.Slice(oid.Off, hdr.UserSize()), nil
	}
	e.stats.UnverifiedBytes.Add(hdr.UserSize())
	return e.dev.Slice(oid.Off, hdr.UserSize()), nil
}

// ObjectType returns the stored type of an object.
func (e *Engine) ObjectType(oid layout.OID) (uint32, error) {
	hdr, err := e.readHeaderChecked(oid, true)
	if err != nil {
		return 0, err
	}
	return hdr.Type, nil
}

// ObjectSize returns the user-data size of an object.
func (e *Engine) ObjectSize(oid layout.OID) (uint64, error) {
	hdr, err := e.readHeaderChecked(oid, true)
	if err != nil {
		return 0, err
	}
	return hdr.UserSize(), nil
}

// CheckObject verifies an object's checksum on demand (manual verification
// for applications using pgl_get, §3.4), repairing on mismatch when
// possible.
func (e *Engine) CheckObject(oid layout.OID) error {
	if !e.mode.Checksums() {
		return fmt.Errorf("core: mode %v maintains no object checksums", e.mode)
	}
	_, _, err := e.readImage(oid, true)
	return err
}

// faultRepair dispatches online recovery for a fault observed while
// reading [off, off+n): media errors repair the poisoned page; checksum
// mismatches rebuild every page the object spans (§3.6). Callers retry
// the read after a nil return.
//
// Online recovery requires a micro-buffered mode: the freeze protocol
// quiesces commits, and micro-buffered transactions touch NVMM only
// inside commits. Direct-write modes (Pmemobj-P) mutate NVMM mid-
// transaction, so their parity is repair-safe only offline — the same
// restriction libpmemobj's replication has (§2.3).
func (e *Engine) faultRepair(off, n uint64, cause error) error {
	if !e.mode.MicroBuffered() {
		return fmt.Errorf("core: %w: %w", cause, ErrNeedReopen)
	}
	var pe *nvm.PoisonError
	var ce *CorruptionError
	switch {
	case errors.As(cause, &pe):
		return e.recoverPages([]uint64{pe.Off})
	case errors.As(cause, &ce):
		first := off &^ uint64(layout.PageSize-1)
		last := (off + n - 1) &^ uint64(layout.PageSize-1)
		var pages []uint64
		for p := first; p <= last; p += layout.PageSize {
			pages = append(pages, p)
		}
		return e.recoverPages(pages)
	default:
		return cause
	}
}
