package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/logrec"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// TestScrubPolicyTriggers verifies the background scrubbing thread fires
// every ScrubEvery transactions ("Scrub" mode, §3.3).
func TestScrubPolicyTriggers(t *testing.T) {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: PangolinMLPC, ScrubEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(64, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := e.Run(func(tx *Tx) error {
			data, err := tx.AddRange(oid, 0, 8)
			if err != nil {
				return err
			}
			data[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.stats.ScrubRuns.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScrubPolicyRepairsInBackground: a scribble is healed by the
// scrubbing thread without any explicit verification call.
func TestScrubPolicyRepairsInBackground(t *testing.T) {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: PangolinMLPC, ScrubEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var victim, other layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		victim, data, err = tx.Alloc(100, 1)
		if err != nil {
			return err
		}
		copy(data, "healed by scrubbing")
		other, _, err = tx.Alloc(100, 2)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.InjectScribble(victim.Off, 8, 3)
	// Commit enough unrelated transactions to trigger a scrub.
	for i := 0; i < 10; i++ {
		if err := e.Run(func(tx *Tx) error {
			data, err := tx.AddRange(other, 0, 8)
			if err != nil {
				return err
			}
			data[0] = byte(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		img := make([]byte, 19)
		if err := e.dev.ReadAt(img, victim.Off); err == nil && string(img) == "healed by scrubbing" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber did not repair the scribble")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMultiPageLossRecovers: losing several pages in DIFFERENT page
// columns is recoverable (the paper's "in many cases, it can recover from
// the concurrent loss of multiple pages").
func TestMultiPageLossRecovers(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	geo := e.geo
	// Objects in different rows → different page columns.
	var oids []layout.OID
	for i := 0; i < 6; i++ {
		if err := e.Run(func(tx *Tx) error {
			oid, data, err := tx.Alloc(3000, uint32(i))
			if err != nil {
				return err
			}
			for j := range data {
				data[j] = byte(i)
			}
			oids = append(oids, oid)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Poison pages under two objects that live in different columns.
	a, b := oids[0], oids[len(oids)-1]
	la := geo.Locate(a.Off)
	lb := geo.Locate(b.Off)
	if la.Col/layout.PageSize == lb.Col/layout.PageSize && la.Zone == lb.Zone {
		t.Skip("objects landed in the same page column; geometry too small to place apart")
	}
	e.InjectMediaError(a.Off)
	e.InjectMediaError(b.Off)
	for i, oid := range []layout.OID{a, b} {
		got, err := e.Get(oid)
		if err != nil {
			t.Fatalf("object %d unrecoverable: %v", i, err)
		}
		want := byte(0)
		if i == 1 {
			want = byte(len(oids) - 1)
		}
		if got[0] != want {
			t.Fatalf("object %d content wrong after multi-page recovery", i)
		}
	}
	verifyParity(t, e)
}

// TestSameColumnDoubleLossFails: two lost pages overlapping in one page
// column defeat single parity — the documented unrecoverable case (§3.1).
func TestSameColumnDoubleLossFails(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	geo := e.geo
	// Poison the same page column in two different rows of zone 0.
	off1 := geo.RowByteOff(0, 3, 0)
	off2 := geo.RowByteOff(0, 5, 0)
	e.dev.Poison(off1)
	e.dev.Poison(off2)
	err := e.recoverPages([]uint64{off1 &^ uint64(layout.PageSize-1)})
	if err == nil {
		t.Fatal("double loss in one column repaired — impossible with single parity")
	}
}

// TestLogOverflowThroughEngine: a transaction bigger than one lane spills
// into overflow extents and still commits and recovers.
func TestLogOverflowThroughEngine(t *testing.T) {
	geo := layout.Default() // 32 KB lanes
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: PangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	// Object bigger than a lane: whole-object overwrite must overflow.
	size := geo.LaneSize * 3
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(size, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x7E}, int(size))
	// Crash right after this commit to force replay through the chain.
	if err := e.Run(func(tx *Tx) error {
		data, err := tx.AddRange(oid, 0, size)
		if err != nil {
			return err
		}
		copy(data, payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e2 := reopenEngine(t, e, true, 3)
	got, err := e2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("overflowed transaction lost data")
	}
	verifyParity(t, e2)
	verifyChecksums(t, e2)
}

// TestWrongModeOpenRejected: opening a pool under a different mode than
// it was created with must fail loudly.
func TestWrongModeOpenRejected(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	dev := e.Device()
	e.Close()
	if _, err := Open(dev, Options{Mode: Pmemobj}, nil); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	if _, err := Open(dev, Options{Mode: PmemobjR}, nil); err == nil {
		t.Fatal("replica mode accepted without matching flags")
	}
	// Correct mode reopens fine.
	e2, err := Open(dev, Options{Mode: PangolinMLPC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2.Close()
}

// TestOpenGarbageRejected: a device that is not a pool fails cleanly.
func TestOpenGarbageRejected(t *testing.T) {
	dev := nvm.New(1<<20, nvm.Options{TrackPersistence: true})
	if _, err := Open(dev, Options{Mode: PangolinMLPC}, nil); err == nil {
		t.Fatal("garbage device opened")
	}
}

// TestClosedEngineRejectsWork: operations after Close fail with ErrClosed.
func TestClosedEngineRejectsWork(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(64, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after close: %v", err)
	}
	if _, err := e.Get(oid); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := e.Root(64, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Root after close: %v", err)
	}
}

// TestLaneReleaseOnAbortAndCommit: transactions always return their lane.
func TestLaneReleaseOnAbortAndCommit(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	free0 := e.lm.FreeLanes()
	for i := 0; i < 10; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, _, err := tx.Alloc(64, 1); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			tx.Abort()
		}
	}
	if got := e.lm.FreeLanes(); got != free0 {
		t.Fatalf("lanes leaked: %d → %d", free0, got)
	}
}

// TestDoubleCommitRejected: finishing a transaction twice is an error.
func TestDoubleCommitRejected(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit allowed")
	}
	tx.Abort() // must be a no-op, not a crash
	if _, err := tx.Open(layout.OID{Pool: e.uuid, Off: 4096}); err == nil {
		t.Fatal("operation on finished tx allowed")
	}
}

// TestUndoLogRecoveredAcrossReopen: a pmemobj transaction interrupted
// mid-flight (lane active, data partially written in place) rolls back at
// open.
func TestUndoLogRecoveredAcrossReopen(t *testing.T) {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	e, err := Create(dev, geo, Options{Mode: Pmemobj})
	if err != nil {
		t.Fatal(err)
	}
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(64, 1)
		if err != nil {
			return err
		}
		copy(data, "original")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Start a transaction, write in place, do NOT commit.
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tx.AddRange(oid, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "tornnnnn")
	e.dev.Persist(oid.Off, 8) // the torn write even became durable

	// Crash without commit.
	img := dev.CrashCopy(nvm.CrashStrict, 5)
	e2, err := Open(img, Options{Mode: Pmemobj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "original" {
		t.Fatalf("undo rollback failed: %q", got[:8])
	}
	// The lane must be free again.
	if e2.lm.FreeLanes() != int(geo.NumLanes) {
		t.Fatal("lane leaked after rollback")
	}
	_ = logrec.StateIdle // document the linkage for readers
}
