package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/pangolin-go/pangolin/internal/alloc"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/logrec"
	"github.com/pangolin-go/pangolin/internal/xor"
)

// recoverPages is online corruption recovery (§3.6): freeze the pool,
// persist a bad-page record, rebuild each page from redundancy, clear the
// record, thaw. It is single-flight; a concurrent faulting thread waits
// and retries its read against the repaired page.
func (e *Engine) recoverPages(pages []uint64) error {
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	e.freeze()
	defer e.unfreeze()
	if err := e.writeBadPageRecord(pages); err != nil {
		return err
	}
	for _, p := range pages {
		if err := e.repairPage(p); err != nil {
			return fmt.Errorf("core: repairing page %#x: %w (%w)", p, err, ErrNeedReopen)
		}
	}
	if err := e.writeBadPageRecord(nil); err != nil {
		return err
	}
	e.stats.Recovered.Add(uint64(len(pages)))
	return nil
}

// writeBadPageRecord persists the set of pages under repair (both copies),
// making recovery idempotent across crashes.
func (e *Engine) writeBadPageRecord(pages []uint64) error {
	img, err := layout.EncodeBadPageRecord(layout.BadPageRecord{Pages: pages})
	if err != nil {
		return err
	}
	e.dev.WriteAt(layout.BadPageRecOff(), img)
	e.dev.Persist(layout.BadPageRecOff(), layout.PageSize)
	e.dev.WriteAt(layout.BadPageRecReplicaOff(), img)
	e.dev.Persist(layout.BadPageRecReplicaOff(), layout.PageSize)
	return nil
}

// repairPage restores one page from the pool's redundancy: zone parity for
// data pages, row XOR for parity pages, the paired copy for replicated
// metadata. The pool must be quiesced.
func (e *Engine) repairPage(pageOff uint64) error {
	pageOff &^= uint64(layout.PageSize - 1)
	geo := e.geo
	switch {
	case geo.InZoneData(pageOff):
		return e.rebuildDataPage(pageOff)
	case geo.InZoneParity(pageOff):
		return e.rebuildParityPage(pageOff)
	default:
		src, ok := e.pairedCopy(pageOff)
		if !ok {
			return fmt.Errorf("unprotected region at %#x", pageOff)
		}
		if !e.mode.ReplicateMeta() && pageOff >= geo.LanesOff() && pageOff < geo.ZonesOff() {
			return fmt.Errorf("log region lost and mode %v does not replicate logs", e.mode)
		}
		buf := make([]byte, layout.PageSize)
		if err := e.dev.ReadAt(buf, src); err != nil {
			return fmt.Errorf("paired copy also unreadable: %w", err)
		}
		return e.writeRepaired(pageOff, buf)
	}
}

// pairedCopy maps a replicated metadata page to its twin.
func (e *Engine) pairedCopy(pageOff uint64) (uint64, bool) {
	geo := e.geo
	switch {
	case pageOff == 0:
		return layout.PageSize, true
	case pageOff == layout.PageSize:
		return 0, true
	case pageOff == layout.BadPageRecOff():
		return layout.BadPageRecReplicaOff(), true
	case pageOff == layout.BadPageRecReplicaOff():
		return layout.BadPageRecOff(), true
	case pageOff >= geo.LanesOff() && pageOff < geo.LanesReplicaOff():
		return pageOff + (geo.LanesReplicaOff() - geo.LanesOff()), true
	case pageOff >= geo.LanesReplicaOff() && pageOff < geo.OverflowOff():
		return pageOff - (geo.LanesReplicaOff() - geo.LanesOff()), true
	case pageOff >= geo.OverflowOff() && pageOff < geo.OverflowReplicaOff():
		return pageOff + (geo.OverflowReplicaOff() - geo.OverflowOff()), true
	case pageOff >= geo.OverflowReplicaOff() && pageOff < geo.ZonesOff():
		return pageOff - (geo.OverflowReplicaOff() - geo.OverflowOff()), true
	}
	// Zone headers: primary/replica pages at the zone base.
	if pageOff >= geo.ZonesOff() && pageOff < geo.PoolSize() {
		rel := (pageOff - geo.ZonesOff()) % geo.ZoneSize()
		switch rel {
		case 0:
			return pageOff + layout.PageSize, true
		case layout.PageSize:
			return pageOff - layout.PageSize, true
		}
	}
	return 0, false
}

// rebuildDataPage reconstructs a zone-data page from parity and the
// surviving rows (§3.6): the page column mechanism.
func (e *Engine) rebuildDataPage(pageOff uint64) error {
	if !e.mode.Parity() {
		return fmt.Errorf("mode %v maintains no parity", e.mode)
	}
	loc := e.geo.Locate(pageOff)
	buf := make([]byte, layout.PageSize)
	if err := e.par.ReconstructColumn(loc.Zone, loc.Col, layout.PageSize, loc.Row, buf); err != nil {
		return err
	}
	return e.writeRepaired(pageOff, buf)
}

// rebuildParityPage recomputes a parity page from the data rows.
func (e *Engine) rebuildParityPage(pageOff uint64) error {
	if !e.mode.Parity() {
		return fmt.Errorf("mode %v maintains no parity", e.mode)
	}
	geo := e.geo
	z := (pageOff - geo.ZonesOff()) / geo.ZoneSize()
	col := pageOff - geo.ParityBase(z)
	acc := make([]byte, layout.PageSize)
	row := make([]byte, layout.PageSize)
	for r := uint64(0); r < geo.DataRows(); r++ {
		if err := e.dev.ReadAt(row, geo.RowByteOff(z, r, col)); err != nil {
			return fmt.Errorf("surviving row %d unreadable: %w", r, err)
		}
		xor.Into(acc, row)
	}
	return e.writeRepaired(pageOff, acc)
}

// writeRepaired installs repaired page contents: RepairPage when the page
// is poisoned (clearing the poison, per the ACPI repair flow), a plain
// persisted write otherwise (scribble recovery).
func (e *Engine) writeRepaired(pageOff uint64, data []byte) error {
	if e.dev.IsPoisoned(pageOff) {
		return e.dev.RepairPage(pageOff, data)
	}
	e.dev.WriteAt(pageOff, data)
	e.dev.Persist(pageOff, layout.PageSize)
	return nil
}

// recoverAtOpen restores pool consistency after a crash: repair recorded
// and known-bad pages, replay committed redo logs, roll back active undo
// logs, recompute parity for every touched column, and resync the replica
// pool (Pmemobj-R offline repair).
func (e *Engine) recoverAtOpen() error {
	// Known-bad pages first: replay needs readable media. This is the
	// paper's "Linux keeps track of known bad pages across reboots"
	// path, which Pangolin consumes at pool open (§3.3) — implemented
	// here, though the paper's artifact left it future work.
	pageSet := make(map[uint64]bool)
	for _, rec := range e.readBadPageRecords() {
		pageSet[rec] = true
	}
	for _, p := range e.dev.PoisonedPages() {
		pageSet[p] = true
	}
	if e.replica != nil {
		// Pmemobj-R: restore primary pages from the replica, then
		// resync the replica (offline repair, §2.3).
		for p := range pageSet {
			buf := make([]byte, layout.PageSize)
			if err := e.replica.ReadAt(buf, p); err != nil {
				return fmt.Errorf("core: page %#x lost in both pools: %w", p, err)
			}
			if err := e.dev.RepairPage(p, buf); err != nil {
				return err
			}
		}
		for _, p := range e.replica.PoisonedPages() {
			buf := make([]byte, layout.PageSize)
			if err := e.dev.ReadAt(buf, p); err != nil {
				return fmt.Errorf("core: replica page %#x lost in both pools: %w", p, err)
			}
			if err := e.replica.RepairPage(p, buf); err != nil {
				return err
			}
		}
	} else {
		for p := range pageSet {
			if err := e.repairPage(p); err != nil {
				// Best effort: modes without the needed redundancy
				// leave the page bad, and later reads fault on it —
				// matching libpmemobj, which cannot repair at all.
				if e.mode.Parity() {
					return fmt.Errorf("core: open-time repair of page %#x: %w", p, err)
				}
				continue
			}
		}
	}
	if len(pageSet) > 0 {
		if err := e.writeBadPageRecord(nil); err != nil {
			return err
		}
		e.stats.Recovered.Add(uint64(len(pageSet)))
	}

	// Logs: replay committed redo, roll back active undo.
	type colRange struct{ zone, col, n uint64 }
	var touched []colRange
	var absSpans []span // absolute ranges, for replica resync
	noteRange := func(off, n uint64) {
		absSpans = append(absSpans, span{off: off, n: n})
		for n > 0 {
			loc := e.geo.Locate(off)
			seg := min(n, e.geo.RowSize()-loc.Col)
			touched = append(touched, colRange{loc.Zone, loc.Col, seg})
			off += seg
			n -= seg
		}
	}
	for _, log := range e.lm.Recover() {
		switch log.State {
		case logrec.StateRedoCommitted:
			for _, rec := range log.Records {
				switch rec.Kind {
				case recData:
					off := binary.LittleEndian.Uint64(rec.Payload)
					data := rec.Payload[8:]
					e.dev.WriteAt(off, data)
					e.dev.Persist(off, uint64(len(data)))
					if e.geo.InZoneData(off) {
						noteRange(off, uint64(len(data)))
					}
				case recAllocOp:
					op, err := alloc.DecodeOp(rec.Payload)
					if err != nil {
						return fmt.Errorf("core: corrupt alloc op in committed log: %w", err)
					}
					if err := alloc.ApplyToDevice(e.dev, e.geo, op, func(off uint64, old, new_ []byte) {
						noteRange(off, uint64(len(new_)))
						if e.replica != nil {
							e.replica.WriteAt(off, new_)
							e.replica.Persist(off, uint64(len(new_)))
						}
					}); err != nil {
						return fmt.Errorf("core: replaying alloc op: %w", err)
					}
				case recRoot:
					oid := layout.OID{
						Pool: binary.LittleEndian.Uint64(rec.Payload[0:]),
						Off:  binary.LittleEndian.Uint64(rec.Payload[8:]),
					}
					e.applyRoot(oid, binary.LittleEndian.Uint64(rec.Payload[16:]))
				case recSnapshot:
					// Undo snapshots in a committed lane are dead
					// weight (pmemobj commit); never reapply them.
				}
			}
		case logrec.StateUndoActive:
			for i := len(log.Records) - 1; i >= 0; i-- {
				rec := log.Records[i]
				if rec.Kind != recSnapshot {
					continue
				}
				off := binary.LittleEndian.Uint64(rec.Payload)
				old := rec.Payload[8:]
				e.dev.WriteAt(off, old)
				e.dev.Persist(off, uint64(len(old)))
				if e.geo.InZoneData(off) {
					noteRange(off, uint64(len(old)))
				}
			}
		}
		if err := e.lm.ClearRecovered(log); err != nil {
			return err
		}
	}

	// Parity is not logged (§3.6): recompute it for every column the
	// replayed or rolled-back ranges touched.
	if e.mode.Parity() {
		for _, c := range touched {
			if err := e.par.RecomputeColumn(c.zone, c.col, c.n); err != nil {
				return err
			}
		}
	}
	// Pmemobj-R: resync the replica over every range recovery touched.
	if e.replica != nil {
		for _, s := range absSpans {
			e.replica.WriteAt(s.off, e.dev.Slice(s.off, s.n))
			e.replica.Persist(s.off, s.n)
		}
	}
	return nil
}

// readBadPageRecords merges both bad-page record copies.
func (e *Engine) readBadPageRecords() []uint64 {
	var pages []uint64
	for _, off := range []uint64{layout.BadPageRecOff(), layout.BadPageRecReplicaOff()} {
		buf := make([]byte, layout.PageSize)
		if err := e.dev.ReadAt(buf, off); err != nil {
			continue // the record page itself is poisoned; the twin decides
		}
		rec := layout.DecodeBadPageRecord(buf)
		pages = append(pages, rec.Pages...)
	}
	return pages
}

// InjectMediaError poisons the page containing the given pool offset,
// destroying its contents — the §4.6 error-injection hook (mprotect/SIGBUS
// emulation in the paper, device poison here).
func (e *Engine) InjectMediaError(off uint64) {
	e.dev.Poison(off)
}

// InjectScribble overwrites [off, off+n) with random bytes, bypassing all
// library bookkeeping — the §4.6 software-corruption injection.
func (e *Engine) InjectScribble(off, n uint64, seed int64) {
	e.dev.Scribble(off, n, rand.New(rand.NewSource(seed)))
}
