package core

import (
	"testing"

	"github.com/pangolin-go/pangolin/internal/layout"
)

// TestChecksumFieldFaultDuringCommit poisons the page holding an object's
// header between Open and Commit, so the commit-time re-read of the
// checksum field's old bytes (refreshChecksums) hits a media fault. The
// object is larger than a page and only its second page is modified, so
// this is the one read in the commit path that touches the header page —
// it must route through faultRepair; substituting zeros for the old bytes
// would fold a wrong old⊕new delta into the zone's parity column and
// leave parity corrupt until the next scrub.
func TestChecksumFieldFaultDuringCommit(t *testing.T) {
	e := mkEngine(t, PangolinMLPC)

	// Two-page object so the modified range and the header live on
	// different pages (a same-page fault would be repaired earlier, by
	// collectRanges' old-byte read).
	const userSize = 2 * layout.PageSize
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(userSize, 7)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Modify 8 bytes on the object's second page only.
	const modOff = layout.PageSize
	data, err := tx.AddRange(oid, modOff, 8)
	if err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	copy(data[modOff:modOff+8], "pangolin")
	// The micro-buffer is populated; now destroy the header's page on
	// media. Commit's checksum-field read is the next access to it.
	e.InjectMediaError(oid.HeaderOff() + 12)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit across header-page fault: %v", err)
	}

	// The fault must have been repaired online and the delta folded from
	// the true old bytes: parity holds, the object verifies, and nothing
	// is left for a scrub to fix up.
	verifyParity(t, e)
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadObjects != 0 || rep.Unrecovered != 0 || rep.ParityFixes != 0 || rep.PagesHealed != 0 {
		t.Fatalf("scrub had repairs left to do after commit-path recovery: %+v", rep)
	}
	got, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[modOff:modOff+8]) != "pangolin" {
		t.Fatalf("modified bytes lost: %q", got[modOff:modOff+8])
	}
}
