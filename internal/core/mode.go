// Package core implements the Pangolin engine: fault-tolerant,
// crash-consistent transactions over a simulated NVMM pool, together with
// the libpmemobj-style baselines the paper evaluates against (Table 2).
//
// The engine composes the substrates: nvm (media + persistence model),
// layout (pool format), alloc (persistent heap), logrec (redo/undo lanes),
// parity (zone parity), csum (object checksums) and mbuf (micro-buffers).
package core

import (
	"fmt"

	"github.com/pangolin-go/pangolin/internal/layout"
)

// Mode selects the library operation mode of Table 2 of the paper.
type Mode int

const (
	// Pmemobj is the libpmemobj baseline: undo logging with direct
	// in-place NVMM writes and no fault tolerance.
	Pmemobj Mode = iota
	// Pangolin is the micro-buffering baseline: redo logging through
	// DRAM shadows with canary protection, but no replication, parity,
	// or checksums.
	Pangolin
	// PangolinML adds metadata and redo-log replication.
	PangolinML
	// PangolinMLP adds zone parity for user objects.
	PangolinMLP
	// PangolinMLPC adds per-object checksums: the full system and the
	// default.
	PangolinMLPC
	// PmemobjR is libpmemobj with a full replica pool (100% space
	// overhead), the paper's fault-tolerant comparison point.
	PmemobjR
	// PmemobjP is the §3.5 extension the paper sketches but does not
	// build: an undo-logging system adopting Pangolin's hybrid parity
	// scheme. Parity patches are computed from the XOR of the logged
	// snapshot (old) and the in-place data (new) at commit. Media
	// errors are repairable offline (at open) for ~1% space instead of
	// Pmemobj-R's 100%; there are no checksums and no online recovery.
	PmemobjP
)

// String returns the paper's abbreviation for the mode.
func (m Mode) String() string {
	switch m {
	case Pmemobj:
		return "Pmemobj"
	case Pangolin:
		return "Pangolin"
	case PangolinML:
		return "Pangolin-ML"
	case PangolinMLP:
		return "Pangolin-MLP"
	case PangolinMLPC:
		return "Pangolin-MLPC"
	case PmemobjR:
		return "Pmemobj-R"
	case PmemobjP:
		return "Pmemobj-P"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MicroBuffered reports whether transactions shadow objects in DRAM
// micro-buffers (all Pangolin modes) rather than writing NVMM in place.
func (m Mode) MicroBuffered() bool {
	return m == Pangolin || m == PangolinML || m == PangolinMLP || m == PangolinMLPC
}

// ReplicateMeta reports whether pool metadata and transaction logs are
// replicated ("+ML").
func (m Mode) ReplicateMeta() bool {
	return m == PangolinML || m == PangolinMLP || m == PangolinMLPC
}

// Parity reports whether zone parity is maintained ("+P").
func (m Mode) Parity() bool { return m == PangolinMLP || m == PangolinMLPC || m == PmemobjP }

// Checksums reports whether object checksums are maintained ("+C").
func (m Mode) Checksums() bool { return m == PangolinMLPC }

// ReplicaPool reports whether a full replica device mirrors the pool
// (Pmemobj-R).
func (m Mode) ReplicaPool() bool { return m == PmemobjR }

// flagMicroBuf complements the layout flags so the mode round-trips
// through the pool header.
const flagMicroBuf uint32 = 1 << 16

// headerFlags encodes the mode into pool-header feature flags.
func headerFlags(m Mode) uint32 {
	var f uint32
	if m.MicroBuffered() {
		f |= flagMicroBuf
	}
	if m.ReplicateMeta() {
		f |= layout.FlagReplicateMeta
	}
	if m.Parity() {
		f |= layout.FlagParity
	}
	if m.Checksums() {
		f |= layout.FlagChecksums
	}
	if m.ReplicaPool() {
		f |= layout.FlagReplicaPool
	}
	return f
}

// modeFromFlags recovers the mode from pool-header flags.
func modeFromFlags(f uint32) (Mode, error) {
	for _, m := range []Mode{Pmemobj, Pangolin, PangolinML, PangolinMLP, PangolinMLPC, PmemobjR, PmemobjP} {
		if headerFlags(m) == f {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode flags %#x", f)
}

// VerifyPolicy selects when object checksums are verified (§3.3).
type VerifyPolicy int

const (
	// VerifyDefault checks an object's checksum when its micro-buffer is
	// created, before any modification.
	VerifyDefault VerifyPolicy = iota
	// VerifyConservative additionally verifies on every access,
	// including read-only Get.
	VerifyConservative
)

// Options configures an engine.
type Options struct {
	Mode   Mode
	Policy VerifyPolicy
	// ScrubEvery, when nonzero, runs a scrubbing pass after every
	// ScrubEvery committed transactions ("Scrub" mode, §3.3).
	ScrubEvery uint64
	// ParityThreshold overrides the hybrid atomic/vectorized XOR
	// crossover (bytes); 0 selects the paper's 8 KB.
	ParityThreshold int
	// Zero forces zeroing the device at create time — required when the
	// device may hold prior contents, and the §4.2 pool-init cost.
	Zero bool
	// ReadVerifyLimit bounds per-read checksum verification on the
	// concurrent read path (GetRO): objects larger than this many bytes
	// are served with header sanity + poison checks only, like the
	// default verify policy, and rely on scrubbing — verifying a
	// multi-kilobyte array object (e.g. a hash table) on every read
	// would make reads cost O(object) instead of O(access), the same
	// trap §3.5's incremental checksums avoid on the write side. 0
	// selects the 16 KB default (covers every per-key node of the six
	// paper structures, rtree's 4 KB nodes included); negative means
	// no limit.
	ReadVerifyLimit int
}

// roVerifyLimit resolves the ReadVerifyLimit option.
func (o Options) roVerifyLimit() uint64 {
	switch {
	case o.ReadVerifyLimit < 0:
		return ^uint64(0)
	case o.ReadVerifyLimit == 0:
		return 16 << 10
	default:
		return uint64(o.ReadVerifyLimit)
	}
}
