package core

import (
	"testing"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// TestPmemobjPOfflineRepair: the §3.5 extension repairs a lost page from
// parity at pool open — 1% space instead of Pmemobj-R's 100% — but not
// online (direct writes make live parity reconstruction unsafe).
func TestPmemobjPOfflineRepair(t *testing.T) {
	e := mkEngine(t, PmemobjP)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(500, 1)
		if err != nil {
			return err
		}
		copy(data, "parity-protected undo system")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	verifyParity(t, e)
	e.InjectMediaError(oid.Off)
	// Online access fails with a reopen demand.
	if _, err := e.Get(oid); err == nil {
		t.Fatal("Pmemobj-P recovered online; direct-write modes must not")
	}
	// Offline (open-time) recovery restores the page from parity.
	e2 := reopenEngine(t, e, false, 0)
	got, err := e2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "parity" {
		t.Fatalf("restored %q", got[:6])
	}
	verifyParity(t, e2)
}

// TestPmemobjPParityAfterOverlappingRanges: overlapping AddRange calls
// must not double-apply parity patches (the snapshot dedupe property).
func TestPmemobjPParityAfterOverlappingRanges(t *testing.T) {
	e := mkEngine(t, PmemobjP)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		oid, _, err = tx.Alloc(256, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(tx *Tx) error {
		// Three overlapping ranges, written between declarations.
		data, err := tx.AddRange(oid, 0, 100)
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			data[i] = 1
		}
		if _, err := tx.AddRange(oid, 50, 100); err != nil {
			return err
		}
		for i := 50; i < 150; i++ {
			data[i] = 2
		}
		if _, err := tx.AddRange(oid, 0, 256); err != nil {
			return err
		}
		for i := 150; i < 256; i++ {
			data[i] = 3
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	verifyParity(t, e)
	got, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[60] != 2 || got[200] != 3 {
		t.Fatalf("data wrong: %d %d %d", got[0], got[60], got[200])
	}
}

// TestPmemobjPAbortKeepsParity: rolling back restores both the data and
// the parity invariant (no patches were applied before commit).
func TestPmemobjPAbortKeepsParity(t *testing.T) {
	e := mkEngine(t, PmemobjP)
	var oid layout.OID
	if err := e.Run(func(tx *Tx) error {
		var err error
		var data []byte
		oid, data, err = tx.Alloc(128, 1)
		if err != nil {
			return err
		}
		copy(data, "committed")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tx.AddRange(oid, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "scratched")
	// Also an aborted allocation with its init writes.
	if _, _, err := tx.Alloc(64, 2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	verifyParity(t, e)
	got, err := e.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:9]) != "committed" {
		t.Fatalf("rollback failed: %q", got[:9])
	}
}

// TestSnapshotIntervalLogic exercises the covered-interval helpers
// directly.
func TestSnapshotIntervalLogic(t *testing.T) {
	var covered []span
	sub := func(off, n uint64) []span { return subtractCovered(covered, span{off, n}) }
	if got := sub(10, 5); len(got) != 1 || got[0] != (span{10, 5}) {
		t.Fatalf("empty covered: %+v", got)
	}
	covered = insertSpan(covered, span{10, 5}) // [10,15)
	if got := sub(10, 5); len(got) != 0 {
		t.Fatalf("fully covered: %+v", got)
	}
	if got := sub(8, 10); len(got) != 2 || got[0] != (span{8, 2}) || got[1] != (span{15, 3}) {
		t.Fatalf("straddling: %+v", got)
	}
	covered = insertSpan(covered, span{20, 5}) // [10,15) [20,25)
	if got := sub(12, 10); len(got) != 1 || got[0] != (span{15, 5}) {
		t.Fatalf("between: %+v", got)
	}
	covered = insertSpan(covered, span{15, 5}) // merge → [10,25)
	if len(covered) != 1 || covered[0] != (span{10, 15}) {
		t.Fatalf("merge failed: %+v", covered)
	}
	// Adjacent-left merge.
	covered = insertSpan(covered, span{5, 5})
	if len(covered) != 1 || covered[0] != (span{5, 20}) {
		t.Fatalf("left merge failed: %+v", covered)
	}
	// Disjoint insert stays sorted.
	covered = insertSpan(covered, span{100, 1})
	covered = insertSpan(covered, span{50, 1})
	if len(covered) != 3 || covered[1] != (span{50, 1}) {
		t.Fatalf("sorted insert failed: %+v", covered)
	}
}

// TestPmemobjPCrashDuringParityUpdates crashes inside the commit's parity
// phase; open-time rollback must recompute parity for the touched
// columns.
func TestPmemobjPCrashDuringParityUpdates(t *testing.T) {
	for crashAt := 1; ; crashAt++ {
		geo := layout.Default()
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		e, err := Create(dev, geo, Options{Mode: PmemobjP})
		if err != nil {
			t.Fatal(err)
		}
		var oid layout.OID
		if err := e.Run(func(tx *Tx) error {
			var err error
			var data []byte
			oid, data, err = tx.Alloc(600, 1)
			if err != nil {
				return err
			}
			for i := range data {
				data[i] = 0xAA
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		crashed, _ := runUntilCrash(dev, crashAt, func() {
			_ = e.Run(func(tx *Tx) error {
				data, err := tx.AddRange(oid, 0, 600)
				if err != nil {
					return err
				}
				for i := range data[:600] {
					data[i] = 0xBB
				}
				return nil
			})
		})
		img := dev.CrashCopy(nvm.CrashEvictRandom, int64(crashAt))
		e2, err := Open(img, Options{Mode: PmemobjP}, nil)
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		got, err := e2.Get(oid)
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		if got[0] != 0xAA && got[0] != 0xBB {
			t.Fatalf("crashAt=%d: torn byte %#x", crashAt, got[0])
		}
		for _, b := range got {
			if b != got[0] {
				t.Fatalf("crashAt=%d: torn object", crashAt)
			}
		}
		assertPoolInvariants(t, e2)
		e2.Close()
		e.Close()
		if !crashed {
			return
		}
		if crashAt > 3000 {
			t.Fatal("sweep did not terminate")
		}
	}
}
