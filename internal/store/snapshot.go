package store

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// Typed snapshot errors. ErrSnapshotTooOld surfaces on a snapshot whose
// pinned generation was evicted from the version buffer (pin cap or
// retention cap exceeded, or the buffer invalidated after an unreadable
// pre-state): the snapshot can no longer prove its generation's bytes,
// so it refuses to answer rather than degrade to live reads.
// ErrSnapshotUnsupported is the capability-absent verdict the shard
// layer returns for backends without SnapshotViewer — an explicit "this
// backend cannot do that", never a silent downgrade.
var (
	ErrSnapshotTooOld      = errors.New("store: snapshot too old: pinned generation evicted from the version buffer")
	ErrSnapshotUnsupported = errors.New("store: backend does not support MVCC snapshots")
)

// Version-buffer bounds. The buffer is strictly bounded: at most
// DefaultMaxPins distinct pinned generations (opening past the cap
// evicts the oldest pin) and at most DefaultMaxVersions retained
// superseded versions (commits that would exceed it evict the oldest
// pin until the survivors' versions fit). Evicted pins answer every
// subsequent read with ErrSnapshotTooOld.
const (
	DefaultMaxPins     = 16
	DefaultMaxVersions = 1 << 16
)

// version is one superseded value of a key: the state the key held
// before the commit at generation supersededAt overwrote it. A snapshot
// pinned at generation G resolves a key through the oldest version with
// supersededAt > G; present=false records "the key did not exist yet",
// masking a later insert from older snapshots.
type version struct {
	supersededAt uint64
	val          uint64
	present      bool
}

// VersionBuffer is the bounded undo/version buffer behind a backend's
// SnapshotViewer capability, shared by both in-repo engines. The engine
// drives it from its owner goroutine around every Apply:
//
//	if vb.Recording() { vb.Stage(k, preVal, wasPresent) } // per mutated key
//	...mutate...
//	vb.Commit() // batch durable — or vb.Abort() if nothing was applied
//
// Stage is first-wins per batch, so a key mutated twice in one batch
// keeps its pre-batch state; Commit assigns the new generation and
// publishes the staged versions only if the batch really applied,
// preserving the Apply contract ("on error nothing is applied").
// Pre-states are staged only while a pin exists, so an idle buffer
// costs one map-length check per batch.
//
// Pin/Release/reads take an internal mutex and are safe from any
// goroutine; the live reads a Snapshot falls through to still follow
// the View exclusion contract (reader-gate discipline).
type VersionBuffer struct {
	mu           sync.Mutex
	gen          uint64               // committed generation (batches applied)
	pins         map[uint64]int       // pinned generation -> refcount
	versions     map[uint64][]version // key -> superseded versions, supersededAt ascending
	retained     int                  // total version entries across keys
	evictedBelow uint64               // pins at gen < this are too old
	staged       map[uint64]version   // current batch's pre-states (supersededAt unset)
	maxPins      int
	maxVersions  int
}

// NewVersionBuffer returns an empty buffer with the default bounds.
func NewVersionBuffer() *VersionBuffer {
	return &VersionBuffer{
		pins:        make(map[uint64]int),
		versions:    make(map[uint64][]version),
		maxPins:     DefaultMaxPins,
		maxVersions: DefaultMaxVersions,
	}
}

// Recording reports whether any pin is held — the engine's cue to stage
// pre-states for the batch it is about to apply.
func (b *VersionBuffer) Recording() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pins) > 0
}

// Stage records k's pre-batch state (first call per key per batch wins).
func (b *VersionBuffer) Stage(k, val uint64, present bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.staged == nil {
		b.staged = make(map[uint64]version)
	}
	if _, dup := b.staged[k]; !dup {
		b.staged[k] = version{val: val, present: present}
	}
}

// Commit advances the generation and, if pins are still held, publishes
// the staged pre-states as versions superseded at the new generation.
func (b *VersionBuffer) Commit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gen++
	if len(b.staged) > 0 {
		if len(b.pins) > 0 {
			for k, ver := range b.staged {
				ver.supersededAt = b.gen
				b.versions[k] = append(b.versions[k], ver)
				b.retained++
			}
		}
		b.staged = nil
	}
	b.pruneLocked()
	for b.retained > b.maxVersions && len(b.pins) > 0 {
		b.evictOldestPinLocked()
		b.pruneLocked()
	}
}

// Abort discards the staged pre-states of a batch that did not apply.
func (b *VersionBuffer) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.staged = nil
}

// Invalidate evicts every pin — the engine's escape hatch when it could
// not read a pre-state it was obliged to preserve (e.g. unrepaired
// corruption on the staging read). Open snapshots fail their next read
// with ErrSnapshotTooOld instead of silently missing a version.
func (b *VersionBuffer) Invalidate() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gen+1 > b.evictedBelow {
		b.evictedBelow = b.gen + 1
	}
	b.pins = make(map[uint64]int)
	b.pruneLocked()
}

// Open pins the current committed generation and returns its Snapshot.
// At the pin cap the oldest pinned generation is evicted to make room.
func (b *VersionBuffer) Open(ordered bool) *Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, shared := b.pins[b.gen]; !shared && len(b.pins) >= b.maxPins {
		b.evictOldestPinLocked()
		b.pruneLocked()
	}
	b.pins[b.gen]++
	return &Snapshot{b: b, gen: b.gen, ordered: ordered}
}

// Pins reports the distinct pinned generations (Stats.SnapshotPins).
func (b *VersionBuffer) Pins() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pins)
}

// Retained reports the held version entries (Stats.VersionsRetained).
func (b *VersionBuffer) Retained() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retained
}

func (b *VersionBuffer) release(gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := b.pins[gen]; n > 1 {
		b.pins[gen] = n - 1
		return
	}
	delete(b.pins, gen)
	b.pruneLocked()
}

// evictOldestPinLocked drops the oldest pinned generation and advances
// the too-old watermark past it.
func (b *VersionBuffer) evictOldestPinLocked() {
	oldest, have := uint64(0), false
	for g := range b.pins {
		if !have || g < oldest {
			oldest, have = g, true
		}
	}
	if !have {
		return
	}
	delete(b.pins, oldest)
	if oldest+1 > b.evictedBelow {
		b.evictedBelow = oldest + 1
	}
}

// pruneLocked drops versions no surviving pin can resolve: a pin at G
// only ever reads versions with supersededAt > G, so everything at or
// below the minimum pinned generation is dead weight. With no pins the
// buffer empties entirely.
func (b *VersionBuffer) pruneLocked() {
	if len(b.pins) == 0 {
		if b.retained > 0 {
			b.versions = make(map[uint64][]version)
			b.retained = 0
		}
		return
	}
	minPinned, have := uint64(0), false
	for g := range b.pins {
		if !have || g < minPinned {
			minPinned, have = g, true
		}
	}
	for k, vs := range b.versions {
		i := 0
		for i < len(vs) && vs[i].supersededAt <= minPinned {
			i++
		}
		if i == 0 {
			continue
		}
		b.retained -= i
		if i == len(vs) {
			delete(b.versions, k)
		} else {
			b.versions[k] = vs[i:]
		}
	}
}

// resolve answers k at generation gen: (val, present, true) when a
// retained version applies, hasVersion=false when the live state is
// already the state at gen, or ErrSnapshotTooOld past the watermark.
func (b *VersionBuffer) resolve(gen, k uint64) (val uint64, present, hasVersion bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen < b.evictedBelow {
		return 0, false, false, ErrSnapshotTooOld
	}
	for _, ver := range b.versions[k] {
		if ver.supersededAt > gen {
			return ver.val, ver.present, true, nil
		}
	}
	return 0, false, false, nil
}

// overlayEntry is one key whose snapshot-visible state differs from (or
// must be checked against) the live state during a snapshot scan.
type overlayEntry struct {
	k, v    uint64
	present bool
}

// overlay collects the in-range keys with an applicable version at gen,
// sorted ascending so ordered scans can interleave them.
func (b *VersionBuffer) overlay(gen, lo, hi uint64) ([]overlayEntry, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen < b.evictedBelow {
		return nil, ErrSnapshotTooOld
	}
	var out []overlayEntry
	for k, vs := range b.versions {
		if k < lo || k > hi {
			continue
		}
		for _, ver := range vs {
			if ver.supersededAt > gen {
				out = append(out, overlayEntry{k: k, v: ver.val, present: ver.present})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out, nil
}

// Snapshot is a pinned-generation read handle. It holds no data itself:
// a read resolves the key through the version buffer first (superseded
// versions win, present=false masks later inserts) and falls through to
// the live reader only for keys untouched since the pin. The live
// View is supplied per call so the same snapshot serves both read
// populations — the shard layer passes the concurrent ReadView under
// the reader gate on the fast path and the owner Store on the worker
// fallback (Store satisfies View). Live reads follow the caller's usual
// exclusion contract; the buffer itself is internally locked.
//
// Release drops the pin (idempotent, any goroutine); every read after
// Release — or after the pin is evicted — returns ErrSnapshotTooOld.
type Snapshot struct {
	b        *VersionBuffer
	gen      uint64
	ordered  bool
	released atomic.Bool
}

// Gen is the pinned generation (the backend's committed-batch count at
// pin time).
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// Ordered mirrors the backend's Scan ordering for the snapshot scan.
func (sn *Snapshot) Ordered() bool { return sn.ordered }

// Release drops the pin. Idempotent and safe from any goroutine —
// connection teardown paths call it without a worker hop.
func (sn *Snapshot) Release() {
	if sn.released.CompareAndSwap(false, true) {
		sn.b.release(sn.gen)
	}
}

// Get reads k as of the pinned generation.
func (sn *Snapshot) Get(live View, k uint64) (uint64, bool, error) {
	if sn.released.Load() {
		return 0, false, ErrSnapshotTooOld
	}
	v, present, has, err := sn.b.resolve(sn.gen, k)
	if err != nil {
		return 0, false, err
	}
	if has {
		return v, present, nil
	}
	return live.Get(k)
}

// Scan walks [lo, hi] as of the pinned generation: the live scan
// stream with superseded versions substituted in, later inserts masked
// out, and keys deleted since the pin added back. Ordered backends keep
// ascending output by interleaving the sorted overlay; unordered
// backends stay unordered-but-complete. The kv.Map iteration contract
// holds: fn=false stops early, and a mid-scan read failure aborts with
// that error.
func (sn *Snapshot) Scan(live View, lo, hi uint64, fn func(k, v uint64) bool) error {
	if sn.released.Load() {
		return ErrSnapshotTooOld
	}
	ov, err := sn.b.overlay(sn.gen, lo, hi)
	if err != nil {
		return err
	}
	if sn.ordered {
		return sn.scanOrdered(live, lo, hi, ov, fn)
	}
	return sn.scanUnordered(live, lo, hi, ov, fn)
}

func (sn *Snapshot) scanOrdered(live View, lo, hi uint64, ov []overlayEntry, fn func(k, v uint64) bool) error {
	i, stopped := 0, false
	err := live.Scan(lo, hi, func(k, v uint64) bool {
		for i < len(ov) && ov[i].k < k {
			e := ov[i]
			i++
			if e.present && !fn(e.k, e.v) {
				stopped = true
				return false
			}
		}
		if i < len(ov) && ov[i].k == k {
			e := ov[i]
			i++
			if !e.present {
				return true // inserted after the pin: invisible
			}
			if !fn(e.k, e.v) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		if err == nil {
			return nil
		}
		return err
	}
	for ; i < len(ov); i++ {
		if ov[i].present && !fn(ov[i].k, ov[i].v) {
			return nil
		}
	}
	return nil
}

func (sn *Snapshot) scanUnordered(live View, lo, hi uint64, ov []overlayEntry, fn func(k, v uint64) bool) error {
	idx := make(map[uint64]int, len(ov))
	for i := range ov {
		idx[ov[i].k] = i
	}
	seen := make(map[uint64]bool, len(ov))
	stopped := false
	err := live.Scan(lo, hi, func(k, v uint64) bool {
		if i, ok := idx[k]; ok {
			seen[k] = true
			e := ov[i]
			if !e.present {
				return true
			}
			if !fn(e.k, e.v) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	for _, e := range ov {
		if e.present && !seen[e.k] {
			if !fn(e.k, e.v) {
				return nil
			}
		}
	}
	return nil
}
