package logstore

import (
	"os"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

func testOpts() Options {
	return Options{Structure: "hashmap", Index: 0, Count: 1, SegmentBytes: 4 << 10}
}

func fill(t *testing.T, s *Store, lo, hi uint64) {
	t.Helper()
	for k := lo; k < hi; k++ {
		if _, err := s.Apply([]store.Op{{Kind: store.OpPut, K: k, V: k * 7}}); err != nil {
			t.Fatal(err)
		}
	}
}

func checkAll(t *testing.T, s *Store, lo, hi uint64) {
	t.Helper()
	for k := lo; k < hi; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("key %d = (%d,%v,%v), want %d", k, v, ok, err, k*7)
		}
	}
}

// TestRotationSealsWithHints writes past the segment threshold and
// checks the invariant behind fast reopen: every sealed segment carries
// a hint file, the active tail does not.
func TestRotationSealsWithHints(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 0, 400) // 400 puts ≈ 23KB of records: several rotations
	if len(s.segs) < 3 {
		t.Fatalf("only %d segments after 400 puts with 4KiB threshold", len(s.segs))
	}
	for _, sg := range s.segs[:len(s.segs)-1] {
		if _, err := os.Stat(hintPath(dir, sg.id)); err != nil {
			t.Errorf("sealed segment %d has no hint: %v", sg.id, err)
		}
	}
	if _, err := os.Stat(hintPath(dir, s.active().id)); !os.IsNotExist(err) {
		t.Errorf("active segment %d has a hint file (stat err %v)", s.active().id, err)
	}
	checkAll(t, s, 0, 400)
}

// TestHintFallback damages sealed segments' hint files — truncated,
// byte-flipped, and deleted — and reopens: recovery must detect each
// bad hint (whole-file CRC) and fall back to the strict segment scan,
// landing on exactly the same index.
func TestHintFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 0, 400)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	sealed := make([]int, 0, len(s.segs)-1)
	for _, sg := range s.segs[:len(s.segs)-1] {
		sealed = append(sealed, sg.id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 3 {
		t.Fatalf("need >=3 sealed segments, have %d", len(sealed))
	}
	// Three flavors of damage across three different sealed segments.
	if err := os.Remove(hintPath(dir, sealed[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(hintPath(dir, sealed[1]), 20); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hintPath(dir, sealed[2]))
	if err != nil {
		t.Fatal(err)
	}
	data[41] ^= 0xff // first entry's kind byte; whole-file CRC must catch it
	if err := os.WriteFile(hintPath(dir, sealed[2]), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkAll(t, s2, 0, 400)
	if got := s2.Stats().Objects; got != 400 {
		t.Fatalf("reopened with %d objects, want 400", got)
	}
}

// TestMergeRefusesCorruptRecord pins the no-redundancy rule: when
// compaction meets a record that fails its CRC it must abort with a
// typed corruption error and leave the segment in place — deleting it
// would convert detected corruption into silent loss.
func TestMergeRefusesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 0, 400)
	fill(t, s, 0, 400) // overwrite everything: oldest segment is all dead
	if !s.mergeDue() {
		t.Fatal("merge not due after full overwrite")
	}
	oldest := s.segs[0]
	// Flip a byte in the oldest segment's first record body.
	f, err := os.OpenFile(segPath(dir, oldest.id), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 6); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = s.ScrubStep()
	if err == nil {
		t.Fatal("merge step over a corrupt record succeeded")
	}
	if !pangolin.IsCorruption(err) {
		t.Fatalf("merge error is untyped: %v", err)
	}
	if _, statErr := os.Stat(segPath(dir, oldest.id)); statErr != nil {
		t.Fatalf("merge deleted the corrupt segment: %v", statErr)
	}
	if s.compactions != 0 {
		t.Fatalf("compactions = %d after aborted merge", s.compactions)
	}
	checkAll(t, s, 0, 400) // live data (all in newer segments) unharmed

	// The corrupt segment is quarantined: maintenance must go back to the
	// CRC verify sweep instead of restarting the doomed merge (and
	// erroring at the same record) every tick.
	if s.mergeDue() {
		t.Fatal("merge still due on the quarantined segment")
	}
	wrapped := false
	for i := 0; i < 100 && !wrapped; i++ {
		rep, done, err := s.ScrubStep()
		if err != nil {
			t.Fatalf("scrub step %d after quarantine: %v", i, err)
		}
		if !rep.ChecksumsVerified {
			t.Fatalf("scrub step %d after quarantine was not a verify step", i)
		}
		wrapped = done
	}
	if !wrapped {
		t.Fatal("verify sweep never completed a wrap after quarantine")
	}
}

// TestCrashSaveSuspendsInflightMerge pins the crash-image contract
// against an *already running* merge: once CrashSave records its
// sidecar, subsequent ScrubSteps must drop the in-flight job rather
// than finish it — completing would delete the oldest segment while its
// copied-forward live records sit past the crash cut, so the simulated
// reopen would lose committed, fsynced data.
func TestCrashSaveSuspendsInflightMerge(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.Scrub.MaxObjectsPerStep = 8 // many steps per merge: easy to catch mid-flight
	s, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 0, 400)
	fill(t, s, 20, 400) // keys 0..19 stay live in the oldest segment; rest of it is dead
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if !s.mergeDue() {
		t.Fatal("merge not due on the mostly-dead oldest segment")
	}
	oldest := s.segs[0].id
	if _, _, err := s.ScrubStep(); err != nil { // starts the merge
		t.Fatal(err)
	}
	if s.merge == nil {
		t.Fatal("merge not in flight after one step")
	}
	if err := s.CrashSave(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := s.ScrubStep(); err != nil {
			t.Fatalf("scrub step %d with crash image pending: %v", i, err)
		}
	}
	if _, err := os.Stat(segPath(dir, oldest)); err != nil {
		t.Fatalf("merge deleted segment %d despite the pending crash image: %v", oldest, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts) // applies the crash cut
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkAll(t, s2, 0, 400)
}

// TestRotationFailureDefersOutOfApply forces rotation to fail (the next
// segment file already exists, so addSegment's O_EXCL create errors)
// and pins the Apply contract: the batch is applied, so Apply must
// return its results with a nil error — surfacing the rotation error
// would make the shard worker re-apply the whole group per-op. The
// failure instead surfaces through ScrubStep and rotation is retried
// until it succeeds.
func TestRotationFailureDefersOutOfApply(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocker := segPath(dir, 1)
	if err := os.WriteFile(blocker, nil, 0o666); err != nil {
		t.Fatal(err)
	}
	fill(t, s, 0, 200) // crosses the 4KiB threshold; every Apply must keep succeeding
	if s.rotateErr == nil {
		t.Fatal("rotation never failed against the blocked segment path")
	}
	if len(s.segs) != 1 {
		t.Fatalf("%d segments while rotation is blocked, want 1", len(s.segs))
	}
	checkAll(t, s, 0, 200)
	if _, _, err := s.ScrubStep(); err == nil {
		t.Fatal("ScrubStep did not surface the deferred rotation failure")
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	fill(t, s, 200, 210) // next Apply retries rotation and seals
	if len(s.segs) < 2 {
		t.Fatalf("rotation not retried after unblocking: %d segments", len(s.segs))
	}
	if s.rotateErr != nil {
		t.Fatalf("rotateErr still set after successful retry: %v", s.rotateErr)
	}
	checkAll(t, s, 0, 210)
	if _, _, err := s.ScrubStep(); err != nil {
		t.Fatalf("scrub step after recovery: %v", err)
	}
}
