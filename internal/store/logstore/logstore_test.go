package logstore

import (
	"os"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

func testOpts() Options {
	return Options{Structure: "hashmap", Index: 0, Count: 1, SegmentBytes: 4 << 10}
}

func fill(t *testing.T, s *Store, lo, hi uint64) {
	t.Helper()
	for k := lo; k < hi; k++ {
		if _, err := s.Apply([]store.Op{{Kind: store.OpPut, K: k, V: k * 7}}); err != nil {
			t.Fatal(err)
		}
	}
}

func checkAll(t *testing.T, s *Store, lo, hi uint64) {
	t.Helper()
	for k := lo; k < hi; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("key %d = (%d,%v,%v), want %d", k, v, ok, err, k*7)
		}
	}
}

// TestRotationSealsWithHints writes past the segment threshold and
// checks the invariant behind fast reopen: every sealed segment carries
// a hint file, the active tail does not.
func TestRotationSealsWithHints(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 0, 400) // 400 puts ≈ 23KB of records: several rotations
	if len(s.segs) < 3 {
		t.Fatalf("only %d segments after 400 puts with 4KiB threshold", len(s.segs))
	}
	for _, sg := range s.segs[:len(s.segs)-1] {
		if _, err := os.Stat(hintPath(dir, sg.id)); err != nil {
			t.Errorf("sealed segment %d has no hint: %v", sg.id, err)
		}
	}
	if _, err := os.Stat(hintPath(dir, s.active().id)); !os.IsNotExist(err) {
		t.Errorf("active segment %d has a hint file (stat err %v)", s.active().id, err)
	}
	checkAll(t, s, 0, 400)
}

// TestHintFallback damages sealed segments' hint files — truncated,
// byte-flipped, and deleted — and reopens: recovery must detect each
// bad hint (whole-file CRC) and fall back to the strict segment scan,
// landing on exactly the same index.
func TestHintFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 0, 400)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	sealed := make([]int, 0, len(s.segs)-1)
	for _, sg := range s.segs[:len(s.segs)-1] {
		sealed = append(sealed, sg.id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 3 {
		t.Fatalf("need >=3 sealed segments, have %d", len(sealed))
	}
	// Three flavors of damage across three different sealed segments.
	if err := os.Remove(hintPath(dir, sealed[0])); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(hintPath(dir, sealed[1]), 20); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(hintPath(dir, sealed[2]))
	if err != nil {
		t.Fatal(err)
	}
	data[41] ^= 0xff // first entry's kind byte; whole-file CRC must catch it
	if err := os.WriteFile(hintPath(dir, sealed[2]), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkAll(t, s2, 0, 400)
	if got := s2.Stats().Objects; got != 400 {
		t.Fatalf("reopened with %d objects, want 400", got)
	}
}

// TestMergeRefusesCorruptRecord pins the no-redundancy rule: when
// compaction meets a record that fails its CRC it must abort with a
// typed corruption error and leave the segment in place — deleting it
// would convert detected corruption into silent loss.
func TestMergeRefusesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 0, 400)
	fill(t, s, 0, 400) // overwrite everything: oldest segment is all dead
	if !s.mergeDue() {
		t.Fatal("merge not due after full overwrite")
	}
	oldest := s.segs[0]
	// Flip a byte in the oldest segment's first record body.
	f, err := os.OpenFile(segPath(dir, oldest.id), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 6); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = s.ScrubStep()
	if err == nil {
		t.Fatal("merge step over a corrupt record succeeded")
	}
	if !pangolin.IsCorruption(err) {
		t.Fatalf("merge error is untyped: %v", err)
	}
	if _, statErr := os.Stat(segPath(dir, oldest.id)); statErr != nil {
		t.Fatalf("merge deleted the corrupt segment: %v", statErr)
	}
	if s.compactions != 0 {
		t.Fatalf("compactions = %d after aborted merge", s.compactions)
	}
	checkAll(t, s, 0, 400) // live data (all in newer segments) unharmed
}
