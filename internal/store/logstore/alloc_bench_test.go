package logstore

import (
	"testing"

	"github.com/pangolin-go/pangolin/internal/store"
)

// BenchmarkAllocLogAppend measures the log engine's committed-batch
// append: one iteration is one 64-op Apply (encode the run, one
// WriteAt, fold into the index). The encode and offset scratch are
// store-owned and reused, so allocs/op should stay near the result
// slice alone; the number is gated by make bench-alloc against
// bench/alloc_budgets.txt.
func BenchmarkAllocLogAppend(b *testing.B) {
	st, err := Create(b.TempDir()+"/shard-0000.log", Options{Structure: "hashmap", Index: 0, Count: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const batch = 64
	ops := make([]store.Op, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = store.Op{Kind: store.OpPut, K: uint64(i*batch+j) % 8192, V: uint64(i)}
		}
		if _, err := st.Apply(ops); err != nil {
			b.Fatal(err)
		}
	}
}
