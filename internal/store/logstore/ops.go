package logstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

// Get implements store.Store: an index lookup followed by a re-read of
// the framed record on media — the log engine's "verified read". A CRC
// or frame mismatch surfaces as a typed *pangolin.CorruptionError (the
// OID encodes segment id and offset); there is no repair path.
func (s *Store) Get(k uint64) (uint64, bool, error) {
	e, ok := s.idx[k]
	if !ok {
		return 0, false, nil
	}
	v, err := s.readVerified(e, k)
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// readVerified reads the record backing e and checks frame integrity
// and that it really is a put of k.
func (s *Store) readVerified(e entry, k uint64) (uint64, error) {
	corrupt := func(reason string) error {
		return &pangolin.CorruptionError{
			OID:    pangolin.OID{Pool: uint64(e.seg), Off: uint64(e.off)},
			Reason: "logstore: " + reason,
		}
	}
	sg := s.segByID(e.seg)
	if sg == nil {
		return 0, corrupt("index points at a missing segment")
	}
	var rec [recSize]byte
	if _, err := sg.f.ReadAt(rec[:], e.off); err != nil {
		return 0, corrupt("record read failed: " + err.Error())
	}
	kind, _, key, val, ok := decodeRecord(rec[:])
	if !ok {
		return 0, corrupt("record crc mismatch")
	}
	if kind != recPut || key != k {
		return 0, corrupt("record frame mismatch")
	}
	return val, nil
}

// Scan implements store.Store: an unordered-but-complete walk of the
// in-range index entries, serving the values cached in the index.
func (s *Store) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	for k, e := range s.idx {
		if k < lo || k > hi {
			continue
		}
		if !fn(k, e.val) {
			return nil
		}
	}
	return nil
}

// Apply implements store.Store: encode the batch's puts and deletes as
// one run of data records sealed by a commit record, append it with a
// single write, then fold it into the index computing per-op results
// (gets inside the batch observe the batch's earlier ops). Atomicity is
// structural — recovery ignores any run without its commit record — and
// on a write error the tail is truncated back, so nothing is applied.
func (s *Store) Apply(ops []store.Op) ([]store.Result, error) {
	if s.closed {
		return nil, fmt.Errorf("logstore: store closed")
	}
	nData := 0
	for _, op := range ops {
		switch op.Kind {
		case store.OpPut, store.OpDel:
			nData++
		case store.OpGet:
		default:
			return nil, fmt.Errorf("logstore: unknown op kind %d", op.Kind)
		}
	}
	// The result slice is store-owned scratch (store.Store's Apply
	// contract): valid until the next Apply, so the single owner
	// goroutine reuses it across batches instead of allocating per call.
	if cap(s.resBuf) < len(ops) {
		s.resBuf = make([]store.Result, len(ops))
	}
	res := s.resBuf[:len(ops)]
	if nData == 0 {
		for i, op := range ops {
			e, ok := s.idx[op.K]
			res[i] = store.Result{V: e.val, OK: ok}
		}
		return res, nil
	}
	act := s.active()
	buf := s.buf[:0]
	offs := s.offsBuf[:0]
	// With pinned snapshots open, preserve each mutated key's pre-batch
	// state in the version buffer (the index is untouched until the
	// batch is durable, so these reads see exactly the prior committed
	// state). The merge's copy-forward rewrites identical values, so it
	// never needs to preserve anything.
	recording := !s.merging && s.vb.Recording()
	for _, op := range ops {
		switch op.Kind {
		case store.OpPut:
			if recording {
				e, ok := s.idx[op.K]
				s.vb.Stage(op.K, e.val, ok)
			}
			offs = append(offs, act.size+int64(len(buf)))
			buf = encodeRecord(buf, recPut, s.batch, op.K, op.V)
		case store.OpDel:
			if recording {
				e, ok := s.idx[op.K]
				s.vb.Stage(op.K, e.val, ok)
			}
			offs = append(offs, act.size+int64(len(buf)))
			buf = encodeRecord(buf, recDel, s.batch, op.K, 0)
		}
	}
	buf = encodeRecord(buf, recCommit, s.batch, uint64(nData), 0)
	s.buf, s.offsBuf = buf, offs
	if _, err := act.f.WriteAt(buf, act.size); err != nil {
		// Nothing is applied: restore the tail so the failed bytes can
		// never be replayed (best-effort; recovery's committed-batch scan
		// is the backstop).
		_ = act.f.Truncate(act.size)
		s.vb.Abort()
		return nil, fmt.Errorf("logstore: append batch: %w", err)
	}
	s.batch++
	s.vb.Commit()
	act.size += int64(len(buf))
	act.records += uint64(nData)
	di := 0
	for i, op := range ops {
		switch op.Kind {
		case store.OpPut:
			s.indexApply(act.id, recPut, op.K, offs[di], op.V)
			di++
			res[i] = store.Result{OK: true}
		case store.OpGet:
			e, ok := s.idx[op.K]
			res[i] = store.Result{V: e.val, OK: ok}
		case store.OpDel:
			_, present := s.idx[op.K]
			s.indexApply(act.id, recDel, op.K, offs[di], 0)
			di++
			res[i] = store.Result{OK: present}
		}
	}
	if act.size >= s.segBytes {
		if err := s.rotate(); err != nil {
			// The batch is applied and readable; rotation failing only
			// delays sealing. It must NOT surface through Apply's error
			// return — store.Store promises an Apply error means nothing
			// was applied, and the shard worker retries the whole group
			// per-op on that basis, which would double-apply this batch.
			// Stash it instead: the threshold check retries on every later
			// Apply (the tail only grows), and ScrubStep both retries and
			// reports persistent failure as a maintenance error.
			s.rotateErr = err
		} else {
			s.rotateErr = nil
		}
	}
	return res, nil
}

// retryRotate re-attempts a rotation that failed during Apply and was
// deferred. Clears rotateErr on success (or if the pressure is gone);
// keeps it and returns the failure otherwise.
func (s *Store) retryRotate() error {
	if s.rotateErr == nil || s.active().size < s.segBytes {
		s.rotateErr = nil
		return nil
	}
	if err := s.rotate(); err != nil {
		s.rotateErr = err
		return fmt.Errorf("logstore: deferred rotation: %w", err)
	}
	s.rotateErr = nil
	return nil
}

// rotate seals the active segment — fsync, then a hint file with its
// final per-key state — and opens the next one. Called at batch
// boundaries only, so segments always end on a complete batch.
func (s *Store) rotate() error {
	act := s.active()
	if err := act.f.Sync(); err != nil {
		return fmt.Errorf("logstore: seal segment %d: %w", act.id, err)
	}
	if err := s.writeHint(act); err != nil {
		return err
	}
	return s.addSegment(act.id + 1)
}

// Save implements store.Store: fsync the active tail (sealed segments
// were fsynced at rotation) and the directory, and supersede any
// pending crash image — after a save everything is on media, so the
// simulated crash it described can no longer lose anything.
func (s *Store) Save() error {
	act := s.active()
	if err := act.f.Sync(); err != nil {
		return fmt.Errorf("logstore: save: %w", err)
	}
	s.synced = act.size
	if s.crashPending {
		if err := os.Remove(filepath.Join(s.dir, crashName)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("logstore: save: %w", err)
		}
		s.crashPending = false
	}
	return syncDir(s.dir)
}

// CrashSave implements store.Store: record the crash image as a sidecar
// — a seeded cut inside the active segment's unsynced tail, the bytes a
// power failure may or may not have reached media with — without
// disturbing the live store (which keeps appending to the same files;
// the next Open truncates to the cut and drops younger segments).
// While the sidecar is pending, merges are suspended: the image needs
// every pre-crash segment file intact.
func (s *Store) CrashSave(seed int64) error {
	act := s.active()
	unsynced := act.size - s.synced
	cut := crashCut{Seg: act.id, Off: s.synced + int64(mix64(uint64(seed))%uint64(unsynced+1))}
	data, err := json.Marshal(cut)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, crashName), data); err != nil {
		return fmt.Errorf("logstore: crash save: %w", err)
	}
	s.crashPending = true
	return nil
}

// mix64 is the splitmix64 finalizer, decorrelating crash cuts across
// nearby seeds.
func mix64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// view is the concurrent read handle: pure reads against the index and
// segment files, safe from any number of goroutines while the owner is
// quiescent (the shard reader gate provides that exclusion — the same
// contract as the pangolin ReadView).
type view struct{ s *Store }

// ReadView implements store.ReadViewer.
func (s *Store) ReadView() (store.View, error) { return view{s: s}, nil }

// OpenSnapshot implements store.SnapshotViewer: pin the current
// committed generation (the batch counter) in the version buffer.
// Subsequent batches preserve overwritten pre-states there, so the
// snapshot resolves every read at exactly the pinned generation.
func (s *Store) OpenSnapshot() (*store.Snapshot, error) {
	if s.closed {
		return nil, fmt.Errorf("logstore: store closed")
	}
	return s.vb.Open(s.Ordered()), nil
}

func (v view) Get(k uint64) (uint64, bool, error) { return v.s.Get(k) }
func (v view) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	return v.s.Scan(lo, hi, fn)
}

// Hint files record a sealed segment's final per-key state so reopening
// replays one small file instead of rescanning the segment:
//
//	magic u64 | seg u64 | records u64 | maxBatch u64 | count u64
//	count × (kind u8 | key u64 | off u64 | val u64)
//	crc32 over everything before it
const hintEntrySize = 25

// writeHint scans the sealed segment and writes its hint atomically. A
// hint is an optimization, never a source of truth: a missing or
// invalid one falls back to the strict segment scan.
func (s *Store) writeHint(seg *segment) error {
	type hintEntry struct {
		kind byte
		off  int64
		val  uint64
	}
	final := make(map[uint64]hintEntry)
	var order []uint64 // deterministic hint bytes: first-seen key order
	_, maxBatch, _, err := scanSegment(seg, true, func(kind byte, key uint64, off int64, val uint64) {
		if _, seen := final[key]; !seen {
			order = append(order, key)
		}
		final[key] = hintEntry{kind: kind, off: off, val: val}
	})
	if err != nil {
		return fmt.Errorf("logstore: hint for segment %d: %w", seg.id, err)
	}
	buf := make([]byte, 0, 40+len(final)*hintEntrySize+4)
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], hintMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(seg.id))
	binary.LittleEndian.PutUint64(hdr[16:], seg.records)
	binary.LittleEndian.PutUint64(hdr[24:], maxBatch)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(final)))
	buf = append(buf, hdr[:]...)
	for _, key := range order {
		e := final[key]
		var ent [hintEntrySize]byte
		ent[0] = e.kind
		binary.LittleEndian.PutUint64(ent[1:], key)
		binary.LittleEndian.PutUint64(ent[9:], uint64(e.off))
		binary.LittleEndian.PutUint64(ent[17:], e.val)
		buf = append(buf, ent[:]...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	return writeFileAtomic(hintPath(s.dir, seg.id), buf)
}

// loadHint replays a sealed segment's hint into the index. ok=false —
// missing, truncated, or failing its CRC — means the caller must fall
// back to scanning the segment itself.
func (s *Store) loadHint(seg *segment) (records uint64, ok bool) {
	data, err := os.ReadFile(hintPath(s.dir, seg.id))
	if err != nil || len(data) < 44 {
		return 0, false
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, false
	}
	if binary.LittleEndian.Uint64(body[0:]) != hintMagic ||
		binary.LittleEndian.Uint64(body[8:]) != uint64(seg.id) {
		return 0, false
	}
	records = binary.LittleEndian.Uint64(body[16:])
	maxBatch := binary.LittleEndian.Uint64(body[24:])
	count := binary.LittleEndian.Uint64(body[32:])
	if uint64(len(body)) != 40+count*hintEntrySize {
		return 0, false
	}
	for i := uint64(0); i < count; i++ {
		ent := body[40+i*hintEntrySize:]
		kind := ent[0]
		if kind != recPut && kind != recDel {
			return 0, false
		}
		key := binary.LittleEndian.Uint64(ent[1:])
		off := int64(binary.LittleEndian.Uint64(ent[9:]))
		s.indexApply(seg.id, kind, key, off, binary.LittleEndian.Uint64(ent[17:]))
	}
	if maxBatch >= s.batch {
		s.batch = maxBatch + 1
	}
	return records, true
}
