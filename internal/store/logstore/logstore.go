// Package logstore is the append-only (bitcask-style) storage backend:
// the in-repo baseline the paper's engine races against. Each shard is
// a directory of CRC-framed segment files plus an in-memory index from
// key to the newest record holding it; writes append — a batch of
// operations becomes a run of data records sealed by one commit record,
// so the batch is atomic by construction (recovery drops any tail
// without its commit) — and point reads re-verify the framed record on
// media before trusting it. Sealed segments get hint files (the
// segment's final per-key state) so reopening skips the full scan, and
// background merge/compaction — driven through ScrubStep by the shard
// layer's existing maintenance scheduler — rewrites the oldest sealed
// segment's live records to the tail and deletes it, reclaiming dead
// records and tombstones.
//
// Contrast with pangolinstore: no parity and no online repair, so
// corruption is detected (CRC mismatches surface as the same typed
// *pangolin.CorruptionError taxonomy) but never healed, and the store
// deliberately does not implement store.FaultInjector. What it buys is
// raw write speed: one sequential file append per committed batch, no
// checksum/parity maintenance per object.
//
// # On-disk layout
//
//	shard-0007.log/
//	  MANIFEST       JSON: structure name, shard index, set size
//	  000000.seg     record log (sealed)
//	  000000.hint    sealed segment's final per-key state + CRC
//	  000001.seg     record log (active tail)
//	  CRASH          crash-image sidecar, present only between
//	                 CrashSave and the next Save or reopen
//
// Every record is 29 bytes: crc32(4) | kind(1) | batch(8) | key(8) |
// val(8), little-endian, CRC over everything after itself. kind is
// put/del/commit; a commit record's key field carries the batch's data
// record count.
//
// # Crash model
//
// Like the pangolin backend, durability is checkpointed: rotation and
// Save fsync, individual commits do not (the analog of the simulated
// device's unflushed lines). CrashSave therefore does not copy files —
// the live store keeps appending to them — it records a sidecar with a
// seeded cut offset inside the active segment's unsynced tail: the
// bytes a dying machine might or might not have gotten to media. The
// next Open applies the cut — truncate the cut segment there, drop
// every younger segment — then runs normal recovery, which truncates
// further back to the last complete committed batch. Save supersedes a
// pending crash image (everything is synced again) and removes the
// sidecar. While a sidecar is pending, merges are suspended: compaction
// deletes segment files, and the crash image needs every pre-crash
// segment intact.
package logstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

// Record kinds.
const (
	recPut    byte = 1
	recDel    byte = 2
	recCommit byte = 3 // seals a batch; key = the batch's data record count
)

// recSize is every record's fixed encoded size.
const recSize = 29

// hintMagic heads every hint file.
const hintMagic uint64 = 0x50474c48494e5431 // "PGLHINT1"

// defaultSegmentBytes is the rotation threshold when Options leaves it
// zero: small enough that tests and the loadtest actually rotate and
// compact, large enough that rotation stays off the per-batch path.
const defaultSegmentBytes = 1 << 20

const (
	manifestName = "MANIFEST"
	crashName    = "CRASH"
)

// ShardDir returns shard i's log directory within a set directory,
// sibling to the pangolin backend's shard-%04d.pgl files.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.log", i))
}

// Options configures a log store.
type Options struct {
	// Structure is the set's kv structure name, recorded in the manifest
	// so mixed-backend sets can verify agreement on open (the log engine
	// itself is structure-less; scans are unordered).
	Structure string
	// Index / Count are this shard's position and the set size, recorded
	// in the manifest and validated on open exactly like the pangolin
	// backend's shard roots.
	Index, Count int
	// SegmentBytes is the rotation threshold; 0 selects the default.
	SegmentBytes int64
	// Scrub bounds one ScrubStep's work: MaxObjectsPerStep records
	// CRC-verified or merged per step.
	Scrub pangolin.ScrubberConfig
}

func (o *Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return defaultSegmentBytes
	}
	return o.SegmentBytes
}

type manifest struct {
	Magic     string `json:"magic"`
	Structure string `json:"structure"`
	Index     int    `json:"index"`
	Count     int    `json:"count"`
}

const manifestMagic = "pangolin-logstore-v1"

// entry is one key's index slot: where its newest put record lives, and
// the value that record carries (cached so scans never touch media).
type entry struct {
	seg int
	off int64
	val uint64
}

// segment is one log file's in-memory state. records counts the data
// records ever appended to it (tombstones included, commits excluded);
// live counts the index entries currently pointing into it, so
// records-live is the segment's reclaimable dead weight.
type segment struct {
	id      int
	f       *os.File
	size    int64
	records uint64
	live    uint64
}

// Store is one shard's log engine. Like every store.Store it belongs to
// one owner goroutine; the read view's concurrent Get/Scan rely on the
// owner being quiescent (the shard reader gate).
type Store struct {
	dir       string
	structure string
	index     int
	count     int
	segBytes  int64
	scrub     pangolin.ScrubberConfig

	segs  []*segment // ascending id; the last is the active tail
	idx   map[uint64]entry
	batch uint64 // next batch id

	synced       int64 // active segment's fsynced prefix
	crashPending bool  // CRASH sidecar on disk: merges suspended
	rotateErr    error // rotation failure deferred out of Apply; retried later

	compactions   uint64
	mergedRecords uint64

	merge       *mergeJob
	cursor      verifyCursor
	quarantined map[int]bool // segments a merge found corruption in: never re-merged

	vb      *store.VersionBuffer // pinned-snapshot version retention
	merging bool                 // inside mergeStep's copy-forward Apply: no staging

	buf     []byte         // Apply's encode buffer
	offsBuf []int64        // Apply's per-record offset buffer
	resBuf  []store.Result // Apply's result scratch; valid until the next Apply

	closed bool
}

var (
	_ store.Store          = (*Store)(nil)
	_ store.ReadViewer     = (*Store)(nil)
	_ store.ScrubRunner    = (*Store)(nil)
	_ store.SnapshotViewer = (*Store)(nil)
)

func segPath(dir string, id int) string  { return filepath.Join(dir, fmt.Sprintf("%06d.seg", id)) }
func hintPath(dir string, id int) string { return filepath.Join(dir, fmt.Sprintf("%06d.hint", id)) }

// Create initializes a fresh log store in dir (created; must not
// already hold one) with an empty active segment.
func Create(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("logstore: store already exists in %s", dir)
	}
	m := manifest{Magic: manifestMagic, Structure: opts.Structure, Index: opts.Index, Count: opts.Count}
	data, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), data); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		structure: opts.Structure,
		index:     opts.Index,
		count:     opts.Count,
		segBytes:  opts.segmentBytes(),
		scrub:     opts.Scrub,
		idx:       make(map[uint64]entry),
		batch:     1,
		vb:        store.NewVersionBuffer(),
	}
	if err := s.addSegment(0); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open recovers a log store from dir: apply any pending crash cut,
// rebuild the index from hint files (or a strict scan) for sealed
// segments, and scan the active segment tolerantly — truncating any
// tail beyond the last complete committed batch, which is how a torn
// crash cut heals. CRC mismatches in sealed segments are real
// corruption and fail the open with a typed *pangolin.CorruptionError.
func Open(dir string, opts Options) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("logstore: bad manifest in %s: %w", dir, err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("logstore: %s is not a logstore shard (magic %q)", dir, m.Magic)
	}
	if m.Index != opts.Index || m.Count != opts.Count {
		return nil, fmt.Errorf("logstore: manifest says shard %d of %d, want shard %d of %d: shard dirs shuffled or mixed between sets",
			m.Index, m.Count, opts.Index, opts.Count)
	}
	if err := applyCrashCut(dir); err != nil {
		return nil, err
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		structure: m.Structure,
		index:     m.Index,
		count:     m.Count,
		segBytes:  opts.segmentBytes(),
		scrub:     opts.Scrub,
		idx:       make(map[uint64]entry),
		batch:     1,
		vb:        store.NewVersionBuffer(),
	}
	if len(ids) == 0 {
		// A crash cut can erase every segment (nothing was ever synced):
		// recover to an empty store.
		if err := s.addSegment(0); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}
	for pos, id := range ids {
		f, err := os.OpenFile(segPath(dir, id), os.O_RDWR, 0o666)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("logstore: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			s.Close()
			return nil, fmt.Errorf("logstore: %w", err)
		}
		seg := &segment{id: id, f: f, size: st.Size()}
		s.segs = append(s.segs, seg)
		sealed := pos < len(ids)-1
		if sealed {
			if err := s.recoverSealed(seg); err != nil {
				s.Close()
				return nil, err
			}
		} else {
			if err := s.recoverActive(seg); err != nil {
				s.Close()
				return nil, err
			}
		}
	}
	s.synced = s.active().size
	return s, nil
}

// recoverSealed loads one sealed segment's final state, preferring its
// hint file and falling back to a strict scan (any CRC mismatch or torn
// batch in a sealed segment is corruption, not a crash artifact — it
// was fsynced whole at rotation).
func (s *Store) recoverSealed(seg *segment) error {
	if records, ok := s.loadHint(seg); ok {
		seg.records = records
		return nil
	}
	records, maxBatch, end, err := scanSegment(seg, true, func(kind byte, key uint64, off int64, val uint64) {
		s.indexApply(seg.id, kind, key, off, val)
	})
	if err != nil {
		return err
	}
	_ = end
	seg.records = records
	if maxBatch >= s.batch {
		s.batch = maxBatch + 1
	}
	return nil
}

// recoverActive scans the active segment, truncating everything past
// the last complete committed batch (a torn append or crash cut).
func (s *Store) recoverActive(seg *segment) error {
	records, maxBatch, end, err := scanSegment(seg, false, func(kind byte, key uint64, off int64, val uint64) {
		s.indexApply(seg.id, kind, key, off, val)
	})
	if err != nil {
		return err
	}
	if end < seg.size {
		if err := seg.f.Truncate(end); err != nil {
			return fmt.Errorf("logstore: truncate torn tail of segment %d: %w", seg.id, err)
		}
		seg.size = end
	}
	seg.records = records
	if maxBatch >= s.batch {
		s.batch = maxBatch + 1
	}
	return nil
}

// indexApply folds one recovered or applied record into the index,
// last-wins, keeping per-segment live counts exact.
func (s *Store) indexApply(segID int, kind byte, key uint64, off int64, val uint64) {
	if old, ok := s.idx[key]; ok {
		if sg := s.segByID(old.seg); sg != nil {
			sg.live--
		}
	}
	if kind == recPut {
		s.idx[key] = entry{seg: segID, off: off, val: val}
		if sg := s.segByID(segID); sg != nil {
			sg.live++
		}
	} else {
		delete(s.idx, key)
	}
}

func (s *Store) segByID(id int) *segment {
	for _, sg := range s.segs {
		if sg.id == id {
			return sg
		}
	}
	return nil
}

func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

// addSegment creates and opens a fresh active segment file.
func (s *Store) addSegment(id int) error {
	f, err := os.OpenFile(segPath(s.dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	s.segs = append(s.segs, &segment{id: id, f: f})
	s.synced = 0
	return syncDir(s.dir)
}

// segmentIDs lists the segment ids present in dir, ascending.
func segmentIDs(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, err
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".seg")
		id, err := strconv.Atoi(base)
		if err != nil {
			return nil, fmt.Errorf("logstore: stray segment file %s", name)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// crashCut is the CRASH sidecar's contents: the active segment and the
// byte offset within it that "made it to media".
type crashCut struct {
	Seg int   `json:"seg"`
	Off int64 `json:"off"`
}

// applyCrashCut consumes a pending CRASH sidecar: drop every segment
// younger than the cut, truncate the cut segment to the cut offset, and
// invalidate its hint (the file no longer matches it). The sidecar is
// removed; recovery then proceeds on what a dead machine would have
// held.
func applyCrashCut(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, crashName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	var cut crashCut
	if err := json.Unmarshal(data, &cut); err != nil {
		return fmt.Errorf("logstore: bad crash sidecar in %s: %w", dir, err)
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if id > cut.Seg {
			if err := os.Remove(segPath(dir, id)); err != nil {
				return fmt.Errorf("logstore: drop post-crash segment %d: %w", id, err)
			}
			os.Remove(hintPath(dir, id)) // best-effort; may not exist
		}
	}
	if err := os.Truncate(segPath(dir, cut.Seg), cut.Off); err != nil {
		return fmt.Errorf("logstore: apply crash cut to segment %d: %w", cut.Seg, err)
	}
	os.Remove(hintPath(dir, cut.Seg)) // stale beyond the cut; rebuild by scan
	if err := os.Remove(filepath.Join(dir, crashName)); err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	return syncDir(dir)
}

// Structure returns the kv structure name recorded in the manifest.
func (s *Store) Structure() string { return s.structure }

// Backend implements store.Store.
func (s *Store) Backend() string { return store.BackendLog }

// Ordered implements store.Store: log scans serve from the index map,
// unordered but complete.
func (s *Store) Ordered() bool { return false }

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	st := store.Stats{
		Backend:             store.BackendLog,
		Objects:             len(s.idx),
		Segments:            len(s.segs),
		Compactions:         s.compactions,
		MergedRecords:       s.mergedRecords,
		QuarantinedSegments: len(s.quarantined),
		SnapshotPins:        s.vb.Pins(),
		VersionsRetained:    s.vb.Retained(),
	}
	var records, live uint64
	for _, sg := range s.segs {
		st.Bytes += uint64(sg.size)
		records += sg.records
		live += sg.live
	}
	st.DeadRecords = records - live
	return st
}

// Close implements store.Store: release file handles without saving.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, sg := range s.segs {
		if sg.f != nil {
			sg.f.Close()
		}
	}
	s.segs = nil
	s.idx = nil
	return nil
}

// writeFileAtomic writes data via temp-file, fsync, rename, and parent
// directory fsync, so the path never holds a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and file creations within it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeRecord appends one record to buf.
func encodeRecord(buf []byte, kind byte, batch, key, val uint64) []byte {
	var rec [recSize]byte
	rec[4] = kind
	binary.LittleEndian.PutUint64(rec[5:], batch)
	binary.LittleEndian.PutUint64(rec[13:], key)
	binary.LittleEndian.PutUint64(rec[21:], val)
	binary.LittleEndian.PutUint32(rec[0:], crc32.ChecksumIEEE(rec[4:]))
	return append(buf, rec[:]...)
}

// decodeRecord parses and CRC-verifies one record.
func decodeRecord(rec []byte) (kind byte, batch, key, val uint64, ok bool) {
	if len(rec) < recSize {
		return 0, 0, 0, 0, false
	}
	if binary.LittleEndian.Uint32(rec[0:]) != crc32.ChecksumIEEE(rec[4:recSize]) {
		return 0, 0, 0, 0, false
	}
	kind = rec[4]
	if kind != recPut && kind != recDel && kind != recCommit {
		return 0, 0, 0, 0, false
	}
	batch = binary.LittleEndian.Uint64(rec[5:])
	key = binary.LittleEndian.Uint64(rec[13:])
	val = binary.LittleEndian.Uint64(rec[21:])
	return kind, batch, key, val, true
}

// scanSegment replays a segment's committed batches into apply (data
// records in order, tombstones included). strict mode — sealed segments
// — fails on any malformed record or torn batch with a typed
// corruption error; tolerant mode — the active tail — stops there and
// returns the end of the last complete batch for truncation. Returns
// the data record count and the largest batch id seen.
func scanSegment(seg *segment, strict bool, apply func(kind byte, key uint64, off int64, val uint64)) (records, maxBatch uint64, end int64, err error) {
	data, err := readAll(seg)
	if err != nil {
		return 0, 0, 0, err
	}
	type pendingRec struct {
		kind byte
		key  uint64
		val  uint64
		off  int64
	}
	var pending []pendingRec
	var curBatch uint64
	corrupt := func(off int64, reason string) (uint64, uint64, int64, error) {
		if !strict {
			return records, maxBatch, end, nil
		}
		return 0, 0, 0, &pangolin.CorruptionError{
			OID:    pangolin.OID{Pool: uint64(seg.id), Off: uint64(off)},
			Reason: "logstore: sealed segment: " + reason,
		}
	}
	for off := int64(0); off < int64(len(data)); off += recSize {
		if off+recSize > int64(len(data)) {
			return corrupt(off, "torn record")
		}
		kind, batch, key, val, ok := decodeRecord(data[off : off+recSize])
		if !ok {
			return corrupt(off, "record crc mismatch")
		}
		if len(pending) == 0 {
			curBatch = batch
		} else if batch != curBatch {
			return corrupt(off, "batch id changed mid-batch")
		}
		switch kind {
		case recCommit:
			if key != uint64(len(pending)) {
				return corrupt(off, "commit record count mismatch")
			}
			for _, r := range pending {
				apply(r.kind, r.key, r.off, r.val)
			}
			records += uint64(len(pending))
			pending = pending[:0]
			if batch > maxBatch {
				maxBatch = batch
			}
			end = off + recSize
		default:
			pending = append(pending, pendingRec{kind: kind, key: key, val: val, off: off})
		}
	}
	if len(pending) > 0 {
		return corrupt(end, "batch without commit record")
	}
	return records, maxBatch, end, nil
}

// readAll reads a segment's current contents.
func readAll(seg *segment) ([]byte, error) {
	data := make([]byte, seg.size)
	if seg.size == 0 {
		return data, nil
	}
	if _, err := seg.f.ReadAt(data, 0); err != nil {
		return nil, fmt.Errorf("logstore: read segment %d: %w", seg.id, err)
	}
	return data, nil
}
