package logstore

import (
	"fmt"
	"os"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
)

// mergeJob is an in-progress compaction of the oldest sealed segment:
// a bounded scan cursor copying still-live records to the tail.
type mergeJob struct {
	segID int
	off   int64
}

// verifyCursor is the background CRC sweep's position.
type verifyCursor struct {
	segID int
	off   int64
}

// recordsPerStep bounds one ScrubStep's work, reusing the pangolin
// scrubber's per-step object budget.
func (s *Store) recordsPerStep() int {
	if s.scrub.MaxObjectsPerStep <= 0 {
		return 64
	}
	return s.scrub.MaxObjectsPerStep
}

// ScrubStep implements store.Store: the maintenance scheduler's tick
// unit. When compaction is due (or already underway) the step advances
// the merge; otherwise it advances a CRC-verify cursor over the
// segments, the log engine's detect-only analog of the pangolin
// scrubber. done reports a completed verify wrap (merge steps are
// housekeeping, never "a pass").
func (s *Store) ScrubStep() (pangolin.ScrubReport, bool, error) {
	if s.rotateErr != nil {
		// A rotation deferred out of Apply (which must not report errors
		// for batches it did apply) is retried here, surfacing repeated
		// failure through the maintenance error path instead.
		if err := s.retryRotate(); err != nil {
			return pangolin.ScrubReport{}, false, err
		}
	}
	if s.crashPending {
		// The pending crash image needs every pre-crash segment file
		// intact, so an in-flight merge must not keep running: completing
		// it would delete the oldest segment while the copied-forward
		// records sit past the crash cut, losing committed data on the
		// simulated reopen. Drop the job — already-copied records are dead
		// weight in the old segment, so the post-Save restart just rescans
		// past them.
		s.merge = nil
	} else if s.merge != nil || s.mergeDue() {
		rep, err := s.mergeStep()
		return rep, false, err
	}
	return s.verifyStep()
}

// mergeDue reports whether the oldest sealed segment has enough dead
// weight (half its records, or no live ones at all) to be worth
// rewriting. Suspended while a crash image is pending: compaction
// deletes files the image still needs. A quarantined oldest segment —
// one where a previous merge met corruption — parks compaction
// entirely: retrying would abort at the same record every tick and
// starve the verify sweep, and merging a *newer* segment instead is
// unsafe (dropping its tombstones could resurrect older puts on
// recovery).
func (s *Store) mergeDue() bool {
	if s.crashPending || len(s.segs) < 2 {
		return false
	}
	oldest := s.segs[0]
	if s.quarantined[oldest.id] {
		return false
	}
	return oldest.live == 0 || oldest.live*2 <= oldest.records
}

// mergeStep advances compaction by up to recordsPerStep records: each
// still-live put (the index points at that exact record) is re-appended
// at the tail as a fresh committed batch, which atomically moves the
// index entry; dead records and tombstones are simply passed over — the
// oldest segment has nothing before it that a tombstone could
// resurrect. When the scan completes the segment and its hint are
// deleted. A CRC mismatch aborts the job with a typed corruption error
// and quarantines the segment so the merge is not retried every tick:
// with no redundancy there is nothing to rebuild the record from, and
// deleting the segment would turn detected corruption into silent loss.
func (s *Store) mergeStep() (pangolin.ScrubReport, error) {
	var rep pangolin.ScrubReport
	if s.merge == nil {
		s.merge = &mergeJob{segID: s.segs[0].id}
	}
	job := s.merge
	seg := s.segByID(job.segID)
	if seg == nil || seg == s.active() {
		// The world changed under the job (the segment went away, or
		// everything before the tail merged); drop it.
		s.merge = nil
		return rep, nil
	}
	var liveOps []store.Op
	for job.off < seg.size && rep.Objects < s.recordsPerStep() {
		var rec [recSize]byte
		if _, err := seg.f.ReadAt(rec[:], job.off); err != nil {
			s.merge = nil
			return rep, fmt.Errorf("logstore: merge segment %d: %w", seg.id, err)
		}
		kind, _, key, _, ok := decodeRecord(rec[:])
		if !ok {
			rep.BadObjects++
			rep.Unrecovered++
			s.merge = nil
			if s.quarantined == nil {
				s.quarantined = make(map[int]bool)
			}
			s.quarantined[seg.id] = true
			return rep, &pangolin.CorruptionError{
				OID:    pangolin.OID{Pool: uint64(seg.id), Off: uint64(job.off)},
				Reason: "logstore: merge found a corrupt record",
			}
		}
		if kind == recPut {
			if e, live := s.idx[key]; live && e.seg == seg.id && e.off == job.off {
				liveOps = append(liveOps, store.Op{Kind: store.OpPut, K: key, V: e.val})
			}
			rep.Objects++
		} else if kind == recDel {
			rep.Objects++
		}
		job.off += recSize
	}
	if len(liveOps) > 0 {
		// Copy-forward rewrites live records with their current values —
		// no logical state changes — so the version buffer must not
		// treat it as an overwrite of pinned bytes.
		s.merging = true
		_, err := s.Apply(liveOps)
		s.merging = false
		if err != nil {
			s.merge = nil
			return rep, fmt.Errorf("logstore: merge copy-forward: %w", err)
		}
		s.mergedRecords += uint64(len(liveOps))
	}
	if job.off < seg.size {
		return rep, nil // more records next step
	}
	// Scan complete; every live record has been copied forward, so the
	// segment is pure dead weight.
	s.merge = nil
	seg.f.Close()
	if err := os.Remove(segPath(s.dir, seg.id)); err != nil {
		return rep, fmt.Errorf("logstore: drop merged segment %d: %w", seg.id, err)
	}
	os.Remove(hintPath(s.dir, seg.id)) // best-effort
	for i, sg := range s.segs {
		if sg == seg {
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			break
		}
	}
	s.compactions++
	return rep, syncDir(s.dir)
}

// verifyStep CRC-checks up to recordsPerStep records from the sweep
// cursor. Mismatches are counted (BadObjects/Unrecovered — detect-only,
// nothing to repair from) rather than erroring, matching the pangolin
// scrubber's "count and keep sweeping" behavior; done reports a full
// wrap over every segment, after which the cursor starts over.
func (s *Store) verifyStep() (pangolin.ScrubReport, bool, error) {
	rep := pangolin.ScrubReport{ChecksumsVerified: true}
	// Find the cursor's segment, or the next surviving one (merges
	// delete segments out from under the sweep).
	pos := len(s.segs) - 1
	for i, sg := range s.segs {
		if sg.id >= s.cursor.segID {
			pos = i
			break
		}
	}
	if s.segs[pos].id != s.cursor.segID {
		s.cursor = verifyCursor{segID: s.segs[pos].id}
	}
	for rep.Objects < s.recordsPerStep() {
		seg := s.segs[pos]
		if s.cursor.off+recSize > seg.size {
			if pos == len(s.segs)-1 {
				// Wrapped: the whole log verified since the last reset.
				s.cursor = verifyCursor{segID: s.segs[0].id}
				return rep, true, nil
			}
			pos++
			s.cursor = verifyCursor{segID: s.segs[pos].id}
			continue
		}
		var rec [recSize]byte
		if _, err := seg.f.ReadAt(rec[:], s.cursor.off); err != nil {
			return rep, false, fmt.Errorf("logstore: verify segment %d: %w", seg.id, err)
		}
		kind, _, _, _, ok := decodeRecord(rec[:])
		if !ok {
			rep.BadObjects++
			rep.Unrecovered++
			rep.Objects++
		} else if kind != recCommit {
			rep.Objects++
		}
		s.cursor.off += recSize
	}
	return rep, false, nil
}

// scrubPass is one full CRC sweep (store.ScrubPass): the segment list
// is planned at pass start and swept with an independent cursor, so
// client batches and even merges can interleave between steps (a
// segment deleted mid-pass is skipped; records appended after the plan
// are the next pass's work).
type scrubPass struct {
	s     *Store
	ids   []int
	sizes map[int]int64
	pos   int
	off   int64
}

// NewScrubPass implements store.ScrubRunner.
func (s *Store) NewScrubPass() store.ScrubPass {
	p := &scrubPass{s: s, sizes: make(map[int]int64)}
	for _, sg := range s.segs {
		p.ids = append(p.ids, sg.id)
		p.sizes[sg.id] = sg.size
	}
	return p
}

// ChecksumsVerified implements store.ScrubRunner: every record is
// CRC-framed, so a completed pass really did verify the whole log.
func (s *Store) ChecksumsVerified() bool { return true }

func (p *scrubPass) Step() (pangolin.ScrubReport, bool, error) {
	rep := pangolin.ScrubReport{ChecksumsVerified: true}
	for rep.Objects < p.s.recordsPerStep() {
		if p.pos >= len(p.ids) {
			return rep, true, nil
		}
		seg := p.s.segByID(p.ids[p.pos])
		size := p.sizes[p.ids[p.pos]]
		if seg == nil || p.off+recSize > min(size, seg.size) {
			p.pos++
			p.off = 0
			continue
		}
		var rec [recSize]byte
		if _, err := seg.f.ReadAt(rec[:], p.off); err != nil {
			return rep, false, fmt.Errorf("logstore: scrub segment %d: %w", seg.id, err)
		}
		kind, _, _, _, ok := decodeRecord(rec[:])
		if !ok {
			rep.BadObjects++
			rep.Unrecovered++
			rep.Objects++
		} else if kind != recCommit {
			rep.Objects++
		}
		p.off += recSize
	}
	return rep, false, nil
}
