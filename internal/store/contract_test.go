// Backend contract suite: every store.Store backend must pass the same
// behavioral checks — single and batched operations, batch atomicity,
// complete scans, reopen-after-save, crash-image recovery, and typed
// corruption surfacing — so the shard layer can treat backends as
// interchangeable. The suite is parameterized over a harness per
// backend; adding a backend means adding a harness, not new tests.
package store_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
	"github.com/pangolin-go/pangolin/internal/store/logstore"
	"github.com/pangolin-go/pangolin/internal/store/pangolinstore"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
)

// harness creates and reopens one backend's store in a directory. The
// corrupt hook damages one live record/object on media so the typed
// corruption test can run per backend; injects reports whether the
// backend is expected to provide store.FaultInjector.
type harness struct {
	name    string
	injects bool
	create  func(t *testing.T, dir string) store.Store
	open    func(t *testing.T, dir string) store.Store
	corrupt func(t *testing.T, st store.Store, dir string)
}

func pgConfig() pangolin.Config {
	return pangolin.Config{Mode: pangolin.ModePangolinMLPC}
}

func harnesses(t *testing.T) []harness {
	structure, err := registry.ByName("hashmap")
	if err != nil {
		t.Fatal(err)
	}
	return []harness{
		{
			name:    "pangolin",
			injects: true,
			create: func(t *testing.T, dir string) store.Store {
				pools, err := pangolin.NewPoolSet(dir, 1, pgConfig())
				if err != nil {
					t.Fatal(err)
				}
				st, err := pangolinstore.Create(pools, 0, structure, pangolin.ScrubberConfig{})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			open: func(t *testing.T, dir string) store.Store {
				pools, err := pangolin.OpenPoolSet(dir, pgConfig())
				if err != nil {
					t.Fatal(err)
				}
				st, err := pangolinstore.Open(pools, 0, pangolin.ScrubberConfig{})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			corrupt: func(t *testing.T, st store.Store, dir string) {
				// Poison the page under the structure's anchor: the next
				// verified read through it faults with a typed error.
				ps := st.(*pangolinstore.Store)
				ps.Pool().InjectMediaError(ps.Map().Anchor().Off)
			},
		},
		{
			name:    "logstore",
			injects: false,
			create: func(t *testing.T, dir string) store.Store {
				st, err := logstore.Create(logstore.ShardDir(dir, 0), logstore.Options{
					Structure: "hashmap", Index: 0, Count: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			open: func(t *testing.T, dir string) store.Store {
				st, err := logstore.Open(logstore.ShardDir(dir, 0), logstore.Options{
					Structure: "hashmap", Index: 0, Count: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			corrupt: func(t *testing.T, st store.Store, dir string) {
				// Flip one byte inside the first segment's first record.
				seg := filepath.Join(logstore.ShardDir(dir, 0), "000000.seg")
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) < 8 {
					t.Fatalf("segment too short to corrupt: %d bytes", len(data))
				}
				data[6] ^= 0xFF
				if err := os.WriteFile(seg, data, 0o666); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
}

func forEachBackend(t *testing.T, fn func(t *testing.T, h harness)) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) { fn(t, h) })
	}
}

func mustApply(t *testing.T, st store.Store, ops ...store.Op) []store.Result {
	t.Helper()
	res, err := st.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(res) != len(ops) {
		t.Fatalf("Apply returned %d results for %d ops", len(res), len(ops))
	}
	return res
}

func mustGet(t *testing.T, st store.Store, k uint64) (uint64, bool) {
	t.Helper()
	v, ok, err := st.Get(k)
	if err != nil {
		t.Fatalf("Get(%d): %v", k, err)
	}
	return v, ok
}

func TestContractBasicOps(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		if st.Backend() != h.name {
			t.Fatalf("Backend() = %q, want %q", st.Backend(), h.name)
		}
		for k := uint64(0); k < 100; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k * 3})
		}
		for k := uint64(0); k < 100; k++ {
			if v, ok := mustGet(t, st, k); !ok || v != k*3 {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*3)
			}
		}
		if _, ok := mustGet(t, st, 1000); ok {
			t.Fatal("Get of an absent key reported ok")
		}
		// Overwrite.
		mustApply(t, st, store.Op{Kind: store.OpPut, K: 5, V: 999})
		if v, _ := mustGet(t, st, 5); v != 999 {
			t.Fatalf("overwrite lost: got %d", v)
		}
		// Delete reports presence, removes, and is idempotent.
		res := mustApply(t, st, store.Op{Kind: store.OpDel, K: 5})
		if !res[0].OK {
			t.Fatal("Del of a present key reported absent")
		}
		if _, ok := mustGet(t, st, 5); ok {
			t.Fatal("key survived delete")
		}
		res = mustApply(t, st, store.Op{Kind: store.OpDel, K: 5})
		if res[0].OK {
			t.Fatal("Del of an absent key reported present")
		}
		// Objects is a backend-defined live-object count: exact pairs for
		// the log index, pairs plus structural objects (root, map header)
		// for a pool — so the contract asserts a lower bound.
		stats := st.Stats()
		if stats.Backend != h.name || stats.Objects < 99 {
			t.Fatalf("Stats = %+v, want backend %s with >= 99 objects", stats, h.name)
		}
	})
}

func TestContractBatchSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		mustApply(t, st, store.Op{Kind: store.OpPut, K: 1, V: 10})
		// One batch mixing all kinds; gets observe the batch's earlier
		// ops (read-your-writes within the batch).
		res := mustApply(t, st,
			store.Op{Kind: store.OpGet, K: 1},
			store.Op{Kind: store.OpPut, K: 2, V: 20},
			store.Op{Kind: store.OpGet, K: 2},
			store.Op{Kind: store.OpDel, K: 1},
			store.Op{Kind: store.OpGet, K: 1},
			store.Op{Kind: store.OpDel, K: 7},
		)
		if !res[0].OK || res[0].V != 10 {
			t.Fatalf("pre-existing get = %+v", res[0])
		}
		if !res[2].OK || res[2].V != 20 {
			t.Fatalf("get of same-batch put = %+v", res[2])
		}
		if !res[3].OK {
			t.Fatal("del of a present key reported absent")
		}
		if res[4].OK {
			t.Fatal("get observed a key the same batch deleted")
		}
		if res[5].OK {
			t.Fatal("del of an absent key reported present")
		}
		// An all-get batch mutates nothing.
		mustApply(t, st, store.Op{Kind: store.OpGet, K: 2}, store.Op{Kind: store.OpGet, K: 3})
		if v, ok := mustGet(t, st, 2); !ok || v != 20 {
			t.Fatalf("state changed under an all-get batch: (%d,%v)", v, ok)
		}
	})
}

func TestContractScanComplete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 200; k += 2 {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k + 1})
		}
		got := make(map[uint64]uint64)
		last, ordered := uint64(0), true
		err := st.Scan(10, 50, func(k, v uint64) bool {
			if dup, seen := got[k]; seen {
				t.Fatalf("scan yielded key %d twice (vals %d, %d)", k, dup, v)
			}
			if len(got) > 0 && k < last {
				ordered = false
			}
			last = k
			got[k] = v
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(10); k <= 50; k += 2 {
			if got[k] != k+1 {
				t.Fatalf("scan missed or mangled key %d: got %d", k, got[k])
			}
		}
		if len(got) != 21 {
			t.Fatalf("scan yielded %d pairs, want 21", len(got))
		}
		if st.Ordered() && !ordered {
			t.Fatal("an Ordered() backend yielded out-of-order keys")
		}
		// Early stop is honored.
		n := 0
		if err := st.Scan(0, ^uint64(0), func(k, v uint64) bool { n++; return n < 5 }); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("scan continued past a false return: %d pairs", n)
		}
	})
}

func TestContractReopen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		dir := t.TempDir()
		st := h.create(t, dir)
		for k := uint64(0); k < 64; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: ^k})
		}
		mustApply(t, st, store.Op{Kind: store.OpDel, K: 7})
		if err := st.Save(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st = h.open(t, dir)
		defer st.Close()
		for k := uint64(0); k < 64; k++ {
			v, ok := mustGet(t, st, k)
			if k == 7 {
				if ok {
					t.Fatal("deleted key resurrected by reopen")
				}
				continue
			}
			if !ok || v != ^k {
				t.Fatalf("reopen lost key %d: (%d,%v)", k, v, ok)
			}
		}
		if st.Stats().Objects < 63 {
			t.Fatalf("reopened object count = %d, want >= 63", st.Stats().Objects)
		}
	})
}

func TestContractCrashReopen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		for seed := int64(1); seed <= 5; seed++ {
			dir := t.TempDir()
			st := h.create(t, dir)
			for k := uint64(0); k < 128; k++ {
				mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k ^ 0xABCD})
			}
			if err := st.Save(); err != nil {
				t.Fatal(err)
			}
			// Unsaved tail: may or may not survive the crash, but must
			// never corrupt the saved prefix.
			for k := uint64(128); k < 192; k++ {
				mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
			}
			if err := st.CrashSave(seed); err != nil {
				t.Fatal(err)
			}
			st.Close()
			st = h.open(t, dir)
			for k := uint64(0); k < 128; k++ {
				if v, ok := mustGet(t, st, k); !ok || v != k^0xABCD {
					t.Fatalf("seed %d: crash lost saved key %d: (%d,%v)", seed, k, v, ok)
				}
			}
			// Tail keys must be all-or-nothing per batch: present with the
			// right value or absent, never mangled.
			for k := uint64(128); k < 192; k++ {
				if v, ok := mustGet(t, st, k); ok && v != k {
					t.Fatalf("seed %d: torn tail key %d = %d", seed, k, v)
				}
			}
			// The recovered store accepts writes.
			mustApply(t, st, store.Op{Kind: store.OpPut, K: 9999, V: 1})
			if v, ok := mustGet(t, st, 9999); !ok || v != 1 {
				t.Fatalf("seed %d: post-recovery write lost", seed)
			}
			st.Close()
		}
	})
}

func TestContractTypedCorruption(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		dir := t.TempDir()
		st := h.create(t, dir)
		defer st.Close()
		// Few keys: the pool backend's early allocations share pages with
		// the structure's anchor, so poisoning the anchor's page is
		// guaranteed to sit under live data.
		for k := uint64(0); k < 8; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
		}
		// Attach the view BEFORE corrupting, mirroring the worker (one
		// long-lived view from startup): the owner's read path repairs
		// corruption online (the pangolin backend does, even during view
		// construction), but an already-attached read-only view must
		// surface it TYPED — that's what routes faulting fast-path reads
		// to the worker's repairing path.
		view, err := st.(store.ReadViewer).ReadView()
		if err != nil {
			t.Fatal(err)
		}
		h.corrupt(t, st, dir)
		var sawTyped bool
		for k := uint64(0); k < 8; k++ {
			_, _, err := view.Get(k)
			if err == nil {
				continue
			}
			if !pangolin.IsCorruption(err) && !pangolin.IsPoison(err) {
				t.Fatalf("corruption surfaced untyped: %v", err)
			}
			sawTyped = true
		}
		if !sawTyped {
			t.Fatal("no read surfaced the injected corruption")
		}
	})
}

func TestContractCapabilities(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		if _, ok := st.(store.ReadViewer); !ok {
			t.Fatal("backend lacks ReadViewer (both in-repo backends provide it)")
		}
		if _, ok := st.(store.ScrubRunner); !ok {
			t.Fatal("backend lacks ScrubRunner (both in-repo backends provide it)")
		}
		if _, ok := st.(store.FaultInjector); ok != h.injects {
			t.Fatalf("FaultInjector presence = %v, want %v", ok, h.injects)
		}
	})
}

func TestContractReadViewMatchesOwner(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 50; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k * 7})
		}
		view, err := st.(store.ReadViewer).ReadView()
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 50; k++ {
			v, ok, err := view.Get(k)
			if err != nil || !ok || v != k*7 {
				t.Fatalf("view.Get(%d) = (%d,%v,%v)", k, v, ok, err)
			}
		}
		n := 0
		if err := view.Scan(0, ^uint64(0), func(k, v uint64) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 50 {
			t.Fatalf("view scan saw %d pairs, want 50", n)
		}
	})
}

func TestContractScrubPassCleanStore(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 200; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
		}
		sc := st.(store.ScrubRunner).NewScrubPass()
		total := pangolin.ScrubReport{ChecksumsVerified: true}
		for i := 0; ; i++ {
			rep, done, err := sc.Step()
			if err != nil {
				t.Fatal(err)
			}
			total.Add(rep)
			if done {
				break
			}
			if i > 10000 {
				t.Fatal("scrub pass never completed")
			}
		}
		if total.BadObjects != 0 || total.Unrecovered != 0 {
			t.Fatalf("clean store scrubbed dirty: %+v", total)
		}
		if total.Objects == 0 {
			t.Fatal("scrub pass visited no objects")
		}
	})
}

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		spec   string
		shards int
		want   []string
		err    bool
	}{
		{"", 3, []string{"pangolin", "pangolin", "pangolin"}, false},
		{"pangolin", 2, []string{"pangolin", "pangolin"}, false},
		{"logstore", 2, []string{"logstore", "logstore"}, false},
		{"pangolin,logstore", 4, []string{"pangolin", "logstore", "pangolin", "logstore"}, false},
		{" logstore , pangolin ", 3, []string{"logstore", "pangolin", "logstore"}, false},
		{"bitcask", 1, nil, true},
		{"pangolin,,logstore", 2, nil, true},
	}
	for _, c := range cases {
		got, err := store.ParseBackendSpec(c.spec, c.shards)
		if c.err {
			if err == nil {
				t.Fatalf("ParseBackendSpec(%q) succeeded, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseBackendSpec(%q): %v", c.spec, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("ParseBackendSpec(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// TestContractApplyRejectsUnknownKind: a malformed batch must fail whole
// — no partial application.
func TestContractApplyRejectsUnknownKind(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		_, err := st.Apply([]store.Op{
			{Kind: store.OpPut, K: 1, V: 1},
			{Kind: 99, K: 2, V: 2},
		})
		if err == nil {
			t.Fatal("Apply accepted an unknown op kind")
		}
		if _, ok := mustGet(t, st, 1); ok {
			t.Fatal("a rejected batch partially applied")
		}
	})
}
