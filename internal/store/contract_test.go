// Backend contract suite: every store.Store backend must pass the same
// behavioral checks — single and batched operations, batch atomicity,
// complete scans, reopen-after-save, crash-image recovery, and typed
// corruption surfacing — so the shard layer can treat backends as
// interchangeable. The suite is parameterized over a harness per
// backend; adding a backend means adding a harness, not new tests.
package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
	"github.com/pangolin-go/pangolin/internal/store/logstore"
	"github.com/pangolin-go/pangolin/internal/store/pangolinstore"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
)

// harness creates and reopens one backend's store in a directory. The
// corrupt hook damages one live record/object on media so the typed
// corruption test can run per backend; injects reports whether the
// backend is expected to provide store.FaultInjector.
type harness struct {
	name    string
	injects bool
	create  func(t *testing.T, dir string) store.Store
	open    func(t *testing.T, dir string) store.Store
	corrupt func(t *testing.T, st store.Store, dir string)
}

func pgConfig() pangolin.Config {
	return pangolin.Config{Mode: pangolin.ModePangolinMLPC}
}

func harnesses(t *testing.T) []harness { return harnessesStruct(t, "hashmap") }

// harnessesStruct builds the backend harnesses over a chosen kv
// structure. The main suite runs on hashmap; the snapshot suite also
// runs on btree so the ordered snapshot-scan merge path (sorted overlay
// interleaved with the ascending live stream) is exercised — the
// logstore serves scans from its index map and stays unordered
// regardless.
func harnessesStruct(t *testing.T, structureName string) []harness {
	structure, err := registry.ByName(structureName)
	if err != nil {
		t.Fatal(err)
	}
	return []harness{
		{
			name:    "pangolin",
			injects: true,
			create: func(t *testing.T, dir string) store.Store {
				pools, err := pangolin.NewPoolSet(dir, 1, pgConfig())
				if err != nil {
					t.Fatal(err)
				}
				st, err := pangolinstore.Create(pools, 0, structure, pangolin.ScrubberConfig{})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			open: func(t *testing.T, dir string) store.Store {
				pools, err := pangolin.OpenPoolSet(dir, pgConfig())
				if err != nil {
					t.Fatal(err)
				}
				st, err := pangolinstore.Open(pools, 0, pangolin.ScrubberConfig{})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			corrupt: func(t *testing.T, st store.Store, dir string) {
				// Poison the page under the structure's anchor: the next
				// verified read through it faults with a typed error.
				ps := st.(*pangolinstore.Store)
				ps.Pool().InjectMediaError(ps.Map().Anchor().Off)
			},
		},
		{
			name:    "logstore",
			injects: false,
			create: func(t *testing.T, dir string) store.Store {
				st, err := logstore.Create(logstore.ShardDir(dir, 0), logstore.Options{
					Structure: structureName, Index: 0, Count: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			open: func(t *testing.T, dir string) store.Store {
				st, err := logstore.Open(logstore.ShardDir(dir, 0), logstore.Options{
					Structure: structureName, Index: 0, Count: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			corrupt: func(t *testing.T, st store.Store, dir string) {
				// Flip one byte inside the first segment's first record.
				seg := filepath.Join(logstore.ShardDir(dir, 0), "000000.seg")
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) < 8 {
					t.Fatalf("segment too short to corrupt: %d bytes", len(data))
				}
				data[6] ^= 0xFF
				if err := os.WriteFile(seg, data, 0o666); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
}

func forEachBackend(t *testing.T, fn func(t *testing.T, h harness)) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) { fn(t, h) })
	}
}

func mustApply(t *testing.T, st store.Store, ops ...store.Op) []store.Result {
	t.Helper()
	res, err := st.Apply(ops)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(res) != len(ops) {
		t.Fatalf("Apply returned %d results for %d ops", len(res), len(ops))
	}
	return res
}

func mustGet(t *testing.T, st store.Store, k uint64) (uint64, bool) {
	t.Helper()
	v, ok, err := st.Get(k)
	if err != nil {
		t.Fatalf("Get(%d): %v", k, err)
	}
	return v, ok
}

func TestContractBasicOps(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		if st.Backend() != h.name {
			t.Fatalf("Backend() = %q, want %q", st.Backend(), h.name)
		}
		for k := uint64(0); k < 100; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k * 3})
		}
		for k := uint64(0); k < 100; k++ {
			if v, ok := mustGet(t, st, k); !ok || v != k*3 {
				t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*3)
			}
		}
		if _, ok := mustGet(t, st, 1000); ok {
			t.Fatal("Get of an absent key reported ok")
		}
		// Overwrite.
		mustApply(t, st, store.Op{Kind: store.OpPut, K: 5, V: 999})
		if v, _ := mustGet(t, st, 5); v != 999 {
			t.Fatalf("overwrite lost: got %d", v)
		}
		// Delete reports presence, removes, and is idempotent.
		res := mustApply(t, st, store.Op{Kind: store.OpDel, K: 5})
		if !res[0].OK {
			t.Fatal("Del of a present key reported absent")
		}
		if _, ok := mustGet(t, st, 5); ok {
			t.Fatal("key survived delete")
		}
		res = mustApply(t, st, store.Op{Kind: store.OpDel, K: 5})
		if res[0].OK {
			t.Fatal("Del of an absent key reported present")
		}
		// Objects is a backend-defined live-object count: exact pairs for
		// the log index, pairs plus structural objects (root, map header)
		// for a pool — so the contract asserts a lower bound.
		stats := st.Stats()
		if stats.Backend != h.name || stats.Objects < 99 {
			t.Fatalf("Stats = %+v, want backend %s with >= 99 objects", stats, h.name)
		}
	})
}

func TestContractBatchSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		mustApply(t, st, store.Op{Kind: store.OpPut, K: 1, V: 10})
		// One batch mixing all kinds; gets observe the batch's earlier
		// ops (read-your-writes within the batch).
		res := mustApply(t, st,
			store.Op{Kind: store.OpGet, K: 1},
			store.Op{Kind: store.OpPut, K: 2, V: 20},
			store.Op{Kind: store.OpGet, K: 2},
			store.Op{Kind: store.OpDel, K: 1},
			store.Op{Kind: store.OpGet, K: 1},
			store.Op{Kind: store.OpDel, K: 7},
		)
		if !res[0].OK || res[0].V != 10 {
			t.Fatalf("pre-existing get = %+v", res[0])
		}
		if !res[2].OK || res[2].V != 20 {
			t.Fatalf("get of same-batch put = %+v", res[2])
		}
		if !res[3].OK {
			t.Fatal("del of a present key reported absent")
		}
		if res[4].OK {
			t.Fatal("get observed a key the same batch deleted")
		}
		if res[5].OK {
			t.Fatal("del of an absent key reported present")
		}
		// An all-get batch mutates nothing.
		mustApply(t, st, store.Op{Kind: store.OpGet, K: 2}, store.Op{Kind: store.OpGet, K: 3})
		if v, ok := mustGet(t, st, 2); !ok || v != 20 {
			t.Fatalf("state changed under an all-get batch: (%d,%v)", v, ok)
		}
	})
}

func TestContractScanComplete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 200; k += 2 {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k + 1})
		}
		got := make(map[uint64]uint64)
		last, ordered := uint64(0), true
		err := st.Scan(10, 50, func(k, v uint64) bool {
			if dup, seen := got[k]; seen {
				t.Fatalf("scan yielded key %d twice (vals %d, %d)", k, dup, v)
			}
			if len(got) > 0 && k < last {
				ordered = false
			}
			last = k
			got[k] = v
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(10); k <= 50; k += 2 {
			if got[k] != k+1 {
				t.Fatalf("scan missed or mangled key %d: got %d", k, got[k])
			}
		}
		if len(got) != 21 {
			t.Fatalf("scan yielded %d pairs, want 21", len(got))
		}
		if st.Ordered() && !ordered {
			t.Fatal("an Ordered() backend yielded out-of-order keys")
		}
		// Early stop is honored.
		n := 0
		if err := st.Scan(0, ^uint64(0), func(k, v uint64) bool { n++; return n < 5 }); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("scan continued past a false return: %d pairs", n)
		}
	})
}

func TestContractReopen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		dir := t.TempDir()
		st := h.create(t, dir)
		for k := uint64(0); k < 64; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: ^k})
		}
		mustApply(t, st, store.Op{Kind: store.OpDel, K: 7})
		if err := st.Save(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st = h.open(t, dir)
		defer st.Close()
		for k := uint64(0); k < 64; k++ {
			v, ok := mustGet(t, st, k)
			if k == 7 {
				if ok {
					t.Fatal("deleted key resurrected by reopen")
				}
				continue
			}
			if !ok || v != ^k {
				t.Fatalf("reopen lost key %d: (%d,%v)", k, v, ok)
			}
		}
		if st.Stats().Objects < 63 {
			t.Fatalf("reopened object count = %d, want >= 63", st.Stats().Objects)
		}
	})
}

func TestContractCrashReopen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		for seed := int64(1); seed <= 5; seed++ {
			dir := t.TempDir()
			st := h.create(t, dir)
			for k := uint64(0); k < 128; k++ {
				mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k ^ 0xABCD})
			}
			if err := st.Save(); err != nil {
				t.Fatal(err)
			}
			// Unsaved tail: may or may not survive the crash, but must
			// never corrupt the saved prefix.
			for k := uint64(128); k < 192; k++ {
				mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
			}
			if err := st.CrashSave(seed); err != nil {
				t.Fatal(err)
			}
			st.Close()
			st = h.open(t, dir)
			for k := uint64(0); k < 128; k++ {
				if v, ok := mustGet(t, st, k); !ok || v != k^0xABCD {
					t.Fatalf("seed %d: crash lost saved key %d: (%d,%v)", seed, k, v, ok)
				}
			}
			// Tail keys must be all-or-nothing per batch: present with the
			// right value or absent, never mangled.
			for k := uint64(128); k < 192; k++ {
				if v, ok := mustGet(t, st, k); ok && v != k {
					t.Fatalf("seed %d: torn tail key %d = %d", seed, k, v)
				}
			}
			// The recovered store accepts writes.
			mustApply(t, st, store.Op{Kind: store.OpPut, K: 9999, V: 1})
			if v, ok := mustGet(t, st, 9999); !ok || v != 1 {
				t.Fatalf("seed %d: post-recovery write lost", seed)
			}
			st.Close()
		}
	})
}

func TestContractTypedCorruption(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		dir := t.TempDir()
		st := h.create(t, dir)
		defer st.Close()
		// Few keys: the pool backend's early allocations share pages with
		// the structure's anchor, so poisoning the anchor's page is
		// guaranteed to sit under live data.
		for k := uint64(0); k < 8; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
		}
		// Attach the view BEFORE corrupting, mirroring the worker (one
		// long-lived view from startup): the owner's read path repairs
		// corruption online (the pangolin backend does, even during view
		// construction), but an already-attached read-only view must
		// surface it TYPED — that's what routes faulting fast-path reads
		// to the worker's repairing path.
		view, err := st.(store.ReadViewer).ReadView()
		if err != nil {
			t.Fatal(err)
		}
		h.corrupt(t, st, dir)
		var sawTyped bool
		for k := uint64(0); k < 8; k++ {
			_, _, err := view.Get(k)
			if err == nil {
				continue
			}
			if !pangolin.IsCorruption(err) && !pangolin.IsPoison(err) {
				t.Fatalf("corruption surfaced untyped: %v", err)
			}
			sawTyped = true
		}
		if !sawTyped {
			t.Fatal("no read surfaced the injected corruption")
		}
	})
}

func TestContractCapabilities(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		if _, ok := st.(store.ReadViewer); !ok {
			t.Fatal("backend lacks ReadViewer (both in-repo backends provide it)")
		}
		if _, ok := st.(store.ScrubRunner); !ok {
			t.Fatal("backend lacks ScrubRunner (both in-repo backends provide it)")
		}
		if _, ok := st.(store.FaultInjector); ok != h.injects {
			t.Fatalf("FaultInjector presence = %v, want %v", ok, h.injects)
		}
		if _, ok := st.(store.SnapshotViewer); !ok {
			t.Fatal("backend lacks SnapshotViewer (both in-repo backends provide it)")
		}
	})
}

func TestContractReadViewMatchesOwner(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 50; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k * 7})
		}
		view, err := st.(store.ReadViewer).ReadView()
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 50; k++ {
			v, ok, err := view.Get(k)
			if err != nil || !ok || v != k*7 {
				t.Fatalf("view.Get(%d) = (%d,%v,%v)", k, v, ok, err)
			}
		}
		n := 0
		if err := view.Scan(0, ^uint64(0), func(k, v uint64) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 50 {
			t.Fatalf("view scan saw %d pairs, want 50", n)
		}
	})
}

func TestContractScrubPassCleanStore(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		for k := uint64(0); k < 200; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k})
		}
		sc := st.(store.ScrubRunner).NewScrubPass()
		total := pangolin.ScrubReport{ChecksumsVerified: true}
		for i := 0; ; i++ {
			rep, done, err := sc.Step()
			if err != nil {
				t.Fatal(err)
			}
			total.Add(rep)
			if done {
				break
			}
			if i > 10000 {
				t.Fatal("scrub pass never completed")
			}
		}
		if total.BadObjects != 0 || total.Unrecovered != 0 {
			t.Fatalf("clean store scrubbed dirty: %+v", total)
		}
		if total.Objects == 0 {
			t.Fatal("scrub pass visited no objects")
		}
	})
}

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		spec   string
		shards int
		want   []string
		err    bool
	}{
		{"", 3, []string{"pangolin", "pangolin", "pangolin"}, false},
		{"pangolin", 2, []string{"pangolin", "pangolin"}, false},
		{"logstore", 2, []string{"logstore", "logstore"}, false},
		{"pangolin,logstore", 4, []string{"pangolin", "logstore", "pangolin", "logstore"}, false},
		{" logstore , pangolin ", 3, []string{"logstore", "pangolin", "logstore"}, false},
		{"bitcask", 1, nil, true},
		{"pangolin,,logstore", 2, nil, true},
	}
	for _, c := range cases {
		got, err := store.ParseBackendSpec(c.spec, c.shards)
		if c.err {
			if err == nil {
				t.Fatalf("ParseBackendSpec(%q) succeeded, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseBackendSpec(%q): %v", c.spec, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("ParseBackendSpec(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// --- Snapshot contract -------------------------------------------------
//
// Both in-repo engines implement store.SnapshotViewer; these tests pin
// its semantics: reads resolve at exactly the pinned generation while
// commits proceed, release (or eviction) fails reads with the typed
// ErrSnapshotTooOld, and the version-buffer gauges account for the pins.

// forEachBackendSnap runs fn over both backends crossed with an
// unordered (hashmap) and an ordered (btree) structure, so both the
// ordered overlay-merge scan and the unordered mask-and-append scan are
// covered.
func forEachBackendSnap(t *testing.T, fn func(t *testing.T, h harness)) {
	for _, structure := range []string{"hashmap", "btree"} {
		for _, h := range harnessesStruct(t, structure) {
			t.Run(h.name+"/"+structure, func(t *testing.T) { fn(t, h) })
		}
	}
}

func TestContractSnapshotPinnedReads(t *testing.T) {
	forEachBackendSnap(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		sv, ok := st.(store.SnapshotViewer)
		if !ok {
			t.Fatal("backend lacks SnapshotViewer")
		}
		for k := uint64(0); k < 50; k++ {
			mustApply(t, st, store.Op{Kind: store.OpPut, K: k, V: k * 10})
		}
		sn, err := sv.OpenSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if sn.Ordered() != st.Ordered() {
			t.Fatalf("snapshot Ordered() = %v, backend reports %v", sn.Ordered(), st.Ordered())
		}
		// Mutate every way a key can change after the pin: overwrite,
		// delete, insert.
		mustApply(t, st,
			store.Op{Kind: store.OpPut, K: 1, V: 999},
			store.Op{Kind: store.OpDel, K: 2},
			store.Op{Kind: store.OpPut, K: 100, V: 1},
		)
		// The live store serves the new state...
		if v, _ := mustGet(t, st, 1); v != 999 {
			t.Fatalf("live Get(1) = %d after overwrite", v)
		}
		if _, ok := mustGet(t, st, 2); ok {
			t.Fatal("live Get(2) still present after delete")
		}
		// ...while the snapshot still reads the pinned image: the
		// overwritten value, the deleted key, and no post-pin insert.
		if v, ok, err := sn.Get(st, 1); err != nil || !ok || v != 10 {
			t.Fatalf("snapshot Get(1) = (%d,%v,%v), want (10,true,nil)", v, ok, err)
		}
		if v, ok, err := sn.Get(st, 2); err != nil || !ok || v != 20 {
			t.Fatalf("snapshot Get(2) = (%d,%v,%v), want (20,true,nil)", v, ok, err)
		}
		if _, ok, err := sn.Get(st, 100); err != nil || ok {
			t.Fatalf("snapshot observed key 100, inserted after the pin (ok=%v err=%v)", ok, err)
		}
		// A full snapshot scan is exactly the pinned image — 50 pairs,
		// original values, ascending when the backend is ordered.
		got := make(map[uint64]uint64)
		last, ordered := uint64(0), true
		if err := sn.Scan(st, 0, ^uint64(0), func(k, v uint64) bool {
			if _, dup := got[k]; dup {
				t.Fatalf("snapshot scan yielded key %d twice", k)
			}
			if len(got) > 0 && k < last {
				ordered = false
			}
			last = k
			got[k] = v
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("snapshot scan yielded %d pairs, want 50", len(got))
		}
		for k := uint64(0); k < 50; k++ {
			if got[k] != k*10 {
				t.Fatalf("snapshot scan key %d = %d, want %d", k, got[k], k*10)
			}
		}
		if sn.Ordered() && !ordered {
			t.Fatal("ordered snapshot scan yielded out-of-order keys")
		}
		// Early stop is honored on the snapshot path too.
		n := 0
		if err := sn.Scan(st, 0, ^uint64(0), func(k, v uint64) bool { n++; return n < 5 }); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("snapshot scan continued past a false return: %d pairs", n)
		}
		// Gauges while pinned: one pin, and exactly the three superseded
		// versions the mutation batch preserved for it.
		if s := st.Stats(); s.SnapshotPins != 1 || s.VersionsRetained != 3 {
			t.Fatalf("pinned gauges = %d pins / %d versions, want 1 / 3", s.SnapshotPins, s.VersionsRetained)
		}
		// Release is idempotent; reads after it fail typed; the buffer
		// prunes to empty once nothing is pinned.
		sn.Release()
		sn.Release()
		if _, _, err := sn.Get(st, 1); !errors.Is(err, store.ErrSnapshotTooOld) {
			t.Fatalf("Get after Release = %v, want ErrSnapshotTooOld", err)
		}
		if err := sn.Scan(st, 0, ^uint64(0), func(k, v uint64) bool { return true }); !errors.Is(err, store.ErrSnapshotTooOld) {
			t.Fatalf("Scan after Release = %v, want ErrSnapshotTooOld", err)
		}
		if s := st.Stats(); s.SnapshotPins != 0 || s.VersionsRetained != 0 {
			t.Fatalf("released gauges = %d pins / %d versions, want 0 / 0", s.SnapshotPins, s.VersionsRetained)
		}
	})
}

// TestContractSnapshotPinEviction: the pin cap bounds how many distinct
// generations stay readable; opening past it evicts the oldest pin,
// whose snapshot then fails with the typed staleness error rather than
// silently reading a newer state.
func TestContractSnapshotPinEviction(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		sv := st.(store.SnapshotViewer)
		mustApply(t, st, store.Op{Kind: store.OpPut, K: 0, V: 0})
		snaps := make([]*store.Snapshot, 0, store.DefaultMaxPins+1)
		for i := 0; i <= store.DefaultMaxPins; i++ {
			sn, err := sv.OpenSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, sn)
			// Advance the generation so every pin is distinct.
			mustApply(t, st, store.Op{Kind: store.OpPut, K: 0, V: uint64(i + 1)})
		}
		if _, _, err := snaps[0].Get(st, 0); !errors.Is(err, store.ErrSnapshotTooOld) {
			t.Fatalf("evicted snapshot read = %v, want ErrSnapshotTooOld", err)
		}
		// The surviving pins still resolve their exact images.
		want := uint64(store.DefaultMaxPins)
		if v, ok, err := snaps[len(snaps)-1].Get(st, 0); err != nil || !ok || v != want {
			t.Fatalf("newest snapshot Get = (%d,%v,%v), want (%d,true,nil)", v, ok, err, want)
		}
		for _, sn := range snaps {
			sn.Release()
		}
		if s := st.Stats(); s.SnapshotPins != 0 || s.VersionsRetained != 0 {
			t.Fatalf("gauges after release-all = %d pins / %d versions", s.SnapshotPins, s.VersionsRetained)
		}
	})
}

// TestContractSnapshotTorture races paginated snapshot scans and
// backup-style full scans against whole-image Apply batches, scrub
// steps, and mid-stream CrashSave (run it with -race). Every batch
// rewrites every key with the round number, so a consistent snapshot
// must see exactly one round across all keys and all pages — observing
// two rounds means the pin leaked a later commit. The RWMutex gate
// enforces the View exclusion contract the way the shard layer does:
// mutators exclusive, snapshot readers shared.
func TestContractSnapshotTorture(t *testing.T) {
	forEachBackendSnap(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		sv := st.(store.SnapshotViewer)
		const nKeys = 96
		batch := func(r uint64) []store.Op {
			ops := make([]store.Op, nKeys)
			for k := range ops {
				ops[k] = store.Op{Kind: store.OpPut, K: uint64(k), V: r}
			}
			return ops
		}
		if _, err := st.Apply(batch(0)); err != nil {
			t.Fatal(err)
		}

		var gate sync.RWMutex
		stop := make(chan struct{})
		errc := make(chan error, 8)
		var writerWG, readerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for r := uint64(1); ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				gate.Lock()
				_, err := st.Apply(batch(r))
				if err == nil && r%5 == 0 {
					_, _, err = st.ScrubStep()
				}
				if err == nil && r%9 == 0 {
					err = st.CrashSave(int64(r))
				}
				gate.Unlock()
				if err != nil {
					errc <- fmt.Errorf("writer round %d: %w", r, err)
					return
				}
			}
		}()
		for g := 0; g < 3; g++ {
			readerWG.Add(1)
			go func(g int) {
				defer readerWG.Done()
				for i := 0; i < 15; i++ {
					gate.RLock()
					sn, err := sv.OpenSnapshot()
					gate.RUnlock()
					if err != nil {
						errc <- err
						return
					}
					rounds := make(map[uint64]bool)
					count := 0
					var scanErr error
					if g == 0 {
						// Backup-style: one full pass over the keyspace.
						gate.RLock()
						scanErr = sn.Scan(st, 0, ^uint64(0), func(k, v uint64) bool {
							rounds[v] = true
							count++
							return true
						})
						gate.RUnlock()
					} else {
						// Paginated: disjoint range pages with the gate
						// dropped between them, so the writer commits more
						// rounds mid-scan — exactly the smear the pinned
						// generation must mask.
						for lo := uint64(0); lo < nKeys; lo += 13 {
							hi := lo + 12
							gate.RLock()
							scanErr = sn.Scan(st, lo, hi, func(k, v uint64) bool {
								rounds[v] = true
								count++
								return true
							})
							gate.RUnlock()
							if scanErr != nil {
								break
							}
							runtime.Gosched()
						}
					}
					sn.Release()
					if scanErr != nil {
						// Retention caps may evict a long-lived pin under
						// heavy commit churn; that is the typed, allowed
						// outcome — anything else fails the test.
						if errors.Is(scanErr, store.ErrSnapshotTooOld) {
							continue
						}
						errc <- scanErr
						return
					}
					if len(rounds) != 1 {
						errc <- fmt.Errorf("snapshot smeared %d rounds: %v", len(rounds), rounds)
						return
					}
					if count != nKeys {
						errc <- fmt.Errorf("snapshot scan saw %d keys, want %d", count, nKeys)
						return
					}
				}
			}(g)
		}
		readerWG.Wait()
		close(stop)
		writerWG.Wait()
		close(errc)
		for err := range errc {
			t.Error(err)
		}
	})
}

// TestContractApplyRejectsUnknownKind: a malformed batch must fail whole
// — no partial application.
func TestContractApplyRejectsUnknownKind(t *testing.T) {
	forEachBackend(t, func(t *testing.T, h harness) {
		st := h.create(t, t.TempDir())
		defer st.Close()
		_, err := st.Apply([]store.Op{
			{Kind: store.OpPut, K: 1, V: 1},
			{Kind: 99, K: 2, V: 2},
		})
		if err == nil {
			t.Fatal("Apply accepted an unknown op kind")
		}
		if _, ok := mustGet(t, st, 1); ok {
			t.Fatal("a rejected batch partially applied")
		}
	})
}
