// Package pangolinstore adapts the paper's engine — a Pangolin pool
// holding one of the six persistent kv structures over a simulated NVMM
// device — to the store.Store interface. This is the integrity-heavy
// backend: every commit maintains per-object checksums and zone parity,
// reads verify what they return, and corruption heals online, so it
// implements every optional capability (ReadViewer, FaultInjector,
// ScrubRunner).
//
// Each shard's pool carries a persistent root object recording which kv
// structure the shard holds, the shard's index and the set size, and
// the structure's anchor OID, so Open can reattach and can reject a
// snapshot restored from the wrong set. Pool snapshot files live in a
// pangolin.PoolSet; the Store's Save/CrashSave delegate to the set's
// per-shard persistence so saves stay on the owner goroutine.
package pangolinstore

import (
	"fmt"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/store"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
)

// rootMagic guards shard roots against foreign pools.
const rootMagic uint64 = 0x5348415244303031 // "SHARD001"

// rootType is the root object's Pangolin type id.
const rootType = 0x53

// shardRoot is each shard pool's persistent root object.
type shardRoot struct {
	Magic     uint64
	Structure uint64 // registry ID of the kv structure
	Index     uint64 // this shard's index
	Count     uint64 // total shards in the set
	MapAnchor pangolin.OID
}

// Store is one shard's Pangolin engine: the pool, the kv structure
// instance attached to it, and the PoolSet slot its snapshots persist
// through. It satisfies store.Store plus all three capabilities.
type Store struct {
	pools     *pangolin.PoolSet
	idx       int
	pool      *pangolin.Pool
	m         kv.Map
	structure registry.Structure
	scrubCfg  pangolin.ScrubberConfig
	vb        *store.VersionBuffer // pinned-snapshot version retention
	resBuf    []store.Result       // Apply's result scratch; valid until the next Apply
}

var (
	_ store.Store          = (*Store)(nil)
	_ store.ReadViewer     = (*Store)(nil)
	_ store.FaultInjector  = (*Store)(nil)
	_ store.ScrubRunner    = (*Store)(nil)
	_ store.SnapshotViewer = (*Store)(nil)
)

// Create initializes shard idx of pools with a fresh structure instance
// and writes the shard root. The pool is not durable until Save.
func Create(pools *pangolin.PoolSet, idx int, structure registry.Structure, scrubCfg pangolin.ScrubberConfig) (*Store, error) {
	p := pools.Pool(idx)
	m, err := structure.New(p)
	if err != nil {
		return nil, fmt.Errorf("new %s: %w", structure.Name, err)
	}
	if err := writeRoot(p, shardRoot{
		Magic:     rootMagic,
		Structure: structure.ID,
		Index:     uint64(idx),
		Count:     uint64(pools.Len()),
		MapAnchor: m.Anchor(),
	}); err != nil {
		return nil, fmt.Errorf("root: %w", err)
	}
	return &Store{pools: pools, idx: idx, pool: p, m: m, structure: structure, scrubCfg: scrubCfg,
		vb: store.NewVersionBuffer()}, nil
}

// Open reattaches shard idx of pools from its persistent root,
// validating that the pool really is shard idx of a pools.Len()-shard
// set (a file restored from the wrong set fails here, not at first
// lookup).
func Open(pools *pangolin.PoolSet, idx int, scrubCfg pangolin.ScrubberConfig) (*Store, error) {
	p := pools.Pool(idx)
	root, err := readRoot(p)
	if err != nil {
		return nil, err
	}
	if root.Index != uint64(idx) || root.Count != uint64(pools.Len()) {
		return nil, fmt.Errorf("root says shard %d of %d (set has %d shards): shard files shuffled or mixed between sets",
			root.Index, root.Count, pools.Len())
	}
	structure, err := registry.ByID(root.Structure)
	if err != nil {
		return nil, err
	}
	m, err := structure.Attach(p, root.MapAnchor)
	if err != nil {
		return nil, fmt.Errorf("attach %s: %w", structure.Name, err)
	}
	return &Store{pools: pools, idx: idx, pool: p, m: m, structure: structure, scrubCfg: scrubCfg,
		vb: store.NewVersionBuffer()}, nil
}

func writeRoot(p *pangolin.Pool, r shardRoot) error {
	oid, err := pangolin.Root[shardRoot](p, rootType)
	if err != nil {
		return err
	}
	return p.Run(func(tx *pangolin.Tx) error {
		v, err := pangolin.Open[shardRoot](tx, oid)
		if err != nil {
			return err
		}
		*v = r
		return nil
	})
}

func readRoot(p *pangolin.Pool) (shardRoot, error) {
	oid, err := pangolin.Root[shardRoot](p, rootType)
	if err != nil {
		return shardRoot{}, err
	}
	v, err := pangolin.GetFromPool[shardRoot](p, oid)
	if err != nil {
		return shardRoot{}, err
	}
	if v.Magic != rootMagic {
		return shardRoot{}, fmt.Errorf("pool is not a shard pool (magic %#x)", v.Magic)
	}
	return *v, nil
}

// Structure returns the kv structure this shard holds.
func (s *Store) Structure() registry.Structure { return s.structure }

// Pool exposes the underlying pool for tests (fault injection at known
// offsets); production callers stay behind store.Store.
func (s *Store) Pool() *pangolin.Pool { return s.pool }

// Map exposes the owner structure instance for tests.
func (s *Store) Map() kv.Map { return s.m }

// Backend implements store.Store.
func (s *Store) Backend() string { return store.BackendPangolin }

// Ordered implements store.Store.
func (s *Store) Ordered() bool { return s.structure.Ordered }

// Get implements store.Store: the owner-path verified Lookup, which may
// run online recovery.
func (s *Store) Get(k uint64) (uint64, bool, error) { return s.m.Lookup(k) }

// Scan implements store.Store, following the kv.Map iteration contract.
func (s *Store) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	return s.m.Scan(lo, hi, fn)
}

// Apply implements store.Store. Mutating multi-op batches run inside a
// single pool transaction — one log persist, one fence, one parity pass
// — whose commit is the batch's linearization point; read-only or
// single-op batches take the plain per-op path (GETs need no
// transaction at all, and a single op is its own transaction already).
func (s *Store) Apply(ops []store.Op) ([]store.Result, error) {
	muts := 0
	for _, op := range ops {
		if op.Kind != store.OpGet {
			muts++
		}
	}
	// Store-owned result scratch (store.Store's Apply contract: valid
	// until the next Apply), reused across batches by the single owner
	// goroutine. Every element is assigned before any return path below.
	if cap(s.resBuf) < len(ops) {
		s.resBuf = make([]store.Result, len(ops))
	}
	res := s.resBuf[:len(ops)]
	recording := muts > 0 && s.vb.Recording()
	if recording {
		s.stagePreStates(ops)
	}
	if muts == 0 || len(ops) == 1 {
		for i, op := range ops {
			switch op.Kind {
			case store.OpPut:
				if err := s.m.Insert(op.K, op.V); err != nil {
					s.vb.Abort()
					return nil, err
				}
				res[i] = store.Result{OK: true}
			case store.OpGet:
				v, ok, err := s.m.Lookup(op.K)
				if err != nil {
					s.vb.Abort()
					return nil, err
				}
				res[i] = store.Result{V: v, OK: ok}
			case store.OpDel:
				ok, err := s.m.Remove(op.K)
				if err != nil {
					s.vb.Abort()
					return nil, err
				}
				res[i] = store.Result{OK: ok}
			default:
				s.vb.Abort()
				return nil, fmt.Errorf("pangolinstore: unknown op kind %d", op.Kind)
			}
		}
		if muts > 0 {
			s.vb.Commit()
		}
		return res, nil
	}
	err := s.pool.Run(func(tx *pangolin.Tx) error {
		for i, op := range ops {
			switch op.Kind {
			case store.OpPut:
				if err := s.m.InsertTx(tx, op.K, op.V); err != nil {
					return err
				}
				res[i] = store.Result{OK: true}
			case store.OpGet:
				v, ok, err := s.m.LookupTx(tx, op.K)
				if err != nil {
					return err
				}
				res[i] = store.Result{V: v, OK: ok}
			case store.OpDel:
				ok, err := s.m.RemoveTx(tx, op.K)
				if err != nil {
					return err
				}
				res[i] = store.Result{OK: ok}
			default:
				return fmt.Errorf("pangolinstore: unknown op kind %d", op.Kind)
			}
		}
		return nil
	})
	if err != nil {
		s.vb.Abort()
		return nil, err
	}
	s.vb.Commit()
	return res, nil
}

// stagePreStates preserves each mutated key's pre-batch state in the
// version buffer before the batch touches the structure (the owner
// Lookup sees exactly the prior committed state — the transaction has
// not started). A pre-state the engine cannot read even after online
// repair invalidates every pin rather than failing the commit: the
// affected snapshots report ErrSnapshotTooOld instead of silently
// missing a version.
func (s *Store) stagePreStates(ops []store.Op) {
	for _, op := range ops {
		if op.Kind == store.OpGet {
			continue
		}
		v, ok, err := s.m.Lookup(op.K)
		if err != nil {
			s.vb.Invalidate()
			return
		}
		s.vb.Stage(op.K, v, ok)
	}
}

// Save implements store.Store: persist this shard's snapshot file.
func (s *Store) Save() error { return s.pools.SaveShard(s.idx) }

// CrashSave implements store.Store: replace the shard file with a crash
// image of the device (unpersisted cache lines randomly evicted or
// reverted), leaving the live pool untouched.
func (s *Store) CrashSave(seed int64) error {
	return s.pools.CrashSaveShard(s.idx, pangolin.CrashEvictRandom, seed)
}

// ScrubStep implements store.Store: one bounded step of the pool's
// built-in incremental scrubber.
func (s *Store) ScrubStep() (pangolin.ScrubReport, bool, error) { return s.pool.ScrubStep() }

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	live := s.pool.LiveObjects()
	return store.Stats{
		Backend:          store.BackendPangolin,
		Objects:          live.Objects,
		Bytes:            live.Bytes,
		SnapshotPins:     s.vb.Pins(),
		VersionsRetained: s.vb.Retained(),
	}
}

// Close implements store.Store.
func (s *Store) Close() error {
	s.pool.Close()
	return nil
}

// roView adapts a ReadView-attached structure instance to store.View.
type roView struct{ m kv.Map }

func (v roView) Get(k uint64) (uint64, bool, error) { return v.m.Lookup(k) }
func (v roView) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	return v.m.Scan(lo, hi, fn)
}

// ReadView implements store.ReadViewer: a second instance of the
// shard's structure attached to the pool's concurrent verified-read
// view (§3.3). Reads on it verify checksums from callers' goroutines
// and surface faults as typed errors instead of repairing.
func (s *Store) ReadView() (store.View, error) {
	m, err := s.structure.Attach(s.pool.ReadView(), s.m.Anchor())
	if err != nil {
		return nil, err
	}
	return roView{m: m}, nil
}

// OpenSnapshot implements store.SnapshotViewer: pin the current
// committed generation (the store's applied-batch count) in the
// version buffer. Subsequent commits preserve each overwritten key's
// prior state there, so the snapshot resolves every read at exactly
// the pinned generation while group commits proceed.
func (s *Store) OpenSnapshot() (*store.Snapshot, error) {
	return s.vb.Open(s.Ordered()), nil
}

// InjectFault implements store.FaultInjector (§4.6): corrupt a
// pseudo-randomly chosen live object — even seeds scribble, odd seeds
// poison its page.
func (s *Store) InjectFault(seed int64) bool { return s.pool.InjectRandomFault(seed) }

// scrubPass adapts a pangolin.Scrubber to store.ScrubPass.
type scrubPass struct{ sc *pangolin.Scrubber }

func (p scrubPass) Step() (pangolin.ScrubReport, bool, error) { return p.sc.Step() }

// NewScrubPass implements store.ScrubRunner: a fresh full-pass scrubber
// over the pool, stepped to its fixpoint by the owner.
func (s *Store) NewScrubPass() store.ScrubPass {
	return scrubPass{sc: s.pool.NewScrubber(s.scrubCfg)}
}

// ChecksumsVerified implements store.ScrubRunner.
func (s *Store) ChecksumsVerified() bool { return s.pool.Mode().Checksums() }
