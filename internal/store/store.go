// Package store defines the per-shard storage-backend interface the
// shard service layer builds on. A Store is exactly what one shard
// worker consumes: verified point reads, bounded scans, atomically
// applied operation batches (the group-commit unit), snapshot and
// crash-image persistence, one bounded background-maintenance step (the
// maintenance scheduler's tick unit), stats, and lifecycle. Everything
// above this interface — worker goroutines, the reader gate, group
// commit, the wire protocol — is backend-agnostic, so one server can
// mix shards of different engines and the benchmarks can race the
// paper's protections against an unprotected in-repo baseline instead
// of a fork.
//
// Two backends ship in-repo:
//
//   - pangolinstore: the paper's engine — a Pangolin pool (micro-
//     buffered transactions, checksums, parity, online repair over a
//     simulated NVMM device) holding one of the six persistent kv
//     structures. Integrity-heavy: every commit pays checksum + parity
//     maintenance, and corruption heals online.
//   - logstore: an append-only (bitcask-style) log engine — CRC-framed
//     records in segment files, an in-memory index, hint files for fast
//     reopen, and background merge/compaction. Raw-speed: sequential
//     appends, no parity, corruption is detected (CRC) but not
//     repaired.
//
// # Threading contract
//
// A Store belongs to one owner goroutine (the shard worker): Apply,
// Save, CrashSave, ScrubStep, Stats, and Close are never called
// concurrently. Get and Scan on the Store itself are owner-path reads
// (they may repair online where the backend can). Concurrent reads go
// through the optional ReadViewer capability: a View's Get/Scan must be
// pure reads, safe from any number of goroutines provided the caller
// excludes Apply/Save/CrashSave/ScrubStep for the duration of each call
// — the shard layer's per-shard reader gate is the canonical provider.
//
// # Capability interfaces
//
// Backends opt into features instead of stubbing them: a Store that
// also implements ReadViewer serves the lock-free read fast path, a
// FaultInjector serves the INJECT wire op, and a ScrubRunner serves
// full SCRUB passes and the worker's repair-and-retry heal path. The
// shard layer type-asserts and degrades gracefully when a capability is
// absent.
package store

import (
	"fmt"
	"strings"

	"github.com/pangolin-go/pangolin"
)

// Op kinds, the operation vocabulary of Apply.
const (
	OpGet uint8 = 1
	OpPut uint8 = 2
	OpDel uint8 = 3
)

// Op is one operation inside an Apply batch.
type Op struct {
	Kind uint8
	K, V uint64
}

// Result is one operation's outcome inside a successfully applied
// batch: V/OK for gets (OK = key present), OK for dels (present before
// removal), OK always true for puts.
type Result struct {
	V  uint64
	OK bool
}

// Stats snapshots one store's occupancy and engine-specific counters.
// Backend-specific fields are zero for backends they don't apply to.
type Stats struct {
	// Backend is the store's backend name ("pangolin", "logstore").
	Backend string
	// Objects counts live keys (pangolin: committed live objects, which
	// includes structure-internal nodes; logstore: index entries).
	Objects int
	// Bytes is the store's occupied bytes (pangolin: reserved heap
	// bytes; logstore: on-disk segment bytes including dead records).
	Bytes uint64

	// Log-engine counters (logstore only).
	Segments      int    // data segment files currently on disk
	Compactions   uint64 // sealed segments merged away since open
	MergedRecords uint64 // live records carried forward by merges
	DeadRecords   uint64 // records overwritten/deleted but not yet merged away
	// QuarantinedSegments counts segments parked by a merge that met
	// corruption: their live records are held back from compaction until
	// an operator intervenes, so a nonzero count is an operator signal,
	// not routine housekeeping (logstore only).
	QuarantinedSegments int

	// MVCC snapshot counters (backends implementing SnapshotViewer).
	SnapshotPins     int // distinct generations currently pinned
	VersionsRetained int // superseded versions held for pinned snapshots
}

// Store is one shard's storage engine. See the package comment for the
// threading contract.
type Store interface {
	// Backend returns the backend name (one of Backends()).
	Backend() string
	// Ordered reports whether Scan visits keys in ascending order;
	// unordered backends still visit every in-range key exactly once.
	Ordered() bool
	// Get returns the value for k, verified as strongly as the backend
	// can (pangolin: checksum-verified with online repair; logstore:
	// CRC-framed record read). This is the owner-path read.
	Get(k uint64) (uint64, bool, error)
	// Scan calls fn for every pair with lo <= k <= hi until fn returns
	// false, following the kv.Map iteration contract: ascending when
	// Ordered, unordered-but-complete otherwise, and any mid-scan read
	// failure aborts the walk with that error — never a partial
	// iteration that looks complete.
	Scan(lo, hi uint64, fn func(k, v uint64) bool) error
	// Apply executes ops in order as one atomic batch — the group-commit
	// unit: one log persist / one fence / one parity pass for pangolin,
	// one contiguous committed append for logstore. A Get inside the
	// batch observes the batch's earlier ops. On error nothing is
	// applied and the returned results are nil; the shard worker then
	// retries each op as its own single-op batch for per-op verdicts.
	// The returned slice is scratch owned by the store, valid only until
	// the next Apply on the same store: callers must copy out anything
	// they retain past that point (the shard worker consumes results
	// synchronously before its next store access, so this is free there).
	Apply(ops []Op) ([]Result, error)
	// Save persists the store durably (pangolin: the snapshot file;
	// logstore: fsync segments). Called from the owner goroutine with no
	// batch in flight.
	Save() error
	// CrashSave simulates a power failure: it persists a crash image —
	// what the media would hold if the machine died now, unpersisted
	// writes lost per the backend's model — WITHOUT disturbing the live
	// store. Reopening the shard then recovers exactly that image.
	CrashSave(seed int64) error
	// ScrubStep runs one bounded background-maintenance step: the
	// maintenance scheduler's tick unit. For pangolin this advances the
	// incremental scrubber (verify + repair one bounded chunk); for
	// logstore it advances merge/compaction when due and a CRC-verify
	// cursor otherwise. done reports a completed full cycle over the
	// store's state, after which the cursor starts over.
	ScrubStep() (pangolin.ScrubReport, bool, error)
	// Stats snapshots occupancy and engine counters.
	Stats() Stats
	// Close releases the store without saving.
	Close() error
}

// View is a concurrent read handle: pure reads, safe from any number of
// goroutines while the owner is quiescent (the reader-gate discipline —
// see the package comment). Faults surface as typed errors
// (pangolin.ErrReadBusy, *pangolin.CorruptionError, poison) instead of
// being repaired; the caller routes failed reads through the owner.
type View interface {
	Get(k uint64) (uint64, bool, error)
	Scan(lo, hi uint64, fn func(k, v uint64) bool) error
}

// ReadViewer is the lock-free read fast-path capability: backends that
// implement it serve Get/Scan from callers' goroutines under the shard
// reader gate, no worker hop.
type ReadViewer interface {
	ReadView() (View, error)
}

// FaultInjector is the INJECT capability (§4.6 fault injection):
// corrupt a pseudo-randomly chosen live object so tests and the
// loadtest's corruption phase can prove maintenance heals a live shard.
// Returns false when nothing could be injected (no live objects).
// Backends without self-repair deliberately do not implement it —
// injected corruption they cannot heal would read as client errors, not
// as a maintenance proof.
type FaultInjector interface {
	InjectFault(seed int64) bool
}

// ScrubPass is one full integrity pass in progress, stepped to its
// fixpoint by the owner goroutine with client work interleaved between
// steps.
type ScrubPass interface {
	Step() (rep pangolin.ScrubReport, done bool, err error)
}

// ScrubRunner is the full-pass scrub capability: the SCRUB wire op and
// the worker's repair-and-retry heal path. ChecksumsVerified reports
// whether passes actually verify per-object integrity (false for
// checksum-less pangolin modes), so a merged report cannot pass "0 bad
// objects" off as "verified clean".
type ScrubRunner interface {
	NewScrubPass() ScrubPass
	ChecksumsVerified() bool
}

// SnapshotViewer is the MVCC snapshot capability: OpenSnapshot pins the
// store's current committed generation and returns a Snapshot whose
// reads resolve at exactly that generation while commits proceed (the
// backend preserves overwritten versions in its VersionBuffer for as
// long as the pin is held). Backends that cannot provide this MUST NOT
// implement the interface — the shard layer then fails snapshot
// requests with ErrSnapshotUnsupported rather than silently serving
// weaker consistency. Called from the owner goroutine only (the shard
// worker serializes it with Apply so a pin never lands mid-batch);
// Release is safe from any goroutine.
type SnapshotViewer interface {
	OpenSnapshot() (*Snapshot, error)
}

// Backend names.
const (
	BackendPangolin = "pangolin"
	BackendLog      = "logstore"
)

// Backends returns the selectable backend names.
func Backends() []string { return []string{BackendPangolin, BackendLog} }

// ParseBackendSpec expands a backend spec into one backend name per
// shard. The spec is a comma-separated list cycled across the shards —
// "" and "pangolin" give every shard the paper's engine, "logstore"
// gives every shard the log engine, and "pangolin,logstore" alternates,
// so one set mixes integrity-heavy and raw-speed shards. Names are
// validated against Backends().
func ParseBackendSpec(spec string, shards int) ([]string, error) {
	if spec == "" {
		spec = BackendPangolin
	}
	names := strings.Split(spec, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		switch names[i] {
		case BackendPangolin, BackendLog:
		default:
			return nil, fmt.Errorf("store: unknown backend %q (have %v)", names[i], Backends())
		}
	}
	out := make([]string, shards)
	for i := range out {
		out[i] = names[i%len(names)]
	}
	return out, nil
}
