package xor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeltaAndInto(t *testing.T) {
	old := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	new_ := []byte{11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	d := make([]byte, len(old))
	Delta(d, old, new_)
	// old ^ delta == new
	got := append([]byte(nil), old...)
	Into(got, d)
	if !bytes.Equal(got, new_) {
		t.Fatalf("old^delta = %v, want %v", got, new_)
	}
}

func TestDeltaAliasing(t *testing.T) {
	old := []byte{1, 2, 3}
	new_ := []byte{4, 5, 6}
	d := append([]byte(nil), old...)
	Delta(d, d, new_) // dst aliases old
	want := []byte{1 ^ 4, 2 ^ 5, 3 ^ 6}
	if !bytes.Equal(d, want) {
		t.Fatalf("aliased delta = %v, want %v", d, want)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Delta(make([]byte, 2), make([]byte, 3), make([]byte, 3)) },
		func() { Delta(make([]byte, 3), make([]byte, 2), make([]byte, 3)) },
		func() { Into(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: XOR identities hold for arbitrary data: (a⊕b)⊕b = a and
// Delta composition is associative with Into.
func TestXorIdentities(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16%1024) + 1
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		d := make([]byte, n)
		Delta(d, a, b)
		got := append([]byte(nil), a...)
		Into(got, d)
		if !bytes.Equal(got, b) {
			return false
		}
		Into(got, d)
		return bytes.Equal(got, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignPad(t *testing.T) {
	off := uint64(13)
	delta := []byte{1, 2, 3}
	aoff, padded := AlignPad(off, delta)
	if aoff != 8 {
		t.Fatalf("alignedOff = %d, want 8", aoff)
	}
	if len(padded)%8 != 0 {
		t.Fatalf("padded length %d not multiple of 8", len(padded))
	}
	// Padding is zero, payload lands at the right offset.
	for i, b := range padded {
		switch uint64(i) {
		case off - aoff:
			if b != 1 {
				t.Fatalf("payload misplaced: %v", padded)
			}
		case off - aoff + 1, off - aoff + 2:
		default:
			if b != 0 {
				t.Fatalf("nonzero padding at %d: %v", i, padded)
			}
		}
	}
}

// Property: applying the padded patch over a wider buffer changes exactly
// the bytes the raw delta would change.
func TestAlignPadEquivalence(t *testing.T) {
	f := func(seed int64, offHint uint16, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 4096)
		rng.Read(buf)
		off := uint64(offHint) % 2048
		n := int(n8%64) + 1
		delta := make([]byte, n)
		rng.Read(delta)

		want := append([]byte(nil), buf...)
		Into(want[off:off+uint64(n)], delta)

		got := append([]byte(nil), buf...)
		aoff, padded := AlignPad(off, delta)
		Into(got[aoff:aoff+uint64(len(padded))], padded)

		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
