// Package xor provides the XOR kernels behind Pangolin's parity scheme:
// word-unrolled "vectorized" XOR (the ISA-L SIMD analog) and parity-delta
// computation. Atomic per-word XOR lives on nvm.Device (Xor64); this
// package supplies the plain-memory variants and alignment helpers.
package xor

import "encoding/binary"

// Delta writes old ⊕ new into dst. All slices must have equal length; dst
// may alias old or new. The result is the "parity patch" of §3.5:
// P' = P ⊕ Delta(old, new).
func Delta(dst, old, new_ []byte) {
	if len(old) != len(new_) || len(dst) != len(old) {
		panic("xor: Delta length mismatch")
	}
	i := 0
	for ; i+8 <= len(old); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(old[i:])^binary.LittleEndian.Uint64(new_[i:]))
	}
	for ; i < len(old); i++ {
		dst[i] = old[i] ^ new_[i]
	}
}

// Into XORs src into dst (dst ^= src), word-unrolled. This is the
// "vectorized XOR" path used for large parity updates under an exclusive
// range-lock.
func Into(dst, src []byte) {
	if len(dst) != len(src) {
		panic("xor: Into length mismatch")
	}
	i := 0
	for ; i+8 <= len(src); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// AlignPad returns a copy of delta widened to 8-byte alignment relative to
// an absolute offset off: the returned slice starts at the aligned offset
// alignedOff ≤ off and has a multiple-of-8 length, with zero padding at
// both ends. XOR-ing zeros is a no-op, so the padded patch can be applied
// with aligned atomic 8-byte XORs without touching neighbouring data.
func AlignPad(off uint64, delta []byte) (alignedOff uint64, padded []byte) {
	head := off & 7
	alignedOff = off - head
	n := head + uint64(len(delta))
	n = (n + 7) &^ 7
	padded = make([]byte, n)
	copy(padded[head:], delta)
	return alignedOff, padded
}
