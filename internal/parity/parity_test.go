package parity

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
	"github.com/pangolin-go/pangolin/internal/xor"
)

// testPool builds a device + parity manager over the default geometry.
// A fresh device is all zeros, so the parity invariant holds vacuously.
func testPool(t *testing.T) (*nvm.Device, layout.Geometry, *Parity) {
	t.Helper()
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	return dev, geo, New(dev, geo, 0)
}

// writeThroughParity emulates a committed data write: writes new data at
// (zone,row,col) and applies the old⊕new patch to parity, like the engine's
// commit path does.
func writeThroughParity(dev *nvm.Device, geo layout.Geometry, p *Parity, z, row, col uint64, data []byte) {
	off := geo.RowByteOff(z, row, col)
	old := make([]byte, len(data))
	if err := dev.ReadAt(old, off); err != nil {
		panic(err)
	}
	delta := make([]byte, len(data))
	xor.Delta(delta, old, data)
	dev.WriteAt(off, data)
	dev.Persist(off, uint64(len(data)))
	p.Update(z, col, delta)
	dev.Fence()
}

func TestInvariantAfterWrites(t *testing.T) {
	dev, geo, p := testPool(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		z := uint64(rng.Intn(int(geo.NumZones)))
		row := uint64(rng.Intn(int(geo.DataRows())))
		n := rng.Intn(2000) + 1
		col := uint64(rng.Intn(int(geo.RowSize() - uint64(n))))
		data := make([]byte, n)
		rng.Read(data)
		writeThroughParity(dev, geo, p, z, row, col, data)
	}
	for z := uint64(0); z < geo.NumZones; z++ {
		if bad, err := p.VerifyZone(z); err != nil || bad != -1 {
			t.Fatalf("zone %d: invariant broken at col %d (err %v)", z, bad, err)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dev, geo, p := testPool(t)
	writeThroughParity(dev, geo, p, 0, 2, 100, []byte("hello parity"))
	if bad, _ := p.VerifyZone(0); bad != -1 {
		t.Fatalf("fresh write broke invariant at %d", bad)
	}
	// Scribble directly over the data: parity now stale.
	dev.Scribble(geo.RowByteOff(0, 2, 100), 4, rand.New(rand.NewSource(9)))
	bad, err := p.VerifyZone(0)
	if err != nil {
		t.Fatal(err)
	}
	if bad < 100 || bad >= 112 {
		t.Fatalf("mismatch at col %d, want within [100,112)", bad)
	}
}

func TestLargeUpdateTakesVectorizedPath(t *testing.T) {
	dev, geo, p := testPool(t)
	n := int(p.Threshold()) + 4096 // force exclusive/vectorized path
	data := bytes.Repeat([]byte{0x3C}, n)
	writeThroughParity(dev, geo, p, 0, 1, 0, data)
	if bad, _ := p.VerifyZone(0); bad != -1 {
		t.Fatalf("invariant broken at %d after large update", bad)
	}
}

func TestUnalignedSmallUpdates(t *testing.T) {
	dev, geo, p := testPool(t)
	// Odd offsets and lengths exercise the AlignPad path.
	for _, tc := range []struct{ col, n uint64 }{
		{1, 1}, {7, 3}, {13, 17}, {63, 65}, {4095, 2},
	} {
		data := bytes.Repeat([]byte{0xA5}, int(tc.n))
		writeThroughParity(dev, geo, p, 0, 3, tc.col, data)
	}
	if bad, _ := p.VerifyZone(0); bad != -1 {
		t.Fatalf("invariant broken at col %d", bad)
	}
}

func TestReconstructColumn(t *testing.T) {
	dev, geo, p := testPool(t)
	secret := []byte("reconstruct me from parity!")
	writeThroughParity(dev, geo, p, 0, 5, 777, secret)
	// Also dirty the same columns in a different row: overlap (§3.5).
	writeThroughParity(dev, geo, p, 0, 8, 770, bytes.Repeat([]byte{0xEE}, 50))

	got := make([]byte, len(secret))
	if err := p.ReconstructColumn(0, 777, uint64(len(secret)), 5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("reconstructed %q, want %q", got, secret)
	}
}

func TestReconstructColumnAfterPoison(t *testing.T) {
	dev, geo, p := testPool(t)
	secret := bytes.Repeat([]byte{0x77}, nvm.PageSize)
	// Page-aligned write filling exactly one page of row 2.
	col := uint64(2 * nvm.PageSize)
	writeThroughParity(dev, geo, p, 0, 2, col, secret)
	// The media loses that page.
	off := geo.RowByteOff(0, 2, col)
	dev.Poison(off)
	// Reconstruction must not read the poisoned row, only survivors.
	got := make([]byte, nvm.PageSize)
	if err := p.ReconstructColumn(0, col, nvm.PageSize, 2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("reconstruction after poison returned wrong data")
	}
}

func TestReconstructDoubleFaultFails(t *testing.T) {
	dev, geo, p := testPool(t)
	col := uint64(0)
	// Two rows lose overlapping pages: unrecoverable, must error.
	dev.Poison(geo.RowByteOff(0, 1, col))
	dev.Poison(geo.RowByteOff(0, 4, col))
	got := make([]byte, nvm.PageSize)
	if err := p.ReconstructColumn(0, col, nvm.PageSize, 1, got); err == nil {
		t.Fatal("expected error for double fault in one page column")
	}
}

func TestRecomputeColumn(t *testing.T) {
	dev, geo, p := testPool(t)
	// Write data WITHOUT updating parity (as if a crash interrupted the
	// parity step), then recompute.
	data := []byte("torn commit data")
	off := geo.RowByteOff(0, 4, 50)
	dev.WriteAt(off, data)
	dev.Persist(off, uint64(len(data)))
	if bad, _ := p.VerifyZone(0); bad == -1 {
		t.Fatal("expected stale parity before recompute")
	}
	if err := p.RecomputeColumn(0, 50, uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	if bad, _ := p.VerifyZone(0); bad != -1 {
		t.Fatalf("invariant still broken at %d after recompute", bad)
	}
}

func TestUpdateRejectsRowOverflow(t *testing.T) {
	_, geo, p := testPool(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Update(0, geo.RowSize()-4, make([]byte, 8))
}

// The paper's central concurrency claim (§3.5): overlapping objects in
// different rows can update shared parity concurrently with atomic XORs
// and the result is order-independent. Hammer one page column from many
// goroutines and check the invariant.
func TestConcurrentOverlappingUpdates(t *testing.T) {
	dev, geo, p := testPool(t)
	const workers = 8
	const itersPerWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			row := uint64(w) % geo.DataRows()
			base := uint64(w) * 97 // all workers within the same lock ranges
			for i := 0; i < itersPerWorker; i++ {
				n := rng.Intn(300) + 1
				col := base + uint64(rng.Intn(512))
				data := make([]byte, n)
				rng.Read(data)
				off := geo.RowByteOff(0, row, col)
				old := make([]byte, n)
				if err := dev.ReadAt(old, off); err != nil {
					panic(err)
				}
				delta := make([]byte, n)
				xor.Delta(delta, old, data)
				dev.WriteAt(off, data)
				dev.Persist(off, uint64(n))
				p.Update(0, col, delta)
			}
		}(w)
	}
	wg.Wait()
	dev.Fence()
	if bad, err := p.VerifyZone(0); err != nil || bad != -1 {
		t.Fatalf("invariant broken at col %d after concurrent updates (err %v)", bad, err)
	}
}

// Mixed small (atomic/shared) and large (vectorized/exclusive) concurrent
// updates must serialize correctly through the range-locks.
func TestConcurrentHybridPaths(t *testing.T) {
	dev, geo, p := testPool(t)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			row := uint64(w) % geo.DataRows()
			for i := 0; i < 20; i++ {
				var n int
				if w%2 == 0 {
					n = int(p.Threshold()) + 1024 // vectorized
				} else {
					n = rng.Intn(256) + 1 // atomic
				}
				col := uint64(rng.Intn(int(geo.RowSize() - uint64(n))))
				data := make([]byte, n)
				rng.Read(data)
				off := geo.RowByteOff(0, row, col)
				old := make([]byte, n)
				if err := dev.ReadAt(old, off); err != nil {
					panic(err)
				}
				delta := make([]byte, n)
				xor.Delta(delta, old, data)
				dev.WriteAt(off, data)
				dev.Persist(off, uint64(n))
				p.Update(0, col, delta)
			}
		}(w)
	}
	wg.Wait()
	dev.Fence()
	if bad, err := p.VerifyZone(0); err != nil || bad != -1 {
		t.Fatalf("invariant broken at col %d (err %v)", bad, err)
	}
}

// Property: a random sequence of write-through-parity operations preserves
// the invariant and reconstruction recovers any single row's range.
func TestReconstructAnyRow(t *testing.T) {
	geo := layout.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		p := New(dev, geo, 0)
		type wr struct {
			row, col uint64
			data     []byte
		}
		var writes []wr
		for i := 0; i < 10; i++ {
			n := rng.Intn(500) + 1
			w := wr{
				row:  uint64(rng.Intn(int(geo.DataRows()))),
				col:  uint64(rng.Intn(int(geo.RowSize() - uint64(n)))),
				data: make([]byte, n),
			}
			rng.Read(w.data)
			writeThroughParity(dev, geo, p, 0, w.row, w.col, w.data)
			writes = append(writes, w)
		}
		// Reconstruct the columns of the LAST write to each row and
		// compare with what is actually stored there.
		for _, w := range writes {
			stored := make([]byte, len(w.data))
			if err := dev.ReadAt(stored, geo.RowByteOff(0, w.row, w.col)); err != nil {
				return false
			}
			rec := make([]byte, len(w.data))
			if err := p.ReconstructColumn(0, w.col, uint64(len(w.data)), w.row, rec); err != nil {
				return false
			}
			if !bytes.Equal(rec, stored) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
