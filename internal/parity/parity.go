// Package parity maintains Pangolin's RAID-style zone parity (§3.1, §3.5).
//
// Each zone reserves its last chunk row as parity: for every column byte c,
// parity[c] = ⊕ over all data rows r of row_r[c]. Transactions keep the
// invariant incrementally — a write replacing old with new XORs the patch
// old⊕new into the covering parity range. Because XOR commutes, concurrent
// transactions touching overlapping parity (objects in different rows of
// the same columns) need no ordering between their patches.
//
// The hybrid update scheme mirrors the paper: small patches take parity
// range-locks in shared mode and apply aligned atomic 8-byte XORs; large
// patches take the locks exclusively and use the vectorized kernel. The
// crossover (Threshold) is measured in §4.1 of the paper at 8 KB.
package parity

import (
	"fmt"
	"sync"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
	"github.com/pangolin-go/pangolin/internal/xor"
)

// DefaultThreshold is the patch size at which updates switch from atomic
// XOR (shared lock) to vectorized XOR (exclusive lock). The paper measures
// the crossover at 8 KB on Optane (§4.1).
const DefaultThreshold = 8 * 1024

// Parity maintains the parity rows of every zone in a pool.
type Parity struct {
	dev       *nvm.Device
	geo       layout.Geometry
	threshold uint64
	locks     [][]sync.RWMutex // [zone][rangeLock]
	nLocks    uint64
}

// New creates the parity manager. threshold ≤ 0 selects DefaultThreshold.
func New(dev *nvm.Device, geo layout.Geometry, threshold int) *Parity {
	t := uint64(DefaultThreshold)
	if threshold > 0 {
		t = uint64(threshold)
	}
	n := (geo.RowSize() + geo.RangeLockBytes - 1) / geo.RangeLockBytes
	locks := make([][]sync.RWMutex, geo.NumZones)
	for z := range locks {
		locks[z] = make([]sync.RWMutex, n)
	}
	return &Parity{dev: dev, geo: geo, threshold: t, locks: locks, nLocks: n}
}

// NumRangeLocks returns the number of parity range-locks per zone.
func (p *Parity) NumRangeLocks() uint64 { return p.nLocks }

// Threshold returns the hybrid crossover in bytes.
func (p *Parity) Threshold() uint64 { return p.threshold }

// lockRange returns the inclusive range-lock index span covering columns
// [col, col+n).
func (p *Parity) lockRange(col, n uint64) (first, last uint64) {
	return col / p.geo.RangeLockBytes, (col + n - 1) / p.geo.RangeLockBytes
}

// Update XORs delta into zone z's parity at columns [col, col+len(delta)).
// The range must lie within one row (callers split object ranges at row
// boundaries). The parity bytes are flushed but not fenced: callers batch
// a single Fence per commit.
//
// Patches smaller than the threshold use atomic XOR under shared
// range-locks so arbitrarily many transactions proceed concurrently; larger
// patches take the locks exclusively and use vectorized XOR (§3.5).
func (p *Parity) Update(z, col uint64, delta []byte) {
	n := uint64(len(delta))
	if n == 0 {
		return
	}
	if col+n > p.geo.RowSize() {
		panic(fmt.Sprintf("parity: update [%d,%d) exceeds row size %d", col, col+n, p.geo.RowSize()))
	}
	first, last := p.lockRange(col, n)
	off := p.geo.ParityOff(z, col)
	if n < p.threshold {
		for i := first; i <= last; i++ {
			p.locks[z][i].RLock()
		}
		aoff, padded := xor.AlignPad(off, delta)
		p.dev.AtomicXorRange(aoff, padded)
		p.dev.Flush(aoff, uint64(len(padded)))
		for i := last + 1; i > first; i-- {
			p.locks[z][i-1].RUnlock()
		}
		return
	}
	for i := first; i <= last; i++ {
		p.locks[z][i].Lock()
	}
	p.dev.MarkDirty(off, n)
	xor.Into(p.dev.Slice(off, n), delta)
	p.dev.Flush(off, n)
	for i := last + 1; i > first; i-- {
		p.locks[z][i-1].Unlock()
	}
}

// ReconstructColumn computes, for zone z and columns [col, col+n), the XOR
// of the parity row and every data row except excludeRow, writing the
// result into dst. With 0 ≤ excludeRow < DataRows this reconstructs the
// excluded row's lost data (single-failure recovery, §3.6); the caller
// must have quiesced transactions. Surviving rows are read with poison
// checks: a second failure in the same columns surfaces as an error
// (the multi-page-loss case the paper calls unrecoverable).
func (p *Parity) ReconstructColumn(z uint64, col, n uint64, excludeRow uint64, dst []byte) error {
	if uint64(len(dst)) != n {
		return fmt.Errorf("parity: dst length %d != %d", len(dst), n)
	}
	if col+n > p.geo.RowSize() {
		return fmt.Errorf("parity: column range [%d,%d) exceeds row size", col, col+n)
	}
	if excludeRow >= p.geo.DataRows() {
		return fmt.Errorf("parity: excludeRow %d out of range", excludeRow)
	}
	if err := p.dev.ReadAt(dst, p.geo.ParityOff(z, col)); err != nil {
		return fmt.Errorf("parity: reading parity row: %w", err)
	}
	buf := make([]byte, n)
	for r := uint64(0); r < p.geo.DataRows(); r++ {
		if r == excludeRow {
			continue
		}
		if err := p.dev.ReadAt(buf, p.geo.RowByteOff(z, r, col)); err != nil {
			return fmt.Errorf("parity: reading surviving row %d: %w", r, err)
		}
		xor.Into(dst, buf)
	}
	return nil
}

// RecomputeColumn rewrites zone z's parity for columns [col, col+n) from
// the current contents of all data rows, persisting the result. Crash
// recovery uses it for the column ranges touched by replayed transactions,
// since parity updates are not logged (§3.6). The caller must have
// quiesced transactions.
func (p *Parity) RecomputeColumn(z, col, n uint64) error {
	if col+n > p.geo.RowSize() {
		return fmt.Errorf("parity: column range [%d,%d) exceeds row size", col, col+n)
	}
	acc := make([]byte, n)
	buf := make([]byte, n)
	for r := uint64(0); r < p.geo.DataRows(); r++ {
		if err := p.dev.ReadAt(buf, p.geo.RowByteOff(z, r, col)); err != nil {
			return fmt.Errorf("parity: reading row %d: %w", r, err)
		}
		xor.Into(acc, buf)
	}
	off := p.geo.ParityOff(z, col)
	first, last := p.lockRange(col, n)
	for i := first; i <= last; i++ {
		p.locks[z][i].Lock()
	}
	p.dev.WriteAt(off, acc)
	p.dev.Persist(off, n)
	for i := last + 1; i > first; i-- {
		p.locks[z][i-1].Unlock()
	}
	return nil
}

// VerifyZone checks the parity invariant P1 for zone z: parity equals the
// XOR of all data rows. It returns the first mismatching column, or -1 if
// the zone verifies. The caller must have quiesced transactions.
func (p *Parity) VerifyZone(z uint64) (int64, error) {
	return p.VerifyRange(z, 0, p.geo.RowSize())
}

// VerifyRange checks the parity invariant for zone z's columns
// [start, start+span) only — the bounded unit an incremental scrub step
// verifies, so a full zone never has to be checked under one freeze
// window. It returns the first mismatching column (an absolute column
// offset within the row), or -1 if the range verifies. The caller must
// have quiesced transactions.
func (p *Parity) VerifyRange(z uint64, start, span uint64) (int64, error) {
	const stripe = 64 * 1024
	rowSize := p.geo.RowSize()
	if start >= rowSize {
		return -1, nil
	}
	end := min(start+span, rowSize)
	acc := make([]byte, stripe)
	buf := make([]byte, stripe)
	for col := start; col < end; col += stripe {
		n := min(stripe, end-col)
		for i := range acc[:n] {
			acc[i] = 0
		}
		for r := uint64(0); r < p.geo.DataRows(); r++ {
			if err := p.dev.ReadAt(buf[:n], p.geo.RowByteOff(z, r, col)); err != nil {
				return 0, fmt.Errorf("parity: verify read row %d: %w", r, err)
			}
			xor.Into(acc[:n], buf[:n])
		}
		if err := p.dev.ReadAt(buf[:n], p.geo.ParityOff(z, col)); err != nil {
			return 0, fmt.Errorf("parity: verify read parity: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			if acc[i] != buf[i] {
				return int64(col + i), nil
			}
		}
	}
	return -1, nil
}
