// Package stopbool seeds violations of the iteration-callback
// contract: fn func(...) bool returning false means stop now, so the
// result must be checked and propagated.
package stopbool

type pair struct{ k, v uint64 }

func flushDiscards(overlay []pair, fn func(k, v uint64) bool) {
	for _, p := range overlay {
		fn(p.k, p.v) // want `callback fn's bool \(continue\) result discarded`
	}
}

func flushBlank(overlay []pair, fn func(k, v uint64) bool) {
	for _, p := range overlay {
		_ = fn(p.k, p.v) // want `callback fn's bool \(continue\) result assigned to _`
	}
}

func asyncCall(fn func(k, v uint64) bool) {
	go fn(0, 0)    // want `callback fn called via go/defer`
	defer fn(1, 1) // want `callback fn called via go/defer`
}

func propagates(overlay []pair, fn func(k, v uint64) bool) bool {
	for _, p := range overlay {
		if !fn(p.k, p.v) {
			return false
		}
	}
	return true
}

func closureUse(overlay []pair, fn func(k, v uint64) bool) bool {
	stopped := false
	walk := func(p pair) bool {
		if !fn(p.k, p.v) {
			stopped = true
			return false
		}
		return true
	}
	for _, p := range overlay {
		if !walk(p) {
			break
		}
	}
	return stopped
}

// errorCallback is out of scope: the contract is about bool continue
// results, error results have their own check paths.
func errorCallback(overlay []pair, fn func(k, v uint64) error) {
	for _, p := range overlay {
		fn(p.k, p.v)
	}
}

// lastNotify documents an intentional discard: the callback is a
// best-effort notification, not an iteration.
func lastNotify(fn func(k, v uint64) bool) {
	//pgllint:ignore stopbool best-effort completion notification; there is nothing left to stop
	fn(0, 0)
}
