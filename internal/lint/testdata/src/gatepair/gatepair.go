// Package gatepair seeds violations of the shard gate discipline: every
// acquire of a "gate" mutex must be released on all paths, with the
// matching kind, and no channel operation may run while it is held.
package gatepair

import "sync"

type shard struct {
	gate sync.RWMutex
	ch   chan int
}

func (s *shard) leakOnEarlyReturn(cond bool) {
	s.gate.Lock() // want `gate acquired here is not released on every path`
	if cond {
		return
	}
	s.gate.Unlock()
}

func (s *shard) tryBalanced() (int, bool) {
	if !s.gate.TryRLock() {
		return 0, false
	}
	v := <-make(chan int, 1) // want `channel operation while holding the shard gate`
	s.gate.RUnlock()
	return v, true
}

func (s *shard) tryLeakOnSuccess() bool {
	if s.gate.TryRLock() { // want `gate acquired here is not released on every path`
		return true
	}
	return false
}

func (s *shard) deferred(cond bool) {
	s.gate.Lock()
	defer s.gate.Unlock()
	if cond {
		return
	}
	s.ch <- 1 // want `channel operation while holding the shard gate`
}

func (s *shard) sendWhileHeld(v int) {
	s.gate.Lock()
	s.ch <- v // want `channel operation while holding the shard gate`
	s.gate.Unlock()
}

// trySendWhileHeld is fine: a select with a default clause never
// blocks.
func (s *shard) trySendWhileHeld(v int) bool {
	s.gate.Lock()
	defer s.gate.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

func (s *shard) kindMismatch() {
	s.gate.Lock()
	s.gate.RUnlock() // want `release kind does not match the acquire`
}

func (s *shard) balancedBranches(cond bool) int {
	if !s.gate.TryRLock() {
		return -1
	}
	if cond {
		s.gate.RUnlock()
		return 0
	}
	s.gate.RUnlock()
	return 1
}

// callerHeld mirrors worker.healPass: the caller holds the gate on
// entry and on return; the loop releases and reacquires it between
// steps. The reacquire looks unbalanced to the intra-function
// analysis, so the contract is documented in-code.
func (s *shard) callerHeld(step func() bool) {
	for {
		if step() {
			return
		}
		s.gate.Unlock()
		//pgllint:ignore gatepair caller holds the gate on entry and return; the loop cycles it between steps
		s.gate.Lock()
	}
}

func (s *shard) loopCycleUnsuppressed(step func() bool) {
	for {
		if step() {
			return
		}
		s.gate.Unlock()
		s.gate.Lock() // want `gate acquired here is not released on every path`
	}
}
