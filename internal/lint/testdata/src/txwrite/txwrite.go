// Package txwrite seeds violations of the transaction write contract:
// Tx.Get hands out read-only snapshots, so every store must go through
// Open/AddRange, and Commit's error must be checked. The shapes mirror
// the real pangolin.Tx API.
package txwrite

// OID mirrors pangolin.OID.
type OID struct{ Off uint64 }

// Tx mirrors the pangolin transaction API shape the analyzer keys on.
type Tx struct{ buf []byte }

func (tx *Tx) Get(oid OID) ([]byte, error)                     { return tx.buf, nil }
func (tx *Tx) Open(oid OID) ([]byte, error)                    { return tx.buf, nil }
func (tx *Tx) AddRange(oid OID, off, n uint64) ([]byte, error) { return tx.buf, nil }
func (tx *Tx) Commit() error                                   { return nil }

func directWrite(tx *Tx, oid OID) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	b[0] = 1 // want `write to read-only Tx.Get snapshot "b"`
	return tx.Commit()
}

func builtinWrites(tx *Tx, oid OID, src []byte) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	copy(b, src)          // want `copy writes into read-only Tx.Get snapshot "b"`
	copy(b[4:], src)      // want `copy writes into read-only Tx.Get snapshot "b"`
	_ = append(b[:0], 42) // want `append writes into read-only Tx.Get snapshot "b"`
	clear(b)              // want `clear writes into read-only Tx.Get snapshot "b"`
	return tx.Commit()
}

func aliasedWrite(tx *Tx, oid OID) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	header := b[:8]
	header[0] = 0xFF // want `write to read-only Tx.Get snapshot "header"`
	return tx.Commit()
}

// reopenForWrite is the correct pattern: a later Open/AddRange rebinds
// the variable to a writable view and clears the taint.
func reopenForWrite(tx *Tx, oid OID) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	if b[0] == 0 {
		return nil
	}
	b, err = tx.Open(oid)
	if err != nil {
		return err
	}
	b[0] = 1
	v, err := tx.AddRange(oid, 0, 8)
	if err != nil {
		return err
	}
	v[7] = 2
	return tx.Commit()
}

func commitDiscarded(tx *Tx) {
	tx.Commit()     // want `Tx.Commit error discarded`
	_ = tx.Commit() // want `Tx.Commit error discarded`
}

func commitDeferred(tx *Tx) {
	defer tx.Commit() // want `Tx.Commit error discarded in defer`
}

func commitChecked(tx *Tx) error {
	if err := tx.Commit(); err != nil {
		return err
	}
	return nil
}

// scribble is an intentional violation: fault-injection tests corrupt
// snapshots on purpose, and document it in-code.
func scribble(tx *Tx, oid OID) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	//pgllint:ignore txwrite fault-injection test deliberately corrupts the snapshot
	b[0] ^= 0xFF
	return tx.Commit()
}

// undocumented suppressions are themselves flagged: the reason is
// mandatory.
func scribbleNoReason(tx *Tx, oid OID) error {
	b, err := tx.Get(oid)
	if err != nil {
		return err
	}
	//pgllint:ignore txwrite
	b[0] ^= 0xFF // want `write to read-only Tx.Get snapshot "b"` `missing its reason`
	return tx.Commit()
}
