// Package fsyncrename seeds violations of the crash-durable rename
// pattern: fsync the temp file, rename, fsync the parent directory.
package fsyncrename

import (
	"os"
	"path/filepath"
)

func rawRename(tmp, path string) error {
	return os.Rename(tmp, path) // want `raw os.Rename of a data file`
}

func missingDirSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `without an fsync of the parent directory`
}

func missingFileSync(tmp, path string) error {
	if err := os.Rename(tmp, path); err != nil { // want `without an fsync of the renamed file first`
		return err
	}
	return syncDir(filepath.Dir(path))
}

func fullPattern(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func inlineDirSync(tmp, path string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// fixtureShuffle documents an intentional exception: the destination
// is a scratch path whose loss on crash is harmless.
func fixtureShuffle(tmp, path string) error {
	//pgllint:ignore fsyncrename scratch-path shuffle; crash durability not needed
	return os.Rename(tmp, path)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
