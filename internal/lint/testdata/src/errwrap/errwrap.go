// Package errwrap seeds violations of the error wrapping and
// comparison discipline: wrap causes with %w, compare with errors.Is.
// (The analyzer only fires in internal/... and server/ package paths;
// this testdata package lives under internal/lint/testdata.)
package errwrap

import (
	"errors"
	"fmt"
)

var ErrGateBusy = errors.New("gate busy")

func severedWrap(path string, err error) error {
	return fmt.Errorf("open %s: %v", path, err) // want `error formatted with %v instead of %w`
}

func severedStringWrap(err error) error {
	return fmt.Errorf("load failed: %s", err) // want `error formatted with %s instead of %w`
}

func starWidthWrap(n int, err error) error {
	return fmt.Errorf("%*d ops: %v", 8, n, err) // want `error formatted with %v instead of %w`
}

func properWrap(path string, err error) error {
	return fmt.Errorf("open %s: %w", path, err)
}

func nonErrorArgs(path string, n int) error {
	return fmt.Errorf("open %s: %d bytes", path, n)
}

func identityCompare(err error) bool {
	return err == ErrGateBusy // want `errors compared with == never match once wrapped`
}

func identityCompareNeq(err error) bool {
	return err != ErrGateBusy // want `errors compared with != never match once wrapped`
}

func nilCompare(err error) bool {
	return err == nil || nil != err
}

func properCompare(err error) bool {
	return errors.Is(err, ErrGateBusy)
}

// legacyCompare documents an intentional identity comparison (e.g. a
// protocol sentinel that is never wrapped).
func legacyCompare(err error) bool {
	//pgllint:ignore errwrap wire sentinel is never wrapped; identity is the contract
	return err == ErrGateBusy
}
