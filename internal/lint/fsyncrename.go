package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var FsyncRename = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc: `flag os.Rename of data files without the fsync-temp/rename/fsync-dir pattern

A rename orders the directory entry, not the data: without an fsync of
the temp file before the rename and an fsync of the parent directory
after it, a host crash can leave the path pointing at a torn file or at
nothing at all (the bug class nvm.Device.SaveFile was hardened against
in PR 7). The analyzer flags any os.Rename whose enclosing function
does not fsync a file before the rename and fsync the parent directory
(a File.Sync call or a syncDir-style helper) after it. Test files are
exempt: fixture shuffling does not need crash durability.`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runFsyncRename,
}

func runFsyncRename(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if !isPkgFunc(pass.TypesInfo, call, "os", "Rename") {
			return true
		}
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return true
		}
		var enclosing *ast.FuncDecl
		for _, s := range stack {
			if fd, ok := s.(*ast.FuncDecl); ok {
				enclosing = fd
			}
		}
		if enclosing == nil {
			r.reportf(call.Pos(), "os.Rename outside a function cannot implement the fsync-temp/rename/fsync-dir pattern; use nvm.Device.SaveFile or a helper that does")
			return true
		}
		syncBefore, dirSyncAfter := renameDiscipline(pass.TypesInfo, enclosing.Body, call)
		switch {
		case !syncBefore && !dirSyncAfter:
			r.reportf(call.Pos(), "raw os.Rename of a data file: fsync the temp file before the rename and the parent directory after it (see nvm.Device.SaveFile)")
		case !syncBefore:
			r.reportf(call.Pos(), "os.Rename without an fsync of the renamed file first: the rename can land before the data and a crash leaves a torn file")
		case !dirSyncAfter:
			r.reportf(call.Pos(), "os.Rename without an fsync of the parent directory after it: the new directory entry is not durable and a crash can lose the file")
		}
		return true
	})
	return nil, nil
}

// renameDiscipline scans the enclosing function for a File.Sync call
// lexically before the rename and a directory sync (File.Sync or a
// *syncDir*-named helper) lexically after it.
func renameDiscipline(info *types.Info, body *ast.BlockStmt, rename *ast.CallExpr) (syncBefore, dirSyncAfter bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isFileSync(info, call):
			if call.Pos() < rename.Pos() {
				syncBefore = true
			} else {
				dirSyncAfter = true
			}
		case isSyncDirHelper(call):
			if call.Pos() > rename.Pos() {
				dirSyncAfter = true
			}
		}
		return true
	})
	return syncBefore, dirSyncAfter
}

// isFileSync matches f.Sync() where f is an *os.File.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "File" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os"
}

// isSyncDirHelper matches calls to helpers whose name contains
// "syncdir" (case-insensitive), e.g. syncDir(dir) or fsutil.SyncDir.
func isSyncDirHelper(call *ast.CallExpr) bool {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "syncdir")
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
