package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var StopBool = &analysis.Analyzer{
	Name: "stopbool",
	Doc: `check that iteration callbacks' bool (continue) results are propagated

Every scan path hands the caller's fn func(...) bool down through
structure walks, chunk merges, and overlay flushes; fn returning false
means stop now. Discarding that result keeps the iteration running
after the caller asked it to stop — the exact bug PR 8 fixed twice in
the snapshot merge paths, where overlay leftovers were flushed to fn
after it returned false. The analyzer flags any call to a func-typed
parameter returning bool whose result is discarded (expression
statement, blank assignment, go, or defer).`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStopBool,
}

func runStopBool(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Every parameter (of any function or closure) whose type is a
	// func returning exactly one bool is an iteration callback.
	callbacks := map[types.Object]bool{}
	collect := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.ObjectOf(name)
				if obj == nil {
					continue
				}
				sig, ok := obj.Type().Underlying().(*types.Signature)
				if !ok || sig.Results().Len() != 1 {
					continue
				}
				if basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
					callbacks[obj] = true
				}
			}
		}
	}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			collect(n.Type)
		case *ast.FuncLit:
			collect(n.Type)
		}
	})
	if len(callbacks) == 0 {
		return nil, nil
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !callbacks[pass.TypesInfo.ObjectOf(id)] {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.ExprStmt:
			r.reportf(call.Pos(), "callback %s's bool (continue) result discarded: false means the caller asked the iteration to stop (see stopbool, PR 8)", id.Name)
		case *ast.GoStmt, *ast.DeferStmt:
			r.reportf(call.Pos(), "callback %s called via go/defer discards its bool (continue) result: the early stop can never be propagated", id.Name)
		case *ast.AssignStmt:
			if resultOfCallBlank(parent, call) {
				r.reportf(call.Pos(), "callback %s's bool (continue) result assigned to _: false means the caller asked the iteration to stop (see stopbool, PR 8)", id.Name)
			}
		}
		return true
	})
	return nil, nil
}

// resultOfCallBlank reports whether the assignment discards call's
// result into the blank identifier.
func resultOfCallBlank(as *ast.AssignStmt, call *ast.CallExpr) bool {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return false
	}
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == ast.Node(call) && i < len(as.Lhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}
