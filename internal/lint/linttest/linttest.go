// Package linttest runs a go/analysis analyzer over a testdata package
// and checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// The x/tools analysistest package depends on go/packages, which is
// not vendorable from the toolchain's own x/tools snapshot, so this is
// a minimal reimplementation over `go list -export`: dependencies are
// imported from compiled export data, the target package is parsed and
// type-checked from source, and the analyzer (plus its Requires
// closure) runs over the result.
//
// Expectations use analysistest syntax: a comment
//
//	// want `regexp` `regexp`...
//
// on a line declares that the analyzer must report diagnostics on that
// line matching each regexp, in any order. Lines without a want
// comment must produce no diagnostic.
package linttest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package directory testdata/src/<pkg>, applies a, and
// compares the diagnostics against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		t.Run(a.Name+"/"+pkg, func(t *testing.T) {
			t.Helper()
			diags, fset, files, err := analyze(a, dir)
			if err != nil {
				t.Fatalf("analyzing %s: %v", dir, err)
			}
			checkWants(t, fset, files, diags)
		})
	}
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
}

// analyze loads, type-checks, and analyzes the package in dir,
// returning the analyzer's diagnostics.
func analyze(a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,ImportMap,Standard", dir)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("go list %s: %w\n%s", dir, err, errb.String())
	}
	exports := map[string]string{}
	importMap := map[string]string{}
	var target *listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		target = &p
	}
	if target == nil {
		return nil, nil, nil, fmt.Errorf("go list %s: no packages", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range target.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(target.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(target.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", target.ImportPath, err)
	}

	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer, root bool) error
	run = func(a *analysis.Analyzer, root bool) error {
		if _, done := results[a]; done && !root {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   func(name string) ([]byte, error) { return os.ReadFile(name) },
			Report: func(d analysis.Diagnostic) {
				if root {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, files, nil
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants diffs diagnostics against want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, pat := range splitPatterns(m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
					}
					wants[key{p.Filename, p.Line}] = append(wants[key{p.Filename, p.Line}], rx)
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for k, rest := range wants {
		for _, rx := range rest {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, rx)
		}
	}
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '`', '"':
			quote = s[0]
		default:
			// Unquoted trailing text (e.g. prose in a comment) ends
			// the pattern list.
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return pats
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			pat = raw[1 : len(raw)-1]
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}
