package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

var GatePair = &analysis.Analyzer{
	Name: "gatepair",
	Doc: `check shard reader/writer gate discipline

Every Lock/RLock/TryRLock/TryLock acquired on a shard gate (a
sync.Mutex or sync.RWMutex stored in a field or variable named "gate")
must be released on every path out of the function, with the matching
release kind, and no channel operation may run while the gate is held:
the gate serializes readers against group commits, so a blocking send
under it can deadlock the shard's worker loop. The check is a forward
may-analysis over the function's control-flow graph; locks inherited
from the caller (released before any acquire) are out of scope.`,
	Run: runGatePair,
}

// Lock-event kinds. Read and write sides are tracked separately so a
// TryRLock answered by Unlock is flagged as a mismatch.
type lockKind uint8

const (
	lockR lockKind = iota
	lockW
)

type gateKey struct {
	expr string // canonical receiver expression, e.g. "w.gate"
	kind lockKind
}

// held-state bits for one gate key along some path.
const (
	heldOpen     uint8 = 1 << iota // acquired, no release covering exit yet
	heldDeferred                   // acquired, release deferred (covered at exit)
)

type gateState map[gateKey]uint8

func (s gateState) clone() gateState {
	c := make(gateState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge ORs src into dst, reporting whether dst changed.
func (s gateState) merge(src gateState) bool {
	changed := false
	for k, v := range src {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

func (s gateState) anyHeld() bool {
	for _, v := range s {
		if v != 0 {
			return true
		}
	}
	return false
}

// gateEvent is one abstract action inside a basic block, in source
// order.
type gateEvent struct {
	kind eventKind
	key  gateKey
	pos  token.Pos
}

type eventKind uint8

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evChanOp
	evReturn
)

func runGatePair(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	for _, f := range pass.Files {
		funcsOf(f, func(node ast.Node, body *ast.BlockStmt) {
			if mentionsGate(body) {
				checkGateFunc(r, body)
			}
		})
	}
	return nil, nil
}

// mentionsGate is a cheap prefilter: does the body reference an
// identifier named "gate" at all?
func mentionsGate(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "gate" {
			found = true
		}
		return !found
	})
	return found
}

func checkGateFunc(r *reporter, body *ast.BlockStmt) {
	info := r.pass.TypesInfo
	graph := cfg.New(body, func(*ast.CallExpr) bool { return true })

	// Non-blocking channel ops (inside a select that has a default
	// clause) are exempt from the held-gate check.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if clause.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, clause := range sel.Body.List {
				if comm := clause.(*ast.CommClause).Comm; comm != nil {
					nonBlocking[comm] = true
					if es, ok := comm.(*ast.ExprStmt); ok {
						nonBlocking[es.X] = true
					}
				}
			}
		}
		return true
	})

	// branchAcq describes a block ending in `if g.TryRLock()` (or its
	// negation): the acquire takes effect only on one successor edge.
	type branchAcq struct {
		key      gateKey
		trueHeld bool
	}

	events := make([][]gateEvent, len(graph.Blocks))
	branches := make([]*branchAcq, len(graph.Blocks))
	for i, b := range graph.Blocks {
		for j, node := range b.Nodes {
			last := j == len(b.Nodes)-1
			// A two-successor block whose condition is exactly a
			// try-acquire (or !try-acquire) transfers the lock on only
			// one edge.
			if last && len(b.Succs) == 2 {
				cond := node
				trueHeld := true
				if u, ok := cond.(ast.Expr); ok {
					if un, ok2 := ast.Unparen(u).(*ast.UnaryExpr); ok2 && un.Op == token.NOT {
						cond = ast.Unparen(un.X)
						trueHeld = false
					}
				}
				if call, ok := cond.(*ast.CallExpr); ok {
					if key, k, ok2 := gateCall(info, call); ok2 && (k == "TryLock" || k == "TryRLock") {
						branches[i] = &branchAcq{key: key, trueHeld: trueHeld}
						continue // not a linear event
					}
				}
			}
			events[i] = append(events[i], nodeEvents(info, node, nonBlocking)...)
		}
	}

	// Forward may-analysis to fixpoint. States only grow (bitwise OR),
	// so this terminates.
	in := make([]gateState, len(graph.Blocks))
	for i := range in {
		in[i] = gateState{}
	}
	acquirePos := map[gateKey]token.Pos{}
	type report struct {
		pos token.Pos
		msg string
	}
	reports := map[string]report{} // dedupe key -> report

	// Every block is processed at least once (the entry state may stay
	// empty, but the block's own events still need interpreting).
	work := make([]int32, len(graph.Blocks))
	inWork := map[int32]bool{}
	for i := range graph.Blocks {
		work[i] = int32(i)
		inWork[int32(i)] = true
	}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		b := graph.Blocks[bi]
		state := in[bi].clone()
		for _, ev := range events[bi] {
			switch ev.kind {
			case evAcquire:
				state[ev.key] |= heldOpen
				acquirePos[ev.key] = ev.pos
			case evDeferRelease:
				if state[ev.key]&heldOpen != 0 {
					state[ev.key] &^= heldOpen
					state[ev.key] |= heldDeferred
				}
			case evRelease:
				if state[ev.key]&heldOpen != 0 {
					state[ev.key] &^= heldOpen
				} else if state[ev.key] == 0 {
					// Releasing the other side of the same gate while
					// holding this side unreleased is a kind mismatch.
					other := gateKey{expr: ev.key.expr, kind: ev.key.kind ^ 1}
					if state[other]&heldOpen != 0 {
						reports["mismatch:"+ev.key.expr] = report{ev.pos, "release kind does not match the acquire on " + ev.key.expr + " (Lock pairs with Unlock, RLock/TryRLock with RUnlock)"}
						state[other] &^= heldOpen
					}
				}
			case evChanOp:
				if state.anyHeld() {
					reports["chan:"+r.pass.Fset.Position(ev.pos).String()] = report{ev.pos, "channel operation while holding the shard gate: the gate serializes readers against commits and must never wait on a channel"}
				}
			case evReturn:
				for k, v := range state {
					if v&heldOpen != 0 {
						reports["leak:"+k.expr] = report{acquirePos[k], "gate acquired here is not released on every path (add the missing Unlock/RUnlock or a defer)"}
					}
				}
			}
		}
		for si, succ := range b.Succs {
			out := state
			if ba := branches[bi]; ba != nil && (si == 0) == ba.trueHeld {
				out = state.clone()
				out[ba.key] |= heldOpen
				acquirePos[ba.key] = b.Nodes[len(b.Nodes)-1].Pos()
			}
			if in[succ.Index].merge(out) && !inWork[succ.Index] {
				work = append(work, succ.Index)
				inWork[succ.Index] = true
			}
		}
	}
	for _, rep := range reports {
		r.reportf(rep.pos, "%s", rep.msg)
	}
}

// nodeEvents extracts the gate-relevant events from one CFG node, in
// traversal (≈source) order, without descending into function
// literals.
func nodeEvents(info *types.Info, node ast.Node, nonBlocking map[ast.Node]bool) []gateEvent {
	var evs []gateEvent
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body has its own CFG
		case *ast.DeferStmt:
			if key, kind, ok := gateCall(info, n.Call); ok && isRelease(kind) {
				evs = append(evs, gateEvent{evDeferRelease, releaseKey(key, kind), n.Pos()})
				return false
			}
		case *ast.CallExpr:
			if key, kind, ok := gateCall(info, n); ok {
				switch {
				case isRelease(kind):
					evs = append(evs, gateEvent{evRelease, releaseKey(key, kind), n.Pos()})
				default:
					evs = append(evs, gateEvent{evAcquire, key, n.Pos()})
				}
			}
		case *ast.SendStmt:
			if !nonBlocking[ast.Node(n)] {
				evs = append(evs, gateEvent{evChanOp, gateKey{}, n.Pos()})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[ast.Node(n)] {
				evs = append(evs, gateEvent{evChanOp, gateKey{}, n.Pos()})
			}
		case *ast.ReturnStmt:
			evs = append(evs, gateEvent{evReturn, gateKey{}, n.Pos()})
		}
		return true
	})
	return evs
}

func isRelease(method string) bool { return method == "Unlock" || method == "RUnlock" }

// releaseKey maps a release method to the gate key it releases.
func releaseKey(key gateKey, method string) gateKey {
	if method == "RUnlock" {
		key.kind = lockR
	} else {
		key.kind = lockW
	}
	return key
}

// gateCall recognizes <expr>.gate.<method>() and gate.<method>() where
// the gate is a sync.Mutex or sync.RWMutex (possibly behind a pointer)
// and method is one of the lock-discipline methods. It returns the
// canonical key and the method name.
func gateCall(info *types.Info, call *ast.CallExpr) (gateKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return gateKey{}, "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "TryLock", "Unlock", "RLock", "TryRLock", "RUnlock":
	default:
		return gateKey{}, "", false
	}
	recv := ast.Unparen(sel.X)
	var name string
	switch x := recv.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return gateKey{}, "", false
	}
	if name != "gate" {
		return gateKey{}, "", false
	}
	if !isSyncLocker(info.TypeOf(recv)) {
		return gateKey{}, "", false
	}
	kind := lockW
	if method == "RLock" || method == "TryRLock" || method == "RUnlock" {
		kind = lockR
	}
	return gateKey{expr: types.ExprString(recv), kind: kind}, method, true
}

func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
