package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var TxWrite = &analysis.Analyzer{
	Name: "txwrite",
	Doc: `flag undeclared stores to transaction snapshots and discarded commits

Inside a transaction every write must go through Open/AddRange, which
log the range so commit can update the object, its checksum, and zone
parity together (the paper's §4 write contract). Tx.Get hands out a
read-only snapshot: writing through it corrupts checksums and parity
silently. The analyzer flags element writes, copy/append/clear, through
byte slices obtained from a Tx.Get call, and Commit calls whose error
result is discarded.`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runTxWrite,
}

func runTxWrite(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkTxFunc(r, fd.Body)
	})
	return nil, nil
}

// checkTxFunc walks one top-level function body (including nested
// closures, which share the outer taint set since they capture its
// variables) in source order, tracking which variables currently hold a
// Tx.Get snapshot.
func checkTxFunc(r *reporter, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	info := r.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// First: is any LHS an element write through a tainted
			// slice? (A bare identifier LHS is a rebinding, not a
			// store through the snapshot.)
			for _, lhs := range n.Lhs {
				if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); !isIndex {
					continue
				}
				if obj := sliceRoot(info, lhs); obj != nil && tainted[obj] {
					r.reportf(lhs.Pos(), "write to read-only Tx.Get snapshot %q; open the object for writing with Open or AddRange instead", obj.Name())
				}
			}
			// Then update taint: v, err := tx.Get(...) taints v; any
			// other assignment to v clears it (e.g. a later Open).
			fromGet := len(n.Rhs) == 1 && isTxMethodCall(info, n.Rhs[0], "Get")
			if len(n.Rhs) == 1 {
				if _, isLit := n.Rhs[0].(*ast.FuncLit); isLit {
					return true // handled by the recursive Inspect
				}
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				switch {
				case fromGet && i == 0:
					tainted[obj] = true
				case len(n.Rhs) == 1 && taintAlias(info, tainted, n.Rhs[0]):
					tainted[obj] = true
				default:
					delete(tainted, obj)
				}
			}
		case *ast.CallExpr:
			checkTxCall(r, tainted, n)
		case *ast.ExprStmt:
			if isTxMethodCall(info, n.X, "Commit") {
				r.reportf(n.Pos(), "Tx.Commit error discarded: commit can fail (log full, media fault) and the transaction is not durable until it returns nil")
			}
		case *ast.DeferStmt:
			if isTxCommitFun(info, n.Call) {
				r.reportf(n.Pos(), "Tx.Commit error discarded in defer: commit can fail and the transaction is not durable until it returns nil")
			}
		}
		return true
	})
	// Second pass for blank-assigned commits: _ = tx.Commit().
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && isTxMethodCall(info, as.Rhs[0], "Commit") && allBlank(as.Lhs) {
			r.reportf(as.Pos(), "Tx.Commit error discarded: commit can fail (log full, media fault) and the transaction is not durable until it returns nil")
		}
		return true
	})
}

// checkTxCall flags builtin calls that write through a tainted slice:
// copy(dst, ...), append(s, ...), clear(s).
func checkTxCall(r *reporter, tainted map[types.Object]bool, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	var arg ast.Expr
	switch id.Name {
	case "copy", "append", "clear":
		arg = call.Args[0]
	default:
		return
	}
	if obj := sliceRoot(r.pass.TypesInfo, arg); obj != nil && tainted[obj] {
		r.reportf(call.Pos(), "%s writes into read-only Tx.Get snapshot %q; open the object for writing with Open or AddRange instead", id.Name, obj.Name())
	}
}

// taintAlias reports whether expr reads from a tainted slice in a way
// that aliases its backing array (v2 := v1, v2 := v1[a:b]).
func taintAlias(info *types.Info, tainted map[types.Object]bool, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SliceExpr:
		if obj := sliceRoot(info, e); obj != nil {
			return tainted[obj]
		}
	}
	return false
}

// sliceRoot resolves the variable written through an lvalue/argument
// expression: v, v[i], v[a:b], (v) all root at v.
func sliceRoot(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.ObjectOf(e)
			if obj == nil {
				return nil
			}
			if _, ok := obj.Type().(*types.Slice); !ok {
				return nil
			}
			return obj
		default:
			return nil
		}
	}
}

// isTxMethodCall reports whether expr is a call to a method named name
// on a transaction type (a named type called Tx, possibly behind a
// pointer).
func isTxMethodCall(info *types.Info, expr ast.Expr, name string) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	if name == "Commit" {
		return isTxCommitFun(info, call)
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if !isTxType(info.TypeOf(sel.X)) {
		return false
	}
	// Tx.Get specifically returns ([]byte, error): the read-only
	// snapshot shape.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	s, ok := sig.Results().At(0).Type().(*types.Slice)
	return ok && types.Identical(s.Elem(), types.Typ[types.Byte])
}

func isTxCommitFun(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Commit" {
		return false
	}
	if !isTxType(info.TypeOf(sel.X)) {
		return false
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isErrorType(sig.Results().At(0).Type())
}

func isTxType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tx"
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
