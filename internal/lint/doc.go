// Package lint implements pgllint, a go/analysis suite that
// machine-checks the persistence and concurrency invariants this
// codebase depends on but the Go compiler cannot see.
//
// Pangolin's correctness rests on discipline: every write inside a
// transaction must go through a logged view so commit can update the
// object, its checksum, and zone parity together (the paper's §4
// contract); the shard reader/writer gate must never leak or block;
// renames of data files must be crash-durable; typed errors must stay
// matchable through wraps; and iteration callbacks must honor their
// stop signal. The last several PRs each shipped review-fix commits
// for hand-found violations of exactly these rules. View-Based
// Owicki-Gries Reasoning for Persistent x86-TSO shows persistency
// invariants are precise enough to check mechanically, and FliT shows
// a tiny annotation/flag discipline suffices to catch missed-persist
// bugs; these analyzers encode the same ideas at review time, so those
// bug classes cannot come back silently.
//
// # The rules
//
// txwrite — undeclared stores to pmem objects. Tx.Get returns a
// read-only snapshot; writes must go through Tx.Open or Tx.AddRange so
// they are logged and covered by checksum + parity on commit. Element
// writes, copy/append/clear through a Get-derived slice, and discarded
// Tx.Commit errors are flagged. Bug class: silent checksum/parity
// corruption — the §4 contract the whole fault model rests on.
//
// gatepair — shard gate discipline. Every Lock/RLock/TryRLock/TryLock
// on a "gate" mutex must be released on every path with the matching
// kind, and no channel operation may run while the gate is held (the
// gate serializes readers against group commits; a blocking send under
// it can wedge the shard worker). Checked as a forward may-analysis
// over the function's CFG. Bug class: reader-gate leaks and
// worker-loop deadlocks (the gate protocol introduced in PR 3).
//
// fsyncrename — crash-durable renames. os.Rename of a data file
// without an fsync of the temp file before and of the parent
// directory after leaves a torn or missing file on a host crash: the
// rename orders the directory entry, not the data. Bug class: the
// unfsynced-rename PR 7's review fixed in nvm.Device.SaveFile.
//
// errwrap — error identity. In internal/... and server/, fmt.Errorf
// must wrap error causes with %w, and errors must be compared with
// errors.Is (or pangolin.IsCorruption / pangolin.IsPoison), never
// ==/!=. Bug class: severed error chains breaking heal-and-retry,
// typed wire statuses, and shutdown sentinels (the Apply error
// contract PR 7's review fixed).
//
// stopbool — iteration callbacks. A call to a func(...) bool callback
// parameter must not discard its result: false means the caller asked
// the iteration to stop. Bug class: scans delivering pairs after the
// callback returned false — fixed twice in PR 8's snapshot merge
// paths.
//
// # Suppression
//
// Intentional exceptions are documented in-code, never out-of-band:
//
//	//pgllint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the violating line or on its own line immediately above it. The
// reason is mandatory; a reasonless or malformed ignore suppresses
// nothing and is itself diagnosed at the violation it fails to cover.
//
// # Running
//
// `make lint` builds cmd/pgllint and runs it over ./... via
// `go vet -vettool`, which is also how the CI lint job gates merges.
// See cmd/pgllint for the standalone/vettool invocation modes and
// linttest for the analysistest-style test harness.
package lint
