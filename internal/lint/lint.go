// Package lint holds pgllint's go/analysis analyzers: machine checks
// for the persistence and concurrency invariants this codebase relies
// on but the compiler cannot see. See doc.go for the catalogue of
// rules, the bug class each one prevents, and the PR where that class
// last appeared in review.
package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns every pgllint analyzer, in the order cmd/pgllint
// registers them.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ErrWrap,
		FsyncRename,
		GatePair,
		StopBool,
		TxWrite,
	}
}

// ignorePrefix is the in-code suppression marker:
//
//	//pgllint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the violating line or on its own line immediately above it. The
// reason is mandatory: an intentional exception must say why.
const ignorePrefix = "//pgllint:ignore"

var ignoreRE = regexp.MustCompile(`^//pgllint:ignore\s+([\w,]+)(?:\s+(\S.*))?$`)

// ignoreSite records one suppression comment.
type ignoreSite struct {
	names  []string // analyzers it names
	reason string   // "" when the mandatory reason is missing
	pos    token.Pos
}

// reporter wraps a pass with //pgllint:ignore handling for one
// analyzer. Every analyzer reports through one of these.
type reporter struct {
	pass     *analysis.Pass
	name     string
	sites    map[string]map[int]*ignoreSite // filename -> line -> site
	reported map[*ignoreSite]bool           // bad sites already diagnosed
}

func newReporter(pass *analysis.Pass) *reporter {
	r := &reporter{
		pass:     pass,
		name:     pass.Analyzer.Name,
		sites:    map[string]map[int]*ignoreSite{},
		reported: map[*ignoreSite]bool{},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := ignoreRE.FindStringSubmatch(text)
				site := &ignoreSite{pos: c.Pos()}
				if m != nil {
					site.names = strings.Split(m[1], ",")
					site.reason = strings.TrimSpace(m[2])
				}
				if r.sites[p.Filename] == nil {
					r.sites[p.Filename] = map[int]*ignoreSite{}
				}
				r.sites[p.Filename][p.Line] = site
			}
		}
	}
	return r
}

func (s *ignoreSite) covers(name string) bool {
	for _, n := range s.names {
		if n == name {
			return true
		}
	}
	return false
}

// suppressed reports whether a diagnostic at pos is covered by an
// ignore comment (with a reason) on the same line or the line above. A
// comment that tries to cover the diagnostic but is missing its
// mandatory reason — or names no analyzer at all — does not suppress,
// and is itself diagnosed once, at the violation it fails to suppress.
func (r *reporter) suppressed(pos token.Pos) bool {
	p := r.pass.Fset.Position(pos)
	lines := r.sites[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		site := lines[line]
		if site == nil {
			continue
		}
		switch {
		case site.covers(r.name) && site.reason != "":
			return true
		case site.covers(r.name):
			if !r.reported[site] {
				r.reported[site] = true
				r.pass.Reportf(pos, "%s %s is missing its reason: intentional exceptions must say why (not suppressing)", ignorePrefix, r.name)
			}
		case len(site.names) == 0:
			if !r.reported[site] {
				r.reported[site] = true
				r.pass.Reportf(pos, "malformed %s comment (want %q): not suppressing", ignorePrefix, ignorePrefix+" <analyzer> <reason>")
			}
		}
	}
	return false
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	if r.suppressed(pos) {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// funcsOf yields every function body in the file with its defining
// node: FuncDecls and FuncLits.
func funcsOf(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(n, n.Body)
		}
		return true
	})
}
