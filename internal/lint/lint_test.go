package lint_test

import (
	"testing"

	"github.com/pangolin-go/pangolin/internal/lint"
	"github.com/pangolin-go/pangolin/internal/lint/linttest"
)

func TestTxWrite(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.TxWrite, "txwrite")
}

func TestGatePair(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.GatePair, "gatepair")
}

func TestFsyncRename(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.FsyncRename, "fsyncrename")
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.ErrWrap, "errwrap")
}

func TestStopBool(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.StopBool, "stopbool")
}
