package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: `enforce error wrapping and comparison discipline in internal/ and server/

The serving layers classify errors by identity: pipelined replies carry
typed statuses, heal-and-retry gates on IsCorruption/IsPoison, and
shutdown resolves in-flight ops with a sentinel clients test with
errors.Is. A fmt.Errorf that formats an error with %v instead of %w
severs that chain (the exact contract break PR 7's review fixed in the
store Apply path), and == against a typed error stops matching the
moment anyone wraps it. The analyzer flags fmt.Errorf calls that format
an error value with a verb other than %w, and ==/!= comparisons where
both operands are errors (nil checks excluded).`,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrWrap,
}

func runErrWrap(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") &&
		!strings.HasPrefix(path, "internal/") &&
		!strings.HasSuffix(path, "/server") &&
		!strings.Contains(path, "/server/") {
		return nil, nil
	}
	r := newReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorfWrap(r, n)
		case *ast.BinaryExpr:
			checkErrCompare(r, n)
		}
	})
	return nil, nil
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value under
// a verb other than %w.
func checkErrorfWrap(r *reporter, call *ast.CallExpr) {
	info := r.pass.TypesInfo
	if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			return
		}
		if verb == 'w' {
			continue
		}
		t := info.TypeOf(call.Args[argIdx])
		if t != nil && isErrorType(t) {
			r.reportf(call.Args[argIdx].Pos(), "error formatted with %%%c instead of %%w: the cause is severed and errors.Is/IsCorruption/IsPoison stop matching through this wrap", verb)
		}
	}
}

// formatVerbs returns the verb letter consuming each successive
// argument of a Printf-style format string. It bails out (ok=false) on
// explicit argument indexes like %[1]d.
func formatVerbs(format string) (verbs []rune, ok bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// flags, width, precision; '*' consumes an argument of its own.
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.*", runes[i]) {
			if runes[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '[' {
			return nil, false
		}
		verbs = append(verbs, runes[i])
	}
	return verbs, true
}

// checkErrCompare flags ==/!= where both operands are error values
// (and neither is nil): wrapped errors never compare equal, use
// errors.Is or the typed helpers.
func checkErrCompare(r *reporter, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	info := r.pass.TypesInfo
	x, y := info.Types[cmp.X], info.Types[cmp.Y]
	if x.IsNil() || y.IsNil() {
		return
	}
	if x.Type == nil || y.Type == nil || !isErrorType(x.Type) || !isErrorType(y.Type) {
		return
	}
	r.reportf(cmp.OpPos, "errors compared with %s never match once wrapped: use errors.Is (or IsCorruption/IsPoison for the typed fault classes)", cmp.Op)
}
