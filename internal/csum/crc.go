package csum

import "hash/crc32"

// crcTable is the Castagnoli table, matching the CRC32C most storage systems
// (and the paper's ISA-L usage) prefer for data integrity.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC32 computes the CRC32C checksum of data. Pangolin does not use CRC for
// object checksums — unlike Adler32, a range update still requires rescanning
// the object — but it is kept as the ablation baseline for the
// "incremental Adler vs. full CRC" comparison discussed in §3.5.
func CRC32(data []byte) uint32 {
	return crc32.Checksum(data, crcTable)
}
