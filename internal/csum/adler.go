// Package csum implements the checksums Pangolin uses to detect NVMM
// corruption.
//
// The paper picks Adler32 over CRC32 because Adler32 supports incremental
// updates: when a transaction modifies a range of an object, the object's
// checksum can be refreshed in time proportional to the modified range
// rather than the whole object (§3.5). This package implements that
// range-replacement update from first principles (the standard library's
// hash/adler32 has no such operation) plus a CRC32 path used as the
// ablation baseline.
package csum

// adlerMod is the largest prime smaller than 2^16, per RFC 1950.
const adlerMod = 65521

// nmax is the largest n such that 255*n*(n+1)/2 + (n+1)*(adlerMod-1) fits in
// 32 bits, i.e. how many bytes can be summed before reducing.
const nmax = 5552

// Adler32 computes the Adler-32 checksum of data.
func Adler32(data []byte) uint32 {
	return Continue(1, data)
}

// Continue extends an Adler-32 state over more bytes: streaming
// concatenation, Continue(Adler32(a), b) == Adler32(a||b). The inner loop
// is unrolled — this is the library's stand-in for the paper's ISA-L SIMD
// checksum kernels, so it should not be naively slow.
func Continue(sum uint32, data []byte) uint32 {
	a, b := sum&0xffff, sum>>16
	for len(data) > 0 {
		chunk := data
		if len(chunk) > nmax {
			chunk = chunk[:nmax]
		}
		data = data[len(chunk):]
		for len(chunk) >= 16 {
			c := chunk[:16]
			a += uint32(c[0])
			b += a
			a += uint32(c[1])
			b += a
			a += uint32(c[2])
			b += a
			a += uint32(c[3])
			b += a
			a += uint32(c[4])
			b += a
			a += uint32(c[5])
			b += a
			a += uint32(c[6])
			b += a
			a += uint32(c[7])
			b += a
			a += uint32(c[8])
			b += a
			a += uint32(c[9])
			b += a
			a += uint32(c[10])
			b += a
			a += uint32(c[11])
			b += a
			a += uint32(c[12])
			b += a
			a += uint32(c[13])
			b += a
			a += uint32(c[14])
			b += a
			a += uint32(c[15])
			b += a
			chunk = chunk[16:]
		}
		for _, c := range chunk {
			a += uint32(c)
			b += a
		}
		a %= adlerMod
		b %= adlerMod
	}
	return b<<16 | a
}

// Update returns the Adler-32 checksum of a buffer of total length total
// after the bytes at [off, off+len(old)) are replaced: sum is the checksum
// of the original buffer, old are the bytes being replaced and new_ their
// replacements (equal lengths). The cost is O(len(old)), independent of
// total — the property that makes per-object checksums affordable for large
// objects (§3.5).
//
// Derivation: with d_i the i-th byte of an n-byte buffer,
//
//	a = 1 + Σ d_i            (mod 65521)
//	b = n + Σ (n-i)·d_i      (mod 65521)
//
// so replacing d_j..d_{j+m-1} shifts a by Σ(new-old) and b by
// Σ (n-i)·(new_i-old_i), all mod 65521.
func Update(sum uint32, total uint64, off uint64, old, new_ []byte) uint32 {
	if len(old) != len(new_) {
		panic("csum: Update requires equal-length old and new ranges")
	}
	if off+uint64(len(old)) > total {
		panic("csum: Update range exceeds buffer length")
	}
	n := total % adlerMod
	var da, db uint64 // accumulated shifts; each term < 65521², reduce rarely
	for i := range old {
		idx := (off + uint64(i)) % adlerMod
		w := (n + adlerMod - idx) % adlerMod
		diff := (uint64(new_[i]) + adlerMod - uint64(old[i])) % adlerMod
		da += diff
		db += w * diff
		if i&0xFFFFFFF == 0xFFFFFFF { // guard against (absurdly) long ranges
			da %= adlerMod
			db %= adlerMod
		}
	}
	a := (uint64(sum&0xffff) + da) % adlerMod
	b := (uint64(sum>>16) + db) % adlerMod
	return uint32(b)<<16 | uint32(a)
}
