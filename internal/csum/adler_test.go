package csum

import (
	"bytes"
	"hash/adler32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdlerMatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{255},
		[]byte("hello, pangolin"),
		bytes.Repeat([]byte{0xAB}, 10000), // exceeds nmax: exercises chunked reduction
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		b := make([]byte, rng.Intn(20000))
		rng.Read(b)
		cases = append(cases, b)
	}
	for i, c := range cases {
		if got, want := Adler32(c), adler32.Checksum(c); got != want {
			t.Fatalf("case %d (len %d): Adler32 = %#x, stdlib = %#x", i, len(c), got, want)
		}
	}
}

func TestUpdateBasic(t *testing.T) {
	buf := []byte("the quick brown fox jumps over the lazy dog")
	sum := Adler32(buf)
	mod := append([]byte(nil), buf...)
	copy(mod[4:9], "slow!")
	got := Update(sum, uint64(len(buf)), 4, buf[4:9], mod[4:9])
	if want := Adler32(mod); got != want {
		t.Fatalf("Update = %#x, full recompute = %#x", got, want)
	}
}

func TestUpdateWholeBuffer(t *testing.T) {
	old := bytes.Repeat([]byte{1}, 333)
	new_ := bytes.Repeat([]byte{200}, 333)
	sum := Adler32(old)
	got := Update(sum, 333, 0, old, new_)
	if want := Adler32(new_); got != want {
		t.Fatalf("Update = %#x, want %#x", got, want)
	}
}

func TestUpdateEmptyRange(t *testing.T) {
	buf := []byte("unchanged")
	sum := Adler32(buf)
	if got := Update(sum, uint64(len(buf)), 3, nil, nil); got != sum {
		t.Fatalf("empty-range update changed sum: %#x vs %#x", got, sum)
	}
}

func TestUpdatePanicsOnMismatchedLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Update(0, 10, 0, []byte{1, 2}, []byte{1})
}

func TestUpdatePanicsOnRangeOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Update(0, 4, 3, []byte{1, 2}, []byte{3, 4})
}

// Property P6 (DESIGN.md): incremental range update equals a full
// recomputation for arbitrary buffers and ranges.
func TestUpdateEqualsRecompute(t *testing.T) {
	f := func(seed int64, lenHint uint16, offHint, rangeHint uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(lenHint%8192) + 1
		buf := make([]byte, n)
		rng.Read(buf)
		off := int(offHint) % n
		m := int(rangeHint) % (n - off)
		old := append([]byte(nil), buf[off:off+m]...)
		mod := append([]byte(nil), buf...)
		rng.Read(mod[off : off+m])
		got := Update(Adler32(buf), uint64(n), uint64(off), old, mod[off:off+m])
		return got == Adler32(mod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Chained updates must compose: applying two successive range updates gives
// the checksum of the final buffer. This is exactly how a transaction with
// multiple modified ranges refreshes an object's checksum.
func TestUpdateComposes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4096) + 64
		buf := make([]byte, n)
		rng.Read(buf)
		sum := Adler32(buf)
		cur := append([]byte(nil), buf...)
		for step := 0; step < 4; step++ {
			off := rng.Intn(n)
			m := rng.Intn(n - off)
			old := append([]byte(nil), cur[off:off+m]...)
			rng.Read(cur[off : off+m])
			sum = Update(sum, uint64(n), uint64(off), old, cur[off:off+m])
		}
		return sum == Adler32(cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateLargeBufferSmallRange(t *testing.T) {
	// The whole point: a small edit in a large object must not require
	// rescanning the object. Verify correctness at a size where it
	// matters (rtree-scale, 4 KB+).
	buf := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(7))
	rng.Read(buf)
	sum := Adler32(buf)
	mod := append([]byte(nil), buf...)
	copy(mod[999000:999016], "sixteen bytes!!!")
	got := Update(sum, uint64(len(buf)), 999000, buf[999000:999016], mod[999000:999016])
	if want := Adler32(mod); got != want {
		t.Fatalf("Update = %#x, want %#x", got, want)
	}
}

func TestCRC32Known(t *testing.T) {
	// CRC32C("123456789") = 0xE3069283, the canonical check value.
	if got := CRC32([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("CRC32C check value = %#x, want 0xE3069283", got)
	}
}

func BenchmarkAdlerFull4K(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Adler32(buf)
	}
}

func BenchmarkAdlerUpdate64of4K(b *testing.B) {
	buf := make([]byte, 4096)
	sum := Adler32(buf)
	old := buf[1000:1064]
	new_ := bytes.Repeat([]byte{9}, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Update(sum, 4096, 1000, old, new_)
	}
}
