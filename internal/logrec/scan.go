package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
)

// parseStream walks a lane's record stream (lane payload plus overflow
// chain). For committed redo logs the stream must parse completely from
// the primary or, failing that, the replica. For active undo logs the
// valid prefix is the answer; both copies are scanned and the longer
// prefix wins (every persisted snapshot is needed for rollback).
func (m *Manager) parseStream(lane uint64, hdr laneHeader) ([]Record, []uint64, error) {
	prim, extsP, errP := m.scanCopy(lane, hdr, false)
	if hdr.state == StateRedoCommitted {
		if errP == nil {
			return prim, extsP, nil
		}
		if !m.replicate {
			return nil, nil, errP
		}
		repl, extsR, errR := m.scanCopy(lane, hdr, true)
		if errR != nil {
			return nil, nil, fmt.Errorf("primary: %w; replica: %w", errP, errR)
		}
		return repl, extsR, nil
	}
	// Undo: incomplete streams are expected; errors only matter if the
	// stream head itself was unreadable.
	if !m.replicate {
		return prim, extsP, errP
	}
	repl, extsR, errR := m.scanCopy(lane, hdr, true)
	switch {
	case errP != nil && errR != nil:
		return nil, nil, fmt.Errorf("primary: %w; replica: %w", errP, errR)
	case errP != nil:
		return repl, extsR, nil
	case errR != nil:
		return prim, extsP, nil
	case len(repl) > len(prim):
		return repl, extsR, nil
	default:
		return prim, extsP, nil
	}
}

// scanCopy parses one copy (primary or replica) of a lane's stream.
// The returned error reports an unreadable region (poison) or a broken
// chain; an ordinary invalid record simply ends the stream.
func (m *Manager) scanCopy(lane uint64, hdr laneHeader, replica bool) ([]Record, []uint64, error) {
	var recs []Record
	var exts []uint64
	seen := make(map[uint64]bool)

	region := -1
	nextExt := hdr.firstExt
	for {
		var base, payloadOff, size uint64
		if region < 0 {
			base, payloadOff, size = m.geo.LaneOff(lane), layout.LaneHeaderSize, m.geo.LaneSize
			if replica {
				base = m.geo.LaneReplicaOff(lane)
			}
		} else {
			e := exts[region]
			base, payloadOff, size = m.geo.OverflowExtOff(e), layout.OverflowExtHeader, m.geo.OverflowExtSize
			if replica {
				base = m.geo.OverflowExtReplicaOff(e)
			}
		}
		buf := make([]byte, size-payloadOff)
		if err := m.dev.ReadAt(buf, base+payloadOff); err != nil {
			return recs, exts, fmt.Errorf("logrec: reading log region: %w", err)
		}
		jump, rs := scanRegion(hdr.seq, buf)
		recs = append(recs, rs...)
		if !jump {
			return recs, exts, nil
		}
		// Follow the chain.
		if nextExt == 0 {
			return recs, exts, errors.New("logrec: jump marker with no chained extent")
		}
		e := nextExt - 1
		if e >= m.geo.OverflowExts || seen[e] {
			return recs, exts, fmt.Errorf("logrec: corrupt extent chain (ext %d)", e)
		}
		seen[e] = true
		exts = append(exts, e)
		region = len(exts) - 1
		n, err := m.readExtNextCopy(e, hdr.seq, replica)
		if err != nil {
			return recs, exts, err
		}
		nextExt = n
	}
}

// scanRegion parses records from one region's payload. It returns the
// records found and whether a validated jump marker ended the region.
func scanRegion(seq uint64, buf []byte) (jump bool, recs []Record) {
	off := uint64(0)
	for off+recHeaderSize <= uint64(len(buf)) {
		le := binary.LittleEndian
		kind := le.Uint16(buf[off:])
		n := uint64(le.Uint32(buf[off+4:]))
		sum := le.Uint32(buf[off+8:])
		if kind == jumpKind {
			if sum == recordChecksum(seq, jumpKind, nil) && n == 0 {
				return true, recs
			}
			return false, recs
		}
		if kind == endKind || off+recHeaderSize+n > uint64(len(buf)) {
			return false, recs
		}
		payload := buf[off+recHeaderSize : off+recHeaderSize+n]
		if sum != recordChecksum(seq, kind, payload) {
			return false, recs
		}
		recs = append(recs, Record{Kind: kind, Payload: append([]byte(nil), payload...)})
		off += recHeaderSize + n
		if pad := off % 8; pad != 0 {
			off += 8 - pad
		}
	}
	return false, recs
}

// readExtNext reads and validates an extent's chain pointer (primary copy,
// replica fallback when replicating).
func (m *Manager) readExtNext(e, seq uint64) (uint64, error) {
	n, err := m.readExtNextCopy(e, seq, false)
	if err != nil && m.replicate {
		return m.readExtNextCopy(e, seq, true)
	}
	return n, err
}

func (m *Manager) readExtNextCopy(e, seq uint64, replica bool) (uint64, error) {
	off := m.geo.OverflowExtOff(e)
	if replica {
		off = m.geo.OverflowExtReplicaOff(e)
	}
	b := make([]byte, layout.OverflowExtHeader)
	if err := m.dev.ReadAt(b, off); err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	next := le.Uint64(b[extHdrNext:])
	var salt [16]byte
	le.PutUint64(salt[0:], seq)
	le.PutUint64(salt[8:], next)
	if le.Uint32(b[extHdrCsum:]) != csum.Adler32(salt[:]) {
		return 0, fmt.Errorf("logrec: extent %d header checksum mismatch", e)
	}
	return next, nil
}
