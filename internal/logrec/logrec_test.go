package logrec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

const (
	kindData     uint16 = 1
	kindSnapshot uint16 = 2
)

func newLog(t *testing.T, replicate bool) (*nvm.Device, layout.Geometry, *Manager) {
	t.Helper()
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	Format(dev, geo)
	m, err := NewManager(dev, geo, replicate)
	if err != nil {
		t.Fatal(err)
	}
	return dev, geo, m
}

// reopen builds a fresh manager over a (possibly crashed) device.
func reopen(t *testing.T, dev *nvm.Device, geo layout.Geometry, replicate bool) *Manager {
	t.Helper()
	m, err := NewManager(dev, geo, replicate)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFreshPoolHasNoPending(t *testing.T) {
	_, _, m := newLog(t, true)
	if logs := m.Recover(); len(logs) != 0 {
		t.Fatalf("fresh pool has %d pending logs", len(logs))
	}
	if m.FreeLanes() != int(layout.Default().NumLanes) {
		t.Fatalf("free lanes = %d", m.FreeLanes())
	}
}

func TestRedoCommitRecoverCycle(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	p1 := []byte("first record")
	p2 := bytes.Repeat([]byte{7}, 500)
	if err := w.Append(kindData, p1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(kindData, p2); err != nil {
		t.Fatal(err)
	}
	w.Commit()

	// Crash after commit: the log must replay.
	crashed := dev.CrashCopy(nvm.CrashStrict, 0)
	m2 := reopen(t, crashed, geo, true)
	logs := m2.Recover()
	if len(logs) != 1 {
		t.Fatalf("recovered %d logs, want 1", len(logs))
	}
	l := logs[0]
	if l.State != StateRedoCommitted {
		t.Fatalf("state %d", l.State)
	}
	if len(l.Records) != 2 ||
		!bytes.Equal(l.Records[0].Payload, p1) ||
		!bytes.Equal(l.Records[1].Payload, p2) {
		t.Fatalf("records corrupted: %d recs", len(l.Records))
	}
	if err := m2.ClearRecovered(l); err != nil {
		t.Fatal(err)
	}
	// Cleared: nothing pending on the next open.
	m3 := reopen(t, crashed, geo, true)
	if logs := m3.Recover(); len(logs) != 0 {
		t.Fatalf("%d logs after clear", len(logs))
	}
}

func TestUncommittedRedoDiscardedOnCrash(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(kindData, []byte("never committed")); err != nil {
		t.Fatal(err)
	}
	// No Commit. Crash.
	crashed := dev.CrashCopy(nvm.CrashStrict, 1)
	m2 := reopen(t, crashed, geo, true)
	if logs := m2.Recover(); len(logs) != 0 {
		t.Fatalf("uncommitted log surfaced: %d", len(logs))
	}
	if m2.FreeLanes() != int(geo.NumLanes) {
		t.Fatalf("lane leaked: %d free", m2.FreeLanes())
	}
}

func TestClearedLogDoesNotReplay(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	if err := w.Append(kindData, []byte("applied tx")); err != nil {
		t.Fatal(err)
	}
	w.Commit()
	w.Clear()
	crashed := dev.CrashCopy(nvm.CrashStrict, 2)
	m2 := reopen(t, crashed, geo, true)
	if logs := m2.Recover(); len(logs) != 0 {
		t.Fatalf("cleared log resurrected: %d", len(logs))
	}
}

func TestUndoValidPrefix(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	w.Activate()
	for i := 0; i < 3; i++ {
		if err := w.AppendDurable(kindSnapshot, []byte{byte(i), 0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	// Fourth record written but NOT persisted: must not be part of the
	// recovered prefix in strict crash mode.
	if err := w.Append(kindSnapshot, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	crashed := dev.CrashCopy(nvm.CrashStrict, 3)
	m2 := reopen(t, crashed, geo, true)
	logs := m2.Recover()
	if len(logs) != 1 || logs[0].State != StateUndoActive {
		t.Fatalf("logs: %+v", logs)
	}
	if len(logs[0].Records) != 3 {
		t.Fatalf("prefix length %d, want 3", len(logs[0].Records))
	}
	for i, r := range logs[0].Records {
		if r.Payload[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestUndoClearedAtCommit(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	w.Activate()
	if err := w.AppendDurable(kindSnapshot, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	w.Clear() // commit: discard rollback log
	crashed := dev.CrashCopy(nvm.CrashStrict, 4)
	m2 := reopen(t, crashed, geo, true)
	if logs := m2.Recover(); len(logs) != 0 {
		t.Fatal("cleared undo log recovered")
	}
}

func TestOverflowChaining(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	// Fill far beyond one lane: forces several extents.
	payload := bytes.Repeat([]byte{0xAB}, 8000)
	total := int(geo.LaneSize/8000) + int(geo.OverflowExtSize/8000)*2 + 4
	for i := 0; i < total; i++ {
		payload[0] = byte(i)
		if err := w.Append(kindData, payload); err != nil {
			t.Fatal(err)
		}
	}
	if len(w.exts) == 0 {
		t.Fatal("no overflow extents used")
	}
	w.Commit()
	crashed := dev.CrashCopy(nvm.CrashStrict, 5)
	m2 := reopen(t, crashed, geo, true)
	logs := m2.Recover()
	if len(logs) != 1 {
		t.Fatalf("recovered %d logs", len(logs))
	}
	if len(logs[0].Records) != total {
		t.Fatalf("records %d, want %d", len(logs[0].Records), total)
	}
	for i, r := range logs[0].Records {
		if r.Payload[0] != byte(i) || len(r.Payload) != 8000 {
			t.Fatalf("record %d corrupted", i)
		}
	}
	// Extents referenced by the pending log are not re-issued.
	if got := len(m2.freeExts) + len(logs[0].Records); got == int(geo.OverflowExts) {
		t.Fatal("extent accounting did not reserve chain")
	}
	if err := m2.ClearRecovered(logs[0]); err != nil {
		t.Fatal(err)
	}
	if len(m2.freeExts) != int(geo.OverflowExts) {
		t.Fatalf("extents leaked after clear: %d free", len(m2.freeExts))
	}
}

func TestLogFullWhenExtentsExhausted(t *testing.T) {
	_, geo, m := newLog(t, false)
	w, _ := m.Begin()
	payload := bytes.Repeat([]byte{1}, int(m.MaxPayload()))
	var err error
	for i := 0; i < int(geo.OverflowExts)+int(geo.NumLanes)+10; i++ {
		if err = w.Append(kindData, payload); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("expected ErrLogFull, got %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	_, _, m := newLog(t, false)
	w, _ := m.Begin()
	if err := w.Append(kindData, make([]byte, m.MaxPayload()+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := w.Append(endKind, nil); err == nil {
		t.Fatal("reserved kind accepted")
	}
	if err := w.Append(jumpKind, nil); err == nil {
		t.Fatal("reserved kind accepted")
	}
}

func TestLaneExhaustion(t *testing.T) {
	_, geo, m := newLog(t, false)
	var ws []*Writer
	for i := uint64(0); i < geo.NumLanes; i++ {
		w, err := m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	if _, err := m.Begin(); err == nil {
		t.Fatal("lane oversubscription allowed")
	}
	ws[0].Clear()
	if _, err := m.Begin(); err != nil {
		t.Fatalf("lane not recycled: %v", err)
	}
}

func TestStaleRecordsNeverValidate(t *testing.T) {
	dev, geo, m := newLog(t, true)
	// Use a lane, commit, clear: stale bytes remain in the lane.
	w, _ := m.Begin()
	if err := w.Append(kindData, []byte("stale data from tx 1")); err != nil {
		t.Fatal(err)
	}
	w.Commit()
	w.Clear()
	// Reuse the same lane: begin, append nothing, commit.
	w2, _ := m.Begin()
	if w2.lane != w.lane {
		t.Skip("lane not reused; free list order changed")
	}
	w2.Commit()
	crashed := dev.CrashCopy(nvm.CrashStrict, 6)
	m2 := reopen(t, crashed, geo, true)
	logs := m2.Recover()
	if len(logs) != 1 {
		t.Fatalf("logs %d", len(logs))
	}
	if len(logs[0].Records) != 0 {
		t.Fatalf("stale records leaked into new log: %d", len(logs[0].Records))
	}
}

func TestReplicaUsedWhenPrimaryPoisoned(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	payload := bytes.Repeat([]byte{0x5C}, 300)
	if err := w.Append(kindData, payload); err != nil {
		t.Fatal(err)
	}
	w.Commit()
	// Media error wipes the primary lane page.
	dev.Poison(geo.LaneOff(w.lane))
	m2 := reopen(t, dev, geo, true)
	logs := m2.Recover()
	if len(logs) != 1 {
		t.Fatalf("recovered %d logs with poisoned primary", len(logs))
	}
	if len(logs[0].Records) != 1 || !bytes.Equal(logs[0].Records[0].Payload, payload) {
		t.Fatal("replica content wrong")
	}
}

func TestUnreplicatedPoisonedCommittedLaneFails(t *testing.T) {
	dev, geo, m := newLog(t, false)
	w, _ := m.Begin()
	if err := w.Append(kindData, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Commit()
	dev.Poison(geo.LaneOff(w.lane))
	if _, err := NewManager(dev, geo, false); err == nil {
		t.Fatal("poisoned committed lane without replication must fail open")
	}
}

func TestSeqSurvivesReopen(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	seq1 := w.seq
	w.Commit()
	w.Clear()
	m2 := reopen(t, dev, geo, true)
	w2, _ := m2.Begin()
	if w2.seq <= seq1 {
		t.Fatalf("sequence went backwards: %d then %d", seq1, w2.seq)
	}
}

func TestConcurrentWriters(t *testing.T) {
	dev, geo, m := newLog(t, true)
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 10; j++ {
				w, err := m.Begin()
				if err != nil {
					panic(err)
				}
				n := rng.Intn(2000) + 1
				p := make([]byte, n)
				p[0] = byte(i)
				if err := w.Append(kindData, p); err != nil {
					panic(err)
				}
				w.Commit()
				w.Clear()
			}
		}(i)
	}
	wg.Wait()
	if m.FreeLanes() != int(geo.NumLanes) {
		t.Fatalf("lanes leaked: %d free", m.FreeLanes())
	}
	m2 := reopen(t, dev, geo, true)
	if logs := m2.Recover(); len(logs) != 0 {
		t.Fatalf("%d stray logs", len(logs))
	}
}

// Crash-point sweep over the redo commit path: at every persistence point
// the recovered state must be all-or-nothing.
func TestRedoCrashSweep(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"), bytes.Repeat([]byte{2}, 700), []byte("gamma"),
	}
	for crashAt := 1; ; crashAt++ {
		geo := layout.Default()
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		Format(dev, geo)
		m, err := NewManager(dev, geo, true)
		if err != nil {
			t.Fatal(err)
		}
		type crashSignal struct{}
		count := 0
		crashed := false
		dev.SetPersistHook(func() {
			count++
			if count == crashAt {
				panic(crashSignal{})
			}
		})
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(crashSignal); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			w, err := m.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads {
				if err := w.Append(kindData, p); err != nil {
					t.Fatal(err)
				}
			}
			w.Commit()
		}()
		dev.SetPersistHook(nil)
		for seed := int64(0); seed < 3; seed++ {
			img := dev.CrashCopy(nvm.CrashEvictRandom, seed)
			m2, err := NewManager(img, geo, true)
			if err != nil {
				t.Fatalf("crashAt=%d seed=%d: open: %v", crashAt, seed, err)
			}
			logs := m2.Recover()
			if len(logs) > 1 {
				t.Fatalf("crashAt=%d: %d logs", crashAt, len(logs))
			}
			if len(logs) == 1 && logs[0].State == StateRedoCommitted {
				// Committed: every record must be intact.
				if len(logs[0].Records) != len(payloads) {
					t.Fatalf("crashAt=%d seed=%d: committed log has %d/%d records",
						crashAt, seed, len(logs[0].Records), len(payloads))
				}
				for i, r := range logs[0].Records {
					if !bytes.Equal(r.Payload, payloads[i]) {
						t.Fatalf("crashAt=%d: record %d corrupt", crashAt, i)
					}
				}
			}
		}
		if !crashed {
			if crashAt == 1 {
				t.Fatal("hook never fired")
			}
			return // swept past the last persistence point
		}
		if crashAt > 10000 {
			t.Fatal("sweep did not terminate")
		}
	}
}

func TestMaxPayloadPositive(t *testing.T) {
	_, _, m := newLog(t, false)
	if m.MaxPayload() < 4096 {
		t.Fatalf("MaxPayload %d too small to be useful", m.MaxPayload())
	}
}

func TestRecoverBlocksBegin(t *testing.T) {
	dev, geo, m := newLog(t, true)
	w, _ := m.Begin()
	if err := w.Append(kindData, []byte("pending")); err != nil {
		t.Fatal(err)
	}
	w.Commit()
	crashed := dev.CrashCopy(nvm.CrashStrict, 7)
	m2 := reopen(t, crashed, geo, true)
	if _, err := m2.Begin(); err == nil {
		t.Fatal("Begin allowed with recovery pending")
	}
	for _, l := range m2.Recover() {
		if err := m2.ClearRecovered(l); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m2.Begin(); err != nil {
		t.Fatalf("Begin after recovery: %v", err)
	}
}

func ExampleManager() {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	Format(dev, geo)
	m, _ := NewManager(dev, geo, true)
	w, _ := m.Begin()
	_ = w.Append(1, []byte("redo bytes"))
	w.Commit() // durability point
	// ... apply the logged updates ...
	w.Clear() // release the lane
	fmt.Println(m.FreeLanes() == int(geo.NumLanes))
	// Output: true
}
