package logrec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// Property: any sequence of appended records committed and recovered
// across a crash comes back byte-identical and in order, regardless of
// payload sizes (including lane overflow) and crash-eviction outcomes.
func TestCommittedStreamRoundTrip(t *testing.T) {
	geo := layout.Default()
	f := func(seed int64, nRecs uint8, crashSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		Format(dev, geo)
		m, err := NewManager(dev, geo, true)
		if err != nil {
			return false
		}
		w, err := m.Begin()
		if err != nil {
			return false
		}
		n := int(nRecs%20) + 1
		type rec struct {
			kind    uint16
			payload []byte
		}
		var want []rec
		for i := 0; i < n; i++ {
			kind := uint16(rng.Intn(100) + 1)
			// Bias toward sizes that exercise overflow sometimes,
			// capped at the documented payload limit.
			size := rng.Intn(4000)
			if rng.Intn(5) == 0 {
				size = rng.Intn(int(m.MaxPayload()) + 1)
			}
			p := make([]byte, size)
			rng.Read(p)
			if err := w.Append(kind, p); err != nil {
				return false
			}
			want = append(want, rec{kind, p})
		}
		w.Commit()
		img := dev.CrashCopy(nvm.CrashEvictRandom, crashSeed)
		m2, err := NewManager(img, geo, true)
		if err != nil {
			return false
		}
		logs := m2.Recover()
		if len(logs) != 1 || logs[0].State != StateRedoCommitted {
			return false
		}
		if len(logs[0].Records) != len(want) {
			return false
		}
		for i, r := range logs[0].Records {
			if r.Kind != want[i].kind || !bytes.Equal(r.Payload, want[i].payload) {
				return false
			}
		}
		return m2.ClearRecovered(logs[0]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: an uncommitted writer never surfaces any record after a crash,
// no matter how much it wrote or where eviction landed.
func TestUncommittedStreamNeverSurfaces(t *testing.T) {
	geo := layout.Default()
	f := func(seed int64, crashSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		Format(dev, geo)
		m, err := NewManager(dev, geo, true)
		if err != nil {
			return false
		}
		w, err := m.Begin()
		if err != nil {
			return false
		}
		for i := 0; i < rng.Intn(10)+1; i++ {
			p := make([]byte, rng.Intn(3000))
			rng.Read(p)
			if err := w.Append(7, p); err != nil {
				return false
			}
		}
		// Some appends even persisted durably — still uncommitted.
		if err := w.AppendDurable(8, []byte("durable but uncommitted")); err != nil {
			return false
		}
		img := dev.CrashCopy(nvm.CrashEvictRandom, crashSeed)
		m2, err := NewManager(img, geo, true)
		if err != nil {
			return false
		}
		return len(m2.Recover()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
