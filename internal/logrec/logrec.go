// Package logrec implements Pangolin's transaction logs (§2.3, §3.4):
// fixed "lanes" of provisioned log space, one per in-flight transaction,
// with overflow into chained extents for large transactions — the analog
// of libpmemobj logs overflowing from the Log region into the heap.
//
// Logs are streams of checksummed records. Record checksums are salted
// with the lane's use sequence number, so stale bytes from a lane's
// previous life can never parse as part of the current log. Every log
// write is optionally mirrored to a replica region ("Pangolin checksums
// transaction logs and replicates them", §3.1); recovery falls back to the
// replica when the primary fails validation or takes a media fault.
//
// Two disciplines share the machinery:
//
//   - redo (Pangolin): records accumulate, Commit persists the stream and
//     then sets the lane's committed flag with an atomic 8-byte store.
//     Recovery replays lanes whose flag is set; replay is idempotent.
//   - undo (pmemobj baseline): the lane is activated first, then each
//     snapshot record is persisted durably before its in-place write.
//     Recovery rolls back the valid record prefix of active lanes.
//
// Clearing order makes the committed flag authoritative from the primary
// copy; the replica is consulted only if the primary lane header is
// unreadable. For redo logs even that path is safe (replay is idempotent);
// for undo logs the stale-replica window requires a simultaneous poison
// and crash, the double-fault case §3.6 accepts as unrecoverable.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// Lane states (the 8-byte word at the lane base).
const (
	StateIdle          uint64 = 0
	StateRedoCommitted uint64 = 1
	StateUndoActive    uint64 = 2
)

// Record kinds are defined by the engine; logrec reserves 0 (end of
// stream) and jumpKind (continue in next extent).
const (
	endKind  uint16 = 0
	jumpKind uint16 = 0xFFFF
)

const (
	recHeaderSize = 16
	laneHdrState  = 0
	laneHdrSeq    = 8
	laneHdrExt    = 16 // first overflow extent index + 1; 0 = none
	laneHdrCsum   = 24 // Adler32 over seq and firstExt
	extHdrNext    = 0  // next extent index + 1; 0 = end of chain
	extHdrCsum    = 8  // Adler32 over next, salted with seq
)

// Record is one log record.
type Record struct {
	Kind    uint16
	Payload []byte
}

// RecoveredLog is an in-flight log found at pool open.
type RecoveredLog struct {
	Lane    uint64
	State   uint64 // StateRedoCommitted or StateUndoActive
	Seq     uint64
	Records []Record // for undo logs: the valid prefix, in append order
}

// Manager owns the lane and overflow-extent regions of a pool.
type Manager struct {
	dev       *nvm.Device
	geo       layout.Geometry
	replicate bool
	// mirror, when set, receives a copy of every log write at the same
	// offsets: the whole-pool replication of Pmemobj-R, which mirrors
	// logs as well as data (libpmemobj poolset replicas duplicate the
	// entire pool).
	mirror *nvm.Device

	mu        sync.Mutex
	freeLanes []uint64
	freeExts  []uint64
	seq       uint64

	pending []RecoveredLog // discovered at open, drained by Recover
}

// SetMirror directs a copy of every subsequent log write to a replica
// pool device (Pmemobj-R whole-pool mirroring).
func (m *Manager) SetMirror(dev *nvm.Device) { m.mirror = dev }

// NewManager scans the lane region of a pool, parses any in-flight logs
// (drain them via Recover before starting transactions), and builds the
// volatile lane/extent free lists. replicate selects log replication
// (Table 2 "+ML").
func NewManager(dev *nvm.Device, geo layout.Geometry, replicate bool) (*Manager, error) {
	m := &Manager{dev: dev, geo: geo, replicate: replicate}
	usedExts := make(map[uint64]bool)
	var maxSeq uint64
	for l := uint64(0); l < geo.NumLanes; l++ {
		hdr, err := m.readLaneHeader(l)
		if err != nil {
			return nil, fmt.Errorf("logrec: lane %d header unreadable in both copies: %w", l, err)
		}
		if hdr.seq > maxSeq {
			maxSeq = hdr.seq
		}
		if hdr.state != StateRedoCommitted && hdr.state != StateUndoActive {
			m.freeLanes = append(m.freeLanes, l)
			continue
		}
		recs, exts, err := m.parseStream(l, hdr)
		if err != nil {
			if hdr.state == StateRedoCommitted {
				// A committed redo log must be fully intact: it was
				// persisted and replicated before the flag was set.
				return nil, fmt.Errorf("logrec: committed redo log in lane %d unreadable: %w", l, err)
			}
			// Undo logs are valid-prefix by construction; parseStream
			// already returned what it could, so err here means even
			// the stream head was unreadable in both copies.
			return nil, fmt.Errorf("logrec: active undo log in lane %d unreadable: %w", l, err)
		}
		for _, e := range exts {
			usedExts[e] = true
		}
		m.pending = append(m.pending, RecoveredLog{Lane: l, State: hdr.state, Seq: hdr.seq, Records: recs})
	}
	for e := uint64(0); e < geo.OverflowExts; e++ {
		if !usedExts[e] {
			m.freeExts = append(m.freeExts, e)
		}
	}
	m.seq = maxSeq + 1
	return m, nil
}

// Recover returns the in-flight logs found at open: committed redo logs to
// replay and active undo logs to roll back. The engine must Clear each
// lane after processing. Recover may be called once; later calls return
// nil.
func (m *Manager) Recover() []RecoveredLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pending
	m.pending = nil
	return p
}

// MaxPayload returns the largest record payload the log geometry supports.
func (m *Manager) MaxPayload() uint64 {
	lane := m.geo.LaneSize - layout.LaneHeaderSize
	n := lane
	if m.geo.OverflowExts > 0 {
		ext := m.geo.OverflowExtSize - layout.OverflowExtHeader
		n = min(n, ext)
	}
	// Room for the record header plus a trailing jump/end marker.
	return n - 2*recHeaderSize
}

// FreeLanes reports the number of available lanes (test/stats helper).
func (m *Manager) FreeLanes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.freeLanes)
}

type laneHeader struct {
	state    uint64
	seq      uint64
	firstExt uint64 // +1; 0 = none
}

func encodeLaneHeader(h laneHeader) []byte {
	b := make([]byte, layout.LaneHeaderSize)
	le := binary.LittleEndian
	le.PutUint64(b[laneHdrState:], h.state)
	le.PutUint64(b[laneHdrSeq:], h.seq)
	le.PutUint64(b[laneHdrExt:], h.firstExt)
	le.PutUint32(b[laneHdrCsum:], csum.Adler32(b[laneHdrSeq:laneHdrSeq+16]))
	return b
}

func decodeLaneHeader(b []byte) (laneHeader, error) {
	le := binary.LittleEndian
	if le.Uint32(b[laneHdrCsum:]) != csum.Adler32(b[laneHdrSeq:laneHdrSeq+16]) {
		return laneHeader{}, errors.New("lane header checksum mismatch")
	}
	return laneHeader{
		state:    le.Uint64(b[laneHdrState:]),
		seq:      le.Uint64(b[laneHdrSeq:]),
		firstExt: le.Uint64(b[laneHdrExt:]),
	}, nil
}

// readLaneHeader reads a lane header, falling back to the replica if the
// primary is poisoned or corrupt.
func (m *Manager) readLaneHeader(l uint64) (laneHeader, error) {
	read := func(off uint64) (laneHeader, error) {
		b := make([]byte, layout.LaneHeaderSize)
		if err := m.dev.ReadAt(b, off); err != nil {
			return laneHeader{}, err
		}
		return decodeLaneHeader(b)
	}
	h, err := read(m.geo.LaneOff(l))
	if err == nil {
		return h, nil
	}
	if !m.replicate {
		// Without log replication the replica region is stale; a lost
		// primary lane header is unrecoverable, which is exactly the
		// exposure the +ML mode removes.
		return h, err
	}
	return read(m.geo.LaneReplicaOff(l))
}

// Format writes valid idle headers for every lane (both copies). Pool
// creation must call it once: an all-zero lane header does not checksum.
func Format(dev *nvm.Device, geo layout.Geometry) {
	img := encodeLaneHeader(laneHeader{state: StateIdle, seq: 0})
	for l := uint64(0); l < geo.NumLanes; l++ {
		dev.WriteAt(geo.LaneOff(l), img)
		dev.WriteAt(geo.LaneReplicaOff(l), img)
	}
	dev.Persist(geo.LanesOff(), 2*geo.NumLanes*geo.LaneSize)
}
