package logrec

import (
	"encoding/binary"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
)

// Writer appends records to an acquired lane. A Writer is used by one
// transaction (one goroutine) at a time.
type Writer struct {
	m    *Manager
	lane uint64
	seq  uint64

	exts   []uint64 // overflow chain, in order
	region int      // -1: lane payload; ≥0: index into exts
	off    uint64   // next write offset within the current region payload
	spans  []span   // primary byte spans written since the last persist
	active bool     // undo: lane flag already set
	done   bool
}

type span struct{ off, n uint64 }

// Begin acquires a free lane and prepares it with a fresh sequence number.
// It returns an error if all lanes are busy (the engine sizes lanes to
// concurrency, so this signals misuse rather than load).
func (m *Manager) Begin() (*Writer, error) {
	m.mu.Lock()
	if len(m.pending) > 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("logrec: recovery pending; drain Recover first")
	}
	if len(m.freeLanes) == 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("logrec: no free lanes (%d in flight)", m.geo.NumLanes)
	}
	lane := m.freeLanes[len(m.freeLanes)-1]
	m.freeLanes = m.freeLanes[:len(m.freeLanes)-1]
	m.seq++
	seq := m.seq
	m.mu.Unlock()

	w := &Writer{m: m, lane: lane, seq: seq, region: -1}
	// Prepare the header: idle state, new seq, no extents. Persist before
	// any record so stale records from the lane's previous life can never
	// validate against the new seq.
	w.writeHeader(laneHeader{state: StateIdle, seq: seq})
	return w, nil
}

func (w *Writer) writeHeader(h laneHeader) {
	img := encodeLaneHeader(h)
	d := w.m.dev
	d.WriteAt(w.m.geo.LaneOff(w.lane), img)
	d.Persist(w.m.geo.LaneOff(w.lane), uint64(len(img)))
	if w.m.replicate {
		d.WriteAt(w.m.geo.LaneReplicaOff(w.lane), img)
		d.Persist(w.m.geo.LaneReplicaOff(w.lane), uint64(len(img)))
	}
	if mr := w.m.mirror; mr != nil {
		mr.WriteAt(w.m.geo.LaneOff(w.lane), img)
		mr.Persist(w.m.geo.LaneOff(w.lane), uint64(len(img)))
	}
}

// setState atomically updates the lane state word. Order: replica first
// for commits (so a committed primary implies a committed replica), primary
// first for clears (so recovery's primary-first read never resurrects a
// cleared log).
func (w *Writer) setState(s uint64, replicaFirst bool) {
	d := w.m.dev
	prim := w.m.geo.LaneOff(w.lane) + laneHdrState
	repl := w.m.geo.LaneReplicaOff(w.lane) + laneHdrState
	if w.m.replicate && replicaFirst {
		d.Store64(repl, s)
		d.Persist(repl, 8)
	}
	d.Store64(prim, s)
	d.Persist(prim, 8)
	if w.m.replicate && !replicaFirst {
		d.Store64(repl, s)
		d.Persist(repl, 8)
	}
	if mr := w.m.mirror; mr != nil {
		mr.Store64(prim, s)
		mr.Persist(prim, 8)
	}
}

// regionBase returns the pool offset and payload size of the current
// region (primary copy).
func (w *Writer) regionBase(region int) (base, payloadOff, size uint64) {
	if region < 0 {
		return w.m.geo.LaneOff(w.lane), layout.LaneHeaderSize, w.m.geo.LaneSize
	}
	return w.m.geo.OverflowExtOff(w.exts[region]), layout.OverflowExtHeader, w.m.geo.OverflowExtSize
}

func (w *Writer) replicaBase(region int) uint64 {
	if region < 0 {
		return w.m.geo.LaneReplicaOff(w.lane)
	}
	return w.m.geo.OverflowExtReplicaOff(w.exts[region])
}

// recordChecksum salts the record checksum with the lane sequence so bytes
// from earlier lane uses never validate.
func recordChecksum(seq uint64, kind uint16, payload []byte) uint32 {
	var hdr [10]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint16(hdr[8:], kind)
	return csum.Continue(csum.Adler32(hdr[:]), payload)
}

func encodeRecordHeader(seq uint64, kind uint16, payload []byte) []byte {
	b := make([]byte, recHeaderSize)
	le := binary.LittleEndian
	le.PutUint16(b[0:], kind)
	le.PutUint32(b[4:], uint32(len(payload)))
	le.PutUint32(b[8:], recordChecksum(seq, kind, payload))
	return b
}

// write stores bytes at the current region offset (primary + replica),
// tracking spans for deferred persistence.
func (w *Writer) write(b []byte) {
	base, payloadOff, _ := w.regionBase(w.region)
	off := base + payloadOff + w.off
	w.m.dev.WriteAt(off, b)
	if w.m.replicate {
		w.m.dev.WriteAt(w.replicaBase(w.region)+payloadOff+w.off, b)
	}
	if mr := w.m.mirror; mr != nil {
		mr.WriteAt(off, b)
	}
	w.spans = append(w.spans, span{off: off, n: uint64(len(b))})
	w.off += uint64(len(b))
}

// roomLeft returns the free payload bytes in the current region, keeping
// space for a trailing jump or end marker.
func (w *Writer) roomLeft() uint64 {
	_, payloadOff, size := w.regionBase(w.region)
	used := payloadOff + w.off
	return size - used - recHeaderSize
}

// Append adds a record. Records too large for the remaining region space
// spill into an overflow extent; ErrLogFull reports overflow exhaustion.
// The record is written but not persisted; call persistSpans via Commit
// (redo) or use AppendDurable (undo).
func (w *Writer) Append(kind uint16, payload []byte) error {
	if kind == endKind || kind == jumpKind {
		return fmt.Errorf("logrec: record kind %#x is reserved", kind)
	}
	if uint64(len(payload)) > w.m.MaxPayload() {
		return fmt.Errorf("logrec: payload %d exceeds max %d", len(payload), w.m.MaxPayload())
	}
	need := uint64(recHeaderSize + len(payload))
	if need%8 != 0 {
		need += 8 - need%8
	}
	if w.roomLeft() < need {
		if err := w.spill(); err != nil {
			return err
		}
	}
	hdr := encodeRecordHeader(w.seq, kind, payload)
	w.write(hdr)
	w.write(payload)
	if pad := w.off % 8; pad != 0 {
		w.off += 8 - pad
	}
	return nil
}

// ErrLogFull reports exhausted log space (lane plus all overflow extents).
var ErrLogFull = fmt.Errorf("logrec: transaction log full")

// spill terminates the current region with a jump marker and chains a
// fresh overflow extent.
func (w *Writer) spill() error {
	m := w.m
	m.mu.Lock()
	if len(m.freeExts) == 0 {
		m.mu.Unlock()
		return ErrLogFull
	}
	ext := m.freeExts[len(m.freeExts)-1]
	m.freeExts = m.freeExts[:len(m.freeExts)-1]
	m.mu.Unlock()

	// Jump marker in the current region.
	jmp := make([]byte, recHeaderSize)
	le := binary.LittleEndian
	le.PutUint16(jmp[0:], jumpKind)
	le.PutUint32(jmp[8:], recordChecksum(w.seq, jumpKind, nil))
	w.write(jmp)

	// Chain pointer: lane header firstExt or previous extent's next.
	if w.region < 0 {
		h := laneHeader{state: StateIdle, seq: w.seq, firstExt: ext + 1}
		img := encodeLaneHeader(h)
		// Do not clobber the state word (undo logs are already active):
		// write only seq/ext/csum bytes.
		d := m.dev
		d.WriteAt(m.geo.LaneOff(w.lane)+laneHdrSeq, img[laneHdrSeq:laneHdrCsum+4])
		w.spans = append(w.spans, span{off: m.geo.LaneOff(w.lane) + laneHdrSeq, n: 24})
		if m.replicate {
			d.WriteAt(m.geo.LaneReplicaOff(w.lane)+laneHdrSeq, img[laneHdrSeq:laneHdrCsum+4])
		}
		if mr := m.mirror; mr != nil {
			mr.WriteAt(m.geo.LaneOff(w.lane)+laneHdrSeq, img[laneHdrSeq:laneHdrCsum+4])
		}
	} else {
		prev := w.exts[w.region]
		w.writeExtHeader(prev, ext+1)
	}
	// Fresh extent header: end of chain.
	w.writeExtHeader(ext, 0)
	w.exts = append(w.exts, ext)
	w.region = len(w.exts) - 1
	w.off = 0
	return nil
}

func (w *Writer) writeExtHeader(ext, next uint64) {
	b := make([]byte, layout.OverflowExtHeader)
	le := binary.LittleEndian
	le.PutUint64(b[extHdrNext:], next)
	var salt [16]byte
	le.PutUint64(salt[0:], w.seq)
	le.PutUint64(salt[8:], next)
	le.PutUint32(b[extHdrCsum:], csum.Adler32(salt[:]))
	off := w.m.geo.OverflowExtOff(ext)
	w.m.dev.WriteAt(off, b)
	w.spans = append(w.spans, span{off: off, n: uint64(len(b))})
	if w.m.replicate {
		w.m.dev.WriteAt(w.m.geo.OverflowExtReplicaOff(ext), b)
	}
	if mr := w.m.mirror; mr != nil {
		mr.WriteAt(off, b)
	}
}

// persistSpans flushes every span written since the last persist (primary
// and, when replicating, the mirrored replica bytes), with a single fence.
func (w *Writer) persistSpans() {
	d := w.m.dev
	for _, s := range w.spans {
		d.Flush(s.off, s.n)
	}
	if w.m.replicate {
		delta := w.replicaDelta()
		for _, s := range w.spans {
			d.Flush(s.off+delta(s.off), s.n)
		}
	}
	d.Fence()
	if mr := w.m.mirror; mr != nil {
		for _, s := range w.spans {
			mr.Flush(s.off, s.n)
		}
		mr.Fence()
	}
	w.spans = w.spans[:0]
}

// replicaDelta returns a function mapping a primary offset to the offset
// delta of its replica copy (lane vs. extent regions differ).
func (w *Writer) replicaDelta() func(uint64) uint64 {
	g := w.m.geo
	laneDelta := g.LanesReplicaOff() - g.LanesOff()
	extDelta := g.OverflowReplicaOff() - g.OverflowOff()
	return func(off uint64) uint64 {
		if off >= g.OverflowOff() && off < g.OverflowReplicaOff() {
			return extDelta
		}
		return laneDelta
	}
}

// AppendDurable appends a record and persists it (and its chain metadata)
// before returning — the undo-log discipline: the snapshot must be durable
// before its in-place write (§2.3).
func (w *Writer) AppendDurable(kind uint16, payload []byte) error {
	if err := w.Append(kind, payload); err != nil {
		return err
	}
	w.persistSpans()
	return nil
}

// Activate marks the lane as an active undo log. Call before the first
// AppendDurable.
func (w *Writer) Activate() {
	w.setState(StateUndoActive, false)
	w.active = true
}

// Commit persists the accumulated redo records and sets the committed
// flag: the transaction's durability point (§3.4).
func (w *Writer) Commit() {
	w.persistSpans()
	w.setState(StateRedoCommitted, true)
}

// Clear returns the lane to idle and releases it and its extents for
// reuse. For redo logs call after applying; for undo logs call at commit
// (discarding the rollback log) or after rolling back.
func (w *Writer) Clear() {
	if w.done {
		return
	}
	w.setState(StateIdle, false)
	w.m.release(w.lane, w.exts)
	w.done = true
}

func (m *Manager) release(lane uint64, exts []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.freeLanes = append(m.freeLanes, lane)
	m.freeExts = append(m.freeExts, exts...)
}

// ClearRecovered clears a lane returned by Recover after the engine has
// replayed or rolled it back, releasing the lane and its extent chain.
func (m *Manager) ClearRecovered(log RecoveredLog) error {
	hdr, err := m.readLaneHeader(log.Lane)
	if err != nil {
		return err
	}
	var exts []uint64
	next := hdr.firstExt
	for next != 0 {
		e := next - 1
		exts = append(exts, e)
		n, err := m.readExtNext(e, hdr.seq)
		if err != nil {
			return err
		}
		next = n
	}
	w := &Writer{m: m, lane: log.Lane, seq: hdr.seq, exts: exts}
	w.Clear()
	return nil
}
