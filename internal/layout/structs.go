package layout

import (
	"encoding/binary"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// OID is a persistent object identifier: a pool UUID plus the byte offset
// of the object's user data within the pool. It is the PMEMoid analog
// (§2.3) and stays valid wherever the pool is mapped.
type OID struct {
	Pool uint64 // pool UUID
	Off  uint64 // offset of user data (the object header precedes it)
}

// NilOID is the null persistent pointer.
var NilOID = OID{}

// IsNil reports whether the OID is null.
func (o OID) IsNil() bool { return o == NilOID }

// HeaderOff returns the pool offset of the object's header.
func (o OID) HeaderOff() uint64 { return o.Off - ObjHeaderSize }

// ObjHeader is the per-object header Pangolin stores ahead of user data:
// the object's total size (header included), its user-assigned type, and
// the Adler32 checksum of header-plus-data (checksum field zeroed during
// computation). See §3.1.
type ObjHeader struct {
	Size uint64 // total object size including this header
	Type uint32
	Csum uint32
}

// UserSize returns the object's user-data capacity.
func (h ObjHeader) UserSize() uint64 { return h.Size - ObjHeaderSize }

// EncodeObjHeader writes h into b (at least ObjHeaderSize bytes).
func EncodeObjHeader(b []byte, h ObjHeader) {
	binary.LittleEndian.PutUint64(b[0:], h.Size)
	binary.LittleEndian.PutUint32(b[8:], h.Type)
	binary.LittleEndian.PutUint32(b[12:], h.Csum)
}

// DecodeObjHeader reads an ObjHeader from b.
func DecodeObjHeader(b []byte) ObjHeader {
	return ObjHeader{
		Size: binary.LittleEndian.Uint64(b[0:]),
		Type: binary.LittleEndian.Uint32(b[8:]),
		Csum: binary.LittleEndian.Uint32(b[12:]),
	}
}

// ObjChecksum computes the checksum of an object image: the full object
// bytes (header followed by user data) with the header's checksum field
// treated as zero.
func ObjChecksum(obj []byte) uint32 {
	var hdr [ObjHeaderSize]byte
	copy(hdr[:], obj[:ObjHeaderSize])
	hdr[12], hdr[13], hdr[14], hdr[15] = 0, 0, 0, 0
	return csum.Continue(csum.Adler32(hdr[:]), obj[ObjHeaderSize:])
}

// PoolHeader is the root metadata of a pool, stored replicated in the first
// two pages. Seq orders the two copies after a crash mid-update: both may
// be checksum-valid but the higher Seq wins.
type PoolHeader struct {
	Magic   uint64
	Version uint32
	Flags   uint32
	UUID    uint64
	Seq     uint64
	Geo     Geometry
	Root    OID    // the root object (§2.3); NilOID until allocated
	RootSz  uint64 // requested root size
}

// poolHeaderSize is the encoded size (with trailing checksum).
const poolHeaderSize = 8 + 4 + 4 + 8 + 8 + 9*8 + 16 + 8 + 4

// EncodePoolHeader serializes h with a trailing Adler32.
func EncodePoolHeader(h PoolHeader) []byte {
	b := make([]byte, poolHeaderSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], h.Magic)
	le.PutUint32(b[8:], h.Version)
	le.PutUint32(b[12:], h.Flags)
	le.PutUint64(b[16:], h.UUID)
	le.PutUint64(b[24:], h.Seq)
	g := h.Geo
	le.PutUint64(b[32:], g.ChunkSize)
	le.PutUint64(b[40:], g.ChunksPerRow)
	le.PutUint64(b[48:], g.RowsPerZone)
	le.PutUint64(b[56:], g.NumZones)
	le.PutUint64(b[64:], g.NumLanes)
	le.PutUint64(b[72:], g.LaneSize)
	le.PutUint64(b[80:], g.OverflowExts)
	le.PutUint64(b[88:], g.OverflowExtSize)
	le.PutUint64(b[96:], g.RangeLockBytes)
	le.PutUint64(b[104:], h.Root.Pool)
	le.PutUint64(b[112:], h.Root.Off)
	le.PutUint64(b[120:], h.RootSz)
	le.PutUint32(b[128:], csum.Adler32(b[:poolHeaderSize-4]))
	return b
}

// DecodePoolHeader parses and validates a pool header image.
func DecodePoolHeader(b []byte) (PoolHeader, error) {
	if len(b) < poolHeaderSize {
		return PoolHeader{}, fmt.Errorf("layout: pool header truncated")
	}
	le := binary.LittleEndian
	if le.Uint32(b[128:]) != csum.Adler32(b[:poolHeaderSize-4]) {
		return PoolHeader{}, fmt.Errorf("layout: pool header checksum mismatch")
	}
	h := PoolHeader{
		Magic:   le.Uint64(b[0:]),
		Version: le.Uint32(b[8:]),
		Flags:   le.Uint32(b[12:]),
		UUID:    le.Uint64(b[16:]),
		Seq:     le.Uint64(b[24:]),
		Geo: Geometry{
			ChunkSize:       le.Uint64(b[32:]),
			ChunksPerRow:    le.Uint64(b[40:]),
			RowsPerZone:     le.Uint64(b[48:]),
			NumZones:        le.Uint64(b[56:]),
			NumLanes:        le.Uint64(b[64:]),
			LaneSize:        le.Uint64(b[72:]),
			OverflowExts:    le.Uint64(b[80:]),
			OverflowExtSize: le.Uint64(b[88:]),
			RangeLockBytes:  le.Uint64(b[96:]),
		},
		Root:   OID{Pool: le.Uint64(b[104:]), Off: le.Uint64(b[112:])},
		RootSz: le.Uint64(b[120:]),
	}
	if h.Magic != Magic {
		return PoolHeader{}, fmt.Errorf("layout: bad magic %#x (not a Pangolin pool)", h.Magic)
	}
	if h.Version != Version {
		return PoolHeader{}, fmt.Errorf("layout: unsupported pool version %d", h.Version)
	}
	return h, nil
}

// ZoneHeader is per-zone metadata, replicated in the zone's first two
// pages.
type ZoneHeader struct {
	ZoneIdx uint64
	Seq     uint64
	Chunks  uint64 // allocatable chunks (== Geometry.ChunksPerZone)
}

const zoneHeaderSize = 8 + 8 + 8 + 4

// EncodeZoneHeader serializes h with a trailing Adler32.
func EncodeZoneHeader(h ZoneHeader) []byte {
	b := make([]byte, zoneHeaderSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], h.ZoneIdx)
	le.PutUint64(b[8:], h.Seq)
	le.PutUint64(b[16:], h.Chunks)
	le.PutUint32(b[24:], csum.Adler32(b[:zoneHeaderSize-4]))
	return b
}

// DecodeZoneHeader parses and validates a zone header image.
func DecodeZoneHeader(b []byte) (ZoneHeader, error) {
	if len(b) < zoneHeaderSize {
		return ZoneHeader{}, fmt.Errorf("layout: zone header truncated")
	}
	le := binary.LittleEndian
	if le.Uint32(b[24:]) != csum.Adler32(b[:zoneHeaderSize-4]) {
		return ZoneHeader{}, fmt.Errorf("layout: zone header checksum mismatch")
	}
	return ZoneHeader{
		ZoneIdx: le.Uint64(b[0:]),
		Seq:     le.Uint64(b[8:]),
		Chunks:  le.Uint64(b[16:]),
	}, nil
}

// BadPageRecord is the persistent record of pages under corruption
// recovery (§3.6): recovery is idempotent, so after a crash the recorded
// pages are simply repaired again.
type BadPageRecord struct {
	Pages []uint64 // pool offsets of page starts
}

// maxBadPages bounds the record to one page.
const maxBadPages = (PageSize - 16) / 8

// EncodeBadPageRecord serializes r into a full page image.
func EncodeBadPageRecord(r BadPageRecord) ([]byte, error) {
	if len(r.Pages) > maxBadPages {
		return nil, fmt.Errorf("layout: too many bad pages (%d)", len(r.Pages))
	}
	b := make([]byte, PageSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(len(r.Pages)))
	for i, p := range r.Pages {
		le.PutUint64(b[16+i*8:], p)
	}
	le.PutUint32(b[8:], csum.Adler32(b[16:16+len(r.Pages)*8]))
	return b, nil
}

// DecodeBadPageRecord parses a bad-page record page. A record that fails
// validation is treated as empty (the write never completed, so no repair
// was in progress through this copy).
func DecodeBadPageRecord(b []byte) BadPageRecord {
	le := binary.LittleEndian
	n := le.Uint64(b[0:])
	if n > maxBadPages {
		return BadPageRecord{}
	}
	body := b[16 : 16+n*8]
	if le.Uint32(b[8:]) != csum.Adler32(body) {
		return BadPageRecord{}
	}
	r := BadPageRecord{Pages: make([]uint64, n)}
	for i := range r.Pages {
		r.Pages[i] = le.Uint64(body[i*8:])
	}
	return r
}

// ReadReplicated reads an n-byte region that exists at two locations,
// validates each copy with decode, and returns the image of the winning
// copy (higher seq as reported by decode's second return). It tolerates a
// poisoned or corrupt copy; it fails only if both copies are unusable. It
// is the generic accessor for pool headers, zone headers, and log pages.
func ReadReplicated(dev *nvm.Device, primary, replica, n uint64,
	decode func([]byte) (seq uint64, err error)) ([]byte, error) {

	read := func(off uint64) ([]byte, uint64, error) {
		b := make([]byte, n)
		if err := dev.ReadAt(b, off); err != nil {
			return nil, 0, err
		}
		seq, err := decode(b)
		if err != nil {
			return nil, 0, err
		}
		return b, seq, nil
	}
	pb, pseq, perr := read(primary)
	rb, rseq, rerr := read(replica)
	switch {
	case perr == nil && rerr == nil:
		if rseq > pseq {
			return rb, nil
		}
		return pb, nil
	case perr == nil:
		return pb, nil
	case rerr == nil:
		return rb, nil
	default:
		return nil, fmt.Errorf("layout: both replicas unusable: primary: %w; replica: %w", perr, rerr)
	}
}
