package layout

import (
	"testing"
	"testing/quick"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

func TestDefaultGeometryValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Paper(2).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidationRejects(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.ChunkSize = 100 },  // not page multiple
		func(g *Geometry) { g.ChunksPerRow = 0 }, // empty rows
		func(g *Geometry) { g.RowsPerZone = 2 },  // no room for data+parity
		func(g *Geometry) { g.NumZones = 0 },
		func(g *Geometry) { g.NumLanes = 0 },
		func(g *Geometry) { g.LaneSize = 100 },
		func(g *Geometry) { g.RangeLockBytes = 7 },
	}
	for i, mut := range cases {
		g := Default()
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted", i)
		}
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	for _, g := range []Geometry{Default(), Paper(3)} {
		// Ordered region boundaries must be monotonic.
		bounds := []uint64{
			0, PageSize, // header primary
			PageSize, 2 * PageSize, // header replica
			BadPageRecOff(), BadPageRecOff() + PageSize,
			BadPageRecReplicaOff(), BadPageRecReplicaOff() + PageSize,
			g.LanesOff(), g.LanesReplicaOff(),
			g.LanesReplicaOff(), g.OverflowOff(),
			g.OverflowOff(), g.OverflowReplicaOff(),
			g.OverflowReplicaOff(), g.OverflowReplicaOff() + g.OverflowExts*g.OverflowExtSize,
			g.ZonesOff(), g.PoolSize(),
		}
		for i := 2; i < len(bounds); i += 2 {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("region %d starts at %#x before previous region ends at %#x", i/2, bounds[i], bounds[i-1])
			}
		}
	}
}

func TestZoneArithmetic(t *testing.T) {
	g := Default()
	for z := uint64(0); z < g.NumZones; z++ {
		if g.ZoneHeaderOff(z) != g.ZoneBase(z) {
			t.Fatal("zone header must start the zone")
		}
		if g.ParityBase(z)+g.RowSize() != g.ZoneBase(z)+g.ZoneSize() {
			t.Fatal("parity row must end the zone")
		}
		// Chunk 0 begins the data rows.
		if g.ChunkBase(z, 0) != g.RowsBase(z) {
			t.Fatal("chunk 0 misplaced")
		}
		// Last chunk ends at parity base.
		last := g.ChunksPerZone() - 1
		if g.ChunkBase(z, last)+g.ChunkSize != g.ParityBase(z) {
			t.Fatal("last chunk must abut parity row")
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	g := Default()
	f := func(z8, row8 uint8, col16 uint16) bool {
		z := uint64(z8) % g.NumZones
		row := uint64(row8) % g.DataRows()
		col := uint64(col16) % g.RowSize()
		off := g.RowByteOff(z, row, col)
		if !g.InZoneData(off) {
			return false
		}
		loc := g.Locate(off)
		return loc.Zone == z && loc.Row == row && loc.Col == col
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInZoneClassification(t *testing.T) {
	g := Default()
	if g.InZoneData(0) {
		t.Fatal("pool header is not zone data")
	}
	if g.InZoneData(g.ZoneBase(0)) {
		t.Fatal("zone header is not zone data")
	}
	if !g.InZoneData(g.RowsBase(0)) {
		t.Fatal("first data byte must classify as zone data")
	}
	if g.InZoneData(g.ParityBase(0)) {
		t.Fatal("parity row must not classify as zone data")
	}
	if !g.InZoneParity(g.ParityBase(0)) {
		t.Fatal("parity base must classify as parity")
	}
	if g.InZoneParity(g.RowsBase(0)) {
		t.Fatal("data must not classify as parity")
	}
	if g.InZoneData(g.PoolSize()) || g.InZoneParity(g.PoolSize()+100) {
		t.Fatal("beyond pool end misclassified")
	}
}

func TestLocatePanicsOutsideData(t *testing.T) {
	g := Default()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Locate(0)
}

func TestObjHeaderRoundTrip(t *testing.T) {
	h := ObjHeader{Size: 4096, Type: 77, Csum: 0xDEADBEEF}
	var b [ObjHeaderSize]byte
	EncodeObjHeader(b[:], h)
	if got := DecodeObjHeader(b[:]); got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if h.UserSize() != 4096-ObjHeaderSize {
		t.Fatalf("UserSize = %d", h.UserSize())
	}
}

func TestObjChecksumIgnoresCsumField(t *testing.T) {
	obj := make([]byte, 128)
	EncodeObjHeader(obj, ObjHeader{Size: 128, Type: 5})
	copy(obj[ObjHeaderSize:], "payload payload payload")
	c1 := ObjChecksum(obj)
	// Store the checksum into the header; recomputation must not change.
	h := DecodeObjHeader(obj)
	h.Csum = c1
	EncodeObjHeader(obj, h)
	if c2 := ObjChecksum(obj); c2 != c1 {
		t.Fatalf("checksum depends on its own field: %#x vs %#x", c2, c1)
	}
	// But data changes must change it.
	obj[ObjHeaderSize] ^= 0xFF
	if ObjChecksum(obj) == c1 {
		t.Fatal("checksum insensitive to data change")
	}
}

func TestObjChecksumMatchesFlatAdler(t *testing.T) {
	obj := make([]byte, 200)
	for i := range obj {
		obj[i] = byte(i)
	}
	EncodeObjHeader(obj, ObjHeader{Size: 200, Type: 9})
	flat := append([]byte(nil), obj...)
	flat[12], flat[13], flat[14], flat[15] = 0, 0, 0, 0
	if got, want := ObjChecksum(obj), csum.Adler32(flat); got != want {
		t.Fatalf("ObjChecksum = %#x, flat Adler32 = %#x", got, want)
	}
}

func TestPoolHeaderRoundTrip(t *testing.T) {
	h := PoolHeader{
		Magic: Magic, Version: Version,
		Flags: FlagParity | FlagChecksums,
		UUID:  0xABCD, Seq: 7,
		Geo:    Default(),
		Root:   OID{Pool: 0xABCD, Off: 12345},
		RootSz: 64,
	}
	b := EncodePoolHeader(h)
	got, err := DecodePoolHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestPoolHeaderRejectsCorruption(t *testing.T) {
	b := EncodePoolHeader(PoolHeader{Magic: Magic, Version: Version, Geo: Default()})
	b[20] ^= 1
	if _, err := DecodePoolHeader(b); err == nil {
		t.Fatal("corrupt header accepted")
	}
	if _, err := DecodePoolHeader(b[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Wrong magic with a valid checksum.
	h := PoolHeader{Magic: 1234, Version: Version, Geo: Default()}
	if _, err := DecodePoolHeader(EncodePoolHeader(h)); err == nil {
		t.Fatal("bad magic accepted")
	}
	h = PoolHeader{Magic: Magic, Version: 99, Geo: Default()}
	if _, err := DecodePoolHeader(EncodePoolHeader(h)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestZoneHeaderRoundTrip(t *testing.T) {
	h := ZoneHeader{ZoneIdx: 3, Seq: 9, Chunks: 60}
	got, err := DecodeZoneHeader(EncodeZoneHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	b := EncodeZoneHeader(h)
	b[0] ^= 1
	if _, err := DecodeZoneHeader(b); err == nil {
		t.Fatal("corrupt zone header accepted")
	}
}

func TestBadPageRecordRoundTrip(t *testing.T) {
	r := BadPageRecord{Pages: []uint64{4096, 8192, 1 << 20}}
	b, err := EncodeBadPageRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeBadPageRecord(b)
	if len(got.Pages) != 3 || got.Pages[0] != 4096 || got.Pages[2] != 1<<20 {
		t.Fatalf("round trip: %+v", got)
	}
	// Corruption decodes as empty, never as garbage repairs.
	b[16] ^= 0xFF
	if got := DecodeBadPageRecord(b); len(got.Pages) != 0 {
		t.Fatalf("corrupt record decoded: %+v", got)
	}
	// Absurd count decodes as empty.
	for i := 0; i < 8; i++ {
		b[i] = 0xFF
	}
	if got := DecodeBadPageRecord(b); len(got.Pages) != 0 {
		t.Fatal("oversized record accepted")
	}
	if _, err := EncodeBadPageRecord(BadPageRecord{Pages: make([]uint64, maxBadPages+1)}); err == nil {
		t.Fatal("oversized record encoded")
	}
}

func TestReadReplicatedPrefersHigherSeq(t *testing.T) {
	dev := nvm.New(64*1024, nvm.Options{TrackPersistence: true})
	mk := func(seq uint64) []byte {
		b := make([]byte, 32)
		b[0] = byte(seq)
		return b
	}
	dev.WriteAt(0, mk(1))
	dev.WriteAt(4096, mk(5))
	decode := func(b []byte) (uint64, error) { return uint64(b[0]), nil }
	got, err := ReadReplicated(dev, 0, 4096, 32, decode)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("picked seq %d, want 5", got[0])
	}
}

func TestReadReplicatedSurvivesPoisonedPrimary(t *testing.T) {
	dev := nvm.New(64*1024, nvm.Options{TrackPersistence: true})
	dev.WriteAt(4096, []byte{42})
	dev.Poison(0)
	decode := func(b []byte) (uint64, error) { return 0, nil }
	got, err := ReadReplicated(dev, 0, 4096, 1, decode)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("got %d from replica, want 42", got[0])
	}
	// Both copies gone: error.
	dev.Poison(4096)
	if _, err := ReadReplicated(dev, 0, 4096, 1, decode); err == nil {
		t.Fatal("expected failure with both copies poisoned")
	}
}
