// Package layout defines Pangolin's on-media pool format: the arrangement
// of replicated pool/zone metadata, transaction-log lanes, zones, chunk
// rows, and the parity row, together with the address arithmetic (page
// columns, range columns) that the parity and recovery machinery relies on
// (paper §3.1, Figure 2).
//
// Pool layout (all offsets in bytes from the start of the device):
//
//	page 0              pool header, primary
//	page 1              pool header, replica
//	page 2              bad-page recovery records, primary
//	page 3              bad-page recovery records, replica
//	lanesOff            NumLanes × LaneSize   transaction lanes, primary
//	                    NumLanes × LaneSize   transaction lanes, replica
//	overflowOff         OverflowExts × OverflowExtSize   log overflow, primary
//	                    OverflowExts × OverflowExtSize   log overflow, replica
//	zonesOff            NumZones × zone
//
// Zone layout:
//
//	+0                  zone header, primary (one page)
//	+PageSize           zone header, replica (one page)
//	+2·PageSize         RowsPerZone-1 data rows, RowSize each
//	+…                  parity row, RowSize (the last chunk row, §3.1)
//
// The chunk-metadata array for a zone lives in the first chunks of data
// row 0, so it is covered by zone parity exactly as the paper prescribes
// ("Pangolin uses zone parity to support recovery of chunk metadata").
// Pool and zone headers, lanes, and overflow extents are replicated instead.
package layout

import (
	"fmt"

	"github.com/pangolin-go/pangolin/internal/nvm"
)

const (
	// PageSize mirrors nvm.PageSize: media-error and page-column width.
	PageSize = nvm.PageSize

	// ObjHeaderSize is the per-object header: 64-bit size, 32-bit type,
	// 32-bit checksum. Pangolin shrinks libpmemobj's 64-bit type id to
	// 32 bits to make room for the checksum (§3.1).
	ObjHeaderSize = 16

	// CMEntrySize is the on-media size of one chunk-metadata entry.
	CMEntrySize = 256

	// LaneHeaderSize is the fixed header at the start of each lane.
	LaneHeaderSize = 64

	// OverflowExtHeader is the header of each log-overflow extent.
	OverflowExtHeader = 16
)

// Magic identifies a Pangolin pool.
const Magic uint64 = 0x50414e474f4c4e31 // "PANGOLN1"

// Version is the pool format version.
const Version uint32 = 1

// Pool feature flags, stored in the pool header. They record which
// protection mechanisms the pool was created with (Table 2 modes).
const (
	FlagReplicateMeta uint32 = 1 << iota // metadata + log replication (ML)
	FlagParity                           // zone parity maintained (P)
	FlagChecksums                        // object checksums maintained (C)
	FlagReplicaPool                      // Pmemobj-R style full replica device
)

// Geometry fixes the shape of a pool. All sizes are in bytes. The paper's
// configuration is 16 GB zones of 256 KB chunks with 100 chunk rows; tests
// default to a ratio-preserving laptop scale.
type Geometry struct {
	ChunkSize       uint64 // bytes per chunk
	ChunksPerRow    uint64 // chunks per chunk row
	RowsPerZone     uint64 // chunk rows per zone, including the parity row
	NumZones        uint64
	NumLanes        uint64 // concurrent transaction lanes
	LaneSize        uint64 // log bytes per lane (incl. header)
	OverflowExts    uint64 // log overflow extents
	OverflowExtSize uint64 // bytes per overflow extent (incl. header)
	RangeLockBytes  uint64 // parity range-lock granularity (§3.5)
}

// Default returns the test-scale geometry: 1 MB zones (16 rows of 4×16 KB
// chunks, last row parity), 64 lanes. Parity overhead 1/16; benchmarks use
// Paper-like 100-row zones instead.
func Default() Geometry {
	return Geometry{
		ChunkSize:       16 * 1024,
		ChunksPerRow:    4,
		RowsPerZone:     16,
		NumZones:        2,
		NumLanes:        64,
		LaneSize:        32 * 1024,
		OverflowExts:    32,
		OverflowExtSize: 64 * 1024,
		RangeLockBytes:  8 * 1024,
	}
}

// Paper returns a geometry with the paper's proportions (100 chunk rows per
// zone so parity is ~1% of the zone) scaled to fit in RAM: 256 KB rows
// (4×64 KB chunks), 100 rows → 25.6 MB zones.
func Paper(zones uint64) Geometry {
	return Geometry{
		ChunkSize:       64 * 1024,
		ChunksPerRow:    4,
		RowsPerZone:     100,
		NumZones:        zones,
		NumLanes:        64,
		LaneSize:        64 * 1024,
		OverflowExts:    64,
		OverflowExtSize: 256 * 1024,
		RangeLockBytes:  8 * 1024,
	}
}

// Validate checks internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.ChunkSize == 0 || g.ChunkSize%PageSize != 0:
		return fmt.Errorf("layout: ChunkSize %d must be a positive multiple of the page size", g.ChunkSize)
	case g.ChunksPerRow == 0:
		return fmt.Errorf("layout: ChunksPerRow must be positive")
	case g.RowsPerZone < 3:
		return fmt.Errorf("layout: RowsPerZone %d must be at least 3 (CM row + a data row + parity)", g.RowsPerZone)
	case g.NumZones == 0:
		return fmt.Errorf("layout: NumZones must be positive")
	case g.NumLanes == 0:
		return fmt.Errorf("layout: NumLanes must be positive")
	case g.LaneSize < 2*LaneHeaderSize || g.LaneSize%PageSize != 0:
		return fmt.Errorf("layout: LaneSize %d must be a page multiple with room for entries", g.LaneSize)
	case g.OverflowExtSize != 0 && g.OverflowExtSize%PageSize != 0:
		return fmt.Errorf("layout: OverflowExtSize %d must be a page multiple", g.OverflowExtSize)
	case g.RangeLockBytes == 0 || g.RangeLockBytes%8 != 0:
		return fmt.Errorf("layout: RangeLockBytes %d must be a positive multiple of 8", g.RangeLockBytes)
	}
	if g.CMChunks() >= g.ChunksPerZone() {
		return fmt.Errorf("layout: chunk metadata (%d chunks) does not leave allocatable space", g.CMChunks())
	}
	return nil
}

// RowSize returns the bytes in one chunk row.
func (g Geometry) RowSize() uint64 { return g.ChunkSize * g.ChunksPerRow }

// DataRows returns the number of non-parity rows per zone.
func (g Geometry) DataRows() uint64 { return g.RowsPerZone - 1 }

// ChunksPerZone returns the number of chunks in a zone's data rows.
func (g Geometry) ChunksPerZone() uint64 { return g.DataRows() * g.ChunksPerRow }

// ZoneDataSize returns the bytes of data rows per zone (excludes parity and
// zone headers).
func (g Geometry) ZoneDataSize() uint64 { return g.DataRows() * g.RowSize() }

// ZoneSize returns the total bytes per zone on media.
func (g Geometry) ZoneSize() uint64 { return 2*PageSize + g.RowsPerZone*g.RowSize() }

// CMChunks returns how many chunks at the start of row 0 hold the zone's
// chunk-metadata array.
func (g Geometry) CMChunks() uint64 {
	cmBytes := g.ChunksPerZone() * CMEntrySize
	return (cmBytes + g.ChunkSize - 1) / g.ChunkSize
}

// LanesOff returns the offset of the primary lane region.
func (g Geometry) LanesOff() uint64 { return 4 * PageSize }

// LanesReplicaOff returns the offset of the lane replica region.
func (g Geometry) LanesReplicaOff() uint64 { return g.LanesOff() + g.NumLanes*g.LaneSize }

// OverflowOff returns the offset of the primary log-overflow region.
func (g Geometry) OverflowOff() uint64 { return g.LanesReplicaOff() + g.NumLanes*g.LaneSize }

// OverflowReplicaOff returns the offset of the overflow replica region.
func (g Geometry) OverflowReplicaOff() uint64 {
	return g.OverflowOff() + g.OverflowExts*g.OverflowExtSize
}

// ZonesOff returns the page-aligned offset where zones begin.
func (g Geometry) ZonesOff() uint64 {
	off := g.OverflowReplicaOff() + g.OverflowExts*g.OverflowExtSize
	return (off + PageSize - 1) &^ uint64(PageSize-1)
}

// PoolSize returns the device size needed for this geometry.
func (g Geometry) PoolSize() uint64 { return g.ZonesOff() + g.NumZones*g.ZoneSize() }

// ZoneBase returns the offset of zone z.
func (g Geometry) ZoneBase(z uint64) uint64 { return g.ZonesOff() + z*g.ZoneSize() }

// ZoneHeaderOff returns the offset of zone z's primary header page.
func (g Geometry) ZoneHeaderOff(z uint64) uint64 { return g.ZoneBase(z) }

// ZoneHeaderReplicaOff returns the offset of zone z's replica header page.
func (g Geometry) ZoneHeaderReplicaOff(z uint64) uint64 { return g.ZoneBase(z) + PageSize }

// RowsBase returns the offset of zone z's first data row.
func (g Geometry) RowsBase(z uint64) uint64 { return g.ZoneBase(z) + 2*PageSize }

// ParityBase returns the offset of zone z's parity row.
func (g Geometry) ParityBase(z uint64) uint64 {
	return g.RowsBase(z) + g.DataRows()*g.RowSize()
}

// ChunkBase returns the offset of chunk c (0-based across data rows) of
// zone z. Chunks are contiguous: rows "wrap around" so multi-chunk
// allocations may cross row boundaries (§3.1).
func (g Geometry) ChunkBase(z, c uint64) uint64 { return g.RowsBase(z) + c*g.ChunkSize }

// CMEntryOff returns the offset of chunk c's metadata entry in zone z. The
// array occupies the first CMChunks chunks of row 0 and is parity-covered.
func (g Geometry) CMEntryOff(z, c uint64) uint64 { return g.RowsBase(z) + c*CMEntrySize }

// LaneOff returns the offset of lane l's primary log.
func (g Geometry) LaneOff(l uint64) uint64 { return g.LanesOff() + l*g.LaneSize }

// LaneReplicaOff returns the offset of lane l's replica log.
func (g Geometry) LaneReplicaOff(l uint64) uint64 { return g.LanesReplicaOff() + l*g.LaneSize }

// OverflowExtOff returns the offset of overflow extent e (primary).
func (g Geometry) OverflowExtOff(e uint64) uint64 {
	return g.OverflowOff() + e*g.OverflowExtSize
}

// OverflowExtReplicaOff returns the offset of overflow extent e's replica.
func (g Geometry) OverflowExtReplicaOff(e uint64) uint64 {
	return g.OverflowReplicaOff() + e*g.OverflowExtSize
}

// BadPageRecOff is the offset of the primary bad-page recovery record page.
func BadPageRecOff() uint64 { return 2 * PageSize }

// BadPageRecReplicaOff is the offset of the replica bad-page record page.
func BadPageRecReplicaOff() uint64 { return 3 * PageSize }

// Loc identifies a byte inside a zone's data rows in row/column form.
type Loc struct {
	Zone uint64
	Row  uint64 // data-row index, 0-based
	Col  uint64 // byte offset within the row (the "range column" position)
}

// InZoneData reports whether pool offset off lies inside some zone's data
// rows (the parity-protected region).
func (g Geometry) InZoneData(off uint64) bool {
	if off < g.ZonesOff() || off >= g.PoolSize() {
		return false
	}
	rel := (off - g.ZonesOff()) % g.ZoneSize()
	return rel >= 2*PageSize && rel < 2*PageSize+g.ZoneDataSize()
}

// InZoneParity reports whether pool offset off lies inside some zone's
// parity row.
func (g Geometry) InZoneParity(off uint64) bool {
	if off < g.ZonesOff() || off >= g.PoolSize() {
		return false
	}
	rel := (off - g.ZonesOff()) % g.ZoneSize()
	return rel >= 2*PageSize+g.ZoneDataSize() && rel < 2*PageSize+g.RowsPerZone*g.RowSize()
}

// Locate maps a pool offset inside zone data rows to its (zone, row,
// column). It panics if off is not within any zone's data rows; callers
// gate on InZoneData.
func (g Geometry) Locate(off uint64) Loc {
	if !g.InZoneData(off) {
		panic(fmt.Sprintf("layout: offset %#x is not in zone data", off))
	}
	z := (off - g.ZonesOff()) / g.ZoneSize()
	rel := off - g.RowsBase(z)
	return Loc{Zone: z, Row: rel / g.RowSize(), Col: rel % g.RowSize()}
}

// RowByteOff is the inverse of Locate: the pool offset of (zone, row, col).
func (g Geometry) RowByteOff(z, row, col uint64) uint64 {
	return g.RowsBase(z) + row*g.RowSize() + col
}

// ParityOff returns the pool offset of the parity byte covering column col
// of zone z.
func (g Geometry) ParityOff(z, col uint64) uint64 { return g.ParityBase(z) + col }
