package alloc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

func newHeap(t *testing.T) (*nvm.Device, layout.Geometry, *Allocator) {
	t.Helper()
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	if err := Format(dev, geo); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dev, geo)
	if err != nil {
		t.Fatal(err)
	}
	return dev, geo, a
}

// commit reserves and immediately applies, as a committed transaction
// would.
func commit(t *testing.T, a *Allocator, size uint64) Reservation {
	t.Helper()
	r, err := a.Reserve(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(r.Op, nil); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEntryRoundTrip(t *testing.T) {
	e := Entry{State: ChunkRun, Aux: 128, Free: 5}
	e.SetBit(0)
	e.SetBit(77)
	got, err := DecodeEntry(EncodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatal("entry round trip mismatch")
	}
	if !got.Bit(77) || got.Bit(78) {
		t.Fatal("bitmap bits wrong")
	}
	b := EncodeEntry(e)
	b[100] ^= 1
	if _, err := DecodeEntry(b); err == nil {
		t.Fatal("corrupt entry accepted")
	}
	var ce *CorruptError
	_, err = DecodeEntry(b)
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptError, got %v", err)
	}
}

func TestOpRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAllocSlot, Zone: 1, Chunk: 9, Slot: 3, SlotSize: 128},
		{Kind: OpFreeSlot, Zone: 0, Chunk: 2, Slot: 0, SlotSize: 64},
		{Kind: OpAllocChunks, Zone: 1, Chunk: 4, NChunks: 3},
		{Kind: OpFreeChunks, Zone: 0, Chunk: 7, NChunks: 2},
	}
	for _, op := range ops {
		got, err := DecodeOp(EncodeOp(op))
		if err != nil {
			t.Fatal(err)
		}
		if got != op {
			t.Fatalf("op round trip: %+v != %+v", got, op)
		}
	}
	if _, err := DecodeOp(make([]byte, OpEncodedSize)); err == nil {
		t.Fatal("zero kind accepted")
	}
	if _, err := DecodeOp([]byte{1}); err == nil {
		t.Fatal("truncated op accepted")
	}
}

func TestSizeClassesMonotonic(t *testing.T) {
	cs := sizeClasses(16 * 1024)
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatalf("classes not increasing at %d: %v", i, cs)
		}
	}
	if cs[0] != 64 {
		t.Fatalf("smallest class %d, want 64", cs[0])
	}
	if cs[len(cs)-1] > 8*1024 {
		t.Fatalf("largest class %d exceeds half chunk", cs[len(cs)-1])
	}
}

func TestSmallAllocFreeCycle(t *testing.T) {
	dev, geo, a := newHeap(t)
	_ = dev
	_ = geo
	r := commit(t, a, 100) // slot class 128 (100+16=116 → 128)
	if r.Total != 128 {
		t.Fatalf("slot size %d, want 128", r.Total)
	}
	if r.UserOff != r.Base+layout.ObjHeaderSize {
		t.Fatal("user offset must follow header")
	}
	if a.CountLive() != 1 {
		t.Fatalf("live = %d, want 1", a.CountLive())
	}
	op, err := a.StageFree(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(op, nil); err != nil {
		t.Fatal(err)
	}
	if a.CountLive() != 0 {
		t.Fatalf("live = %d after free", a.CountLive())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctAddresses(t *testing.T) {
	_, _, a := newHeap(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		r := commit(t, a, 48) // 64B slots
		if seen[r.Base] {
			t.Fatalf("address %#x handed out twice", r.Base)
		}
		seen[r.Base] = true
	}
	if a.CountLive() != 200 {
		t.Fatalf("live = %d", a.CountLive())
	}
}

func TestLargeAllocUsesChunkExtent(t *testing.T) {
	_, geo, a := newHeap(t)
	size := geo.ChunkSize + 100 // needs 2 chunks
	r := commit(t, a, size)
	if r.Op.Kind != OpAllocChunks || r.Op.NChunks != 2 {
		t.Fatalf("unexpected op %+v", r.Op)
	}
	if r.Total != 2*geo.ChunkSize {
		t.Fatalf("extent size %d", r.Total)
	}
	// Free it.
	op, err := a.StageFree(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpFreeChunks || op.NChunks != 2 {
		t.Fatalf("stage free op %+v", op)
	}
	if err := a.Apply(op, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAbandonsReservation(t *testing.T) {
	_, _, a := newHeap(t)
	r, err := a.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(r)
	if a.CountLive() != 0 {
		t.Fatal("released reservation counted live")
	}
	// The slot is reusable: within one round of zones some allocation
	// lands back on the released address.
	geo := layout.Default()
	reused := false
	for i := uint64(0); i < geo.NumZones && !reused; i++ {
		r2, err := a.Reserve(100)
		if err != nil {
			t.Fatal(err)
		}
		reused = r2.Base == r.Base
		a.Release(r2)
	}
	if !reused {
		t.Fatalf("released slot %#x never reused", r.Base)
	}
}

func TestReservationsAreDisjoint(t *testing.T) {
	_, _, a := newHeap(t)
	r1, err := a.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base == r2.Base {
		t.Fatal("two in-flight reservations share an address")
	}
}

func TestOutOfSpace(t *testing.T) {
	geo := layout.Default()
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	if err := Format(dev, geo); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dev, geo)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust with large extents.
	n := 0
	for {
		r, err := a.Reserve(geo.ChunkSize * 2)
		if errors.Is(err, ErrOutOfSpace) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Apply(r.Op, nil); err != nil {
			t.Fatal(err)
		}
		n++
		if n > 10000 {
			t.Fatal("never ran out of space")
		}
	}
	if n == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Oversized single allocation fails immediately.
	if _, err := a.Reserve(a.MaxAlloc() + 1); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("oversized alloc: %v", err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	_, _, a := newHeap(t)
	r := commit(t, a, 100)
	op, err := a.StageFree(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(op, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StageFree(r.Base); err == nil {
		t.Fatal("double free staged without error")
	}
}

func TestFreeBogusAddressRejected(t *testing.T) {
	_, geo, a := newHeap(t)
	if _, err := a.StageFree(0); err == nil {
		t.Fatal("free of pool header accepted")
	}
	if _, err := a.StageFree(geo.RowsBase(0)); err == nil {
		t.Fatal("free inside CM area accepted")
	}
	r := commit(t, a, 100)
	if _, err := a.StageFree(r.Base + 1); err == nil {
		t.Fatal("free of non-slot-boundary accepted")
	}
}

func TestReopenRebuildsState(t *testing.T) {
	dev, geo, a := newHeap(t)
	var kept []Reservation
	for i := 0; i < 50; i++ {
		kept = append(kept, commit(t, a, uint64(40+i*8)))
	}
	// Free every other one.
	for i := 0; i < len(kept); i += 2 {
		op, err := a.StageFree(kept[i].Base)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Apply(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := a.CountLive()
	bytesBefore := a.LiveBytes()

	a2, err := Open(dev, geo)
	if err != nil {
		t.Fatal(err)
	}
	if a2.CountLive() != liveBefore || a2.LiveBytes() != bytesBefore {
		t.Fatalf("reopen: live %d/%d bytes %d/%d",
			a2.CountLive(), liveBefore, a2.LiveBytes(), bytesBefore)
	}
	// The reopened allocator can still allocate and never collides with
	// live objects.
	liveSet := make(map[uint64]bool)
	a2.Objects(func(o ObjectInfo) bool { liveSet[o.Base] = true; return true })
	for i := 0; i < 20; i++ {
		r := commit(t, a2, 64)
		if liveSet[r.Base] {
			t.Fatalf("reopened allocator reissued live address %#x", r.Base)
		}
	}
	if err := a2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDetectsCorruptCM(t *testing.T) {
	dev, geo, a := newHeap(t)
	commit(t, a, 100)
	// Scribble the CM entry of an allocated chunk.
	dev.Scribble(geo.CMEntryOff(0, geo.CMChunks()), 16, rand.New(rand.NewSource(3)))
	_, err := Open(dev, geo)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptError, got %v", err)
	}
	if ce.Zone != 0 || ce.Chunk != geo.CMChunks() {
		t.Fatalf("corrupt entry misidentified: %+v", ce)
	}
}

func TestApplyIdempotent(t *testing.T) {
	dev, geo, a := newHeap(t)
	r, err := a.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	// Apply twice (simulates replay after a crash mid-apply).
	if err := ApplyToDevice(dev, geo, r.Op, nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplyToDevice(dev, geo, r.Op, nil); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(dev, geo)
	if err != nil {
		t.Fatal(err)
	}
	if a2.CountLive() != 1 {
		t.Fatalf("live = %d after double apply", a2.CountLive())
	}
	// Free twice likewise.
	op, err := a2.StageFree(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyToDevice(dev, geo, op, nil); err != nil {
		t.Fatal(err)
	}
	if err := ApplyToDevice(dev, geo, op, nil); err != nil {
		t.Fatal(err)
	}
	a3, err := Open(dev, geo)
	if err != nil {
		t.Fatal(err)
	}
	if a3.CountLive() != 0 {
		t.Fatalf("live = %d after double free apply", a3.CountLive())
	}
}

func TestApplyReportsRanges(t *testing.T) {
	dev, geo, a := newHeap(t)
	_ = dev
	r, err := a.Reserve(100)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	err = a.Apply(r.Op, func(off uint64, old, new_ []byte) {
		calls++
		if off != geo.CMEntryOff(0, r.Op.Chunk) {
			t.Errorf("range at %#x, want CM entry offset", off)
		}
		if len(old) != layout.CMEntrySize || len(new_) != layout.CMEntrySize {
			t.Errorf("range sizes %d/%d", len(old), len(new_))
		}
		eOld, err := DecodeEntry(old)
		if err != nil {
			t.Errorf("old image invalid: %v", err)
		}
		if eOld.State != ChunkFree {
			t.Errorf("old state %d, want free", eOld.State)
		}
		eNew, err := DecodeEntry(new_)
		if err != nil {
			t.Errorf("new image invalid: %v", err)
		}
		if eNew.State != ChunkRun || !eNew.Bit(r.Op.Slot) {
			t.Errorf("new entry %+v does not show allocation", eNew)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("onRange called %d times", calls)
	}
}

func TestSlotSizeOf(t *testing.T) {
	_, geo, a := newHeap(t)
	small := commit(t, a, 100)
	if ss, err := a.SlotSizeOf(small.Base); err != nil || ss != 128 {
		t.Fatalf("SlotSizeOf small = %d, %v", ss, err)
	}
	big := commit(t, a, geo.ChunkSize)
	if ss, err := a.SlotSizeOf(big.Base); err != nil || ss != 2*geo.ChunkSize {
		t.Fatalf("SlotSizeOf big = %d, %v", ss, err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	_, _, a := newHeap(t)
	const workers = 8
	var mu sync.Mutex
	addrs := make(map[uint64]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []uint64
			for i := 0; i < 100; i++ {
				if len(mine) > 0 && rng.Intn(3) == 0 {
					base := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					op, err := a.StageFree(base)
					if err != nil {
						panic(err)
					}
					if err := a.Apply(op, nil); err != nil {
						panic(err)
					}
					mu.Lock()
					delete(addrs, base)
					mu.Unlock()
					continue
				}
				size := uint64(rng.Intn(400) + 30)
				r, err := a.Reserve(size)
				if err != nil {
					panic(err)
				}
				if err := a.Apply(r.Op, nil); err != nil {
					panic(err)
				}
				mu.Lock()
				if prev, dup := addrs[r.Base]; dup {
					panic(fmt.Sprintf("address %#x double-allocated (workers %d and %d)", r.Base, prev, w))
				}
				addrs[r.Base] = w
				mu.Unlock()
				mine = append(mine, r.Base)
			}
		}(w)
	}
	wg.Wait()
	if a.CountLive() != len(addrs) {
		t.Fatalf("live %d != tracked %d", a.CountLive(), len(addrs))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: random alloc/free/release sequences keep the allocator
// consistent: no double allocation, reopen sees the same live set, Validate
// passes.
func TestRandomOpsInvariant(t *testing.T) {
	geo := layout.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		if err := Format(dev, geo); err != nil {
			return false
		}
		a, err := Open(dev, geo)
		if err != nil {
			return false
		}
		live := make(map[uint64]uint64) // base → capacity
		for i := 0; i < 120; i++ {
			switch r := rng.Intn(10); {
			case r < 6: // alloc
				size := uint64(rng.Intn(3000) + 1)
				res, err := a.Reserve(size)
				if errors.Is(err, ErrOutOfSpace) {
					continue
				}
				if err != nil {
					return false
				}
				if rng.Intn(5) == 0 { // abort path
					a.Release(res)
					continue
				}
				if err := a.Apply(res.Op, nil); err != nil {
					return false
				}
				if _, dup := live[res.Base]; dup {
					return false
				}
				live[res.Base] = res.Total
			case r < 9 && len(live) > 0: // free
				var base uint64
				for b := range live {
					base = b
					break
				}
				op, err := a.StageFree(base)
				if err != nil {
					return false
				}
				if err := a.Apply(op, nil); err != nil {
					return false
				}
				delete(live, base)
			}
		}
		if a.CountLive() != len(live) {
			return false
		}
		if err := a.Validate(); err != nil {
			return false
		}
		a2, err := Open(dev, geo)
		if err != nil {
			return false
		}
		got := make(map[uint64]uint64)
		a2.Objects(func(o ObjectInfo) bool { got[o.Base] = o.Capacity; return true })
		if len(got) != len(live) {
			return false
		}
		for b, c := range live {
			if got[b] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
