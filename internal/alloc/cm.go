// Package alloc implements Pangolin's persistent NVMM allocator: the
// libpmemobj-style zone/chunk heap of §2.3 with the chunk metadata placed
// inside parity-covered zone storage and protected by checksums (§3.1).
//
// Zones are divided into chunks. A chunk is either free, subdivided into
// equal-size slots for small objects (a "run", tracked by a slot bitmap),
// or part of a contiguous multi-chunk extent for large objects. The
// persistent truth is the per-zone chunk-metadata (CM) array; free lists
// are volatile and rebuilt on open, so a crash can never corrupt them.
//
// Mutations are staged as idempotent Ops. A transaction reserves space
// volatilely at alloc time (so concurrent transactions never hand out the
// same slot) and records the Op in its redo log; at commit — or during
// recovery replay — Apply performs the persistent CM update and reports
// the modified byte ranges so the caller can fold them into zone parity.
package alloc

import (
	"encoding/binary"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
)

// Chunk states stored in CM entries.
const (
	ChunkFree      uint32 = iota // allocatable
	ChunkRun                     // subdivided into slots (Aux = slot size)
	ChunkUsedFirst               // first chunk of an extent (Aux = chunk count)
	ChunkUsedCont                // continuation of an extent
	ChunkReserved                // holds the CM array itself
)

// BitmapBytes is the per-entry slot bitmap capacity; it bounds slots per
// chunk to 8×BitmapBytes.
const BitmapBytes = layout.CMEntrySize - 16

// Entry is the decoded form of one chunk-metadata entry.
type Entry struct {
	State  uint32
	Aux    uint32 // slot size (run) or chunk count (used-first)
	Free   uint32 // free slots (run only)
	Bitmap [BitmapBytes]byte
}

// Slots returns the number of slots for a run chunk of the given chunk
// size.
func (e Entry) Slots(chunkSize uint64) uint32 {
	if e.State != ChunkRun || e.Aux == 0 {
		return 0
	}
	return uint32(chunkSize / uint64(e.Aux))
}

// Bit reports slot i's allocation bit.
func (e *Entry) Bit(i uint32) bool { return e.Bitmap[i/8]&(1<<(i%8)) != 0 }

// SetBit sets slot i's allocation bit.
func (e *Entry) SetBit(i uint32) { e.Bitmap[i/8] |= 1 << (i % 8) }

// ClearBit clears slot i's allocation bit.
func (e *Entry) ClearBit(i uint32) { e.Bitmap[i/8] &^= 1 << (i % 8) }

// EncodeEntry serializes e with its checksum into a CMEntrySize image.
func EncodeEntry(e Entry) []byte {
	b := make([]byte, layout.CMEntrySize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], e.State)
	le.PutUint32(b[4:], e.Aux)
	le.PutUint32(b[8:], e.Free)
	copy(b[16:], e.Bitmap[:])
	le.PutUint32(b[12:], entryChecksum(b))
	return b
}

// entryChecksum computes the checksum of an encoded entry image with its
// checksum field zeroed.
func entryChecksum(b []byte) uint32 {
	var img [layout.CMEntrySize]byte
	copy(img[:], b[:layout.CMEntrySize])
	img[12], img[13], img[14], img[15] = 0, 0, 0, 0
	return csum.Adler32(img[:])
}

// DecodeEntry parses an entry image, failing on checksum mismatch — the
// signal that the CM itself was corrupted and needs parity recovery.
func DecodeEntry(b []byte) (Entry, error) {
	if len(b) < layout.CMEntrySize {
		return Entry{}, fmt.Errorf("alloc: CM entry truncated")
	}
	le := binary.LittleEndian
	if le.Uint32(b[12:]) != entryChecksum(b) {
		return Entry{}, &CorruptError{}
	}
	var e Entry
	e.State = le.Uint32(b[0:])
	e.Aux = le.Uint32(b[4:])
	e.Free = le.Uint32(b[8:])
	copy(e.Bitmap[:], b[16:])
	return e, nil
}

// CorruptError reports a chunk-metadata entry whose checksum failed.
// Zone/Chunk/Off identify the entry so the caller can run parity recovery
// over its page and retry.
type CorruptError struct {
	Zone  uint64
	Chunk uint64
	Off   uint64 // pool offset of the corrupt entry
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("alloc: chunk metadata corrupt (zone %d chunk %d at %#x)", e.Zone, e.Chunk, e.Off)
}

// OpKind enumerates allocator mutations. Ops are recorded in redo logs and
// must be idempotent under replay.
type OpKind uint16

const (
	OpAllocSlot OpKind = iota + 1
	OpFreeSlot
	OpAllocChunks
	OpFreeChunks
)

// Op is one staged allocator mutation.
type Op struct {
	Kind     OpKind
	Zone     uint64
	Chunk    uint64 // chunk index (first chunk for extent ops)
	Slot     uint32 // slot index (slot ops)
	SlotSize uint32 // slot size in bytes (slot ops; drives run creation)
	NChunks  uint64 // extent length (extent ops)
}

// OpEncodedSize is the fixed wire size of an encoded Op.
const OpEncodedSize = 2 + 6 + 8 + 8 + 4 + 4 + 8

// EncodeOp serializes op.
func EncodeOp(op Op) []byte {
	b := make([]byte, OpEncodedSize)
	le := binary.LittleEndian
	le.PutUint16(b[0:], uint16(op.Kind))
	le.PutUint64(b[8:], op.Zone)
	le.PutUint64(b[16:], op.Chunk)
	le.PutUint32(b[24:], op.Slot)
	le.PutUint32(b[28:], op.SlotSize)
	le.PutUint64(b[32:], op.NChunks)
	return b
}

// DecodeOp parses an encoded Op.
func DecodeOp(b []byte) (Op, error) {
	if len(b) < OpEncodedSize {
		return Op{}, fmt.Errorf("alloc: op truncated")
	}
	le := binary.LittleEndian
	op := Op{
		Kind:     OpKind(le.Uint16(b[0:])),
		Zone:     le.Uint64(b[8:]),
		Chunk:    le.Uint64(b[16:]),
		Slot:     le.Uint32(b[24:]),
		SlotSize: le.Uint32(b[28:]),
		NChunks:  le.Uint64(b[32:]),
	}
	if op.Kind < OpAllocSlot || op.Kind > OpFreeChunks {
		return Op{}, fmt.Errorf("alloc: unknown op kind %d", op.Kind)
	}
	return op, nil
}
