package alloc

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// ErrOutOfSpace reports that no zone can satisfy an allocation.
var ErrOutOfSpace = errors.New("alloc: out of space")

// sizeClasses returns the run slot sizes for a chunk size: multiples of 64
// up to 512 B, then geometric steps, capped at half a chunk. Larger
// requests use whole-chunk extents.
func sizeClasses(chunkSize uint64) []uint64 {
	var classes []uint64
	for s := uint64(64); s <= 512; s += 64 {
		classes = append(classes, s)
	}
	for _, s := range []uint64{640, 768, 896, 1024, 1280, 1536, 1792, 2048,
		2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192, 10240, 12288, 16384,
		20480, 24576, 32768} {
		if s <= chunkSize/2 {
			classes = append(classes, s)
		}
	}
	return classes
}

// chunkVol is the volatile view of one chunk: the persistent entry plus
// uncommitted reservations.
type chunkVol struct {
	entry       Entry
	reserved    map[uint32]struct{} // slot reservations by in-flight txs
	pendingRun  uint32              // slot size of a volatile (not yet persistent) run; 0 if none
	pendingSpan bool                // chunk reserved by an in-flight extent allocation
}

// avail returns reservable slots, counting volatile state.
func (c *chunkVol) avail(chunkSize uint64) uint32 {
	switch {
	case c.pendingRun != 0:
		return uint32(chunkSize/uint64(c.pendingRun)) - uint32(len(c.reserved))
	case c.entry.State == ChunkRun:
		return c.entry.Free - uint32(len(c.reserved))
	default:
		return 0
	}
}

func (c *chunkVol) slotSize() uint32 {
	if c.pendingRun != 0 {
		return c.pendingRun
	}
	if c.entry.State == ChunkRun {
		return c.entry.Aux
	}
	return 0
}

type zoneState struct {
	mu     sync.Mutex
	chunks []chunkVol
	// classRuns indexes chunks usable per slot size (persistent runs and
	// pending runs with availability); entries may be stale and are
	// validated on use.
	classRuns map[uint32]map[uint64]struct{}
	freeHint  uint64 // first index that might be free
}

// Allocator manages the persistent heap of a pool.
type Allocator struct {
	dev     *nvm.Device
	geo     layout.Geometry
	classes []uint64
	zones   []*zoneState
	next    uint64 // round-robin zone cursor (mutated under zone locks only loosely)
	nextMu  sync.Mutex
}

// Reservation describes space reserved for an allocation. The reservation
// is volatile until its Op is applied at commit; Release abandons it.
type Reservation struct {
	Op      Op
	Base    uint64 // pool offset of the object header
	Total   uint64 // reserved bytes (slot size or extent size)
	UserOff uint64 // pool offset of user data (Base + ObjHeaderSize)
}

// MaxAlloc returns the largest supported user allocation (one zone's
// allocatable span minus the object header).
func (a *Allocator) MaxAlloc() uint64 {
	return (a.geo.ChunksPerZone()-a.geo.CMChunks())*a.geo.ChunkSize - layout.ObjHeaderSize
}

// Format initializes the allocator's persistent state on a fresh (zeroed)
// device: zone headers (replicated) and CM arrays, with the CM chunks
// themselves marked reserved. The caller recomputes parity for the CM
// columns afterwards.
func Format(dev *nvm.Device, geo layout.Geometry) error {
	if err := checkGeometry(geo); err != nil {
		return err
	}
	for z := uint64(0); z < geo.NumZones; z++ {
		zh := layout.EncodeZoneHeader(layout.ZoneHeader{ZoneIdx: z, Seq: 1, Chunks: geo.ChunksPerZone()})
		dev.WriteAt(geo.ZoneHeaderOff(z), zh)
		dev.WriteAt(geo.ZoneHeaderReplicaOff(z), zh)
		dev.Persist(geo.ZoneHeaderOff(z), uint64(len(zh)))
		dev.Persist(geo.ZoneHeaderReplicaOff(z), uint64(len(zh)))
		cmChunks := geo.CMChunks()
		for c := uint64(0); c < geo.ChunksPerZone(); c++ {
			e := Entry{State: ChunkFree}
			if c < cmChunks {
				e.State = ChunkReserved
			}
			img := EncodeEntry(e)
			dev.WriteAt(geo.CMEntryOff(z, c), img)
		}
		dev.Persist(geo.CMEntryOff(z, 0), geo.ChunksPerZone()*layout.CMEntrySize)
	}
	return nil
}

func checkGeometry(geo layout.Geometry) error {
	if err := geo.Validate(); err != nil {
		return err
	}
	if geo.ChunkSize/64 > BitmapBytes*8 {
		return fmt.Errorf("alloc: chunk size %d needs %d slot bits, bitmap holds %d",
			geo.ChunkSize, geo.ChunkSize/64, BitmapBytes*8)
	}
	return nil
}

// Open builds an allocator over a formatted device, reading every CM entry
// and rebuilding volatile free state. A CM checksum failure returns a
// *CorruptError identifying the entry so the engine can repair it from
// parity and retry.
func Open(dev *nvm.Device, geo layout.Geometry) (*Allocator, error) {
	if err := checkGeometry(geo); err != nil {
		return nil, err
	}
	a := &Allocator{dev: dev, geo: geo, classes: sizeClasses(geo.ChunkSize)}
	a.zones = make([]*zoneState, geo.NumZones)
	buf := make([]byte, layout.CMEntrySize)
	for z := uint64(0); z < geo.NumZones; z++ {
		zs := &zoneState{
			chunks:    make([]chunkVol, geo.ChunksPerZone()),
			classRuns: make(map[uint32]map[uint64]struct{}),
		}
		for c := uint64(0); c < geo.ChunksPerZone(); c++ {
			off := geo.CMEntryOff(z, c)
			if err := dev.ReadAt(buf, off); err != nil {
				return nil, fmt.Errorf("alloc: reading CM (zone %d chunk %d): %w", z, c, err)
			}
			e, err := DecodeEntry(buf)
			if err != nil {
				var ce *CorruptError
				if errors.As(err, &ce) {
					ce.Zone, ce.Chunk, ce.Off = z, c, off
				}
				return nil, err
			}
			zs.chunks[c] = chunkVol{entry: e}
			if e.State == ChunkRun && e.Free > 0 {
				addClassRun(zs, e.Aux, c)
			}
		}
		a.zones[z] = zs
	}
	return a, nil
}

func addClassRun(zs *zoneState, slotSize uint32, chunk uint64) {
	m := zs.classRuns[slotSize]
	if m == nil {
		m = make(map[uint64]struct{})
		zs.classRuns[slotSize] = m
	}
	m[chunk] = struct{}{}
}

// classFor returns the smallest size class ≥ total, or 0 if total needs a
// chunk extent.
func (a *Allocator) classFor(total uint64) uint64 {
	for _, c := range a.classes {
		if total <= c {
			return c
		}
	}
	return 0
}

// Reserve finds space for an object of userSize bytes (header added
// internally), reserving it against concurrent transactions. The returned
// reservation's Op must be recorded in the transaction log and applied at
// commit, or released on abort.
func (a *Allocator) Reserve(userSize uint64) (Reservation, error) {
	total := userSize + layout.ObjHeaderSize
	if total > a.MaxAlloc()+layout.ObjHeaderSize {
		return Reservation{}, fmt.Errorf("alloc: %d bytes exceeds maximum object size: %w", userSize, ErrOutOfSpace)
	}
	a.nextMu.Lock()
	start := a.next
	a.next++
	a.nextMu.Unlock()
	if class := a.classFor(total); class != 0 {
		for i := uint64(0); i < a.geo.NumZones; i++ {
			z := (start + i) % a.geo.NumZones
			if r, ok := a.reserveSlot(z, uint32(class)); ok {
				return r, nil
			}
		}
		return Reservation{}, ErrOutOfSpace
	}
	n := (total + a.geo.ChunkSize - 1) / a.geo.ChunkSize
	for i := uint64(0); i < a.geo.NumZones; i++ {
		z := (start + i) % a.geo.NumZones
		if r, ok := a.reserveChunks(z, n); ok {
			return r, nil
		}
	}
	return Reservation{}, ErrOutOfSpace
}

func (a *Allocator) reserveSlot(z uint64, slotSize uint32) (Reservation, bool) {
	zs := a.zones[z]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	// Existing run (persistent or pending) with availability?
	var chunk uint64
	found := false
	for c := range zs.classRuns[slotSize] {
		cv := &zs.chunks[c]
		if cv.slotSize() == slotSize && cv.avail(a.geo.ChunkSize) > 0 {
			chunk, found = c, true
			break
		}
		delete(zs.classRuns[slotSize], c) // stale
	}
	if !found {
		// Carve a new (pending) run from a free chunk.
		c, ok := a.findFreeChunk(zs, 1)
		if !ok {
			return Reservation{}, false
		}
		cv := &zs.chunks[c]
		cv.pendingRun = slotSize
		cv.reserved = make(map[uint32]struct{})
		addClassRun(zs, slotSize, c)
		chunk = c
	}
	cv := &zs.chunks[chunk]
	if cv.reserved == nil {
		cv.reserved = make(map[uint32]struct{})
	}
	slots := uint32(a.geo.ChunkSize / uint64(slotSize))
	slot := uint32(0)
	for ; slot < slots; slot++ {
		if cv.pendingRun == 0 && cv.entry.Bit(slot) {
			continue
		}
		if _, taken := cv.reserved[slot]; taken {
			continue
		}
		break
	}
	if slot == slots {
		return Reservation{}, false
	}
	cv.reserved[slot] = struct{}{}
	if cv.avail(a.geo.ChunkSize) == 0 {
		delete(zs.classRuns[slotSize], chunk)
	}
	base := a.geo.ChunkBase(z, chunk) + uint64(slot)*uint64(slotSize)
	return Reservation{
		Op:      Op{Kind: OpAllocSlot, Zone: z, Chunk: chunk, Slot: slot, SlotSize: slotSize},
		Base:    base,
		Total:   uint64(slotSize),
		UserOff: base + layout.ObjHeaderSize,
	}, true
}

// findFreeChunk locates n contiguous free, unreserved chunks, returning the
// first index. Caller holds zs.mu.
func (a *Allocator) findFreeChunk(zs *zoneState, n uint64) (uint64, bool) {
	total := uint64(len(zs.chunks))
	run := uint64(0)
	for c := zs.freeHint; c < total; c++ {
		cv := &zs.chunks[c]
		if cv.entry.State == ChunkFree && !cv.pendingSpan && cv.pendingRun == 0 {
			run++
			if run == n {
				first := c - n + 1
				if n == 1 && first == zs.freeHint {
					zs.freeHint++
				}
				return first, true
			}
		} else {
			run = 0
		}
	}
	// Retry from the beginning (hint may have skipped freed chunks).
	run = 0
	for c := uint64(0); c < zs.freeHint && c < total; c++ {
		cv := &zs.chunks[c]
		if cv.entry.State == ChunkFree && !cv.pendingSpan && cv.pendingRun == 0 {
			run++
			if run == n {
				return c - n + 1, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

func (a *Allocator) reserveChunks(z, n uint64) (Reservation, bool) {
	zs := a.zones[z]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	first, ok := a.findFreeChunk(zs, n)
	if !ok {
		return Reservation{}, false
	}
	for c := first; c < first+n; c++ {
		zs.chunks[c].pendingSpan = true
	}
	base := a.geo.ChunkBase(z, first)
	return Reservation{
		Op:      Op{Kind: OpAllocChunks, Zone: z, Chunk: first, NChunks: n},
		Base:    base,
		Total:   n * a.geo.ChunkSize,
		UserOff: base + layout.ObjHeaderSize,
	}, true
}

// Release abandons a reservation (transaction abort). It must not be
// called after the reservation's Op was applied.
func (a *Allocator) Release(r Reservation) {
	zs := a.zones[r.Op.Zone]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	switch r.Op.Kind {
	case OpAllocSlot:
		cv := &zs.chunks[r.Op.Chunk]
		delete(cv.reserved, r.Op.Slot)
		if cv.pendingRun != 0 && len(cv.reserved) == 0 {
			// Nobody committed into the pending run: back to free.
			cv.pendingRun = 0
			delete(zs.classRuns[r.Op.SlotSize], r.Op.Chunk)
			if r.Op.Chunk < zs.freeHint {
				zs.freeHint = r.Op.Chunk
			}
		} else if cv.slotSize() == r.Op.SlotSize {
			addClassRun(zs, r.Op.SlotSize, r.Op.Chunk)
		}
	case OpAllocChunks:
		for c := r.Op.Chunk; c < r.Op.Chunk+r.Op.NChunks; c++ {
			zs.chunks[c].pendingSpan = false
		}
		if r.Op.Chunk < zs.freeHint {
			zs.freeHint = r.Op.Chunk
		}
	default:
		panic(fmt.Sprintf("alloc: Release of non-allocation op %d", r.Op.Kind))
	}
}

// StageFree builds the Op that frees the object whose header is at base.
// It consults persistent CM state to classify the object; the Op is applied
// at commit (freeing is deferred so aborts keep the object intact).
func (a *Allocator) StageFree(base uint64) (Op, error) {
	z, c, rel, err := a.locateChunk(base)
	if err != nil {
		return Op{}, err
	}
	zs := a.zones[z]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	cv := &zs.chunks[c]
	switch cv.entry.State {
	case ChunkRun:
		ss := uint64(cv.entry.Aux)
		if rel%ss != 0 {
			return Op{}, fmt.Errorf("alloc: %#x is not a slot boundary", base)
		}
		slot := uint32(rel / ss)
		if !cv.entry.Bit(slot) {
			return Op{}, fmt.Errorf("alloc: double free of slot %d in zone %d chunk %d", slot, z, c)
		}
		return Op{Kind: OpFreeSlot, Zone: z, Chunk: c, Slot: slot, SlotSize: cv.entry.Aux}, nil
	case ChunkUsedFirst:
		if rel != 0 {
			return Op{}, fmt.Errorf("alloc: %#x is not an extent base", base)
		}
		return Op{Kind: OpFreeChunks, Zone: z, Chunk: c, NChunks: uint64(cv.entry.Aux)}, nil
	default:
		return Op{}, fmt.Errorf("alloc: free of unallocated address %#x (chunk state %d)", base, cv.entry.State)
	}
}

// SlotSizeOf returns the reserved capacity (slot or extent bytes) of the
// object whose header is at base.
func (a *Allocator) SlotSizeOf(base uint64) (uint64, error) {
	z, c, rel, err := a.locateChunk(base)
	if err != nil {
		return 0, err
	}
	zs := a.zones[z]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	cv := &zs.chunks[c]
	switch {
	case cv.entry.State == ChunkRun:
		return uint64(cv.entry.Aux), nil
	case cv.entry.State == ChunkUsedFirst && rel == 0:
		return uint64(cv.entry.Aux) * a.geo.ChunkSize, nil
	case cv.pendingRun != 0:
		return uint64(cv.pendingRun), nil
	case cv.pendingSpan:
		// In-flight extent: length unknown here; callers track it via
		// the reservation instead.
		return 0, fmt.Errorf("alloc: extent at %#x not yet committed", base)
	default:
		return 0, fmt.Errorf("alloc: %#x is not an allocated object", base)
	}
}

// locateChunk maps an object header offset to (zone, chunk, offset within
// chunk).
func (a *Allocator) locateChunk(base uint64) (z, c, rel uint64, err error) {
	if !a.geo.InZoneData(base) {
		return 0, 0, 0, fmt.Errorf("alloc: %#x outside zone data", base)
	}
	loc := a.geo.Locate(base)
	byteIdx := loc.Row*a.geo.RowSize() + loc.Col
	c = byteIdx / a.geo.ChunkSize
	rel = byteIdx % a.geo.ChunkSize
	if c < a.geo.CMChunks() {
		return 0, 0, 0, fmt.Errorf("alloc: %#x is inside the CM area", base)
	}
	return loc.Zone, c, rel, nil
}
