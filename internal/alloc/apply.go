package alloc

import (
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// RangeFn observes one persistent CM byte-range update: the entry's pool
// offset with its old and new images. Engines fold these into zone parity
// (the CM array is parity-covered, §3.1).
type RangeFn func(off uint64, old, new_ []byte)

// ApplyToDevice performs op's persistent CM mutation directly against the
// device, without allocator volatile state — the form recovery replay uses.
// Ops are idempotent: replaying a partially applied op converges to the
// same state. The modified entries are persisted; onRange (optional)
// receives each entry image change for parity maintenance.
func ApplyToDevice(dev *nvm.Device, geo layout.Geometry, op Op, onRange RangeFn) error {
	switch op.Kind {
	case OpAllocSlot, OpFreeSlot:
		return applySlot(dev, geo, op, onRange)
	case OpAllocChunks, OpFreeChunks:
		return applyChunks(dev, geo, op, onRange)
	default:
		return fmt.Errorf("alloc: apply of unknown op kind %d", op.Kind)
	}
}

func readEntry(dev *nvm.Device, geo layout.Geometry, z, c uint64) (Entry, []byte, error) {
	off := geo.CMEntryOff(z, c)
	img := make([]byte, layout.CMEntrySize)
	if err := dev.ReadAt(img, off); err != nil {
		return Entry{}, nil, err
	}
	e, err := DecodeEntry(img)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Zone, ce.Chunk, ce.Off = z, c, off
		}
		return Entry{}, nil, err
	}
	return e, img, nil
}

func writeEntry(dev *nvm.Device, geo layout.Geometry, z, c uint64, e Entry, oldImg []byte, onRange RangeFn) {
	off := geo.CMEntryOff(z, c)
	img := EncodeEntry(e)
	dev.WriteAt(off, img)
	dev.Persist(off, uint64(len(img)))
	if onRange != nil {
		onRange(off, oldImg, img)
	}
}

func applySlot(dev *nvm.Device, geo layout.Geometry, op Op, onRange RangeFn) error {
	e, oldImg, err := readEntry(dev, geo, op.Zone, op.Chunk)
	if err != nil {
		return err
	}
	slots := uint32(geo.ChunkSize / uint64(op.SlotSize))
	if op.SlotSize == 0 || op.Slot >= slots {
		return fmt.Errorf("alloc: bad slot op %+v", op)
	}
	switch op.Kind {
	case OpAllocSlot:
		if e.State == ChunkFree {
			// First committed allocation materializes the run.
			e = Entry{State: ChunkRun, Aux: op.SlotSize, Free: slots}
		}
		if e.State != ChunkRun || e.Aux != op.SlotSize {
			return fmt.Errorf("alloc: slot alloc into incompatible chunk (state %d aux %d, op %+v)", e.State, e.Aux, op)
		}
		if !e.Bit(op.Slot) { // idempotent under replay
			e.SetBit(op.Slot)
			e.Free--
		}
	case OpFreeSlot:
		if e.State == ChunkFree {
			return nil // replay after the run already collapsed
		}
		if e.State != ChunkRun || e.Aux != op.SlotSize {
			return fmt.Errorf("alloc: slot free from incompatible chunk (state %d aux %d, op %+v)", e.State, e.Aux, op)
		}
		if e.Bit(op.Slot) {
			e.ClearBit(op.Slot)
			e.Free++
		}
		if e.Free == slots {
			e = Entry{State: ChunkFree} // empty run collapses
		}
	}
	writeEntry(dev, geo, op.Zone, op.Chunk, e, oldImg, onRange)
	return nil
}

func applyChunks(dev *nvm.Device, geo layout.Geometry, op Op, onRange RangeFn) error {
	if op.NChunks == 0 || op.Chunk+op.NChunks > geo.ChunksPerZone() {
		return fmt.Errorf("alloc: bad extent op %+v", op)
	}
	for i := uint64(0); i < op.NChunks; i++ {
		c := op.Chunk + i
		e, oldImg, err := readEntry(dev, geo, op.Zone, c)
		if err != nil {
			return err
		}
		var want Entry
		switch {
		case op.Kind == OpAllocChunks && i == 0:
			want = Entry{State: ChunkUsedFirst, Aux: uint32(op.NChunks)}
		case op.Kind == OpAllocChunks:
			want = Entry{State: ChunkUsedCont}
		default:
			want = Entry{State: ChunkFree}
		}
		if e == want {
			continue // idempotent under replay
		}
		okBefore := e.State == ChunkFree ||
			(op.Kind == OpFreeChunks && (e.State == ChunkUsedFirst || e.State == ChunkUsedCont))
		if !okBefore {
			return fmt.Errorf("alloc: extent op %+v over chunk %d in state %d", op, c, e.State)
		}
		writeEntry(dev, geo, op.Zone, c, want, oldImg, onRange)
	}
	return nil
}

// Apply performs op persistently (as ApplyToDevice) and keeps the
// allocator's volatile state coherent. It serializes CM updates per zone;
// onRange runs under that zone's lock so parity deltas observe a
// consistent entry history.
func (a *Allocator) Apply(op Op, onRange RangeFn) error {
	zs := a.zones[op.Zone]
	zs.mu.Lock()
	defer zs.mu.Unlock()
	if err := ApplyToDevice(a.dev, a.geo, op, onRange); err != nil {
		return err
	}
	// Refresh the volatile cache from what is now on media.
	refresh := func(c uint64) error {
		e, _, err := readEntry(a.dev, a.geo, op.Zone, c)
		if err != nil {
			return err
		}
		cv := &zs.chunks[c]
		cv.entry = e
		return nil
	}
	switch op.Kind {
	case OpAllocSlot:
		cv := &zs.chunks[op.Chunk]
		delete(cv.reserved, op.Slot)
		cv.pendingRun = 0 // run is persistent now
		if err := refresh(op.Chunk); err != nil {
			return err
		}
		if cv.avail(a.geo.ChunkSize) > 0 {
			addClassRun(zs, op.SlotSize, op.Chunk)
		} else {
			delete(zs.classRuns[op.SlotSize], op.Chunk)
		}
	case OpFreeSlot:
		cv := &zs.chunks[op.Chunk]
		if err := refresh(op.Chunk); err != nil {
			return err
		}
		if cv.entry.State == ChunkFree {
			delete(zs.classRuns[op.SlotSize], op.Chunk)
			if op.Chunk < zs.freeHint {
				zs.freeHint = op.Chunk
			}
		} else if cv.avail(a.geo.ChunkSize) > 0 {
			addClassRun(zs, op.SlotSize, op.Chunk)
		}
	case OpAllocChunks, OpFreeChunks:
		for i := uint64(0); i < op.NChunks; i++ {
			c := op.Chunk + i
			zs.chunks[c].pendingSpan = false
			if err := refresh(c); err != nil {
				return err
			}
		}
		if op.Kind == OpFreeChunks && op.Chunk < zs.freeHint {
			zs.freeHint = op.Chunk
		}
	}
	return nil
}

// ObjectInfo describes one live object found by Objects.
type ObjectInfo struct {
	Base     uint64 // pool offset of the object header
	Capacity uint64 // reserved bytes (slot or extent size)
	Zone     uint64
}

// Objects calls fn for every committed live object, in address order,
// stopping early if fn returns false. Reservations not yet committed are
// not reported. The caller must ensure no concurrent commits (the engine
// runs this under its freeze/scrub quiescence).
func (a *Allocator) Objects(fn func(ObjectInfo) bool) {
	a.ObjectsFrom(0, fn)
}

// ObjectsFrom is Objects restricted to objects with Base > after: the
// resumable form an incremental scrub cursor needs. Zones and chunks
// wholly below the cursor are skipped by address arithmetic — never by
// visiting their slots — so resuming deep into a large heap costs
// O(chunks skipped), not O(objects skipped), and each scrub step's
// freeze window stays proportional to its own cap.
func (a *Allocator) ObjectsFrom(after uint64, fn func(ObjectInfo) bool) {
	for z := uint64(0); z < a.geo.NumZones; z++ {
		// Skip zones wholly below the cursor (conservative: computed
		// from the geometry's full chunk span, no per-zone state read).
		if n := a.geo.ChunksPerZone(); n > 0 {
			if a.geo.ChunkBase(z, n-1)+a.geo.ChunkSize <= after {
				continue
			}
		}
		zs := a.zones[z]
		zs.mu.Lock()
		for c := uint64(0); c < uint64(len(zs.chunks)); c++ {
			base := a.geo.ChunkBase(z, c)
			e := zs.chunks[c].entry
			switch e.State {
			case ChunkRun:
				if base+a.geo.ChunkSize <= after {
					continue // every slot base in this chunk is <= after
				}
				slots := e.Slots(a.geo.ChunkSize)
				for s := uint32(0); s < slots; s++ {
					if !e.Bit(s) {
						continue
					}
					info := ObjectInfo{
						Base:     base + uint64(s)*uint64(e.Aux),
						Capacity: uint64(e.Aux),
						Zone:     z,
					}
					if info.Base <= after {
						continue
					}
					if !fn(info) {
						zs.mu.Unlock()
						return
					}
				}
			case ChunkUsedFirst:
				if base <= after {
					continue
				}
				info := ObjectInfo{
					Base:     base,
					Capacity: uint64(e.Aux) * a.geo.ChunkSize,
					Zone:     z,
				}
				if !fn(info) {
					zs.mu.Unlock()
					return
				}
			}
		}
		zs.mu.Unlock()
	}
}

// CountLive returns the number of committed live objects, for tests and
// pool statistics.
func (a *Allocator) CountLive() int {
	n := 0
	a.Objects(func(ObjectInfo) bool { n++; return true })
	return n
}

// LiveBytes returns the committed reserved bytes.
func (a *Allocator) LiveBytes() uint64 {
	var n uint64
	a.Objects(func(o ObjectInfo) bool { n += o.Capacity; return true })
	return n
}

// Validate cross-checks volatile state against persistent CM entries; it
// is a test helper that fails fast on cache incoherence.
func (a *Allocator) Validate() error {
	buf := make([]byte, layout.CMEntrySize)
	for z := uint64(0); z < a.geo.NumZones; z++ {
		zs := a.zones[z]
		zs.mu.Lock()
		for c := range zs.chunks {
			if err := a.dev.ReadAt(buf, a.geo.CMEntryOff(z, uint64(c))); err != nil {
				zs.mu.Unlock()
				return err
			}
			e, err := DecodeEntry(buf)
			if err != nil {
				zs.mu.Unlock()
				return fmt.Errorf("zone %d chunk %d: %w", z, c, err)
			}
			if e != zs.chunks[c].entry {
				zs.mu.Unlock()
				return fmt.Errorf("zone %d chunk %d: volatile cache diverged from media", z, c)
			}
		}
		zs.mu.Unlock()
	}
	return nil
}
