package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
	"github.com/pangolin-go/pangolin/internal/parity"
)

// Xover is the ablation behind the hybrid parity scheme (§3.5/§4.1): the
// latency of a parity update via atomic per-word XOR (shared range-lock)
// versus vectorized XOR (exclusive lock) as the patch size grows. The
// paper measured the crossover at 8 KB on Optane and set that as the
// switch threshold; this regenerates the sweep so the threshold can be
// re-derived for the simulated substrate.
func Xover(w io.Writer, cfg Config) error {
	geo := layout.Default()
	t := &Table{Header: []string{"patch(B)", "atomic us/op", "vectorized us/op", "faster"}}
	var crossover uint64
	iters := cfg.Ops * 4
	for _, size := range []uint64{256, 512, 1024, 2048, 4096, 8192, 16384, 32768} {
		if size > geo.RowSize() {
			break
		}
		atomic := xoverCell(geo, size, 1<<60, iters) // threshold ∞: always atomic
		vector := xoverCell(geo, size, 1, iters)     // threshold 1: always vectorized
		faster := "atomic"
		if vector < atomic {
			faster = "vectorized"
			if crossover == 0 {
				crossover = size
			}
		}
		t.Add(fmt.Sprintf("%d", size), fmtNs(atomic, iters), fmtNs(vector, iters), faster)
	}
	fmt.Fprintf(w, "\nHybrid parity crossover sweep (paper threshold: 8 KB)\n")
	t.Print(w)
	if crossover != 0 {
		fmt.Fprintf(w, "measured crossover on this substrate: ~%d B\n", crossover)
	} else {
		fmt.Fprintf(w, "atomic XOR stayed faster through the sweep on this substrate\n")
	}
	return nil
}

func xoverCell(geo layout.Geometry, size uint64, threshold int, iters int) time.Duration {
	dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
	p := parity.New(dev, geo, threshold)
	delta := make([]byte, size)
	for i := range delta {
		delta[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		p.Update(0, uint64(i)%(geo.RowSize()-size), delta)
		dev.Fence()
	}
	return time.Since(start)
}
