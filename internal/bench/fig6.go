package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/pangolin-go/pangolin"
)

// policyCell describes one verification policy column of Figure 6 /
// Table 4.
type policyCell struct {
	name       string
	mode       pangolin.Mode
	policy     pangolin.VerifyPolicy
	scrubEvery uint64 // scaled at run time for quick configs
}

func policyCells(cfg Config) []policyCell {
	cells := []policyCell{
		{name: "Pmemobj", mode: pangolin.ModePmemobj},
		{name: "Pgl-MLPC", mode: pangolin.ModePangolinMLPC},
	}
	for _, iv := range cfg.ScrubIntervals {
		cells = append(cells, policyCell{
			name:       fmt.Sprintf("Scrub %d", iv),
			mode:       pangolin.ModePangolinMLPC,
			scrubEvery: iv,
		})
	}
	cells = append(cells, policyCell{
		name:   "Conservative",
		mode:   pangolin.ModePangolinMLPC,
		policy: pangolin.VerifyConservative,
	})
	return cells
}

// Fig6 reproduces Figure 6: insert throughput under the checksum
// verification policies (§3.3). Shape targets: Conservative is nearly
// free for small-object structures (ctree, rbtree, hashmap) and expensive
// for large-object ones (btree, skiplist, rtree); scrub modes sit between
// MLPC and Conservative, trading throughput for bounded vulnerability.
func Fig6(w io.Writer, cfg Config) error {
	cells := policyCells(cfg)
	t := &Table{Header: append([]string{"structure"}, cellNames(cells)...)}
	for _, f := range Factories {
		n := min(cfg.KVOps, f.opCap)
		row := []string{f.name}
		for _, c := range cells {
			kops, _, err := fig6Cell(f, c, n)
			if err != nil {
				return fmt.Errorf("fig6 %s %s: %w", f.name, c.name, err)
			}
			row = append(row, kops)
		}
		t.Add(row...)
	}
	fmt.Fprintf(w, "\nFigure 6 — insert throughput under verification policies (Kops/s), %d ops\n", cfg.KVOps)
	t.Print(w)
	return nil
}

func cellNames(cells []policyCell) []string {
	names := make([]string, len(cells))
	for i, c := range cells {
		names[i] = c.name
	}
	return names
}

// fig6Cell runs inserts under one policy and also returns the unverified
// object bytes (Table 4's vulnerability measure).
func fig6Cell(f kvFactory, c policyCell, n int) (string, uint64, error) {
	pool, err := kvPool(f, c.mode, n, c.policy, c.scrubEvery)
	if err != nil {
		return "", 0, err
	}
	defer pool.Close()
	m, err := f.make(pool, n)
	if err != nil {
		return "", 0, err
	}
	keys := kvKeys(n)
	pool.Stats().ResetAccounting()
	start := time.Now()
	for _, k := range keys {
		if err := m.Insert(k, k); err != nil {
			return "", 0, err
		}
	}
	d := time.Since(start)
	unverified := pool.Stats().UnverifiedBytes.Load()
	if c.scrubEvery > 0 {
		// Table 4 counts the window between two scrub passes, not the
		// whole run.
		txs := pool.Stats().TxCount.Load()
		if txs > c.scrubEvery {
			unverified = unverified * c.scrubEvery / txs
		}
	}
	return fmtKops(n, d), unverified, nil
}

// Table4 reproduces Table 4: object bytes accessed without checksum
// verification, normalized to Pmemobj (which verifies nothing). Shape
// targets: MLPC below 1.0 (micro-buffer opens verify), scrub modes an
// order of magnitude lower (window-bounded), Conservative 0.
func Table4(w io.Writer, cfg Config) error {
	cells := policyCells(cfg)
	t := &Table{Header: append([]string{"policy"}, factoryNames()...)}
	base := make([]uint64, len(Factories))
	rows := make([][]uint64, len(cells))
	for ci, c := range cells {
		rows[ci] = make([]uint64, len(Factories))
		for fi, f := range Factories {
			n := min(cfg.KVOps, f.opCap)
			_, unverified, err := fig6Cell(f, c, n)
			if err != nil {
				return fmt.Errorf("table4 %s %s: %w", f.name, c.name, err)
			}
			rows[ci][fi] = unverified
			if ci == 0 {
				base[fi] = unverified
			}
		}
	}
	for ci, c := range cells {
		row := []string{c.name}
		for fi := range Factories {
			if base[fi] == 0 {
				row = append(row, "0.00")
				continue
			}
			ratio := float64(rows[ci][fi]) / float64(base[fi])
			row = append(row, fmt.Sprintf("%.2f", ratio))
		}
		t.Add(row...)
	}
	fmt.Fprintf(w, "\nTable 4 — bytes accessed without checksum verification (normalized to Pmemobj)\n")
	t.Print(w)
	return nil
}

func factoryNames() []string {
	names := make([]string, len(Factories))
	for i, f := range Factories {
		names[i] = f.name
	}
	return names
}
