package bench

import (
	"fmt"
	"io"

	"github.com/pangolin-go/pangolin"
)

// Table2 prints the operation-mode matrix (paper Table 2).
func Table2(w io.Writer) {
	t := &Table{Header: []string{"mode", "micro-buffering", "meta/log replication", "parity", "checksums", "replica pool"}}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, m := range Modes {
		t.Add(m.String(), yn(m.MicroBuffered()), yn(m.ReplicateMeta()), yn(m.Parity()), yn(m.Checksums()), yn(m.ReplicaPool()))
	}
	fmt.Fprintf(w, "\nTable 2 — library operation modes\n")
	t.Print(w)
}

// Table3 reproduces Table 3: per-transaction average allocated and
// modified sizes (and object counts) for inserts and removals on each
// structure, measured from the engine's transaction accounting. Shape
// targets: allocation sizes track the node sizes (56/80/304/408/4136/40);
// modified sizes are several node-sized touches for the balanced trees.
func Table3(w io.Writer, cfg Config) error {
	t := &Table{Header: []string{"structure", "op", "new B/tx (objs)", "mod B/tx (objs/tx)"}}
	for _, f := range Factories {
		n := min(cfg.KVOps, f.opCap)
		pool, err := kvPool(f, pangolin.ModePangolinMLPC, n, pangolin.VerifyDefault, 0)
		if err != nil {
			return err
		}
		m, err := f.make(pool, n)
		if err != nil {
			pool.Close()
			return err
		}
		keys := kvKeys(n)
		st := pool.Stats()
		st.ResetAccounting()
		for _, k := range keys {
			if err := m.Insert(k, k); err != nil {
				pool.Close()
				return err
			}
		}
		t.Add(f.name, "insert", avgObjs(st.TxAllocBytes.Load(), st.TxAllocObjs.Load(), st.TxCount.Load()),
			avgObjs(st.TxModBytes.Load(), st.TxObjects.Load(), st.TxCount.Load()))
		st.ResetAccounting()
		for _, k := range keys {
			if _, err := m.Remove(k); err != nil {
				pool.Close()
				return err
			}
		}
		t.Add(f.name, "remove", avgObjs(st.TxAllocBytes.Load(), st.TxAllocObjs.Load(), st.TxCount.Load()),
			avgObjs(st.TxModBytes.Load(), st.TxObjects.Load(), st.TxCount.Load()))
		pool.Close()
	}
	fmt.Fprintf(w, "\nTable 3 — data structure transaction sizes (avg per transaction, %d ops)\n", cfg.KVOps)
	t.Print(w)
	return nil
}

func avgObjs(bytes, objs, txs uint64) string {
	if txs == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f (%.2f)", float64(bytes)/float64(txs), float64(objs)/float64(txs))
}
