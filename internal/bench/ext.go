package bench

import (
	"fmt"
	"io"

	"github.com/pangolin-go/pangolin"
)

// Ext benchmarks the §3.5 extension the paper sketches but does not
// build: Pmemobj-P, an undo-logging system with commit-time parity
// patches (snapshot ⊕ current). The comparison of interest: Pmemobj-P
// should land between plain Pmemobj and Pmemobj-R in cost while matching
// Pmemobj-R's media-error protection at ~1% space instead of 100%.
func Ext(w io.Writer, cfg Config) error {
	modes := []pangolin.Mode{
		pangolin.ModePmemobj,
		pangolin.ModePmemobjP,
		pangolin.ModePmemobjR,
		pangolin.ModePangolinMLP,
	}
	names := make([]string, len(modes))
	for i, m := range modes {
		names[i] = m.String()
	}
	for _, op := range []string{"alloc", "overwrite"} {
		t := &Table{Header: append([]string{"size(B)"}, names...)}
		for _, size := range cfg.Sizes {
			row := []string{fmt.Sprintf("%d", size)}
			for _, mode := range modes {
				d, err := fig3Cell(mode, op, size, cfg.Ops)
				if err != nil {
					return fmt.Errorf("ext %v %s %d: %w", mode, op, size, err)
				}
				row = append(row, fmtNs(d, cfg.Ops))
			}
			t.Add(row...)
		}
		fmt.Fprintf(w, "\nExtension (§3.5) — undo logging with parity: %s latency (us/op)\n", op)
		t.Print(w)
	}
	fmt.Fprintf(w, "\nPmemobj-P protects against media errors (offline repair) at ~1%% space;\nPmemobj-R needs 100%%. Neither detects scribbles — that requires checksums (MLPC).\n")
	return nil
}
