package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pangolin-go/pangolin/internal/shard"
)

// ReadPath measures the concurrent verified-read fast path against the
// worker-serialized read path on a shard.Set, across reader counts: the
// scaling axis of ISSUE 3. Serial reads pay a channel round-trip to the
// shard's owner goroutine per Get; fast reads run checksum-verified on
// the callers' goroutines behind the per-shard reader gate, so their
// throughput should scale with cores while the serial line stays flat.
// A 10%-write mix shows the fallback behavior under commit pressure.
func ReadPath(w io.Writer, cfg Config) error {
	for _, mix := range []struct {
		name       string
		writeEvery int
	}{{"pure reads", 0}, {"90% reads / 10% writes", 10}} {
		t := &Table{Header: []string{"readers", "serial(ops/s)", "fast(ops/s)", "speedup", "fast_gets", "fallbacks"}}
		for _, threads := range cfg.Threads {
			serial, _, _, err := readPathCell(true, threads, mix.writeEvery, cfg.KVOps)
			if err != nil {
				return fmt.Errorf("readpath serial %d: %w", threads, err)
			}
			fast, fastGets, fallbacks, err := readPathCell(false, threads, mix.writeEvery, cfg.KVOps)
			if err != nil {
				return fmt.Errorf("readpath fast %d: %w", threads, err)
			}
			t.Add(fmt.Sprintf("%d", threads),
				fmt.Sprintf("%.0f", serial), fmt.Sprintf("%.0f", fast),
				fmt.Sprintf("%.2fx", fast/serial),
				fmt.Sprintf("%d", fastGets), fmt.Sprintf("%d", fallbacks))
		}
		fmt.Fprintf(w, "\nConcurrent read path — %s (total ops %d per cell)\n", mix.name, cfg.KVOps)
		t.Print(w)
	}
	return nil
}

func readPathCell(serial bool, threads, writeEvery, totalOps int) (opsPerSec float64, fastGets, fallbacks uint64, err error) {
	dir, err := os.MkdirTemp("", "pgl-readpath")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	s, err := shard.Create(dir, 4, shard.Options{SerialReads: serial})
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Abandon()
	const keySpace = 1 << 13
	for k := uint64(0); k < keySpace; k++ {
		if err := s.Put(k, k); err != nil {
			return 0, 0, 0, err
		}
	}
	var claimed atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, threads)
	start := time.Now()
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := uint64(g) * 77
			for i := 0; ; i++ {
				if claimed.Add(1) > int64(totalOps) {
					return
				}
				k = (k*2654435761 + 1) % keySpace
				if writeEvery > 0 && i%writeEvery == 0 {
					if err := s.Put(k, k); err != nil {
						errc <- err
						return
					}
					continue
				}
				if _, _, err := s.Get(k); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, 0, 0, err
	default:
	}
	st := s.Stats()
	return float64(totalOps) / elapsed.Seconds(), st.FastGets, st.FastFallbacks, nil
}
