package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/btree"
	"github.com/pangolin-go/pangolin/structures/ctree"
	"github.com/pangolin-go/pangolin/structures/hashmap"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/rbtree"
	"github.com/pangolin-go/pangolin/structures/rtree"
	"github.com/pangolin-go/pangolin/structures/skiplist"
)

// kvFactory describes one of the six data-structure workloads (§4.5).
type kvFactory struct {
	name string
	// perObj estimates allocated bytes per insert, for pool sizing.
	perObj uint64
	// opCap bounds the operation count (rtree's 4 KB nodes make
	// paper-scale runs exceed laptop memory; see EXPERIMENTS.md).
	opCap int
	make  func(p *pangolin.Pool, n int) (kv.Map, error)
}

// Name returns the structure's name.
func (f kvFactory) Name() string { return f.name }

// PerObj returns the estimated allocated bytes per insert (pool sizing).
func (f kvFactory) PerObj() uint64 { return f.perObj }

// Make builds the structure in a pool sized for n operations.
func (f kvFactory) Make(p *pangolin.Pool, n int) (kv.Map, error) { return f.make(p, n) }

// Factories lists the paper's six structures.
var Factories = []kvFactory{
	{"ctree", 128, 1 << 31, func(p *pangolin.Pool, n int) (kv.Map, error) { return ctree.New(p) }},
	{"rbtree", 128, 1 << 31, func(p *pangolin.Pool, n int) (kv.Map, error) { return rbtree.New(p) }},
	{"btree", 128, 1 << 31, func(p *pangolin.Pool, n int) (kv.Map, error) { return btree.New(p) }},
	{"skiplist", 448, 400_000, func(p *pangolin.Pool, n int) (kv.Map, error) { return skiplist.New(p) }},
	{"rtree", 12 * 1024, 50_000, func(p *pangolin.Pool, n int) (kv.Map, error) { return rtree.New(p) }},
	{"hashmap", 64, 1 << 31, func(p *pangolin.Pool, n int) (kv.Map, error) {
		buckets := uint64(n)/2 + 64
		return hashmap.NewWithBuckets(p, buckets)
	}},
}

// kvPool builds a pool sized for n operations of factory f.
func kvPool(f kvFactory, mode pangolin.Mode, n int, policy pangolin.VerifyPolicy, scrubEvery uint64) (*pangolin.Pool, error) {
	need := f.perObj*uint64(n) + uint64(n)*16 // objects + hashmap table slack
	return newPool(mode, geoFor(need), policy, scrubEvery)
}

// kvKeys returns a deterministic shuffled key set.
func kvKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	rng := rand.New(rand.NewSource(12345))
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

// Fig5 reproduces Figure 5: insert and remove throughput for the six
// structures across modes. Shape targets: Pangolin ≈ Pmemobj except
// where transactions modify little of large objects (skiplist, rtree) and
// micro-buffer copying shows; Pangolin-MLP ≈ 95% of Pmemobj-R on average;
// MLPC costs 1.5–15% over MLP, worst for rtree.
func Fig5(w io.Writer, cfg Config) error {
	insert := &Table{Header: append([]string{"structure"}, modeNames()...)}
	remove := &Table{Header: append([]string{"structure"}, modeNames()...)}
	for _, f := range Factories {
		n := min(cfg.KVOps, f.opCap)
		insRow := []string{f.name}
		remRow := []string{f.name}
		for _, mode := range Modes {
			ins, rem, err := fig5Cell(f, mode, n)
			if err != nil {
				return fmt.Errorf("fig5 %s %v: %w", f.name, mode, err)
			}
			insRow = append(insRow, ins)
			remRow = append(remRow, rem)
		}
		insert.Add(insRow...)
		remove.Add(remRow...)
	}
	fmt.Fprintf(w, "\nFigure 5 — key-value inserts (Kops/s), %d ops (rtree/skiplist capped)\n", cfg.KVOps)
	insert.Print(w)
	fmt.Fprintf(w, "\nFigure 5 — key-value removes (Kops/s)\n")
	remove.Print(w)
	return nil
}

func fig5Cell(f kvFactory, mode pangolin.Mode, n int) (string, string, error) {
	pool, err := kvPool(f, mode, n, pangolin.VerifyDefault, 0)
	if err != nil {
		return "", "", err
	}
	defer pool.Close()
	m, err := f.make(pool, n)
	if err != nil {
		return "", "", err
	}
	keys := kvKeys(n)
	start := time.Now()
	for _, k := range keys {
		if err := m.Insert(k, k^0xDEAD); err != nil {
			return "", "", fmt.Errorf("insert %d: %w", k, err)
		}
	}
	insD := time.Since(start)
	start = time.Now()
	for _, k := range keys {
		ok, err := m.Remove(k)
		if err != nil {
			return "", "", fmt.Errorf("remove %d: %w", k, err)
		}
		if !ok {
			return "", "", fmt.Errorf("remove %d: key missing", k)
		}
	}
	remD := time.Since(start)
	return fmtKops(n, insD), fmtKops(n, remD), nil
}
