package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/pangolin-go/pangolin"
)

// Fig3 reproduces Figure 3: single-object transaction latency for
// allocation, overwrite, and deallocation across object sizes and all six
// modes. The paper's shape targets: Pangolin ≈ Pmemobj; Pangolin-MLP
// beats Pmemobj-R except on tiny overwrites; checksums (MLPC) add < ~7%
// over MLP.
func Fig3(w io.Writer, cfg Config) error {
	for _, op := range []string{"alloc", "overwrite", "free"} {
		t := &Table{Header: append([]string{"size(B)"}, modeNames()...)}
		for _, size := range cfg.Sizes {
			row := []string{fmt.Sprintf("%d", size)}
			for _, mode := range Modes {
				d, err := fig3Cell(mode, op, size, cfg.Ops)
				if err != nil {
					return fmt.Errorf("fig3 %s %s %d: %w", mode, op, size, err)
				}
				row = append(row, fmtNs(d, cfg.Ops))
			}
			t.Add(row...)
		}
		fmt.Fprintf(w, "\nFigure 3 — %s latency (us/op)\n", op)
		t.Print(w)
	}
	return nil
}

func modeNames() []string {
	names := make([]string, len(Modes))
	for i, m := range Modes {
		names[i] = m.String()
	}
	return names
}

// fig3Cell measures one (mode, op, size) cell: ops transactions, each
// touching one object of the given size.
func fig3Cell(mode pangolin.Mode, op string, size uint64, ops int) (time.Duration, error) {
	need := (size + 64*1024) * uint64(ops) // generous: slot rounding + metadata
	pool, err := newPool(mode, geoFor(need), pangolin.VerifyDefault, 0)
	if err != nil {
		return 0, err
	}
	defer pool.Close()

	oids := make([]pangolin.OID, ops)
	alloc := func() error {
		for i := range oids {
			err := pool.Run(func(tx *pangolin.Tx) error {
				oid, data, err := tx.Alloc(size, 1)
				if err != nil {
					return err
				}
				data[0] = byte(i) // touch the object like a real constructor
				data[len(data)-1] = byte(i)
				oids[i] = oid
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	switch op {
	case "alloc":
		start := time.Now()
		if err := alloc(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	case "overwrite":
		if err := alloc(); err != nil {
			return 0, err
		}
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = 0xC3
		}
		start := time.Now()
		for i := range oids {
			err := pool.Run(func(tx *pangolin.Tx) error {
				data, err := tx.AddRange(oids[i], 0, size)
				if err != nil {
					return err
				}
				copy(data, buf)
				return nil
			})
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	case "free":
		if err := alloc(); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := range oids {
			if err := pool.Run(func(tx *pangolin.Tx) error { return tx.Free(oids[i]) }); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	return 0, fmt.Errorf("unknown op %q", op)
}
