package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/mbuf"
)

// Recover reproduces §4.6: error detection and correction. It injects
// hardware-style media errors and software scribbles, measures online
// repair latency per 4 KB page (the paper reports 180 µs on a 100 GB
// pool), and demonstrates canary detection of micro-buffer overruns.
func Recover(w io.Writer, cfg Config) error {
	const objSize = 1024
	const objs = 512
	pool, err := newPool(pangolin.ModePangolinMLPC, geoFor(objs*8*1024), pangolin.VerifyDefault, 0)
	if err != nil {
		return err
	}
	defer pool.Close()
	oids := make([]pangolin.OID, objs)
	for i := range oids {
		err := pool.Run(func(tx *pangolin.Tx) error {
			oid, data, err := tx.Alloc(objSize, 1)
			if err != nil {
				return err
			}
			for j := range data {
				data[j] = byte(i + j)
			}
			oids[i] = oid
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Media-error repair latency: poison a page, read through it, check
	// content. Repeat across distinct pages.
	trials := min(cfg.Ops/10+5, 64)
	var totalRepair time.Duration
	for i := 0; i < trials; i++ {
		victim := oids[(i*17)%objs]
		pool.InjectMediaError(victim.Off)
		start := time.Now()
		data, err := pool.Get(victim)
		if err != nil {
			return fmt.Errorf("media-error recovery failed: %w", err)
		}
		totalRepair += time.Since(start)
		idx := (i * 17) % objs
		if data[0] != byte(idx) {
			return fmt.Errorf("recovered data wrong for object %d", idx)
		}
	}
	fmt.Fprintf(w, "\nSection 4.6 — error detection and correction\n")
	fmt.Fprintf(w, "media-error page repair: %v avg over %d pages (paper: ~180 us/page on 100 GB)\n",
		(totalRepair / time.Duration(trials)).Round(time.Microsecond), trials)

	// Scribble detection + repair at micro-buffer open.
	var totalScribble time.Duration
	for i := 0; i < trials; i++ {
		victim := oids[(i*29)%objs]
		pool.InjectScribble(victim.Off+64, 128, int64(i))
		start := time.Now()
		err := pool.Run(func(tx *pangolin.Tx) error {
			_, err := tx.Open(victim) // verify → detect → parity repair
			return err
		})
		if err != nil {
			return fmt.Errorf("scribble recovery failed: %w", err)
		}
		totalScribble += time.Since(start)
	}
	fmt.Fprintf(w, "scribble detect+repair at open: %v avg over %d objects\n",
		(totalScribble / time.Duration(trials)).Round(time.Microsecond), trials)

	// Canary detection of a buffer overrun (§3.2): the transaction must
	// abort without touching NVMM.
	obj, err := pangolin.OpenSingle[[objSize]byte](pool, oids[0])
	if err != nil {
		return err
	}
	over := obj.Data()
	over = over[:cap(over)]
	for i := objSize; i < len(over); i++ {
		over[i] = 0xBD // overrun past the object into the canary
	}
	err = obj.Commit()
	var ce *mbuf.CanaryError
	if !errors.As(err, &ce) {
		return fmt.Errorf("canary did not catch overrun: %w", err)
	}
	fmt.Fprintf(w, "micro-buffer canary: overrun detected, transaction aborted (%v)\n", err)

	// Whole-pool scrub throughput.
	start := time.Now()
	rep, err := pool.Scrub()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "full scrub: %d objects verified in %v (%+v)\n",
		rep.Objects, time.Since(start).Round(time.Microsecond), rep)
	return nil
}
