package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests. Under -short
// (PR CI, especially the -race job) it shrinks further; every pipeline
// still runs end to end.
func tiny() Config {
	cfg := Config{
		Ops:            20,
		KVOps:          150,
		Threads:        []int{1, 2},
		Sizes:          []uint64{64, 1024},
		ScrubIntervals: []uint64{100},
	}
	if testing.Short() {
		cfg.Ops = 6
		cfg.KVOps = 40
		cfg.Threads = []int{2}
		cfg.Sizes = []uint64{64}
	}
	return cfg
}

func TestFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alloc", "overwrite", "free", "Pangolin-MLPC", "Pmemobj-R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "threads") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestFig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"ctree", "rbtree", "btree", "skiplist", "rtree", "hashmap"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing %s:\n%s", s, out)
		}
	}
}

func TestFig6AndTable4Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Conservative") {
		t.Fatalf("output:\n%s", buf.String())
	}
	buf.Reset()
	if err := Table4(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Pmemobj") || !strings.Contains(out, "1.00") {
		t.Fatalf("table4 output:\n%s", out)
	}
	// Conservative mode must report zero vulnerability for every
	// structure.
	lines := strings.Split(out, "\n")
	foundCons := false
	for _, l := range lines {
		if strings.HasPrefix(l, "Conservative") {
			foundCons = true
			if strings.Contains(l, "0.00") == false {
				t.Fatalf("conservative row not zero: %s", l)
			}
		}
	}
	if !foundCons {
		t.Fatal("no Conservative row")
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	if !strings.Contains(buf.String(), "Pangolin-MLP") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "insert") || !strings.Contains(out, "remove") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMemSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Mem(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "zone parity") || !strings.Contains(out, "pool init") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRecoverSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Recover(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"media-error page repair", "scribble", "canary", "scrub"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestXoverSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Xover(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestExtSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Ext(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pmemobj-P") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
