package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// Alloc measures per-operation heap allocation of the group-commit
// write path at several batch depths — the number the pooled-buffer and
// adaptive-commit work drives down, and the in-process counterpart of
// the wire-level budgets `make bench-alloc` gates (bench/
// alloc_budgets.txt). Each row commits the same operation count through
// one shard set via Batch frames of the given depth and reports the
// heap-allocation delta (runtime.MemStats Mallocs / TotalAlloc) divided
// by operations: depth 1 pays the full per-commit transaction cost —
// log persist, fence, parity, line capture — on every op, while deeper
// batches amortize it, which is exactly why the server's pipelining and
// the workers' adaptive commit window aim to keep batches full.
func Alloc(w io.Writer, cfg Config) error {
	ops := cfg.KVOps
	if ops > 200_000 {
		ops = 200_000
	}
	dir, err := os.MkdirTemp("", "pgl-alloc-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	set, err := shard.Create(dir, 2, shard.Options{Pangolin: pangolin.Config{Geometry: geoFor(uint64(ops) * 96)}})
	if err != nil {
		return err
	}
	defer set.Abandon()

	fmt.Fprintf(w, "\nGroup-commit allocation vs batch depth, %d puts per row (2 shards)\n", ops)
	t := &Table{Header: []string{
		"batch depth", "allocs/op", "B/op", "kops/s",
	}}
	for _, depth := range []int{1, 8, 64} {
		batch := make([]shard.BatchOp, depth)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		done := 0
		for k := uint64(0); done < ops; k += uint64(depth) {
			for i := range batch {
				batch[i] = shard.BatchOp{Kind: shard.BatchPut, K: k + uint64(i), V: k}
			}
			for _, r := range set.Batch(batch) {
				if r.Err != nil {
					return fmt.Errorf("depth %d: %w", depth, r.Err)
				}
			}
			done += depth
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		t.Add(
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", float64(after.Mallocs-before.Mallocs)/float64(done)),
			fmt.Sprintf("%.0f", float64(after.TotalAlloc-before.TotalAlloc)/float64(done)),
			fmtKops(done, elapsed),
		)
	}
	t.Print(w)
	return nil
}
