package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/pangolin-go/pangolin"
)

// Fig4 reproduces Figure 4: throughput of concurrent random overwrites
// across object sizes and thread counts, per mode. Shape targets:
// Pangolin-MLP scales at least as well as Pmemobj-R above 64 B (atomic
// parity XOR under shared range-locks admits arbitrary concurrency); at
// 64 B the freeze-flag check costs Pangolin a few percent.
func Fig4(w io.Writer, cfg Config) error {
	for _, size := range cfg.Sizes {
		t := &Table{Header: append([]string{"threads"}, modeNames()...)}
		for _, threads := range cfg.Threads {
			row := []string{fmt.Sprintf("%d", threads)}
			for _, mode := range Modes {
				kops, err := fig4Cell(mode, size, threads, cfg.Ops)
				if err != nil {
					return fmt.Errorf("fig4 %v %dB %dthr: %w", mode, size, threads, err)
				}
				row = append(row, kops)
			}
			t.Add(row...)
		}
		fmt.Fprintf(w, "\nFigure 4 — concurrent overwrite throughput, %d B objects (Kops/s)\n", size)
		t.Print(w)
	}
	return nil
}

// fig4Cell: each thread owns a private set of objects and overwrites them
// in random order (two transactions never modify the same object, per the
// §3.4 contract).
func fig4Cell(mode pangolin.Mode, size uint64, threads, opsPerThread int) (string, error) {
	perThread := 32
	need := (size + 64*1024) * uint64(threads*perThread)
	pool, err := newPool(mode, geoFor(need), pangolin.VerifyDefault, 0)
	if err != nil {
		return "", err
	}
	defer pool.Close()

	oids := make([][]pangolin.OID, threads)
	for t := range oids {
		oids[t] = make([]pangolin.OID, perThread)
		for i := range oids[t] {
			err := pool.Run(func(tx *pangolin.Tx) error {
				var err error
				oids[t][i], _, err = tx.Alloc(size, 1)
				return err
			})
			if err != nil {
				return "", err
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t)))
			buf := make([]byte, size)
			for i := 0; i < opsPerThread; i++ {
				oid := oids[t][rng.Intn(perThread)]
				buf[0] = byte(i)
				err := pool.Run(func(tx *pangolin.Tx) error {
					data, err := tx.AddRange(oid, 0, size)
					if err != nil {
						return err
					}
					copy(data, buf)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return "", err
	}
	return fmtKops(threads*opsPerThread, elapsed), nil
}
