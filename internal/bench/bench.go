// Package bench is the harness that regenerates every table and figure of
// the paper's evaluation (§4). Each experiment prints rows in the shape
// the paper reports; cmd/pglbench drives it from the command line and the
// repository-root bench_test.go exposes the same workloads as testing.B
// benchmarks.
//
// Absolute numbers differ from the paper — the substrate is a simulated
// NVMM device, not Optane silicon — but the comparative shape (which mode
// wins, by roughly what factor, where crossovers fall) is the
// reproduction target. See EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/pangolin-go/pangolin"
)

// Modes lists the Table 2 operation modes in the paper's order.
var Modes = []pangolin.Mode{
	pangolin.ModePmemobj,
	pangolin.ModePangolin,
	pangolin.ModePangolinML,
	pangolin.ModePangolinMLP,
	pangolin.ModePangolinMLPC,
	pangolin.ModePmemobjR,
}

// Config scales the experiments.
type Config struct {
	// Ops is the per-cell operation count for figure 3 style latency
	// measurements.
	Ops int
	// KVOps is the insert/remove count per data structure (the paper
	// uses 1M).
	KVOps int
	// Threads lists the concurrency levels for figure 4.
	Threads []int
	// Sizes lists the object sizes (bytes) swept in figures 3 and 4.
	Sizes []uint64
	// ScrubIntervals lists the "Scrub N" policies of figure 6/table 4.
	ScrubIntervals []uint64
}

// Quick returns a configuration that completes in tens of seconds.
func Quick() Config {
	return Config{
		Ops:            400,
		KVOps:          5000,
		Threads:        []int{1, 2, 4, 8},
		Sizes:          []uint64{64, 256, 1024, 4096, 16384},
		ScrubIntervals: []uint64{1000, 500},
	}
}

// Full returns a paper-scale configuration (1M KV operations).
func Full() Config {
	c := Quick()
	c.Ops = 5000
	c.KVOps = 1_000_000
	c.ScrubIntervals = []uint64{100_000, 50_000}
	return c
}

// geoFor builds a benchmark geometry with at least dataBytes of
// allocatable space. Rows are 256 KB (4 × 64 KB chunks) and zones carry 40
// data rows (10 MB); generous lanes and overflow absorb large
// transactions.
func geoFor(dataBytes uint64) pangolin.Geometry {
	geo := pangolin.Geometry{
		ChunkSize:       64 * 1024,
		ChunksPerRow:    4,
		RowsPerZone:     41,
		NumLanes:        64,
		LaneSize:        64 * 1024,
		OverflowExts:    64,
		OverflowExtSize: 256 * 1024,
		RangeLockBytes:  8 * 1024,
	}
	zoneData := (geo.RowsPerZone - 1) * geo.ChunkSize * geo.ChunksPerRow
	zones := dataBytes/zoneData + 2
	geo.NumZones = zones
	return geo
}

// newPool builds a pool for a benchmark cell. Persistence tracking stays
// on: its bookkeeping plays the role of NVMM write latency.
func newPool(mode pangolin.Mode, geo pangolin.Geometry, policy pangolin.VerifyPolicy, scrubEvery uint64) (*pangolin.Pool, error) {
	return pangolin.Create(pangolin.Config{
		Mode:       mode,
		Geometry:   geo,
		Policy:     policy,
		ScrubEvery: scrubEvery,
	})
}

// Table is a simple column-aligned printer for paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print writes the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// fmtNs formats a duration-per-op in microseconds.
func fmtNs(d time.Duration, ops int) string {
	if ops == 0 {
		return "-"
	}
	us := float64(d.Nanoseconds()) / float64(ops) / 1000
	return fmt.Sprintf("%.2f", us)
}

// fmtKops formats ops-per-second in thousands.
func fmtKops(ops int, d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(ops)/d.Seconds()/1000)
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
