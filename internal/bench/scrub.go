package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// Scrub measures the incremental maintenance subsystem: the cost of one
// bounded scrub step across step-size caps (the freeze window a step
// imposes on the pool), and what running the background scheduler does
// to commit latency on a loaded shard set — commit p99 with the
// scrubber off vs on. The step-latency table is the bound the docs
// promise ("each step's freeze window is bounded by the per-step
// caps"); the p99 table is the MTTR-vs-overhead trade an operator tunes
// with pglserve -scrub-interval.
func Scrub(w io.Writer, cfg Config) error {
	if err := scrubStepLatency(w, cfg); err != nil {
		return err
	}
	return scrubCommitImpact(w, cfg)
}

// scrubStepLatency populates one pool, injects scattered corruption,
// and steps a scrubber through full passes, reporting per-step latency
// percentiles for several step-size caps.
func scrubStepLatency(w io.Writer, cfg Config) error {
	t := &Table{Header: []string{"objs/step", "steps/pass", "step p50", "step p99", "step max", "repaired"}}
	for _, objsPerStep := range []int{16, 64, 256} {
		pool, err := newPool(pangolin.ModePangolinMLPC, geoFor(64<<20), pangolin.VerifyDefault, 0)
		if err != nil {
			return err
		}
		nObjs := cfg.KVOps / 4
		if nObjs < 256 {
			nObjs = 256
		}
		oids := make([]pangolin.OID, 0, nObjs)
		for i := 0; i < nObjs; i++ {
			err := pool.Run(func(tx *pangolin.Tx) error {
				oid, _, err := tx.Alloc(64, 1)
				if err == nil {
					oids = append(oids, oid)
				}
				return err
			})
			if err != nil {
				pool.Close()
				return err
			}
		}
		// Scatter corruption: 1 in 64 objects scribbled.
		for i := 0; i < len(oids); i += 64 {
			pool.InjectRandomFault(int64(i) * 2) // even: scribble
		}
		sc := pool.NewScrubber(pangolin.ScrubberConfig{MaxObjectsPerStep: objsPerStep})
		var lats []time.Duration
		total := pangolin.ScrubReport{ChecksumsVerified: true}
		steps := 0
		for {
			t0 := time.Now()
			rep, done, err := sc.Step()
			lats = append(lats, time.Since(t0))
			if err != nil {
				pool.Close()
				return err
			}
			total.Add(rep)
			steps++
			if done {
				break
			}
		}
		pool.Close()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		t.Add(fmt.Sprintf("%d", objsPerStep), fmt.Sprintf("%d", steps),
			pct(0.50).String(), pct(0.99).String(), pct(1).String(),
			fmt.Sprintf("%d", total.Fixed()))
	}
	fmt.Fprintf(w, "\nIncremental scrub — per-step freeze window by step cap (%d-object pool, 1/64 corrupted)\n", max(cfg.KVOps/4, 256))
	t.Print(w)
	return nil
}

// scrubCommitImpact runs a put-heavy closed loop against a shard.Set
// with the maintenance scheduler off vs on, reporting commit p99: the
// client-visible cost of scrubbing between group commits.
func scrubCommitImpact(w io.Writer, cfg Config) error {
	t := &Table{Header: []string{"scrubber", "ops/s", "p50", "p99", "scrub_steps", "bg_repairs", "backoffs"}}
	for _, on := range []bool{false, true} {
		dir, err := os.MkdirTemp("", "pgl-scrubbench")
		if err != nil {
			return err
		}
		opts := shard.Options{}
		if on {
			opts.ScrubInterval = time.Millisecond
		}
		s, err := shard.Create(dir, 4, opts)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		var claimed atomic.Int64
		lats := make([]time.Duration, 0, cfg.KVOps)
		latc := make(chan []time.Duration, 4)
		errc := make(chan error, 4)
		start := time.Now()
		for g := 0; g < 4; g++ {
			go func(g int) {
				mine := make([]time.Duration, 0, cfg.KVOps/4+1)
				k := uint64(g) * 7919
				for {
					if claimed.Add(1) > int64(cfg.KVOps) {
						break
					}
					k = k*2654435761 + 1
					t0 := time.Now()
					if err := s.Put(k%(1<<14), k); err != nil {
						errc <- err
						break
					}
					mine = append(mine, time.Since(t0))
				}
				latc <- mine
			}(g)
		}
		for g := 0; g < 4; g++ {
			lats = append(lats, <-latc...)
		}
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			s.Abandon()
			os.RemoveAll(dir)
			return err
		default:
		}
		st := s.Stats()
		s.Abandon()
		os.RemoveAll(dir)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		name := "off"
		if on {
			name = "on (1ms)"
		}
		t.Add(name, fmt.Sprintf("%.0f", float64(len(lats))/elapsed.Seconds()),
			pct(0.50).String(), pct(0.99).String(),
			fmt.Sprintf("%d", st.ScrubSteps), fmt.Sprintf("%d", st.BgRepairs),
			fmt.Sprintf("%d", st.ScrubBackoffs))
	}
	fmt.Fprintf(w, "\nCommit latency with the maintenance scheduler off vs on (4 shards, 4 writers, %d puts)\n", cfg.KVOps)
	t.Print(w)
	return nil
}
