package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// Mem reproduces §4.2: NVMM storage overheads of parity vs. replication,
// the one-time pool-initialization (zeroing) latency, and micro-buffer
// DRAM usage. Shape targets: parity ≈ 1% of the pool with 100 chunk rows
// vs. 100% for Pmemobj-R; metadata well under 1%; µ-buffer DRAM bounded
// by in-flight transaction sizes.
func Mem(w io.Writer, cfg Config) error {
	geo := pangolin.PaperGeometry(4) // 100 chunk rows per zone: the paper's ratio
	poolSize := geo.PoolSize()
	parityBytes := geo.NumZones * geo.RowSize()
	metaBytes := geo.ZonesOff() + // headers, lanes, overflow (both copies)
		geo.NumZones*2*4096 + // zone header pages
		geo.NumZones*geo.CMChunks()*geo.ChunkSize // CM arrays

	t := &Table{Header: []string{"component", "bytes", "% of pool"}}
	pct := func(n uint64) string { return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(poolSize)) }
	t.Add("pool (4 zones, 100 rows)", fmtBytes(poolSize), "100%")
	t.Add("zone parity (Pangolin-MLP)", fmtBytes(parityBytes), pct(parityBytes))
	t.Add("metadata+logs (replicated)", fmtBytes(metaBytes), pct(metaBytes))
	t.Add("replica pool (Pmemobj-R)", fmtBytes(poolSize), "100%")
	fmt.Fprintf(w, "\nSection 4.2 — NVMM storage requirements\n")
	t.Print(w)

	// Pool initialization: zeroing + format + initial parity (the paper
	// measures 130 s for a 100 GB pool; ours scales with pool size).
	dev := nvm.New(poolSize, nvm.Options{TrackPersistence: true})
	start := time.Now()
	p, err := pangolin.CreateOnDevice(dev, pangolin.Config{
		Mode: pangolin.ModePangolinMLPC, Geometry: geo, Zero: true,
	})
	if err != nil {
		return err
	}
	initD := time.Since(start)
	fmt.Fprintf(w, "\npool init (zero+format+parity) for %s: %v (%.1f MiB/s)\n",
		fmtBytes(poolSize), initD.Round(time.Millisecond),
		float64(poolSize)/(1<<20)/initD.Seconds())

	// DRAM: µ-buffer high-water during a KV workload.
	f := Factories[1] // rbtree: multi-object transactions
	m, err := f.make(p, cfg.KVOps)
	if err != nil {
		p.Close()
		return err
	}
	n := min(cfg.KVOps, 20_000)
	for _, k := range kvKeys(n) {
		if err := m.Insert(k, k); err != nil {
			p.Close()
			return err
		}
	}
	hw := p.Stats().MBufHighWater.Load()
	fmt.Fprintf(w, "micro-buffer DRAM high-water during %d rbtree inserts: %s\n",
		n, fmtBytes(uint64(hw)))
	p.Close()
	return nil
}
