package nvm

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDev(t *testing.T, size uint64) *Device {
	t.Helper()
	return New(size, Options{TrackPersistence: true})
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newTestDev(t, 64*1024)
	data := []byte("pangolin nvm device round trip")
	d.WriteAt(1000, data)
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 1000); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestSizeRoundsToPage(t *testing.T) {
	d := New(PageSize+1, Options{})
	if d.Size() != 2*PageSize {
		t.Fatalf("size = %d, want %d", d.Size(), 2*PageSize)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDev(t, PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range write")
		}
	}()
	d.WriteAt(PageSize-1, []byte{1, 2})
}

func TestUnalignedAtomicPanics(t *testing.T) {
	d := newTestDev(t, PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned Load64")
		}
	}()
	d.Load64(3)
}

func TestCrashRevertsUnflushedWrites(t *testing.T) {
	d := newTestDev(t, 64*1024)
	d.WriteAt(0, []byte("persistent"))
	d.Persist(0, 10)
	d.WriteAt(0, []byte("transientX"))
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 10)
	if err := crashed.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persistent" {
		t.Fatalf("after crash got %q, want %q", got, "persistent")
	}
	// The original device is untouched.
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "transientX" {
		t.Fatalf("source device changed: got %q", got)
	}
}

func TestCrashKeepsPersistedWrites(t *testing.T) {
	d := newTestDev(t, 64*1024)
	d.WriteAt(128, []byte("abc"))
	d.Flush(128, 3)
	d.Fence()
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 3)
	if err := crashed.ReadAt(got, 128); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("persisted write lost: got %q", got)
	}
}

func TestFlushWithoutFenceNotPersistent(t *testing.T) {
	d := newTestDev(t, 64*1024)
	d.WriteAt(0, []byte{7})
	d.Persist(0, 1)
	d.WriteAt(0, []byte{9})
	d.Flush(0, 1) // no fence
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 1)
	if err := crashed.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("flushed-but-unfenced line persisted in strict mode: got %d", got[0])
	}
}

func TestWriteAfterFlushInvalidatesFlush(t *testing.T) {
	d := newTestDev(t, 64*1024)
	d.WriteAt(0, []byte{1})
	d.Persist(0, 1)
	d.WriteAt(0, []byte{2})
	d.Flush(0, 1)
	d.WriteAt(0, []byte{3}) // dirties the line again before the fence
	d.Fence()
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 1)
	if err := crashed.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	// The fence only covered the flush of value 2, but the line was
	// re-dirtied with 3 before the fence; value 3 must not be considered
	// persistent. Last persistent image is 1.
	if got[0] != 1 {
		t.Fatalf("got %d, want 1 (re-dirtied line must revert to last persistent image)", got[0])
	}
}

func TestWriteNTNeedsFence(t *testing.T) {
	d := newTestDev(t, 64*1024)
	d.WriteAt(64, []byte{5})
	d.Persist(64, 1)
	d.WriteNT(64, []byte{6})
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 1)
	if err := crashed.ReadAt(got, 64); err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("NT store persisted without fence: got %d", got[0])
	}
	d.Fence()
	crashed = d.CrashCopy(CrashStrict, 0)
	if err := crashed.ReadAt(got, 64); err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 {
		t.Fatalf("NT store + fence lost: got %d", got[0])
	}
}

func TestCrashEvictRandomIsLineGranular(t *testing.T) {
	d := newTestDev(t, 64*1024)
	// Two separate lines, both unflushed.
	d.WriteAt(0, bytes.Repeat([]byte{0xAA}, CacheLineSize))
	d.WriteAt(CacheLineSize, bytes.Repeat([]byte{0xBB}, CacheLineSize))
	sawKept, sawReverted := false, false
	for seed := int64(0); seed < 64 && !(sawKept && sawReverted); seed++ {
		c := d.CrashCopy(CrashEvictRandom, seed)
		b := make([]byte, CacheLineSize)
		if err := c.ReadAt(b, 0); err != nil {
			t.Fatal(err)
		}
		allA := true
		allZ := true
		for _, v := range b {
			if v != 0xAA {
				allA = false
			}
			if v != 0 {
				allZ = false
			}
		}
		if !allA && !allZ {
			t.Fatalf("torn line after crash: %v", b)
		}
		if allA {
			sawKept = true
		}
		if allZ {
			sawReverted = true
		}
	}
	if !sawKept || !sawReverted {
		t.Fatalf("random eviction never exercised both outcomes (kept=%v reverted=%v)", sawKept, sawReverted)
	}
}

func TestPoisonReadFails(t *testing.T) {
	d := newTestDev(t, 8*PageSize)
	d.WriteAt(2*PageSize+100, []byte("data"))
	d.Poison(2*PageSize + 50)
	buf := make([]byte, 4)
	err := d.ReadAt(buf, 2*PageSize+100)
	var pe *PoisonError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PoisonError, got %v", err)
	}
	if pe.Off != 2*PageSize {
		t.Fatalf("fault offset = %#x, want %#x", pe.Off, 2*PageSize)
	}
	// Reads elsewhere still work.
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("unrelated read failed: %v", err)
	}
	// Range straddling the poisoned page fails too.
	err = d.ReadAt(make([]byte, 2*PageSize), PageSize)
	if !errors.As(err, &pe) {
		t.Fatalf("straddling read should fault, got %v", err)
	}
}

func TestPoisonDestroysData(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.WriteAt(PageSize, []byte{1, 2, 3})
	d.Poison(PageSize)
	if !d.IsPoisoned(PageSize + 10) {
		t.Fatal("page not poisoned")
	}
	// Direct media view shows zeros: the data is gone.
	s := d.Slice(PageSize, 3)
	if s[0] != 0 || s[1] != 0 || s[2] != 0 {
		t.Fatalf("poisoned page retains data: %v", s[:3])
	}
}

func TestRepairPageClearsPoison(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.Poison(PageSize)
	repaired := bytes.Repeat([]byte{0x5A}, PageSize)
	if err := d.RepairPage(PageSize+123, repaired); err != nil {
		t.Fatal(err)
	}
	if d.IsPoisoned(PageSize) {
		t.Fatal("poison not cleared")
	}
	got := make([]byte, PageSize)
	if err := d.ReadAt(got, PageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, repaired) {
		t.Fatal("repair data not written")
	}
	// Repairs are persistent.
	crashed := d.CrashCopy(CrashStrict, 0)
	if err := crashed.ReadAt(got, PageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, repaired) {
		t.Fatal("repair did not survive crash")
	}
}

func TestRepairPageWrongSize(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	if err := d.RepairPage(0, make([]byte, 100)); err == nil {
		t.Fatal("expected error for short repair buffer")
	}
}

func TestPoisonSurvivesCrash(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.Poison(0)
	crashed := d.CrashCopy(CrashStrict, 0)
	if !crashed.IsPoisoned(0) {
		t.Fatal("poison lost across crash")
	}
	pages := crashed.PoisonedPages()
	if len(pages) != 1 || pages[0] != 0 {
		t.Fatalf("PoisonedPages = %v", pages)
	}
}

func TestScribbleBypassesTracking(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.WriteAt(0, []byte("good"))
	d.Persist(0, 4)
	rng := rand.New(rand.NewSource(1))
	d.Scribble(0, 4, rng)
	got := make([]byte, 4)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) == "good" {
		t.Fatal("scribble did not change data")
	}
	// Scribbles are media damage: they survive a crash (no revert).
	crashed := d.CrashCopy(CrashStrict, 0)
	after := make([]byte, 4)
	if err := crashed.ReadAt(after, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, got) {
		t.Fatalf("scribble reverted by crash: %v vs %v", after, got)
	}
}

func TestAtomics(t *testing.T) {
	d := newTestDev(t, PageSize)
	d.Store64(16, 0xDEADBEEF)
	if v := d.Load64(16); v != 0xDEADBEEF {
		t.Fatalf("Load64 = %#x", v)
	}
	d.Xor64(16, 0xFFFF)
	if v := d.Load64(16); v != 0xDEADBEEF^0xFFFF {
		t.Fatalf("Xor64 result = %#x", v)
	}
}

func TestConcurrentXor64(t *testing.T) {
	d := newTestDev(t, PageSize)
	const workers = 8
	const iters = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := uint64(1) << uint(w)
			for i := 0; i < iters; i++ {
				d.Xor64(0, v)
			}
		}(w)
	}
	wg.Wait()
	// Each worker XORs its bit an even number of times: result must be 0.
	if v := d.Load64(0); v != 0 {
		t.Fatalf("lost atomic XOR updates: residual %#x", v)
	}
}

func TestConcurrentDisjointWritesAndPersist(t *testing.T) {
	d := newTestDev(t, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 64 * 1024
			buf := bytes.Repeat([]byte{byte(w + 1)}, 256)
			for i := 0; i < 100; i++ {
				off := base + uint64(i)*256
				d.WriteAt(off, buf)
				d.Persist(off, 256)
			}
		}(w)
	}
	wg.Wait()
	if n := d.DirtyLines(); n != 0 {
		t.Fatalf("%d dirty lines after everyone persisted", n)
	}
	crashed := d.CrashCopy(CrashStrict, 0)
	for w := 0; w < 8; w++ {
		got := make([]byte, 256)
		if err := crashed.ReadAt(got, uint64(w)*64*1024); err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != byte(w+1) {
				t.Fatalf("worker %d data lost", w)
			}
		}
	}
}

func TestMarkDirtySliceProtocol(t *testing.T) {
	d := newTestDev(t, PageSize)
	d.WriteAt(0, []byte("old!"))
	d.Persist(0, 4)
	// Direct-write protocol used by the pmemobj baseline.
	d.MarkDirty(0, 4)
	copy(d.Slice(0, 4), "new!")
	crashed := d.CrashCopy(CrashStrict, 0)
	got := make([]byte, 4)
	if err := crashed.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "old!" {
		t.Fatalf("unpersisted direct write survived crash: %q", got)
	}
	d.Persist(0, 4)
	crashed = d.CrashCopy(CrashStrict, 0)
	if err := crashed.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "new!" {
		t.Fatalf("persisted direct write lost: %q", got)
	}
}

func TestPersistHook(t *testing.T) {
	d := newTestDev(t, PageSize)
	calls := 0
	d.SetPersistHook(func() { calls++ })
	d.WriteAt(0, []byte{1})
	d.Persist(0, 1) // flush + fence = 2 hook calls
	if calls != 2 {
		t.Fatalf("hook calls = %d, want 2", calls)
	}
	d.SetPersistHook(nil)
	d.Persist(0, 1)
	if calls != 2 {
		t.Fatal("hook ran after removal")
	}
}

func TestStatsCounting(t *testing.T) {
	d := newTestDev(t, PageSize)
	d.WriteAt(0, make([]byte, 100))
	d.Persist(0, 100)
	if err := d.ReadAt(make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes.Load() == 0 || s.BytesWritten.Load() != 100 {
		t.Fatalf("write stats: %d ops %d bytes", s.Writes.Load(), s.BytesWritten.Load())
	}
	if s.BytesRead.Load() != 50 {
		t.Fatalf("read stats: %d bytes", s.BytesRead.Load())
	}
	if s.Flushes.Load() != 1 || s.Fences.Load() != 1 {
		t.Fatalf("flush/fence stats: %d/%d", s.Flushes.Load(), s.Fences.Load())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := newTestDev(t, 8*PageSize)
	d.WriteAt(100, []byte("durable"))
	d.Persist(100, 7)
	d.WriteAt(200, []byte("volatile")) // not persisted: must not survive snapshot
	d.Poison(3 * PageSize)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	nd, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Size() != d.Size() {
		t.Fatalf("size mismatch: %d vs %d", nd.Size(), d.Size())
	}
	got := make([]byte, 7)
	if err := nd.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("durable data lost: %q", got)
	}
	got8 := make([]byte, 8)
	if err := nd.ReadAt(got8, 200); err != nil {
		t.Fatal(err)
	}
	if string(got8) == "volatile" {
		t.Fatal("unpersisted data leaked into snapshot")
	}
	if !nd.IsPoisoned(3 * PageSize) {
		t.Fatal("poison set lost in snapshot")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot stream"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.WriteAt(0, []byte("file-backed"))
	d.Persist(0, 11)
	path := t.TempDir() + "/pool.img"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	nd, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if err := nd.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "file-backed" {
		t.Fatalf("got %q", got)
	}
}

// Property: a persisted write always survives a crash, under any crash mode
// and seed; an unpersisted overwrite never corrupts the persisted image in
// strict mode.
func TestPersistedAlwaysSurvives(t *testing.T) {
	f := func(off16 uint16, val byte, seed int64) bool {
		d := New(1<<20, Options{TrackPersistence: true})
		off := uint64(off16) // < size
		d.WriteAt(off, []byte{val})
		d.Persist(off, 1)
		for _, mode := range []CrashMode{CrashStrict, CrashEvictRandom} {
			c := d.CrashCopy(mode, seed)
			b := make([]byte, 1)
			if err := c.ReadAt(b, off); err != nil {
				return false
			}
			if b[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a random-eviction crash, every line is either entirely its
// old or entirely its new image — no intra-line tearing.
func TestNoIntraLineTearing(t *testing.T) {
	f := func(seed int64, nLines uint8) bool {
		n := int(nLines%16) + 1
		d := New(1<<16, Options{TrackPersistence: true})
		oldImg := bytes.Repeat([]byte{0x11}, CacheLineSize)
		newImg := bytes.Repeat([]byte{0x22}, CacheLineSize)
		for i := 0; i < n; i++ {
			d.WriteAt(uint64(i)*CacheLineSize, oldImg)
		}
		d.Persist(0, uint64(n)*CacheLineSize)
		for i := 0; i < n; i++ {
			d.WriteAt(uint64(i)*CacheLineSize, newImg)
		}
		c := d.CrashCopy(CrashEvictRandom, seed)
		for i := 0; i < n; i++ {
			got := make([]byte, CacheLineSize)
			if err := c.ReadAt(got, uint64(i)*CacheLineSize); err != nil {
				return false
			}
			if !bytes.Equal(got, oldImg) && !bytes.Equal(got, newImg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSaveFileTempHygiene: the temp-write-then-rename must never leave
// its .tmp file behind — neither after a successful save (renamed away)
// nor after a failed one (removed on the error path).
func TestSaveFileTempHygiene(t *testing.T) {
	d := newTestDev(t, 4*PageSize)
	d.WriteAt(0, []byte("hygiene"))
	d.Persist(0, 7)
	dir := t.TempDir()

	path := filepath.Join(dir, "pool.img")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after successful save: stat err = %v", err)
	}

	// Error path: the final rename fails because the target is a
	// directory; the temp file must still be cleaned up.
	blocked := filepath.Join(dir, "blocked.img")
	if err := os.Mkdir(blocked, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveFile(blocked); err == nil {
		t.Fatal("SaveFile onto a directory should fail")
	}
	if _, err := os.Stat(blocked + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failed save: stat err = %v", err)
	}
}
