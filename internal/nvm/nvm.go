// Package nvm simulates byte-addressable non-volatile main memory (NVMM).
//
// The paper's testbed is Intel Optane DC Persistent Memory exposed to
// user-space through DAX-mmap. This package provides the closest synthetic
// equivalent: a byte-addressable Device with an explicit persistence model
// that mirrors the x86 primitives the paper relies on:
//
//   - stores become visible immediately but are not persistent,
//   - Flush (CLWB analog) schedules cache lines for write-back,
//   - Fence (SFENCE analog) makes previously flushed lines persistent,
//   - WriteNT models non-temporal stores (visible and flushed, needs Fence).
//
// Unlike real hardware, the simulation can *demonstrate* crashes: CrashCopy
// produces the device state after a power failure, reverting lines that were
// never made persistent (or, in CrashEvictRandom mode, keeping an arbitrary
// subset of them — legal on real hardware because caches may evict lines at
// any time). Crash-consistency tests sweep crash points systematically via
// the persist hook.
//
// The package also models the error machinery of §2.2 of the paper:
//
//   - Poison marks a 4 KB page as having an uncorrectable media error;
//     subsequent reads fail with *PoisonError (the SIGBUS analog),
//   - RepairPage rewrites a full page and clears the poison (the ACPI
//     bad-page remap analog),
//   - Scribble overwrites media directly, bypassing the library, emulating
//     software corruption from wild pointers or buffer overruns.
package nvm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// PageSize is the media-error granularity. Linux manages memory
	// failures at page granularity; Pangolin assumes an error poisons a
	// 4 KB page (§2.2).
	PageSize = 4096

	// CacheLineSize is the persistence granularity: flushes and crash
	// revert operate on 64-byte lines, matching x86 CLWB.
	CacheLineSize = 64
)

// CrashMode selects how a simulated power failure treats lines that were
// written but never made persistent (never flushed, or flushed but not yet
// fenced).
type CrashMode int

const (
	// CrashStrict reverts every non-persistent line to its last
	// persistent image. This is the most adversarial deterministic
	// outcome.
	CrashStrict CrashMode = iota

	// CrashEvictRandom independently keeps or reverts each
	// non-persistent line, modeling arbitrary cache evictions. Recovery
	// must tolerate every such subset.
	CrashEvictRandom
)

// PoisonError reports a load from a poisoned (uncorrectable media error)
// page. It is the simulation's stand-in for the SIGBUS an MCE would raise;
// Off is the faulting address the paper's signal handler would extract.
type PoisonError struct {
	// Off is the byte offset of the start of the poisoned page.
	Off uint64
}

func (e *PoisonError) Error() string {
	return fmt.Sprintf("nvm: uncorrectable media error at page offset %#x", e.Off)
}

// Stats counts device operations. All fields are updated atomically and may
// be read concurrently with device use.
type Stats struct {
	Reads        atomic.Uint64
	Writes       atomic.Uint64
	BytesRead    atomic.Uint64
	BytesWritten atomic.Uint64
	Flushes      atomic.Uint64
	Fences       atomic.Uint64
	BytesFlushed atomic.Uint64
	PoisonFaults atomic.Uint64
}

// lineRec tracks one dirty cache line: the last persistent image of its
// bytes and whether a flush has been issued since the last store.
type lineRec struct {
	old     [CacheLineSize]byte
	flushed bool
}

type shard struct {
	mu      sync.Mutex
	lines   map[uint64]*lineRec
	flushed []uint64   // line indices with a flush issued; drained by Fence
	free    []*lineRec // retired recs reused by capture; bounded by maxFreeRecs
}

// maxFreeRecs bounds each shard's lineRec free list (64 shards × 256 recs
// × ~72 B ≈ 1.2 MB worst case). Fence retires a line's rec here instead
// of dropping it to the GC, and capture reuses it for the next dirty
// line — the commit hot path then tracks lines with no allocation at all
// once the free lists warm up.
const maxFreeRecs = 256

// getRec pops a free rec (resetting it for reuse) or allocates. Caller
// holds s.mu.
func (s *shard) getRec() *lineRec {
	if n := len(s.free); n > 0 {
		rec := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		rec.flushed = false
		return rec
	}
	return &lineRec{}
}

// putRec retires a rec for reuse. Caller holds s.mu and must have removed
// every reference to rec from s.lines.
func (s *shard) putRec(rec *lineRec) {
	if len(s.free) < maxFreeRecs {
		s.free = append(s.free, rec)
	}
}

const numShards = 64

// Device is a simulated NVMM module. The zero value is not usable; create
// devices with New.
//
// Concurrency: distinct byte ranges may be written concurrently. The
// persistence-tracking structures are internally synchronized. Overlapping
// concurrent plain writes race exactly as they would on real memory; use the
// atomic 8-byte operations for shared words.
type Device struct {
	size  uint64
	words []uint64 // backing store; kept as words to guarantee alignment
	mem   []byte   // byte view of words

	track  bool
	shards [numShards]*shard
	// flushedShards has bit i set when shard i holds flushed-but-
	// unfenced lines, so Fence visits only dirty shards.
	flushedShards atomic.Uint64

	poisonMu sync.RWMutex
	poisoned map[uint64]struct{} // page indices
	nPoison  atomic.Int64

	// persistHook, when set, runs before every Flush and Fence takes
	// effect. Crash-sweep tests use it to stop the world at a chosen
	// persistence point.
	persistHook atomic.Pointer[func()]

	stats Stats
}

// Options configures a Device.
type Options struct {
	// TrackPersistence enables per-line dirty tracking so CrashCopy can
	// compute post-crash states. Disabling it makes Flush/Fence pure
	// counters; use only for throughput experiments that never simulate
	// crashes.
	TrackPersistence bool
}

// New creates a zeroed device of the given size in bytes, rounded up to a
// whole page. Persistence tracking is enabled unless opts disables it.
func New(size uint64, opts Options) *Device {
	size = (size + PageSize - 1) &^ uint64(PageSize-1)
	d := &Device{
		size:     size,
		words:    make([]uint64, size/8),
		track:    opts.TrackPersistence,
		poisoned: make(map[uint64]struct{}),
	}
	d.mem = unsafe.Slice((*byte)(unsafe.Pointer(&d.words[0])), size)
	for i := range d.shards {
		d.shards[i] = &shard{lines: make(map[uint64]*lineRec)}
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Stats returns the device's operation counters.
func (d *Device) Stats() *Stats { return &d.stats }

// SetPersistHook installs fn to run before each Flush and Fence. A nil fn
// removes the hook. Intended for crash-point sweeps in tests.
func (d *Device) SetPersistHook(fn func()) {
	if fn == nil {
		d.persistHook.Store(nil)
		return
	}
	d.persistHook.Store(&fn)
}

func (d *Device) runHook() {
	if p := d.persistHook.Load(); p != nil {
		(*p)()
	}
}

func (d *Device) checkRange(off, n uint64) {
	if off+n < off || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%#x,%#x) out of range (size %#x)", off, off+n, d.size))
	}
}

// lineShard maps a cache-line index to its tracking shard. Consecutive
// groups of 8 lines (512 B) share a shard so range operations take few
// locks.
func lineShard(line uint64) uint64 { return (line >> 3) % numShards }

// capture records the current (persistent) image of every line in
// [off, off+n) that is not already tracked, and marks those lines dirty.
func (d *Device) capture(off, n uint64) {
	if !d.track || n == 0 {
		return
	}
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	var cur *shard
	curIdx := uint64(numShards) // sentinel: no shard locked
	for line := first; line <= last; line++ {
		si := lineShard(line)
		if si != curIdx {
			if cur != nil {
				cur.mu.Unlock()
			}
			cur = d.shards[si]
			cur.mu.Lock()
			curIdx = si
		}
		rec, ok := cur.lines[line]
		if !ok {
			rec = cur.getRec()
			copy(rec.old[:], d.mem[line*CacheLineSize:(line+1)*CacheLineSize])
			cur.lines[line] = rec
		} else {
			rec.flushed = false // overwritten since last flush
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
}

// ReadAt copies len(buf) bytes at off into buf. It fails with *PoisonError
// if any page in the range is poisoned, without transferring data — the
// analog of a load taking a machine-check exception.
func (d *Device) ReadAt(buf []byte, off uint64) error {
	n := uint64(len(buf))
	d.checkRange(off, n)
	if err := d.CheckPoison(off, n); err != nil {
		return err
	}
	copy(buf, d.mem[off:off+n])
	d.stats.Reads.Add(1)
	d.stats.BytesRead.Add(n)
	return nil
}

// WriteAt stores data at off. The store is immediately visible but not
// persistent until flushed and fenced.
func (d *Device) WriteAt(off uint64, data []byte) {
	n := uint64(len(data))
	d.checkRange(off, n)
	d.capture(off, n)
	copy(d.mem[off:off+n], data)
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(n)
}

// WriteNT stores data at off with non-temporal semantics: the affected
// lines are treated as already flushed (a Fence is still required for
// persistence). Pangolin uses NT stores for object write-back (§4.3).
func (d *Device) WriteNT(off uint64, data []byte) {
	d.WriteAt(off, data)
	d.markFlushed(off, uint64(len(data)))
	d.stats.Flushes.Add(1)
	d.stats.BytesFlushed.Add(uint64(len(data)))
}

// Memset fills [off, off+n) with b.
func (d *Device) Memset(off uint64, b byte, n uint64) {
	d.checkRange(off, n)
	d.capture(off, n)
	s := d.mem[off : off+n]
	for i := range s {
		s[i] = b
	}
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(n)
}

// ZeroAll zeroes the entire device and makes the zeros immediately
// persistent, discarding all line tracking. Pool creation uses it: the
// prior contents are irrelevant (a crash mid-create simply means no pool),
// so there is no point keeping gigabytes of undo images for the wipe.
func (d *Device) ZeroAll() {
	for i := range d.words {
		d.words[i] = 0
	}
	if d.track {
		for _, s := range d.shards {
			s.mu.Lock()
			clear(s.lines)
			s.flushed = s.flushed[:0]
			s.mu.Unlock()
		}
		d.flushedShards.Store(0)
	}
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(d.size)
}

// Slice returns a direct view of [off, off+n). It performs no poison check
// and no persistence tracking: callers that mutate through the view must
// call MarkDirty first (before the mutation) and Persist afterwards, and
// callers that read must call CheckPoison themselves. The pmemobj baseline
// uses mutable views (direct DAX writes); Pangolin itself only reads
// through views.
func (d *Device) Slice(off, n uint64) []byte {
	d.checkRange(off, n)
	return d.mem[off : off+n : off+n]
}

// MarkDirty captures the persistent images of [off, off+n) before a caller
// mutates the range through a Slice view.
func (d *Device) MarkDirty(off, n uint64) {
	d.checkRange(off, n)
	d.capture(off, n)
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(n)
}

func (d *Device) markFlushed(off, n uint64) {
	if !d.track || n == 0 {
		return
	}
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	var cur *shard
	curIdx := uint64(numShards)
	for line := first; line <= last; line++ {
		si := lineShard(line)
		if si != curIdx {
			if cur != nil {
				cur.mu.Unlock()
			}
			cur = d.shards[si]
			cur.mu.Lock()
			curIdx = si
		}
		if rec, ok := cur.lines[line]; ok && !rec.flushed {
			rec.flushed = true
			cur.flushed = append(cur.flushed, line)
			d.flushedShards.Or(1 << si)
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
}

// Flush issues write-backs (CLWB) for every cache line overlapping
// [off, off+n). Lines become persistent only after a subsequent Fence.
func (d *Device) Flush(off, n uint64) {
	d.checkRange(off, n)
	d.runHook()
	d.markFlushed(off, n)
	d.stats.Flushes.Add(1)
	d.stats.BytesFlushed.Add(n)
}

// Fence makes every previously flushed line persistent (SFENCE). Only
// shards holding flushed lines are visited, keeping the simulated fence
// near the cost of the real (per-core) instruction.
func (d *Device) Fence() {
	d.runHook()
	d.stats.Fences.Add(1)
	if !d.track {
		return
	}
	pending := d.flushedShards.Swap(0)
	for pending != 0 {
		i := uint(0)
		for ; i < numShards; i++ {
			if pending&(1<<i) != 0 {
				break
			}
		}
		pending &^= 1 << i
		s := d.shards[i]
		s.mu.Lock()
		for _, line := range s.flushed {
			if rec, ok := s.lines[line]; ok && rec.flushed {
				delete(s.lines, line)
				s.putRec(rec)
			}
		}
		s.flushed = s.flushed[:0]
		s.mu.Unlock()
	}
}

// Persist flushes [off, off+n) and fences: the common "make this range
// durable now" operation (pmemobj_persist analog).
func (d *Device) Persist(off, n uint64) {
	d.Flush(off, n)
	d.Fence()
}

// word returns a pointer to the 8-byte word at off, which must be 8-aligned.
func (d *Device) word(off uint64) *uint64 {
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned 8-byte access at %#x", off))
	}
	d.checkRange(off, 8)
	return &d.words[off/8]
}

// Load64 atomically loads the 8-byte word at off (must be 8-aligned).
// Unlike ReadAt it does not fail on poison: callers of the atomic API manage
// metadata words whose pages are replicated rather than parity-protected.
func (d *Device) Load64(off uint64) uint64 {
	return atomic.LoadUint64(d.word(off))
}

// Store64 atomically stores v at off (8-aligned). x86 guarantees aligned
// 8-byte stores update NVMM atomically (§2.3); this is the primitive
// libpmemobj's atomic-style updates and Pangolin's commit flags rely on.
func (d *Device) Store64(off uint64, v uint64) {
	d.capture(off, 8)
	atomic.StoreUint64(d.word(off), v)
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(8)
}

// Xor64 atomically XORs v into the word at off (8-aligned), the analog of
// the atomic XOR instruction Pangolin uses for lock-free small parity
// updates (§3.5).
func (d *Device) Xor64(off uint64, v uint64) {
	d.capture(off, 8)
	d.xorWord(off, v)
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(8)
}

func (d *Device) xorWord(off uint64, v uint64) {
	p := d.word(off)
	for {
		o := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, o, o^v) {
			return
		}
	}
}

// AtomicXorRange XORs delta into [off, off+len(delta)) using per-word
// atomic XORs. off must be 8-aligned and len(delta) a multiple of 8 (pad
// with zeros — XOR-ing zero is a no-op). Concurrent AtomicXorRange calls
// over overlapping ranges commute, which is what lets small parity
// updates share range-locks (§3.5). Persistence tracking is captured once
// for the whole range, not per word.
func (d *Device) AtomicXorRange(off uint64, delta []byte) {
	n := uint64(len(delta))
	if off%8 != 0 || n%8 != 0 {
		panic("nvm: AtomicXorRange requires 8-byte alignment")
	}
	d.checkRange(off, n)
	d.capture(off, n)
	for i := uint64(0); i < n; i += 8 {
		w := uint64(delta[i]) | uint64(delta[i+1])<<8 | uint64(delta[i+2])<<16 |
			uint64(delta[i+3])<<24 | uint64(delta[i+4])<<32 | uint64(delta[i+5])<<40 |
			uint64(delta[i+6])<<48 | uint64(delta[i+7])<<56
		if w != 0 {
			d.xorWord(off+i, w)
		}
	}
	d.stats.Writes.Add(1)
	d.stats.BytesWritten.Add(n)
}

// CheckPoison fails with *PoisonError if any page overlapping [off, off+n)
// is poisoned.
func (d *Device) CheckPoison(off, n uint64) error {
	if d.nPoison.Load() == 0 {
		return nil
	}
	d.poisonMu.RLock()
	defer d.poisonMu.RUnlock()
	first := off / PageSize
	last := first
	if n > 0 {
		last = (off + n - 1) / PageSize
	}
	for p := first; p <= last; p++ {
		if _, bad := d.poisoned[p]; bad {
			d.stats.PoisonFaults.Add(1)
			return &PoisonError{Off: p * PageSize}
		}
	}
	return nil
}

// Poison marks the page containing off as having an uncorrectable media
// error. The page's current contents are destroyed (zeroed), as a real
// media failure loses the data.
func (d *Device) Poison(off uint64) {
	d.checkRange(off, 1)
	page := off / PageSize
	d.poisonMu.Lock()
	if _, ok := d.poisoned[page]; !ok {
		d.poisoned[page] = struct{}{}
		d.nPoison.Add(1)
	}
	d.poisonMu.Unlock()
	base := page * PageSize
	d.capture(base, PageSize)
	s := d.mem[base : base+PageSize]
	for i := range s {
		s[i] = 0
	}
}

// IsPoisoned reports whether the page containing off is poisoned.
func (d *Device) IsPoisoned(off uint64) bool {
	if d.nPoison.Load() == 0 {
		return false
	}
	d.poisonMu.RLock()
	defer d.poisonMu.RUnlock()
	_, ok := d.poisoned[off/PageSize]
	return ok
}

// PoisonedPages returns the byte offsets of all poisoned pages, in
// unspecified order. The pool-open recovery path uses it the way the paper
// consumes the kernel's known-bad-page list.
func (d *Device) PoisonedPages() []uint64 {
	d.poisonMu.RLock()
	defer d.poisonMu.RUnlock()
	out := make([]uint64, 0, len(d.poisoned))
	for p := range d.poisoned {
		out = append(out, p*PageSize)
	}
	return out
}

// RepairPage writes a full page of new data at the page containing off and
// clears its poison, persisting the result. This models the ACPI flow where
// rewriting a failed page remaps it to functioning cells (§2.2).
func (d *Device) RepairPage(off uint64, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("nvm: RepairPage needs exactly %d bytes, got %d", PageSize, len(data))
	}
	page := off / PageSize
	base := page * PageSize
	d.checkRange(base, PageSize)
	d.poisonMu.Lock()
	if _, ok := d.poisoned[page]; ok {
		delete(d.poisoned, page)
		d.nPoison.Add(-1)
	}
	d.poisonMu.Unlock()
	d.WriteAt(base, data)
	d.Persist(base, PageSize)
	return nil
}

// Scribble overwrites [off, off+n) with bytes drawn from rng, bypassing the
// library entirely — the media simply changes, checksums and parity do not.
// It models corruption by software bugs ("scribbles", §1). The scribbled
// lines are treated as immediately persistent.
func (d *Device) Scribble(off, n uint64, rng *rand.Rand) {
	d.checkRange(off, n)
	s := d.mem[off : off+n]
	for i := range s {
		s[i] = byte(rng.Intn(256))
	}
	d.dropTracking(off, n)
}

// dropTracking forgets persistence tracking for the lines overlapping
// [off, off+n), making their current contents the persistent image.
func (d *Device) dropTracking(off, n uint64) {
	if !d.track || n == 0 {
		return
	}
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for line := first; line <= last; line++ {
		s := d.shards[lineShard(line)]
		s.mu.Lock()
		if rec, ok := s.lines[line]; ok {
			delete(s.lines, line)
			s.putRec(rec)
		}
		s.mu.Unlock()
	}
}

// DirtyLines reports how many cache lines are currently tracked as not yet
// persistent. Useful in tests asserting that commit paths persist
// everything they write.
func (d *Device) DirtyLines() int {
	total := 0
	for _, s := range d.shards {
		s.mu.Lock()
		total += len(s.lines)
		s.mu.Unlock()
	}
	return total
}

// CrashCopy returns a new Device holding the state the media would have
// after a power failure at this instant. In CrashStrict mode every
// non-persistent line reverts to its last persistent image; in
// CrashEvictRandom mode each such line independently either reverts or
// keeps its new contents (cache evictions are unordered), driven by seed.
// Poison marks survive the crash, as real bad-page records do. The source
// device is not modified.
func (d *Device) CrashCopy(mode CrashMode, seed int64) *Device {
	if !d.track {
		panic("nvm: CrashCopy requires TrackPersistence")
	}
	nd := New(d.size, Options{TrackPersistence: true})
	copy(nd.mem, d.mem)
	rng := rand.New(rand.NewSource(seed))
	for _, s := range d.shards {
		s.mu.Lock()
		for line, rec := range s.lines {
			revert := true
			if mode == CrashEvictRandom {
				revert = rng.Intn(2) == 0
			}
			if revert {
				copy(nd.mem[line*CacheLineSize:(line+1)*CacheLineSize], rec.old[:])
			}
		}
		s.mu.Unlock()
	}
	d.poisonMu.RLock()
	for p := range d.poisoned {
		nd.poisoned[p] = struct{}{}
		nd.nPoison.Add(1)
	}
	d.poisonMu.RUnlock()
	return nd
}
