package nvm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// snapshotMagic identifies a device snapshot stream.
const snapshotMagic = 0x50474c4e564d3031 // "PGLNVM01"

// WriteSnapshot serializes the device's persistent state (media contents and
// poison set) to w. Only persistent contents are saved: lines that were
// never flushed+fenced are written as their last persistent image, exactly
// as if the machine lost power now. This is how example programs keep pools
// across process runs, standing in for a real NVMM-backed file.
func (d *Device) WriteSnapshot(w io.Writer) error {
	// Snapshot the post-crash (strict) view so that what we save is what
	// durability promised.
	img := d.CrashCopy(CrashStrict, 0)
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint64(hdr[8:], img.size)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(img.poisoned)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	pages := make([]uint64, 0, len(img.poisoned))
	for p := range img.poisoned {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var pb [8]byte
	for _, p := range pages {
		binary.LittleEndian.PutUint64(pb[:], p)
		if _, err := bw.Write(pb[:]); err != nil {
			return err
		}
	}
	if _, err := bw.Write(img.mem); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a device from a snapshot produced by
// WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Device, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvm: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != snapshotMagic {
		return nil, fmt.Errorf("nvm: not a device snapshot")
	}
	size := binary.LittleEndian.Uint64(hdr[8:])
	nPoison := binary.LittleEndian.Uint64(hdr[16:])
	if size%PageSize != 0 || size == 0 {
		return nil, fmt.Errorf("nvm: corrupt snapshot: size %#x", size)
	}
	d := New(size, Options{TrackPersistence: true})
	var pb [8]byte
	for i := uint64(0); i < nPoison; i++ {
		if _, err := io.ReadFull(br, pb[:]); err != nil {
			return nil, fmt.Errorf("nvm: reading poison table: %w", err)
		}
		p := binary.LittleEndian.Uint64(pb[:])
		if p >= size/PageSize {
			return nil, fmt.Errorf("nvm: corrupt snapshot: poison page %#x out of range", p)
		}
		d.poisoned[p] = struct{}{}
		d.nPoison.Add(1)
	}
	if _, err := io.ReadFull(br, d.mem); err != nil {
		return nil, fmt.Errorf("nvm: reading media image: %w", err)
	}
	return d, nil
}

// SaveFile writes a snapshot to path, replacing any existing file
// atomically and durably: write to temp, fsync the file, rename, fsync
// the parent directory. Without the syncs a host crash shortly after
// SaveFile could leave the path pointing at a torn or missing snapshot
// — the rename orders the directory entry, not the data.
func (d *Device) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
