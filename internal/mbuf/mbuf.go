// Package mbuf implements micro-buffers (§3.2): DRAM shadow copies of
// NVMM objects that isolate transient writes from persistent data.
//
// A micro-buffer holds the full object image (header + user data) between
// two 64-bit canary words. Applications mutate only the shadow; commit
// checks the canaries before anything reaches NVMM, so buffer overruns are
// caught instead of propagated (the paper's canary mechanism). Modified
// ranges are tracked so commit can log, checksum, and parity-update only
// the bytes that changed.
package mbuf

import (
	"fmt"
	"slices"

	"github.com/pangolin-go/pangolin/internal/layout"
)

// Flags describe a micro-buffer's life cycle.
type Flags uint32

const (
	// FlagAllocated marks a buffer backing an object allocated by this
	// transaction (the whole image is new).
	FlagAllocated Flags = 1 << iota
	// FlagFreed marks a buffer whose object this transaction freed.
	FlagFreed
)

// Range is a modified byte range, relative to the start of the object
// image (offset 0 is the object header; user data begins at
// layout.ObjHeaderSize).
type Range struct {
	Off, Len uint64
}

// Buf is one micro-buffer.
type Buf struct {
	OID   layout.OID
	Flags Flags

	// OrigCsum is the object's stored checksum at open time, the base
	// for incremental refresh at commit.
	OrigCsum uint32

	canary  uint64
	backing []uint64 // head canary ⋯ image ⋯ tail canary, 8-aligned
	size    uint64   // image bytes (header + data)
	ranges  []Range  // modified ranges, sorted, coalesced
}

// CanaryError reports a clobbered canary: the application overran (or
// underran) a micro-buffer. The transaction must abort to avoid
// propagating the corruption to NVMM (§3.2).
type CanaryError struct {
	OID  layout.OID
	Tail bool // true: overrun past the object; false: underrun before it
}

func (e *CanaryError) Error() string {
	side := "head"
	if e.Tail {
		side = "tail"
	}
	return fmt.Sprintf("mbuf: %s canary clobbered for object %#x (buffer overrun)", side, e.OID.Off)
}

// New creates a micro-buffer of the given image size. canary is the
// pool's secret canary value (per-object salted by the caller if desired).
func New(oid layout.OID, size uint64, canary uint64) *Buf {
	words := 1 + (size+7)/8 + 1
	b := &Buf{OID: oid, canary: canary, backing: make([]uint64, words), size: size}
	b.backing[0] = canary
	b.backing[words-1] = canary
	return b
}

// Size returns the image size (header + user data).
func (b *Buf) Size() uint64 { return b.size }

// Footprint returns the DRAM bytes this buffer occupies (for the §4.2
// accounting).
func (b *Buf) Footprint() uint64 { return uint64(len(b.backing)) * 8 }

// Image returns the full object image (header + user data). The slice
// aliases the buffer; writes must be followed by MarkModified.
func (b *Buf) Image() []byte {
	return asBytes(b.backing[1:])[:b.size]
}

// UserData returns the user-data portion of the image.
func (b *Buf) UserData() []byte { return b.Image()[layout.ObjHeaderSize:] }

// Header decodes the buffered object header.
func (b *Buf) Header() layout.ObjHeader { return layout.DecodeObjHeader(b.Image()) }

// SetHeader encodes h into the buffered image (does not mark modified;
// allocation paths mark the whole image).
func (b *Buf) SetHeader(h layout.ObjHeader) { layout.EncodeObjHeader(b.Image(), h) }

// CheckCanaries verifies both canary words, identifying which side was
// clobbered.
func (b *Buf) CheckCanaries() error {
	if b.backing[0] != b.canary {
		return &CanaryError{OID: b.OID, Tail: false}
	}
	if b.backing[len(b.backing)-1] != b.canary {
		return &CanaryError{OID: b.OID, Tail: true}
	}
	return nil
}

// MarkModified records that image bytes [off, off+n) changed. Overlapping
// and adjacent ranges coalesce.
func (b *Buf) MarkModified(off, n uint64) {
	if n == 0 {
		return
	}
	if off+n > b.size {
		panic(fmt.Sprintf("mbuf: modified range [%d,%d) exceeds object size %d", off, off+n, b.size))
	}
	b.ranges = append(b.ranges, Range{Off: off, Len: n})
	b.coalesce()
}

// MarkAllModified marks the entire image modified (allocations).
func (b *Buf) MarkAllModified() {
	b.ranges = b.ranges[:0]
	b.ranges = append(b.ranges, Range{Off: 0, Len: b.size})
}

func (b *Buf) coalesce() {
	if len(b.ranges) < 2 {
		return
	}
	// slices.SortFunc, not sort.Slice: the latter builds a reflection
	// swapper per call, one heap allocation on every multi-range
	// MarkModified — pure overhead on the commit hot path.
	slices.SortFunc(b.ranges, func(a, b Range) int {
		switch {
		case a.Off < b.Off:
			return -1
		case a.Off > b.Off:
			return 1
		default:
			return 0
		}
	})
	out := b.ranges[:1]
	for _, r := range b.ranges[1:] {
		last := &out[len(out)-1]
		if r.Off <= last.Off+last.Len {
			if end := r.Off + r.Len; end > last.Off+last.Len {
				last.Len = end - last.Off
			}
			continue
		}
		out = append(out, r)
	}
	b.ranges = out
}

// Ranges returns the modified ranges, sorted and coalesced. The slice is
// owned by the buffer.
func (b *Buf) Ranges() []Range { return b.ranges }

// Modified reports whether any byte of the image was marked modified.
func (b *Buf) Modified() bool { return len(b.ranges) > 0 }

// ResetRanges clears modification tracking (after a commit recycles the
// buffer).
func (b *Buf) ResetRanges() { b.ranges = b.ranges[:0] }

// Table is a transaction's micro-buffer collection: the paper's
// thread-local hashmap (§3.4), keyed by the object's pool offset, with the
// buffers also linked in open order.
type Table struct {
	bufs  map[uint64]*Buf
	order []*Buf
	bytes uint64
}

// NewTable creates an empty table.
func NewTable() *Table {
	return &Table{bufs: make(map[uint64]*Buf)}
}

// Lookup returns the buffer for oid, if open in this transaction.
func (t *Table) Lookup(oid layout.OID) (*Buf, bool) {
	b, ok := t.bufs[oid.Off]
	return b, ok
}

// Insert adds a buffer.
func (t *Table) Insert(b *Buf) {
	t.bufs[b.OID.Off] = b
	t.order = append(t.order, b)
	t.bytes += b.Footprint()
}

// Remove drops the buffer for oid (used when a transaction frees an object
// it had open).
func (t *Table) Remove(oid layout.OID) {
	b, ok := t.bufs[oid.Off]
	if !ok {
		return
	}
	delete(t.bufs, oid.Off)
	t.bytes -= b.Footprint()
	for i, x := range t.order {
		if x == b {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// All returns the buffers in open order. The slice is owned by the table.
func (t *Table) All() []*Buf { return t.order }

// Len returns the number of open buffers.
func (t *Table) Len() int { return len(t.order) }

// Bytes returns the table's DRAM footprint.
func (t *Table) Bytes() uint64 { return t.bytes }
