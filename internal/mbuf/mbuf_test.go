package mbuf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pangolin-go/pangolin/internal/layout"
)

const testCanary = 0xDEADBEEFCAFEF00D

func TestImageSizing(t *testing.T) {
	for _, size := range []uint64{16, 17, 64, 100, 4096} {
		b := New(layout.OID{Off: 100}, size, testCanary)
		if uint64(len(b.Image())) != size {
			t.Fatalf("size %d: image %d", size, len(b.Image()))
		}
		if uint64(len(b.UserData())) != size-layout.ObjHeaderSize {
			t.Fatalf("size %d: user %d", size, len(b.UserData()))
		}
		if b.Footprint() < size+16 {
			t.Fatalf("footprint %d too small for %d + canaries", b.Footprint(), size)
		}
		if err := b.CheckCanaries(); err != nil {
			t.Fatalf("fresh buffer canary: %v", err)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	b := New(layout.OID{Off: 64}, 128, testCanary)
	h := layout.ObjHeader{Size: 128, Type: 3, Csum: 0x1234}
	b.SetHeader(h)
	if got := b.Header(); got != h {
		t.Fatalf("header %+v != %+v", got, h)
	}
}

func TestTailCanaryDetectsOverrun(t *testing.T) {
	b := New(layout.OID{Off: 640}, 100, testCanary)
	img := b.Image()
	// Overrun: write past the image into the canary word. The backing
	// slice deliberately makes this physically possible, as a buggy C
	// program would through a casted pointer.
	over := asBytes(b.backing[1:])
	over[((100+7)/8)*8] = 0xFF // first byte past the padded image
	_ = img
	err := b.CheckCanaries()
	var ce *CanaryError
	if !errors.As(err, &ce) {
		t.Fatalf("overrun not detected: %v", err)
	}
	if !ce.Tail {
		t.Fatal("overrun misreported as underrun")
	}
}

func TestHeadCanaryDetectsUnderrun(t *testing.T) {
	b := New(layout.OID{Off: 640}, 100, testCanary)
	b.backing[0] ^= 1
	err := b.CheckCanaries()
	var ce *CanaryError
	if !errors.As(err, &ce) || ce.Tail {
		t.Fatalf("underrun not detected correctly: %v", err)
	}
}

func TestMarkModifiedCoalescing(t *testing.T) {
	b := New(layout.OID{Off: 64}, 200, testCanary)
	b.MarkModified(10, 10) // [10,20)
	b.MarkModified(30, 5)  // [30,35)
	b.MarkModified(18, 12) // bridges to [10,35)? overlaps first, touches second
	rs := b.Ranges()
	if len(rs) != 1 || rs[0].Off != 10 || rs[0].Len != 25 {
		t.Fatalf("coalesced ranges: %+v", rs)
	}
	b.MarkModified(100, 1)
	if len(b.Ranges()) != 2 {
		t.Fatalf("disjoint range merged: %+v", b.Ranges())
	}
	// Adjacent ranges coalesce.
	b.MarkModified(101, 4)
	rs = b.Ranges()
	if len(rs) != 2 || rs[1].Len != 5 {
		t.Fatalf("adjacent not coalesced: %+v", rs)
	}
}

func TestMarkModifiedZeroLen(t *testing.T) {
	b := New(layout.OID{Off: 64}, 100, testCanary)
	b.MarkModified(50, 0)
	if b.Modified() {
		t.Fatal("zero-length range marked")
	}
}

func TestMarkModifiedOutOfRangePanics(t *testing.T) {
	b := New(layout.OID{Off: 64}, 100, testCanary)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.MarkModified(90, 20)
}

func TestMarkAllModified(t *testing.T) {
	b := New(layout.OID{Off: 64}, 333, testCanary)
	b.MarkModified(5, 5)
	b.MarkAllModified()
	rs := b.Ranges()
	if len(rs) != 1 || rs[0].Off != 0 || rs[0].Len != 333 {
		t.Fatalf("ranges: %+v", rs)
	}
}

// Property: after any sequence of MarkModified calls, ranges are sorted,
// non-overlapping, and cover exactly the union of the marked bytes.
func TestCoalesceCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 512
		b := New(layout.OID{Off: 64}, size, testCanary)
		model := make([]bool, size)
		for i := 0; i < 20; i++ {
			off := uint64(rng.Intn(size))
			n := uint64(rng.Intn(size - int(off)))
			b.MarkModified(off, n)
			for j := off; j < off+n; j++ {
				model[j] = true
			}
		}
		got := make([]bool, size)
		var prevEnd uint64
		for i, r := range b.Ranges() {
			if i > 0 && r.Off <= prevEnd {
				return false // overlap or touching (should have merged)
			}
			prevEnd = r.Off + r.Len
			for j := r.Off; j < r.Off+r.Len; j++ {
				got[j] = true
			}
		}
		for i := range model {
			if model[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable()
	o1 := layout.OID{Pool: 1, Off: 100}
	o2 := layout.OID{Pool: 1, Off: 200}
	b1 := New(o1, 64, testCanary)
	b2 := New(o2, 128, testCanary)
	tbl.Insert(b1)
	tbl.Insert(b2)
	if got, ok := tbl.Lookup(o1); !ok || got != b1 {
		t.Fatal("lookup o1 failed")
	}
	if tbl.Len() != 2 {
		t.Fatalf("len %d", tbl.Len())
	}
	if tbl.Bytes() != b1.Footprint()+b2.Footprint() {
		t.Fatalf("bytes %d", tbl.Bytes())
	}
	if all := tbl.All(); all[0] != b1 || all[1] != b2 {
		t.Fatal("order not preserved")
	}
	tbl.Remove(o1)
	if _, ok := tbl.Lookup(o1); ok {
		t.Fatal("removed buffer still present")
	}
	if tbl.Bytes() != b2.Footprint() {
		t.Fatalf("bytes after remove %d", tbl.Bytes())
	}
	tbl.Remove(layout.OID{Off: 999}) // no-op
	if tbl.Len() != 1 {
		t.Fatal("phantom remove changed table")
	}
}
