package mbuf

import "unsafe"

// asBytes views a word slice as bytes without copying. The backing array
// outlives every derived slice (it is referenced by the Buf), and byte
// views of word arrays are always correctly aligned.
func asBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)
}
