// Command pgllint machine-checks the codebase's persistence and
// concurrency invariants (see internal/lint/doc.go for the rule
// catalogue).
//
// It runs two ways:
//
//	pgllint [packages]        # standalone: re-execs `go vet -vettool=pgllint`
//	go vet -vettool=$(which pgllint) ./...
//
// Standalone invocation with package patterns (default ./...) wraps
// `go vet`, so both forms run the identical unitchecker driver over
// fully type-checked packages with facts and the build cache. Any
// flag-shaped or .cfg argument means go vet is driving us and we speak
// the vet tool protocol directly.
//
// Intentional exceptions are suppressed in-code, never out-of-band:
//
//	//pgllint:ignore <analyzer> <reason>
//
// on the violating line or the line above. The reason is mandatory.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/pangolin-go/pangolin/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 || !vetProtocol(args) {
		os.Exit(standalone(args))
	}
	unitchecker.Main(lint.Analyzers()...)
}

// vetProtocol reports whether go vet is driving us: every unitchecker
// invocation passes flags (-V=full, -flags, analyzer flags) or a
// package .cfg file.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-runs this binary under go vet so package loading,
// export data, and caching all come from the go command.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgllint: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + exe}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pgllint: %v\n", err)
		return 2
	}
	return 0
}
