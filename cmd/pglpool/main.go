// Command pglpool administers Pangolin pool snapshot files: create,
// inspect, check (scrub), and fault-inject — the pmempool analog for the
// simulated NVMM substrate.
//
// Usage:
//
//	pglpool create [-mode M] [-zones N] <file>
//	pglpool info <file>
//	pglpool check <file>             verify checksums + parity, repair
//	pglpool inject -page OFF <file>  poison the page at offset OFF
//	pglpool inject -scribble OFF -len N <file>
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pangolin-go/pangolin"
)

var modeNames = map[string]pangolin.Mode{
	"pmemobj":       pangolin.ModePmemobj,
	"pangolin":      pangolin.ModePangolin,
	"pangolin-ml":   pangolin.ModePangolinML,
	"pangolin-mlp":  pangolin.ModePangolinMLP,
	"pangolin-mlpc": pangolin.ModePangolinMLPC,
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = create(args)
	case "info":
		err = info(args)
	case "check":
		err = check(args)
	case "inject":
		err = inject(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pglpool %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pglpool {create|info|check|inject} [flags] <file>")
	os.Exit(2)
}

// openPool loads a pool snapshot, trying each mode until the header
// matches (the mode is stored in the pool header).
func openPool(path string) (*pangolin.Pool, pangolin.Mode, error) {
	var lastErr error
	for _, m := range []pangolin.Mode{
		pangolin.ModePangolinMLPC, pangolin.ModePangolinMLP, pangolin.ModePangolinML,
		pangolin.ModePangolin, pangolin.ModePmemobj,
	} {
		p, err := pangolin.LoadFile(path, pangolin.Config{Mode: m})
		if err == nil {
			return p, m, nil
		}
		lastErr = err
	}
	return nil, 0, lastErr
}

func create(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	mode := fs.String("mode", "pangolin-mlpc", "operation mode")
	zones := fs.Uint64("zones", 2, "number of zones")
	paper := fs.Bool("paper", false, "use the paper's 100-row zone geometry (~1% parity)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	m, ok := modeNames[*mode]
	if !ok {
		return fmt.Errorf("unknown mode %q (pmemobj-r pools cannot be snapshot files)", *mode)
	}
	geo := pangolin.DefaultGeometry()
	if *paper {
		geo = pangolin.PaperGeometry(*zones)
	}
	geo.NumZones = *zones
	p, err := pangolin.Create(pangolin.Config{Mode: m, Geometry: geo})
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.SaveFile(fs.Arg(0)); err != nil {
		return err
	}
	fmt.Printf("created %s pool (%d zones, %d B) at %s\n",
		m, geo.NumZones, geo.PoolSize(), fs.Arg(0))
	return nil
}

func info(args []string) error {
	if len(args) != 1 {
		usage()
	}
	p, mode, err := openPool(args[0])
	if err != nil {
		return err
	}
	defer p.Close()
	alloc := p.LiveObjects()
	fmt.Printf("pool:        %s\nmode:        %v\nuuid:        %#x\nsize:        %d B\nlive objects: %d\nlive bytes:   %d\n",
		args[0], mode, p.UUID(), p.Device().Size(), alloc.Objects, alloc.Bytes)
	return nil
}

func check(args []string) error {
	if len(args) != 1 {
		usage()
	}
	p, mode, err := openPool(args[0])
	if err != nil {
		return err
	}
	defer p.Close()
	if !mode.Checksums() && !mode.Parity() {
		fmt.Printf("mode %v maintains no redundancy; nothing to check\n", mode)
		return nil
	}
	rep, err := p.Scrub()
	if err != nil {
		return err
	}
	// "0 bad objects" in a checksum-less mode means "not checked", not
	// "verified clean" — say which one this is.
	verified := "checksums verified"
	if !rep.ChecksumsVerified {
		verified = fmt.Sprintf("checksums NOT verified (mode %v maintains none)", mode)
	}
	fmt.Printf("scrub: %d objects, %d bad, %d repaired, %d unrecovered, %d parity fixes, %d pages healed, %d pages unrecoverable, %s\n",
		rep.Objects, rep.BadObjects, rep.Repaired, rep.Unrecovered, rep.ParityFixes, rep.PagesHealed, rep.PagesUnrecovered, verified)
	if err := p.SaveFile(args[0]); err != nil {
		return err
	}
	if rep.Unrecovered > 0 || rep.PagesUnrecovered > 0 {
		return fmt.Errorf("%d objects and %d pages unrecoverable", rep.Unrecovered, rep.PagesUnrecovered)
	}
	return nil
}

func inject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	page := fs.Int64("page", -1, "poison the page containing this offset")
	scribble := fs.Int64("scribble", -1, "scribble starting at this offset")
	n := fs.Uint64("len", 64, "scribble length")
	seed := fs.Int64("seed", 1, "scribble randomness seed")
	fs.Parse(args)
	if fs.NArg() != 1 || (*page < 0 && *scribble < 0) {
		usage()
	}
	p, _, err := openPool(fs.Arg(0))
	if err != nil {
		return err
	}
	defer p.Close()
	if *page >= 0 {
		p.InjectMediaError(uint64(*page))
		fmt.Printf("poisoned page at %#x\n", *page)
	}
	if *scribble >= 0 {
		p.InjectScribble(uint64(*scribble), *n, *seed)
		fmt.Printf("scribbled %d bytes at %#x\n", *n, *scribble)
	}
	return p.SaveFile(fs.Arg(0))
}
