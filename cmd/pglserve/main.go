// Command pglserve serves a sharded Pangolin key-value store over TCP
// (see server/doc.go for the protocol and design).
//
//	pglserve -dir /tmp/kvset -shards 4 -structure hashmap -addr :7499
//
// If dir holds no shard files the set is created with -shards shards of
// -structure; otherwise the existing set is opened (crash-recovering every
// shard) and -shards / -structure are ignored. GETs are served on the
// concurrent verified-read fast path (checksum-verified lookups from the
// connection handlers' goroutines, no worker hop) unless -serial-reads
// forces the old worker-serialized read path — scripts/loadtest.sh uses
// that switch to A/B the two, and STATS reports fast_gets/fast_fallbacks
// so either run can prove which path served it. With -scrub-interval the
// background maintenance scheduler runs: every interval one shard
// executes one bounded scrub step (skipped while the shard is busy —
// traffic always wins), so injected or latent corruption is found and
// repaired while the server keeps serving; STATS and the SCRUB op report
// scrub_steps/bg_repairs/scrub_backoffs/last_full_pass_unix, and
// scripts/loadtest.sh's corruption phase gates on the scheduler healing
// live injected faults with zero client errors. On SIGINT/SIGTERM the
// server syncs every shard snapshot and exits cleanly. A CRASH request
// instead makes the process die abruptly after writing per-shard crash
// images — the hook the load generator uses to exercise recovery.
//
// Startup prints one JSON line to stdout, e.g.
//
//	{"addr":"127.0.0.1:7499","shards":4,"structure":"hashmap","recovered":false}
//
// so scripts (and cmd/pglload wrappers) can discover the bound port when
// -addr uses port 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
	"github.com/pangolin-go/pangolin/server"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7499", "listen address (port 0 picks a free port)")
	dir := flag.String("dir", "", "shard snapshot directory (required)")
	shards := flag.Int("shards", 4, "shard count when creating a new set")
	structure := flag.String("structure", "hashmap", fmt.Sprintf("kv structure when creating: %v", registry.Names()))
	backend := flag.String("backend", "",
		"per-shard storage backend when creating: pangolin (default), logstore, or a comma list cycled across shards (\"pangolin,logstore\" alternates); opening an existing set rediscovers each shard's backend from disk")
	logSegBytes := flag.Int64("log-segment-bytes", 0,
		"logstore shards' segment rotation threshold in bytes when creating; 0 selects the engine default (small values force compaction traffic, for tests and A/B runs)")
	mode := flag.String("mode", "pangolin-mlpc",
		fmt.Sprintf("pool operation mode: %v (the unprotected pmemobj baseline is rejected)", shard.ModeNames()))
	zones := flag.Uint64("zones", 8, "zones per shard pool when creating (capacity)")
	serialReads := flag.Bool("serial-reads", false,
		"route every GET through the shard worker (disable the concurrent verified-read fast path); for A/B measurement")
	scrubInterval := flag.Duration("scrub-interval", 0,
		"background maintenance cadence: every interval one shard (round-robin) runs one bounded scrub step, skipped while that shard is busy; 0 disables (scrub then runs only on SCRUB requests)")
	commitWait := flag.Duration("commit-wait", 0,
		"adaptive group-commit window cap: a hot shard worker may wait up to this long for more ops before committing (scaled by recent batch depth; idle load never waits); 0 selects the default (100µs), negative disables the wait")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pglserve: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	geo := pangolin.DefaultGeometry()
	geo.NumZones = *zones
	// The mode name goes through shard.Options.Mode, the explicit
	// channel: shard rejects "pmemobj" with a typed error (and unknown
	// names with a naming error) instead of silently serving another
	// mode.
	opts := shard.Options{
		Structure:       *structure,
		Backend:         *backend,
		Mode:            *mode,
		Pangolin:        pangolin.Config{Geometry: geo},
		LogSegmentBytes: *logSegBytes,
		SerialReads:     *serialReads,
		ScrubInterval:   *scrubInterval,
		CommitWait:      *commitWait,
	}

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on http.DefaultServeMux
		// at import; this side server exposes nothing else. See the
		// "Profiling a hot server" recipe in the README.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pglserve: pprof server: %v", err)
			}
		}()
	}

	// An existing set is detected by its shard-0000 entry in either
	// on-disk form — the pangolin pool file or the logstore directory —
	// so a logstore-only set reopens instead of failing creation.
	var set *shard.Set
	var err error
	recovered := false
	if existing, _ := shard.DiscoverBackends(*dir); len(existing) > 0 {
		set, err = shard.Open(*dir, opts)
		recovered = true
	} else {
		set, err = shard.Create(*dir, *shards, opts)
	}
	if err != nil {
		log.Fatalf("pglserve: %v", err)
	}

	srv := server.New(set)
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("pglserve: %v", err)
	}
	json.NewEncoder(os.Stdout).Encode(map[string]any{
		"addr":           srv.Addr().String(),
		"shards":         set.Len(),
		"structure":      set.Structure(),
		"backends":       set.Stats().Backends,
		"recovered":      recovered,
		"serial_reads":   *serialReads,
		"scrub_interval": scrubInterval.String(),
	})

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("pglserve: %v: syncing %d shards", sig, set.Len())
		srv.Shutdown()
		if err := set.Close(); err != nil {
			log.Fatalf("pglserve: sync on shutdown: %v", err)
		}
	case <-srv.Crashed():
		// Simulated machine death: crash images are on disk; exit
		// without syncing so they stand as the pools' last state.
		log.Printf("pglserve: simulated crash, dying without sync")
		srv.Shutdown()
		set.Abandon()
	case err := <-serveDone:
		set.Abandon()
		log.Fatalf("pglserve: serve: %v", err)
	}
}
