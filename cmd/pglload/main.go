// Command pglload is a closed-loop load generator for pglserve: N client
// connections each keep exactly one request in flight until the target
// operation count is reached, then the run is summarized as one JSON
// object on stdout — ops/sec, latency percentiles, mix, server stats —
// so successive PRs can track a throughput trajectory.
//
//	pglserve -dir /tmp/kvset -shards 4 &
//	pglload -addr 127.0.0.1:7499 -clients 32 -ops 100000
//
// The workload is keys uniform in [0, -keys), with a scan/put/get/del
// mix set by -scans, -reads and -dels (the remainder is puts): -reads
// 0.9 -dels 0.02 is the read-heavy mix scripts/loadtest.sh uses to
// measure the concurrent read fast path against the worker-serialized
// baseline (pglserve -serial-reads), and -reads 0.8 -scans 0.1 is its
// scan phase. A scan op issues one SCAN frame of up to -scan-limit
// pairs from a uniform lo bound and verifies the response client-side —
// ascending, duplicate-free, bound-respecting — counting any violation
// as an error; the report carries scan_pairs and scan_ops_per_sec, and
// server_stats carries fast_scans so a run can assert the scan fast
// path engaged (-scans requires -batch 1). The server_stats block also
// carries fast_gets/fast_fallbacks, so a run can assert which read path
// served it. With -batch N each client
// sends MGET/MPUT/MDEL frames of N operations instead of single-op
// frames, exercising the server's group-commit path; reported ops and
// ops/sec still count individual operations, while the latency
// percentiles describe whole round trips (one frame at -batch 1, one
// batch otherwise). With -pipeline N each connection carries N
// closed-loop workers concurrently — the client is pipelined, so up to
// N requests ride one connection's in-flight window at once, and the
// server folds the deeper shard queues into bigger group commits; the
// report's group_batch_mean (batched_ops/batches from server_stats)
// shows the achieved batch depth. With -faults N the run doubles as the
// corruption-healing gate: a side connection INJECTs N live faults
// while the load runs, a few more after it stops (so a read can't heal
// everything first), and the run exits nonzero unless the server's
// background scrubber (pglserve -scrub-interval) reports bg_repairs > 0
// within -heal-wait — injected corruption healed under live traffic
// with zero client-visible errors. With -crash-after the run ends by sending CRASH,
// killing the server after it writes per-shard crash images; `pglpool
// check <dir>/shard-*.pgl` then verifies every recovered shard.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pangolin-go/pangolin/server"
)

type latencyMS struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

type report struct {
	Addr     string `json:"addr"`
	Clients  int    `json:"clients"`
	Batch    int    `json:"batch"`
	Pipeline int    `json:"pipeline"`
	// Backend echoes the server's STATS backends field when -backend
	// asked for a specific engine, so A/B reports are self-labeling.
	Backend    string  `json:"backend,omitempty"`
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Scan accounting: ScanPairs is the pairs all SCAN responses
	// carried; ScanOpsPerSec is the SCAN round-trip rate (0 when the
	// mix has no scans).
	ScanPairs     uint64            `json:"scan_pairs"`
	ScanOpsPerSec float64           `json:"scan_ops_per_sec"`
	Latency       latencyMS         `json:"latency_ms"`
	Mix           map[string]uint64 `json:"mix"`
	// GroupBatchMean is the server's achieved group-commit depth —
	// batched_ops/batches from server_stats — the number pipelining is
	// supposed to raise (deeper in-flight windows keep shard worker
	// queues full, so each persist fence covers more operations).
	GroupBatchMean float64       `json:"group_batch_mean,omitempty"`
	Server         *server.Stats `json:"server_stats,omitempty"`
	CrashSent      bool          `json:"crash_sent"`
	// Corruption-healing accounting (with -faults): how many live
	// objects INJECT corrupted during and after the load, and whether
	// the server's background scrubber reported bg_repairs > 0 within
	// -heal-wait afterwards. A -faults run exits nonzero when Healed is
	// false — the corruption-healing gate.
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	Healed         bool   `json:"healed,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7499", "server address")
	clients := flag.Int("clients", 32, "concurrent closed-loop clients")
	ops := flag.Uint64("ops", 100_000, "total operations")
	keys := flag.Uint64("keys", 1<<16, "key space size")
	reads := flag.Float64("reads", 0.5, "fraction of GETs")
	dels := flag.Float64("dels", 0.1, "fraction of DELs")
	scans := flag.Float64("scans", 0, "fraction of SCANs (each one SCAN frame; requires -batch 1)")
	scanLimit := flag.Int("scan-limit", 64, "pairs requested per SCAN frame")
	seed := flag.Int64("seed", 1, "workload seed")
	backend := flag.String("backend", "",
		"expected server backends (the STATS backends field, e.g. \"logstore\" or \"pangolin,logstore\"); nonempty makes the run label its report with the backend and exit nonzero on a mismatch — the A/B phase's guard against measuring the wrong engine")
	batch := flag.Int("batch", 1, "operations per client frame (1 = single-op GET/PUT/DEL, >1 = MGET/MPUT/MDEL)")
	pipeline := flag.Int("pipeline", 1, "closed-loop workers per connection (each keeps one request in flight, so N workers pipeline N requests on one connection)")
	crashAfter := flag.Bool("crash-after", false, "send CRASH when done (server dies with crash images)")
	faults := flag.Int("faults", 0, "live faults to INJECT while the load runs (corruption-healing phase); the run then waits for the server's background scrubber to report bg_repairs > 0")
	faultEvery := flag.Duration("fault-every", 50*time.Millisecond, "pause between INJECT frames")
	healWait := flag.Duration("heal-wait", 15*time.Second, "how long to wait, after the load, for bg_repairs > 0 (with -faults)")
	flag.Parse()
	if *reads+*dels+*scans > 1 {
		log.Fatal("pglload: -reads + -dels + -scans exceed 1")
	}
	if *batch < 1 || *batch > server.MaxBatchOps {
		log.Fatalf("pglload: -batch must be in [1, %d]", server.MaxBatchOps)
	}
	if *scans > 0 && *batch != 1 {
		log.Fatal("pglload: -scans requires -batch 1 (a scan is its own frame)")
	}
	if *scanLimit < 1 || *scanLimit > server.MaxScanPairs {
		log.Fatalf("pglload: -scan-limit must be in [1, %d]", server.MaxScanPairs)
	}
	if *pipeline < 1 || *pipeline > server.MaxWindow {
		log.Fatalf("pglload: -pipeline must be in [1, %d]", server.MaxWindow)
	}

	var (
		opCount   atomic.Uint64 // ops claimed
		opsDone   atomic.Uint64 // ops completed
		errCount  atomic.Uint64
		gets      atomic.Uint64
		puts      atomic.Uint64
		delOps    atomic.Uint64
		scanOps   atomic.Uint64
		scanPairs atomic.Uint64
	)
	workers := *clients * *pipeline
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup

	// Fault injector (with -faults): a side connection corrupts live
	// objects while the load runs, so the server's background scrubber
	// has to heal corruption racing real traffic. INJECT alternates
	// scribbles and media-error poison by seed parity.
	var faultsInjected atomic.Uint64
	stopInject := make(chan struct{})
	var injectWG sync.WaitGroup
	if *faults > 0 {
		injectWG.Add(1)
		go func() {
			defer injectWG.Done()
			c, err := server.Dial(context.Background(), *addr)
			if err != nil {
				log.Printf("pglload: fault injector: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < *faults; i++ {
				select {
				case <-stopInject:
					return
				case <-time.After(*faultEvery):
				}
				n, err := c.Inject(*seed+int64(i), 1)
				if err != nil {
					log.Printf("pglload: inject: %v", err)
					return
				}
				faultsInjected.Add(n)
			}
		}()
	}

	// runWorker is one closed-loop worker: it claims ops from the shared
	// budget and keeps exactly one request in flight on c until the
	// budget runs out. With -pipeline N, N workers share each connection
	// — the pipelined client interleaves their frames on one socket.
	runWorker := func(c *server.Client, slot int) {
		rng := rand.New(rand.NewSource(*seed + int64(slot)))
		lats := make([]time.Duration, 0, int(*ops/uint64(workers)*2))
		// Keep whatever was measured even if this worker errors out
		// mid-run, so the report reflects the ops that did execute.
		defer func() { latencies[slot] = lats }()
		kbuf := make([]uint64, 0, *batch)
		vbuf := make([]uint64, 0, *batch)
		for {
			// Claim up to -batch ops from the shared budget; the
			// final claim may be short.
			end := opCount.Add(uint64(*batch))
			first := end - uint64(*batch) + 1
			if first > *ops {
				break
			}
			count := *batch
			if end > *ops {
				count = int(*ops - first + 1)
			}
			kbuf = kbuf[:0]
			for i := 0; i < count; i++ {
				kbuf = append(kbuf, rng.Uint64()%*keys)
			}
			// Each round trip is one op type, so a batch maps to one
			// MGET/MPUT/MDEL frame; the dice keep the requested mix
			// across rounds.
			dice := rng.Float64()
			t0 := time.Now()
			var err error
			switch {
			case dice < *scans:
				// One SCAN frame from a uniform lo, verified
				// client-side: pairs must ascend, respect the bounds,
				// and fit the limit — the wire-level proof of the
				// ordered-scan contract under live writers.
				scanOps.Add(uint64(count))
				lo := kbuf[0]
				var ps []server.Pair
				ps, _, _, err = c.Scan(lo, ^uint64(0), *scanLimit, 0)
				if err == nil {
					if len(ps) > *scanLimit {
						err = fmt.Errorf("scan returned %d pairs, limit %d", len(ps), *scanLimit)
					}
					for i, pr := range ps {
						if pr.K < lo || (i > 0 && pr.K <= ps[i-1].K) {
							err = fmt.Errorf("scan order/bounds violation at pair %d (key %d, lo %d)", i, pr.K, lo)
							break
						}
					}
					scanPairs.Add(uint64(len(ps)))
				}
			case dice < *scans+*reads:
				gets.Add(uint64(count))
				if count == 1 {
					_, _, err = c.Get(kbuf[0])
				} else {
					_, _, err = c.MGet(kbuf)
				}
			case dice < *scans+*reads+*dels:
				delOps.Add(uint64(count))
				if count == 1 {
					_, err = c.Del(kbuf[0])
				} else {
					_, err = c.MDel(kbuf)
				}
			default:
				puts.Add(uint64(count))
				if count == 1 {
					err = c.Put(kbuf[0], rng.Uint64())
				} else {
					vbuf = vbuf[:0]
					for range kbuf {
						vbuf = append(vbuf, rng.Uint64())
					}
					err = c.MPut(kbuf, vbuf)
				}
			}
			lats = append(lats, time.Since(t0))
			if err != nil {
				errCount.Add(1)
				log.Printf("pglload: worker %d: %v", slot, err)
				return
			}
			opsDone.Add(uint64(count))
		}
	}

	start := time.Now()
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(context.Background(), *addr,
				server.WithPipelineDepth(*pipeline))
			if err != nil {
				log.Printf("pglload: client %d: %v", id, err)
				errCount.Add(1)
				return
			}
			defer c.Close()
			var cwg sync.WaitGroup
			for w := 0; w < *pipeline; w++ {
				cwg.Add(1)
				go func(slot int) {
					defer cwg.Done()
					runWorker(c, slot)
				}(id**pipeline + w)
			}
			cwg.Wait()
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopInject)
	injectWG.Wait()

	all := make([]time.Duration, 0, *ops)
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / float64(time.Millisecond)
	}

	rep := report{
		Addr:          *addr,
		Clients:       *clients,
		Batch:         *batch,
		Pipeline:      *pipeline,
		Ops:           opsDone.Load(),
		Errors:        errCount.Load(),
		ElapsedSec:    elapsed.Seconds(),
		OpsPerSec:     float64(opsDone.Load()) / elapsed.Seconds(),
		ScanPairs:     scanPairs.Load(),
		ScanOpsPerSec: float64(scanOps.Load()) / elapsed.Seconds(),
		Latency: latencyMS{
			P50: pct(0.50), P95: pct(0.95), P99: pct(0.99), P999: pct(0.999),
			Max: pct(1),
		},
		Mix: map[string]uint64{"get": gets.Load(), "put": puts.Load(), "del": delOps.Load(), "scan": scanOps.Load()},
		// Set before the post-run dial: a failed stats connection must
		// not misreport the injections that already happened as zero.
		FaultsInjected: faultsInjected.Load(),
	}

	// Fetch server-side stats, and optionally send the simulated crash.
	if c, err := server.Dial(context.Background(), *addr); err == nil {
		if *faults > 0 {
			// Post-load faults are the deterministic part of the gate:
			// with the traffic stopped, only the background scrubber can
			// heal them — a read repairing everything first can no
			// longer mask a dead scheduler. The gate requires bg_repairs
			// to INCREASE past its pre-injection value, so repairs the
			// scheduler made during the load (before wedging) cannot
			// satisfy it either.
			base := uint64(0)
			if st, err := c.Scrub(false); err == nil {
				base = st.Health.BgRepairs
			}
			for i := 0; i < 4; i++ {
				if n, err := c.Inject(*seed+int64(*faults)+int64(i), 1); err == nil {
					faultsInjected.Add(n)
				}
			}
			rep.FaultsInjected = faultsInjected.Load()
			deadline := time.Now().Add(*healWait)
			for {
				st, err := c.Scrub(false)
				if err == nil && st.Health.BgRepairs > base {
					rep.Healed = true
					break
				}
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
		}
		if st, err := c.Stats(); err == nil {
			rep.Server = &st
			rep.Backend = st.Backends
			if st.Batches > 0 {
				rep.GroupBatchMean = float64(st.BatchedOps) / float64(st.Batches)
			}
		}
		if *crashAfter {
			if err := c.Crash(*seed); err != nil {
				log.Printf("pglload: crash request: %v", err)
			} else {
				rep.CrashSent = true
			}
		}
		c.Close()
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "pglload: %d errors\n", rep.Errors)
		os.Exit(1)
	}
	if *backend != "" && rep.Backend != *backend {
		fmt.Fprintf(os.Stderr, "pglload: server backends %q, want %q\n", rep.Backend, *backend)
		os.Exit(1)
	}
	if *faults > 0 && !rep.Healed {
		fmt.Fprintf(os.Stderr, "pglload: background scrubber never reported bg_repairs > 0 (injected %d faults)\n",
			rep.FaultsInjected)
		os.Exit(1)
	}
}
