// Command pglload is a closed-loop load generator for pglserve: N client
// connections each keep exactly one request in flight until the target
// operation count is reached, then the run is summarized as one JSON
// object on stdout — ops/sec, latency percentiles, mix, server stats —
// so successive PRs can track a throughput trajectory.
//
//	pglserve -dir /tmp/kvset -shards 4 &
//	pglload -addr 127.0.0.1:7499 -clients 32 -ops 100000
//
// The workload is keys uniform in [0, -keys), with a scan/put/get/del
// mix set by -scans, -reads and -dels (the remainder is puts): -reads
// 0.9 -dels 0.02 is the read-heavy mix scripts/loadtest.sh uses to
// measure the concurrent read fast path against the worker-serialized
// baseline (pglserve -serial-reads), and -reads 0.8 -scans 0.1 is its
// scan phase. A scan op issues one SCAN frame of up to -scan-limit
// pairs from a uniform lo bound and verifies the response client-side —
// ascending, duplicate-free, bound-respecting — counting any violation
// as an error; the report carries scan_pairs and scan_ops_per_sec, and
// server_stats carries fast_scans so a run can assert the scan fast
// path engaged (-scans requires -batch 1). The server_stats block also
// carries fast_gets/fast_fallbacks, so a run can assert which read path
// served it. With -batch N each client
// sends MGET/MPUT/MDEL frames of N operations instead of single-op
// frames, exercising the server's group-commit path; reported ops and
// ops/sec still count individual operations, while the latency
// percentiles describe whole round trips (one frame at -batch 1, one
// batch otherwise). With -pipeline N each connection carries N
// closed-loop workers concurrently — the client is pipelined, so up to
// N requests ride one connection's in-flight window at once, and the
// server folds the deeper shard queues into bigger group commits; the
// report's group_batch_mean (batched_ops/batches from server_stats)
// shows the achieved batch depth. With -faults N the run doubles as the
// corruption-healing gate: a side connection INJECTs N live faults
// while the load runs, a few more after it stops (so a read can't heal
// everything first), and the run exits nonzero unless the server's
// background scrubber (pglserve -scrub-interval) reports bg_repairs > 0
// within -heal-wait — injected corruption healed under live traffic
// with zero client-visible errors. A -faults run fails fast (before the
// load finishes) when the server reports that no shard backend supports
// injection at all: waiting for bg_repairs against a set that cannot be
// corrupted would only ever time out. With -crash-after the run ends by sending CRASH,
// killing the server after it writes per-shard crash images; `pglpool
// check <dir>/shard-*.pgl` then verifies every recovered shard.
//
// -snapscans mixes in snapshot-consistent scans: each op opens a
// pinned-generation SNAPSCAN over a window of the key space and pages
// it to completion, verifying ascending order and bounds per page; the
// report carries snap_scan_pairs and snapshot_scan_ops_per_sec, and
// server_stats carries snap_scans plus the version-buffer gauges
// (snapshot_pins, versions_retained). A scan whose pin the server's
// bounded version buffer evicts mid-flight fails with the typed
// ErrSnapshotTooOld; that is the retention cap working as documented,
// so it counts as snap_evictions in the report, not as an error.
//
// Two standalone modes exercise the backup path end to end. -backup
// FILE streams a snapshot-consistent BACKUP of the whole keyspace to
// FILE (16-byte little-endian key,value records) — run it while a
// separate pglload drives writes to prove one generation-consistent
// image emerges from under them; the report's versions_retained is the
// peak the server's version buffers reached while the stream ran.
// -restore FILE loads such a file back through MPUT batches and SYNCs,
// after which `pglpool check` on the restored shard files is the
// loadtest's backup gate.
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pangolin-go/pangolin/server"
)

type latencyMS struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

type report struct {
	Addr     string `json:"addr"`
	Clients  int    `json:"clients"`
	Batch    int    `json:"batch"`
	Pipeline int    `json:"pipeline"`
	// Backend echoes the server's STATS backends field when -backend
	// asked for a specific engine, so A/B reports are self-labeling.
	Backend    string  `json:"backend,omitempty"`
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Scan accounting: ScanPairs is the pairs all SCAN responses
	// carried; ScanOpsPerSec is the SCAN round-trip rate (0 when the
	// mix has no scans). The SnapScan fields mirror them for the
	// snapshot-consistent scans -snapscans mixes in (an "op" is one
	// whole paginated snapshot scan, opened, drained, and released);
	// VersionsRetained echoes the server's end-of-run versions_retained
	// gauge — superseded versions still pinned by open snapshots.
	ScanPairs         uint64  `json:"scan_pairs"`
	ScanOpsPerSec     float64 `json:"scan_ops_per_sec"`
	SnapScanPairs     uint64  `json:"snap_scan_pairs"`
	SnapScanOpsPerSec float64 `json:"snapshot_scan_ops_per_sec"`
	// SnapEvictions counts snapshot scans aborted by ErrSnapshotTooOld:
	// the server's bounded version buffer evicted their pin under load.
	// That is the documented outcome of the retention cap — the scan
	// fails typed instead of serving weaker pages — so it is not a
	// client error, but a plateau here under light snapshot load would
	// mean the caps are too tight for the mix.
	SnapEvictions    uint64            `json:"snap_evictions,omitempty"`
	VersionsRetained int               `json:"versions_retained"`
	Latency          latencyMS         `json:"latency_ms"`
	Mix              map[string]uint64 `json:"mix"`
	// GroupBatchMean is the server's achieved group-commit depth —
	// batched_ops/batches from server_stats — the number pipelining is
	// supposed to raise (deeper in-flight windows keep shard worker
	// queues full, so each persist fence covers more operations).
	GroupBatchMean float64 `json:"group_batch_mean,omitempty"`
	// Client-process allocation pressure over the load window, from
	// runtime/metrics: AllocBytesPerOp is the heap-alloc byte delta
	// divided by completed ops, and GCPauseP99 the p99 stop-the-world
	// pause (seconds) among pauses that occurred during the run. Both
	// are recorded for trend-watching, not gated — single-core CI makes
	// wall-clock-adjacent numbers too noisy to fail a build on, but a
	// drift here across PRs flags a hot-path allocation regression on
	// the client side the same way the server-side budgets do.
	AllocBytesPerOp float64       `json:"alloc_bytes_per_op"`
	GCPauseP99      float64       `json:"gc_pause_p99"`
	Server          *server.Stats `json:"server_stats,omitempty"`
	CrashSent       bool          `json:"crash_sent"`
	// Corruption-healing accounting (with -faults): how many live
	// objects INJECT corrupted during and after the load, and whether
	// the server's background scrubber reported bg_repairs > 0 within
	// -heal-wait afterwards. A -faults run exits nonzero when Healed is
	// false — the corruption-healing gate.
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	Healed         bool   `json:"healed,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7499", "server address")
	clients := flag.Int("clients", 32, "concurrent closed-loop clients")
	ops := flag.Uint64("ops", 100_000, "total operations")
	keys := flag.Uint64("keys", 1<<16, "key space size")
	reads := flag.Float64("reads", 0.5, "fraction of GETs")
	dels := flag.Float64("dels", 0.1, "fraction of DELs")
	scans := flag.Float64("scans", 0, "fraction of SCANs (each one SCAN frame; requires -batch 1)")
	snapScans := flag.Float64("snapscans", 0, "fraction of snapshot scans (each a full paginated SNAPSCAN over a key-space window; requires -batch 1)")
	scanLimit := flag.Int("scan-limit", 64, "pairs requested per SCAN frame")
	seed := flag.Int64("seed", 1, "workload seed")
	backend := flag.String("backend", "",
		"expected server backends (the STATS backends field, e.g. \"logstore\" or \"pangolin,logstore\"); nonempty makes the run label its report with the backend and exit nonzero on a mismatch — the A/B phase's guard against measuring the wrong engine")
	batch := flag.Int("batch", 1, "operations per client frame (1 = single-op GET/PUT/DEL, >1 = MGET/MPUT/MDEL)")
	pipeline := flag.Int("pipeline", 1, "closed-loop workers per connection (each keeps one request in flight, so N workers pipeline N requests on one connection)")
	crashAfter := flag.Bool("crash-after", false, "send CRASH when done (server dies with crash images)")
	faults := flag.Int("faults", 0, "live faults to INJECT while the load runs (corruption-healing phase); the run then waits for the server's background scrubber to report bg_repairs > 0")
	faultEvery := flag.Duration("fault-every", 50*time.Millisecond, "pause between INJECT frames")
	healWait := flag.Duration("heal-wait", 15*time.Second, "how long to wait, after the load, for bg_repairs > 0 (with -faults)")
	backupFile := flag.String("backup", "", "standalone mode: stream a snapshot-consistent BACKUP of the whole keyspace to this file and exit")
	restoreFile := flag.String("restore", "", "standalone mode: load a -backup file back into the server via MPUT batches, SYNC, and exit")
	flag.Parse()
	if *backupFile != "" {
		runBackup(*addr, *backupFile)
		return
	}
	if *restoreFile != "" {
		runRestore(*addr, *restoreFile)
		return
	}
	if *reads+*dels+*scans+*snapScans > 1 {
		log.Fatal("pglload: -reads + -dels + -scans + -snapscans exceed 1")
	}
	if *batch < 1 || *batch > server.MaxBatchOps {
		log.Fatalf("pglload: -batch must be in [1, %d]", server.MaxBatchOps)
	}
	if (*scans > 0 || *snapScans > 0) && *batch != 1 {
		log.Fatal("pglload: -scans and -snapscans require -batch 1 (a scan is its own frame)")
	}
	if *scanLimit < 1 || *scanLimit > server.MaxScanPairs {
		log.Fatalf("pglload: -scan-limit must be in [1, %d]", server.MaxScanPairs)
	}
	if *pipeline < 1 || *pipeline > server.MaxWindow {
		log.Fatalf("pglload: -pipeline must be in [1, %d]", server.MaxWindow)
	}

	var (
		opCount     atomic.Uint64 // ops claimed
		opsDone     atomic.Uint64 // ops completed
		errCount    atomic.Uint64
		gets        atomic.Uint64
		puts        atomic.Uint64
		delOps      atomic.Uint64
		scanOps     atomic.Uint64
		scanPairs   atomic.Uint64
		snapOps     atomic.Uint64
		snapPairs   atomic.Uint64
		snapEvicted atomic.Uint64
	)
	workers := *clients * *pipeline
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup

	// Fault injector (with -faults): a side connection corrupts live
	// objects while the load runs, so the server's background scrubber
	// has to heal corruption racing real traffic. INJECT alternates
	// scribbles and media-error poison by seed parity.
	var faultsInjected atomic.Uint64
	stopInject := make(chan struct{})
	var injectWG sync.WaitGroup
	if *faults > 0 {
		injectWG.Add(1)
		go func() {
			defer injectWG.Done()
			c, err := server.Dial(context.Background(), *addr)
			if err != nil {
				log.Printf("pglload: fault injector: %v", err)
				return
			}
			defer c.Close()
			// Capability probe before any corruption: INJECT with count 0
			// corrupts nothing but reports how many shards can inject at
			// all. When none can (log-structured backends have no in-place
			// bytes to scribble on), the heal gate can only ever time out —
			// fail the run now with a clear reason instead.
			probe, err := c.Inject(*seed, 0)
			if err != nil {
				log.Printf("pglload: inject probe: %v", err)
				return
			}
			if probe.CapableShards == 0 {
				log.Fatalf("pglload: -faults: none of the server's %d shards support fault injection — the bg_repairs gate cannot pass; point -faults at a pangolin-backed set",
					probe.TotalShards)
			}
			for i := 0; i < *faults; i++ {
				select {
				case <-stopInject:
					return
				case <-time.After(*faultEvery):
				}
				n, err := c.Inject(*seed+int64(i), 1)
				if err != nil {
					log.Printf("pglload: inject: %v", err)
					return
				}
				faultsInjected.Add(n.Injected)
			}
		}()
	}

	// runWorker is one closed-loop worker: it claims ops from the shared
	// budget and keeps exactly one request in flight on c until the
	// budget runs out. With -pipeline N, N workers share each connection
	// — the pipelined client interleaves their frames on one socket.
	// snapSem (one per connection) keeps the workers sharing that
	// connection within the server's MaxConnSnapshots concurrent
	// snapshots; without it a pipelined connection could race more
	// snapshot opens than the server allows per connection.
	runWorker := func(c *server.Client, slot int, snapSem chan struct{}) {
		rng := rand.New(rand.NewSource(*seed + int64(slot)))
		lats := make([]time.Duration, 0, int(*ops/uint64(workers)*2))
		// Keep whatever was measured even if this worker errors out
		// mid-run, so the report reflects the ops that did execute.
		defer func() { latencies[slot] = lats }()
		kbuf := make([]uint64, 0, *batch)
		vbuf := make([]uint64, 0, *batch)
		for {
			// Claim up to -batch ops from the shared budget; the
			// final claim may be short.
			end := opCount.Add(uint64(*batch))
			first := end - uint64(*batch) + 1
			if first > *ops {
				break
			}
			count := *batch
			if end > *ops {
				count = int(*ops - first + 1)
			}
			kbuf = kbuf[:0]
			for i := 0; i < count; i++ {
				kbuf = append(kbuf, rng.Uint64()%*keys)
			}
			// Each round trip is one op type, so a batch maps to one
			// MGET/MPUT/MDEL frame; the dice keep the requested mix
			// across rounds.
			dice := rng.Float64()
			t0 := time.Now()
			var err error
			switch {
			case dice < *scans:
				// One SCAN frame from a uniform lo, verified
				// client-side: pairs must ascend, respect the bounds,
				// and fit the limit — the wire-level proof of the
				// ordered-scan contract under live writers.
				scanOps.Add(uint64(count))
				lo := kbuf[0]
				var ps []server.Pair
				ps, _, _, err = c.Scan(lo, ^uint64(0), *scanLimit, 0)
				if err == nil {
					if len(ps) > *scanLimit {
						err = fmt.Errorf("scan returned %d pairs, limit %d", len(ps), *scanLimit)
					}
					for i, pr := range ps {
						if pr.K < lo || (i > 0 && pr.K <= ps[i-1].K) {
							err = fmt.Errorf("scan order/bounds violation at pair %d (key %d, lo %d)", i, pr.K, lo)
							break
						}
					}
					scanPairs.Add(uint64(len(ps)))
				}
			case dice < *scans+*snapScans:
				// One whole snapshot scan: open a pinned-generation
				// SNAPSCAN over a key-space window and page it to
				// completion. Every page must ascend, respect the window,
				// and — unlike a live scan — describe the single committed
				// state pinned at open, whatever the other workers commit
				// meanwhile. The terminal page releases the server-side
				// pins; -ops counts the whole scan as one op.
				snapOps.Add(uint64(count))
				lo := kbuf[0]
				hi := lo + (*keys >> 4)
				snapSem <- struct{}{}
				sc := c.SnapScan(lo, hi)
				var prev uint64
				firstPair := true
				for !sc.Done() {
					var ps []server.Pair
					ps, err = sc.Next(*scanLimit)
					if err != nil {
						break
					}
					for _, pr := range ps {
						if pr.K < lo || pr.K > hi || (!firstPair && pr.K <= prev) {
							err = fmt.Errorf("snapshot scan order/bounds violation (key %d, window [%d,%d])", pr.K, lo, hi)
							break
						}
						prev, firstPair = pr.K, false
					}
					snapPairs.Add(uint64(len(ps)))
					if err != nil {
						break
					}
				}
				<-snapSem
				if errors.Is(err, server.ErrSnapshotTooOld) {
					// The bounded version buffer evicted this scan's pin —
					// the typed outcome of the retention cap. The scan
					// aborted instead of serving weaker pages (the server
					// freed its slot), so count the eviction and move on.
					snapEvicted.Add(1)
					err = nil
				}
			case dice < *scans+*snapScans+*reads:
				gets.Add(uint64(count))
				if count == 1 {
					_, _, err = c.Get(kbuf[0])
				} else {
					_, _, err = c.MGet(kbuf)
				}
			case dice < *scans+*snapScans+*reads+*dels:
				delOps.Add(uint64(count))
				if count == 1 {
					_, err = c.Del(kbuf[0])
				} else {
					_, err = c.MDel(kbuf)
				}
			default:
				puts.Add(uint64(count))
				if count == 1 {
					err = c.Put(kbuf[0], rng.Uint64())
				} else {
					vbuf = vbuf[:0]
					for range kbuf {
						vbuf = append(vbuf, rng.Uint64())
					}
					err = c.MPut(kbuf, vbuf)
				}
			}
			lats = append(lats, time.Since(t0))
			if err != nil {
				errCount.Add(1)
				log.Printf("pglload: worker %d: %v", slot, err)
				return
			}
			opsDone.Add(uint64(count))
		}
	}

	gcBefore := readGC()
	start := time.Now()
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.Dial(context.Background(), *addr,
				server.WithPipelineDepth(*pipeline))
			if err != nil {
				log.Printf("pglload: client %d: %v", id, err)
				errCount.Add(1)
				return
			}
			defer c.Close()
			snapSem := make(chan struct{}, server.MaxConnSnapshots)
			var cwg sync.WaitGroup
			for w := 0; w < *pipeline; w++ {
				cwg.Add(1)
				go func(slot int) {
					defer cwg.Done()
					runWorker(c, slot, snapSem)
				}(id**pipeline + w)
			}
			cwg.Wait()
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	gcAfter := readGC()
	close(stopInject)
	injectWG.Wait()

	all := make([]time.Duration, 0, *ops)
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / float64(time.Millisecond)
	}

	rep := report{
		Addr:              *addr,
		Clients:           *clients,
		Batch:             *batch,
		Pipeline:          *pipeline,
		Ops:               opsDone.Load(),
		Errors:            errCount.Load(),
		ElapsedSec:        elapsed.Seconds(),
		OpsPerSec:         float64(opsDone.Load()) / elapsed.Seconds(),
		ScanPairs:         scanPairs.Load(),
		ScanOpsPerSec:     float64(scanOps.Load()) / elapsed.Seconds(),
		SnapScanPairs:     snapPairs.Load(),
		SnapScanOpsPerSec: float64(snapOps.Load()) / elapsed.Seconds(),
		SnapEvictions:     snapEvicted.Load(),
		Latency: latencyMS{
			P50: pct(0.50), P95: pct(0.95), P99: pct(0.99), P999: pct(0.999),
			Max: pct(1),
		},
		Mix:             map[string]uint64{"get": gets.Load(), "put": puts.Load(), "del": delOps.Load(), "scan": scanOps.Load(), "snapscan": snapOps.Load()},
		AllocBytesPerOp: allocBytesPerOp(gcBefore, gcAfter, opsDone.Load()),
		GCPauseP99:      gcPauseP99(gcBefore, gcAfter),
		// Set before the post-run dial: a failed stats connection must
		// not misreport the injections that already happened as zero.
		FaultsInjected: faultsInjected.Load(),
	}

	// Fetch server-side stats, and optionally send the simulated crash.
	if c, err := server.Dial(context.Background(), *addr); err == nil {
		if *faults > 0 {
			// Post-load faults are the deterministic part of the gate:
			// with the traffic stopped, only the background scrubber can
			// heal them — a read repairing everything first can no
			// longer mask a dead scheduler. The gate requires bg_repairs
			// to INCREASE past its pre-injection value, so repairs the
			// scheduler made during the load (before wedging) cannot
			// satisfy it either.
			base := uint64(0)
			if st, err := c.Scrub(false); err == nil {
				base = st.Health.BgRepairs
			}
			for i := 0; i < 4; i++ {
				if n, err := c.Inject(*seed+int64(*faults)+int64(i), 1); err == nil {
					faultsInjected.Add(n.Injected)
				}
			}
			rep.FaultsInjected = faultsInjected.Load()
			deadline := time.Now().Add(*healWait)
			for {
				st, err := c.Scrub(false)
				if err == nil && st.Health.BgRepairs > base {
					rep.Healed = true
					break
				}
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
		}
		if st, err := c.Stats(); err == nil {
			rep.Server = &st
			rep.Backend = st.Backends
			rep.VersionsRetained = st.VersionsHeld
			if st.Batches > 0 {
				rep.GroupBatchMean = float64(st.BatchedOps) / float64(st.Batches)
			}
		}
		if *crashAfter {
			if err := c.Crash(*seed); err != nil {
				log.Printf("pglload: crash request: %v", err)
			} else {
				rep.CrashSent = true
			}
		}
		c.Close()
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "pglload: %d errors\n", rep.Errors)
		os.Exit(1)
	}
	if *backend != "" && rep.Backend != *backend {
		fmt.Fprintf(os.Stderr, "pglload: server backends %q, want %q\n", rep.Backend, *backend)
		os.Exit(1)
	}
	if *faults > 0 && !rep.Healed {
		fmt.Fprintf(os.Stderr, "pglload: background scrubber never reported bg_repairs > 0 (injected %d faults)\n",
			rep.FaultsInjected)
		os.Exit(1)
	}
}

// runBackup implements -backup: one BACKUP stream written to a file of
// 16-byte little-endian (key, value) records, with a side connection
// polling STATS while the stream runs so the report can show the peak
// versions_retained and snapshot_pins the server reached — the
// version-buffer cost of holding one consistent image open while
// writers proceed.
func runBackup(addr, file string) {
	f, err := os.Create(file)
	if err != nil {
		log.Fatalf("pglload: backup: %v", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	peakVers, peakPins := 0, 0
	stopStats := make(chan struct{})
	var statsWG sync.WaitGroup
	if sc, serr := server.Dial(context.Background(), addr); serr == nil {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			defer sc.Close()
			for {
				select {
				case <-stopStats:
					return
				case <-time.After(100 * time.Millisecond):
				}
				if st, err := sc.Stats(); err == nil {
					if st.VersionsHeld > peakVers {
						peakVers = st.VersionsHeld
					}
					if st.SnapshotPins > peakPins {
						peakPins = st.SnapshotPins
					}
				}
			}
		}()
	}

	var pairs uint64
	var rec [16]byte
	var writeErr error
	start := time.Now()
	streamErr := server.Backup(context.Background(), addr, func(k, v uint64) bool {
		binary.LittleEndian.PutUint64(rec[:8], k)
		binary.LittleEndian.PutUint64(rec[8:], v)
		if _, writeErr = bw.Write(rec[:]); writeErr != nil {
			return false
		}
		pairs++
		return true
	})
	elapsed := time.Since(start)
	close(stopStats)
	statsWG.Wait()
	if streamErr == nil {
		streamErr = writeErr
	}
	if streamErr == nil {
		streamErr = bw.Flush()
	}
	if streamErr == nil {
		streamErr = f.Sync()
	}
	if cerr := f.Close(); streamErr == nil {
		streamErr = cerr
	}
	if streamErr != nil {
		log.Fatalf("pglload: backup: %v", streamErr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"backup_file":        file,
		"backup_pairs":       pairs,
		"elapsed_sec":        elapsed.Seconds(),
		"versions_retained":  peakVers,
		"snapshot_pins_peak": peakPins,
	}); err != nil {
		log.Fatal(err)
	}
}

// runRestore implements -restore: replay a -backup file through MPUT
// batches and SYNC, so the restored image is durable before `pglpool
// check` inspects the shard files — the final leg of the backup gate.
func runRestore(addr, file string) {
	f, err := os.Open(file)
	if err != nil {
		log.Fatalf("pglload: restore: %v", err)
	}
	defer f.Close()
	c, err := server.Dial(context.Background(), addr)
	if err != nil {
		log.Fatalf("pglload: restore: %v", err)
	}
	defer c.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	ks := make([]uint64, 0, server.MaxBatchOps)
	vs := make([]uint64, 0, server.MaxBatchOps)
	var restored uint64
	start := time.Now()
	flush := func() error {
		if len(ks) == 0 {
			return nil
		}
		if err := c.MPut(ks, vs); err != nil {
			return err
		}
		restored += uint64(len(ks))
		ks, vs = ks[:0], vs[:0]
		return nil
	}
	var rec [16]byte
	for {
		if _, rerr := io.ReadFull(br, rec[:]); rerr != nil {
			if rerr == io.EOF {
				break
			}
			// ErrUnexpectedEOF here means a truncated record — a corrupt
			// backup file must fail the restore, not silently shorten it.
			log.Fatalf("pglload: restore: reading %s: %v", file, rerr)
		}
		ks = append(ks, binary.LittleEndian.Uint64(rec[:8]))
		vs = append(vs, binary.LittleEndian.Uint64(rec[8:]))
		if len(ks) == server.MaxBatchOps {
			if err := flush(); err != nil {
				log.Fatalf("pglload: restore: %v", err)
			}
		}
	}
	if err := flush(); err != nil {
		log.Fatalf("pglload: restore: %v", err)
	}
	if err := c.Sync(); err != nil {
		log.Fatalf("pglload: restore: sync: %v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"restore_file":   file,
		"restored_pairs": restored,
		"elapsed_sec":    time.Since(start).Seconds(),
	}); err != nil {
		log.Fatal(err)
	}
}
