package main

import (
	"math"
	"runtime/metrics"
)

// gcSample is one runtime/metrics snapshot of the client process's
// allocation pressure: cumulative heap-alloc bytes and the cumulative
// GC pause histogram. Two samples bracket the load window; the report's
// alloc_bytes_per_op and gc_pause_p99 come from their difference, so
// setup work (key preload, connection dials) outside the bracket does
// not pollute the per-op numbers.
type gcSample struct {
	allocBytes uint64
	// Pause histogram copy: bucket boundaries (seconds) and cumulative
	// counts at sample time. The runtime owns the Sample's histogram
	// memory between Reads, so both slices are copied out.
	buckets []float64
	counts  []uint64
}

func readGC() gcSample {
	s := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/sched/pauses/total/gc:seconds"},
	}
	metrics.Read(s)
	var g gcSample
	if s[0].Value.Kind() == metrics.KindUint64 {
		g.allocBytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindFloat64Histogram {
		h := s[1].Value.Float64Histogram()
		g.buckets = append([]float64(nil), h.Buckets...)
		g.counts = append([]uint64(nil), h.Counts...)
	}
	return g
}

func allocBytesPerOp(before, after gcSample, ops uint64) float64 {
	if ops == 0 || after.allocBytes < before.allocBytes {
		return 0
	}
	return float64(after.allocBytes-before.allocBytes) / float64(ops)
}

// gcPauseP99 returns the p99 GC pause, in seconds, among pauses that
// landed between the two samples (the counts are cumulative, so the
// bucket-wise difference is the run's own pause distribution). The
// value reported is the upper bound of the bucket holding the 99th
// percentile; 0 when no pause occurred during the window.
func gcPauseP99(before, after gcSample) float64 {
	if len(after.counts) == 0 || len(after.counts) != len(before.counts) {
		return 0
	}
	delta := make([]uint64, len(after.counts))
	total := uint64(0)
	for i := range delta {
		if after.counts[i] >= before.counts[i] {
			delta[i] = after.counts[i] - before.counts[i]
		}
		total += delta[i]
	}
	if total == 0 {
		return 0
	}
	// counts[i] covers (buckets[i], buckets[i+1]]; len(buckets) ==
	// len(counts)+1. Walk to the bucket containing the p99 count.
	target := (total*99 + 99) / 100 // ceil(total * 0.99)
	seen := uint64(0)
	for i, c := range delta {
		seen += c
		if seen >= target {
			hi := after.buckets[i+1]
			if math.IsInf(hi, 1) {
				// Overflow bucket: report its finite lower bound rather
				// than +Inf.
				return after.buckets[i]
			}
			return hi
		}
	}
	return 0
}
