// Command allocgate enforces the checked-in allocation budgets
// (bench/alloc_budgets.txt) against a `go test -bench -benchmem` output
// file. It is the teeth behind `make bench-alloc`: every BenchmarkAlloc*
// benchmark named in the budget file must appear in the run and must
// come in at or under its allocs/op and B/op budgets, or the gate exits
// nonzero. Wall-clock numbers are ignored — CI shares one core — but
// allocation counts are deterministic at a fixed -benchtime, which is
// what makes them gateable where ns/op is not.
//
// Usage:
//
//	allocgate [-budgets bench/alloc_budgets.txt] bench-output.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type budget struct {
	name                  string
	maxAllocs, maxBytes   uint64
	baseAllocs, baseBytes uint64
	gotAllocs, gotBytes   uint64
	seen                  bool
}

func main() {
	budgetsPath := flag.String("budgets", "bench/alloc_budgets.txt", "budget file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: allocgate [-budgets file] bench-output.txt")
		os.Exit(2)
	}

	budgets, err := loadBudgets(*budgetsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	if err := scanBench(flag.Arg(0), budgets); err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}

	fail := false
	fmt.Printf("%-32s %14s %14s %18s\n", "benchmark", "allocs/op", "B/op", "vs pre-pool base")
	for _, b := range budgets {
		if !b.seen {
			fmt.Printf("%-32s MISSING from benchmark output\n", b.name)
			fail = true
			continue
		}
		status := "ok"
		if b.gotAllocs > b.maxAllocs || b.gotBytes > b.maxBytes {
			status = "OVER BUDGET"
			fail = true
		}
		fmt.Printf("%-32s %6d (<=%4d) %6d (<=%5d) %7d -> %-6d %s\n",
			b.name, b.gotAllocs, b.maxAllocs, b.gotBytes, b.maxBytes,
			b.baseAllocs, b.gotAllocs, status)
	}
	if fail {
		fmt.Println("\nallocation budget breached: either fix the regression or justify")
		fmt.Println("raising the budget in bench/alloc_budgets.txt (treat that like")
		fmt.Println("weakening a test).")
		os.Exit(1)
	}
	fmt.Println("\nall allocation budgets hold")
}

func loadBudgets(path string) ([]*budget, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*budget
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("%s:%d: want 5 fields, got %d", path, line, len(fields))
		}
		b := &budget{name: fields[0]}
		for i, dst := range []*uint64{&b.maxAllocs, &b.maxBytes, &b.baseAllocs, &b.baseBytes} {
			v, err := strconv.ParseUint(fields[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: field %d: %v", path, line, i+2, err)
			}
			*dst = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no budgets", path)
	}
	return out, nil
}

// scanBench extracts allocs/op and B/op for each budgeted benchmark from
// go test -bench -benchmem output. Lines look like:
//
//	BenchmarkAllocPipelinedGetPut   10000   8725 ns/op   1183 B/op   19 allocs/op
//
// with an optional -N GOMAXPROCS suffix on the name.
func scanBench(path string, budgets []*budget) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byName := make(map[string]*budget, len(budgets))
	for _, b := range budgets {
		byName[b.name] = b
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b, ok := byName[name]
		if !ok {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseUint(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.gotBytes = v
				b.seen = true
			case "allocs/op":
				b.gotAllocs = v
				b.seen = true
			}
		}
	}
	return sc.Err()
}
