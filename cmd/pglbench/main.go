// Command pglbench regenerates the tables and figures of the paper's
// evaluation (§4) against the simulated NVMM substrate.
//
// Usage:
//
//	pglbench [-full] [-ops N] [-kvops N] <experiment>
//
// Experiments:
//
//	fig3    single-object transaction latency (alloc/overwrite/free)
//	fig4    concurrent overwrite scalability
//	fig5    key-value store insert/remove throughput
//	fig6    checksum verification policy cost
//	table2  operation-mode matrix
//	table3  per-transaction allocation/modification sizes
//	table4  vulnerability (bytes accessed unverified, normalized)
//	mem     §4.2 storage overheads, pool-init latency, µ-buffer DRAM
//	recover §4.6 error injection, repair latency, canary detection
//	xover   hybrid parity atomic/vectorized crossover sweep (ablation)
//	alloc   group-commit heap allocations per op vs batch depth
//	ext     §3.5 extension: undo logging with parity (Pmemobj-P)
//	readpath  concurrent verified-read fast path vs worker-serialized reads
//	scrub   incremental scrub step latency; commit p99 with scrubber on/off
//	all     everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pangolin-go/pangolin/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "paper-scale workloads (1M KV ops; takes much longer)")
	ops := flag.Int("ops", 0, "override per-cell operation count")
	kvops := flag.Int("kvops", 0, "override KV operation count")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pglbench [-full] [-ops N] [-kvops N] {fig3|fig4|fig5|fig6|table2|table3|table4|mem|recover|xover|ext|readpath|scrub|alloc|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.Quick()
	if *full {
		cfg = bench.Full()
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *kvops > 0 {
		cfg.KVOps = *kvops
	}
	w := os.Stdout
	run := func(name string) error {
		switch name {
		case "fig3":
			return bench.Fig3(w, cfg)
		case "fig4":
			return bench.Fig4(w, cfg)
		case "fig5":
			return bench.Fig5(w, cfg)
		case "fig6":
			return bench.Fig6(w, cfg)
		case "table2":
			bench.Table2(w)
			return nil
		case "table3":
			return bench.Table3(w, cfg)
		case "table4":
			return bench.Table4(w, cfg)
		case "mem":
			return bench.Mem(w, cfg)
		case "recover":
			return bench.Recover(w, cfg)
		case "xover":
			return bench.Xover(w, cfg)
		case "ext":
			return bench.Ext(w, cfg)
		case "readpath":
			return bench.ReadPath(w, cfg)
		case "scrub":
			return bench.Scrub(w, cfg)
		case "alloc":
			return bench.Alloc(w, cfg)
		case "all":
			bench.Table2(w)
			for _, f := range []func() error{
				func() error { return bench.Fig3(w, cfg) },
				func() error { return bench.Fig4(w, cfg) },
				func() error { return bench.Fig5(w, cfg) },
				func() error { return bench.Fig6(w, cfg) },
				func() error { return bench.Table3(w, cfg) },
				func() error { return bench.Table4(w, cfg) },
				func() error { return bench.Mem(w, cfg) },
				func() error { return bench.Recover(w, cfg) },
				func() error { return bench.Xover(w, cfg) },
				func() error { return bench.Ext(w, cfg) },
				func() error { return bench.ReadPath(w, cfg) },
				func() error { return bench.Scrub(w, cfg) },
				func() error { return bench.Alloc(w, cfg) },
			} {
				if err := f(); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "pglbench: %v\n", err)
		os.Exit(1)
	}
}
