package pangolin

import (
	"bytes"
	"testing"
)

type listNode struct {
	Next OID
	Val  uint64
}

func newPool(t *testing.T, mode Mode) *Pool {
	t.Helper()
	p, err := Create(Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestTypedLinkedList(t *testing.T) {
	// The paper's Listing 1/2 scenario: a persistent linked list.
	p := newPool(t, ModePangolinMLPC)
	root, err := Root[listNode](p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Build a 10-node list.
	err = p.Run(func(tx *Tx) error {
		head, err := Open[listNode](tx, root)
		if err != nil {
			return err
		}
		head.Val = 0
		prev := head
		for i := uint64(1); i < 10; i++ {
			oid, node, err := Alloc[listNode](tx, 1)
			if err != nil {
				return err
			}
			node.Val = i
			prev.Next = oid
			prev = node
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Walk it read-only.
	var got []uint64
	oid := root
	for !oid.IsNil() {
		n, err := GetFromPool[listNode](p, oid)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, n.Val)
		oid = n.Next
	}
	if len(got) != 10 {
		t.Fatalf("walked %d nodes", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("node %d = %d", i, v)
		}
	}
}

func TestSingleObjectCommit(t *testing.T) {
	// Listing 2: modify one object without explicit transaction code.
	p := newPool(t, ModePangolinMLPC)
	root, err := Root[listNode](p, 1)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := OpenSingle[listNode](p, root)
	if err != nil {
		t.Fatal(err)
	}
	obj.Value().Val = 777
	if err := obj.Commit(); err != nil {
		t.Fatal(err)
	}
	n, err := GetFromPool[listNode](p, root)
	if err != nil {
		t.Fatal(err)
	}
	if n.Val != 777 {
		t.Fatalf("val %d", n.Val)
	}
	if err := obj.Commit(); err == nil {
		t.Fatal("double commit allowed")
	}
	// Checksums remain exact after the diff-based commit.
	if err := p.CheckObject(root); err != nil {
		t.Fatal(err)
	}
}

func TestViewRejectsPointerTypes(t *testing.T) {
	type bad struct {
		P *int
	}
	if _, err := View[bad](make([]byte, 64)); err == nil {
		t.Fatal("pointer-bearing type accepted")
	}
	type badMap struct {
		M map[int]int
	}
	if _, err := View[badMap](make([]byte, 64)); err == nil {
		t.Fatal("map-bearing type accepted")
	}
	if _, err := View[listNode](make([]byte, 8)); err == nil {
		t.Fatal("undersized data accepted")
	}
	if _, err := View[listNode](nil); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestSnapshotRoundTripKeepsData(t *testing.T) {
	p := newPool(t, ModePangolinMLPC)
	root, err := Root[listNode](p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(func(tx *Tx) error {
		n, err := Open[listNode](tx, root)
		if err != nil {
			return err
		}
		n.Val = 31337
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pool.pgl"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p2, err := LoadFile(path, Config{Mode: ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	root2, err := Root[listNode](p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if root2 != root {
		t.Fatal("root changed across snapshot")
	}
	n, err := GetFromPool[listNode](p2, root2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Val != 31337 {
		t.Fatalf("val %d after reload", n.Val)
	}
}

func TestFaultInjectionEndToEnd(t *testing.T) {
	p := newPool(t, ModePangolinMLPC)
	root, err := Root[listNode](p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(func(tx *Tx) error {
		n, err := Open[listNode](tx, root)
		if err != nil {
			return err
		}
		n.Val = 2024
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Media error through the public API.
	p.InjectMediaError(root.Off)
	n, err := GetFromPool[listNode](p, root)
	if err != nil {
		t.Fatalf("online recovery: %v", err)
	}
	if n.Val != 2024 {
		t.Fatalf("val %d after media-error recovery", n.Val)
	}
	// Scribble, then scrub.
	p.InjectScribble(root.Off, 8, 1)
	rep, err := p.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("scrub repaired nothing: %+v", rep)
	}
	n, err = GetFromPool[listNode](p, root)
	if err != nil {
		t.Fatal(err)
	}
	if n.Val != 2024 {
		t.Fatalf("val %d after scrub", n.Val)
	}
}

func TestAllModesThroughPublicAPI(t *testing.T) {
	for _, mode := range []Mode{ModePmemobj, ModePangolin, ModePangolinML,
		ModePangolinMLP, ModePangolinMLPC, ModePmemobjR} {
		t.Run(mode.String(), func(t *testing.T) {
			p := newPool(t, mode)
			root, err := Root[listNode](p, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(func(tx *Tx) error {
				n, err := Open[listNode](tx, root)
				if err != nil {
					return err
				}
				n.Val = uint64(mode) + 100
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			n, err := GetFromPool[listNode](p, root)
			if err != nil {
				t.Fatal(err)
			}
			if n.Val != uint64(mode)+100 {
				t.Fatalf("val %d", n.Val)
			}
		})
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf[listNode]() != 24 {
		t.Fatalf("SizeOf[listNode] = %d, want 24", SizeOf[listNode]())
	}
	if SizeOf[uint64]() != 8 {
		t.Fatalf("SizeOf[uint64] = %d", SizeOf[uint64]())
	}
}
