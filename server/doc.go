// Package server exposes a shard.Set — the six persistent key-value
// structures of §4.5, hash-partitioned across independent Pangolin pools —
// as a concurrent network service, with a matching Client. It is the
// serving layer the ROADMAP's production trajectory builds on: cmd/pglserve
// wraps it in a binary and cmd/pglload drives it closed-loop.
//
// # Why sharding
//
// Pangolin transactions are per-goroutine, and two concurrent transactions
// must not modify the same object (§3.4); a single pool therefore
// serializes writers. The service scales by hash-partitioning the key
// space across N pools (internal/shard): each shard pool is owned by
// exactly one worker goroutine, every operation is routed to its shard's
// worker over a channel, and transactions on different shards commit in
// parallel. Adding shards adds commit parallelism without weakening any
// of the paper's protection mechanisms, because each pool keeps its own
// checksums, parity, and logs.
//
// Keys choose their shard via the splitmix64 finalizer modulo the shard
// count, so sequential key patterns still spread uniformly. The mapping is
// stable — it determines which pool holds which key — and each shard
// pool's root records the structure, the shard index, and the set size, so
// reopening detects shuffled or foreign shard files.
//
// # Group commit
//
// A Pangolin commit pays a durable log append, a persist fence, and a
// parity fold per transaction (§3.4), so one-transaction-per-request
// caps throughput at the fence rate. Each shard worker therefore
// group-commits: after taking one request it opportunistically drains
// whatever else its queue holds — never waiting, so an idle server adds
// no latency — and executes the whole group inside one pool transaction:
// one log persist, one fence, one parity pass, then an individual reply
// to every waiter. The commit is the linearization point for the group.
// If the group's transaction fails, nothing has reached NVMM; the worker
// retries each operation in its own transaction so one poisoned op
// cannot fail its batchmates, and each waiter gets its own verdict.
// STATS reports the achieved grouping per shard (batches, batched_ops,
// group_fallbacks).
//
// # Concurrent verified reads
//
// GET does not take the worker hop at all when it can avoid it.
// Pangolin's design point is that readers verify per-object checksums
// straight from NVMM and run concurrently — only updates need the
// transaction machinery (§3.3) — so each shard keeps a second instance
// of its structure attached to the pool's read view, and a GET executes
// a checksum-verified Lookup on the connection handler's own goroutine.
// A per-shard reader/writer gate coordinates the two populations:
// readers share the gate and run in parallel; the worker takes the
// write side around every pool access, so the group commit — still the
// shard's linearization point — excludes readers only while it runs.
// Verification is cached per object against the engine's modification
// clock (an object is re-verified only after a commit actually wrote
// it) and capped by size (very large array objects keep header + poison
// checks and rely on scrubbing, as under the default verify policy).
//
// Readers never block on the gate. If it is unavailable — a commit,
// save, crash image, scrub, or recovery window — or the read hits a
// fault that needs online repair, the GET falls back to the worker
// queue, whose repairing read path serializes with everything else.
// An MGET whose slice for a shard is all reads takes the same fast path
// with one gate hold for the slice. STATS separates the populations:
// fast_gets/fast_hits count fast-path reads, gets counts worker reads,
// and fast_fallbacks/fast_faults count bounced reads by cause, so a
// load run can prove the fast path actually engaged (pglserve
// -serial-reads disables it entirely for A/B runs; scripts/loadtest.sh
// measures both and emits the ratio in compare.json).
//
// # Ordered range scans
//
// SCAN serves the five ordered structures' differentiator — bounded,
// ascending iteration — through every layer. Keys are hash-partitioned,
// so each shard holds an arbitrary but disjoint subset of a range; the
// server streams each shard's in-range pairs ascending and k-way
// heap-merges the streams into globally ordered, duplicate-free output
// (the unordered hashmap still scans completely: its per-shard chunks
// are k-smallest selections over a full pass, so merged output is
// ordered for every structure). Shards are consumed in fixed-size
// chunks under the per-shard reader gate — the gate is released and
// re-acquired every chunk (shard.ScanChunkPairs pairs), so a long scan
// never starves a shard's group commits — with the same two-population
// split as GET: chunks run checksum-verified on the connection
// handler's goroutine against the shard's ReadView when the gate is
// free, and fall back to the worker queue when it is busy or the chunk
// hits a fault needing repair. STATS reports fast_scans/fast_scan_pairs
// vs scans/scan_pairs, plus scan_fallbacks/scan_faults by cause.
//
// SCAN's consistency is per-chunk commit-consistency: every chunk
// observes a single committed image of its shard (commits are excluded
// while the chunk runs, so no torn pairs and no uncommitted values),
// but a scan that spans several chunks, pages, or shards composes
// images taken at different moments — a pair committed behind the
// cursor after its chunk ran is missed, and a pair committed ahead of
// the cursor appears. When the whole scan must observe exactly one
// committed state while writes proceed, use SNAPSCAN (or BACKUP for a
// full-pool stream): it pins a generation per shard at open and every
// page resolves at those generations — see "Snapshots and backup"
// below.
//
// A SCAN request carries lo, hi, limit, cursor; the scan starts at
// max(lo, cursor) — pass cursor 0 to start a fresh scan — and returns
// at most limit pairs (limit 0, or above MaxScanPairs (4096), asks for
// a full frame). The response body leads with a more byte and a
// next-cursor: while more is 1, repeating the request with cursor set
// to next-cursor continues the scan exactly where the previous page
// ended, with no gaps and no repeats (the cursor is a plain key, so it
// remains valid across reconnects and server restarts). When more is 0
// the range is exhausted and next-cursor is meaningless.
//
// Clients feed that window two ways: many connections (concurrent
// single-op requests against one shard group together), or the batch ops
// MGET/MPUT/MDEL, which carry many operations in one frame. A batch
// request is partitioned by shard; each shard's slice executes inside
// one transaction (atomically — unless that shard falls back as above,
// when per-op statuses in the response tell which ops failed), different
// shards commit concurrently, and there is no atomicity across shards.
// Ops for one key always land on one shard, so per-key ordering within a
// batch is preserved.
//
// # Snapshots and backup
//
// SNAPSCAN (op 14) and BACKUP (op 15) read one committed state of the
// whole set while group commits proceed. Opening a snapshot pins every
// shard's current committed generation — each pin is serialized onto
// its shard's worker, so it lands between group commits, never inside
// one — and the pins together form the set-level snapshot vector. From
// then on the shard's engine preserves the pre-image of every object a
// commit overwrites in a bounded per-shard version buffer, and every
// snapshot read resolves at exactly the pinned generation: superseded
// versions win over live bytes, keys inserted after the pin are masked
// out, keys deleted after the pin are restored. A paginated SNAPSCAN or
// a BACKUP stream therefore sees one state end to end, no matter how
// many commits land while it pages.
//
// The contract's edges are typed, never silent:
//
//   - Pin lifetime. A SNAPSCAN's pins are held by the connection: the
//     terminal page (more = 0) releases them, and closing the
//     connection releases whatever is still open — an abandoned scan
//     cannot leak pins past its connection. A connection holds at most
//     MaxConnSnapshots (4) snapshots at once; further opens are
//     refused until one finishes. BACKUP owns its snapshot internally
//     and releases it when the stream ends, either way.
//   - Bounded retention. Preserved versions cost memory on the write
//     path, so each shard caps them (store.DefaultMaxPins distinct
//     pinned generations, store.DefaultMaxVersions preserved
//     versions); the oldest pin is evicted past a cap. Reads of an
//     evicted — or released — snapshot fail with SNAP_TOO_OLD
//     (ErrSnapshotTooOld via errors.Is): reopen and rescan, never a
//     page of mixed-generation data.
//   - Capability. A backend that cannot preserve versions must not
//     pretend: opening a snapshot over a set with any
//     snapshot-incapable shard fails whole with SNAP_UNSUPPORTED
//     (ErrSnapshotUnsupported), releasing any pins already taken,
//     rather than pinning some shards and silently reading the rest
//     live. Both in-repo backends (pangolin, logstore) implement the
//     capability.
//   - Cursor modes. A snapshot cursor continues its snapshot (the
//     request carries the snapshot id the first page returned); a live
//     SCAN cursor continues a live scan. Presenting a continuation
//     cursor without its snapshot id, or an id nobody opened, is
//     refused with CURSOR_MODE (ErrCursorMode) — the two modes promise
//     different consistency, so a page never silently continues in the
//     other one. The Client's SnapScanner makes the mix impossible by
//     construction: it owns its snapshot id and cursor privately.
//
// STATS accounts for the machinery: snap_scans/snap_scan_pairs count
// snapshot reads per shard, and the gauges snapshot_pins and
// versions_retained expose the live cost of open pins, so an operator
// can see a leaked or long-lived snapshot as a versions_retained
// plateau. scripts/loadtest.sh gates on the whole path: a BACKUP taken
// under sustained writes is restored into a fresh set and must pass
// `pglpool check`.
//
// # Background maintenance (online scrubbing)
//
// Checksums and parity only help if corruption is found and repaired
// while the pool keeps serving traffic (§3.3 "online scrubbing"). The
// serving layer therefore runs a maintenance scheduler (pglserve
// -scrub-interval, shard.Options.ScrubInterval): every interval it
// offers ONE bounded scrub step to the next shard round-robin, routed
// through that shard's worker queue so it serializes with commits
// exactly like any other pool access. A step verifies and repairs a
// capped chunk — by default at most 8 poisoned pages, or 64 live-object
// checksums, or 256 KB of the parity invariant
// (pangolin.ScrubberConfig) — under a freeze window bounded by those
// caps, and a shard's full-pool integrity is the fixpoint the steps
// converge to: known-bad pages are drained first every step, then a
// cursor walks the live objects, then the parity zones, and the pass
// completes when the cursor wraps.
//
// Backpressure is absolute: a step is skipped (counted as a
// scrub_backoff) whenever the shard's worker has queued requests, so a
// busy worker always wins and the scrubber consumes only idle moments.
// The cost trade is the usual scrub-rate-vs-MTTR one: a short interval
// shrinks the window in which unread corruption can accumulate a second
// overlapping fault (which parity cannot repair) at the price of more
// background work; a long interval is nearly free but leaves cold data
// unverified longer. The single knob to reason with is the full-pass
// time ≈ interval × shards × steps-per-pass, where steps-per-pass ≈
// live_objects/64 + parity_bytes/256K per shard; scrub health in STATS
// (scrub_steps, bg_repairs, scrub_backoffs, scrub_errors — failing
// steps, the stuck-cursor signal — and last_full_pass_unix, the OLDEST
// shard's pass time, 0 while any shard has never completed one) lets an
// operator watch that bound rather than guess it. Reads that
// stumble on corruption first still heal on the spot through the worker
// read path, so the scrubber only ever shortens time-to-repair for data
// no client has touched.
//
// # Storage backends
//
// Each shard's engine is selected at creation (pglserve -backend):
// "pangolin" (the paper's engine) or "logstore" (the append-only,
// bitcask-style baseline), or a comma list cycled across shards so one
// server mixes both. Reopening a directory rediscovers every shard's
// backend from its on-disk form; no flag is consulted. The wire
// protocol is backend-agnostic — the same verbs run against either —
// but capability edges show through honestly: INJECT's reply counts
// the injection-capable shards alongside the injected faults (log
// shards have no fault-injection layer beneath them, so a pglload
// -faults run against an all-log set fails fast instead of timing out
// on a heal gate that can never pass), and a log shard's scrub step is
// a CRC verify sweep or a compaction merge rather than a parity
// repair. STATS carries the per-shard "backend"
// name, the set-level "backends" list, and the log engine's counters
// (segments, compactions, merged_records, dead_records), so an
// operator — or the loadtest's A/B phase, via pglload -backend — can
// prove which engine served a run.
//
// # Background scrub wire verb
//
// SCRUB (op 11) is the wire verb: mode 0 reads the health block; mode 1
// triggers a full pass on every shard and waits for it. Even the
// triggered pass is incremental — each shard's worker steps a fresh
// scrub cursor to completion BETWEEN serving its queued requests, so an
// operator-initiated pass never stalls the pool either; concurrent
// SCRUB requests against one shard coalesce into the same pass. The
// response's report carries checksums_verified: false in checksum-less
// modes, where "0 bad objects" means "not checked", not "verified
// clean". INJECT (op 12) is the matching test-harness verb (like
// CRASH): it corrupts count pseudo-randomly chosen live objects —
// alternating software scribbles and media-error poison by seed — so
// the loadtest's corruption-healing phase can prove injected faults are
// healed under live traffic with zero client-visible errors.
//
// Durability is snapshot-per-shard (pangolin.PoolSet): shard i persists as
// dir/shard-000i.pgl. SYNC saves every shard from its own worker, so a
// save never races a transaction. CRASH writes a *crash image* of every
// shard instead — unpersisted cache lines randomly evicted or reverted,
// exactly like a power failure — after which the process is expected to
// exit without syncing; reopening the directory runs per-shard crash
// recovery. Every shard file is a standard pool snapshot, so
// `pglpool check` can verify and repair each one independently.
//
// # Wire protocol
//
// The protocol is length-prefixed binary over TCP. Every message is one
// frame, and two payload layouts exist, negotiated per connection by
// the first frame:
//
//	frame       := length(uint32 BE) payload       length excludes itself
//	v1 request  := op(1 B) field*                  field = uint64 BE
//	v1 response := status(1 B) body*               in request order
//	v2 request  := seq(uint64 BE) op(1 B) field*   client-chosen sequence
//	v2 response := seq(uint64 BE) status(1 B) body*  any order
//
// A connection whose first frame is HELLO (op 13) carrying HelloMagic
// speaks v2 — the pipelined protocol, below — from the next frame on.
// Any other first frame selects v1, the original one-op-per-frame
// in-order protocol, kept as the degenerate case so old clients work
// unchanged against new servers. (The magic guard means a v1 request
// that happens to carry opcode 13 is answered with ERR, never silently
// promoted.)
//
// Requests (field layout after the opcode byte):
//
//	GET   (1)  key                 value lookup
//	PUT   (2)  key value           insert or update
//	DEL   (3)  key                 delete
//	STATS (4)  —                   per-shard and aggregate counters
//	SYNC  (5)  —                   save all shard snapshots
//	CRASH (6)  seed                simulate machine power failure
//	MGET  (7)  key*                batch lookup, N = (len-1)/8 ops
//	MPUT  (8)  (key value)*        batch insert/update, N = (len-1)/16 ops
//	MDEL  (9)  key*                batch delete, N = (len-1)/8 ops
//	SCAN  (10) lo hi limit cursor  ordered range scan from max(lo, cursor)
//	SCRUB (11) mode                mode 0: scrub health; mode 1: run a full
//	                               pass (incremental, traffic interleaved)
//	INJECT(12) seed count          corrupt count random live objects
//	                               (fault-injection test hook, like CRASH)
//	HELLO (13) magic version window  first frame only: negotiate v2 with a
//	                               requested in-flight window (0 = default)
//	SNAPSCAN (14) lo hi limit cursor snapid  snapshot-consistent scan page;
//	                               snapid 0 + cursor 0 opens a snapshot,
//	                               later pages carry the returned snapid
//	BACKUP (15) —                  v1 only: stream every pair of one
//	                               pinned snapshot as multiple frames
//
// Batch ops carry no explicit count — the frame length delimits them — but
// the payload must be a whole number of ops, at least 1 and at most
// MaxBatchOps (4096); a batch larger than each shard's group-commit
// window (shard.Options.MaxBatch, default 64) still executes, split into
// several transactions per shard.
//
// Responses:
//
//	OK        (0)  GET → value(uint64 BE); STATS → JSON (shard.Stats);
//	               PUT, DEL, SYNC, CRASH → empty;
//	               MGET → N × (status(1 B) value(uint64 BE));
//	               MPUT, MDEL → N × status(1 B);
//	               SCAN → more(1 B) next-cursor(uint64 BE)
//	                      (key(uint64 BE) value(uint64 BE))*,
//	               at most MaxScanPairs pairs per frame, ascending,
//	               N = (len-10)/16;
//	               SCRUB → JSON (server.ScrubStatus);
//	               INJECT → injected(uint64 BE) capable-shards(uint64 BE)
//	                        total-shards(uint64 BE);
//	               SNAPSCAN → snapid(uint64 BE) more(1 B)
//	                          next-cursor(uint64 BE)
//	                          (key(uint64 BE) value(uint64 BE))*,
//	                          the terminal page (more 0) releases the
//	                          snapshot;
//	               BACKUP → a SEQUENCE of frames, each
//	                        status(1 B) more(1 B)
//	                        (key(uint64 BE) value(uint64 BE))*,
//	                        ending with more 0 (or a non-OK status frame)
//	NOT_FOUND (1)  GET or DEL of an absent key; empty body
//	ERR       (2)  body is a UTF-8 error message
//	CORRUPT   (3)  v2 only: the op failed on detected, unrepaired
//	               corruption (pangolin.IsCorruption server-side)
//	POISON    (4)  v2 only: the op failed on a media error
//	               (pangolin.IsPoison server-side)
//	SHUTDOWN  (5)  v2 only: the shard set is shutting down
//	SNAP_TOO_OLD     (6)  the snapshot's pinned generation was evicted
//	                      or released (ErrSnapshotTooOld)
//	SNAP_UNSUPPORTED (7)  a shard backend lacks the snapshot capability
//	                      (ErrSnapshotUnsupported)
//	CURSOR_MODE      (8)  cursor presented to the wrong scan mode
//	                      (ErrCursorMode)
//
// v1 connections collapse every failure to ERR — the statuses old
// clients understand — while v2 classifies them so the client rebuilds
// the in-process error taxonomy across the network: errors.Is(err,
// ErrShuttingDown), pangolin.IsCorruption(err), and
// pangolin.IsPoison(err) hold on a Client exactly as they would
// in-process. The snapshot statuses (6-8) belong to ops newer than the
// version split, so they are used on BOTH protocol versions — there is
// no older client to protect. The body is a UTF-8 message for every
// status >= ERR.
//
// Batch responses answer every op: records are in request order, one per
// op, each carrying a per-op status — 0 (OK), 1 (not found: MGET/MDEL of
// an absent key), or 2 (that op failed: its per-op fallback transaction
// errored, or its shard was already shut down and executed nothing). An
// MGET record's value bytes are meaningful only under status 0. A
// malformed batch (ragged payload, zero ops, > MaxBatchOps) is rejected
// whole with ERR.
//
// Requests on a v1 connection are answered in order; concurrency comes
// from concurrent connections, which matches the original closed-loop
// client model (one in-flight request per connection).
//
// Frames are capped at 1 MB (MaxFrame); a larger length prefix is treated
// as a corrupt stream and the connection is dropped.
//
// # Pipelining (protocol v2)
//
// One in-flight request per connection caps a connection's throughput
// at the network round trip, and — worse for this design — it keeps
// the shard workers' queues shallow, so the group commit has nothing
// to group: the per-fence amortization the workers were built for
// needs a standing supply of queued operations. Protocol v2 exists to
// keep that supply full from a single connection.
//
// After the HELLO handshake (the reply to a HELLO is a v1-framed OK
// whose body is version(uint64 BE) window(uint64 BE) — the negotiated
// protocol and the granted in-flight window, min(requested, MaxWindow),
// DefaultWindow when 0 is requested), every request carries a
// client-chosen 8-byte sequence number and every response echoes one.
// Replies arrive in completion order, not request order; the sequence
// number is the only correlation. The server splits each v2 connection
// into independent stages:
//
//   - a reader goroutine decodes frames and dispatches them: PUT and
//     DEL are submitted asynchronously into their shard worker's queue
//     (a completion callback replaces the per-request blocking wait, so
//     one connection can have operations queued on every shard at
//     once — this is what multiplies group-commit depth); GET runs the
//     concurrent verified-read fast path inline, falling back to the
//     worker queue; the multi-shard verbs (batches, SCAN, SNAPSCAN,
//     STATS, SYNC, SCRUB, INJECT, CRASH) each run on their own bounded
//     goroutine (BACKUP streams multiple frames, which one-reply-per-
//     sequence cannot carry, so it remains v1-only);
//   - a writer goroutine streams completed replies to the wire in
//     completion order, flushing when the queue goes empty, so replies
//     coalesce into few syscalls under load.
//
// The granted window bounds everything: the reader stops reading while
// window ops are in flight, so overload behavior is plain TCP
// backpressure (the client's sends eventually block), and the window
// also sizes the server's per-connection completion buffering — a
// completion can never block a shard worker on a slow or dead
// connection. Every dispatched operation resolves: on connection loss
// the writer drains and discards, and on shard-set shutdown the
// operation fails with SHUTDOWN (ErrShuttingDown client-side) — never
// a silent drop.
//
// Execution order follows completion, not submission: two operations in
// flight on one connection may execute in either order (a GET pipelined
// behind a PUT of the same key may run first and miss it — reads go
// inline on the reader while writes queue on the shard workers). An
// operation's effect is visible to everything submitted after its reply
// resolves; pipeline only independent operations, and sequence a
// dependent one by waiting on its predecessor's reply (or future)
// first. v1 connections keep strict request-order execution.
//
// # Buffer ownership
//
// Every hot-path wire buffer — v2 completion frames on the server,
// request frames on the client — comes from one sync.Pool of frame
// buffers (pool.go), laid out as [4-byte length][payload] so header and
// payload leave in a single write. Recycling only works because frame
// lifetime follows one rule on both sides:
//
//		getter → (optional worker callback) → connection writer → pool
//
//	  - Whoever fetches a frame (the reader's completion path on the
//	    server, submit on the client) owns it exclusively while building
//	    the payload, and transfers ownership by queueing it for the
//	    connection's writer goroutine.
//	  - The writer releases the frame back to the pool the moment its
//	    bytes reach the bufio layer. From then on the memory may be
//	    scribbled by anyone; nothing is allowed to retain a pointer into
//	    a frame past the hand-off.
//	  - Anything that must outlive the frame is copied out first. A
//	    shard completion callback receives its GET value as a scalar and
//	    encodes it into the completion frame it owns; the client's
//	    readLoop copies each reply body out of the reused read buffer
//	    (small bodies into an inline array) before resolving the op, so
//	    values returned to callers are owned copies, valid forever —
//	    never aliases into a buffer the next frame will overwrite.
//
// The same copy-out rule covers the layers below: store.Store.Apply
// returns a result slice that is store-owned scratch, valid only until
// the next Apply, and the shard worker consumes it synchronously before
// touching the store again; the worker's []BatchResult slices are
// pooled and recycled by the receiver after the single delivery.
//
// The contract is enforced, not just documented: the poisoned-frame
// tortures (poison_test.go) scribble every released frame with 0xDB
// while GET/MGET/SNAPSCAN storms verify returned values against a known
// model under -race, so a retained alias fails deterministically.
//
// # Adaptive group commit
//
// A shard worker first drains whatever is already queued into one
// group. When the queue has been running deep — the worker keeps an
// EWMA of recent group depth, and the window engages once it reaches 2
// — the worker then waits a bounded micro-window for requests still in
// flight between the submitters and the queue, deepening the batch
// exactly when traffic can fill it: per-commit costs (log persist,
// fence, parity) amortize over more operations. The window is the
// EWMA's fraction of the batch cap scaled into shard.Options.CommitWait
// (default 100µs; pglserve -commit-wait), capped there, and skipped
// entirely when the group is already full, a barrier op is pending, or
// the load is lockstep (EWMA ~1) — an idle connection's single op
// always commits immediately, so the knob trades at most CommitWait of
// latency for depth only under pipelined load. STATS reports
// commit_waits alongside batches/batched_ops so a run can show how
// often the window engaged.
//
// # Client
//
// Dial(ctx, addr, opts...) returns a pipelined Client speaking v2 (or
// v1 under WithProtocolV1 — same machinery, FIFO reply matching, since
// v1 replies are in order). A Client is safe for concurrent use by any
// number of goroutines and is designed to be shared: concurrent calls
// interleave on the one connection's window, which is exactly what
// keeps server-side group commits deep. The synchronous methods (Get,
// Put, Del, MGet, MPut, MDel, Scan, Scrub, ...) keep their original
// signatures — each claims a window slot, ships its frame, and blocks
// for its own reply. GetAsync/PutAsync/DelAsync submit without
// blocking and return typed futures; Pipeline(ctx) batches submissions
// and collects every outcome with one Wait. WithPipelineDepth requests
// the window, WithDialTimeout and WithRequestTimeout bound connect and
// per-op waits, and a context cancellation abandons only the wait — the
// operation stays in flight and resolves when its reply arrives.
//
// Failure semantics are explicit: per-op failures (including the typed
// CORRUPT/POISON/SHUTDOWN statuses) resolve that op alone and leave the
// connection healthy; a wire or protocol failure (broken socket, bad
// frame, unknown sequence number) is fatal — every in-flight and
// subsequent operation resolves with the error, and Err reports it.
// Close resolves everything in flight with ErrClientClosed. No
// operation, under any teardown order, is dropped without an answer.
package server
