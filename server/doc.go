// Package server exposes a shard.Set — the six persistent key-value
// structures of §4.5, hash-partitioned across independent Pangolin pools —
// as a concurrent network service, with a matching Client. It is the
// serving layer the ROADMAP's production trajectory builds on: cmd/pglserve
// wraps it in a binary and cmd/pglload drives it closed-loop.
//
// # Why sharding
//
// Pangolin transactions are per-goroutine, and two concurrent transactions
// must not modify the same object (§3.4); a single pool therefore
// serializes writers. The service scales by hash-partitioning the key
// space across N pools (internal/shard): each shard pool is owned by
// exactly one worker goroutine, every operation is routed to its shard's
// worker over a channel, and transactions on different shards commit in
// parallel. Adding shards adds commit parallelism without weakening any
// of the paper's protection mechanisms, because each pool keeps its own
// checksums, parity, and logs.
//
// Keys choose their shard via the splitmix64 finalizer modulo the shard
// count, so sequential key patterns still spread uniformly. The mapping is
// stable — it determines which pool holds which key — and each shard
// pool's root records the structure, the shard index, and the set size, so
// reopening detects shuffled or foreign shard files.
//
// Durability is snapshot-per-shard (pangolin.PoolSet): shard i persists as
// dir/shard-000i.pgl. SYNC saves every shard from its own worker, so a
// save never races a transaction. CRASH writes a *crash image* of every
// shard instead — unpersisted cache lines randomly evicted or reverted,
// exactly like a power failure — after which the process is expected to
// exit without syncing; reopening the directory runs per-shard crash
// recovery. Every shard file is a standard pool snapshot, so
// `pglpool check` can verify and repair each one independently.
//
// # Wire protocol
//
// The protocol is length-prefixed binary over TCP. Every message is one
// frame:
//
//	frame    := length(uint32 BE) payload          length excludes itself
//	request  := op(1 B) field*                     field = uint64 BE
//	response := status(1 B) body*
//
// Requests (field layout after the opcode byte):
//
//	GET   (1)  key                 value lookup
//	PUT   (2)  key value           insert or update
//	DEL   (3)  key                 delete
//	STATS (4)  —                   per-shard and aggregate counters
//	SYNC  (5)  —                   save all shard snapshots
//	CRASH (6)  seed                simulate machine power failure
//
// Responses:
//
//	OK        (0)  GET → value(uint64 BE); STATS → JSON (shard.Stats);
//	               PUT, DEL, SYNC, CRASH → empty
//	NOT_FOUND (1)  GET or DEL of an absent key; empty body
//	ERR       (2)  body is a UTF-8 error message
//
// Requests on one connection are answered in order; concurrency comes
// from concurrent connections, which matches the closed-loop client model
// (one in-flight request per client). Pipelining works — the server reads
// the next request as soon as the previous response is on the wire and
// only flushes when the connection goes idle — but ordering is still
// per-connection.
//
// Frames are capped at 1 MB (MaxFrame); a larger length prefix is treated
// as a corrupt stream and the connection is dropped.
package server
